// Repository-level benchmarks: one testing.B benchmark per figure of the
// paper's evaluation (Fig. 5a–5f, Fig. 6a–6b) plus the ablations called out
// in DESIGN.md. Run them all with
//
//	go test -bench=. -benchmem
//
// Units follow the paper where possible: custom metrics report Mops/s
// (Fig. 5c), Kops/s (Fig. 5f) or ns/block (Fig. 6). The cmd/ tools print
// the full thread sweeps; these benchmarks give the per-allocator
// comparison at a fixed thread count under `go test` so the whole
// evaluation regenerates from one command.
package repro_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
	"repro/internal/ycsb"
)

// benchThreads is the fixed thread count for figure benchmarks; sweeps are
// the cmd tools' job.
func benchThreads() int {
	t := runtime.GOMAXPROCS(0)
	if t > 8 {
		t = 8
	}
	if t < 2 {
		t = 2
	}
	return t
}

// split divides b.N into (iterations, batch) with a bounded live window.
func split(n int) (iters, batch int) {
	const maxBatch = 10000
	if n <= maxBatch {
		return 1, n
	}
	return (n + maxBatch - 1) / maxBatch, maxBatch
}

func forEachAllocator(b *testing.B, names []string, heap uint64,
	run func(b *testing.B, a alloc.Allocator)) {
	factories := bench.Factories(bench.DefaultNVM)
	for _, name := range names {
		b.Run(name, func(b *testing.B) {
			a, err := factories[name](heap)
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			run(b, a)
		})
	}
}

// BenchmarkFig5aThreadtest: per-thread batched alloc/free of 64 B objects.
func BenchmarkFig5aThreadtest(b *testing.B) {
	t := benchThreads()
	forEachAllocator(b, bench.AllocNames, 512<<20, func(b *testing.B, a alloc.Allocator) {
		iters, batch := split(b.N)
		b.ResetTimer()
		res := bench.Threadtest(a, t, iters, batch, 64)
		b.ReportMetric(res.Mops(), "Mops/s")
	})
}

// BenchmarkFig5bShbench: stress test with sizes 64–400 B skewed small.
func BenchmarkFig5bShbench(b *testing.B) {
	t := benchThreads()
	forEachAllocator(b, bench.AllocNames, 512<<20, func(b *testing.B, a alloc.Allocator) {
		b.ResetTimer()
		res := bench.Shbench(a, t, b.N)
		b.ReportMetric(res.Mops(), "Mops/s")
	})
}

// BenchmarkFig5cLarson: the bleeding benchmark; the paper reports M ops/s.
func BenchmarkFig5cLarson(b *testing.B) {
	t := benchThreads()
	forEachAllocator(b, bench.AllocNames, 512<<20, func(b *testing.B, a alloc.Allocator) {
		cfg := bench.DefaultLarson()
		cfg.OpsPerTh = b.N
		b.ResetTimer()
		res := bench.Larson(a, t, cfg)
		b.ReportMetric(res.Mops(), "Mops/s")
	})
}

// BenchmarkFig5cLarsonMedium: the in-text variant with sizes up to 2048 B,
// where the paper saw Makalu collapse.
func BenchmarkFig5cLarsonMedium(b *testing.B) {
	t := benchThreads()
	forEachAllocator(b, bench.AllocNames, 1<<30, func(b *testing.B, a alloc.Allocator) {
		cfg := bench.DefaultLarson()
		cfg.MaxSize = 2048
		cfg.OpsPerTh = b.N
		b.ResetTimer()
		res := bench.Larson(a, t, cfg)
		b.ReportMetric(res.Mops(), "Mops/s")
	})
}

// BenchmarkFig5dProdcon: producer/consumer pairs over M&S queues.
func BenchmarkFig5dProdcon(b *testing.B) {
	pairs := benchThreads() / 2
	if pairs < 1 {
		pairs = 1
	}
	forEachAllocator(b, bench.AllocNames, 512<<20, func(b *testing.B, a alloc.Allocator) {
		b.ResetTimer()
		res := bench.Prodcon(a, pairs, b.N, 64)
		b.ReportMetric(res.Mops(), "Mops/s")
	})
}

// BenchmarkFig5eVacation: the OLTP application, persistent allocators only.
func BenchmarkFig5eVacation(b *testing.B) {
	t := benchThreads()
	forEachAllocator(b, bench.PersistentAllocNames, 1<<30, func(b *testing.B, a alloc.Allocator) {
		cfg := bench.DefaultVacation()
		cfg.Vac.Relations = 4096
		cfg.TxPerThread = b.N
		b.ResetTimer()
		res := bench.Vacation(a, t, cfg)
		b.ReportMetric(res.Kops(), "Ktxn/s")
	})
}

// BenchmarkFig5fMemcachedA: YCSB workload A (50% reads / 50% updates).
func BenchmarkFig5fMemcachedA(b *testing.B) {
	benchMemcached(b, ycsb.WorkloadA(20000))
}

// BenchmarkFig5fMemcachedB: the in-text read-dominant workload B (95/5).
func BenchmarkFig5fMemcachedB(b *testing.B) {
	benchMemcached(b, ycsb.WorkloadB(20000))
}

// BenchmarkFig5fMemcachedT: the cache-expiration extension workload —
// workload A's mix with half the updates writing records that expire, plus
// inline reclamation, so the allocator sees the full allocate/expire/reclaim
// lifecycle.
func BenchmarkFig5fMemcachedT(b *testing.B) {
	benchMemcached(b, ycsb.WorkloadT(20000))
}

// BenchmarkGetNoTTL / BenchmarkGetWithTTL prove the lazy-expiry check is
// free on the read hot path: identical allocs/op (run with -benchmem), the
// only extra work for a TTL'd record being one persisted-word load and a
// clock read.
func BenchmarkGetNoTTL(b *testing.B) {
	benchGetTTL(b, false)
}

func BenchmarkGetWithTTL(b *testing.B) {
	benchGetTTL(b, true)
}

func benchGetTTL(b *testing.B, ttl bool) {
	h, _, err := ralloc.Open("", ralloc.Config{SBRegion: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	a := h.AsAllocator()
	defer a.Close()
	hd := a.NewHandle()
	st, _ := kvstore.Open(a, hd, 1024)
	key, val := []byte("bench-key"), []byte("bench-value-of-plausible-size-xx")
	if ttl {
		// A deadline far in the future: the expiry comparison runs on
		// every Get but never fires.
		if !st.SetBytesExpire(hd, key, val, st.Now()+int64(time.Hour/time.Millisecond)) {
			b.Fatal("OOM")
		}
	} else if !st.SetBytes(hd, key, val) {
		b.Fatal("OOM")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := st.GetBytes(key); !ok {
			b.Fatal("hot key missing")
		}
	}
}

func benchMemcached(b *testing.B, w ycsb.Workload) {
	t := benchThreads()
	forEachAllocator(b, bench.AllocNames, 1<<30, func(b *testing.B, a alloc.Allocator) {
		cfg := bench.MemcachedConfig{Workload: w, OpsPerTh: b.N}
		b.ResetTimer()
		res := bench.Memcached(a, t, cfg)
		b.ReportMetric(res.Kops(), "Kops/s")
	})
}

// BenchmarkFig6aGCStack: recovery time vs reachable blocks, Treiber stack.
func BenchmarkFig6aGCStack(b *testing.B) {
	for _, n := range []int{10000, 50000, 200000} {
		b.Run(sizeName(n), func(b *testing.B) {
			var perBlock float64
			for i := 0; i < b.N; i++ {
				res, err := bench.GCStack(n, true)
				if err != nil {
					b.Fatal(err)
				}
				perBlock = float64(res.GCTime.Nanoseconds()) / float64(res.ReachableBlocks)
			}
			b.ReportMetric(perBlock, "ns/block")
		})
	}
}

// BenchmarkFig6bGCTree: recovery time vs reachable blocks, N&M BST.
func BenchmarkFig6bGCTree(b *testing.B) {
	for _, n := range []int{10000, 50000, 100000} {
		b.Run(sizeName(n), func(b *testing.B) {
			var perBlock float64
			for i := 0; i < b.N; i++ {
				res, err := bench.GCTree(n)
				if err != nil {
					b.Fatal(err)
				}
				perBlock = float64(res.GCTime.Nanoseconds()) / float64(res.ReachableBlocks)
			}
			b.ReportMetric(perBlock, "ns/block")
		})
	}
}

// BenchmarkAblationConservativeGC (A1): filter vs conservative tracing on
// the stack recovery.
func BenchmarkAblationConservativeGC(b *testing.B) {
	for _, mode := range []struct {
		name   string
		filter bool
	}{{"filter", true}, {"conservative", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var perBlock float64
			for i := 0; i < b.N; i++ {
				res, err := bench.GCStack(100000, mode.filter)
				if err != nil {
					b.Fatal(err)
				}
				perBlock = float64(res.GCTime.Nanoseconds()) / float64(res.ReachableBlocks)
			}
			b.ReportMetric(perBlock, "ns/block")
		})
	}
}

// BenchmarkAblationFlushCost (A2): what persistence costs Ralloc during
// normal operation — the §1 claim is "almost nothing", so ralloc should be
// flat across flush latencies while makalu degrades.
func BenchmarkAblationFlushCost(b *testing.B) {
	for _, lat := range []struct {
		name string
		cfg  pmem.Config
	}{
		{"flush0", pmem.Config{}},
		{"flush120ns", bench.DefaultNVM},
		{"flush1us", pmem.Config{FlushLatency: 1000, FenceLatency: 100}},
	} {
		factories := bench.Factories(lat.cfg)
		for _, name := range []string{"ralloc", "makalu"} {
			b.Run(lat.name+"/"+name, func(b *testing.B) {
				a, err := factories[name](512 << 20)
				if err != nil {
					b.Fatal(err)
				}
				defer a.Close()
				iters, batch := split(b.N)
				b.ResetTimer()
				res := bench.Threadtest(a, 2, iters, batch, 64)
				b.ReportMetric(res.Mops(), "Mops/s")
			})
		}
	}
}

// BenchmarkAblationCacheReturn (A3): return-all (Ralloc's policy) vs
// return-half (Makalu's locality policy) on an overflow-heavy workload.
func BenchmarkAblationCacheReturn(b *testing.B) {
	for _, mode := range []struct {
		name string
		half bool
	}{{"return-all", false}, {"return-half", true}} {
		b.Run(mode.name, func(b *testing.B) {
			h, _, err := ralloc.Open("", ralloc.Config{
				SBRegion:   512 << 20,
				ReturnHalf: mode.half,
				CacheCap:   64,
				Pmem:       bench.DefaultNVM,
			})
			if err != nil {
				b.Fatal(err)
			}
			a := h.AsAllocator()
			defer a.Close()
			iters, batch := split(b.N)
			b.ResetTimer()
			res := bench.Threadtest(a, benchThreads(), iters, batch, 64)
			b.ReportMetric(res.Mops(), "Mops/s")
		})
	}
}

// BenchmarkExtensionParallelRecovery: sequential vs parallel recovery on
// the Fig. 6a workload — the paper's §6.4 future work. (On a single-core
// host this measures the coordination overhead rather than speedup.)
func BenchmarkExtensionParallelRecovery(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			var perBlock float64
			for i := 0; i < b.N; i++ {
				res, err := bench.GCStackParallel(100000, workers)
				if err != nil {
					b.Fatal(err)
				}
				perBlock = float64(res.GCTime.Nanoseconds()) / float64(res.ReachableBlocks)
			}
			b.ReportMetric(perBlock, "ns/block")
		})
	}
}

// BenchmarkMallocFreePair: the single-threaded fast path per allocator —
// the microcosm of the whole paper: ralloc ≈ lrmalloc despite persistence.
func BenchmarkMallocFreePair(b *testing.B) {
	forEachAllocator(b, bench.AllocNames, 64<<20, func(b *testing.B, a alloc.Allocator) {
		hd := a.NewHandle()
		warm := hd.Malloc(64)
		hd.Free(warm)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hd.Free(hd.Malloc(64))
		}
	})
}

func sizeName(n int) string {
	switch {
	case n >= 1000000:
		return itoa(n/1000000) + "M"
	case n >= 1000:
		return itoa(n/1000) + "K"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
