// Command ralloc-serve is the stand-alone network server the paper's
// application study deliberately stripped away (§6.3): a RESP2-speaking
// key-value server whose entire dataset lives in recoverable Ralloc heaps.
// A SIGKILL'd server restarts through Open → dirty → Recover →
// kvstore.AttachBounded and keeps serving from the last checkpoint; a clean
// shutdown (SIGTERM or the SHUTDOWN command) drains connections and writes
// the heap images back with the dirty flag cleared.
//
//	ralloc-serve -heap /tmp/kv.heap -tcp :6379
//	ralloc-serve -heap /tmp/kv.heap -unix /tmp/kv.sock -boundmb 64 -checkpoint 30s
//	ralloc-serve -heap /tmp/kv.heap -expire-cycle 50ms -expire-sample 100
//	ralloc-serve -heap /tmp/kv.heap -save-online=false   # stop-the-world SAVE
//	ralloc-serve -heap /tmp/kv.heap -cluster-shards 4    # 4 heaps, one keyspace
//	ralloc-serve -heap /tmp/replica.heap -tcp :6380 -replicaof localhost:6379
//
// SAVE checkpoints online by default: a write barrier tracks lines dirtied
// while the image streams out, dirty lines are re-copied, and commands are
// excluded only for the final cut-over delta (-save-online=false restores
// the quiesced stop-the-world path).
//
// -cluster-shards N splits the keyspace across N independent heaps routed by
// Redis-cluster hash slot (internal/cluster): shard 0 lives at -heap, shard
// i at "<heap>.shard<i>", and a "<heap>.cluster" sidecar pins the count.
// Each shard checkpoints, expires, and recovers independently — a crash
// restart recovers all shards in parallel, and a SAVE fence stalls only 1/N
// of the keyspace at a time. Multi-key commands whose keys hash to different
// shards answer -CROSSSLOT (use hash tags, "user:{42}:a", to co-locate).
// The default -cluster-shards 1 is byte-compatible with every image a
// pre-cluster build wrote. -heapmb and -boundmb are TOTAL budgets, divided
// evenly across shards.
//
// Keys may carry TTLs (EXPIRE/PEXPIRE/SETEX/PSETEX/TTL/PTTL/PERSIST): the
// deadline is persisted inside the record itself, so expiration survives
// kill -9 — a key that expired before the crash is still expired after
// recovery. Space is reclaimed by the active expiry cycle (-expire-cycle),
// which runs under the same quiesce barrier as SAVE checkpoints.
//
// Replication: any file-backed server is a potential primary — replicas
// bootstrap with PSYNC, fetching one checkpoint image per shard and then the
// live write feed. -replicaof starts the process as a replica: with no local
// images it downloads them; with images it probes whether the primary's
// backlog still covers the stamped offset (partial resync) and re-downloads
// only if not. A replica serves reads, answers writes with -READONLY, and
// is promoted in place by REPLICAOF NO ONE. When the primary demands a full
// resync mid-stream, the process drains, discards its heap state, and
// re-bootstraps automatically. Primary and replica must agree on
// -cluster-shards (the handshake carries the image count).
//
// Speak to it with any RESP client (redis-cli included), or
// internal/server.Client, or cmd/ralloc-apps -app memcached -net.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/slot"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ralloc"
	"repro/internal/repl"
	"repro/internal/server"
)

// options is the parsed flag set, carried whole through the serve/resync
// loop so every iteration runs with identical configuration.
type options struct {
	heapPath       string
	heapMB         uint64
	allocShards    int
	allocShardsOld int // deprecated -shards alias
	clusterShards  int
	buckets        int
	boundMB        uint64
	tcpAddr        string
	unixAddr       string
	maxConns       int
	checkpoint     time.Duration
	saveOnline     bool
	drain          time.Duration
	expireTick     time.Duration
	expireN        int
	metricsAddr    string
	slowerThan     time.Duration
	slowlogLen     int
	latThresh      time.Duration
	replicaOf      string
	replBacklog    int
}

func main() {
	var o options
	flag.StringVar(&o.heapPath, "heap", "", "heap image path (empty: volatile, data dies with the process)")
	flag.Uint64Var(&o.heapMB, "heapmb", 256, "total superblock region size (MB), divided evenly across -cluster-shards")
	flag.IntVar(&o.allocShards, "alloc-shards", 0, "allocator partial-list shards per size class within each heap (0: near GOMAXPROCS)")
	flag.IntVar(&o.allocShardsOld, "shards", 0, "deprecated alias for -alloc-shards")
	flag.IntVar(&o.clusterShards, "cluster-shards", 1, "keyspace shards: independent persistent heaps behind one hash-slot-routed keyspace")
	flag.IntVar(&o.buckets, "buckets", 65536, "total hash buckets for a freshly created store, divided across -cluster-shards")
	flag.Uint64Var(&o.boundMB, "boundmb", 0, "total LRU memory budget (MB), divided across -cluster-shards; 0 = unbounded")
	flag.StringVar(&o.tcpAddr, "tcp", "", "TCP listen address (e.g. :6379)")
	flag.StringVar(&o.unixAddr, "unix", "", "unix socket path")
	flag.IntVar(&o.maxConns, "maxconns", 0, "max simultaneous connections; 0 = unlimited")
	flag.DurationVar(&o.checkpoint, "checkpoint", 0, "periodic checkpoint interval (file-backed heaps); 0 disables")
	flag.BoolVar(&o.saveOnline, "save-online", true, "checkpoint online (write barrier + short cut-over fence) instead of stopping the world for the whole image write")
	flag.DurationVar(&o.drain, "drain", 5*time.Second, "graceful shutdown drain timeout")
	flag.DurationVar(&o.expireTick, "expire-cycle", 100*time.Millisecond, "active expiry cycle interval; 0 disables (lazy expiry only)")
	flag.IntVar(&o.expireN, "expire-sample", 20, "max expired keys reclaimed per expiry cycle (per shard)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "HTTP listen address for /metrics (Prometheus text) and /debug/pprof; empty disables")
	flag.DurationVar(&o.slowerThan, "slowlog-log-slower-than", 10*time.Millisecond, "slow-log threshold; negative logs every command, 0 disables the slow log")
	flag.IntVar(&o.slowlogLen, "slowlog-max-len", 128, "slow-log ring capacity")
	flag.DurationVar(&o.latThresh, "latency-threshold", 0, "LATENCY 'command' event threshold; 0 disables command latency events")
	flag.StringVar(&o.replicaOf, "replicaof", "", "start as a replica of this primary (host:port or unix socket path); bootstraps the heaps from the primary's checkpoints")
	flag.IntVar(&o.replBacklog, "repl-backlog", 1<<20, "replication backlog capacity in bytes")
	flag.Parse()
	if shardsFlagSet() {
		fmt.Fprintln(os.Stderr, "warning: -shards is deprecated and will be removed; use -alloc-shards")
		if o.allocShards == 0 {
			o.allocShards = o.allocShardsOld
		}
	}
	if o.tcpAddr == "" && o.unixAddr == "" {
		o.tcpAddr = ":6379"
	}
	if o.clusterShards < 1 || o.clusterShards > slot.MaxShards {
		fatal(fmt.Errorf("-cluster-shards %d outside [1, %d]", o.clusterShards, slot.MaxShards))
	}
	if o.replicaOf != "" && o.heapPath == "" {
		fatal(fmt.Errorf("-replicaof requires -heap: the replica bootstraps by downloading the primary's checkpoint images"))
	}
	if o.boundMB > 0 && o.replicaOf != "" {
		// A bounded store evicts under LRU pressure, and evictions are not
		// propagated through the feed — a bounded replica would silently
		// diverge from its primary.
		fatal(fmt.Errorf("-boundmb cannot be combined with -replicaof: LRU evictions are not replicated"))
	}

	// The serve loop: one iteration per server lifetime. A replica whose
	// primary demands a full resync exits its iteration with resync=true and
	// re-enters — re-probing (and re-downloading) the images before serving
	// again. Everything else exits the loop.
	for {
		if !run(&o) {
			return
		}
		fmt.Println("re-bootstrapping from primary after full-resync demand...")
	}
}

// shardsFlagSet reports whether the deprecated -shards flag appeared on the
// command line (so the alias warning fires only when it was actually used).
func shardsFlagSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			set = true
		}
	})
	return set
}

// shardPaths returns every shard's image path (empty slice elements for a
// volatile cluster never occur: callers gate on heapPath != "").
func shardPaths(o *options) []string {
	paths := make([]string, o.clusterShards)
	for i := range paths {
		paths[i] = cluster.ShardPath(o.heapPath, i)
	}
	return paths
}

// run serves one server lifetime and reports whether the process should
// re-bootstrap and serve again (replica full-resync path).
func run(o *options) (resync bool) {
	// Replica bootstrap happens before the heaps open: with no usable local
	// images the primary's checkpoints become our initial heap state.
	if o.replicaOf != "" {
		if err := bootstrapReplica(o); err != nil {
			fatal(fmt.Errorf("replica bootstrap: %w", err))
		}
	}

	n := o.clusterShards
	perBuckets := o.buckets / n
	if perBuckets < 16 {
		perBuckets = 16
	}
	ccfg := cluster.Config{
		Shards: n,
		Ralloc: ralloc.Config{
			SBRegion: (o.heapMB << 20) / uint64(n),
			Shards:   o.allocShards,
			Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
		},
		Buckets: perBuckets,
		Bound:   (o.boundMB << 20) / uint64(n),
	}
	clus, err := cluster.Open(o.heapPath, ccfg)
	if err != nil {
		fatal(err)
	}
	reportOpen(o, clus, perBuckets)

	shutdownCh := make(chan os.Signal, 2)
	signal.Notify(shutdownCh, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(shutdownCh)
	// requestShutdown never blocks: after the first delivery the main
	// goroutine stops receiving, and extra triggers must not hang senders.
	requestShutdown := func() {
		select {
		case shutdownCh <- syscall.SIGTERM:
		default:
		}
	}
	resyncCh := make(chan struct{}, 1)

	anyDirty := false
	for _, sh := range clus.Shards {
		anyDirty = anyDirty || sh.Dirty
	}
	srvCfg := server.Config{
		MaxConns:             o.maxConns,
		OnShutdown:           requestShutdown,
		ActiveExpiryInterval: o.expireTick,
		ActiveExpirySample:   o.expireN,
		SlowlogSlowerThan:    o.slowerThan,
		SlowlogMaxLen:        o.slowlogLen,
		LatencyThreshold:     o.latThresh,
		InfoSections: []server.InfoSection{
			{Name: "heap", Render: func() string {
				var used uint64
				for _, sh := range clus.Shards {
					used += sh.Heap.SBUsed()
				}
				return fmt.Sprintf("sb_used_bytes:%d\r\nheap_dirty_at_open:%v\r\n", used, anyDirty)
			}},
			{Name: "allocator", Render: func() string { return clusterAllocatorInfo(clus) }},
			{Name: "persistence", Render: func() string {
				return persistenceInfo(clus.Recovered, clus.RecStats, clus.RecoveryWall)
			}},
		},
	}
	bound := (o.boundMB << 20) / uint64(n)
	if o.heapPath != "" && bound == 0 {
		// Replication rides on file-backed checkpoints: each image header
		// carries the feed position (SetReplMeta, stamped inside every
		// cut-over fence — one global fence at N>1, so all images carry the
		// same position), and full resyncs stream the image files. A bounded
		// store stays replication-free — LRU evictions are not in the feed.
		srvCfg.ReplBacklogBytes = o.replBacklog
		srvCfg.ReplicaOf = o.replicaOf
		srvCfg.ReplID, srvCfg.ReplOffset = clus.Shards[0].Heap.Region().ReplMeta()
		srvCfg.OnFullResyncNeeded = func() {
			select {
			case resyncCh <- struct{}{}:
			default:
			}
			requestShutdown()
		}
	}

	backends := make([]server.ShardBackend, n)
	for i, sh := range clus.Shards {
		backends[i] = shardBackend(o, sh, bound)
	}
	srv := server.NewSharded(backends, srvCfg)
	fmt.Printf("serving %d commands (COMMAND / COMMAND INFO for introspection, INFO commandstats for per-command counters)\n",
		server.CommandCount())
	if o.replicaOf != "" {
		fmt.Printf("replica of %s (writes answer -READONLY; promote with REPLICAOF NO ONE)\n", o.replicaOf)
	}

	// Startup timeline events: recovery phases (when GC recovery ran on any
	// shard) and the attach duration land in the same LATENCY surface as
	// checkpoints, so `LATENCY LATEST` after a crash-restart shows what
	// recovery cost.
	startupAt := time.Now()
	if clus.Recovered {
		srv.Events().Record("recovery-trace", startupAt, clus.RecStats.TraceTime)
		srv.Events().Record("recovery-sweep", startupAt, clus.RecStats.SweepTime)
		srv.Events().Record("recovery", startupAt, clus.RecStats.Duration)
	}
	srv.Events().Record("attach", startupAt, clus.RecoveryWall)

	// Optional observability listener: /metrics (Prometheus text, no
	// dependencies) plus /debug/pprof on a private mux. The registry draws
	// from the server (commands, checkpoints, replication, keyspace, the
	// ralloc_shard_* cluster families) and the heaps (allocator counters —
	// aggregated across cluster shards, since the per-heap series share the
	// same "shard" label space).
	var metricsSrv *http.Server
	if o.metricsAddr != "" {
		reg := obs.NewRegistry()
		reg.Register(srv)
		if len(clus.Shards) == 1 {
			reg.Register(clus.Shards[0].Heap)
		} else {
			reg.Register(obs.CollectorFunc(func(e *obs.Emitter) { collectHeaps(e, clus) }))
		}
		ml, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		metricsSrv = &http.Server{Handler: obs.NewHTTPHandler(reg)}
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ml.Addr())
		go func() {
			if err := metricsSrv.Serve(ml); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "metrics serve: %v\n", err)
			}
		}()
	}

	for _, l := range listen(o.tcpAddr, o.unixAddr) {
		fmt.Printf("listening on %s://%s\n", l.Addr().Network(), l.Addr())
		go func(l net.Listener) {
			if err := srv.Serve(l); err != nil && err != server.ErrServerClosed {
				// A dead listener is fatal to serving but must still go
				// through the clean shutdown path, not os.Exit: the heap
				// images have acknowledged writes to save.
				fmt.Fprintf(os.Stderr, "serve %s: %v\n", l.Addr(), err)
				requestShutdown()
			}
		}(l)
	}

	stopTicker := make(chan struct{})
	var tickerWG sync.WaitGroup
	if o.checkpoint > 0 && o.heapPath != "" {
		tickerWG.Add(1)
		go func() {
			defer tickerWG.Done()
			t := time.NewTicker(o.checkpoint)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := srv.Save(); err != nil {
						fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
					}
				case <-stopTicker:
					return
				}
			}
		}()
	}

	sig := <-shutdownCh
	fmt.Printf("shutting down (%v): draining connections...\n", sig)
	// Join the ticker before Close: an in-flight checkpoint SaveFile must
	// not race Close's own SaveFile on the same image path.
	close(stopTicker)
	tickerWG.Wait()
	if err := srv.Shutdown(o.drain); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if o.unixAddr != "" {
		os.Remove(o.unixAddr)
	}
	// Stamp the final feed position into every region before the clean-close
	// save, so each written image records exactly where the stream stopped —
	// a restart resumes with a partial resync from here.
	if id, off := srv.ReplMeta(); id != 0 {
		for _, sh := range clus.Shards {
			sh.Heap.Region().SetReplMeta(id, off)
		}
	}
	if err := clus.Close(); err != nil {
		fatal(err)
	}
	if o.heapPath != "" {
		fmt.Printf("heap saved cleanly to %s\n", o.heapPath)
	}
	select {
	case <-resyncCh:
		return true
	default:
		return false
	}
}

// shardBackend builds one shard's checkpoint surface over its heap. Each
// closure captures that shard's region and image path, so SAVE on shard i
// touches only shard i's file.
func shardBackend(o *options, sh *cluster.Shard, bound uint64) server.ShardBackend {
	be := server.ShardBackend{Alloc: sh.Alloc, Store: sh.Store}
	if o.heapPath == "" {
		return be
	}
	region, path := sh.Heap.Region(), sh.Path
	if o.saveOnline {
		// Online checkpoint: the copy phases run while commands keep
		// executing; only the final delta happens under the shard's cut-over
		// fence. The image captures the volatile words at the fence — with
		// the shard's commands drained, that is exactly the state every
		// acknowledged write reached (the dirty flag rides along still set,
		// so a SIGKILL after this point recovers from here).
		be.CheckpointOnline = func(fence func(cut func() error) error) (server.CheckpointStats, error) {
			st, err := region.SaveFileOnline(path, fence)
			return checkpointStats(st), err
		}
		// The step-split form of the same snapshot, for the multi-shard
		// global cut (every shard cut under ONE fence so all images carry
		// one feed position).
		be.CheckpointSteps = func() (func() error, func() (server.CheckpointStats, error), func(), error) {
			save, err := region.BeginOnlineSave(path)
			if err != nil {
				return nil, nil, nil, err
			}
			publish := func() (server.CheckpointStats, error) {
				st, err := save.Publish()
				return checkpointStats(st), err
			}
			return save.Cut, publish, save.Abort, nil
		}
	} else {
		be.Checkpoint = func() error {
			// With this shard's command execution quiesced, a full
			// write-back makes the shadow image consistent; SaveFile then
			// checkpoints exactly the survivable state (the dirty flag rides
			// along still set, so a SIGKILL after this point recovers from
			// here).
			region.Persist()
			return region.SaveFile(path)
		}
	}
	if bound == 0 {
		be.CheckpointOffset = func(id, off uint64) { region.SetReplMeta(id, off) }
		be.OpenCheckpoint = func() (*server.CheckpointImage, error) { return openCheckpoint(path) }
	}
	return be
}

func checkpointStats(st pmem.SnapshotStats) server.CheckpointStats {
	return server.CheckpointStats{
		Lines:         st.Lines,
		Recopied:      st.Recopied,
		FenceRecopied: st.FenceRecopied,
		Rounds:        st.Rounds,
	}
}

// reportOpen prints the startup summary. The single-shard lines are kept
// byte-identical to the pre-cluster output (scripts and the e2e harness
// parse them); multi-shard opens report the merged picture plus the wall
// clock the parallel recovery actually took.
func reportOpen(o *options, clus *cluster.Cluster, perBuckets int) {
	n := len(clus.Shards)
	switch {
	case clus.Recovered:
		if n == 1 {
			sh := clus.Shards[0]
			fmt.Printf("recovered after crash: %d reachable blocks (%d KB) in %v; %d records\n",
				sh.RecStats.ReachableBlocks, sh.RecStats.ReachableBytes/1024, sh.RecStats.Duration, sh.Store.Len())
			return
		}
		fmt.Printf("recovered %d shards in parallel after crash: %d reachable blocks (%d KB), %v total recovery work in %v wall; %d records\n",
			n, clus.RecStats.ReachableBlocks, clus.RecStats.ReachableBytes/1024,
			clus.RecStats.Duration, clus.RecoveryWall, clus.Records())
	case clus.Shards[0].Created:
		if n == 1 {
			fmt.Printf("created store (%d buckets, bound %d MB)\n", o.buckets, o.boundMB)
			return
		}
		fmt.Printf("created %d-shard store (%d buckets/shard, bound %d MB total)\n", n, perBuckets, o.boundMB)
	default:
		fmt.Printf("reopened after clean shutdown: %d records\n", clus.Records())
	}
}

// bootstrapReplica ensures the local heap images are a usable starting point
// for following the primary: with no images it downloads the primary's
// checkpoints (one per shard, verifying the primary's shard count matches);
// with images it probes whether the stream position stamped in shard 0's
// header is still inside the primary's backlog — re-downloading (on the same
// connection, consuming the checkpoints the probe already produced) only
// when it is not. Transient dial failures retry briefly so a replica and its
// primary can be started in either order.
func bootstrapReplica(o *options) error {
	paths := shardPaths(o)
	var id, off uint64
	havImage := false
	if _, err := os.Stat(o.heapPath); err == nil {
		rid, roff, err := pmem.ReadImageMeta(o.heapPath)
		if err != nil {
			return fmt.Errorf("reading local image header: %w", err)
		}
		id, off = rid, roff
		havImage = id != 0
	}
	var lastErr error
	for attempt, backoff := 0, 200*time.Millisecond; attempt < 10; attempt++ {
		if havImage {
			partial, nid, noff, err := repl.ProbeSyncN(o.replicaOf, paths, id, off)
			if err == nil {
				if partial {
					fmt.Printf("resuming replication at offset %d (stream %016x)\n", noff, nid)
				} else {
					fmt.Printf("stream position no longer covered: downloaded fresh images (stream %016x, offset %d)\n", nid, noff)
				}
				return nil
			}
			lastErr = err
		} else {
			nid, noff, err := repl.BootstrapImages(o.replicaOf, paths)
			if err == nil {
				// The downloaded images are slot-partitioned by the primary;
				// record the layout so a later open (or a different shard
				// count) can't silently misroute them.
				if o.clusterShards > 1 {
					if err := cluster.EnsureMeta(o.heapPath, o.clusterShards); err != nil {
						return err
					}
				}
				fmt.Printf("bootstrapped %d image(s) from %s (stream %016x, offset %d)\n", len(paths), o.replicaOf, nid, noff)
				return nil
			}
			lastErr = err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	return lastErr
}

// openCheckpoint opens one shard's checkpoint image for streaming to a
// replica, reading the stamped stream position from the opened descriptor
// itself — not a separate path read, which could race a concurrent
// checkpoint's rename and return a different image's header.
func openCheckpoint(path string) (*server.CheckpointImage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, pmem.ImageMetaLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, err
	}
	id, off, err := pmem.ParseImageMeta(hdr)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &server.CheckpointImage{R: f, ReplID: id, ReplOffset: off}, nil
}

// clusterAllocatorInfo renders the INFO allocator section. One cluster
// shard: the pre-cluster per-alloc-shard breakdown, unchanged. Several:
// totals summed across heaps plus one rolled-up line per heap (the full
// N×alloc-shards matrix would drown the section).
func clusterAllocatorInfo(clus *cluster.Cluster) string {
	if len(clus.Shards) == 1 {
		return allocatorInfo(clus.Shards[0].Heap)
	}
	var b []byte
	var refills, refillBlocks, steals, grows, drains, batches, freeBlocks uint64
	var partial, allocShards int
	for j, csh := range clus.Shards {
		var hr, hrb, hs, hg, hd, hb, hf uint64
		var hp int
		stats := csh.Heap.ShardStats()
		allocShards = len(stats)
		for _, s := range stats {
			hr += s.Refills
			hrb += s.RefillBlocks
			hs += s.Steals
			hg += s.Grows
			hd += s.Drains
			hb += s.FreeBatches
			hf += s.FreeBlocks
			hp += s.PartialSBs
		}
		refills += hr
		refillBlocks += hrb
		steals += hs
		grows += hg
		drains += hd
		batches += hb
		freeBlocks += hf
		partial += hp
		b = fmt.Appendf(b, "heap%d:refills=%d,refill_blocks=%d,steals=%d,grows=%d,drains=%d,free_batches=%d,free_blocks=%d,partial_sbs=%d\r\n",
			j, hr, hrb, hs, hg, hd, hb, hf, hp)
	}
	head := fmt.Sprintf("shards:%d\r\nrefills:%d\r\nrefill_blocks:%d\r\nsteals:%d\r\ngrows:%d\r\ndrains:%d\r\nfree_batches:%d\r\nfree_blocks:%d\r\npartial_sbs:%d\r\n",
		allocShards, refills, refillBlocks, steals, grows, drains, batches, freeBlocks, partial)
	return head + string(b)
}

// allocatorInfo renders the INFO allocator section from one heap's
// per-shard slow-path counters.
func allocatorInfo(heap *ralloc.Heap) string {
	var b []byte
	var refills, refillBlocks, steals, grows, drains, batches, freeBlocks uint64
	var partial int
	shards := heap.ShardStats()
	for i, s := range shards {
		refills += s.Refills
		refillBlocks += s.RefillBlocks
		steals += s.Steals
		grows += s.Grows
		drains += s.Drains
		batches += s.FreeBatches
		freeBlocks += s.FreeBlocks
		partial += s.PartialSBs
		b = fmt.Appendf(b, "shard%d:refills=%d,refill_blocks=%d,steals=%d,grows=%d,drains=%d,free_batches=%d,free_blocks=%d,partial_sbs=%d\r\n",
			i, s.Refills, s.RefillBlocks, s.Steals, s.Grows, s.Drains, s.FreeBatches, s.FreeBlocks, s.PartialSBs)
	}
	head := fmt.Sprintf("shards:%d\r\nrefills:%d\r\nrefill_blocks:%d\r\nsteals:%d\r\ngrows:%d\r\ndrains:%d\r\nfree_batches:%d\r\nfree_blocks:%d\r\npartial_sbs:%d\r\n",
		len(shards), refills, refillBlocks, steals, grows, drains, batches, freeBlocks, partial)
	return head + string(b)
}

// collectHeaps emits the allocator metric families summed elementwise
// across the cluster's heaps: each heap labels its series by alloc-shard
// index, so registering the heaps individually would emit colliding series.
func collectHeaps(e *obs.Emitter, clus *cluster.Cluster) {
	e.Family("ralloc_allocator_refills_total", "counter", "Thread-cache refills per shard (summed across cluster heaps).")
	e.Family("ralloc_allocator_refill_blocks_total", "counter", "Blocks acquired from global lists per shard (summed across cluster heaps).")
	e.Family("ralloc_allocator_steals_total", "counter", "Refills served by stealing from another shard (summed across cluster heaps).")
	e.Family("ralloc_allocator_grows_total", "counter", "Superblock-region expansions per shard (summed across cluster heaps).")
	e.Family("ralloc_allocator_drains_total", "counter", "Thread-cache overflow drains per shard (summed across cluster heaps).")
	e.Family("ralloc_allocator_free_batches_total", "counter", "Batched remote frees (summed across cluster heaps).")
	e.Family("ralloc_allocator_free_blocks_total", "counter", "Blocks returned via remote-free batches (summed across cluster heaps).")
	e.Family("ralloc_allocator_partial_superblocks", "gauge", "Partial-list descriptors per shard (summed across cluster heaps).")
	var agg []ralloc.ShardStats
	var used uint64
	for _, csh := range clus.Shards {
		used += csh.Heap.SBUsed()
		for i, s := range csh.Heap.ShardStats() {
			if i >= len(agg) {
				agg = append(agg, ralloc.ShardStats{})
			}
			agg[i].Refills += s.Refills
			agg[i].RefillBlocks += s.RefillBlocks
			agg[i].Steals += s.Steals
			agg[i].Grows += s.Grows
			agg[i].Drains += s.Drains
			agg[i].FreeBatches += s.FreeBatches
			agg[i].FreeBlocks += s.FreeBlocks
			agg[i].PartialSBs += s.PartialSBs
		}
	}
	for i, s := range agg {
		shard := fmt.Sprintf("%d", i)
		e.Value("ralloc_allocator_refills_total", float64(s.Refills), "shard", shard)
		e.Value("ralloc_allocator_refill_blocks_total", float64(s.RefillBlocks), "shard", shard)
		e.Value("ralloc_allocator_steals_total", float64(s.Steals), "shard", shard)
		e.Value("ralloc_allocator_grows_total", float64(s.Grows), "shard", shard)
		e.Value("ralloc_allocator_drains_total", float64(s.Drains), "shard", shard)
		e.Value("ralloc_allocator_free_batches_total", float64(s.FreeBatches), "shard", shard)
		e.Value("ralloc_allocator_free_blocks_total", float64(s.FreeBlocks), "shard", shard)
		e.Value("ralloc_allocator_partial_superblocks", float64(s.PartialSBs), "shard", shard)
	}
	e.Family("ralloc_allocator_sb_used_bytes", "gauge", "Used portion of the superblock regions (summed).")
	e.Value("ralloc_allocator_sb_used_bytes", float64(used))
}

// persistenceInfo renders this process's contribution to INFO persistence:
// the retained startup recovery statistics and attach duration (the server
// splices these lines into its builtin Persistence section).
func persistenceInfo(recovered bool, rs ralloc.RecoveryStats, attach time.Duration) string {
	s := fmt.Sprintf("recovered_at_start:%v\r\nlast_attach_us:%d\r\n", recovered, attach.Microseconds())
	if recovered {
		s += fmt.Sprintf("recovery_reachable_blocks:%d\r\nrecovery_reachable_bytes:%d\r\nrecovery_trace_work:%d\r\nrecovery_sweep_units:%d\r\nrecovery_trace_us:%d\r\nrecovery_sweep_us:%d\r\nrecovery_total_us:%d\r\n",
			rs.ReachableBlocks, rs.ReachableBytes, rs.TraceWork, rs.SweepUnits,
			rs.TraceTime.Microseconds(), rs.SweepTime.Microseconds(), rs.Duration.Microseconds())
	}
	return s
}

// listen opens the configured listeners, removing a stale unix socket first.
func listen(tcpAddr, unixAddr string) []net.Listener {
	var ls []net.Listener
	if tcpAddr != "" {
		l, err := net.Listen("tcp", tcpAddr)
		if err != nil {
			fatal(err)
		}
		ls = append(ls, l)
	}
	if unixAddr != "" {
		os.Remove(unixAddr)
		l, err := net.Listen("unix", unixAddr)
		if err != nil {
			fatal(err)
		}
		ls = append(ls, l)
	}
	return ls
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
