// Command ralloc-serve is the stand-alone network server the paper's
// application study deliberately stripped away (§6.3): a RESP2-speaking
// key-value server whose entire dataset lives in a recoverable Ralloc heap.
// A SIGKILL'd server restarts through Open → dirty → Recover →
// kvstore.AttachBounded and keeps serving from the last checkpoint; a clean
// shutdown (SIGTERM or the SHUTDOWN command) drains connections and writes
// the heap image back with the dirty flag cleared.
//
//	ralloc-serve -heap /tmp/kv.heap -tcp :6379
//	ralloc-serve -heap /tmp/kv.heap -unix /tmp/kv.sock -boundmb 64 -checkpoint 30s
//	ralloc-serve -heap /tmp/kv.heap -expire-cycle 50ms -expire-sample 100
//	ralloc-serve -heap /tmp/kv.heap -save-online=false   # stop-the-world SAVE
//	ralloc-serve -heap /tmp/replica.heap -tcp :6380 -replicaof localhost:6379
//
// SAVE checkpoints online by default: a write barrier tracks lines dirtied
// while the image streams out, dirty lines are re-copied, and commands are
// excluded only for the final cut-over delta (-save-online=false restores
// the quiesced stop-the-world path).
//
// Keys may carry TTLs (EXPIRE/PEXPIRE/SETEX/PSETEX/TTL/PTTL/PERSIST): the
// deadline is persisted inside the record itself, so expiration survives
// kill -9 — a key that expired before the crash is still expired after
// recovery. Space is reclaimed by the active expiry cycle (-expire-cycle),
// which runs under the same quiesce barrier as SAVE checkpoints.
//
// Replication: any file-backed server is a potential primary — replicas
// bootstrap with PSYNC, fetching a checkpoint image and then the live write
// feed. -replicaof starts the process as a replica: with no local image it
// downloads one; with an image it probes whether the primary's backlog
// still covers the image's stamped offset (partial resync) and re-downloads
// only if not. A replica serves reads, answers writes with -READONLY, and
// is promoted in place by REPLICAOF NO ONE. When the primary demands a full
// resync mid-stream, the process drains, discards its heap state, and
// re-bootstraps automatically.
//
// Speak to it with any RESP client (redis-cli included), or
// internal/server.Client, or cmd/ralloc-apps -app memcached -net.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/alloc"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ralloc"
	"repro/internal/repl"
	"repro/internal/server"
)

const rootKV = 0

// options is the parsed flag set, carried whole through the serve/resync
// loop so every iteration runs with identical configuration.
type options struct {
	heapPath    string
	heapMB      uint64
	shards      int
	buckets     int
	boundMB     uint64
	tcpAddr     string
	unixAddr    string
	maxConns    int
	checkpoint  time.Duration
	saveOnline  bool
	drain       time.Duration
	expireTick  time.Duration
	expireN     int
	metricsAddr string
	slowerThan  time.Duration
	slowlogLen  int
	latThresh   time.Duration
	replicaOf   string
	replBacklog int
}

func main() {
	var o options
	flag.StringVar(&o.heapPath, "heap", "", "heap image path (empty: volatile, data dies with the process)")
	flag.Uint64Var(&o.heapMB, "heapmb", 256, "superblock region size (MB)")
	flag.IntVar(&o.shards, "shards", 0, "partial-list shards per size class (0: near GOMAXPROCS)")
	flag.IntVar(&o.buckets, "buckets", 65536, "hash buckets for a freshly created store")
	flag.Uint64Var(&o.boundMB, "boundmb", 0, "LRU memory budget (MB); 0 = unbounded")
	flag.StringVar(&o.tcpAddr, "tcp", "", "TCP listen address (e.g. :6379)")
	flag.StringVar(&o.unixAddr, "unix", "", "unix socket path")
	flag.IntVar(&o.maxConns, "maxconns", 0, "max simultaneous connections; 0 = unlimited")
	flag.DurationVar(&o.checkpoint, "checkpoint", 0, "periodic checkpoint interval (file-backed heaps); 0 disables")
	flag.BoolVar(&o.saveOnline, "save-online", true, "checkpoint online (write barrier + short cut-over fence) instead of stopping the world for the whole image write")
	flag.DurationVar(&o.drain, "drain", 5*time.Second, "graceful shutdown drain timeout")
	flag.DurationVar(&o.expireTick, "expire-cycle", 100*time.Millisecond, "active expiry cycle interval; 0 disables (lazy expiry only)")
	flag.IntVar(&o.expireN, "expire-sample", 20, "max expired keys reclaimed per expiry cycle")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "HTTP listen address for /metrics (Prometheus text) and /debug/pprof; empty disables")
	flag.DurationVar(&o.slowerThan, "slowlog-log-slower-than", 10*time.Millisecond, "slow-log threshold; negative logs every command, 0 disables the slow log")
	flag.IntVar(&o.slowlogLen, "slowlog-max-len", 128, "slow-log ring capacity")
	flag.DurationVar(&o.latThresh, "latency-threshold", 0, "LATENCY 'command' event threshold; 0 disables command latency events")
	flag.StringVar(&o.replicaOf, "replicaof", "", "start as a replica of this primary (host:port or unix socket path); bootstraps the heap from the primary's checkpoint")
	flag.IntVar(&o.replBacklog, "repl-backlog", 1<<20, "replication backlog capacity in bytes")
	flag.Parse()
	if o.tcpAddr == "" && o.unixAddr == "" {
		o.tcpAddr = ":6379"
	}
	if o.replicaOf != "" && o.heapPath == "" {
		fatal(fmt.Errorf("-replicaof requires -heap: the replica bootstraps by downloading the primary's checkpoint image"))
	}
	if o.boundMB > 0 && o.replicaOf != "" {
		// A bounded store evicts under LRU pressure, and evictions are not
		// propagated through the feed — a bounded replica would silently
		// diverge from its primary.
		fatal(fmt.Errorf("-boundmb cannot be combined with -replicaof: LRU evictions are not replicated"))
	}

	// The serve loop: one iteration per server lifetime. A replica whose
	// primary demands a full resync exits its iteration with resync=true and
	// re-enters — re-probing (and re-downloading) the image before serving
	// again. Everything else exits the loop.
	for {
		if !run(&o) {
			return
		}
		fmt.Println("re-bootstrapping from primary after full-resync demand...")
	}
}

// run serves one server lifetime and reports whether the process should
// re-bootstrap and serve again (replica full-resync path).
func run(o *options) (resync bool) {
	// Replica bootstrap happens before the heap opens: with no usable local
	// image the primary's checkpoint becomes our initial heap state.
	if o.replicaOf != "" {
		if err := bootstrapReplica(o); err != nil {
			fatal(fmt.Errorf("replica bootstrap: %w", err))
		}
	}

	cfg := ralloc.Config{
		SBRegion: o.heapMB << 20,
		Shards:   o.shards,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	}
	heap, dirty, err := ralloc.Open(o.heapPath, cfg)
	if err != nil {
		fatal(err)
	}
	a := heap.AsAllocator()
	bound := o.boundMB << 20

	// Recovery-on-restart sequence: locate the persistent root, run GC
	// recovery if the last session did not close cleanly, then re-attach
	// the store (rebuilding the LRU index when a budget is configured).
	// The recovery statistics and attach duration are retained for the
	// lifetime of the process: INFO persistence reports them, and the
	// recovery phases become LATENCY events once the server exists.
	var (
		store      *kvstore.Store
		recStats   ralloc.RecoveryStats
		recovered  bool
		attachedAt = time.Now()
	)
	root := heap.GetRoot(rootKV, nil)
	switch {
	case root == 0:
		hd := heap.NewHandle()
		if bound > 0 {
			store, root = kvstore.OpenBounded(a, hd, o.buckets, bound)
		} else {
			store, root = kvstore.Open(a, hd, o.buckets)
		}
		heap.SetRoot(rootKV, root)
		fmt.Printf("created store (%d buckets, bound %d MB)\n", o.buckets, o.boundMB)
	case dirty:
		heap.GetRoot(rootKV, kvstore.Filter(a, root))
		stats, err := heap.Recover()
		if err != nil {
			fatal(fmt.Errorf("recovery: %w", err))
		}
		recStats, recovered = stats, true
		store = reattach(a, root, bound)
		fmt.Printf("recovered after crash: %d reachable blocks (%d KB) in %v; %d records\n",
			stats.ReachableBlocks, stats.ReachableBytes/1024, stats.Duration, store.Len())
	default:
		store = reattach(a, root, bound)
		fmt.Printf("reopened after clean shutdown: %d records\n", store.Len())
	}
	attachDur := time.Since(attachedAt)

	shutdownCh := make(chan os.Signal, 2)
	signal.Notify(shutdownCh, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(shutdownCh)
	// requestShutdown never blocks: after the first delivery the main
	// goroutine stops receiving, and extra triggers must not hang senders.
	requestShutdown := func() {
		select {
		case shutdownCh <- syscall.SIGTERM:
		default:
		}
	}
	resyncCh := make(chan struct{}, 1)

	srvCfg := server.Config{
		MaxConns:             o.maxConns,
		OnShutdown:           requestShutdown,
		ActiveExpiryInterval: o.expireTick,
		ActiveExpirySample:   o.expireN,
		SlowlogSlowerThan:    o.slowerThan,
		SlowlogMaxLen:        o.slowlogLen,
		LatencyThreshold:     o.latThresh,
		InfoSections: []server.InfoSection{
			{Name: "heap", Render: func() string {
				return fmt.Sprintf("sb_used_bytes:%d\r\nheap_dirty_at_open:%v\r\n",
					heap.SBUsed(), dirty)
			}},
			{Name: "allocator", Render: func() string { return allocatorInfo(heap) }},
			{Name: "persistence", Render: func() string {
				return persistenceInfo(recovered, recStats, attachDur)
			}},
		},
	}
	if o.heapPath != "" {
		if o.saveOnline {
			// Online checkpoint: the copy phases run while commands keep
			// executing; only the final delta happens under the server's
			// cut-over fence. The image captures the volatile words at the
			// fence — with commands drained, that is exactly the state every
			// acknowledged write reached (the dirty flag rides along still
			// set, so a SIGKILL after this point recovers from here).
			srvCfg.CheckpointOnline = func(fence func(cut func() error) error) (server.CheckpointStats, error) {
				st, err := heap.Region().SaveFileOnline(o.heapPath, fence)
				return server.CheckpointStats{
					Lines:         st.Lines,
					Recopied:      st.Recopied,
					FenceRecopied: st.FenceRecopied,
					Rounds:        st.Rounds,
				}, err
			}
		} else {
			srvCfg.Checkpoint = func() error {
				// With command execution quiesced, a full write-back makes the
				// shadow image consistent; SaveFile then checkpoints exactly
				// the survivable state (the dirty flag rides along still set,
				// so a SIGKILL after this point recovers from here).
				heap.Region().Persist()
				return heap.Region().SaveFile(o.heapPath)
			}
		}
		if bound == 0 {
			// Replication rides on file-backed checkpoints: the image header
			// carries the feed position (SetReplMeta, stamped inside every
			// cut-over fence), and full resyncs stream the image file. A
			// bounded store stays replication-free — LRU evictions are not
			// in the feed.
			srvCfg.ReplBacklogBytes = o.replBacklog
			srvCfg.ReplicaOf = o.replicaOf
			srvCfg.ReplID, srvCfg.ReplOffset = heap.Region().ReplMeta()
			srvCfg.CheckpointOffset = func(id, off uint64) { heap.Region().SetReplMeta(id, off) }
			srvCfg.OpenCheckpoint = func() (*server.CheckpointImage, error) { return openCheckpoint(o.heapPath) }
			srvCfg.OnFullResyncNeeded = func() {
				select {
				case resyncCh <- struct{}{}:
				default:
				}
				requestShutdown()
			}
		}
	}
	srv := server.New(a, store, srvCfg)
	fmt.Printf("serving %d commands (COMMAND / COMMAND INFO for introspection, INFO commandstats for per-command counters)\n",
		server.CommandCount())
	if o.replicaOf != "" {
		fmt.Printf("replica of %s (writes answer -READONLY; promote with REPLICAOF NO ONE)\n", o.replicaOf)
	}

	// Startup timeline events: recovery phases (when GC recovery ran) and
	// the attach duration land in the same LATENCY surface as checkpoints,
	// so `LATENCY LATEST` after a crash-restart shows what recovery cost.
	startupAt := time.Now()
	if recovered {
		srv.Events().Record("recovery-trace", startupAt, recStats.TraceTime)
		srv.Events().Record("recovery-sweep", startupAt, recStats.SweepTime)
		srv.Events().Record("recovery", startupAt, recStats.Duration)
	}
	srv.Events().Record("attach", startupAt, attachDur)

	// Optional observability listener: /metrics (Prometheus text, no
	// dependencies) plus /debug/pprof on a private mux. The registry draws
	// from the server (commands, checkpoints, replication, keyspace) and
	// the heap (per-shard allocator counters).
	var metricsSrv *http.Server
	if o.metricsAddr != "" {
		reg := obs.NewRegistry()
		reg.Register(srv)
		reg.Register(heap)
		ml, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		metricsSrv = &http.Server{Handler: obs.NewHTTPHandler(reg)}
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ml.Addr())
		go func() {
			if err := metricsSrv.Serve(ml); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "metrics serve: %v\n", err)
			}
		}()
	}

	for _, l := range listen(o.tcpAddr, o.unixAddr) {
		fmt.Printf("listening on %s://%s\n", l.Addr().Network(), l.Addr())
		go func(l net.Listener) {
			if err := srv.Serve(l); err != nil && err != server.ErrServerClosed {
				// A dead listener is fatal to serving but must still go
				// through the clean shutdown path, not os.Exit: the heap
				// image has acknowledged writes to save.
				fmt.Fprintf(os.Stderr, "serve %s: %v\n", l.Addr(), err)
				requestShutdown()
			}
		}(l)
	}

	stopTicker := make(chan struct{})
	var tickerWG sync.WaitGroup
	if o.checkpoint > 0 && o.heapPath != "" {
		tickerWG.Add(1)
		go func() {
			defer tickerWG.Done()
			t := time.NewTicker(o.checkpoint)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := srv.Save(); err != nil {
						fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
					}
				case <-stopTicker:
					return
				}
			}
		}()
	}

	sig := <-shutdownCh
	fmt.Printf("shutting down (%v): draining connections...\n", sig)
	// Join the ticker before Close: an in-flight checkpoint SaveFile must
	// not race Close's own SaveFile on the same image path.
	close(stopTicker)
	tickerWG.Wait()
	if err := srv.Shutdown(o.drain); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if o.unixAddr != "" {
		os.Remove(o.unixAddr)
	}
	// Stamp the final feed position into the region before the clean-close
	// save, so the written image records exactly where the stream stopped —
	// a restart resumes with a partial resync from here.
	if id, off := srv.ReplMeta(); id != 0 {
		heap.Region().SetReplMeta(id, off)
	}
	if err := heap.Close(); err != nil {
		fatal(err)
	}
	if o.heapPath != "" {
		fmt.Printf("heap saved cleanly to %s\n", o.heapPath)
	}
	select {
	case <-resyncCh:
		return true
	default:
		return false
	}
}

// bootstrapReplica ensures the local heap image is a usable starting point
// for following the primary: with no image it downloads the primary's
// checkpoint; with one it probes whether the stream position stamped in the
// image header is still inside the primary's backlog — re-downloading (on
// the same connection, consuming the checkpoint the probe already produced)
// only when it is not. Transient dial failures retry briefly so a replica
// and its primary can be started in either order.
func bootstrapReplica(o *options) error {
	var id, off uint64
	havImage := false
	if _, err := os.Stat(o.heapPath); err == nil {
		rid, roff, err := pmem.ReadImageMeta(o.heapPath)
		if err != nil {
			return fmt.Errorf("reading local image header: %w", err)
		}
		id, off = rid, roff
		havImage = id != 0
	}
	var lastErr error
	for attempt, backoff := 0, 200*time.Millisecond; attempt < 10; attempt++ {
		if havImage {
			partial, nid, noff, err := repl.ProbeSync(o.replicaOf, o.heapPath, id, off)
			if err == nil {
				if partial {
					fmt.Printf("resuming replication at offset %d (stream %016x)\n", noff, nid)
				} else {
					fmt.Printf("stream position no longer covered: downloaded fresh image (stream %016x, offset %d)\n", nid, noff)
				}
				return nil
			}
			lastErr = err
		} else {
			nid, noff, err := repl.BootstrapImage(o.replicaOf, o.heapPath)
			if err == nil {
				fmt.Printf("bootstrapped image from %s (stream %016x, offset %d)\n", o.replicaOf, nid, noff)
				return nil
			}
			lastErr = err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	return lastErr
}

// openCheckpoint opens the checkpoint image for streaming to a replica,
// reading the stamped stream position from the opened descriptor itself —
// not a separate path read, which could race a concurrent checkpoint's
// rename and return a different image's header.
func openCheckpoint(path string) (*server.CheckpointImage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, pmem.ImageMetaLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, err
	}
	id, off, err := pmem.ParseImageMeta(hdr)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &server.CheckpointImage{R: f, ReplID: id, ReplOffset: off}, nil
}

// allocatorInfo renders the INFO allocator section from the heap's
// per-shard slow-path counters.
func allocatorInfo(heap *ralloc.Heap) string {
	var b []byte
	var refills, refillBlocks, steals, grows, drains, batches, freeBlocks uint64
	var partial int
	shards := heap.ShardStats()
	for i, s := range shards {
		refills += s.Refills
		refillBlocks += s.RefillBlocks
		steals += s.Steals
		grows += s.Grows
		drains += s.Drains
		batches += s.FreeBatches
		freeBlocks += s.FreeBlocks
		partial += s.PartialSBs
		b = fmt.Appendf(b, "shard%d:refills=%d,refill_blocks=%d,steals=%d,grows=%d,drains=%d,free_batches=%d,free_blocks=%d,partial_sbs=%d\r\n",
			i, s.Refills, s.RefillBlocks, s.Steals, s.Grows, s.Drains, s.FreeBatches, s.FreeBlocks, s.PartialSBs)
	}
	head := fmt.Sprintf("shards:%d\r\nrefills:%d\r\nrefill_blocks:%d\r\nsteals:%d\r\ngrows:%d\r\ndrains:%d\r\nfree_batches:%d\r\nfree_blocks:%d\r\npartial_sbs:%d\r\n",
		len(shards), refills, refillBlocks, steals, grows, drains, batches, freeBlocks, partial)
	return head + string(b)
}

// persistenceInfo renders this process's contribution to INFO persistence:
// the retained startup recovery statistics and attach duration (the server
// splices these lines into its builtin Persistence section).
func persistenceInfo(recovered bool, rs ralloc.RecoveryStats, attach time.Duration) string {
	s := fmt.Sprintf("recovered_at_start:%v\r\nlast_attach_us:%d\r\n", recovered, attach.Microseconds())
	if recovered {
		s += fmt.Sprintf("recovery_reachable_blocks:%d\r\nrecovery_reachable_bytes:%d\r\nrecovery_trace_work:%d\r\nrecovery_sweep_units:%d\r\nrecovery_trace_us:%d\r\nrecovery_sweep_us:%d\r\nrecovery_total_us:%d\r\n",
			rs.ReachableBlocks, rs.ReachableBytes, rs.TraceWork, rs.SweepUnits,
			rs.TraceTime.Microseconds(), rs.SweepTime.Microseconds(), rs.Duration.Microseconds())
	}
	return s
}

// reattach re-opens the store at root, bounded when a budget is set.
func reattach(a alloc.Allocator, root, bound uint64) *kvstore.Store {
	if bound > 0 {
		return kvstore.AttachBounded(a, root, bound)
	}
	return kvstore.Attach(a, root)
}

// listen opens the configured listeners, removing a stale unix socket first.
func listen(tcpAddr, unixAddr string) []net.Listener {
	var ls []net.Listener
	if tcpAddr != "" {
		l, err := net.Listen("tcp", tcpAddr)
		if err != nil {
			fatal(err)
		}
		ls = append(ls, l)
	}
	if unixAddr != "" {
		os.Remove(unixAddr)
		l, err := net.Listen("unix", unixAddr)
		if err != nil {
			fatal(err)
		}
		ls = append(ls, l)
	}
	return ls
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
