// Command ralloc-serve is the stand-alone network server the paper's
// application study deliberately stripped away (§6.3): a RESP2-speaking
// key-value server whose entire dataset lives in a recoverable Ralloc heap.
// A SIGKILL'd server restarts through Open → dirty → Recover →
// kvstore.AttachBounded and keeps serving from the last checkpoint; a clean
// shutdown (SIGTERM or the SHUTDOWN command) drains connections and writes
// the heap image back with the dirty flag cleared.
//
//	ralloc-serve -heap /tmp/kv.heap -tcp :6379
//	ralloc-serve -heap /tmp/kv.heap -unix /tmp/kv.sock -boundmb 64 -checkpoint 30s
//	ralloc-serve -heap /tmp/kv.heap -expire-cycle 50ms -expire-sample 100
//	ralloc-serve -heap /tmp/kv.heap -save-online=false   # stop-the-world SAVE
//
// SAVE checkpoints online by default: a write barrier tracks lines dirtied
// while the image streams out, dirty lines are re-copied, and commands are
// excluded only for the final cut-over delta (-save-online=false restores
// the quiesced stop-the-world path).
//
// Keys may carry TTLs (EXPIRE/PEXPIRE/SETEX/PSETEX/TTL/PTTL/PERSIST): the
// deadline is persisted inside the record itself, so expiration survives
// kill -9 — a key that expired before the crash is still expired after
// recovery. Space is reclaimed by the active expiry cycle (-expire-cycle),
// which runs under the same quiesce barrier as SAVE checkpoints.
//
// Speak to it with any RESP client (redis-cli included), or
// internal/server.Client, or cmd/ralloc-apps -app memcached -net.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/alloc"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ralloc"
	"repro/internal/server"
)

const rootKV = 0

func main() {
	var (
		heapPath   = flag.String("heap", "", "heap image path (empty: volatile, data dies with the process)")
		heapMB     = flag.Uint64("heapmb", 256, "superblock region size (MB)")
		shards     = flag.Int("shards", 0, "partial-list shards per size class (0: near GOMAXPROCS)")
		buckets    = flag.Int("buckets", 65536, "hash buckets for a freshly created store")
		boundMB    = flag.Uint64("boundmb", 0, "LRU memory budget (MB); 0 = unbounded")
		tcpAddr    = flag.String("tcp", "", "TCP listen address (e.g. :6379)")
		unixAddr   = flag.String("unix", "", "unix socket path")
		maxConns   = flag.Int("maxconns", 0, "max simultaneous connections; 0 = unlimited")
		checkpoint = flag.Duration("checkpoint", 0, "periodic checkpoint interval (file-backed heaps); 0 disables")
		saveOnline = flag.Bool("save-online", true, "checkpoint online (write barrier + short cut-over fence) instead of stopping the world for the whole image write")
		drain      = flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
		expireTick = flag.Duration("expire-cycle", 100*time.Millisecond, "active expiry cycle interval; 0 disables (lazy expiry only)")
		expireN    = flag.Int("expire-sample", 20, "max expired keys reclaimed per expiry cycle")

		metricsAddr = flag.String("metrics-addr", "", "HTTP listen address for /metrics (Prometheus text) and /debug/pprof; empty disables")
		slowerThan  = flag.Duration("slowlog-log-slower-than", 10*time.Millisecond, "slow-log threshold; negative logs every command, 0 disables the slow log")
		slowlogLen  = flag.Int("slowlog-max-len", 128, "slow-log ring capacity")
		latThresh   = flag.Duration("latency-threshold", 0, "LATENCY 'command' event threshold; 0 disables command latency events")
	)
	flag.Parse()
	if *tcpAddr == "" && *unixAddr == "" {
		*tcpAddr = ":6379"
	}

	cfg := ralloc.Config{
		SBRegion: *heapMB << 20,
		Shards:   *shards,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	}
	heap, dirty, err := ralloc.Open(*heapPath, cfg)
	if err != nil {
		fatal(err)
	}
	a := heap.AsAllocator()
	bound := *boundMB << 20

	// Recovery-on-restart sequence: locate the persistent root, run GC
	// recovery if the last session did not close cleanly, then re-attach
	// the store (rebuilding the LRU index when a budget is configured).
	// The recovery statistics and attach duration are retained for the
	// lifetime of the process: INFO persistence reports them, and the
	// recovery phases become LATENCY events once the server exists.
	var (
		store      *kvstore.Store
		recStats   ralloc.RecoveryStats
		recovered  bool
		attachedAt = time.Now()
	)
	root := heap.GetRoot(rootKV, nil)
	switch {
	case root == 0:
		hd := heap.NewHandle()
		if bound > 0 {
			store, root = kvstore.OpenBounded(a, hd, *buckets, bound)
		} else {
			store, root = kvstore.Open(a, hd, *buckets)
		}
		heap.SetRoot(rootKV, root)
		fmt.Printf("created store (%d buckets, bound %d MB)\n", *buckets, *boundMB)
	case dirty:
		heap.GetRoot(rootKV, kvstore.Filter(a, root))
		stats, err := heap.Recover()
		if err != nil {
			fatal(fmt.Errorf("recovery: %w", err))
		}
		recStats, recovered = stats, true
		store = reattach(a, root, bound)
		fmt.Printf("recovered after crash: %d reachable blocks (%d KB) in %v; %d records\n",
			stats.ReachableBlocks, stats.ReachableBytes/1024, stats.Duration, store.Len())
	default:
		store = reattach(a, root, bound)
		fmt.Printf("reopened after clean shutdown: %d records\n", store.Len())
	}
	attachDur := time.Since(attachedAt)

	shutdownCh := make(chan os.Signal, 2)
	signal.Notify(shutdownCh, syscall.SIGINT, syscall.SIGTERM)
	// requestShutdown never blocks: after the first delivery the main
	// goroutine stops receiving, and extra triggers must not hang senders.
	requestShutdown := func() {
		select {
		case shutdownCh <- syscall.SIGTERM:
		default:
		}
	}

	srvCfg := server.Config{
		MaxConns:             *maxConns,
		OnShutdown:           requestShutdown,
		ActiveExpiryInterval: *expireTick,
		ActiveExpirySample:   *expireN,
		SlowlogSlowerThan:    *slowerThan,
		SlowlogMaxLen:        *slowlogLen,
		LatencyThreshold:     *latThresh,
		InfoSections: []server.InfoSection{
			{Name: "heap", Render: func() string {
				return fmt.Sprintf("sb_used_bytes:%d\r\nheap_dirty_at_open:%v\r\n",
					heap.SBUsed(), dirty)
			}},
			{Name: "allocator", Render: func() string { return allocatorInfo(heap) }},
			{Name: "persistence", Render: func() string {
				return persistenceInfo(recovered, recStats, attachDur)
			}},
		},
	}
	if *heapPath != "" {
		if *saveOnline {
			// Online checkpoint: the copy phases run while commands keep
			// executing; only the final delta happens under the server's
			// cut-over fence. The image captures the volatile words at the
			// fence — with commands drained, that is exactly the state every
			// acknowledged write reached (the dirty flag rides along still
			// set, so a SIGKILL after this point recovers from here).
			srvCfg.CheckpointOnline = func(fence func(cut func() error) error) (server.CheckpointStats, error) {
				st, err := heap.Region().SaveFileOnline(*heapPath, fence)
				return server.CheckpointStats{
					Lines:         st.Lines,
					Recopied:      st.Recopied,
					FenceRecopied: st.FenceRecopied,
					Rounds:        st.Rounds,
				}, err
			}
		} else {
			srvCfg.Checkpoint = func() error {
				// With command execution quiesced, a full write-back makes the
				// shadow image consistent; SaveFile then checkpoints exactly
				// the survivable state (the dirty flag rides along still set,
				// so a SIGKILL after this point recovers from here).
				heap.Region().Persist()
				return heap.Region().SaveFile(*heapPath)
			}
		}
	}
	srv := server.New(a, store, srvCfg)
	fmt.Printf("serving %d commands (COMMAND / COMMAND INFO for introspection, INFO commandstats for per-command counters)\n",
		server.CommandCount())

	// Startup timeline events: recovery phases (when GC recovery ran) and
	// the attach duration land in the same LATENCY surface as checkpoints,
	// so `LATENCY LATEST` after a crash-restart shows what recovery cost.
	startupAt := time.Now()
	if recovered {
		srv.Events().Record("recovery-trace", startupAt, recStats.TraceTime)
		srv.Events().Record("recovery-sweep", startupAt, recStats.SweepTime)
		srv.Events().Record("recovery", startupAt, recStats.Duration)
	}
	srv.Events().Record("attach", startupAt, attachDur)

	// Optional observability listener: /metrics (Prometheus text, no
	// dependencies) plus /debug/pprof on a private mux. The registry draws
	// from the server (commands, checkpoints, keyspace) and the heap
	// (per-shard allocator counters).
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		reg.Register(srv)
		reg.Register(heap)
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		metricsSrv = &http.Server{Handler: obs.NewHTTPHandler(reg)}
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ml.Addr())
		go func() {
			if err := metricsSrv.Serve(ml); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "metrics serve: %v\n", err)
			}
		}()
	}

	for _, l := range listen(*tcpAddr, *unixAddr) {
		fmt.Printf("listening on %s://%s\n", l.Addr().Network(), l.Addr())
		go func(l net.Listener) {
			if err := srv.Serve(l); err != nil && err != server.ErrServerClosed {
				// A dead listener is fatal to serving but must still go
				// through the clean shutdown path, not os.Exit: the heap
				// image has acknowledged writes to save.
				fmt.Fprintf(os.Stderr, "serve %s: %v\n", l.Addr(), err)
				requestShutdown()
			}
		}(l)
	}

	stopTicker := make(chan struct{})
	var tickerWG sync.WaitGroup
	if *checkpoint > 0 && *heapPath != "" {
		tickerWG.Add(1)
		go func() {
			defer tickerWG.Done()
			t := time.NewTicker(*checkpoint)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := srv.Save(); err != nil {
						fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
					}
				case <-stopTicker:
					return
				}
			}
		}()
	}

	sig := <-shutdownCh
	fmt.Printf("shutting down (%v): draining connections...\n", sig)
	// Join the ticker before Close: an in-flight checkpoint SaveFile must
	// not race Close's own SaveFile on the same image path.
	close(stopTicker)
	tickerWG.Wait()
	if err := srv.Shutdown(*drain); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if *unixAddr != "" {
		os.Remove(*unixAddr)
	}
	if err := heap.Close(); err != nil {
		fatal(err)
	}
	if *heapPath != "" {
		fmt.Printf("heap saved cleanly to %s\n", *heapPath)
	}
}

// allocatorInfo renders the INFO allocator section from the heap's
// per-shard slow-path counters.
func allocatorInfo(heap *ralloc.Heap) string {
	var b []byte
	var refills, refillBlocks, steals, grows, drains, batches, freeBlocks uint64
	var partial int
	shards := heap.ShardStats()
	for i, s := range shards {
		refills += s.Refills
		refillBlocks += s.RefillBlocks
		steals += s.Steals
		grows += s.Grows
		drains += s.Drains
		batches += s.FreeBatches
		freeBlocks += s.FreeBlocks
		partial += s.PartialSBs
		b = fmt.Appendf(b, "shard%d:refills=%d,refill_blocks=%d,steals=%d,grows=%d,drains=%d,free_batches=%d,free_blocks=%d,partial_sbs=%d\r\n",
			i, s.Refills, s.RefillBlocks, s.Steals, s.Grows, s.Drains, s.FreeBatches, s.FreeBlocks, s.PartialSBs)
	}
	head := fmt.Sprintf("shards:%d\r\nrefills:%d\r\nrefill_blocks:%d\r\nsteals:%d\r\ngrows:%d\r\ndrains:%d\r\nfree_batches:%d\r\nfree_blocks:%d\r\npartial_sbs:%d\r\n",
		len(shards), refills, refillBlocks, steals, grows, drains, batches, freeBlocks, partial)
	return head + string(b)
}

// persistenceInfo renders this process's contribution to INFO persistence:
// the retained startup recovery statistics and attach duration (the server
// splices these lines into its builtin Persistence section).
func persistenceInfo(recovered bool, rs ralloc.RecoveryStats, attach time.Duration) string {
	s := fmt.Sprintf("recovered_at_start:%v\r\nlast_attach_us:%d\r\n", recovered, attach.Microseconds())
	if recovered {
		s += fmt.Sprintf("recovery_reachable_blocks:%d\r\nrecovery_reachable_bytes:%d\r\nrecovery_trace_work:%d\r\nrecovery_sweep_units:%d\r\nrecovery_trace_us:%d\r\nrecovery_sweep_us:%d\r\nrecovery_total_us:%d\r\n",
			rs.ReachableBlocks, rs.ReachableBytes, rs.TraceWork, rs.SweepUnits,
			rs.TraceTime.Microseconds(), rs.SweepTime.Microseconds(), rs.Duration.Microseconds())
	}
	return s
}

// reattach re-opens the store at root, bounded when a budget is set.
func reattach(a alloc.Allocator, root, bound uint64) *kvstore.Store {
	if bound > 0 {
		return kvstore.AttachBounded(a, root, bound)
	}
	return kvstore.Attach(a, root)
}

// listen opens the configured listeners, removing a stale unix socket first.
func listen(tcpAddr, unixAddr string) []net.Listener {
	var ls []net.Listener
	if tcpAddr != "" {
		l, err := net.Listen("tcp", tcpAddr)
		if err != nil {
			fatal(err)
		}
		ls = append(ls, l)
	}
	if unixAddr != "" {
		os.Remove(unixAddr)
		l, err := net.Listen("unix", unixAddr)
		if err != nil {
			fatal(err)
		}
		ls = append(ls, l)
	}
	return ls
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
