// Command ralloc-bench regenerates the allocator microbenchmark figures of
// the paper (Fig. 5a–5d): Threadtest, Shbench, Larson and Prod-con, swept
// over thread counts for all five allocators. Output is a table with one
// row per thread count and one column per allocator, in the paper's units.
//
// Examples:
//
//	ralloc-bench -bench threadtest
//	ralloc-bench -bench larson -maxsize 2048        # in-text Larson variant
//	ralloc-bench -bench prodcon -threads 2,4,8
//	ralloc-bench -bench all -scale 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/pmem"
)

func parseThreads(s string) ([]int, error) {
	if s == "" {
		return bench.DefaultThreads(), nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		benchName = flag.String("bench", "threadtest", "threadtest | shbench | larson | prodcon | all")
		threadStr = flag.String("threads", "", "comma-separated thread counts (default: host-scaled grid)")
		allocStr  = flag.String("allocs", strings.Join(bench.AllocNames, ","), "allocators to run")
		scale     = flag.Float64("scale", 1.0, "workload scale factor relative to the paper")
		maxSize   = flag.Uint64("maxsize", 400, "Larson max object size (400 paper, 2048 in-text variant)")
		flushNs   = flag.Int("flushns", int(bench.DefaultNVM.FlushLatency/time.Nanosecond), "simulated flush latency (ns)")
		fenceNs   = flag.Int("fencens", int(bench.DefaultNVM.FenceLatency/time.Nanosecond), "simulated fence latency (ns)")
		heapMB    = flag.Uint64("heapmb", 512, "heap size per allocator instance (MB)")
	)
	flag.Parse()

	threads, err := parseThreads(*threadStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pcfg := pmem.Config{
		FlushLatency: time.Duration(*flushNs) * time.Nanosecond,
		FenceLatency: time.Duration(*fenceNs) * time.Nanosecond,
	}
	factories := bench.Factories(pcfg)
	var allocs []string
	for _, a := range strings.Split(*allocStr, ",") {
		a = strings.TrimSpace(a)
		if _, ok := factories[a]; !ok {
			fmt.Fprintf(os.Stderr, "unknown allocator %q\n", a)
			os.Exit(2)
		}
		allocs = append(allocs, a)
	}

	names := []string{*benchName}
	if *benchName == "all" {
		names = []string{"threadtest", "shbench", "larson", "prodcon"}
	}
	for _, name := range names {
		runFigure(name, factories, allocs, threads, *scale, *maxSize, *heapMB<<20)
	}
}

func runFigure(name string, factories map[string]bench.Factory, allocs []string,
	threads []int, scale float64, larsonMax uint64, heap uint64) {

	type runner struct {
		unit string
		fn   func(a alloc.Allocator, t int) bench.Result
		val  func(r bench.Result) float64
	}
	scaleN := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	runners := map[string]runner{
		// Paper: 10^4 iterations × 10^5 objects; we default to 1/100
		// of that per unit scale and report seconds.
		"threadtest": {
			unit: "seconds (lower is better)",
			fn: func(a alloc.Allocator, t int) bench.Result {
				return bench.Threadtest(a, t, scaleN(20), scaleN(10000), 64)
			},
			val: func(r bench.Result) float64 { return r.Seconds() },
		},
		"shbench": {
			unit: "seconds (lower is better)",
			fn: func(a alloc.Allocator, t int) bench.Result {
				return bench.Shbench(a, t, scaleN(20000))
			},
			val: func(r bench.Result) float64 { return r.Seconds() },
		},
		"larson": {
			unit: "M ops/sec (higher is better)",
			fn: func(a alloc.Allocator, t int) bench.Result {
				cfg := bench.DefaultLarson()
				cfg.MaxSize = larsonMax
				cfg.OpsPerTh = scaleN(cfg.OpsPerTh)
				return bench.Larson(a, t, cfg)
			},
			val: func(r bench.Result) float64 { return r.Mops() },
		},
		"prodcon": {
			unit: "seconds (lower is better)",
			fn: func(a alloc.Allocator, t int) bench.Result {
				pairs := t / 2
				if pairs < 1 {
					pairs = 1
				}
				return bench.Prodcon(a, pairs, scaleN(2_000_000), 64)
			},
			val: func(r bench.Result) float64 { return r.Seconds() },
		},
	}
	r, ok := runners[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
		os.Exit(2)
	}

	fig := map[string]string{
		"threadtest": "Figure 5a", "shbench": "Figure 5b",
		"larson": "Figure 5c", "prodcon": "Figure 5d",
	}[name]
	fmt.Printf("# %s: %s — %s\n", fig, name, r.unit)
	fmt.Printf("%-8s", "threads")
	for _, a := range allocs {
		fmt.Printf(" %12s", a)
	}
	fmt.Println()

	for _, t := range threads {
		fmt.Printf("%-8d", t)
		for _, aName := range allocs {
			series, err := bench.Sweep(factories[aName], aName, heap, []int{t}, r.fn)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", aName, err)
				os.Exit(1)
			}
			fmt.Printf(" %12.3f", r.val(series.Points[0].Result))
		}
		fmt.Println()
	}
	fmt.Println()
}
