// Command ralloc-gc regenerates the recovery-time figures (Fig. 6): GC +
// metadata-reconstruction time as a function of the number of reachable
// blocks, for a Treiber stack (6a) and the Natarajan–Mittal BST (6b). The
// -filter=false flag runs the conservative-tracing ablation (A1 in
// DESIGN.md) on the stack.
//
// Examples:
//
//	ralloc-gc -struct stack -sizes 100000,200000,400000
//	ralloc-gc -struct nmbst
//	ralloc-gc -struct stack -filter=false
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		structName = flag.String("struct", "stack", "stack | nmbst")
		sizesStr   = flag.String("sizes", "50000,100000,200000,400000,800000", "reachable-node counts to sample")
		useFilter  = flag.Bool("filter", true, "use the structure's filter function (false = conservative ablation)")
	)
	flag.Parse()

	var sizes []int
	for _, p := range strings.Split(*sizesStr, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", p)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}

	fig := "Figure 6a (Treiber stack)"
	if *structName == "nmbst" {
		fig = "Figure 6b (Natarajan & Mittal tree)"
	}
	mode := "filter functions"
	if !*useFilter {
		mode = "conservative tracing (ablation A1)"
	}
	fmt.Printf("# %s: GC time vs reachable blocks — %s\n", fig, mode)
	fmt.Printf("%-12s %-16s %-14s %s\n", "nodes", "reachable", "gc_time_ms", "ns_per_block")

	for _, n := range sizes {
		var res bench.GCResult
		var err error
		switch *structName {
		case "stack":
			res, err = bench.GCStack(n, *useFilter)
		case "nmbst":
			res, err = bench.GCTree(n)
		default:
			fmt.Fprintf(os.Stderr, "unknown structure %q\n", *structName)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		perBlock := float64(res.GCTime.Nanoseconds()) / float64(res.ReachableBlocks)
		fmt.Printf("%-12d %-16d %-14.2f %.1f\n",
			n, res.ReachableBlocks, float64(res.GCTime.Microseconds())/1000, perBlock)
	}
}
