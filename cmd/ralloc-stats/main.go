// Command ralloc-stats prints the persistence-event accounting behind the
// paper's §6.2 explanation of Figures 5a–5d: per malloc/free pair, how many
// flushes, fences and CAS operations each allocator issues. Ralloc's
// near-zero flush rate versus Makalu's and PMDK's O(1)-per-op rates *is*
// the performance story; this tool measures it directly instead of
// inferring it from wall-clock time.
//
//	ralloc-stats -ops 100000 -size 64
//	ralloc-stats -workload larson
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/pmem"
)

func main() {
	var (
		ops      = flag.Int("ops", 100_000, "malloc/free pairs to run")
		size     = flag.Uint64("size", 64, "object size for the churn workload")
		workload = flag.String("workload", "churn", "churn | threadtest | larson")
		threads  = flag.Int("threads", 4, "threads for threadtest/larson")
	)
	flag.Parse()

	// No latency injection: we are counting events, not timing them.
	factories := bench.Factories(pmem.Config{})

	fmt.Printf("# persistence events per malloc/free pair (%s, %d ops)\n", *workload, *ops)
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "allocator", "flush/op", "fence/op", "cas/op", "store/op")
	for _, name := range bench.AllocNames {
		a, err := factories[name](512 << 20)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		before := a.Region().Stats()
		nops := runWorkload(a, *workload, *ops, *size, *threads)
		s := a.Region().Stats()
		d := func(b, e uint64) float64 { return float64(e-b) / float64(nops) }
		fmt.Printf("%-10s %12.4f %12.4f %12.4f %12.4f\n", name,
			d(before.Flushes, s.Flushes),
			d(before.Fences, s.Fences),
			d(before.CASes, s.CASes),
			d(before.Stores, s.Stores))
		a.Close()
	}
}

// runWorkload returns the number of allocator operations performed.
func runWorkload(a alloc.Allocator, workload string, ops int, size uint64, threads int) int {
	switch workload {
	case "churn":
		hd := a.NewHandle()
		for i := 0; i < ops; i++ {
			off := hd.Malloc(size)
			if off == 0 {
				panic("OOM")
			}
			hd.Free(off)
		}
		return 2 * ops
	case "threadtest":
		res := bench.Threadtest(a, threads, 1, ops/threads, size)
		return int(res.Ops)
	case "larson":
		cfg := bench.DefaultLarson()
		cfg.OpsPerTh = ops / threads
		res := bench.Larson(a, threads, cfg)
		return int(res.Ops) * 2
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", workload)
		os.Exit(2)
		return 0
	}
}
