// ralloc-vet is the repository's static-analysis multichecker: it runs the
// internal/analysis suite (persistorder, deferunlock, atomicword,
// hookpurity, obspurity, replpurity) over the given package patterns and fails on any
// diagnostic.
//
// Usage:
//
//	go run ./cmd/ralloc-vet ./...
//	go run ./cmd/ralloc-vet -list
//	go run ./cmd/ralloc-vet -notests ./internal/server
//
// Diagnostics print as file:line:col: message (analyzer). Suppress a
// finding with //pmemvet:ignore <reason> on (or above) its line; the
// reason is mandatory. See DESIGN.md "Static analysis".
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers and exit")
	noTests := flag.Bool("notests", false, "exclude in-package _test.go files from analysis")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ralloc-vet [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(load.Config{Tests: !*noTests}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ralloc-vet: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ralloc-vet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
