// Command ralloc-apps regenerates the application figures of the paper:
// Vacation (Fig. 5e, persistent allocators only, seconds) and Memcached
// with YCSB (Fig. 5f, K ops/sec; workload A by default, workload B for the
// in-text read-dominant comparison).
//
// Examples:
//
//	ralloc-apps -app vacation
//	ralloc-apps -app memcached -workload a
//	ralloc-apps -app memcached -workload b -threads 1,2,4
//	ralloc-apps -app memcached -workload a -net -pipeline 32
//	ralloc-apps -app memcached -workload c -valuesize 1024
//	ralloc-apps -app memcached -workload t -ttlms 500 -net
//
// Workload t writes expiring records (TTL churn): updates attach short TTLs,
// reads miss on expired records (lazy expiry), and reclamation — the active
// expiry cycle in network mode, inline sweeps in library mode — frees them
// while traffic runs, exercising the allocate/expire/reclaim cache lifecycle.
//
// With -net, the memcached workload additionally runs over sockets — the
// store served by internal/server on a unix socket, each thread a pipelining
// RESP client — and both the library-mode and network-mode K ops/s are
// printed, so the cost of the network layer the paper removed is measured
// directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/pmem"
	"repro/internal/ycsb"
)

func main() {
	var (
		app       = flag.String("app", "vacation", "vacation | memcached | benchjson")
		workload  = flag.String("workload", "a", "YCSB workload: a (50/50), b (95/5), c (read-only), t (expiring records) or h (hash fields)")
		ttlFrac   = flag.Float64("ttlfrac", -1, "fraction of updates that attach a TTL (-1: workload default)")
		ttlMillis = flag.Int64("ttlms", 0, "TTL upper bound in ms for expiring updates (0: workload default)")
		fields    = flag.Int("fields", 0, "hash fields per record for workload h (0: workload default, 16)")
		jsonOut   = flag.String("out", "BENCH_10.json", "output path for -app benchjson")
		p99Gate   = flag.Float64("p99-save-gate", 0, "benchjson: fail if workload-a p99 under background SAVE exceeds this multiple of the steady-state p99; 0 disables")
		threadStr = flag.String("threads", "", "comma-separated thread counts")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		records   = flag.Int("records", 100_000, "memcached record count (paper: 100K)")
		valueSize = flag.Int("valuesize", 0, "memcached value bytes per record (0: workload default, 100)")
		netMode   = flag.Bool("net", false, "also run memcached over sockets (unix socket + RESP pipeline)")
		pipeline  = flag.Int("pipeline", 16, "commands in flight per network client (with -net)")
		relations = flag.Int("relations", 16384, "vacation relations (paper: 16384)")
		flushNs   = flag.Int("flushns", int(bench.DefaultNVM.FlushLatency/time.Nanosecond), "simulated flush latency (ns)")
		heapMB    = flag.Uint64("heapmb", 1024, "heap size per allocator instance (MB)")
	)
	flag.Parse()

	threads := bench.DefaultThreads()
	if *threadStr != "" {
		threads = nil
		for _, p := range strings.Split(*threadStr, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			threads = append(threads, v)
		}
	}
	pcfg := pmem.Config{
		FlushLatency: time.Duration(*flushNs) * time.Nanosecond,
		FenceLatency: bench.DefaultNVM.FenceLatency,
	}
	factories := bench.Factories(pcfg)
	scaleN := func(n int) int {
		v := int(float64(n) * *scale)
		if v < 1 {
			v = 1
		}
		return v
	}

	switch *app {
	case "vacation":
		// The paper tests only persistent allocators on Vacation
		// (§6.3): the code is explicitly persistence-instrumented.
		cfg := bench.DefaultVacation()
		cfg.Vac.Relations = *relations
		cfg.TxPerThread = scaleN(cfg.TxPerThread)
		fmt.Printf("# Figure 5e: Vacation — seconds (lower is better); relations=%d, 5 queries/txn, 90%% coverage\n", *relations)
		printSweep(factories, bench.PersistentAllocNames, threads, *heapMB<<20,
			func(a alloc.Allocator, t int) bench.Result { return bench.Vacation(a, t, cfg) },
			func(r bench.Result) float64 { return r.Seconds() })
	case "memcached":
		var w ycsb.Workload
		switch *workload {
		case "a":
			w = ycsb.WorkloadA(*records)
		case "b":
			w = ycsb.WorkloadB(*records)
		case "c":
			w = ycsb.WorkloadC(*records)
		case "t":
			w = ycsb.WorkloadT(*records)
		case "h":
			w = ycsb.WorkloadH(*records)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
		if *valueSize > 0 {
			w.ValueSize = *valueSize
		}
		if *ttlFrac >= 0 {
			w.TTLFrac = *ttlFrac
		}
		if *ttlMillis > 0 {
			w.TTLMillis = *ttlMillis
		}
		if w.TTLFrac > 0 && w.TTLMillis <= 0 {
			w.TTLMillis = 250
		}
		if *fields > 0 {
			w.Fields = *fields
		}
		cfg := bench.MemcachedConfig{Workload: w, OpsPerTh: scaleN(20000)}
		fmt.Printf("# Figure 5f: Memcached YCSB-%s — K ops/sec (higher is better); %d records, %d B values, library mode\n",
			strings.ToUpper(*workload), *records, w.ValueSize)
		printSweep(factories, bench.AllocNames, threads, *heapMB<<20,
			func(a alloc.Allocator, t int) bench.Result { return bench.Memcached(a, t, cfg) },
			func(r bench.Result) float64 { return r.Kops() })
		if *netMode {
			fmt.Printf("# Memcached YCSB-%s — K ops/sec, network mode (unix socket, RESP, pipeline %d)\n",
				strings.ToUpper(*workload), *pipeline)
			printSweep(factories, bench.AllocNames, threads, *heapMB<<20,
				func(a alloc.Allocator, t int) bench.Result { return bench.MemcachedNet(a, t, cfg, *pipeline) },
				func(r bench.Result) float64 { return r.Kops() })
		}
	case "benchjson":
		// CI perf-trajectory baseline: pipelined network-mode K ops/s for
		// the GET-only, GET/SET, and HGET/HSET workloads on ralloc — each
		// also measured under a background online SAVE loop — plus the
		// shard-scaling axes (workload-a throughput and post-crash recovery
		// by shard count), written as one JSON document (BENCH_10.json) so
		// every future PR can diff against it.
		if err := benchJSON(factories, pcfg, *records, scaleN(20000), *pipeline, *heapMB<<20, *jsonOut, *p99Gate); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}
}

// benchJSON runs the three pipelined serving workloads — c (pure GET), a
// (GET/SET 50/50), h (HGET/HSET 50/50 over hash objects) — against the
// ralloc-backed server and writes K ops/s plus server-side p50/p99 command
// latency (from the per-command histograms) per workload as JSON, and then
// the workload-C read fan-out over 1 and 2 feed-bootstrapped replicas. Each
// workload also runs under a continuous background online SAVE loop; the
// p99 under that checkpoint pressure is recorded per workload, and with
// gateFactor > 0 a workload-A p99-under-save worse than gateFactor× the
// steady-state p99 fails the run — the regression gate for the online
// checkpoint's "don't stop the world" promise.
//
// Two shard-scaling axes close the document: workload-A K ops/s and
// post-crash recovery wall time at 1, 2, and 4 shards, total footprint held
// constant across the rows. Both scale with available cores (independent
// heaps recover and serve in parallel); on a single-core runner the rows
// record the sharding overhead instead of its win — the numbers are honest
// either way, and the recovery row still reports the parallel wall clock
// next to the summed per-shard work.
func benchJSON(factories map[string]bench.Factory, pcfg pmem.Config, records, opsPerTh, pipeline int, heap uint64, out string, gateFactor float64) error {
	threads := runtime.GOMAXPROCS(0)
	if threads > 4 {
		threads = 4
	}
	workloads := []ycsb.Workload{
		ycsb.WorkloadC(records),
		ycsb.WorkloadA(records),
		ycsb.WorkloadH(records),
	}
	kops := map[string]float64{}
	p50 := map[string]float64{}
	p99 := map[string]float64{}
	p99save := map[string]float64{}
	saves := map[string]uint64{}
	for _, w := range workloads {
		cfg := bench.MemcachedConfig{Workload: w, OpsPerTh: opsPerTh}
		series, err := bench.Sweep(factories["ralloc"], "ralloc", heap, []int{threads},
			func(a alloc.Allocator, t int) bench.Result { return bench.MemcachedNet(a, t, cfg, pipeline) })
		if err != nil {
			return err
		}
		res := series.Points[0].Result
		kops[w.Name] = res.Kops()
		p50[w.Name] = res.P50us
		p99[w.Name] = res.P99us

		// The save variant runs on a right-sized region and a longer
		// operation phase: the checkpoint loop must complete several full
		// copy + fence cycles *during* traffic so the measured p99
		// actually contains fence stalls — on a multi-GB region a single
		// streaming pass outlives the whole benchmark and the cut-over
		// never happens. The region is sized to ~2x the workload's record
		// footprint (min 64MB) and the op count scales with it so the run
		// outlasts the copy. Its throughput is not recorded, so the extra
		// ops don't skew the kops baseline.
		fields := w.Fields
		if fields < 1 {
			fields = 1
		}
		saveHeap := uint64(w.Records) * uint64(fields) * uint64(w.ValueSize+160) * 2
		if saveHeap < 64<<20 {
			saveHeap = 64 << 20
		}
		if saveHeap > heap {
			saveHeap = heap
		}
		mult := 8 * int((saveHeap+64<<20-1)/(64<<20))
		if mult > 64 {
			mult = 64
		}
		saveCfg := cfg
		saveCfg.OpsPerTh = cfg.OpsPerTh * mult
		series, err = bench.Sweep(factories["ralloc"], "ralloc", saveHeap, []int{threads},
			func(a alloc.Allocator, t int) bench.Result { return bench.MemcachedNetSave(a, t, saveCfg, pipeline) })
		if err != nil {
			return err
		}
		sres := series.Points[0].Result
		p99save[w.Name] = sres.P99us
		saves[w.Name] = sres.Saves
		fmt.Printf("benchjson: workload %s: %.1f K ops/s, p50=%.1fus p99=%.1fus, p99-under-save=%.1fus (%d saves; threads=%d pipeline=%d)\n",
			w.Name, kops[w.Name], p50[w.Name], p99[w.Name], p99save[w.Name], saves[w.Name], threads, pipeline)
	}

	// Read fan-out: workload C served by 1 vs 2 replicas of one primary,
	// each replica bootstrapped through the replication feed. The pair of
	// rows is the scaling claim — the second replica should buy real read
	// throughput because replicas serve from their own heaps.
	replKops := map[string]float64{}
	for _, n := range []int{1, 2} {
		cfg := bench.MemcachedConfig{Workload: ycsb.WorkloadC(records), OpsPerTh: opsPerTh}
		// At least one client thread per replica, or round-robin never
		// reaches the second node and the scaling row measures nothing.
		rthreads := threads
		if rthreads < n {
			rthreads = n
		}
		res, err := bench.MemcachedNetReplicas(factories["ralloc"], heap, rthreads, cfg, pipeline, n)
		if err != nil {
			return fmt.Errorf("workload-c-replicas (%d): %w", n, err)
		}
		replKops[strconv.Itoa(n)] = res.Kops()
		fmt.Printf("benchjson: workload c x%d replica(s): %.1f K ops/s, p50=%.1fus p99=%.1fus (threads=%d pipeline=%d)\n",
			n, res.Kops(), res.P50us, res.P99us, rthreads, pipeline)
	}
	// Shard scaling: the same workload-A traffic against 1, 2, and 4 shards,
	// and post-crash recovery of the same record set held as 1, 2, and 4
	// shards. Total heap footprint is constant across each row set.
	shardKops := map[string]float64{}
	recoveryMs := map[string]float64{}
	recHeap := heap
	if recHeap > 256<<20 {
		// Recovery rows run in crash-sim mode, whose shadow image doubles
		// the region's memory; cap the footprint so the 1-shard row (one
		// region of the full size) fits small runners.
		recHeap = 256 << 20
	}
	for _, n := range []int{1, 2, 4} {
		cfg := bench.MemcachedConfig{Workload: ycsb.WorkloadA(records), OpsPerTh: opsPerTh}
		res, err := bench.MemcachedNetShards(threads, cfg, pipeline, n, heap, pcfg)
		if err != nil {
			return fmt.Errorf("workload-a-shards (%d): %w", n, err)
		}
		shardKops[strconv.Itoa(n)] = res.Kops()
		rec, err := bench.RecoveryByShards(n, records, recHeap, pcfg)
		if err != nil {
			return fmt.Errorf("recovery-shards (%d): %w", n, err)
		}
		recoveryMs[strconv.Itoa(n)] = float64(rec.Wall) / 1e6
		fmt.Printf("benchjson: %d shard(s): workload a %.1f K ops/s, p50=%.1fus p99=%.1fus; recovery %.1fms wall (%.1fms summed shard time, %d records)\n",
			n, res.Kops(), res.P50us, res.P99us, float64(rec.Wall)/1e6, float64(rec.Work)/1e6, rec.Records)
	}
	doc := struct {
		Schema     string             `json:"schema"`
		App        string             `json:"app"`
		Records    int                `json:"records"`
		OpsPerTh   int                `json:"ops_per_thread"`
		Threads    int                `json:"threads"`
		Pipeline   int                `json:"pipeline"`
		Kops       map[string]float64 `json:"kops_per_workload"`
		P50us      map[string]float64 `json:"p50_us_per_workload"`
		P99us      map[string]float64 `json:"p99_us_per_workload"`
		P99SaveUs  map[string]float64 `json:"p99_save_us_per_workload"`
		Saves      map[string]uint64  `json:"saves_per_workload"`
		ReplKops   map[string]float64 `json:"kops_workload_c_by_replicas"`
		ShardKops  map[string]float64 `json:"kops_workload_a_by_shards"`
		RecoveryMs map[string]float64 `json:"recovery_ms_by_shards"`
	}{"ralloc-bench-10", "memcached-net", records, opsPerTh, threads, pipeline, kops, p50, p99, p99save, saves, replKops, shardKops, recoveryMs}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if gateFactor > 0 {
		limit := p99["a"] * gateFactor
		if p99save["a"] > limit {
			return fmt.Errorf("p99 gate: workload a p99 under background SAVE %.1fus exceeds %.1fx steady-state p99 (%.1fus limit)",
				p99save["a"], gateFactor, limit)
		}
		fmt.Printf("benchjson: p99 gate ok: workload a under-save %.1fus <= %.1fus (%.1fx of %.1fus)\n",
			p99save["a"], limit, gateFactor, p99["a"])
	}
	return nil
}

func printSweep(factories map[string]bench.Factory, allocs []string, threads []int,
	heap uint64, fn func(alloc.Allocator, int) bench.Result, val func(bench.Result) float64) {

	fmt.Printf("%-8s", "threads")
	for _, a := range allocs {
		fmt.Printf(" %12s", a)
	}
	fmt.Println()
	for _, t := range threads {
		fmt.Printf("%-8d", t)
		for _, name := range allocs {
			series, err := bench.Sweep(factories[name], name, heap, []int{t}, fn)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf(" %12.3f", val(series.Points[0].Result))
		}
		fmt.Println()
	}
}
