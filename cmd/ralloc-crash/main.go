// Command ralloc-crash is an interactive demonstration of Ralloc's
// recoverability: it builds a persistent key-value store, injects a
// full-system crash (losing everything not explicitly written back, plus —
// optionally — randomly evicting some unflushed cache lines), runs recovery,
// and verifies that all and only the reachable blocks survived.
//
//	ralloc-crash -keys 10000 -leak 5000 -evict 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

func main() {
	var (
		keys  = flag.Int("keys", 10000, "records to store before the crash")
		leak  = flag.Int("leak", 5000, "blocks allocated but never attached (simulated in-flight work)")
		evict = flag.Float64("evict", 0, "probability each unflushed cache line survives the crash anyway")
	)
	flag.Parse()

	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion: 256 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim, EvictProb: *evict},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()

	fmt.Printf("building store with %d records...\n", *keys)
	store, root := kvstore.Open(a, hd, *keys)
	for i := 0; i < *keys; i++ {
		if !store.Set(hd, fmt.Sprintf("key-%08d", i), fmt.Sprintf("value-%08d", i)) {
			fmt.Fprintln(os.Stderr, "out of memory")
			os.Exit(1)
		}
	}
	h.SetRoot(0, root)

	fmt.Printf("leaking %d unattached blocks (work in flight at crash time)...\n", *leak)
	for i := 0; i < *leak; i++ {
		hd.Malloc(64)
	}
	usedBefore := h.SBUsed()

	fmt.Printf("CRASH (evict probability %.2f)\n", *evict)
	if err := h.Region().Crash(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("recovering: tracing from persistent roots, rebuilding metadata...")
	h.GetRoot(0, kvstore.Filter(a, root))
	stats, err := h.Recover()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  reachable blocks : %d (%d KB)\n", stats.ReachableBlocks, stats.ReachableBytes/1024)
	fmt.Printf("  free superblocks : %d\n", stats.FreeSuperblocks)
	fmt.Printf("  partial sbs      : %d, full sbs: %d\n", stats.PartialSBs, stats.FullSBs)
	fmt.Printf("  gc time          : %v\n", stats.Duration)

	fmt.Println("verifying every record...")
	s2 := kvstore.Attach(a, root)
	for i := 0; i < *keys; i++ {
		v, ok := s2.Get(fmt.Sprintf("key-%08d", i))
		if !ok || v != fmt.Sprintf("value-%08d", i) {
			fmt.Fprintf(os.Stderr, "record %d lost or corrupt: (%q,%v)\n", i, v, ok)
			os.Exit(1)
		}
	}
	fmt.Printf("all %d records intact\n", *keys)

	fmt.Println("verifying leaked blocks were reclaimed...")
	hd2 := a.NewHandle()
	for i := 0; i < *leak; i++ {
		if hd2.Malloc(64) == 0 {
			fmt.Fprintln(os.Stderr, "allocation failed: leaks not reclaimed")
			os.Exit(1)
		}
	}
	if h.SBUsed() > usedBefore {
		fmt.Fprintln(os.Stderr, "heap grew: leaks not reclaimed")
		os.Exit(1)
	}
	if _, err := h.CheckInvariants(); err != nil {
		fmt.Fprintf(os.Stderr, "allocator invariants violated: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("allocator metadata consistent; leaked memory reused. recoverability holds.")
}
