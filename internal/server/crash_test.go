package server

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// TestCrashRestartUnderLiveTraffic is the end-to-end recoverability claim
// for the serving layer: kill the server mid-traffic (Abort = in-process
// kill -9, then a simulated full-system crash that drops every unflushed
// cache line), reopen the heap dirty, Recover, re-attach the store bounded,
// and serve again — with NO acknowledged SET lost. Each writer records the
// highest index whose +OK it actually received; after recovery every one of
// those keys must be present with the acknowledged value.
func TestCrashRestartUnderLiveTraffic(t *testing.T) {
	const (
		writers = 4
		bound   = 48 << 20 // roomy: the point here is durability, not eviction
	)
	cfg := ralloc.Config{
		SBRegion: 64 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	}
	h, _, err := ralloc.Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	st, root := kvstore.OpenBounded(a, a.NewHandle(), 4096, bound)
	h.SetRoot(0, root)
	srv := New(a, st, Config{})
	sock := filepath.Join(t.TempDir(), "crash.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	// Live traffic: each writer SETs its own key sequence and records the
	// last acknowledged index. Unacknowledged writes may or may not
	// survive — acknowledged ones must.
	acked := make([]int, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			acked[g] = -1
			c, err := Dial("unix", sock)
			if err != nil {
				t.Errorf("writer %d: %v", g, err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				if err := c.Set(keyFor(g, i), valFor(g, i)); err != nil {
					return // connection torn down by the crash
				}
				acked[g] = i
			}
		}(g)
	}

	// Let traffic build, then kill the server abruptly and crash the
	// "machine": every cache line not explicitly flushed is lost.
	time.Sleep(300 * time.Millisecond)
	srv.Abort()
	wg.Wait()
	for g, n := range acked {
		if n < 10 {
			t.Fatalf("writer %d acked only %d sets before the crash; traffic too thin to mean anything", g, n)
		}
	}
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}

	// Restart: attach reports dirty, recovery rebuilds allocator metadata,
	// AttachBounded rebuilds the LRU accounting by walking the map.
	h2, dirty, err := ralloc.Attach(h.Region(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("crashed heap attached clean")
	}
	a2 := h2.AsAllocator()
	root2 := h2.GetRoot(0, kvstore.Filter(a2, root))
	if root2 != root {
		t.Fatalf("root moved across crash: %#x -> %#x", root, root2)
	}
	if _, err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	st2 := kvstore.AttachBounded(a2, root, bound)
	if !st2.Bounded() {
		t.Fatal("restarted store lost its bound")
	}

	srv2 := New(a2, st2, Config{})
	sock2 := filepath.Join(t.TempDir(), "crash2.sock")
	l2, err := net.Listen("unix", sock2)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l2)
	defer srv2.Shutdown(time.Second)

	// Every acknowledged SET must be served back intact.
	c, err := Dial("unix", sock2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	total := 0
	for g := 0; g < writers; g++ {
		for i := 0; i <= acked[g]; i++ {
			v, ok, err := c.Get(keyFor(g, i))
			if err != nil {
				t.Fatal(err)
			}
			if !ok || v != valFor(g, i) {
				t.Fatalf("acknowledged SET lost: %s = (%q,%v), want %q",
					keyFor(g, i), v, ok, valFor(g, i))
			}
			total++
		}
	}
	t.Logf("verified %d acknowledged SETs across the crash", total)

	// And the restarted server keeps serving writes.
	if n, err := c.DBSize(); err != nil || n < int64(total) {
		t.Fatalf("DBSIZE = %d, %v (want >= %d)", n, err, total)
	}
	if err := c.Set("post-restart", "alive"); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get("post-restart"); !ok || v != "alive" {
		t.Fatal("restarted server not serving writes")
	}
	if _, err := h2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func keyFor(g, i int) string { return fmt.Sprintf("c%d-%06d", g, i) }
func valFor(g, i int) string { return fmt.Sprintf("v%d-%06d", g, i) }

// TestObjectCrashRestartUnderLiveTraffic is the typed-object variant of the
// recoverability claim, with SAVE checkpoints in the mix: writers HSET
// fields and RPUSH list elements, a checkpointer issues SAVEs, the server
// is killed mid-traffic and the machine "crashes" (unflushed lines lost).
// After restart every acknowledged HSET field must read back intact and
// every acknowledged RPUSH element must appear exactly once, in order, in
// its list — no half-linked node can surface as a torn value, a broken
// walk, or a disagreeing LLEN.
func TestObjectCrashRestartUnderLiveTraffic(t *testing.T) {
	const writers = 4
	cfg := ralloc.Config{
		SBRegion: 64 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	}
	h, _, err := ralloc.Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	st, root := kvstore.Open(a, a.NewHandle(), 4096)
	h.SetRoot(0, root)
	srv := New(a, st, Config{Checkpoint: func() error { h.Region().Persist(); return nil }})
	sock := filepath.Join(t.TempDir(), "objcrash.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	ackedFields := make([]int, writers) // per-writer highest acked HSET field
	ackedElems := make([]int, writers)  // per-writer highest acked RPUSH element
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ackedFields[g], ackedElems[g] = -1, -1
			c, err := Dial("unix", sock)
			if err != nil {
				t.Errorf("writer %d: %v", g, err)
				return
			}
			defer c.Close()
			hk, lk := fmt.Sprintf("oh-%d", g), fmt.Sprintf("ol-%d", g)
			for i := 0; ; i++ {
				if _, err := c.HSet(hk, fmt.Sprintf("f%06d", i), fmt.Sprintf("hv%d-%06d", g, i)); err != nil {
					return
				}
				ackedFields[g] = i
				if _, err := c.RPush(lk, fmt.Sprintf("lv%d-%06d", g, i)); err != nil {
					return
				}
				ackedElems[g] = i
			}
		}(g)
	}
	// A checkpointer quiesces and SAVEs concurrently with the object
	// traffic (the execMu barrier must make each image transactionally
	// consistent with the acked stream).
	stopSave := make(chan struct{})
	var saveWG sync.WaitGroup
	saveWG.Add(1)
	go func() {
		defer saveWG.Done()
		c, err := Dial("unix", sock)
		if err != nil {
			return
		}
		defer c.Close()
		for {
			select {
			case <-stopSave:
				return
			default:
			}
			c.Do("SAVE")
			time.Sleep(30 * time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stopSave)
	saveWG.Wait()
	srv.Abort()
	wg.Wait()
	for g := range ackedFields {
		if ackedFields[g] < 10 {
			t.Fatalf("writer %d acked only %d HSETs; traffic too thin", g, ackedFields[g])
		}
	}
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}

	h2, dirty, err := ralloc.Attach(h.Region(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("crashed heap attached clean")
	}
	a2 := h2.AsAllocator()
	h2.GetRoot(0, kvstore.Filter(a2, root))
	if _, err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	st2 := kvstore.Attach(a2, root)

	srv2 := New(a2, st2, Config{})
	sock2 := filepath.Join(t.TempDir(), "objcrash2.sock")
	l2, err := net.Listen("unix", sock2)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l2)
	defer srv2.Shutdown(time.Second)

	c, err := Dial("unix", sock2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	totalFields, totalElems := 0, 0
	for g := 0; g < writers; g++ {
		hk, lk := fmt.Sprintf("oh-%d", g), fmt.Sprintf("ol-%d", g)
		fields, err := c.HGetAll(hk)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i <= ackedFields[g]; i++ {
			want := fmt.Sprintf("hv%d-%06d", g, i)
			if got := fields[fmt.Sprintf("f%06d", i)]; got != want {
				t.Fatalf("acknowledged HSET lost: %s.f%06d = %q, want %q", hk, i, got, want)
			}
			totalFields++
		}
		// At most one in-flight field beyond the acked high-water mark.
		if len(fields) > ackedFields[g]+2 {
			t.Fatalf("%s has %d fields, acked %d: phantom fields", hk, len(fields), ackedFields[g]+1)
		}
		elems, err := c.LRange(lk, 0, -1)
		if err != nil {
			t.Fatal(err)
		}
		n, err := c.LLen(lk)
		if err != nil || int(n) != len(elems) {
			t.Fatalf("%s LLEN %d disagrees with walk %d (%v)", lk, n, len(elems), err)
		}
		if len(elems) < ackedElems[g]+1 || len(elems) > ackedElems[g]+2 {
			t.Fatalf("%s recovered %d elems, acked %d", lk, len(elems), ackedElems[g]+1)
		}
		for i, e := range elems {
			want := fmt.Sprintf("lv%d-%06d", g, i)
			if e != want {
				t.Fatalf("%s[%d] = %q, want %q (order broken across crash)", lk, i, e, want)
			}
			if i <= ackedElems[g] {
				totalElems++
			}
		}
	}
	t.Logf("verified %d acked fields and %d acked elements across the crash", totalFields, totalElems)

	// The recovered objects stay fully usable from both ends.
	for g := 0; g < writers; g++ {
		lk := fmt.Sprintf("ol-%d", g)
		if _, ok, err := c.RPop(lk); err != nil || !ok {
			t.Fatalf("post-restart RPOP(%s) = (%v,%v)", lk, ok, err)
		}
		if _, err := c.LPush(lk, "post"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
