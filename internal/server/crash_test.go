package server

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// TestCrashRestartUnderLiveTraffic is the end-to-end recoverability claim
// for the serving layer: kill the server mid-traffic (Abort = in-process
// kill -9, then a simulated full-system crash that drops every unflushed
// cache line), reopen the heap dirty, Recover, re-attach the store bounded,
// and serve again — with NO acknowledged SET lost. Each writer records the
// highest index whose +OK it actually received; after recovery every one of
// those keys must be present with the acknowledged value.
func TestCrashRestartUnderLiveTraffic(t *testing.T) {
	const (
		writers = 4
		bound   = 48 << 20 // roomy: the point here is durability, not eviction
	)
	cfg := ralloc.Config{
		SBRegion: 64 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	}
	h, _, err := ralloc.Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	st, root := kvstore.OpenBounded(a, a.NewHandle(), 4096, bound)
	h.SetRoot(0, root)
	srv := New(a, st, Config{})
	sock := filepath.Join(t.TempDir(), "crash.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	// Live traffic: each writer SETs its own key sequence and records the
	// last acknowledged index. Unacknowledged writes may or may not
	// survive — acknowledged ones must.
	acked := make([]int, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			acked[g] = -1
			c, err := Dial("unix", sock)
			if err != nil {
				t.Errorf("writer %d: %v", g, err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				if err := c.Set(keyFor(g, i), valFor(g, i)); err != nil {
					return // connection torn down by the crash
				}
				acked[g] = i
			}
		}(g)
	}

	// Let traffic build, then kill the server abruptly and crash the
	// "machine": every cache line not explicitly flushed is lost.
	time.Sleep(300 * time.Millisecond)
	srv.Abort()
	wg.Wait()
	for g, n := range acked {
		if n < 10 {
			t.Fatalf("writer %d acked only %d sets before the crash; traffic too thin to mean anything", g, n)
		}
	}
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}

	// Restart: attach reports dirty, recovery rebuilds allocator metadata,
	// AttachBounded rebuilds the LRU accounting by walking the map.
	h2, dirty, err := ralloc.Attach(h.Region(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("crashed heap attached clean")
	}
	a2 := h2.AsAllocator()
	root2 := h2.GetRoot(0, kvstore.Attach(a2, root).Filter())
	if root2 != root {
		t.Fatalf("root moved across crash: %#x -> %#x", root, root2)
	}
	if _, err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	st2 := kvstore.AttachBounded(a2, root, bound)
	if !st2.Bounded() {
		t.Fatal("restarted store lost its bound")
	}

	srv2 := New(a2, st2, Config{})
	sock2 := filepath.Join(t.TempDir(), "crash2.sock")
	l2, err := net.Listen("unix", sock2)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l2)
	defer srv2.Shutdown(time.Second)

	// Every acknowledged SET must be served back intact.
	c, err := Dial("unix", sock2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	total := 0
	for g := 0; g < writers; g++ {
		for i := 0; i <= acked[g]; i++ {
			v, ok, err := c.Get(keyFor(g, i))
			if err != nil {
				t.Fatal(err)
			}
			if !ok || v != valFor(g, i) {
				t.Fatalf("acknowledged SET lost: %s = (%q,%v), want %q",
					keyFor(g, i), v, ok, valFor(g, i))
			}
			total++
		}
	}
	t.Logf("verified %d acknowledged SETs across the crash", total)

	// And the restarted server keeps serving writes.
	if n, err := c.DBSize(); err != nil || n < int64(total) {
		t.Fatalf("DBSIZE = %d, %v (want >= %d)", n, err, total)
	}
	if err := c.Set("post-restart", "alive"); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get("post-restart"); !ok || v != "alive" {
		t.Fatal("restarted server not serving writes")
	}
	if _, err := h2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func keyFor(g, i int) string { return fmt.Sprintf("c%d-%06d", g, i) }
func valFor(g, i int) string { return fmt.Sprintf("v%d-%06d", g, i) }
