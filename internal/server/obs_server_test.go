package server

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// Wire-level tests for the observability surface: SLOWLOG, LATENCY, the
// INFO sections they feed, and the registry-generated round-trip guarantee
// that every advertised section is individually addressable.

// obsTestSections is a representative embedder contribution: two standalone
// sections plus a "persistence" splice, mirroring what ralloc-serve wires in.
func obsTestSections() []InfoSection {
	return []InfoSection{
		{Name: "heap", Render: func() string { return "heap_bytes:123\r\n" }},
		{Name: "allocator", Render: func() string { return "shard0:refills=0\r\n" }},
		{Name: "persistence", Render: func() string { return "recovered_at_start:0\r\n" }},
	}
}

// TestInfoSectionsRoundTrip is registry-generated in the sense that it takes
// the section list from Server.Sections itself: every advertised name must
// round-trip through INFO <name> to exactly that one section. A section that
// INFO <name> cannot serve would silently fall back to the full block, which
// is what this pins against.
func TestInfoSectionsRoundTrip(t *testing.T) {
	ts := startServer(t, Config{InfoSections: obsTestSections()}, 0)
	c := dial(t, ts)
	// Populate commandstats/latencystats: they render only called commands.
	if err := c.Set("k", "v"); err != nil {
		t.Fatal(err)
	}

	names := ts.srv.Sections()
	seen := make(map[string]bool)
	for _, name := range names {
		if seen[name] {
			t.Fatalf("Sections() advertises %q twice", name)
		}
		seen[name] = true
		rp, err := c.Do("INFO", name)
		if err != nil {
			t.Fatal(err)
		}
		if err := rp.Err(); err != nil {
			t.Fatalf("INFO %s: %v", name, err)
		}
		body := string(rp.Bulk)
		header, _, ok := strings.Cut(strings.TrimPrefix(body, "# "), "\r\n")
		if !strings.HasPrefix(body, "# ") || !ok {
			t.Fatalf("INFO %s reply does not start with a section header: %q", name, body)
		}
		if !strings.EqualFold(header, name) {
			t.Fatalf("INFO %s returned section %q", name, header)
		}
		if i := strings.Index(body, "\r\n# "); i >= 0 {
			t.Fatalf("INFO %s reply contains a second section (%q...): not a single-section round trip",
				name, body[i+2:min(i+20, len(body))])
		}
	}
	for _, want := range []string{"server", "persistence", "latencystats", "commandstats", "heap", "allocator"} {
		if !seen[want] {
			t.Fatalf("Sections() = %v is missing %q", names, want)
		}
	}

	// The embedder's "persistence" section splices into the builtin block
	// rather than appearing as its own (duplicate) header.
	rp, err := c.Do("INFO", "persistence")
	if err != nil {
		t.Fatal(err)
	}
	body := string(rp.Bulk)
	for _, want := range []string{"checkpoints:", "recovered_at_start:0"} {
		if !strings.Contains(body, want) {
			t.Fatalf("INFO persistence missing %q:\n%s", want, body)
		}
	}

	// Unknown sections keep the tolerant full-reply fallback.
	rp, err = c.Do("INFO", "nosuchsection")
	if err != nil {
		t.Fatal(err)
	}
	full := string(rp.Bulk)
	for _, want := range []string{"# Server\r\n", "# Heap\r\n", "# Persistence\r\n"} {
		if !strings.Contains(full, want) {
			t.Fatalf("INFO nosuchsection fallback missing %q", want)
		}
	}
}

// slowlogEntries decodes a SLOWLOG GET reply, asserting the classic 4-field
// entry shape as it goes.
func slowlogEntries(t *testing.T, rp Reply) []obs.SlowEntry {
	t.Helper()
	if err := rp.Err(); err != nil {
		t.Fatal(err)
	}
	if rp.Kind != '*' {
		t.Fatalf("SLOWLOG GET reply kind %q", rp.Kind)
	}
	out := make([]obs.SlowEntry, 0, len(rp.Elems))
	for i, e := range rp.Elems {
		if e.Kind != '*' || len(e.Elems) != 4 {
			t.Fatalf("entry %d: want 4-element array, got %q", i, e.Text())
		}
		id, unix, usec, args := e.Elems[0], e.Elems[1], e.Elems[2], e.Elems[3]
		if id.Kind != ':' || unix.Kind != ':' || usec.Kind != ':' || args.Kind != '*' {
			t.Fatalf("entry %d: field kinds %q %q %q %q", i, id.Kind, unix.Kind, usec.Kind, args.Kind)
		}
		if unix.Int <= 0 || usec.Int < 0 {
			t.Fatalf("entry %d: unix=%d usec=%d", i, unix.Int, usec.Int)
		}
		se := obs.SlowEntry{ID: id.Int, Unix: unix.Int, Dur: time.Duration(usec.Int) * time.Microsecond}
		for _, a := range args.Elems {
			se.Args = append(se.Args, string(a.Bulk))
		}
		out = append(out, se)
	}
	return out
}

func TestSlowlogOverWire(t *testing.T) {
	ts := startServer(t, Config{SlowlogSlowerThan: -1, SlowlogMaxLen: 64}, 0)
	c := dial(t, ts)

	// A long-vector command (42 args) and an oversized value exercise both
	// record-time truncations.
	if err := c.Set("k", strings.Repeat("v", 200)); err != nil {
		t.Fatal(err)
	}
	hset := []string{"HSET", "h"}
	for i := 0; i < 20; i++ {
		hset = append(hset, "f"+strconv.Itoa(i), "v"+strconv.Itoa(i))
	}
	if _, err := c.HSet("h", hset[2:]...); err != nil {
		t.Fatal(err)
	}

	rp, err := c.Do("SLOWLOG", "GET")
	if err != nil {
		t.Fatal(err)
	}
	entries := slowlogEntries(t, rp)
	if len(entries) < 2 {
		t.Fatalf("want >=2 slowlog entries, got %d", len(entries))
	}
	// Newest first, IDs strictly decreasing down the reply.
	for i := 1; i < len(entries); i++ {
		if entries[i].ID >= entries[i-1].ID {
			t.Fatalf("entries not newest-first: id[%d]=%d id[%d]=%d", i-1, entries[i-1].ID, i, entries[i].ID)
		}
	}
	var hsetEnt, setEnt *obs.SlowEntry
	for i := range entries {
		switch entries[i].Args[0] {
		case "HSET":
			hsetEnt = &entries[i]
		case "SET":
			setEnt = &entries[i]
		}
	}
	if hsetEnt == nil || setEnt == nil {
		t.Fatalf("SET/HSET entries missing from slowlog: %+v", entries)
	}
	if len(hsetEnt.Args) != 32 {
		t.Fatalf("42-arg HSET should record 32 args, got %d", len(hsetEnt.Args))
	}
	if got, want := hsetEnt.Args[31], "... (11 more arguments)"; got != want {
		t.Fatalf("truncation marker %q, want %q", got, want)
	}
	if v := setEnt.Args[2]; len(v) != 131 || !strings.HasSuffix(v, "...") {
		t.Fatalf("200-byte arg should clip to 128+\"...\", got len %d (%q...)", len(v), v[:16])
	}

	// Bounded GET.
	rp, err = c.Do("SLOWLOG", "GET", "1")
	if err != nil {
		t.Fatal(err)
	}
	if got := slowlogEntries(t, rp); len(got) != 1 {
		t.Fatalf("SLOWLOG GET 1 returned %d entries", len(got))
	}

	n, err := c.intReply("SLOWLOG", "LEN")
	if err != nil {
		t.Fatal(err)
	}
	if n < 4 {
		t.Fatalf("SLOWLOG LEN = %d, want >=4", n)
	}

	// RESET empties the ring but IDs keep increasing across it.
	maxID := entries[0].ID
	if err := c.okReply("SLOWLOG", "RESET"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("after", "reset"); err != nil {
		t.Fatal(err)
	}
	rp, err = c.Do("SLOWLOG", "GET")
	if err != nil {
		t.Fatal(err)
	}
	after := slowlogEntries(t, rp)
	// Only the commands issued since RESET (including RESET's own record)
	// remain.
	if len(after) < 1 || len(after) > 3 {
		t.Fatalf("slowlog after RESET holds %d entries", len(after))
	}
	for _, e := range after {
		if e.ID <= maxID {
			t.Fatalf("post-RESET id %d did not advance past pre-RESET max %d", e.ID, maxID)
		}
	}

	rp, err = c.Do("SLOWLOG", "BOGUS")
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != '-' {
		t.Fatalf("SLOWLOG BOGUS should error, got %q", rp.Text())
	}
}

// TestSlowlogRingCap drives more distinct commands than SlowlogMaxLen and
// checks the ring stays bounded.
func TestSlowlogRingCap(t *testing.T) {
	ts := startServer(t, Config{SlowlogSlowerThan: -1, SlowlogMaxLen: 8}, 0)
	c := dial(t, ts)
	for i := 0; i < 40; i++ {
		if err := c.Set("k"+strconv.Itoa(i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	n, err := c.intReply("SLOWLOG", "LEN")
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("SLOWLOG LEN = %d with max-len 8", n)
	}
}

func TestLatencyOverWire(t *testing.T) {
	ts := startServer(t, Config{
		LatencyThreshold: -1,
		Checkpoint:       func() error { return nil },
	}, 0)
	c := dial(t, ts)

	if err := c.Set("k", "v"); err != nil { // records a "command" event
		t.Fatal(err)
	}
	if err := c.okReply("SAVE"); err != nil { // checkpoint + checkpoint-quiesce
		t.Fatal(err)
	}
	// An embedder-recorded event, the way ralloc-serve reports attach and
	// recovery phases.
	ts.srv.Events().Record("attach", time.Now(), 5*time.Millisecond)

	rp, err := c.Do("LATENCY", "LATEST")
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Err(); err != nil {
		t.Fatal(err)
	}
	rows := make(map[string]Reply)
	for _, r := range rp.Elems {
		if r.Kind != '*' || len(r.Elems) != 4 {
			t.Fatalf("LATENCY LATEST row shape: %q", r.Text())
		}
		rows[string(r.Elems[0].Bulk)] = r
	}
	for _, want := range []string{"command", "checkpoint", "checkpoint-quiesce", "attach"} {
		if _, ok := rows[want]; !ok {
			t.Fatalf("LATENCY LATEST missing event %q (have %v)", want, rows)
		}
	}
	attach := rows["attach"]
	if attach.Elems[1].Int <= 0 {
		t.Fatalf("attach unix = %d", attach.Elems[1].Int)
	}
	if attach.Elems[2].Int != 5 || attach.Elems[3].Int != 5 {
		t.Fatalf("attach latest/max = %d/%d ms, want 5/5", attach.Elems[2].Int, attach.Elems[3].Int)
	}

	rp, err = c.Do("LATENCY", "HISTORY", "attach")
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Elems) != 1 || len(rp.Elems[0].Elems) != 2 || rp.Elems[0].Elems[1].Int != 5 {
		t.Fatalf("LATENCY HISTORY attach = %q", rp.Text())
	}
	rp, err = c.Do("LATENCY", "HISTORY", "nosuch")
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != '*' || len(rp.Elems) != 0 {
		t.Fatalf("LATENCY HISTORY nosuch = %q, want empty array", rp.Text())
	}

	if n, err := c.intReply("LATENCY", "RESET", "attach"); err != nil || n != 1 {
		t.Fatalf("LATENCY RESET attach = %d, %v", n, err)
	}
	rp, err = c.Do("LATENCY", "HISTORY", "attach")
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Elems) != 0 {
		t.Fatalf("attach history survived RESET: %q", rp.Text())
	}
	if n, err := c.intReply("LATENCY", "RESET"); err != nil || n < 2 {
		t.Fatalf("LATENCY RESET (all) = %d, %v", n, err)
	}

	rp, err = c.Do("LATENCY", "BOGUS")
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != '-' {
		t.Fatalf("LATENCY BOGUS should error, got %q", rp.Text())
	}
}

// TestInfoObservabilitySections checks the content of the sections the new
// telemetry feeds: persistence checkpoint fields, latencystats percentiles,
// and that commandstats still renders its sampling-era line format.
func TestInfoObservabilitySections(t *testing.T) {
	ts := startServer(t, Config{Checkpoint: func() error { return nil }}, 0)
	c := dial(t, ts)
	if err := c.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := c.okReply("SAVE"); err != nil {
		t.Fatal(err)
	}

	rp, err := c.Do("INFO", "persistence")
	if err != nil {
		t.Fatal(err)
	}
	pers := string(rp.Bulk)
	for _, want := range []string{
		"checkpoints:1\r\n", "checkpoint_errors:0\r\n",
		"last_checkpoint_unix:", "last_checkpoint_quiesce_us:", "last_checkpoint_total_us:",
	} {
		if !strings.Contains(pers, want) {
			t.Fatalf("INFO persistence missing %q:\n%s", want, pers)
		}
	}
	if strings.Contains(pers, "last_checkpoint_unix:0\r\n") {
		t.Fatalf("last_checkpoint_unix not stamped:\n%s", pers)
	}

	rp, err = c.Do("INFO", "latencystats")
	if err != nil {
		t.Fatal(err)
	}
	lat := string(rp.Bulk)
	if !strings.HasPrefix(lat, "# Latencystats\r\n") {
		t.Fatalf("latencystats header: %q", lat)
	}
	if !strings.Contains(lat, "latency_percentiles_usec_set:p50=") ||
		!strings.Contains(lat, ",p99=") || !strings.Contains(lat, ",p99.9=") {
		t.Fatalf("latencystats missing SET percentiles:\n%s", lat)
	}

	rp, err = c.Do("INFO", "commandstats")
	if err != nil {
		t.Fatal(err)
	}
	cs := string(rp.Bulk)
	if !strings.Contains(cs, "cmdstat_set:calls=1,usec=") || !strings.Contains(cs, ",usec_per_call=") {
		t.Fatalf("commandstats format drifted:\n%s", cs)
	}
}

// TestObsServerRaceStress hammers the whole observability surface under live
// traffic: wire writers, SLOWLOG/LATENCY/INFO readers over their own
// connections, and in-process snapshot + /metrics renders — the histogram
// writers vs. snapshot readers interleaving the race detector must bless.
func TestObsServerRaceStress(t *testing.T) {
	ts := startServer(t, Config{
		SlowlogSlowerThan: -1,
		SlowlogMaxLen:     32,
		LatencyThreshold:  -1,
		Checkpoint:        func() error { return nil },
		InfoSections:      obsTestSections(),
	}, 0)

	reg := obs.NewRegistry()
	reg.Register(ts.srv)

	dur := 300 * time.Millisecond
	if testing.Short() {
		dur = 50 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup

	// Clients are dialed here, in the test goroutine (dial may t.Fatal).
	writers := make([]*Client, 4)
	for w := range writers {
		writers[w] = dial(t, ts)
	}
	reader := dial(t, ts)

	for w := 0; w < len(writers); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := writers[w]
			key := "stress-" + strconv.Itoa(w)
			for i := 0; time.Now().Before(deadline); i++ {
				if err := c.Set(key, strconv.Itoa(i)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := c.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() { // wire reader: SLOWLOG + LATENCY + INFO
		defer wg.Done()
		c := reader
		for time.Now().Before(deadline) {
			for _, cmd := range [][]string{
				{"SLOWLOG", "GET", "10"}, {"SLOWLOG", "LEN"},
				{"LATENCY", "LATEST"}, {"INFO", "latencystats"}, {"INFO", "persistence"},
			} {
				rp, err := c.Do(cmd...)
				if err != nil {
					t.Error(err)
					return
				}
				if err := rp.Err(); err != nil {
					t.Errorf("%v: %v", cmd, err)
					return
				}
			}
		}
	}()

	wg.Add(1)
	go func() { // in-process reader: merged snapshot + Prometheus render
		defer wg.Done()
		var buf bytes.Buffer
		for time.Now().Before(deadline) {
			snap := ts.srv.LatencySnapshot()
			if snap.Count > 0 && snap.Quantile(0.99) < 0 {
				t.Error("negative p99")
				return
			}
			buf.Reset()
			if err := reg.WriteText(&buf); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Contains(buf.Bytes(), []byte("ralloc_commands_processed_total")) {
				t.Error("metrics render missing command counter")
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // checkpoint writer: quiesce barrier + event recording
		defer wg.Done()
		for time.Now().Before(deadline) {
			if err := ts.srv.Save(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	wg.Wait()

	// The traffic must have left coherent telemetry behind.
	snap := ts.srv.LatencySnapshot()
	if snap.Count == 0 {
		t.Fatal("no commands recorded in latency histograms")
	}
	if ts.srv.slow.Len() == 0 {
		t.Fatal("slowlog empty after log-everything traffic")
	}
}
