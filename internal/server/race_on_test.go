//go:build race

package server

// raceEnabled reports whether this test binary was built with the race
// detector; the dispatch-overhead gate skips itself there (instrumentation
// skews the two paths differently).
const raceEnabled = true
