package server

// MULTI/EXEC/DISCARD on top of the command registry. The design follows
// Redis: MULTI opens a per-connection queue; subsequent commands are
// validated against the table at queue time (unknown names and arity
// failures reply an error immediately and poison the queue, so EXEC aborts
// with -EXECABORT); EXEC runs the queue back-to-back and replies an array of
// the individual replies; errors *inside* EXEC do not abort the rest.
//
// Atomicity comes from two locks the registry makes uniform:
//
//   - EXEC acquires the union of the queued commands' key stripes (plus all
//     stripes if a FlagLockAll command is queued), sorted and deduplicated —
//     the same deadlock-ordered discipline as single multi-key commands — so
//     no concurrent writer observes or interleaves a half-applied queue.
//   - The whole EXEC runs under one read-side hold of its shard's checkpoint
//     barrier, so a SAVE checkpoint can never capture a torn transaction:
//     the persisted image contains each acknowledged EXEC wholly or not at
//     all. That is the crash-consistency story the mid-EXEC SIGKILL e2e
//     (txn_e2e_test.go) pins down.
//
// With more than one shard a transaction is additionally confined to one
// shard, enforced at queue time: the first keyed command fixes the
// transaction's shard, any later key routing elsewhere poisons the queue
// with -CROSSSLOT, and FlagLockAll commands (whole-keyspace, every shard)
// are refused outright. One shard's barrier plus its stripe union then give
// the same atomicity as before — and the confinement is what keeps EXEC off
// the cross-shard lock-ordering problem entirely (see shardlock's package
// comment).

// queuedCmd is one validated command awaiting EXEC.
type queuedCmd struct {
	bc   *boundCmd
	args [][]byte
}

// maxTxnQueue bounds one connection's MULTI queue: the RESP layer caps what
// a single command may allocate (maxArgs/maxBulkLen), and without a queue
// cap MULTI would let one connection accumulate unbounded retained commands
// anyway. Overflow poisons the transaction (EXECABORT), like the other
// queue-time rejections.
const maxTxnQueue = 4096

// maxTxnQueueBytes bounds the bytes one queue may retain. The command-count
// cap alone still lets a single connection pin maxTxnQueue full-size
// commands (each up to maxBulkLen) simultaneously — a huge amplification
// over the transient per-command allocation of normal dispatch — so
// admission is also metered in bytes. Each argument is charged
// txnArgOverhead on top of its payload: a variadic command with a million
// empty bulks retains ~24 bytes of slice header plus allocator rounding per
// argument, which payload-only metering would count as zero.
const (
	maxTxnQueueBytes = 256 << 20
	txnArgOverhead   = 32
)

// connState is the per-connection dispatch state: the transaction queue.
type connState struct {
	inTxn       bool
	dirty       bool // queue-time validation failed; EXEC must abort
	queue       []queuedCmd
	queuedBytes int // cumulative argument bytes retained by queue
	// txShard pins the transaction to one shard: 0 means not yet fixed
	// (only keyless commands queued so far), otherwise shard index + 1.
	txShard int
}

func (cs *connState) reset() {
	cs.inTxn = false
	cs.dirty = false
	cs.txShard = 0
	// Zero the entries before truncating: queue[:0] alone keeps every
	// queued args slice reachable through the backing array, so a
	// long-lived idle connection would retain its last transaction's
	// command data indefinitely.
	clear(cs.queue)
	cs.queue = cs.queue[:0]
	cs.queuedBytes = 0
}

// enqueue admits one already-validated (lookup + arity) command to the
// queue. DenyTxn commands poison the transaction instead: SAVE would take
// the checkpoint barrier mid-EXEC and SHUTDOWN would tear the connection down.
// The queue retains args past this call, which is safe because ReadCommand's
// documented contract is that every returned slice is freshly allocated,
// never a view into a reused read buffer.
func (cs *connState) enqueue(ctx *Ctx, bc *boundCmd, args [][]byte) {
	if bc.cmd.Flags&FlagDenyTxn != 0 {
		cs.dirty = true
		ctx.w.errorf("%s is not allowed in transactions", bc.cmd.Name)
		return
	}
	if len(cs.queue) >= maxTxnQueue {
		cs.dirty = true
		ctx.w.errorf("transaction queue limit (%d commands) reached", maxTxnQueue)
		return
	}
	sz := 0
	for _, a := range args {
		sz += len(a) + txnArgOverhead
	}
	if cs.queuedBytes+sz > maxTxnQueueBytes {
		cs.dirty = true
		ctx.w.errorf("transaction queue limit (%d bytes) reached", maxTxnQueueBytes)
		return
	}
	// Shard confinement (multi-shard only): every keyed command must route
	// to the transaction's one shard, fixed by the first keyed command
	// queued. Whole-keyspace commands span every shard by definition and
	// cannot be confined.
	if s := ctx.s; s != nil && len(s.shards) > 1 {
		if bc.cmd.Flags&FlagLockAll != 0 {
			cs.dirty = true
			ctx.w.errorKind("CROSSSLOT", bc.cmd.Name+" inside MULTI cannot be confined to one shard")
			return
		}
		if bc.cmd.Keys.First != 0 {
			sh, ok := s.routeKeys(ctx, bc.cmd, args)
			if !ok {
				cs.dirty = true
				return // routeKeys already wrote the CROSSSLOT error
			}
			if cs.txShard != 0 && cs.txShard != sh.idx+1 {
				cs.dirty = true
				ctx.w.errorKind("CROSSSLOT", "Keys in request don't hash to the same slot")
				return
			}
			cs.txShard = sh.idx + 1
		}
	}
	cs.queuedBytes += sz
	cs.queue = append(cs.queue, queuedCmd{bc: bc, args: args})
	ctx.w.simple("QUEUED")
}

func cmdMulti(ctx *Ctx) {
	if ctx.cs == nil {
		ctx.w.errorf("MULTI is not supported on this connection")
		return
	}
	if ctx.cs.inTxn {
		ctx.w.errorf("MULTI calls can not be nested")
		return
	}
	ctx.cs.inTxn = true
	ctx.w.simple("OK")
}

func cmdDiscard(ctx *Ctx) {
	if ctx.cs == nil || !ctx.cs.inTxn {
		ctx.w.errorf("DISCARD without MULTI")
		return
	}
	ctx.cs.reset()
	ctx.w.simple("OK")
}

func cmdExec(ctx *Ctx) {
	cs := ctx.cs
	if cs == nil || !cs.inTxn {
		ctx.w.errorf("EXEC without MULTI")
		return
	}
	if cs.dirty {
		cs.reset()
		ctx.w.errorKind("EXECABORT", "Transaction discarded because of previous errors.")
		return
	}

	// Union of the queue's stripes, deadlock-ordered. A queued FlagLockAll
	// command (FLUSHALL) escalates to every stripe.
	stripes := ctx.txstripe[:0]
	lockAll := false
	for _, q := range cs.queue {
		if q.bc.cmd.Flags&FlagLockAll != 0 {
			lockAll = true
			break
		}
	}
	if lockAll {
		stripes = ctx.s.allStripes(stripes)
	} else {
		keys := ctx.keybuf[:0]
		for _, q := range cs.queue {
			if q.bc.cmd.Flags&FlagWrite != 0 {
				keys = q.bc.cmd.Keys.keys(keys, q.args)
			}
		}
		ctx.keybuf = keys
		stripes = ctx.s.appendStripes(stripes, keys)
	}
	ctx.txstripe = stripes

	// The transaction's shard: fixed at queue time, shard 0 when only
	// keyless commands were queued (no key locks taken, but the barrier
	// hold still keeps the reply array un-torn by SAVE's fence).
	sh := ctx.s.shards[0]
	if cs.txShard != 0 {
		sh = ctx.s.shards[cs.txShard-1]
	}

	ctx.w.arrayHeader(len(cs.queue))
	// reset via defer, like the stripe unlocks: a panic mid-EXEC recovered
	// above dispatch must not leave the connection inTxn with the
	// partially-executed queue still queued (a later EXEC would re-apply
	// the already-run prefix).
	defer cs.reset()
	ctx.setShard(sh)
	sh.locks.Exec.RLock()
	execQueue(ctx, sh, cs.queue, stripes)
}

// execQueue runs the queued commands under the shard's checkpoint barrier
// and the union stripes, unlocking via defer: a panicking handler (or
// embedder-supplied middleware) must not leave the shard's locks held after
// the panic is recovered upstream.
func execQueue(ctx *Ctx, sh *shard, queue []queuedCmd, stripes []int) {
	defer sh.locks.Exec.RUnlock()
	sh.locks.LockStripes(stripes)
	defer sh.locks.UnlockStripes(stripes)
	outer := ctx.args
	defer func() { ctx.args = outer }()
	for _, q := range queue {
		ctx.args = q.args
		q.bc.invoke(ctx)
	}
}
