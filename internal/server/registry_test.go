package server

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestArityErrorsForEveryCommand is generated from the registry: for every
// command whose declared arity admits a constructible wrong argument count,
// it sends that count and asserts the exact Redis-compatible error message,
// lowercased command name included. Arity validation runs before the
// handler, so even SHUTDOWN and SAVE are safe to probe this way.
func TestArityErrorsForEveryCommand(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	probe := func(cmd *Command, nargs int) {
		t.Helper()
		args := make([]string, nargs)
		args[0] = strings.ToLower(cmd.Name)
		for i := 1; i < nargs; i++ {
			args[i] = fmt.Sprintf("junk%d", i)
		}
		rp, err := c.Do(args...)
		if err != nil {
			t.Fatalf("%s with %d args: %v", cmd.Name, nargs, err)
		}
		want := fmt.Sprintf("ERR wrong number of arguments for '%s' command", strings.ToLower(cmd.Name))
		if rp.Kind != '-' || rp.Str != want {
			t.Fatalf("%s with %d args replied %q, want %q", cmd.Name, nargs, rp.Str, want)
		}
	}

	probed := 0
	for _, cmd := range Commands() {
		var wrong []int
		if cmd.Arity > 0 {
			if cmd.Arity-1 >= 1 {
				wrong = append(wrong, cmd.Arity-1)
			}
			wrong = append(wrong, cmd.Arity+1)
		} else if -cmd.Arity-1 >= 1 {
			wrong = append(wrong, -cmd.Arity-1)
		}
		for _, n := range wrong {
			probe(cmd, n)
			probed++
		}
	}
	if probed < 24 {
		t.Fatalf("only %d arity probes generated from the registry — table shrank?", probed)
	}

	// Handler-level arity checks follow the same message contract: PING
	// accepts 1 or 2 arguments, MSET needs matched pairs.
	if rp, _ := c.Do("PING", "a", "b"); rp.Kind != '-' ||
		rp.Str != "ERR wrong number of arguments for 'ping' command" {
		t.Fatalf("PING a b = %+v", rp)
	}
	if rp, _ := c.Do("MSET", "k1", "v1", "k2"); rp.Kind != '-' ||
		rp.Str != "ERR wrong number of arguments for 'mset' command" {
		t.Fatalf("unpaired MSET = %+v", rp)
	}
}

func TestUnknownCommandMessage(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)
	rp, err := c.Do("NoSuchCmd", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != '-' || rp.Str != "ERR unknown command 'nosuchcmd'" {
		t.Fatalf("unknown command reply = %q", rp.Str)
	}
}

// TestErrorReplySanitized pins the errorBody containment: error replies echo
// client bytes (unknown command and subcommand names), and a CRLF smuggled
// into such a name must not split the reply line — that desynchronizes every
// reply after it. Control bytes become spaces, oversized echoes are capped.
func TestErrorReplySanitized(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	// CRLF inside an unknown command name (bulk framing permits any bytes).
	rp, err := c.Do("BAD\r\nXY")
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != '-' || rp.Str != "ERR unknown command 'bad  xy'" {
		t.Fatalf("CRLF-name reply = %q", rp.Str)
	}

	// Same vector through the COMMAND subcommand echo.
	rp, err = c.Do("COMMAND", "NO\r\nPE")
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != '-' || !strings.Contains(rp.Str, "'no  pe'") {
		t.Fatalf("CRLF-subcommand reply = %q", rp.Str)
	}

	// A huge unknown name is echoed truncated, not in full.
	rp, err = c.Do(strings.Repeat("Z", 100000))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind != '-' || len(rp.Str) > maxErrorBodyLen+len("ERR ...") || !strings.HasSuffix(rp.Str, "...") {
		t.Fatalf("oversized-name reply = %d bytes, suffix %q", len(rp.Str), rp.Str[max(0, len(rp.Str)-16):])
	}

	// The reply stream is still synchronized after all of the above.
	if rp, err := c.Do("PING"); err != nil || rp.Str != "PONG" {
		t.Fatalf("PING after hostile errors = %+v, %v", rp, err)
	}
}

// TestPanicReleasesLocks: dispatch releases stripe locks and the execMu
// read side via defer, so a panic recovered above dispatch (an embedder
// wrapping Serve, a test or fuzz harness driving dispatch directly) leaves
// no server lock held — the process doesn't wedge every future writer on
// those stripes, or every future SAVE, on its way to fail-stop.
func TestPanicReleasesLocks(t *testing.T) {
	boom := func(c *Command, h Handler) Handler {
		return func(ctx *Ctx) {
			for _, a := range ctx.args[1:] {
				if string(a) == "PANIC" {
					panic("middleware kaboom")
				}
			}
			h(ctx)
		}
	}
	e := newBenchEnv(t, Config{Middleware: []Middleware{boom}})

	run := func(cs *connState, args ...string) (panicked bool) {
		bargs := make([][]byte, len(args))
		for i, a := range args {
			bargs[i] = []byte(a)
		}
		ctx := &Ctx{s: e.srv, hd: e.hd, w: newRespWriter(io.Discard), cs: cs}
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.srv.dispatch(ctx, bargs)
		return false
	}

	// Panic on every lock path: single-stripe write, multi-stripe write, and
	// EXEC holding a transaction's union stripes.
	if !run(&connState{}, "SET", "pk", "PANIC") {
		t.Fatal("single-key SET did not panic")
	}
	if !run(&connState{}, "MSET", "pa", "1", "pb", "PANIC") {
		t.Fatal("MSET did not panic")
	}
	cs := &connState{}
	run(cs, "MULTI")
	if run(cs, "SET", "pk", "PANIC") {
		t.Fatal("queueing panicked — middleware must not run at queue time")
	}
	if !run(cs, "EXEC") {
		t.Fatal("EXEC did not panic")
	}

	// Every lock those invocations held must be free again: the same keys
	// (same stripes) and the checkpoint barrier's write side all acquire
	// without blocking.
	ok := make(chan struct{})
	go func() {
		defer close(ok)
		if run(&connState{}, "SET", "pk", "v") {
			t.Error("clean SET panicked")
		}
		if run(&connState{}, "MSET", "pa", "1", "pb", "2") {
			t.Error("clean MSET panicked")
		}
		e.srv.shards[0].locks.Exec.Lock()
		e.srv.shards[0].locks.Exec.Unlock()
	}()
	select {
	case <-ok:
	case <-time.After(10 * time.Second):
		t.Fatal("locks still held after recovered panic: follow-up commands wedged")
	}
}

func TestCommandIntrospection(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	n, err := c.CommandCount()
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != CommandCount() {
		t.Fatalf("COMMAND COUNT = %d, registry has %d", n, CommandCount())
	}
	if n < 24 {
		t.Fatalf("COMMAND COUNT = %d, want >= 24", n)
	}

	// The full COMMAND reply: one 6-element entry per registry command, in
	// sorted-name order, with flags and key specs matching the table.
	rp, err := c.Do("COMMAND")
	if err != nil || rp.Kind != '*' {
		t.Fatalf("COMMAND = %+v, %v", rp, err)
	}
	if len(rp.Elems) != CommandCount() {
		t.Fatalf("COMMAND returned %d entries, want %d", len(rp.Elems), CommandCount())
	}
	for i, cmd := range Commands() {
		e := rp.Elems[i]
		if len(e.Elems) != 6 {
			t.Fatalf("entry %d has %d elements", i, len(e.Elems))
		}
		if got := string(e.Elems[0].Bulk); got != strings.ToLower(cmd.Name) {
			t.Fatalf("entry %d name = %q, want %q", i, got, strings.ToLower(cmd.Name))
		}
		if e.Elems[1].Int != int64(cmd.Arity) {
			t.Fatalf("%s arity = %d, want %d", cmd.Name, e.Elems[1].Int, cmd.Arity)
		}
		if len(e.Elems[2].Elems) != len(cmd.Flags.names()) {
			t.Fatalf("%s flags = %+v, want %v", cmd.Name, e.Elems[2].Elems, cmd.Flags.names())
		}
		if e.Elems[3].Int != int64(cmd.Keys.First) || e.Elems[4].Int != int64(cmd.Keys.Last) || e.Elems[5].Int != int64(cmd.Keys.Step) {
			t.Fatalf("%s keyspec = %d,%d,%d, want %+v", cmd.Name, e.Elems[3].Int, e.Elems[4].Int, e.Elems[5].Int, cmd.Keys)
		}
	}

	// COMMAND INFO: known names yield entries, unknown a nil element.
	rp, err = c.Do("COMMAND", "INFO", "get", "nosuch", "MULTI")
	if err != nil || rp.Kind != '*' || len(rp.Elems) != 3 {
		t.Fatalf("COMMAND INFO = %+v, %v", rp, err)
	}
	if string(rp.Elems[0].Elems[0].Bulk) != "get" || !rp.Elems[1].Nil || string(rp.Elems[2].Elems[0].Bulk) != "multi" {
		t.Fatalf("COMMAND INFO elems = %+v", rp.Elems)
	}

	if rp, _ := c.Do("COMMAND", "NOSUB"); rp.Kind != '-' || !strings.Contains(rp.Str, "unknown subcommand") {
		t.Fatalf("COMMAND NOSUB = %+v", rp)
	}
}

func TestNewRegistryCommands(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	if got, err := c.Echo("hello registry"); err != nil || got != "hello registry" {
		t.Fatalf("ECHO = %q, %v", got, err)
	}

	if typ, err := c.Type("absent"); err != nil || typ != "none" {
		t.Fatalf("TYPE absent = %q, %v", typ, err)
	}
	if err := c.Set("typed", "v"); err != nil {
		t.Fatal(err)
	}
	if typ, err := c.Type("typed"); err != nil || typ != "string" {
		t.Fatalf("TYPE typed = %q, %v", typ, err)
	}

	if _, ok, err := c.GetDel("absent"); err != nil || ok {
		t.Fatalf("GETDEL absent = %v, %v", ok, err)
	}
	if v, ok, err := c.GetDel("typed"); err != nil || !ok || v != "v" {
		t.Fatalf("GETDEL typed = (%q,%v,%v)", v, ok, err)
	}
	if _, ok, _ := c.Get("typed"); ok {
		t.Fatal("key survived GETDEL")
	}
	if typ, _ := c.Type("typed"); typ != "none" {
		t.Fatalf("TYPE after GETDEL = %q", typ)
	}
}

func TestInfoCommandStats(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	for i := 0; i < 20; i++ {
		if err := c.Set(fmt.Sprintf("cs-%d", i), "v"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get(fmt.Sprintf("cs-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// One error reply, attributed to INCR by the stats middleware.
	if rp, _ := c.Do("INCR", "cs-0"); rp.Kind != '-' {
		t.Fatalf("INCR on text = %+v", rp)
	}

	rp, err := c.Do("INFO", "commandstats")
	if err != nil || rp.Kind != '$' {
		t.Fatalf("INFO commandstats = %+v, %v", rp, err)
	}
	stats := string(rp.Bulk)
	if !strings.Contains(stats, "# Commandstats") {
		t.Fatalf("missing section header:\n%s", stats)
	}
	for _, want := range []string{"cmdstat_set:calls=20,", "cmdstat_get:calls=20,", "errors=0"} {
		if !strings.Contains(stats, want) {
			t.Fatalf("commandstats missing %q:\n%s", want, stats)
		}
	}
	if !strings.Contains(stats, "cmdstat_incr:calls=1,") || !strings.Contains(stats, "usec_per_call=") {
		t.Fatalf("commandstats incr line wrong:\n%s", stats)
	}
	// The INCR error is counted.
	for _, line := range strings.Split(stats, "\r\n") {
		if strings.HasPrefix(line, "cmdstat_incr:") && !strings.HasSuffix(line, "errors=1") {
			t.Fatalf("incr line = %q, want errors=1", line)
		}
	}
	// Never-called commands do not appear.
	if strings.Contains(stats, "cmdstat_flushall") {
		t.Fatalf("uncalled command in commandstats:\n%s", stats)
	}

	// INFO <section> filters to the named block; an unknown section falls
	// back to the full reply (the old switch's tolerant behavior, which
	// clients sending "INFO server" or "INFO all" rely on).
	rp, err = c.Do("INFO", "server")
	if err != nil || !strings.Contains(string(rp.Bulk), "# Server") ||
		strings.Contains(string(rp.Bulk), "# Keyspace") {
		t.Fatalf("INFO server = %q, %v", rp.Bulk, err)
	}
	rp, err = c.Do("INFO", "Expires")
	if err != nil || !strings.HasPrefix(string(rp.Bulk), "# Expires\r\n") {
		t.Fatalf("INFO Expires = %q, %v", rp.Bulk, err)
	}
	if rp, _ := c.Do("INFO", "nosection"); !strings.Contains(string(rp.Bulk), "# Server") {
		t.Fatalf("INFO nosection = %+v", rp)
	}
	if rp, _ := c.Do("INFO"); !strings.Contains(string(rp.Bulk), "# Server") {
		t.Fatalf("INFO = %+v", rp)
	}
}

// TestConfigMiddleware proves the dispatch pipeline's extension point: a
// Config.Middleware wraps every command handler, sees the *Command (so it
// can filter on flags), and runs inside the key locks like the handler.
func TestConfigMiddleware(t *testing.T) {
	var writes, total atomic.Int64
	mw := func(c *Command, next Handler) Handler {
		return func(ctx *Ctx) {
			total.Add(1)
			if c.Flags&FlagWrite != 0 {
				writes.Add(1)
			}
			next(ctx)
		}
	}
	ts := startServer(t, Config{Middleware: []Middleware{mw}}, 0)
	c := dial(t, ts)
	if err := c.Set("mw-k", "v"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("mw-k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("PING"); err != nil {
		t.Fatal(err)
	}
	// Queued transaction commands run through the same chain at EXEC.
	if _, err := c.Txn([]string{"SET", "mw-t", "v"}); err != nil {
		t.Fatal(err)
	}
	if got := writes.Load(); got != 2 {
		t.Fatalf("middleware saw %d writes, want 2", got)
	}
	// SET + GET + PING + MULTI + EXEC + queued SET = 6 invocations.
	if got := total.Load(); got != 6 {
		t.Fatalf("middleware saw %d invocations, want 6", got)
	}
}

// TestREADMECommandTable pins the README's command reference to the
// registry: the block between the markers must be exactly
// CommandTableMarkdown()'s rendering. On drift it prints the expected block
// to paste in.
func TestREADMECommandTable(t *testing.T) {
	const begin, end = "<!-- BEGIN COMMAND TABLE (generated from internal/server/commands.go) -->", "<!-- END COMMAND TABLE -->"
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readme)
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the command-table markers %q ... %q", begin, end)
	}
	got := strings.TrimSpace(text[i+len(begin) : j])
	want := strings.TrimSpace(CommandTableMarkdown())
	if got != want {
		t.Fatalf("README command table drifted from the registry.\nReplace the block between the markers with:\n\n%s", want)
	}
}
