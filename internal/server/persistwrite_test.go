package server

import (
	"strings"
	"testing"
)

// TestEveryWriteCommandPersists is generated from the registry: every
// command declared FlagWrite must, on a successful invocation, drive at
// least one cache-line flush AND one fence on the heap's Region — the
// dynamic counterpart of the persistorder analyzer, and the structural
// guarantee behind "an acknowledged write is durable". The sample table is
// completeness-checked in both directions, so adding a write command
// without a sample (or a sample for a command that lost FlagWrite) fails
// here, not in review.
func TestEveryWriteCommandPersists(t *testing.T) {
	type sample struct {
		setup [][]string // commands run (and discarded) before measuring
		cmd   []string   // the measured invocation; must not reply an error
	}
	samples := map[string]sample{
		"SET":       {cmd: []string{"SET", "pw:set", "v"}},
		"SETNX":     {cmd: []string{"SETNX", "pw:setnx", "v"}},
		"SETEX":     {cmd: []string{"SETEX", "pw:setex", "100", "v"}},
		"PSETEX":    {cmd: []string{"PSETEX", "pw:psetex", "100000", "v"}},
		"APPEND":    {setup: [][]string{{"SET", "pw:append", "v"}}, cmd: []string{"APPEND", "pw:append", "w"}},
		"GETSET":    {setup: [][]string{{"SET", "pw:getset", "v"}}, cmd: []string{"GETSET", "pw:getset", "w"}},
		"GETDEL":    {setup: [][]string{{"SET", "pw:getdel", "v"}}, cmd: []string{"GETDEL", "pw:getdel"}},
		"INCR":      {setup: [][]string{{"SET", "pw:incr", "41"}}, cmd: []string{"INCR", "pw:incr"}},
		"MSET":      {cmd: []string{"MSET", "pw:mset1", "v", "pw:mset2", "v"}},
		"DEL":       {setup: [][]string{{"SET", "pw:del", "v"}}, cmd: []string{"DEL", "pw:del"}},
		"FLUSHALL":  {setup: [][]string{{"SET", "pw:flushall", "v"}}, cmd: []string{"FLUSHALL"}},
		"EXPIRE":    {setup: [][]string{{"SET", "pw:expire", "v"}}, cmd: []string{"EXPIRE", "pw:expire", "100"}},
		"PEXPIRE":   {setup: [][]string{{"SET", "pw:pexpire", "v"}}, cmd: []string{"PEXPIRE", "pw:pexpire", "100000"}},
		"PERSIST":   {setup: [][]string{{"SET", "pw:persist", "v"}, {"EXPIRE", "pw:persist", "100"}}, cmd: []string{"PERSIST", "pw:persist"}},
		"PEXPIREAT": {setup: [][]string{{"SET", "pw:pexpireat", "v"}}, cmd: []string{"PEXPIREAT", "pw:pexpireat", "99999999999999"}},
		"PSETEXAT":  {cmd: []string{"PSETEXAT", "pw:psetexat", "99999999999999", "v"}},
		"HSET":      {cmd: []string{"HSET", "pw:hset", "f", "v"}},
		"HDEL":      {setup: [][]string{{"HSET", "pw:hdel", "f", "v"}}, cmd: []string{"HDEL", "pw:hdel", "f"}},
		"LPUSH":     {cmd: []string{"LPUSH", "pw:lpush", "v"}},
		"RPUSH":     {cmd: []string{"RPUSH", "pw:rpush", "v"}},
		"LPOP":      {setup: [][]string{{"RPUSH", "pw:lpop", "a", "b", "c"}}, cmd: []string{"LPOP", "pw:lpop"}},
		"RPOP":      {setup: [][]string{{"RPUSH", "pw:rpop", "a", "b", "c"}}, cmd: []string{"RPOP", "pw:rpop"}},
	}

	// Both directions of completeness against the live registry.
	writeCmds := map[string]bool{}
	for _, cmd := range Commands() {
		if cmd.Flags&FlagWrite != 0 {
			writeCmds[cmd.Name] = true
			if _, ok := samples[cmd.Name]; !ok {
				t.Errorf("write command %s has no persistence sample: add one to this test", cmd.Name)
			}
		}
	}
	for name := range samples {
		if !writeCmds[name] {
			t.Errorf("sample %s is not a FlagWrite command in the registry: drop or fix it", name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)
	region := ts.heap.Region()

	for _, cmd := range Commands() {
		if cmd.Flags&FlagWrite == 0 {
			continue
		}
		s := samples[cmd.Name]
		for _, pre := range s.setup {
			if rp, err := c.Do(pre...); err != nil || rp.Kind == '-' {
				t.Fatalf("%s setup %v: err=%v reply=%+v", cmd.Name, pre, err, rp)
			}
		}
		before := region.Stats()
		rp, err := c.Do(s.cmd...)
		if err != nil {
			t.Fatalf("%s: %v", cmd.Name, err)
		}
		if rp.Kind == '-' {
			t.Fatalf("%s replied error %q: sample must be a successful write", cmd.Name, rp.Str)
		}
		after := region.Stats()
		if after.Flushes == before.Flushes {
			t.Errorf("%s (%s): no Region flush during a successful write — an acknowledged write must be written back",
				cmd.Name, strings.Join(s.cmd, " "))
		}
		if after.Fences == before.Fences {
			t.Errorf("%s (%s): no Region fence during a successful write — the write-back is unordered",
				cmd.Name, strings.Join(s.cmd, " "))
		}
	}
}
