package server

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestE2ESIGKILLRestart exercises the real binary across a real process
// kill: build cmd/ralloc-serve, run it on a unix socket with a file-backed
// heap, drive 10k pipelined SETs, checkpoint with SAVE, keep traffic
// flowing, SIGKILL the process, restart it, and verify the server comes up
// dirty → recovered with DBSIZE and sampled keys intact — then shuts down
// cleanly via the SHUTDOWN command.
func TestE2ESIGKILLRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping subprocess e2e in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ralloc-serve")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/ralloc-serve")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ralloc-serve: %v\n%s", err, out)
	}

	heapPath := filepath.Join(dir, "kv.heap")
	sock := filepath.Join(dir, "kv.sock")
	args := []string{"-heap", heapPath, "-unix", sock, "-heapmb", "64", "-buckets", "8192"}

	serve := func() *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting ralloc-serve: %v", err)
		}
		return cmd
	}
	dialRetry := func() *Client {
		deadline := time.Now().Add(10 * time.Second)
		for {
			c, err := DialTimeout("unix", sock, time.Second)
			if err == nil {
				return c
			}
			if time.Now().After(deadline) {
				t.Fatalf("server did not come up: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	cmd := serve()
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}()
	c := dialRetry()

	// 10k pipelined SETs in batches of 200.
	const total, batch = 10000, 200
	for base := 0; base < total; base += batch {
		for i := base; i < base+batch; i++ {
			if err := c.Send("SET", fmt.Sprintf("e2e-%05d", i), fmt.Sprintf("val-%05d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < batch; i++ {
			rp, err := c.Recv()
			if err != nil || rp.Str != "OK" {
				t.Fatalf("pipelined SET reply = %+v, %v", rp, err)
			}
		}
	}
	if n, err := c.DBSize(); err != nil || n != total {
		t.Fatalf("DBSIZE = %d, %v", n, err)
	}
	if rp, err := c.Do("SAVE"); err != nil || rp.Str != "OK" {
		t.Fatalf("SAVE = %+v, %v", rp, err)
	}

	// Keep traffic flowing past the checkpoint, then yank the process.
	// These overwrites are acknowledged in DRAM terms but the file image
	// is the checkpoint: the model loses them, reverting to SAVE state.
	for i := 0; i < 500; i++ {
		if err := c.Set(fmt.Sprintf("e2e-%05d", i), "post-save"); err != nil {
			t.Fatal(err)
		}
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	c.Close()

	// Restart: must come up from the checkpoint, dirty, recover, serve.
	cmd2 := serve()
	defer func() { cmd2.Process.Kill() }()
	c2 := dialRetry()
	defer c2.Close()

	if n, err := c2.DBSize(); err != nil || n != total {
		t.Fatalf("DBSIZE after SIGKILL restart = %d, %v (want %d)", n, err, total)
	}
	for _, i := range []int{0, 42, 4999, 9999} {
		v, ok, err := c2.Get(fmt.Sprintf("e2e-%05d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != fmt.Sprintf("val-%05d", i) {
			t.Fatalf("sampled key e2e-%05d = (%q,%v) after restart", i, v, ok)
		}
	}
	// Still writable, and a clean SHUTDOWN saves the image without the
	// dirty flag: the third start must report a clean reopen instantly.
	if err := c2.Set("after-restart", "ok"); err != nil {
		t.Fatal(err)
	}
	if rp, err := c2.Do("SHUTDOWN"); err != nil || rp.Str != "OK" {
		t.Fatalf("SHUTDOWN = %+v, %v", rp, err)
	}
	waitExit(t, cmd2, 15*time.Second)

	cmd3 := serve()
	defer func() { cmd3.Process.Kill() }()
	c3 := dialRetry()
	defer c3.Close()
	if v, ok, err := c3.Get("after-restart"); err != nil || !ok || v != "ok" {
		t.Fatalf("clean-shutdown write lost: (%q,%v,%v)", v, ok, err)
	}
	if n, err := c3.DBSize(); err != nil || n != total+1 {
		t.Fatalf("DBSIZE after clean restart = %d, %v", n, err)
	}
	cmd3.Process.Signal(syscall.SIGTERM)
	waitExit(t, cmd3, 15*time.Second)
}

func waitExit(t *testing.T, cmd *exec.Cmd, timeout time.Duration) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited with error: %v", err)
		}
	case <-time.After(timeout):
		cmd.Process.Kill()
		t.Fatal("server did not exit in time")
	}
}
