package server

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestMultiExecBasic(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	if err := c.Multi(); err != nil {
		t.Fatal(err)
	}
	// Queued commands reply +QUEUED and have no effect yet.
	for _, cmd := range [][]string{
		{"SET", "tx-a", "1"},
		{"INCR", "tx-a"},
		{"GET", "tx-a"},
		{"GET", "tx-missing"},
	} {
		rp, err := c.Do(cmd...)
		if err != nil || rp.Str != "QUEUED" {
			t.Fatalf("%v = %+v, %v (want +QUEUED)", cmd, rp, err)
		}
	}
	c2 := dial(t, ts)
	if _, ok, _ := c2.Get("tx-a"); ok {
		t.Fatal("queued SET visible before EXEC")
	}

	rps, err := c.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(rps) != 4 {
		t.Fatalf("EXEC returned %d replies, want 4", len(rps))
	}
	if rps[0].Str != "OK" || rps[1].Int != 2 || string(rps[2].Bulk) != "2" || !rps[3].Nil {
		t.Fatalf("EXEC replies = %+v", rps)
	}
	if v, ok, _ := c2.Get("tx-a"); !ok || v != "2" {
		t.Fatalf("tx-a after EXEC = (%q,%v)", v, ok)
	}

	// The transaction is closed: another EXEC is an error, and ordinary
	// commands run immediately again.
	if rp, _ := c.Do("EXEC"); rp.Kind != '-' || !strings.Contains(rp.Str, "EXEC without MULTI") {
		t.Fatalf("second EXEC = %+v", rp)
	}
	if rp, err := c.Do("PING"); err != nil || rp.Str != "PONG" {
		t.Fatalf("PING after EXEC = %+v, %v", rp, err)
	}
}

func TestTxnHelperAndEmptyExec(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	rps, err := c.Txn([]string{"MSET", "h-a", "1", "h-b", "2"}, []string{"DEL", "h-a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rps) != 2 || rps[0].Str != "OK" || rps[1].Int != 1 {
		t.Fatalf("Txn replies = %+v", rps)
	}
	if _, ok, _ := c.Get("h-a"); ok {
		t.Fatal("h-a survived the transaction's DEL")
	}
	if v, ok, _ := c.Get("h-b"); !ok || v != "2" {
		t.Fatalf("h-b = (%q,%v)", v, ok)
	}

	// An empty transaction EXECs to an empty array.
	rps, err = c.Txn()
	if err != nil || len(rps) != 0 {
		t.Fatalf("empty Txn = %+v, %v", rps, err)
	}
}

func TestDiscard(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	if err := c.Multi(); err != nil {
		t.Fatal(err)
	}
	if rp, _ := c.Do("SET", "d-k", "v"); rp.Str != "QUEUED" {
		t.Fatalf("queued SET = %+v", rp)
	}
	if err := c.Discard(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("d-k"); ok {
		t.Fatal("DISCARDed SET applied")
	}
	if rp, _ := c.Do("EXEC"); rp.Kind != '-' || !strings.Contains(rp.Str, "EXEC without MULTI") {
		t.Fatalf("EXEC after DISCARD = %+v", rp)
	}
	if rp, _ := c.Do("DISCARD"); rp.Kind != '-' || !strings.Contains(rp.Str, "DISCARD without MULTI") {
		t.Fatalf("bare DISCARD = %+v", rp)
	}
}

func TestNestedMultiIsErrorButNotPoison(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	if err := c.Multi(); err != nil {
		t.Fatal(err)
	}
	if rp, _ := c.Do("MULTI"); rp.Kind != '-' || !strings.Contains(rp.Str, "MULTI calls can not be nested") {
		t.Fatalf("nested MULTI = %+v", rp)
	}
	// Like Redis, the nested-MULTI error does not poison the transaction.
	if rp, _ := c.Do("SET", "n-k", "v"); rp.Str != "QUEUED" {
		t.Fatalf("SET after nested MULTI = %+v", rp)
	}
	rps, err := c.Exec()
	if err != nil || len(rps) != 1 || rps[0].Str != "OK" {
		t.Fatalf("EXEC = %+v, %v", rps, err)
	}
	if v, ok, _ := c.Get("n-k"); !ok || v != "v" {
		t.Fatalf("n-k = (%q,%v)", v, ok)
	}
}

func TestQueueTimeValidationAbortsExec(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	for name, poison := range map[string][]string{
		"unknown command": {"NOSUCHCMD", "x"},
		"wrong arity":     {"GET"},
		"denied SAVE":     {"SAVE"},
		"denied SHUTDOWN": {"SHUTDOWN"},
	} {
		t.Run(name, func(t *testing.T) {
			c := dial(t, ts)
			if err := c.Multi(); err != nil {
				t.Fatal(err)
			}
			if rp, _ := c.Do("SET", "q-k", "v"); rp.Str != "QUEUED" {
				t.Fatalf("SET = %+v", rp)
			}
			// The poison command is rejected immediately...
			if rp, _ := c.Do(poison...); rp.Kind != '-' {
				t.Fatalf("poison %v = %+v (want error)", poison, rp)
			}
			// ...valid commands still queue...
			if rp, _ := c.Do("SET", "q-k2", "v"); rp.Str != "QUEUED" {
				t.Fatalf("SET after poison = %+v", rp)
			}
			// ...and EXEC aborts with EXECABORT, applying nothing.
			rp, err := c.Do("EXEC")
			if err != nil || rp.Kind != '-' || !strings.HasPrefix(rp.Str, "EXECABORT") {
				t.Fatalf("EXEC = %+v, %v (want -EXECABORT)", rp, err)
			}
			if _, ok, _ := c.Get("q-k"); ok {
				t.Fatal("aborted transaction applied a queued SET")
			}
			// The connection (and server) remain fully usable.
			if rp, err := c.Do("PING"); err != nil || rp.Str != "PONG" {
				t.Fatalf("PING after EXECABORT = %+v, %v", rp, err)
			}
		})
	}
}

func TestErrorInsideExecDoesNotAbort(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)
	if err := c.Set("e-text", "not-a-number"); err != nil {
		t.Fatal(err)
	}
	rps, err := c.Txn(
		[]string{"SET", "e-a", "1"},
		[]string{"INCR", "e-text"}, // fails at execution time
		[]string{"SET", "e-b", "2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rps) != 3 {
		t.Fatalf("EXEC returned %d replies", len(rps))
	}
	if rps[0].Str != "OK" || rps[1].Kind != '-' || rps[2].Str != "OK" {
		t.Fatalf("EXEC replies = %+v", rps)
	}
	for _, k := range []string{"e-a", "e-b"} {
		if _, ok, _ := c.Get(k); !ok {
			t.Fatalf("%s not applied despite mid-EXEC error elsewhere", k)
		}
	}
}

func TestFlushallInsideTxn(t *testing.T) {
	// FLUSHALL is FlagLockAll: inside a transaction the union lock
	// escalates to every stripe and the queue still runs in order.
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)
	if err := c.Set("f-old", "v"); err != nil {
		t.Fatal(err)
	}
	rps, err := c.Txn(
		[]string{"SET", "f-mid", "v"},
		[]string{"FLUSHALL"},
		[]string{"SET", "f-new", "v"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rps[0].Str != "OK" || rps[1].Str != "OK" || rps[2].Str != "OK" {
		t.Fatalf("EXEC replies = %+v", rps)
	}
	for _, gone := range []string{"f-old", "f-mid"} {
		if _, ok, _ := c.Get(gone); ok {
			t.Fatalf("%s survived FLUSHALL inside the transaction", gone)
		}
	}
	if _, ok, _ := c.Get("f-new"); !ok {
		t.Fatal("f-new (queued after FLUSHALL) missing")
	}
}

func TestTxnQueueCap(t *testing.T) {
	// The MULTI queue is bounded: command maxTxnQueue+1 is rejected, the
	// transaction is poisoned, and EXEC aborts — one connection cannot
	// accumulate unbounded retained commands.
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)
	if err := c.Multi(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxTxnQueue; i++ {
		if err := c.Send("SET", "cap-k", "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxTxnQueue; i++ {
		if rp, err := c.Recv(); err != nil || rp.Str != "QUEUED" {
			t.Fatalf("queued %d = %+v, %v", i, rp, err)
		}
	}
	rp, err := c.Do("SET", "cap-k", "v")
	if err != nil || rp.Kind != '-' || !strings.Contains(rp.Str, "transaction queue limit") {
		t.Fatalf("over-cap queue = %+v, %v", rp, err)
	}
	if rp, err := c.Do("EXEC"); err != nil || !strings.HasPrefix(rp.Str, "EXECABORT") {
		t.Fatalf("EXEC after overflow = %+v, %v", rp, err)
	}
	if _, ok, _ := c.Get("cap-k"); ok {
		t.Fatal("overflowed transaction applied")
	}
}

// TestTxnQueueByteCap exercises the byte budget at the enqueue level —
// driving 256MB of bulk data over a socket would dominate the suite. A few
// maxBulkLen-sized commands (sharing one backing array) must trip the cap
// long before the 4096-command count cap, and reset must drop the retained
// references so an idle connection doesn't pin the transaction's data.
func TestTxnQueueByteCap(t *testing.T) {
	big := make([]byte, maxBulkLen)
	cs := &connState{inTxn: true}
	ctx := &Ctx{w: newRespWriter(io.Discard), cs: cs}
	bc := &boundCmd{cmd: commandTable["SET"]}
	args := [][]byte{[]byte("SET"), []byte("k"), big}
	per := len(args[0]) + len(args[1]) + len(args[2]) + len(args)*txnArgOverhead

	admitted := 0
	for ; cs.queuedBytes+per <= maxTxnQueueBytes; admitted++ {
		cs.enqueue(ctx, bc, args)
		if cs.dirty {
			t.Fatalf("queue poisoned early: %d commands, %d bytes", admitted, cs.queuedBytes)
		}
	}
	if admitted >= maxTxnQueue {
		t.Fatalf("byte cap never binds: %d commands admitted", admitted)
	}
	cs.enqueue(ctx, bc, args)
	if !cs.dirty {
		t.Fatalf("queue exceeded maxTxnQueueBytes (%d commands, %d bytes) without poisoning",
			len(cs.queue), cs.queuedBytes)
	}

	cs.reset()
	if cs.queuedBytes != 0 || len(cs.queue) != 0 {
		t.Fatalf("reset left queuedBytes=%d len=%d", cs.queuedBytes, len(cs.queue))
	}
	for i, q := range cs.queue[:cap(cs.queue)] {
		if q.bc != nil || q.args != nil {
			t.Fatalf("reset retained queue entry %d: %+v", i, q)
		}
	}
}

func TestConcurrentTxnAtomicity(t *testing.T) {
	// Two counters incremented only inside transactions must stay equal in
	// every transaction's view and end at the exact total: EXEC's union
	// locking makes the pair of INCRs atomic against other transactions.
	ts := startServer(t, Config{}, 0)
	const clients, txns = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial("unix", ts.sock)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < txns; i++ {
				rps, err := c.Txn([]string{"INCR", "ctr-a"}, []string{"INCR", "ctr-b"})
				if err != nil {
					t.Error(err)
					return
				}
				if rps[0].Int != rps[1].Int {
					t.Errorf("transaction observed torn counters: %d vs %d", rps[0].Int, rps[1].Int)
					return
				}
			}
		}()
	}
	wg.Wait()
	c := dial(t, ts)
	want := fmt.Sprint(clients * txns)
	for _, k := range []string{"ctr-a", "ctr-b"} {
		if v, ok, _ := c.Get(k); !ok || v != want {
			t.Fatalf("%s = %q, want %s", k, v, want)
		}
	}
	if _, err := ts.heap.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedWriteLockOrdering(t *testing.T) {
	// Multi-stripe writers (MSET, transactions, FLUSHALL's all-stripe
	// lock) running concurrently must not deadlock: every path acquires
	// stripes in ascending order. A deadlock here fails the test by timeout.
	ts := startServer(t, Config{}, 0)
	const clients = 6
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial("unix", ts.sock)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				switch g % 3 {
				case 0:
					if rp, err := c.Do("MSET", fmt.Sprintf("m-%d", i), "v", fmt.Sprintf("m-%d", i+1), "v", "m-shared", "v"); err != nil || rp.Kind == '-' {
						t.Errorf("MSET: %+v, %v", rp, err)
						return
					}
				case 1:
					if _, err := c.Txn([]string{"INCR", "m-ctr"}, []string{"DEL", fmt.Sprintf("m-%d", i)}, []string{"SET", "m-shared", "t"}); err != nil {
						t.Errorf("Txn: %v", err)
						return
					}
				case 2:
					if rp, err := c.Do("FLUSHALL"); err != nil || rp.Str != "OK" {
						t.Errorf("FLUSHALL: %+v, %v", rp, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := ts.heap.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
