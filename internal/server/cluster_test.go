package server

import (
	"fmt"
	"net"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster/slot"
	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// shardedEnv is an in-process N-shard server on a unix socket, each shard a
// full heap + store, with file-backed online checkpoints when paths are set.
type shardedEnv struct {
	heaps []*ralloc.Heap
	paths []string
	srv   *Server
	sock  string
}

// startSharded builds an N-shard server. filed wires each shard's online
// checkpoint (both the whole-save form and the step-split form the global
// cut uses) to an image file in a temp dir, so SAVE works end to end.
// snapHook, when non-nil, supplies a per-shard pmem snapshot hook (crash
// injection); it may return nil for shards that get none.
func startSharded(t *testing.T, n int, cfg Config, filed bool, snapHook func(shard int) func(pmem.SnapshotPhase)) *shardedEnv {
	t.Helper()
	e := &shardedEnv{}
	dir := t.TempDir()
	backends := make([]ShardBackend, n)
	for i := 0; i < n; i++ {
		pcfg := pmem.Config{Mode: pmem.ModeCrashSim}
		if snapHook != nil {
			pcfg.SnapshotHook = snapHook(i)
		}
		h, _, err := ralloc.Open("", ralloc.Config{
			SBRegion: 64 << 20,
			Pmem:     pcfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		a := h.AsAllocator()
		st, root := kvstore.Open(a, a.NewHandle(), 1024)
		h.SetRoot(0, root)
		e.heaps = append(e.heaps, h)
		be := ShardBackend{Alloc: a, Store: st}
		if filed {
			region := h.Region()
			path := filepath.Join(dir, fmt.Sprintf("shard%d.heap", i))
			e.paths = append(e.paths, path)
			be.CheckpointOnline = func(fence func(cut func() error) error) (CheckpointStats, error) {
				st, err := region.SaveFileOnline(path, fence)
				return CheckpointStats{Lines: st.Lines, Recopied: st.Recopied,
					FenceRecopied: st.FenceRecopied, Rounds: st.Rounds}, err
			}
			be.CheckpointSteps = func() (func() error, func() (CheckpointStats, error), func(), error) {
				save, err := region.BeginOnlineSave(path)
				if err != nil {
					return nil, nil, nil, err
				}
				publish := func() (CheckpointStats, error) {
					st, err := save.Publish()
					return CheckpointStats{Lines: st.Lines, Recopied: st.Recopied,
						FenceRecopied: st.FenceRecopied, Rounds: st.Rounds}, err
				}
				return save.Cut, publish, save.Abort, nil
			}
			be.CheckpointOffset = func(id, off uint64) { region.SetReplMeta(id, off) }
		}
		backends[i] = be
	}
	e.srv = NewSharded(backends, cfg)
	e.sock = filepath.Join(dir, "cluster.sock")
	l, err := net.Listen("unix", e.sock)
	if err != nil {
		t.Fatal(err)
	}
	go e.srv.Serve(l)
	t.Cleanup(func() { e.srv.Shutdown(time.Second) })
	return e
}

func (e *shardedEnv) dial(t *testing.T) *Client {
	t.Helper()
	c, err := Dial("unix", e.sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// keysOnDistinctShards returns one key per shard index (0 and 1) of an
// n-shard cluster, by probing the slot mapping.
func keysOnDistinctShards(t *testing.T, n int) (k0, k1 string) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("probe-%d", i)
		switch slot.ShardOf([]byte(k), n) {
		case 0:
			k0 = k
		case 1:
			k1 = k
		}
		if k0 != "" && k1 != "" {
			return k0, k1
		}
	}
	t.Fatal("could not find keys on two distinct shards")
	return
}

// TestScanCursorRoundTrip is the SCAN regression pin at both shard counts:
// every key set is returned exactly once by a cursor walk, regardless of
// COUNT, and the walk terminates with cursor 0. The multi-shard variant also
// pins the cursor encoding's resumability contract — the shard component
// never decreases across a walk, so a resumed cursor never revisits a shard
// it finished.
func TestScanCursorRoundTrip(t *testing.T) {
	for _, n := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			e := startSharded(t, n, Config{}, false, nil)
			c := e.dial(t)

			const total = 500
			want := map[string]bool{}
			for i := 0; i < total; i++ {
				k := fmt.Sprintf("scan-key-%04d", i)
				want[k] = true
				if err := c.Set(k, "v"); err != nil {
					t.Fatal(err)
				}
			}

			for _, count := range []string{"1", "17", "1000"} {
				got := map[string]int{}
				cursor := "0"
				lastShard := -1
				for steps := 0; ; steps++ {
					if steps > 2*total+10 {
						t.Fatalf("COUNT %s: cursor walk did not terminate", count)
					}
					rp, err := c.Do("SCAN", cursor, "COUNT", count)
					if err != nil || rp.Kind != '*' || len(rp.Elems) != 2 {
						t.Fatalf("SCAN = %+v, %v", rp, err)
					}
					for _, el := range rp.Elems[1].Elems {
						got[string(el.Bulk)]++
					}
					cursor = string(rp.Elems[0].Bulk)
					if cursor == "0" {
						break
					}
					cur, err := strconv.ParseUint(cursor, 10, 64)
					if err != nil {
						t.Fatalf("non-numeric cursor %q", cursor)
					}
					shard, _, ok := slot.DecodeCursor(cur, n)
					if !ok {
						t.Fatalf("undecodable cursor %q", cursor)
					}
					if shard < lastShard {
						t.Fatalf("cursor shard went backwards: %d after %d (a resumed walk would revisit a finished shard)", shard, lastShard)
					}
					lastShard = shard
				}
				if len(got) != total {
					t.Fatalf("COUNT %s: walk returned %d distinct keys, want %d", count, len(got), total)
				}
				for k, times := range got {
					if !want[k] {
						t.Fatalf("COUNT %s: phantom key %q", count, k)
					}
					if times != 1 {
						t.Fatalf("COUNT %s: key %q returned %d times", count, k, times)
					}
				}
			}

			// Malformed cursors and COUNTs are refused, not misparsed.
			if rp, _ := c.Do("SCAN", "notanumber"); rp.Kind != '-' {
				t.Fatalf("SCAN notanumber = %+v", rp)
			}
			if rp, _ := c.Do("SCAN", "0", "COUNT", "0"); rp.Kind != '-' {
				t.Fatalf("SCAN COUNT 0 = %+v", rp)
			}
		})
	}
}

// TestClusterCrossSlot pins the multi-shard routing contract: multi-key
// commands and transactions are atomic within one shard and refused with
// -CROSSSLOT across shards; hash tags co-locate; keyless fan-out commands
// (DBSIZE, FLUSHALL) see the whole keyspace.
func TestClusterCrossSlot(t *testing.T) {
	const n = 4
	e := startSharded(t, n, Config{}, false, nil)
	c := e.dial(t)
	k0, k1 := keysOnDistinctShards(t, n)

	// Cross-shard MSET refused; nothing applied.
	rp, err := c.Do("MSET", k0, "a", k1, "b")
	if err != nil || rp.Kind != '-' || rp.Str[:9] != "CROSSSLOT" {
		t.Fatalf("cross-shard MSET = %+v, %v", rp, err)
	}
	if _, ok, _ := c.Get(k0); ok {
		t.Fatal("refused MSET applied a key")
	}

	// Hash tags force co-location: {tag}a and {tag}b share a slot.
	if rp, err := c.Do("MSET", "{tag}a", "1", "{tag}b", "2"); err != nil || rp.Str != "OK" {
		t.Fatalf("hash-tag MSET = %+v, %v", rp, err)
	}
	if rp, err := c.Do("MGET", "{tag}a", "{tag}b"); err != nil || len(rp.Elems) != 2 ||
		string(rp.Elems[0].Bulk) != "1" || string(rp.Elems[1].Bulk) != "2" {
		t.Fatalf("hash-tag MGET = %+v, %v", rp, err)
	}

	// A transaction touching two shards poisons at queue time and aborts.
	mustDo := func(args ...string) Reply {
		t.Helper()
		rp, err := c.Do(args...)
		if err != nil {
			t.Fatal(err)
		}
		return rp
	}
	mustDo("MULTI")
	mustDo("SET", k0, "x")
	if rp := mustDo("SET", k1, "y"); rp.Kind != '-' || rp.Str[:9] != "CROSSSLOT" {
		t.Fatalf("cross-shard queue = %+v", rp)
	}
	if rp := mustDo("EXEC"); rp.Kind != '-' || rp.Str[:9] != "EXECABORT" {
		t.Fatalf("EXEC after cross-shard queue = %+v", rp)
	}
	if _, ok, _ := c.Get(k0); ok {
		t.Fatal("aborted transaction applied a write")
	}

	// FLUSHALL inside MULTI cannot be shard-confined at N>1.
	mustDo("MULTI")
	if rp := mustDo("FLUSHALL"); rp.Kind != '-' || rp.Str[:9] != "CROSSSLOT" {
		t.Fatalf("FLUSHALL in MULTI at N>1 = %+v", rp)
	}
	mustDo("DISCARD")

	// A same-shard transaction still commits atomically.
	mustDo("MULTI")
	mustDo("SET", "{tag}a", "10")
	mustDo("SET", "{tag}b", "20")
	if rp := mustDo("EXEC"); rp.Kind != '*' || len(rp.Elems) != 2 {
		t.Fatalf("same-shard EXEC = %+v", rp)
	}
	if v, _, _ := c.Get("{tag}a"); v != "10" {
		t.Fatal("same-shard transaction lost a write")
	}

	// Fan-out: DBSIZE sums shards; FLUSHALL clears them all.
	if err := c.Set(k0, "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set(k1, "y"); err != nil {
		t.Fatal(err)
	}
	nKeys, err := c.DBSize()
	if err != nil || nKeys != 4 { // {tag}a, {tag}b, k0, k1
		t.Fatalf("DBSIZE = %d, %v", nKeys, err)
	}
	if rp := mustDo("FLUSHALL"); rp.Str != "OK" {
		t.Fatalf("FLUSHALL = %+v", rp)
	}
	if nKeys, _ := c.DBSize(); nKeys != 0 {
		t.Fatalf("DBSIZE after FLUSHALL = %d", nKeys)
	}
}

// TestClusterShardCrashMidOnlineSave is the per-shard crash-injection pin:
// the process dies (in-process kill -9 plus a simulated machine crash) while
// shard k is mid-online-SAVE. After recovery of every shard from its
// surviving pmem, no acknowledged write is lost on ANY shard — the dying
// shard's half-written temp image is invisible (atomic rename never ran),
// and its last published image still parses.
func TestClusterShardCrashMidOnlineSave(t *testing.T) {
	const n, crashShard = 4, 2
	type crashSentinel struct{}

	// Shard k's snapshot hook dies at the first phase boundary (mid-copy)
	// once armed; the other shards save unmolested.
	var armed atomic.Bool
	e := startSharded(t, n, Config{}, true, func(shard int) func(pmem.SnapshotPhase) {
		if shard != crashShard {
			return nil
		}
		return func(pmem.SnapshotPhase) {
			if armed.Load() {
				panic(crashSentinel{})
			}
		}
	})
	c := e.dial(t)

	// Baseline data on every shard, checkpointed so each shard has a
	// published image to fall back to.
	const total = 2000
	for i := 0; i < total; i++ {
		if err := c.Set(fmt.Sprintf("pre-%05d", i), fmt.Sprintf("v-%05d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.srv.Save(); err != nil {
		t.Fatal(err)
	}

	// More acknowledged writes after the checkpoint: these must survive the
	// crash via pmem recovery even though no image contains them.
	for i := 0; i < 500; i++ {
		if err := c.Set(fmt.Sprintf("post-%05d", i), "post"); err != nil {
			t.Fatal(err)
		}
	}

	// Arm the hook, then SAVE. The panic unwinds out of Save (the armed
	// snapshot aborts via its defers); the test then crashes the whole
	// machine at that instant.
	armed.Store(true)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("SAVE with a mid-copy crash hook did not panic")
			} else if _, ok := r.(crashSentinel); !ok {
				panic(r)
			}
		}()
		e.srv.Save()
	}()
	armed.Store(false)
	e.srv.Abort()
	c.Close()

	// Machine crash: every unflushed line on every shard is lost.
	for _, h := range e.heaps {
		if err := h.Region().Crash(); err != nil {
			t.Fatal(err)
		}
	}

	// Shard k's on-disk image must still be the published one (the dying
	// save never renamed): it parses and carries data, not garbage.
	if _, _, err := pmem.ReadImageMeta(e.paths[crashShard]); err != nil {
		t.Fatalf("crash shard's image unreadable after mid-save death: %v", err)
	}

	// Parallel recovery of all shards, then serve again and verify every
	// acknowledged write on every shard.
	rcfg := ralloc.Config{SBRegion: 64 << 20, Pmem: pmem.Config{Mode: pmem.ModeCrashSim}}
	backends := make([]ShardBackend, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h2, dirty, err := ralloc.Attach(e.heaps[i].Region(), rcfg)
			if err != nil {
				errs[i] = err
				return
			}
			if !dirty {
				errs[i] = fmt.Errorf("shard %d attached clean after crash", i)
				return
			}
			a2 := h2.AsAllocator()
			root := h2.GetRoot(0, nil)
			h2.GetRoot(0, kvstore.Filter(a2, root))
			if _, err := h2.Recover(); err != nil {
				errs[i] = err
				return
			}
			backends[i] = ShardBackend{Alloc: a2, Store: kvstore.Attach(a2, root)}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d recovery: %v", i, err)
		}
	}

	srv2 := NewSharded(backends, Config{})
	sock2 := filepath.Join(t.TempDir(), "recovered.sock")
	l2, err := net.Listen("unix", sock2)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l2)
	defer srv2.Shutdown(time.Second)
	c2, err := Dial("unix", sock2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	for i := 0; i < total; i++ {
		k := fmt.Sprintf("pre-%05d", i)
		if v, ok, err := c2.Get(k); err != nil || !ok || v != fmt.Sprintf("v-%05d", i) {
			t.Fatalf("acknowledged pre-checkpoint write lost: %s = (%q,%v,%v)", k, v, ok, err)
		}
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("post-%05d", i)
		if v, ok, err := c2.Get(k); err != nil || !ok || v != "post" {
			t.Fatalf("acknowledged post-checkpoint write lost: %s = (%q,%v,%v)", k, v, ok, err)
		}
	}
}

// TestClusterMixedWorkloadRace is the 4-shard concurrency soak the race
// detector chews on: parallel writers spraying keys (with TTLs) across
// shards, a SAVE loop exercising the global cut (replication enabled, so
// every SAVE takes all four barriers under one fence), the active expiry
// cycle reclaiming per shard, and SCAN/DBSIZE readers fanning out — all at
// once. The assertions are light (no errors, a final consistent read);
// the point is the interleavings.
func TestClusterMixedWorkloadRace(t *testing.T) {
	const n = 4
	e := startSharded(t, n, Config{
		ActiveExpiryInterval: 2 * time.Millisecond,
		ActiveExpirySample:   50,
		ReplBacklogBytes:     1 << 20, // enables repl → SAVE takes the global-cut path
	}, true, nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var fails atomic.Int32
	note := func(format string, args ...any) {
		if fails.Add(1) <= 3 {
			t.Errorf(format, args...)
		}
	}

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := e.dial(t)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("mix-%d-%04d", g, i%256)
				if err := c.Set(k, "v"); err != nil {
					note("writer %d SET: %v", g, err)
					return
				}
				if i%7 == 0 {
					if rp, err := c.Do("PEXPIRE", k, "1"); err != nil || rp.Kind == '-' {
						note("writer %d PEXPIRE: %+v %v", g, rp, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.srv.Save(); err != nil {
				note("SAVE: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := e.dial(t)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cursor := "0"
			for {
				rp, err := c.Do("SCAN", cursor, "COUNT", "50")
				if err != nil || rp.Kind != '*' {
					note("SCAN: %+v %v", rp, err)
					return
				}
				cursor = string(rp.Elems[0].Bulk)
				if cursor == "0" {
					break
				}
			}
			if _, err := c.DBSize(); err != nil {
				note("DBSIZE: %v", err)
				return
			}
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	c := e.dial(t)
	if err := c.Set("final", "ok"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("final"); err != nil || !ok || v != "ok" {
		t.Fatalf("final read = (%q,%v,%v)", v, ok, err)
	}
	for i, h := range e.heaps {
		if _, err := h.CheckInvariants(); err != nil {
			t.Fatalf("shard %d invariants after soak: %v", i, err)
		}
	}
}
