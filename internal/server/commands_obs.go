package server

import (
	"strconv"
	"strings"
)

// This file is the wire surface of the observability layer (internal/obs):
// SLOWLOG over the server's slow-command ring and LATENCY over its named
// event timeline, both Redis-shaped. The data structures live in obs; these
// handlers only translate between RESP and snapshots.

// subcommandOf case-folds args[1] with the same hostile-length guard the
// COMMAND handler uses: a maxBulkLen subcommand must miss cheaply, not pay
// a megabytes-sized ToUpper copy.
func subcommandOf(args [][]byte) string {
	const maxSubcommandLen = 16
	if len(args) < 2 || len(args[1]) > maxSubcommandLen {
		return ""
	}
	return strings.ToUpper(string(args[1]))
}

// cmdSlowlog implements SLOWLOG GET [count] | RESET | LEN. Each GET entry
// is Redis's classic 4-field shape: [id, unix-timestamp, duration-usec,
// argument array (truncated at record time)].
func cmdSlowlog(ctx *Ctx) {
	switch subcommandOf(ctx.args) {
	case "GET":
		n := -1
		if len(ctx.args) == 3 {
			v, err := strconv.Atoi(string(ctx.args[2]))
			if err != nil {
				ctx.w.errorf("value is not an integer or out of range")
				return
			}
			n = v
		} else if len(ctx.args) != 2 {
			ctx.w.errorf("wrong number of arguments for 'slowlog|get' command")
			return
		}
		entries := ctx.s.slow.Get(n)
		ctx.w.arrayHeader(len(entries))
		for _, e := range entries {
			ctx.w.arrayHeader(4)
			ctx.w.integer(e.ID)
			ctx.w.integer(e.Unix)
			ctx.w.integer(int64(e.Dur) / 1e3)
			ctx.w.arrayHeader(len(e.Args))
			for _, a := range e.Args {
				ctx.w.bulk([]byte(a))
			}
		}
	case "RESET":
		if len(ctx.args) != 2 {
			ctx.w.errorf("wrong number of arguments for 'slowlog|reset' command")
			return
		}
		ctx.s.slow.Reset()
		ctx.w.simple("OK")
	case "LEN":
		if len(ctx.args) != 2 {
			ctx.w.errorf("wrong number of arguments for 'slowlog|len' command")
			return
		}
		ctx.w.integer(int64(ctx.s.slow.Len()))
	default:
		ctx.w.errorf("unknown subcommand '%s' for 'slowlog'", errorEcho(ctx.args[1]))
	}
}

// cmdLatency implements LATENCY LATEST | HISTORY <event> | RESET
// [event...]. Durations are reported in milliseconds, like Redis's latency
// monitor: LATEST rows are [name, last-sample unix, latest-ms, max-ms];
// HISTORY rows are [unix, ms] pairs, oldest first.
func cmdLatency(ctx *Ctx) {
	switch subcommandOf(ctx.args) {
	case "LATEST":
		if len(ctx.args) != 2 {
			ctx.w.errorf("wrong number of arguments for 'latency|latest' command")
			return
		}
		rows := ctx.s.events.Latest()
		ctx.w.arrayHeader(len(rows))
		for _, r := range rows {
			ctx.w.arrayHeader(4)
			ctx.w.bulk([]byte(r.Name))
			ctx.w.integer(r.Unix)
			ctx.w.integer(int64(r.Latest) / 1e6)
			ctx.w.integer(int64(r.Max) / 1e6)
		}
	case "HISTORY":
		if len(ctx.args) != 3 {
			ctx.w.errorf("wrong number of arguments for 'latency|history' command")
			return
		}
		samples := ctx.s.events.History(string(ctx.args[2]))
		ctx.w.arrayHeader(len(samples))
		for _, smp := range samples {
			ctx.w.arrayHeader(2)
			ctx.w.integer(smp.Unix)
			ctx.w.integer(int64(smp.Dur) / 1e6)
		}
	case "RESET":
		names := make([]string, 0, len(ctx.args)-2)
		for _, a := range ctx.args[2:] {
			names = append(names, string(a))
		}
		ctx.w.integer(int64(ctx.s.events.Reset(names...)))
	default:
		ctx.w.errorf("unknown subcommand '%s' for 'latency'", errorEcho(ctx.args[1]))
	}
}
