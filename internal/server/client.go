package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"time"
)

// Client is a minimal RESP2 client with explicit pipelining: Send queues
// commands into the write buffer, Flush pushes them to the server, Recv
// reads one reply. Do is the one-shot convenience. Not safe for concurrent
// use; give each goroutine its own Client.
type Client struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	pending int
}

// Dial connects to a server ("tcp", "host:port" or "unix", "/path.sock").
func Dial(network, addr string) (*Client, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(network, addr string, d time.Duration) (*Client, error) {
	c, err := net.DialTimeout(network, addr, d)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{
		c:  c,
		br: bufio.NewReaderSize(c, 16<<10),
		bw: bufio.NewWriterSize(c, 16<<10),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// Send queues one command (as a RESP array of bulk strings) in the write
// buffer without transmitting it.
func (c *Client) Send(args ...string) error {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return c.SendBytes(bs...)
}

// SendBytes is Send for preformatted byte arguments.
func (c *Client) SendBytes(args ...[]byte) error {
	c.bw.WriteByte('*')
	c.bw.WriteString(strconv.Itoa(len(args)))
	c.bw.WriteString("\r\n")
	for _, a := range args {
		c.bw.WriteByte('$')
		c.bw.WriteString(strconv.Itoa(len(a)))
		c.bw.WriteString("\r\n")
		c.bw.Write(a)
		if _, err := c.bw.WriteString("\r\n"); err != nil {
			return err
		}
	}
	c.pending++
	return nil
}

// Flush transmits all queued commands.
func (c *Client) Flush() error { return c.bw.Flush() }

// Pending reports how many replies have not been received yet.
func (c *Client) Pending() int { return c.pending }

// Recv reads the next reply. The caller is responsible for matching Recv
// calls one-to-one (in order) with sent commands.
func (c *Client) Recv() (Reply, error) {
	rp, err := readReply(c.br)
	if err != nil {
		return rp, err
	}
	c.pending--
	return rp, nil
}

// Do sends one command and waits for its reply. It must not be interleaved
// with an unflushed or unread pipeline.
func (c *Client) Do(args ...string) (Reply, error) {
	if c.pending != 0 {
		return Reply{}, fmt.Errorf("server: Do with %d pipelined replies outstanding", c.pending)
	}
	if err := c.Send(args...); err != nil {
		return Reply{}, err
	}
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	return c.Recv()
}

// okReply runs one command expecting a +OK reply.
func (c *Client) okReply(args ...string) error {
	rp, err := c.Do(args...)
	if err != nil {
		return err
	}
	if err := rp.Err(); err != nil {
		return err
	}
	if rp.Kind != '+' || rp.Str != "OK" {
		return fmt.Errorf("server: unexpected %s reply %q", args[0], rp.Text())
	}
	return nil
}

// Set stores key=value, failing on any non-OK reply.
func (c *Client) Set(key, value string) error {
	return c.okReply("SET", key, value)
}

// Get fetches key; ok=false reports a missing key.
func (c *Client) Get(key string) (value string, ok bool, err error) {
	rp, err := c.Do("GET", key)
	if err != nil {
		return "", false, err
	}
	if err := rp.Err(); err != nil {
		return "", false, err
	}
	if rp.Nil {
		return "", false, nil
	}
	return string(rp.Bulk), true, nil
}

// intReply runs one command expecting an integer reply.
func (c *Client) intReply(args ...string) (int64, error) {
	rp, err := c.Do(args...)
	if err != nil {
		return 0, err
	}
	if err := rp.Err(); err != nil {
		return 0, err
	}
	if rp.Kind != ':' {
		return 0, fmt.Errorf("server: unexpected %s reply %q", args[0], rp.Text())
	}
	return rp.Int, nil
}

// SetEx stores key=value with a time-to-live in whole seconds (SETEX).
func (c *Client) SetEx(key string, seconds int64, value string) error {
	return c.okReply("SETEX", key, strconv.FormatInt(seconds, 10), value)
}

// PSetEx is SetEx with millisecond resolution (PSETEX).
func (c *Client) PSetEx(key string, ms int64, value string) error {
	return c.okReply("PSETEX", key, strconv.FormatInt(ms, 10), value)
}

// Expire sets key's time-to-live in seconds; ok=false reports a missing key.
func (c *Client) Expire(key string, seconds int64) (bool, error) {
	n, err := c.intReply("EXPIRE", key, strconv.FormatInt(seconds, 10))
	return n == 1, err
}

// PExpire is Expire with millisecond resolution.
func (c *Client) PExpire(key string, ms int64) (bool, error) {
	n, err := c.intReply("PEXPIRE", key, strconv.FormatInt(ms, 10))
	return n == 1, err
}

// TTL returns key's remaining lifetime in seconds, -1 for no expiry, -2 for
// a missing (or expired) key.
func (c *Client) TTL(key string) (int64, error) { return c.intReply("TTL", key) }

// PTTL is TTL in milliseconds.
func (c *Client) PTTL(key string) (int64, error) { return c.intReply("PTTL", key) }

// Persist removes key's expiry; ok=false when the key is missing or had
// none.
func (c *Client) Persist(key string) (bool, error) {
	n, err := c.intReply("PERSIST", key)
	return n == 1, err
}

// SetNX stores key=value only if key does not exist; ok reports whether the
// write happened.
func (c *Client) SetNX(key, value string) (bool, error) {
	n, err := c.intReply("SETNX", key, value)
	return n == 1, err
}

// Append appends value to key (creating it if missing), returning the new
// length.
func (c *Client) Append(key, value string) (int64, error) {
	return c.intReply("APPEND", key, value)
}

// GetSet atomically replaces key's value, returning the previous one
// (ok=false when the key was absent).
func (c *Client) GetSet(key, value string) (string, bool, error) {
	rp, err := c.Do("GETSET", key, value)
	if err != nil {
		return "", false, err
	}
	if err := rp.Err(); err != nil {
		return "", false, err
	}
	if rp.Nil {
		return "", false, nil
	}
	return string(rp.Bulk), true, nil
}

// Echo round-trips a message (ECHO).
func (c *Client) Echo(msg string) (string, error) {
	rp, err := c.Do("ECHO", msg)
	if err != nil {
		return "", err
	}
	if err := rp.Err(); err != nil {
		return "", err
	}
	return string(rp.Bulk), nil
}

// Type reports a key's type: "string" for a live key, "none" for a missing
// (or expired) one.
func (c *Client) Type(key string) (string, error) {
	rp, err := c.Do("TYPE", key)
	if err != nil {
		return "", err
	}
	if err := rp.Err(); err != nil {
		return "", err
	}
	return rp.Str, nil
}

// GetDel fetches and deletes key in one atomic step; ok=false reports a
// missing key.
func (c *Client) GetDel(key string) (value string, ok bool, err error) {
	rp, err := c.Do("GETDEL", key)
	if err != nil {
		return "", false, err
	}
	if err := rp.Err(); err != nil {
		return "", false, err
	}
	if rp.Nil {
		return "", false, nil
	}
	return string(rp.Bulk), true, nil
}

// HSet stores field/value pairs in the hash at key, returning how many
// fields were newly created (HSET).
func (c *Client) HSet(key string, fieldvals ...string) (int64, error) {
	return c.intReply(append([]string{"HSET", key}, fieldvals...)...)
}

// HGet fetches one field of the hash at key; ok=false reports a missing key
// or field.
func (c *Client) HGet(key, field string) (value string, ok bool, err error) {
	rp, err := c.Do("HGET", key, field)
	if err != nil {
		return "", false, err
	}
	if err := rp.Err(); err != nil {
		return "", false, err
	}
	if rp.Nil {
		return "", false, nil
	}
	return string(rp.Bulk), true, nil
}

// HDel removes fields from the hash at key, returning how many existed.
func (c *Client) HDel(key string, fields ...string) (int64, error) {
	return c.intReply(append([]string{"HDEL", key}, fields...)...)
}

// HExists reports whether the hash at key has the field.
func (c *Client) HExists(key, field string) (bool, error) {
	n, err := c.intReply("HEXISTS", key, field)
	return n == 1, err
}

// HLen returns the number of fields in the hash at key.
func (c *Client) HLen(key string) (int64, error) { return c.intReply("HLEN", key) }

// HGetAll returns the hash at key as a map (empty for a missing key).
func (c *Client) HGetAll(key string) (map[string]string, error) {
	rp, err := c.Do("HGETALL", key)
	if err != nil {
		return nil, err
	}
	if err := rp.Err(); err != nil {
		return nil, err
	}
	if rp.Kind != '*' || len(rp.Elems)%2 != 0 {
		return nil, fmt.Errorf("server: unexpected HGETALL reply %q", rp.Text())
	}
	m := make(map[string]string, len(rp.Elems)/2)
	for i := 0; i+1 < len(rp.Elems); i += 2 {
		m[string(rp.Elems[i].Bulk)] = string(rp.Elems[i+1].Bulk)
	}
	return m, nil
}

// LPush prepends values to the list at key, returning the new length.
func (c *Client) LPush(key string, values ...string) (int64, error) {
	return c.intReply(append([]string{"LPUSH", key}, values...)...)
}

// RPush appends values to the list at key, returning the new length.
func (c *Client) RPush(key string, values ...string) (int64, error) {
	return c.intReply(append([]string{"RPUSH", key}, values...)...)
}

// popReply decodes an LPOP/RPOP bulk-or-nil reply.
func (c *Client) popReply(cmd, key string) (value string, ok bool, err error) {
	rp, err := c.Do(cmd, key)
	if err != nil {
		return "", false, err
	}
	if err := rp.Err(); err != nil {
		return "", false, err
	}
	if rp.Nil {
		return "", false, nil
	}
	return string(rp.Bulk), true, nil
}

// LPop removes and returns the head of the list at key; ok=false reports a
// missing key.
func (c *Client) LPop(key string) (string, bool, error) { return c.popReply("LPOP", key) }

// RPop removes and returns the tail of the list at key.
func (c *Client) RPop(key string) (string, bool, error) { return c.popReply("RPOP", key) }

// LLen returns the length of the list at key.
func (c *Client) LLen(key string) (int64, error) { return c.intReply("LLEN", key) }

// LRange returns the elements of the list at key between start and stop
// inclusive (Redis index semantics: negative counts from the tail).
func (c *Client) LRange(key string, start, stop int64) ([]string, error) {
	rp, err := c.Do("LRANGE", key, strconv.FormatInt(start, 10), strconv.FormatInt(stop, 10))
	if err != nil {
		return nil, err
	}
	if err := rp.Err(); err != nil {
		return nil, err
	}
	if rp.Kind != '*' {
		return nil, fmt.Errorf("server: unexpected LRANGE reply %q", rp.Text())
	}
	out := make([]string, len(rp.Elems))
	for i, e := range rp.Elems {
		out[i] = string(e.Bulk)
	}
	return out, nil
}

// CommandCount reports how many commands the server's registry serves
// (COMMAND COUNT).
func (c *Client) CommandCount() (int64, error) {
	return c.intReply("COMMAND", "COUNT")
}

// Multi opens a transaction: subsequent commands are queued server-side
// (each replying +QUEUED) until Exec or Discard.
func (c *Client) Multi() error { return c.okReply("MULTI") }

// Discard abandons the open transaction.
func (c *Client) Discard() error { return c.okReply("DISCARD") }

// Exec runs the queued transaction, returning the individual replies in
// queue order. A queue-time validation failure surfaces as the EXECABORT
// error.
func (c *Client) Exec() ([]Reply, error) {
	rp, err := c.Do("EXEC")
	if err != nil {
		return nil, err
	}
	if err := rp.Err(); err != nil {
		return nil, err
	}
	if rp.Kind != '*' {
		return nil, fmt.Errorf("server: unexpected EXEC reply %q", rp.Text())
	}
	return rp.Elems, nil
}

// Txn pipelines MULTI, the given commands, and EXEC in one round trip and
// returns the EXEC replies. Any queue-time rejection (unknown command, bad
// arity, denied command) aborts the transaction and is returned as an error.
func (c *Client) Txn(cmds ...[]string) ([]Reply, error) {
	if c.pending != 0 {
		return nil, fmt.Errorf("server: Txn with %d pipelined replies outstanding", c.pending)
	}
	if err := c.Send("MULTI"); err != nil {
		return nil, err
	}
	for _, cmd := range cmds {
		if err := c.Send(cmd...); err != nil {
			return nil, err
		}
	}
	if err := c.Send("EXEC"); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	var queueErr error
	for i := 0; i < len(cmds)+1; i++ { // +OK, then one +QUEUED (or error) each
		rp, err := c.Recv()
		if err != nil {
			return nil, err
		}
		if err := rp.Err(); err != nil && queueErr == nil {
			queueErr = err
		}
	}
	rp, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if err := rp.Err(); err != nil {
		if queueErr != nil {
			return nil, fmt.Errorf("%v (queue error: %v)", err, queueErr)
		}
		return nil, err
	}
	if queueErr != nil {
		return nil, queueErr
	}
	if rp.Kind != '*' {
		return nil, fmt.Errorf("server: unexpected EXEC reply %q", rp.Text())
	}
	return rp.Elems, nil
}

// DBSize returns the record count.
func (c *Client) DBSize() (int64, error) { return c.intReply("DBSIZE") }

// PExpireAt sets key's deadline as an absolute unix-millisecond timestamp
// (PEXPIREAT); ok=false reports a missing key.
func (c *Client) PExpireAt(key string, unixMs int64) (bool, error) {
	n, err := c.intReply("PEXPIREAT", key, strconv.FormatInt(unixMs, 10))
	return n == 1, err
}

// PSetExAt stores key=value with an absolute unix-millisecond deadline
// (PSETEXAT).
func (c *Client) PSetExAt(key string, unixMs int64, value string) error {
	return c.okReply("PSETEXAT", key, strconv.FormatInt(unixMs, 10), value)
}

// Wait blocks until numReplicas connected replicas have acknowledged every
// write this server had executed when WAIT began, or the timeout passes
// (0 waits indefinitely). It returns how many replicas acknowledged.
func (c *Client) Wait(numReplicas int, timeout time.Duration) (int64, error) {
	return c.intReply("WAIT", strconv.Itoa(numReplicas), strconv.FormatInt(timeout.Milliseconds(), 10))
}

// Promote turns a replica into a writable primary (REPLICAOF NO ONE).
func (c *Client) Promote() error { return c.okReply("REPLICAOF", "NO", "ONE") }
