package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"time"
)

// Client is a minimal RESP2 client with explicit pipelining: Send queues
// commands into the write buffer, Flush pushes them to the server, Recv
// reads one reply. Do is the one-shot convenience. Not safe for concurrent
// use; give each goroutine its own Client.
type Client struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	pending int
}

// Dial connects to a server ("tcp", "host:port" or "unix", "/path.sock").
func Dial(network, addr string) (*Client, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(network, addr string, d time.Duration) (*Client, error) {
	c, err := net.DialTimeout(network, addr, d)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{
		c:  c,
		br: bufio.NewReaderSize(c, 16<<10),
		bw: bufio.NewWriterSize(c, 16<<10),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// Send queues one command (as a RESP array of bulk strings) in the write
// buffer without transmitting it.
func (c *Client) Send(args ...string) error {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return c.SendBytes(bs...)
}

// SendBytes is Send for preformatted byte arguments.
func (c *Client) SendBytes(args ...[]byte) error {
	c.bw.WriteByte('*')
	c.bw.WriteString(strconv.Itoa(len(args)))
	c.bw.WriteString("\r\n")
	for _, a := range args {
		c.bw.WriteByte('$')
		c.bw.WriteString(strconv.Itoa(len(a)))
		c.bw.WriteString("\r\n")
		c.bw.Write(a)
		if _, err := c.bw.WriteString("\r\n"); err != nil {
			return err
		}
	}
	c.pending++
	return nil
}

// Flush transmits all queued commands.
func (c *Client) Flush() error { return c.bw.Flush() }

// Pending reports how many replies have not been received yet.
func (c *Client) Pending() int { return c.pending }

// Recv reads the next reply. The caller is responsible for matching Recv
// calls one-to-one (in order) with sent commands.
func (c *Client) Recv() (Reply, error) {
	rp, err := readReply(c.br)
	if err != nil {
		return rp, err
	}
	c.pending--
	return rp, nil
}

// Do sends one command and waits for its reply. It must not be interleaved
// with an unflushed or unread pipeline.
func (c *Client) Do(args ...string) (Reply, error) {
	if c.pending != 0 {
		return Reply{}, fmt.Errorf("server: Do with %d pipelined replies outstanding", c.pending)
	}
	if err := c.Send(args...); err != nil {
		return Reply{}, err
	}
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	return c.Recv()
}

// Set stores key=value, failing on any non-OK reply.
func (c *Client) Set(key, value string) error {
	rp, err := c.Do("SET", key, value)
	if err != nil {
		return err
	}
	if err := rp.Err(); err != nil {
		return err
	}
	if rp.Kind != '+' || rp.Str != "OK" {
		return fmt.Errorf("server: unexpected SET reply %q", rp.Text())
	}
	return nil
}

// Get fetches key; ok=false reports a missing key.
func (c *Client) Get(key string) (value string, ok bool, err error) {
	rp, err := c.Do("GET", key)
	if err != nil {
		return "", false, err
	}
	if err := rp.Err(); err != nil {
		return "", false, err
	}
	if rp.Nil {
		return "", false, nil
	}
	return string(rp.Bulk), true, nil
}

// DBSize returns the record count.
func (c *Client) DBSize() (int64, error) {
	rp, err := c.Do("DBSIZE")
	if err != nil {
		return 0, err
	}
	if err := rp.Err(); err != nil {
		return 0, err
	}
	return rp.Int, nil
}
