package server

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestWrongTypeFidelityRegistryDriven is generated from the registry: every
// command declaring a NeedsType is applied to keys of each *other* type and
// must reply Redis's exact WRONGTYPE error — wording included — because
// real clients switch on that first word.
func TestWrongTypeFidelityRegistryDriven(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)
	if err := c.Set("str-key", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.HSet("hash-key", "f", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RPush("list-key", "e"); err != nil {
		t.Fatal(err)
	}
	keyOf := map[byte]string{'s': "str-key", 'h': "hash-key", 'l': "list-key"}
	const want = "WRONGTYPE Operation against a key holding the wrong kind of value"

	probed := 0
	for _, cmd := range Commands() {
		if cmd.NeedsType == 0 {
			continue
		}
		for typ, key := range keyOf {
			if typ == cmd.NeedsType {
				continue
			}
			nargs := cmd.Arity
			if nargs < 0 {
				nargs = -nargs
			}
			args := make([]string, nargs)
			args[0] = strings.ToLower(cmd.Name)
			args[1] = key
			for i := 2; i < nargs; i++ {
				args[i] = "0"
			}
			rp, err := c.Do(args...)
			if err != nil {
				t.Fatalf("%s vs %s key: %v", cmd.Name, keyOf[typ], err)
			}
			if rp.Kind != '-' || rp.Str != want {
				t.Fatalf("%s against %s replied %q, want %q", cmd.Name, key, rp.Str, want)
			}
			probed++
		}
	}
	// 5 string commands × 2 wrong types + 12 object commands × 2.
	if probed < 34 {
		t.Fatalf("only %d WRONGTYPE probes generated from the registry — NeedsType declarations shrank?", probed)
	}

	// The probes left every key intact.
	for typ, key := range keyOf {
		wantType := map[byte]string{'s': "string", 'h': "hash", 'l': "list"}[typ]
		if got, err := c.Type(key); err != nil || got != wantType {
			t.Fatalf("TYPE %s = (%q,%v) after probes", key, got, err)
		}
	}
}

func TestHashCommands(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	if n, err := c.HSet("h", "f1", "v1", "f2", "v2"); err != nil || n != 2 {
		t.Fatalf("HSET = (%d,%v)", n, err)
	}
	if n, err := c.HSet("h", "f1", "v1b", "f3", "v3"); err != nil || n != 1 {
		t.Fatalf("HSET mixed = (%d,%v)", n, err)
	}
	if v, ok, err := c.HGet("h", "f1"); err != nil || !ok || v != "v1b" {
		t.Fatalf("HGET = (%q,%v,%v)", v, ok, err)
	}
	if _, ok, _ := c.HGet("h", "nope"); ok {
		t.Fatal("missing field found")
	}
	if _, ok, _ := c.HGet("missing", "f"); ok {
		t.Fatal("missing key found")
	}
	if ok, _ := c.HExists("h", "f2"); !ok {
		t.Fatal("HEXISTS f2 = 0")
	}
	if ok, _ := c.HExists("h", "f9"); ok {
		t.Fatal("HEXISTS f9 = 1")
	}
	if n, _ := c.HLen("h"); n != 3 {
		t.Fatalf("HLEN = %d", n)
	}
	m, err := c.HGetAll("h")
	if err != nil || len(m) != 3 || m["f1"] != "v1b" || m["f2"] != "v2" || m["f3"] != "v3" {
		t.Fatalf("HGETALL = %v, %v", m, err)
	}
	if m, err := c.HGetAll("missing"); err != nil || len(m) != 0 {
		t.Fatalf("HGETALL missing = %v, %v", m, err)
	}
	if typ, _ := c.Type("h"); typ != "hash" {
		t.Fatalf("TYPE = %q", typ)
	}
	// Odd HSET tail is an arity error at the handler level.
	if rp, _ := c.Do("HSET", "h", "f1", "v1", "dangling"); rp.Kind != '-' ||
		rp.Str != "ERR wrong number of arguments for 'hset' command" {
		t.Fatalf("odd HSET = %+v", rp)
	}

	if n, _ := c.HDel("h", "f1", "f9"); n != 1 {
		t.Fatalf("HDEL = %d", n)
	}
	// Deleting the last fields removes the key entirely.
	if n, _ := c.HDel("h", "f2", "f3"); n != 2 {
		t.Fatal("HDEL rest failed")
	}
	if typ, _ := c.Type("h"); typ != "none" {
		t.Fatalf("TYPE after emptying = %q", typ)
	}
	if n, _ := c.DBSize(); n != 0 {
		t.Fatalf("DBSIZE = %d", n)
	}
}

func TestListCommands(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	if n, err := c.RPush("l", "b", "c"); err != nil || n != 2 {
		t.Fatalf("RPUSH = (%d,%v)", n, err)
	}
	if n, err := c.LPush("l", "a"); err != nil || n != 3 {
		t.Fatalf("LPUSH = (%d,%v)", n, err)
	}
	if n, _ := c.LLen("l"); n != 3 {
		t.Fatalf("LLEN = %d", n)
	}
	if vals, err := c.LRange("l", 0, -1); err != nil || strings.Join(vals, ",") != "a,b,c" {
		t.Fatalf("LRANGE = %v, %v", vals, err)
	}
	if vals, _ := c.LRange("l", -2, -1); strings.Join(vals, ",") != "b,c" {
		t.Fatalf("negative LRANGE = %v", vals)
	}
	if vals, _ := c.LRange("missing", 0, -1); len(vals) != 0 {
		t.Fatalf("LRANGE missing = %v", vals)
	}
	if rp, _ := c.Do("LRANGE", "l", "zero", "-1"); rp.Kind != '-' ||
		rp.Str != "ERR value is not an integer or out of range" {
		t.Fatalf("bad LRANGE index = %+v", rp)
	}
	if typ, _ := c.Type("l"); typ != "list" {
		t.Fatalf("TYPE = %q", typ)
	}

	if v, ok, _ := c.LPop("l"); !ok || v != "a" {
		t.Fatalf("LPOP = (%q,%v)", v, ok)
	}
	if v, ok, _ := c.RPop("l"); !ok || v != "c" {
		t.Fatalf("RPOP = (%q,%v)", v, ok)
	}
	if v, ok, _ := c.LPop("l"); !ok || v != "b" {
		t.Fatalf("last LPOP = (%q,%v)", v, ok)
	}
	if typ, _ := c.Type("l"); typ != "none" {
		t.Fatalf("TYPE after draining = %q", typ)
	}
	if _, ok, _ := c.LPop("l"); ok {
		t.Fatal("LPOP on missing key returned a value")
	}
}

func TestObjectKeyspaceInterplay(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)
	c.HSet("h", "f", "v")
	c.RPush("l", "e")
	c.Set("s", "v")

	// MGET replies nil for object keys instead of erroring (Redis's one
	// WRONGTYPE exception).
	rp, err := c.Do("MGET", "s", "h", "l", "missing")
	if err != nil || rp.Kind != '*' || len(rp.Elems) != 4 {
		t.Fatalf("MGET = %+v, %v", rp, err)
	}
	if string(rp.Elems[0].Bulk) != "v" || !rp.Elems[1].Nil || !rp.Elems[2].Nil || !rp.Elems[3].Nil {
		t.Fatalf("MGET elems = %+v", rp.Elems)
	}

	// SETNX declines on any existing type without erroring.
	if ok, err := c.SetNX("h", "x"); err != nil || ok {
		t.Fatalf("SETNX on hash = (%v,%v)", ok, err)
	}
	// EXISTS and DEL are type-agnostic.
	if rp, _ := c.Do("EXISTS", "s", "h", "l"); rp.Int != 3 {
		t.Fatalf("EXISTS = %d", rp.Int)
	}
	if rp, _ := c.Do("DEL", "h", "l"); rp.Int != 2 {
		t.Fatalf("DEL = %d", rp.Int)
	}
	// SET overwrites an object wholesale.
	c.HSet("h2", "f", "v")
	if err := c.Set("h2", "plain"); err != nil {
		t.Fatal(err)
	}
	if typ, _ := c.Type("h2"); typ != "string" {
		t.Fatalf("TYPE after SET-over-hash = %q", typ)
	}

	// EXPIRE applies to objects; an expired object reads as gone.
	c.RPush("tl", "x")
	if ok, _ := c.PExpire("tl", 30); !ok {
		t.Fatal("PEXPIRE on list failed")
	}
	if ttl, _ := c.PTTL("tl"); ttl <= 0 {
		t.Fatalf("PTTL = %d", ttl)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		typ, _ := c.Type("tl")
		if typ == "none" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("list never expired (TYPE = %q)", typ)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n, _ := c.LLen("tl"); n != 0 {
		t.Fatalf("expired LLEN = %d", n)
	}

	// INFO reports the per-type census.
	rp, _ = c.Do("INFO", "keyspace")
	info := string(rp.Bulk)
	if !strings.Contains(info, "keys_string:") || !strings.Contains(info, "keys_hash:") || !strings.Contains(info, "keys_list:") {
		t.Fatalf("INFO keyspace lacks type census:\n%s", info)
	}
}

// TestObjectTxn: object commands queue, validate, and execute inside
// MULTI/EXEC like every registry command — including a WRONGTYPE failure
// mid-transaction that (per Redis) does not abort the rest.
func TestObjectTxn(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	replies, err := c.Txn(
		[]string{"HSET", "th", "f1", "v1", "f2", "v2"},
		[]string{"LPUSH", "tl", "b"},
		[]string{"LPUSH", "tl", "a"},
		[]string{"RPUSH", "tl", "c"},
		[]string{"HDEL", "th", "f2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 5 || replies[0].Int != 2 || replies[3].Int != 3 || replies[4].Int != 1 {
		t.Fatalf("txn replies = %+v", replies)
	}
	if vals, _ := c.LRange("tl", 0, -1); strings.Join(vals, ",") != "a,b,c" {
		t.Fatalf("post-txn list = %v", vals)
	}
	if n, _ := c.HLen("th"); n != 1 {
		t.Fatalf("post-txn HLEN = %d", n)
	}

	// A runtime WRONGTYPE inside EXEC fails that element only.
	replies, err = c.Txn(
		[]string{"HSET", "tl", "f", "v"}, // tl is a list: WRONGTYPE at run time
		[]string{"SET", "tk", "v"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Fatalf("txn replies = %+v", replies)
	}
	if replies[0].Kind != '-' || !strings.HasPrefix(replies[0].Str, "WRONGTYPE ") {
		t.Fatalf("in-txn WRONGTYPE = %+v", replies[0])
	}
	if v, ok, _ := c.Get("tk"); !ok || v != "v" {
		t.Fatalf("command after in-txn error = (%q,%v)", v, ok)
	}

	// Arity failures on object commands poison the queue (EXECABORT).
	if _, err := c.Txn([]string{"HSET", "only-key"}, []string{"SET", "nope", "v"}); err == nil ||
		!strings.Contains(err.Error(), "wrong number of arguments") {
		t.Fatalf("bad-arity txn error = %v", err)
	}
	if _, ok, _ := c.Get("nope"); ok {
		t.Fatal("aborted transaction executed")
	}
}

// TestObjectCommandStats: the stats middleware attributes object-command
// calls and their WRONGTYPE errors like any registry command.
func TestObjectCommandStats(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)
	for i := 0; i < 4; i++ {
		if _, err := c.HSet("sh", fmt.Sprintf("f%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	c.Do("LPUSH", "sh", "boom") // WRONGTYPE, attributed to LPUSH
	rp, err := c.Do("INFO", "commandstats")
	if err != nil {
		t.Fatal(err)
	}
	stats := string(rp.Bulk)
	if !strings.Contains(stats, "cmdstat_hset:calls=4,") {
		t.Fatalf("missing hset stats:\n%s", stats)
	}
	for _, line := range strings.Split(stats, "\r\n") {
		if strings.HasPrefix(line, "cmdstat_lpush:") && !strings.HasSuffix(line, "errors=1") {
			t.Fatalf("lpush line = %q, want errors=1", line)
		}
	}
}
