package server

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestE2ETxnSIGKILLMidExec is the crash-consistency acceptance test for
// MULTI/EXEC, across a real process kill: build cmd/ralloc-serve, run
// concurrent writers that each apply 8-key transactions while a checkpointer
// SAVEs every ~150ms, SIGKILL the process mid-traffic (almost certainly
// mid-EXEC for several writers), restart, and assert the transactional
// invariant the dispatch design promises:
//
//  1. ALL-OR-NOTHING: for every transaction any writer ever attempted, its 8
//     keys are either all present with the transaction's value or all
//     absent. EXEC runs under one execMu read-side hold, so the quiesced
//     SAVE image — the state a SIGKILL restarts from — can never contain a
//     torn transaction.
//  2. DURABILITY FLOOR: every transaction acknowledged before an
//     acknowledged SAVE is fully present after recovery.
func TestE2ETxnSIGKILLMidExec(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping subprocess e2e in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ralloc-serve")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/ralloc-serve")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ralloc-serve: %v\n%s", err, out)
	}

	heapPath := filepath.Join(dir, "kv.heap")
	sock := filepath.Join(dir, "kv.sock")
	args := []string{"-heap", heapPath, "-unix", sock, "-heapmb", "48", "-buckets", "8192"}

	serve := func() *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting ralloc-serve: %v", err)
		}
		return cmd
	}
	dialRetry := func() *Client {
		deadline := time.Now().Add(10 * time.Second)
		for {
			c, err := DialTimeout("unix", sock, time.Second)
			if err == nil {
				return c
			}
			if time.Now().After(deadline) {
				t.Fatalf("server did not come up: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	cmd := serve()
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}()
	dialRetry().Close() // wait for the server before starting writers

	const writers, txnKeys = 4, 8
	txnKey := func(g int, i int64, j int) string { return fmt.Sprintf("t%d-%06d-%d", g, i, j) }
	txnVal := func(g int, i int64) string { return fmt.Sprintf("w%d-t%06d", g, i) }

	// Writers loop transactions until the kill tears their connection down.
	// attempts[g] counts transactions ever sent; acked[g] is the highest
	// index whose EXEC reply arrived intact.
	var attempts, acked [writers]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		acked[g].Store(-1)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial("unix", sock)
			if err != nil {
				t.Errorf("writer %d: %v", g, err)
				return
			}
			defer c.Close()
			for i := int64(0); ; i++ {
				cmds := make([][]string, txnKeys)
				for j := 0; j < txnKeys; j++ {
					cmds[j] = []string{"SET", txnKey(g, i, j), txnVal(g, i)}
				}
				attempts[g].Store(i + 1)
				if _, err := c.Txn(cmds...); err != nil {
					return // connection torn down by the kill
				}
				acked[g].Store(i)
			}
		}(g)
	}

	// Checkpointer: snapshot every writer's acked index, SAVE, and (if the
	// SAVE was acknowledged) raise the durability floor to the snapshot —
	// those transactions were acked before the checkpoint began, so the
	// image must contain them wholly.
	var floor [writers]int64
	for g := range floor {
		floor[g] = -1
	}
	saver := dialRetry()
	saves := 0
	for start := time.Now(); time.Since(start) < 700*time.Millisecond; {
		time.Sleep(150 * time.Millisecond)
		var pre [writers]int64
		for g := range pre {
			pre[g] = acked[g].Load()
		}
		if rp, err := saver.Do("SAVE"); err == nil && rp.Str == "OK" {
			floor = pre
			saves++
		}
	}
	if saves == 0 {
		t.Fatal("no SAVE completed before the kill; durability floor untestable")
	}

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	wg.Wait()
	saver.Close()
	for g := 0; g < writers; g++ {
		if acked[g].Load() < 20 {
			t.Fatalf("writer %d acked only %d transactions; traffic too thin to mean anything", g, acked[g].Load())
		}
	}

	// Restart: recover from the last checkpoint and verify the invariants.
	cmd2 := serve()
	defer func() { cmd2.Process.Kill() }()
	c := dialRetry()
	defer c.Close()

	checked, applied := 0, 0
	for g := 0; g < writers; g++ {
		total := attempts[g].Load()
		for base := int64(0); base < total; base += 100 {
			end := base + 100
			if end > total {
				end = total
			}
			for i := base; i < end; i++ {
				keys := make([]string, txnKeys+1)
				keys[0] = "MGET"
				for j := 0; j < txnKeys; j++ {
					keys[j+1] = txnKey(g, i, j)
				}
				if err := c.Send(keys...); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			for i := base; i < end; i++ {
				rp, err := c.Recv()
				if err != nil || len(rp.Elems) != txnKeys {
					t.Fatalf("MGET txn %d/%d = %+v, %v", g, i, rp, err)
				}
				present := 0
				for j, e := range rp.Elems {
					if e.Nil {
						continue
					}
					present++
					if got := string(e.Bulk); got != txnVal(g, i) {
						t.Fatalf("txn %d/%d key %d = %q, want %q", g, i, j, got, txnVal(g, i))
					}
				}
				switch present {
				case 0:
					if i <= floor[g] {
						t.Fatalf("txn %d/%d acked before an acknowledged SAVE but absent after recovery", g, i)
					}
				case txnKeys:
					applied++
				default:
					t.Fatalf("TORN TRANSACTION after SIGKILL recovery: txn %d/%d has %d/%d keys", g, i, present, txnKeys)
				}
				checked++
			}
		}
	}
	t.Logf("checked %d transactions (%d applied, %d saves) across the SIGKILL: none torn", checked, applied, saves)

	// The restarted server still serves transactions.
	rps, err := c.Txn([]string{"SET", "post-kill", "alive"}, []string{"INCR", "post-ctr"})
	if err != nil || len(rps) != 2 || rps[0].Str != "OK" || rps[1].Int != 1 {
		t.Fatalf("post-restart Txn = %+v, %v", rps, err)
	}
	cmd2.Process.Signal(syscall.SIGTERM)
	waitExit(t, cmd2, 15*time.Second)
}
