package server

import (
	"strconv"
	"strings"

	"repro/internal/cluster/slot"
	"repro/internal/kvstore"
)

// commandDefs declares every command the server speaks — the whole protocol
// surface is this one table. Adding a command is adding an entry: dispatch
// supplies arity validation, key extraction, striped locking, and stats; the
// handler only does the command's own work. COMMAND, the README reference
// table, and the generated arity-error tests all derive from these entries.
func commandDefs() []*Command {
	defs := []*Command{
		// Connection / trivial.
		{Name: "PING", Arity: -1, Flags: FlagFast, Handler: cmdPing},
		{Name: "ECHO", Arity: 2, Flags: FlagFast, Handler: cmdEcho},

		// Strings. NeedsType 's' marks the commands that read or rewrite a
		// key's string value in place; SET-family commands overwrite any
		// type (Redis semantics) and stay type-agnostic.
		{Name: "GET", Arity: 2, Flags: FlagReadonly | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 's', Handler: cmdGet},
		{Name: "SET", Arity: 3, Flags: FlagWrite, Keys: KeySpec{1, 1, 1}, Handler: cmdSet},
		{Name: "SETNX", Arity: 3, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, Handler: cmdSetNX},
		{Name: "SETEX", Arity: 4, Flags: FlagWrite, Keys: KeySpec{1, 1, 1}, Handler: cmdSetEx},
		{Name: "PSETEX", Arity: 4, Flags: FlagWrite, Keys: KeySpec{1, 1, 1}, Handler: cmdSetEx},
		{Name: "APPEND", Arity: 3, Flags: FlagWrite, Keys: KeySpec{1, 1, 1}, NeedsType: 's', Handler: cmdAppend},
		{Name: "GETSET", Arity: 3, Flags: FlagWrite, Keys: KeySpec{1, 1, 1}, NeedsType: 's', Handler: cmdGetSet},
		{Name: "GETDEL", Arity: 2, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 's', Handler: cmdGetDel},
		{Name: "INCR", Arity: 2, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 's', Handler: cmdIncr},
		{Name: "MGET", Arity: -2, Flags: FlagReadonly | FlagFast, Keys: KeySpec{1, -1, 1}, Handler: cmdMGet},
		{Name: "MSET", Arity: -3, Flags: FlagWrite, Keys: KeySpec{1, -1, 2}, Handler: cmdMSet},

		// Keyspace.
		{Name: "DEL", Arity: -2, Flags: FlagWrite, Keys: KeySpec{1, -1, 1}, Handler: cmdDel},
		{Name: "EXISTS", Arity: -2, Flags: FlagReadonly | FlagFast, Keys: KeySpec{1, -1, 1}, Handler: cmdExists},
		{Name: "TYPE", Arity: 2, Flags: FlagReadonly | FlagFast, Keys: KeySpec{1, 1, 1}, Handler: cmdType},
		{Name: "DBSIZE", Arity: 1, Flags: FlagReadonly | FlagFast, Handler: cmdDBSize},
		{Name: "SCAN", Arity: -2, Flags: FlagReadonly, Handler: cmdScan},
		{Name: "FLUSHALL", Arity: 1, Flags: FlagWrite | FlagLockAll, Handler: cmdFlushAll},

		// Expiration. PEXPIREAT/PSETEXAT are the absolute-deadline forms
		// EXPIRE/SETEX rewrite to for replication (repl.go) — clock-free, so
		// replicas never resolve a relative duration themselves.
		{Name: "EXPIRE", Arity: 3, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, Handler: cmdExpire},
		{Name: "PEXPIRE", Arity: 3, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, Handler: cmdExpire},
		{Name: "PEXPIREAT", Arity: 3, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, Handler: cmdPExpireAt},
		{Name: "PSETEXAT", Arity: 4, Flags: FlagWrite, Keys: KeySpec{1, 1, 1}, Handler: cmdPSetExAt},
		{Name: "TTL", Arity: 2, Flags: FlagReadonly | FlagFast, Keys: KeySpec{1, 1, 1}, Handler: cmdTTL},
		{Name: "PTTL", Arity: 2, Flags: FlagReadonly | FlagFast, Keys: KeySpec{1, 1, 1}, Handler: cmdTTL},
		{Name: "PERSIST", Arity: 2, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, Handler: cmdPersist},

		// Transactions (txn.go).
		{Name: "MULTI", Arity: 1, Flags: FlagFast | FlagTxnControl | FlagDenyTxn, Handler: cmdMulti},
		{Name: "EXEC", Arity: 1, Flags: FlagTxnControl | FlagDenyTxn, Handler: cmdExec},
		{Name: "DISCARD", Arity: 1, Flags: FlagFast | FlagTxnControl | FlagDenyTxn, Handler: cmdDiscard},

		// Introspection / administration.
		{Name: "COMMAND", Arity: -1, Flags: FlagReadonly, Handler: cmdCommand},
		{Name: "INFO", Arity: -1, Flags: FlagReadonly, Handler: cmdInfo},
		{Name: "SAVE", Arity: 1, Flags: FlagAdmin | FlagDenyTxn, Handler: cmdSave},
		{Name: "SHUTDOWN", Arity: 1, Flags: FlagAdmin | FlagDenyTxn, Handler: cmdShutdown},

		// Replication (repl.go): the PSYNC handshake, replica promotion,
		// replica acknowledgments, and write-acknowledgment waits.
		{Name: "REPLICAOF", Arity: 3, Flags: FlagAdmin | FlagDenyTxn, Handler: cmdReplicaOf},
		{Name: "REPLCONF", Arity: -2, Flags: FlagAdmin | FlagFast, Handler: cmdReplConf},
		{Name: "PSYNC", Arity: 3, Flags: FlagAdmin | FlagDenyTxn, Handler: cmdPSync},
		{Name: "WAIT", Arity: 3, Flags: FlagDenyTxn, Handler: cmdWait},

		// Observability (commands_obs.go): the slow log and the latency
		// event timeline. Readonly — they touch obs state, never the
		// keyspace (ralloc-vet's obspurity analyzer holds obs to that).
		{Name: "SLOWLOG", Arity: -2, Flags: FlagReadonly, Handler: cmdSlowlog},
		{Name: "LATENCY", Arity: -2, Flags: FlagReadonly, Handler: cmdLatency},
	}
	// Typed objects (commands_object.go): the HSET and LPUSH families.
	return append(defs, objectCommandDefs()...)
}

func cmdPing(ctx *Ctx) {
	switch len(ctx.args) {
	case 1:
		ctx.w.simple("PONG")
	case 2:
		ctx.w.bulk(ctx.args[1])
	default:
		ctx.w.errorf("wrong number of arguments for 'ping' command")
	}
}

func cmdEcho(ctx *Ctx) { ctx.w.bulk(ctx.args[1]) }

func cmdGet(ctx *Ctx) {
	v, ok, err := ctx.sh.st.GetBytes(ctx.args[1])
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	if ok {
		ctx.w.bulk(v)
	} else {
		ctx.w.nilBulk()
	}
}

// cmdSet: the +OK acknowledgment is written only after SetBytes returns,
// i.e. after the new record is flushed and linked — an acknowledged SET is
// durable in the crash-simulation sense. Dispatch holds the key's stripe
// lock, so the write cannot interleave inside an RMW command's read→write
// window (a SET landing there would be silently overwritten despite its
// +OK). SET clears any TTL, like Redis.
func cmdSet(ctx *Ctx) {
	if !ctx.sh.st.SetBytes(ctx.hd, ctx.args[1], ctx.args[2]) {
		ctx.w.errorf("out of memory")
		return
	}
	ctx.w.simple("OK")
}

// cmdSetNX declines on an existing key of *any* type (Redis returns 0, not
// WRONGTYPE: the value is never read).
func cmdSetNX(ctx *Ctx) {
	if ctx.sh.st.TypeOf(ctx.args[1]) != kvstore.TypeNone {
		ctx.w.integer(0)
	} else if !ctx.sh.st.SetBytes(ctx.hd, ctx.args[1], ctx.args[2]) {
		ctx.w.errorf("out of memory")
	} else {
		ctx.w.integer(1)
	}
}

// cmdSetEx serves SETEX (seconds) and PSETEX (milliseconds). The relative
// duration is resolved against this server's clock once, here, and the
// command propagates to replicas as the absolute-deadline PSETEXAT — a
// replica applying the relative form later (or with a different clock)
// would compute a divergent deadline.
func cmdSetEx(ctx *Ctx) {
	name := commandName(ctx.args)
	d, err := strconv.ParseInt(string(ctx.args[2]), 10, 64)
	if err != nil {
		ctx.w.errorf("value is not an integer or out of range")
		return
	}
	if d <= 0 {
		ctx.w.errorf("invalid expire time in '%s' command", name)
		return
	}
	at := deadlineFrom(ctx.sh.st.Now(), d, name == "setex")
	ctx.prop = [][]byte{[]byte("PSETEXAT"), ctx.args[1], []byte(strconv.FormatInt(at, 10)), ctx.args[3]}
	if !ctx.sh.st.SetBytesExpire(ctx.hd, ctx.args[1], ctx.args[3], at) {
		ctx.w.errorf("out of memory")
		return
	}
	ctx.w.simple("OK")
}

// cmdAppend preserves the key's TTL (Redis semantics): the rewrite carries
// the old record's deadline into the new allocation.
func cmdAppend(ctx *Ctx) {
	old, deadline, _, err := ctx.sh.st.GetBytesExpire(ctx.args[1])
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	val := make([]byte, 0, len(old)+len(ctx.args[2]))
	val = append(append(val, old...), ctx.args[2]...)
	if !ctx.sh.st.SetBytesExpire(ctx.hd, ctx.args[1], val, deadline) {
		ctx.w.errorf("out of memory")
		return
	}
	ctx.w.integer(int64(len(val)))
}

// cmdGetSet clears any TTL on the key (Redis semantics): SetBytes writes an
// immortal record. Unlike plain SET it *reads* the old value, so a
// non-string key is WRONGTYPE.
func cmdGetSet(ctx *Ctx) {
	old, ok, err := ctx.sh.st.GetBytes(ctx.args[1])
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	if !ctx.sh.st.SetBytes(ctx.hd, ctx.args[1], ctx.args[2]) {
		ctx.w.errorf("out of memory")
	} else if ok {
		ctx.w.bulk(old)
	} else {
		ctx.w.nilBulk()
	}
}

// cmdGetDel returns the value and deletes the key in one locked step.
func cmdGetDel(ctx *Ctx) {
	old, ok, err := ctx.sh.st.GetBytes(ctx.args[1])
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	if !ok {
		ctx.w.nilBulk()
		return
	}
	ctx.sh.st.Delete(ctx.hd, string(ctx.args[1]))
	ctx.w.bulk(old)
}

// cmdIncr preserves the key's TTL, like Redis (and unlike SET): the
// canonical SETEX+INCR rate-limiter pattern depends on the counter still
// expiring. The read-modify-write is atomic under the stripe lock dispatch
// already holds.
func cmdIncr(ctx *Ctx) {
	key := ctx.args[1]
	n := int64(0)
	v, deadline, ok, err := ctx.sh.st.GetBytesExpire(key)
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	if ok {
		parsed, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			ctx.w.errorf("value is not an integer or out of range")
			return
		}
		n = parsed
	}
	n++
	if !ctx.sh.st.SetBytesExpire(ctx.hd, key, []byte(strconv.FormatInt(n, 10)), deadline) {
		ctx.w.errorf("out of memory")
		return
	}
	ctx.w.integer(n)
}

// cmdMGet replies nil for missing keys AND for keys of the wrong type —
// Redis's one deliberate WRONGTYPE exception, so a mixed keyspace can still
// be bulk-read.
func cmdMGet(ctx *Ctx) {
	ctx.w.arrayHeader(len(ctx.args) - 1)
	for _, k := range ctx.args[1:] {
		if v, ok, _ := ctx.sh.st.GetBytes(k); ok {
			ctx.w.bulk(v)
		} else {
			ctx.w.nilBulk()
		}
	}
}

// cmdMSet runs with the union of its keys' stripes locked (dispatch sorts
// and dedups them), so unlike the old per-pair switch case the whole MSET is
// atomic with respect to the RMW commands on any of its keys.
func cmdMSet(ctx *Ctx) {
	if len(ctx.args)%2 != 1 {
		ctx.w.errorf("wrong number of arguments for 'mset' command")
		return
	}
	for i := 1; i < len(ctx.args); i += 2 {
		if !ctx.sh.st.SetBytes(ctx.hd, ctx.args[i], ctx.args[i+1]) {
			ctx.w.errorf("out of memory")
			return
		}
	}
	ctx.w.simple("OK")
}

func cmdDel(ctx *Ctx) {
	n := int64(0)
	for _, k := range ctx.args[1:] {
		if ctx.sh.st.Delete(ctx.hd, string(k)) {
			n++
		}
	}
	ctx.w.integer(n)
}

// cmdExists counts keys of any type (it never reads the value).
func cmdExists(ctx *Ctx) {
	n := int64(0)
	for _, k := range ctx.args[1:] {
		if ctx.sh.st.TypeOf(k) != kvstore.TypeNone {
			n++
		}
	}
	ctx.w.integer(n)
}

// cmdType reports the key's value kind from the persistent type tag —
// string, hash, list, or none — through the same lazy-expiry policy as
// every read, so an expired key reports none.
func cmdType(ctx *Ctx) {
	ctx.w.simple(ctx.sh.st.TypeOf(ctx.args[1]).String())
}

// cmdDBSize sums the live record count over every shard. Reading each
// shard's atomic length without locks is the pre-cluster behavior too — a
// concurrent writer can always race the reply by one key.
func cmdDBSize(ctx *Ctx) { ctx.w.integer(int64(ctx.s.keyspaceLen())) }

// cmdFlushAll runs with every shard's barrier read side and every stripe of
// every shard held (lockAllMode): no concurrent writer can interleave, on
// any shard. It purges through DeleteAll rather than a Range walk, because
// Range now (correctly) hides expired records and object payloads — and
// FLUSHALL must free those corpses and graphs too.
func cmdFlushAll(ctx *Ctx) {
	for i, sh := range ctx.s.shards {
		sh.st.DeleteAll(ctx.handleFor(i))
	}
	ctx.w.simple("OK")
}

// cmdScan serves SCAN cursor [COUNT n]: an incremental, resumable walk of
// the whole keyspace with the standard Redis contract — every key present
// for the walk's entire duration is returned at least once, and a full
// iteration terminates. The cursor encodes (shard, per-shard position): the
// low byte selects the shard, the rest is that shard's bucket cursor, so a
// resumed walk continues exactly where it stopped and never revisits a
// finished shard. Within a shard the position is a hash-bucket index and a
// reply always ends at a bucket boundary (kvstore.ScanCursor), which is what
// makes the cursor stable across calls without per-connection state.
func cmdScan(ctx *Ctx) {
	cur, err := strconv.ParseUint(string(ctx.args[1]), 10, 64)
	if err != nil {
		ctx.w.errorf("invalid cursor")
		return
	}
	count := 10
	if len(ctx.args) > 2 {
		if len(ctx.args) != 4 || !strings.EqualFold(string(ctx.args[2]), "COUNT") {
			ctx.w.errorf("syntax error")
			return
		}
		n, err := strconv.Atoi(string(ctx.args[3]))
		if err != nil || n < 1 {
			ctx.w.errorf("value is not an integer or out of range")
			return
		}
		count = n
	}
	shardIdx, inner, ok := slot.DecodeCursor(cur, len(ctx.s.shards))
	if !ok {
		ctx.w.errorf("invalid cursor")
		return
	}
	keys := make([][]byte, 0, count)
	next := uint64(0)
	for shardIdx < len(ctx.s.shards) {
		if len(keys) >= count {
			next = slot.EncodeCursor(shardIdx, inner)
			break
		}
		sh := ctx.s.shards[shardIdx]
		nin, done := sh.st.ScanCursor(inner, count-len(keys), func(key []byte, _ kvstore.Type) {
			// The callback runs under the bucket's stripe lock and key
			// aliases region memory that a concurrent DEL could recycle
			// after the lock drops, so the reply needs its own copy.
			keys = append(keys, append([]byte(nil), key...))
		})
		if !done {
			next = slot.EncodeCursor(shardIdx, nin)
			break
		}
		shardIdx++
		inner = 0
	}
	ctx.w.arrayHeader(2)
	ctx.w.bulk([]byte(strconv.FormatUint(next, 10)))
	ctx.w.arrayHeader(len(keys))
	for _, k := range keys {
		ctx.w.bulk(k)
	}
}

// cmdExpire serves EXPIRE (seconds) and PEXPIRE (milliseconds). Like
// SETEX, the deadline is resolved here and propagated absolute (PEXPIREAT);
// an EXPIRE on a missing key still propagates — as a no-op PEXPIREAT — so
// replica feeds stay byte-identical regardless of local keyspace state.
func cmdExpire(ctx *Ctx) {
	name := commandName(ctx.args)
	d, err := strconv.ParseInt(string(ctx.args[2]), 10, 64)
	if err != nil {
		ctx.w.errorf("value is not an integer or out of range")
		return
	}
	at := deadlineFrom(ctx.sh.st.Now(), d, name == "expire")
	ctx.prop = [][]byte{[]byte("PEXPIREAT"), ctx.args[1], []byte(strconv.FormatInt(at, 10))}
	if ctx.sh.st.Expire(string(ctx.args[1]), at) {
		ctx.w.integer(1)
	} else {
		ctx.w.integer(0)
	}
}

// cmdTTL serves TTL (seconds, rounded up like Redis) and PTTL.
func cmdTTL(ctx *Ctx) {
	ms := ctx.sh.st.PTTL(string(ctx.args[1]))
	if ms < 0 || commandName(ctx.args) == "pttl" {
		ctx.w.integer(ms)
	} else {
		ctx.w.integer((ms + 999) / 1000)
	}
}

func cmdPersist(ctx *Ctx) {
	if ctx.sh.st.Persist(string(ctx.args[1])) {
		ctx.w.integer(1)
	} else {
		ctx.w.integer(0)
	}
}

// cmdCommand implements COMMAND, COMMAND COUNT, and COMMAND INFO <name...>,
// generated straight from the registry.
func cmdCommand(ctx *Ctx) {
	if len(ctx.args) == 1 {
		ctx.w.arrayHeader(len(commandList))
		for _, c := range commandList {
			writeCommandEntry(ctx.w, c)
		}
		return
	}
	// Case-fold only plausibly-valid names: a hostile maxBulkLen subcommand
	// or command-name bulk must miss cheaply, not pay megabytes-sized
	// ToUpper copies (same guard as dispatch's longestCommandName check).
	// The bound is deliberately loose — any realistic subcommand fits.
	const maxSubcommandLen = 16
	var sub string
	if len(ctx.args[1]) <= maxSubcommandLen {
		sub = strings.ToUpper(string(ctx.args[1]))
	}
	switch sub {
	case "COUNT":
		if len(ctx.args) != 2 {
			ctx.w.errorf("wrong number of arguments for 'command|count' command")
			return
		}
		ctx.w.integer(int64(len(commandList)))
	case "INFO":
		ctx.w.arrayHeader(len(ctx.args) - 2)
		for _, name := range ctx.args[2:] {
			var c *Command
			if len(name) <= longestCommandName {
				c = commandTable[strings.ToUpper(string(name))]
			}
			if c != nil {
				writeCommandEntry(ctx.w, c)
			} else {
				ctx.w.nilArray()
			}
		}
	default:
		ctx.w.errorf("unknown subcommand '%s' for 'command'", errorEcho(ctx.args[1]))
	}
}

// writeCommandEntry renders one COMMAND reply element, Redis-shaped:
// [name, arity, [flags...], first-key, last-key, step].
func writeCommandEntry(w *respWriter, c *Command) {
	w.arrayHeader(6)
	w.bulk([]byte(strings.ToLower(c.Name)))
	w.integer(int64(c.Arity))
	names := c.Flags.names()
	w.arrayHeader(len(names))
	for _, n := range names {
		w.simple(n)
	}
	w.integer(int64(c.Keys.First))
	w.integer(int64(c.Keys.Last))
	w.integer(int64(c.Keys.Step))
}

// cmdInfo serves INFO and INFO <section>. With a section argument only that
// section is rendered (commandstats is the interesting one — it is omitted
// from the default reply, as in Redis); a section that doesn't match any
// header falls back to the full block, preserving the old switch's tolerant
// behavior for clients that send "INFO server" or "INFO all" by default.
func cmdInfo(ctx *Ctx) {
	if len(ctx.args) > 2 {
		ctx.w.errorf("wrong number of arguments for 'info' command")
		return
	}
	// A section name no real header can match skips the fold entirely (a
	// hostile maxBulkLen bulk would otherwise cost a megabytes-sized copy)
	// and falls through to the tolerant full-reply default. The full block
	// is rendered only on the paths that reply with it — commandstats
	// must not pay store-stats collection and the embedder Info callback
	// just to discard the result.
	if len(ctx.args) == 2 && len(ctx.args[1]) <= 64 {
		section := strings.ToLower(string(ctx.args[1]))
		// commandstats and latencystats render from the per-command
		// histograms and are omitted from the default reply, as in Redis.
		if section == "commandstats" {
			ctx.w.bulk([]byte(ctx.s.commandStats()))
			return
		}
		if section == "latencystats" {
			ctx.w.bulk([]byte(ctx.s.latencyStats()))
			return
		}
		// The per-type keyspace census walks the whole map; only pay it
		// when the keyspace section could actually be returned — directly,
		// or via the tolerant full-block fallback for unknown sections.
		full := ctx.s.info(section == "keyspace")
		if s, ok := infoSection(full, section); ok {
			ctx.w.bulk([]byte(s))
		} else {
			ctx.w.bulk([]byte(ctx.s.info(true)))
		}
		return
	}
	ctx.w.bulk([]byte(ctx.s.info(true)))
}

// infoSection extracts one "# Header" block from an INFO rendering,
// matching the header case-insensitively.
func infoSection(full, section string) (string, bool) {
	for rest := full; rest != ""; {
		i := strings.Index(rest, "# ")
		if i != 0 {
			break
		}
		end := len(rest)
		if j := strings.Index(rest[2:], "\r\n# "); j >= 0 {
			end = j + 4 // keep the trailing CRLF of this section
		}
		header, _, _ := strings.Cut(rest[2:], "\r\n")
		if strings.EqualFold(header, section) {
			return rest[:end], true
		}
		rest = rest[end:]
	}
	return "", false
}

// cmdSave checkpoints every shard (see Server.Save for the single-fence vs
// per-shard orchestration). SAVE is keyless, so dispatch gives it no barrier
// of its own — Save takes each shard's write side itself, waiting out that
// shard's in-flight commands. SAVE is FlagDenyTxn: taking a barrier while
// EXEC holds a transaction's key stripes would deadlock against writers
// blocked on those stripes still holding their read side.
func cmdSave(ctx *Ctx) {
	if !ctx.s.hasCheckpoint() {
		ctx.w.errorf("no checkpoint configured (volatile heap)")
		return
	}
	if err := ctx.s.Save(); err != nil {
		ctx.w.errorf("checkpoint failed: %v", err)
		return
	}
	ctx.w.simple("OK")
}

func cmdShutdown(ctx *Ctx) {
	ctx.w.simple("OK")
	ctx.quit = true
}

// commandName is the lowercased command name as dispatched (args[0] may be
// any case on the wire).
func commandName(args [][]byte) string { return strings.ToLower(string(args[0])) }
