package server

import (
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/cluster/shardlock"
	"repro/internal/obs"
)

// This file is the command-table API: every command the server speaks is a
// Command value in the registry (see commands.go), and dispatch is a small
// declarative pipeline — lookup → arity validation → KeySpec-driven key
// extraction → deadlock-ordered striped-lock acquisition → middleware →
// handler — instead of a monolithic switch where every case hand-rolls its
// own checks. The table is also the single source of truth for COMMAND
// introspection, the README command reference (TestREADMECommandTable), the
// generated arity-error tests, and MULTI/EXEC queue-time validation.

// Flags describe a command's behavior to the dispatch pipeline.
type Flags uint16

const (
	// FlagWrite marks a command that mutates the keyspace. Dispatch
	// acquires the striped key locks its KeySpec declares before the
	// handler runs; the handler itself never locks.
	FlagWrite Flags = 1 << iota
	// FlagReadonly marks a command that never mutates the keyspace.
	FlagReadonly
	// FlagFast marks a constant-or-near-constant-time command (Redis's
	// "fast" flag: no dependence on value sizes or keyspace cardinality).
	FlagFast
	// FlagAdmin marks server-administration commands (SAVE, SHUTDOWN).
	FlagAdmin
	// FlagDenyTxn marks commands that may not be queued inside MULTI:
	// SAVE takes the checkpoint barrier's write side (which would deadlock
	// against the transaction's held locks) and SHUTDOWN tears the
	// connection down mid-queue. Queueing one replies an error and poisons
	// the transaction (EXECABORT at EXEC), like Redis does for SUBSCRIBE.
	FlagDenyTxn
	// FlagTxnControl marks MULTI/EXEC/DISCARD themselves: they execute
	// immediately even while a transaction is queuing.
	FlagTxnControl
	// FlagLockAll makes dispatch acquire every key stripe (FLUSHALL):
	// keyspace-wide mutation without a KeySpec, still deadlock-ordered
	// and therefore safe to queue inside MULTI.
	FlagLockAll
)

// flagNames renders the set bits as Redis-style lowercase flag names, in
// declaration order (COMMAND reply and README table).
func (f Flags) names() []string {
	var out []string
	for _, fn := range []struct {
		bit  Flags
		name string
	}{
		{FlagWrite, "write"},
		{FlagReadonly, "readonly"},
		{FlagFast, "fast"},
		{FlagAdmin, "admin"},
		{FlagDenyTxn, "denytxn"},
		{FlagTxnControl, "txnctl"},
		{FlagLockAll, "lockall"},
	} {
		if f&fn.bit != 0 {
			out = append(out, fn.name)
		}
	}
	return out
}

// KeySpec declares where a command's keys sit in its argument vector,
// Redis-style: First is the index of the first key (1-based; 0 means the
// command touches no keys), Last is the index of the last key (-1 means the
// final argument), Step is the stride between keys (2 for MSET's key/value
// pairs). Dispatch uses the spec to extract keys uniformly — for striped
// lock acquisition, for MULTI/EXEC's union locking, and for COMMAND.
type KeySpec struct {
	First, Last, Step int
}

// keys appends the key arguments args declares to dst and returns it.
// args[0] is the command name. A Last beyond the argument vector is clamped:
// arity validation has already run, so a short tail only happens for
// variadic specs mid-validation (MSET's pairing is handler-checked).
func (ks KeySpec) keys(dst [][]byte, args [][]byte) [][]byte {
	if ks.First == 0 {
		return dst
	}
	last := ks.Last
	if last < 0 {
		last = len(args) + last
	}
	if last > len(args)-1 {
		last = len(args) - 1
	}
	step := ks.Step
	if step <= 0 {
		step = 1
	}
	for i := ks.First; i <= last; i += step {
		dst = append(dst, args[i])
	}
	return dst
}

// Ctx carries one command invocation through the middleware chain to its
// handler: the server, the connection's allocation handle and reply writer,
// the parsed argument vector (args[0] is the command name as sent), and the
// connection's transaction state. One Ctx is reused per connection, so
// handlers must not retain it.
type Ctx struct {
	s    *Server
	hd   alloc.Handle
	w    *respWriter
	args [][]byte
	cs   *connState
	quit bool // set by SHUTDOWN; returned to the connection loop

	// sh is the shard this invocation routed to (set by dispatch for keyed
	// commands; nil for keyless ones). hds holds the connection's per-shard
	// allocation handles; test harnesses that drive one shard directly may
	// leave it nil and set hd themselves.
	sh  *shard
	hds []alloc.Handle

	// fromLink marks invocations replayed from the replication link: they
	// bypass the replica's -READONLY gate and are not re-propagated by the
	// tap (the link force-appends the primary's exact bytes instead).
	fromLink bool
	// prop, when set by a write handler, replaces ctx.args as the
	// propagated form of this command (EXPIRE → PEXPIREAT and friends, so
	// replicas never consult their own clock). Cleared by dispatch.
	prop [][]byte
	// hijack, when set by a handler (PSYNC), takes over the raw connection
	// after the dispatch barrier is released; the connection loop stops
	// reading commands and hands the conn to it.
	hijack func(net.Conn)

	// scratch buffers, reused across dispatches on this connection so the
	// steady-state pipeline allocates nothing.
	keybuf   [][]byte
	stripes  []int
	txstripe []int

	// memo is a tiny direct-mapped lookup cache indexed by the command
	// name's first byte: a pipelined GET/SET stream resolves its commands
	// by one pointer load and a short string compare instead of a map
	// hash. Misses (cold or colliding first bytes, lowercase names) fall
	// back to the map.
	memo [32]*boundCmd
}

// Handler executes one command. By the time it runs, arity is validated and
// every key lock the command's KeySpec declares is held; the handler only
// does the command's own work and writes exactly one reply.
type Handler func(*Ctx)

// Middleware wraps a command's handler at server construction time. The
// built-in stats layer (per-command call/latency/error counters, surfaced
// as INFO commandstats — see boundCmd.invoke) is innermost; Config.Middleware
// entries wrap outside it in slice order.
type Middleware func(*Command, Handler) Handler

// Command is one registry entry: everything the dispatch pipeline needs to
// run the command without the command's handler restating it.
type Command struct {
	// Name is the canonical command name, uppercase.
	Name string
	// Arity is Redis-style: positive means exactly that many arguments
	// (including the name), negative means at least |Arity|.
	Arity int
	// Flags drive lock acquisition and MULTI/EXEC admission.
	Flags Flags
	// Keys declares where the command's keys live (zero value: no keys).
	Keys KeySpec
	// NeedsType, when nonzero, names the value type the command's key must
	// hold — 's' string, 'h' hash, 'l' list. Applying the command to a key
	// of a different type replies Redis's exact WRONGTYPE error; the
	// registry-generated fidelity test probes every declaration. Zero
	// means type-agnostic (DEL, EXPIRE, TYPE, ...) or type-overwriting
	// (SET, MSET).
	NeedsType byte
	// Handler does the work.
	Handler Handler
}

// arityOK reports whether n arguments satisfy the declared arity.
func arityOK(arity, n int) bool {
	if arity >= 0 {
		return n == arity
	}
	return n >= -arity
}

// cmdStats is one command's per-server telemetry block (boundCmd.invoke's
// target): a full fixed-layout latency histogram — every invocation is
// recorded, not sampled, which is what makes INFO latencystats' p50/p99/p999
// real quantiles — plus an error-reply counter. Recording is two atomic
// fetch-adds and allocates nothing (see obs.Histogram), so the dispatch
// overhead gate still holds with it enabled.
type cmdStats struct {
	hist obs.Histogram
	errs atomic.Uint64
}

// lock modes precomputed from a Command's flags and KeySpec so dispatch
// branches on one byte instead of re-deriving them per invocation.
const (
	lockNone      = iota // readonly or keyless: no stripes
	lockSingleKey        // exactly one key at args[1]: one stripe, no slices
	lockMulti            // variadic keys: extract, sort, dedup
	lockAllMode          // FlagLockAll: every stripe
)

// boundCmd is a registry entry bound to one server: the immutable Command
// plus this server's counters, its middleware-wrapped handler, and the
// precomputed lock mode.
type boundCmd struct {
	cmd      *Command
	stats    cmdStats
	run      Handler
	lockMode uint8
}

func lockModeOf(c *Command) uint8 {
	switch {
	case c.Flags&FlagLockAll != 0:
		return lockAllMode
	case c.Flags&FlagWrite == 0 || c.Keys.First == 0:
		return lockNone
	case c.Keys.First == 1 && c.Keys.Last == 1:
		return lockSingleKey
	default:
		return lockMulti
	}
}

// invoke is the innermost, built-in layer of the middleware chain, inlined
// rather than closure-wrapped because it sits on the pipelined hot path: it
// times every invocation into the command's histogram (two clock reads plus
// two atomic adds — the dispatch overhead gate pins this under 5%) and
// counts error replies. Error detection piggybacks on the reply writer: any
// handler that writes an error reply bumps w.errs. Executions at or over
// the server's slowlog/latency thresholds take the slow path — by
// definition not hot — which appends to the slow log ring and the LATENCY
// event timeline. Config.Middleware layers wrap outside this, in bc.run.
func (bc *boundCmd) invoke(ctx *Ctx) {
	e0 := ctx.w.errs
	t0 := time.Now()
	bc.run(ctx)
	d := time.Since(t0)
	bc.stats.hist.Record(d)
	if ctx.w.errs != e0 {
		bc.stats.errs.Add(1)
	}
	if int64(d) >= ctx.s.slowNs || int64(d) >= ctx.s.latNs {
		ctx.s.recordSlow(bc, ctx.args, t0, d)
	}
}

// commandTable and commandList are the process-wide immutable registry,
// built once from commands.go's declarations. commandList is sorted by name
// (COMMAND reply order, docs order). longestCommandName lets dispatch skip
// the case-folding fallback for names no registered command can match.
var (
	commandTable       = map[string]*Command{}
	commandList        []*Command
	longestCommandName int
)

func init() {
	for _, c := range commandDefs() {
		if c.Name != strings.ToUpper(c.Name) {
			panic("server: command name must be uppercase: " + c.Name)
		}
		if _, dup := commandTable[c.Name]; dup {
			panic("server: duplicate command " + c.Name)
		}
		if c.Handler == nil {
			panic("server: command without handler: " + c.Name)
		}
		commandTable[c.Name] = c
		commandList = append(commandList, c)
		if len(c.Name) > longestCommandName {
			longestCommandName = len(c.Name)
		}
	}
	sort.Slice(commandList, func(i, j int) bool { return commandList[i].Name < commandList[j].Name })
}

// CommandCount reports how many commands the registry serves (COMMAND COUNT
// gives the same number over the wire).
func CommandCount() int { return len(commandList) }

// Commands returns the registry entries, sorted by name. The slice is shared;
// callers must not mutate it.
func Commands() []*Command { return commandList }

// CommandTableMarkdown renders the registry as the README's command
// reference table. TestREADMECommandTable fails when the README drifts from
// this rendering, so the docs are always generated from the table.
func CommandTableMarkdown() string {
	var b strings.Builder
	b.WriteString("| Command | Arity | Flags | Keys (first,last,step) | Type |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, c := range commandList {
		keys := "—"
		if c.Keys.First != 0 {
			keys = strconv.Itoa(c.Keys.First) + "," + strconv.Itoa(c.Keys.Last) + "," + strconv.Itoa(c.Keys.Step)
		}
		flags := strings.Join(c.Flags.names(), " ")
		if flags == "" {
			flags = "—"
		}
		typ := "any"
		switch c.NeedsType {
		case 's':
			typ = "string"
		case 'h':
			typ = "hash"
		case 'l':
			typ = "list"
		}
		b.WriteString("| `" + c.Name + "` | " + strconv.Itoa(c.Arity) + " | " + flags + " | " + keys + " | " + typ + " |\n")
	}
	return b.String()
}

// bindCommands builds the per-server dispatch table: every registry entry
// wrapped in any Config.Middleware (the built-in stats layer is
// boundCmd.invoke, innermost).
func (s *Server) bindCommands() {
	s.cmds = make(map[string]*boundCmd, len(commandTable))
	for name, c := range commandTable {
		bc := &boundCmd{cmd: c, lockMode: lockModeOf(c)}
		h := c.Handler
		for i := len(s.cfg.Middleware) - 1; i >= 0; i-- {
			h = s.cfg.Middleware[i](c, h)
		}
		bc.run = h
		s.cmds[name] = bc
	}
}

// fnv64a is the stripe hash, inlined (hash/fnv allocates a hasher per call —
// the old per-case keyLock paid that allocation on every write).
func fnv64a(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// stripeOf maps a key to its lock stripe index (within whichever shard the
// key routed to — the stripe hash and the slot hash are independent).
func (s *Server) stripeOf(key []byte) int {
	return int(fnv64a(key) % uint64(shardlock.NumStripes))
}

// appendStripes appends the sorted, deduplicated stripe indexes for keys to
// dst. Sorting is what makes multi-key (and transaction-union) locking
// deadlock-free: every path acquires stripes in ascending order.
func (s *Server) appendStripes(dst []int, keys [][]byte) []int {
	base := len(dst)
	for _, k := range keys {
		dst = append(dst, s.stripeOf(k))
	}
	tail := dst[base:]
	if len(tail) <= 1 {
		return dst
	}
	sort.Ints(tail)
	out := dst[:base]
	for i, idx := range tail {
		if i > 0 && idx == tail[i-1] {
			continue
		}
		out = append(out, idx)
	}
	return out
}

// allStripes is one shard's full stripe set, ascending (EXEC's lockAll
// escalation at a single shard).
func (s *Server) allStripes(dst []int) []int {
	for i := 0; i < shardlock.NumStripes; i++ {
		dst = append(dst, i)
	}
	return dst
}

// commandStripes computes the stripes dispatch must hold for one command
// invocation, into ctx's scratch buffers (stored back so the grown backing
// arrays actually get reused across dispatches). FlagLockAll commands never
// reach here — dispatch sends them through the cross-shard helpers.
func commandStripes(ctx *Ctx, c *Command) []int {
	if c.Flags&FlagWrite == 0 || c.Keys.First == 0 {
		return nil
	}
	ctx.keybuf = c.Keys.keys(ctx.keybuf[:0], ctx.args)
	ctx.stripes = ctx.s.appendStripes(ctx.stripes[:0], ctx.keybuf)
	return ctx.stripes
}

// dispatch is the pipeline the switch used to be: lookup, arity, transaction
// queueing, key-lock acquisition, middleware, handler. It reports whether
// the connection must close (SHUTDOWN).
func (s *Server) dispatch(ctx *Ctx, args [][]byte) (quit bool) {
	// Drop the references dispatch parks in ctx before returning, on every
	// exit path: args slices are freshly allocated per command (and keybuf
	// entries alias them), so leaving them in the reused Ctx would let one
	// idle connection pin up to maxBulkLen bytes indefinitely — the same
	// idle-retention containment connState.reset applies to the txn queue.
	// Clearing keybuf to len is enough: entries beyond len are nil by
	// induction (every dispatch clears exactly the entries it wrote), and
	// clearing to cap would turn one historical million-key command into a
	// permanent per-dispatch memset. A giant multi-key command must not
	// pin peak-sized scratch for the connection's lifetime either, so
	// oversized backing arrays are dropped outright. Open-coded defer, so
	// it stays off the dispatch benchmark gate.
	defer func() {
		ctx.args = nil
		ctx.prop = nil
		clear(ctx.keybuf)
		ctx.keybuf = ctx.keybuf[:0] // later clears are O(0), not O(stale len)
		const maxScratch = 1024
		if cap(ctx.keybuf) > maxScratch {
			ctx.keybuf = nil
		}
		if cap(ctx.stripes) > maxScratch {
			ctx.stripes = nil
		}
		if cap(ctx.txstripe) > maxScratch {
			ctx.txstripe = nil
		}
	}()
	// Fast-path lookup: the per-connection memo resolves repeated command
	// names with one pointer load plus an exact compare (the compiler
	// elides the []byte→string conversions here — no allocation). Memo
	// misses go to the map with the canonical uppercase name; real clients
	// send uppercase, so the common case never case-folds.
	name := args[0]
	if len(name) == 0 {
		if ctx.cs != nil && ctx.cs.inTxn {
			ctx.cs.dirty = true
		}
		ctx.w.errorf("unknown command ''")
		return false
	}
	slot := &ctx.memo[name[0]&31]
	bc := *slot
	if bc == nil || string(name) != bc.cmd.Name {
		var ok bool
		bc, ok = s.cmds[string(name)]
		// The case-folding fallback only makes sense for names that could
		// be a registered command at all: a hostile maxBulkLen name must
		// not cost a megabytes-sized ToUpper copy just to miss.
		if !ok && len(name) <= longestCommandName {
			bc, ok = s.cmds[strings.ToUpper(string(name))]
		}
		if !ok {
			if ctx.cs != nil && ctx.cs.inTxn {
				ctx.cs.dirty = true
			}
			ctx.w.errorf("unknown command '%s'", errorEcho(name))
			return false
		}
		*slot = bc
	}
	if !arityOK(bc.cmd.Arity, len(args)) {
		if ctx.cs != nil && ctx.cs.inTxn {
			ctx.cs.dirty = true
		}
		ctx.w.errorf("wrong number of arguments for '%s' command", strings.ToLower(string(args[0])))
		return false
	}
	// Replicas refuse client writes: only the replication link (fromLink)
	// mutates a replica's store, so its state is a pure function of the
	// primary's feed. Checked before transaction queueing so a MULTI on a
	// replica fails at queue time, not inside EXEC.
	if bc.cmd.Flags&FlagWrite != 0 && !ctx.fromLink && s.repl != nil && s.repl.replica.Load() {
		if ctx.cs != nil && ctx.cs.inTxn {
			ctx.cs.dirty = true
		}
		ctx.w.errorKind("READONLY", "You can't write against a read only replica.")
		return false
	}
	if ctx.cs != nil && ctx.cs.inTxn && bc.cmd.Flags&FlagTxnControl == 0 {
		ctx.cs.enqueue(ctx, bc, args)
		return false
	}
	ctx.args = args
	ctx.quit = false
	// Routing and the checkpoint barrier: keyed commands take their shard's
	// barrier read side here (the write side is that shard's SAVE fence), so
	// a checkpoint cut never lands mid-command and other shards' fences
	// never stall this command. Keyless commands (PING, INFO, DBSIZE, SCAN,
	// admin/replication control) take no barrier — they either read atomics
	// and stripe-locked structures that tolerate concurrent cuts, or, like
	// SAVE itself, acquire barriers of their own.
	switch bc.lockMode {
	case lockNone:
		if bc.cmd.Keys.First == 0 {
			ctx.sh = nil
			bc.invoke(ctx)
			break
		}
		sh, ok := s.routeKeys(ctx, bc.cmd, args)
		if !ok {
			return false
		}
		ctx.setShard(sh)
		sh.locks.Exec.RLock()
		invokeBarrier(ctx, bc, sh)
	case lockSingleKey:
		// Single-key write (SET/INCR/SETEX/…): one stripe, locked without
		// building key or stripe slices.
		sh := s.shardOf(args[1])
		ctx.setShard(sh)
		sh.locks.Exec.RLock()
		mu := &sh.locks.Stripes[s.stripeOf(args[1])]
		mu.Lock()
		invokeUnlocking(ctx, bc, sh, mu)
	case lockAllMode:
		// Keyspace-wide mutation (FLUSHALL): every shard's barrier read
		// side, then every stripe of every shard, in global order.
		ctx.sh = nil
		shardlock.RLockAll(s.locksAll)
		shardlock.LockAllStripes(s.locksAll)
		invokeAllUnlocking(ctx, bc)
	default:
		sh, ok := s.routeKeys(ctx, bc.cmd, args)
		if !ok {
			return false
		}
		ctx.setShard(sh)
		stripes := commandStripes(ctx, bc.cmd)
		sh.locks.Exec.RLock()
		sh.locks.LockStripes(stripes)
		invokeStripedUnlocking(ctx, bc, sh, stripes)
	}
	return ctx.quit
}

// The invoke* helpers release dispatch's barrier and stripe locks via defer
// (open-coded, so they stay off the benchmark gate's 5% budget): a panicking
// handler — or a panicking Config.Middleware layer supplied by the embedder
// — must fail one connection, not leave its shard's locks held and wedge
// every future writer (and SAVE fence) behind a dead connection.
func invokeBarrier(ctx *Ctx, bc *boundCmd, sh *shard) {
	defer sh.locks.Exec.RUnlock()
	bc.invoke(ctx)
}

func invokeUnlocking(ctx *Ctx, bc *boundCmd, sh *shard, mu *sync.Mutex) {
	defer sh.locks.Exec.RUnlock()
	defer mu.Unlock()
	bc.invoke(ctx)
}

func invokeStripedUnlocking(ctx *Ctx, bc *boundCmd, sh *shard, stripes []int) {
	defer sh.locks.Exec.RUnlock()
	defer sh.locks.UnlockStripes(stripes)
	bc.invoke(ctx)
}

func invokeAllUnlocking(ctx *Ctx, bc *boundCmd) {
	s := ctx.s
	defer shardlock.RUnlockAll(s.locksAll)
	defer shardlock.UnlockAllStripes(s.locksAll)
	bc.invoke(ctx)
}
