package server

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestE2EReplicationFailover drives the full replication lifecycle across
// real processes and real SIGKILLs: a ralloc-serve primary and a
// -replicaof replica on unix sockets; the replica is killed mid-feed and
// restarted (partial resync from its bootstrap image's stamped offset);
// then the primary is killed, the replica promoted with REPLICAOF NO ONE
// and written to, and the old primary restarted as a replica of the new
// one — its stale stream ID forces a full re-bootstrap, after which it
// serves every write it was dead for.
func TestE2EReplicationFailover(t *testing.T) {
	runE2EReplicationFailover(t, 1)
}

// TestE2EReplicationFailoverCluster4 is the same drill at -cluster-shards 4:
// bootstrap downloads four slot-partitioned images, partial resync replays a
// feed whose entries carry derived shard ids, the old primary's rejoin
// recovers a four-shard dataset after SIGKILL, and WAIT/INFO span shards.
func TestE2EReplicationFailoverCluster4(t *testing.T) {
	runE2EReplicationFailover(t, 4)
}

func runE2EReplicationFailover(t *testing.T, clusterShards int) {
	if testing.Short() {
		t.Skip("skipping subprocess e2e in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ralloc-serve")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/ralloc-serve")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ralloc-serve: %v\n%s", err, out)
	}

	type node struct {
		heap, sock string
	}
	a := node{filepath.Join(dir, "a.heap"), filepath.Join(dir, "a.sock")}
	b := node{filepath.Join(dir, "b.heap"), filepath.Join(dir, "b.sock")}

	serve := func(n node, extra ...string) *exec.Cmd {
		args := []string{"-heap", n.heap, "-unix", n.sock, "-heapmb", "64", "-buckets", "8192"}
		if clusterShards > 1 {
			args = append(args, "-cluster-shards", strconv.Itoa(clusterShards))
		}
		args = append(args, extra...)
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting ralloc-serve: %v", err)
		}
		return cmd
	}
	dialRetry := func(n node) *Client {
		deadline := time.Now().Add(15 * time.Second)
		for {
			c, err := DialTimeout("unix", n.sock, time.Second)
			if err == nil {
				return c
			}
			if time.Now().After(deadline) {
				t.Fatalf("server on %s did not come up: %v", n.sock, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	writeBatch := func(c *Client, prefix string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := c.Send("SET", fmt.Sprintf("%s-%05d", prefix, i), prefix); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if rp, err := c.Recv(); err != nil || rp.Str != "OK" {
				t.Fatalf("batch %s SET reply = %+v, %v", prefix, rp, err)
			}
		}
	}
	checkBatch := func(c *Client, prefix string, n int, where string) {
		t.Helper()
		for _, i := range []int{0, n / 2, n - 1} {
			v, ok, err := c.Get(fmt.Sprintf("%s-%05d", prefix, i))
			if err != nil || !ok || v != prefix {
				t.Fatalf("%s: %s-%05d = (%q,%v,%v)", where, prefix, i, v, ok, err)
			}
		}
	}

	if clusterShards == 1 {
		// -boundmb and -replicaof are mutually exclusive (LRU evictions are
		// not replicated): the binary must refuse the combination at startup.
		bad := exec.Command(bin, "-heap", filepath.Join(dir, "bad.heap"), "-unix",
			filepath.Join(dir, "bad.sock"), "-boundmb", "8", "-replicaof", a.sock)
		if out, err := bad.CombinedOutput(); err == nil {
			t.Fatalf("-boundmb with -replicaof was accepted:\n%s", out)
		}
	}

	primary := serve(a)
	defer func() {
		if primary.Process != nil {
			primary.Process.Kill()
		}
	}()
	pc := dialRetry(a)
	writeBatch(pc, "batch-a", 2000)

	replica := serve(b, "-replicaof", a.sock)
	defer func() {
		if replica.Process != nil {
			replica.Process.Kill()
		}
	}()
	rc := dialRetry(b)
	if n, err := pc.Wait(1, 15*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT for replica attach = %d, %v", n, err)
	}
	checkBatch(rc, "batch-a", 2000, "replica after bootstrap")
	if rp, err := rc.Do("SET", "nope", "x"); err != nil || !strings.Contains(rp.Str, "READONLY") {
		t.Fatalf("replica SET = %+v, %v (want READONLY)", rp, err)
	}

	// Kill the replica mid-feed; the primary keeps writing. The restarted
	// replica resumes from its bootstrap image's stamped offset — batch B
	// is well inside the 1 MiB default backlog, so this is a partial
	// resync, not a re-download.
	rc.Close()
	if err := replica.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	replica.Wait()
	writeBatch(pc, "batch-b", 1000)

	replica2 := serve(b, "-replicaof", a.sock)
	defer func() {
		if replica2.Process != nil {
			replica2.Process.Kill()
		}
	}()
	rc2 := dialRetry(b)
	if n, err := pc.Wait(1, 15*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT after replica restart = %d, %v", n, err)
	}
	checkBatch(rc2, "batch-a", 2000, "restarted replica")
	checkBatch(rc2, "batch-b", 1000, "restarted replica")
	rp, err := rc2.Do("INFO", "replication")
	if err != nil || !strings.Contains(string(rp.Bulk), "full_syncs:0") {
		t.Fatalf("restarted replica took a full resync (INFO: %v, %v) — partial coverage was lost", rp.Text(), err)
	}

	// Failover: SIGKILL the primary, promote the replica, write through it.
	pc.Close()
	if err := primary.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	primary.Wait()
	if err := rc2.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	checkBatch(rc2, "batch-a", 2000, "promoted replica")
	checkBatch(rc2, "batch-b", 1000, "promoted replica")
	writeBatch(rc2, "batch-c", 500)

	// Rejoin: the old primary restarts pointing at the new one. Its image
	// carries the pre-failover stream ID, the promoted node answers with a
	// fresh one, so the probe is refused CONTINUE and the node re-bootstraps
	// from the new primary's checkpoint — converging on batch C, which it
	// was dead for.
	old := serve(a, "-replicaof", b.sock)
	defer func() {
		if old.Process != nil {
			old.Process.Kill()
		}
	}()
	oc := dialRetry(a)
	if n, err := rc2.Wait(1, 15*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT for rejoined node = %d, %v", n, err)
	}
	checkBatch(oc, "batch-a", 2000, "rejoined old primary")
	checkBatch(oc, "batch-b", 1000, "rejoined old primary")
	checkBatch(oc, "batch-c", 500, "rejoined old primary")
	rp, err = rc2.Do("INFO", "replication")
	if err != nil || !strings.Contains(string(rp.Bulk), "full_syncs:1") {
		t.Fatalf("rejoin did not take exactly one full resync (INFO: %v, %v)", rp.Text(), err)
	}

	// And the feed keeps flowing to the rejoined node.
	if err := rc2.Set("post-rejoin", "live"); err != nil {
		t.Fatal(err)
	}
	if n, err := rc2.Wait(1, 15*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT post-rejoin = %d, %v", n, err)
	}
	if v, ok, err := oc.Get("post-rejoin"); err != nil || !ok || v != "live" {
		t.Fatalf("post-rejoin write = (%q,%v,%v)", v, ok, err)
	}

	// Clean shutdown everywhere: the rejoined replica drains first, then
	// the primary.
	oc.Do("SHUTDOWN")
	waitExit(t, old, 15*time.Second)
	rc2.Do("SHUTDOWN")
	waitExit(t, replica2, 15*time.Second)
}
