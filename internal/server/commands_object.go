package server

// The typed-object command families (HSET/.../HGETALL, LPUSH/.../LRANGE)
// over the kvstore object engine. Dispatch supplies everything generic —
// arity, key extraction, striped locking, MULTI/EXEC queueing, stats — so
// each handler is only the command's own semantics plus the uniform
// store-error mapping (WRONGTYPE with Redis's exact wording, OOM).

import (
	"errors"
	"strconv"

	"repro/internal/kvstore"
)

// wrongTypeMsg is Redis's exact WRONGTYPE error body; the error class
// prefix ("WRONGTYPE ") is written by errorKind.
const wrongTypeMsg = "Operation against a key holding the wrong kind of value"

// writeStoreErr maps a kvstore error to its RESP reply.
func writeStoreErr(ctx *Ctx, err error) {
	switch {
	case errors.Is(err, kvstore.ErrWrongType):
		ctx.w.errorKind("WRONGTYPE", wrongTypeMsg)
	case errors.Is(err, kvstore.ErrNoMemory):
		ctx.w.errorf("out of memory")
	default:
		ctx.w.errorf("%v", err)
	}
}

func objectCommandDefs() []*Command {
	return []*Command{
		// Hashes.
		{Name: "HSET", Arity: -4, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 'h', Handler: cmdHSet},
		{Name: "HGET", Arity: 3, Flags: FlagReadonly | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 'h', Handler: cmdHGet},
		{Name: "HDEL", Arity: -3, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 'h', Handler: cmdHDel},
		{Name: "HEXISTS", Arity: 3, Flags: FlagReadonly | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 'h', Handler: cmdHExists},
		{Name: "HLEN", Arity: 2, Flags: FlagReadonly | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 'h', Handler: cmdHLen},
		{Name: "HGETALL", Arity: 2, Flags: FlagReadonly, Keys: KeySpec{1, 1, 1}, NeedsType: 'h', Handler: cmdHGetAll},

		// Lists.
		{Name: "LPUSH", Arity: -3, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 'l', Handler: cmdLPush},
		{Name: "RPUSH", Arity: -3, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 'l', Handler: cmdLPush},
		{Name: "LPOP", Arity: 2, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 'l', Handler: cmdLPop},
		{Name: "RPOP", Arity: 2, Flags: FlagWrite | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 'l', Handler: cmdLPop},
		{Name: "LLEN", Arity: 2, Flags: FlagReadonly | FlagFast, Keys: KeySpec{1, 1, 1}, NeedsType: 'l', Handler: cmdLLen},
		{Name: "LRANGE", Arity: 4, Flags: FlagReadonly, Keys: KeySpec{1, 1, 1}, NeedsType: 'l', Handler: cmdLRange},
	}
}

// cmdHSet: HSET key field value [field value ...], replying the number of
// fields newly created. Like Redis, it never touches the key's TTL.
func cmdHSet(ctx *Ctx) {
	if len(ctx.args)%2 != 0 {
		ctx.w.errorf("wrong number of arguments for 'hset' command")
		return
	}
	created, err := ctx.sh.st.HSet(ctx.hd, ctx.args[1], ctx.args[2:]...)
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	ctx.w.integer(int64(created))
}

func cmdHGet(ctx *Ctx) {
	v, ok, err := ctx.sh.st.HGet(ctx.args[1], ctx.args[2])
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	if ok {
		ctx.w.bulk(v)
	} else {
		ctx.w.nilBulk()
	}
}

func cmdHDel(ctx *Ctx) {
	removed, err := ctx.sh.st.HDel(ctx.hd, ctx.args[1], ctx.args[2:]...)
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	ctx.w.integer(int64(removed))
}

func cmdHExists(ctx *Ctx) {
	ok, err := ctx.sh.st.HExists(ctx.args[1], ctx.args[2])
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	if ok {
		ctx.w.integer(1)
	} else {
		ctx.w.integer(0)
	}
}

func cmdHLen(ctx *Ctx) {
	n, err := ctx.sh.st.HLen(ctx.args[1])
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	ctx.w.integer(int64(n))
}

// cmdHGetAll replies a flat array of alternating field, value — empty for a
// missing key, like Redis.
func cmdHGetAll(ctx *Ctx) {
	fields, values, err := ctx.sh.st.HGetAll(ctx.args[1])
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	ctx.w.arrayHeader(2 * len(fields))
	for i := range fields {
		ctx.w.bulk(fields[i])
		ctx.w.bulk(values[i])
	}
}

// cmdLPush serves LPUSH and RPUSH (the dispatched name picks the end),
// replying the list's new length.
func cmdLPush(ctx *Ctx) {
	var n int
	var err error
	if ctx.args[0][0] == 'L' || ctx.args[0][0] == 'l' {
		n, err = ctx.sh.st.LPush(ctx.hd, ctx.args[1], ctx.args[2:]...)
	} else {
		n, err = ctx.sh.st.RPush(ctx.hd, ctx.args[1], ctx.args[2:]...)
	}
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	ctx.w.integer(int64(n))
}

// cmdLPop serves LPOP and RPOP, replying the popped element or nil.
func cmdLPop(ctx *Ctx) {
	var v []byte
	var ok bool
	var err error
	if ctx.args[0][0] == 'L' || ctx.args[0][0] == 'l' {
		v, ok, err = ctx.sh.st.LPop(ctx.hd, ctx.args[1])
	} else {
		v, ok, err = ctx.sh.st.RPop(ctx.hd, ctx.args[1])
	}
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	if ok {
		ctx.w.bulk(v)
	} else {
		ctx.w.nilBulk()
	}
}

func cmdLLen(ctx *Ctx) {
	n, err := ctx.sh.st.LLen(ctx.args[1])
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	ctx.w.integer(int64(n))
}

func cmdLRange(ctx *Ctx) {
	start, err1 := strconv.ParseInt(string(ctx.args[2]), 10, 64)
	stop, err2 := strconv.ParseInt(string(ctx.args[3]), 10, 64)
	if err1 != nil || err2 != nil {
		ctx.w.errorf("value is not an integer or out of range")
		return
	}
	vals, err := ctx.sh.st.LRange(ctx.args[1], start, stop)
	if err != nil {
		writeStoreErr(ctx, err)
		return
	}
	ctx.w.arrayHeader(len(vals))
	for _, v := range vals {
		ctx.w.bulk(v)
	}
}
