package server

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// stepClock is a manually-advanced unix-ms clock shared between the test
// and the store, so command-level TTL semantics are deterministic.
type stepClock struct{ ms atomic.Int64 }

func newStepClock() *stepClock {
	c := &stepClock{}
	c.ms.Store(1_000_000)
	return c
}
func (c *stepClock) now() int64      { return c.ms.Load() }
func (c *stepClock) advance(d int64) { c.ms.Add(d) }

func TestTTLCommands(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	clk := newStepClock()
	ts.st.SetClock(clk.now)
	c := dial(t, ts)

	// SETEX/PSETEX write expiring records; TTL/PTTL report remaining life.
	if err := c.SetEx("sx", 10, "v1"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.TTL("sx"); err != nil || n != 10 {
		t.Fatalf("TTL sx = %d, %v", n, err)
	}
	if n, err := c.PTTL("sx"); err != nil || n != 10_000 {
		t.Fatalf("PTTL sx = %d, %v", n, err)
	}
	if err := c.PSetEx("px", 1500, "v2"); err != nil {
		t.Fatal(err)
	}
	// TTL rounds up, like Redis: 1500ms reports as 2s.
	if n, err := c.TTL("px"); err != nil || n != 2 {
		t.Fatalf("TTL px = %d, %v", n, err)
	}
	// Non-positive SETEX TTLs are rejected.
	if rp, err := c.Do("SETEX", "bad", "0", "v"); err != nil || rp.Kind != '-' {
		t.Fatalf("SETEX 0 = %+v, %v", rp, err)
	}

	// Missing and immortal sentinels.
	if n, err := c.TTL("nope"); err != nil || n != -2 {
		t.Fatalf("TTL missing = %d, %v", n, err)
	}
	if err := c.Set("imm", "v"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.TTL("imm"); err != nil || n != -1 {
		t.Fatalf("TTL immortal = %d, %v", n, err)
	}

	// EXPIRE/PEXPIRE on live and missing keys; PERSIST clears.
	if ok, err := c.Expire("imm", 60); err != nil || !ok {
		t.Fatalf("EXPIRE imm = %v, %v", ok, err)
	}
	if ok, err := c.Expire("nope", 60); err != nil || ok {
		t.Fatalf("EXPIRE missing = %v, %v", ok, err)
	}
	if ok, err := c.Persist("imm"); err != nil || !ok {
		t.Fatalf("PERSIST imm = %v, %v", ok, err)
	}
	if ok, err := c.Persist("imm"); err != nil || ok {
		t.Fatalf("PERSIST without TTL = %v, %v", ok, err)
	}

	// Expiry is observable exactly at the deadline, and a plain SET clears
	// a pending TTL (Redis semantics).
	if ok, err := c.PExpire("px", 100); err != nil || !ok {
		t.Fatal(ok, err)
	}
	clk.advance(100)
	if _, ok, err := c.Get("px"); err != nil || ok {
		t.Fatalf("expired px still served (ok=%v, %v)", ok, err)
	}
	if n, err := c.TTL("px"); err != nil || n != -2 {
		t.Fatalf("TTL expired = %d, %v", n, err)
	}
	if ok, err := c.Expire("px", 60); err != nil || ok {
		t.Fatalf("EXPIRE resurrected an expired key over the wire: %v, %v", ok, err)
	}
	if err := c.Set("sx", "fresh"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.TTL("sx"); err != nil || n != -1 {
		t.Fatalf("TTL after clearing SET = %d, %v", n, err)
	}

	// SETNX respects lazy expiry: an expired key counts as absent.
	if ok, err := c.SetNX("px", "nxv"); err != nil || !ok {
		t.Fatalf("SETNX on expired key = %v, %v", ok, err)
	}
	if v, ok, _ := c.Get("px"); !ok || v != "nxv" {
		t.Fatalf("px after SETNX = (%q,%v)", v, ok)
	}
	if ok, err := c.SetNX("px", "other"); err != nil || ok {
		t.Fatalf("SETNX on live key = %v, %v", ok, err)
	}

	// APPEND preserves the TTL; GETSET clears it.
	if err := c.PSetEx("ap", 5_000, "abc"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Append("ap", "def"); err != nil || n != 6 {
		t.Fatalf("APPEND = %d, %v", n, err)
	}
	if v, ok, _ := c.Get("ap"); !ok || v != "abcdef" {
		t.Fatalf("ap = (%q,%v)", v, ok)
	}
	if n, err := c.PTTL("ap"); err != nil || n <= 0 || n > 5_000 {
		t.Fatalf("APPEND dropped the TTL: PTTL = %d, %v", n, err)
	}
	if old, ok, err := c.GetSet("ap", "reset"); err != nil || !ok || old != "abcdef" {
		t.Fatalf("GETSET = (%q,%v,%v)", old, ok, err)
	}
	if n, err := c.TTL("ap"); err != nil || n != -1 {
		t.Fatalf("GETSET kept the TTL: %d, %v", n, err)
	}
	if old, ok, err := c.GetSet("fresh-key", "v"); err != nil || ok || old != "" {
		t.Fatalf("GETSET on missing key = (%q,%v,%v)", old, ok, err)
	}
	// APPEND on a missing key creates it immortal.
	if n, err := c.Append("newap", "xyz"); err != nil || n != 3 {
		t.Fatalf("APPEND missing = %d, %v", n, err)
	}
	if n, err := c.TTL("newap"); err != nil || n != -1 {
		t.Fatalf("TTL of appended key = %d, %v", n, err)
	}

	// DEL of an expired-but-unreclaimed key reports 0 (Redis semantics —
	// reads already said the key was gone) while still freeing the corpse.
	if err := c.PSetEx("dx", 100, "v"); err != nil {
		t.Fatal(err)
	}
	before, _ := c.DBSize()
	clk.advance(100)
	if rp, err := c.Do("DEL", "dx"); err != nil || rp.Int != 0 {
		t.Fatalf("DEL expired = %+v, %v", rp, err)
	}
	if after, _ := c.DBSize(); after != before-1 {
		t.Fatalf("DEL expired left the corpse: DBSIZE %d -> %d", before, after)
	}

	// INCR preserves the TTL (the SETEX+INCR rate-limiter pattern), and the
	// counter dies with its deadline.
	if err := c.PSetEx("ctr", 5_000, "41"); err != nil {
		t.Fatal(err)
	}
	if rp, err := c.Do("INCR", "ctr"); err != nil || rp.Int != 42 {
		t.Fatalf("INCR = %+v, %v", rp, err)
	}
	if n, err := c.PTTL("ctr"); err != nil || n <= 0 || n > 5_000 {
		t.Fatalf("INCR dropped the TTL: PTTL = %d, %v", n, err)
	}
	clk.advance(5_000)
	if _, ok, _ := c.Get("ctr"); ok {
		t.Fatal("expired counter still served")
	}
	// INCR on the expired counter restarts from zero, immortal again only
	// because the old record is dead (fresh record, no deadline carried).
	if rp, err := c.Do("INCR", "ctr"); err != nil || rp.Int != 1 {
		t.Fatalf("INCR after expiry = %+v, %v", rp, err)
	}
	if n, err := c.TTL("ctr"); err != nil || n != -1 {
		t.Fatalf("TTL of reborn counter = %d, %v", n, err)
	}
}

func TestActiveExpiryCycleReclaims(t *testing.T) {
	// The active cycle must delete expired records without any reads
	// touching them — DBSIZE (which counts unreclaimed corpses) drains on
	// its own.
	ts := startServer(t, Config{
		ActiveExpiryInterval: 2 * time.Millisecond,
		ActiveExpirySample:   64,
	}, 0)
	c := dial(t, ts)
	for i := 0; i < 200; i++ {
		if err := c.PSetEx(fmt.Sprintf("tmp-%03d", i), 30, "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Set("keeper", "v"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := c.DBSize()
		if err != nil {
			t.Fatal(err)
		}
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("active expiry cycle left DBSIZE at %d", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v, ok, err := c.Get("keeper"); err != nil || !ok || v != "v" {
		t.Fatalf("keeper = (%q,%v,%v)", v, ok, err)
	}
	st := ts.st.Stats()
	if st.Reclaimed != 200 {
		t.Fatalf("reclaimed = %d, want 200", st.Reclaimed)
	}
}

// TestTTLStressRaceRestart is the -race satellite: concurrent SET / GET /
// PSETEX / PEXPIRE / DEL traffic against a live active-expiry cycle, a SAVE
// checkpoint in the middle, then an in-process kill -9 (Abort + simulated
// power loss) and an AttachBounded restart. Invariants: the data race
// detector stays quiet, every acknowledged immortal SET survives, and every
// key whose TTL elapsed before the crash stays dead after recovery.
func TestTTLStressRaceRestart(t *testing.T) {
	const (
		writers = 4
		bound   = 48 << 20
	)
	cfg := ralloc.Config{
		SBRegion: 64 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	}
	h, _, err := ralloc.Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	st, root := kvstore.OpenBounded(a, a.NewHandle(), 4096, bound)
	h.SetRoot(0, root)
	srv := New(a, st, Config{
		ActiveExpiryInterval: time.Millisecond,
		ActiveExpirySample:   64,
		Checkpoint:           func() error { h.Region().Persist(); return nil },
	})
	sock := filepath.Join(t.TempDir(), "ttlrace.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	stableAcked := make([]int, writers) // highest immortal index acked per writer
	volAcked := make([]int, writers)    // highest short-TTL index acked per writer
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stableAcked[g], volAcked[g] = -1, -1
			c, err := Dial("unix", sock)
			if err != nil {
				t.Errorf("writer %d: %v", g, err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				// Immortal record: must survive the crash.
				if err := c.Set(fmt.Sprintf("st%d-%06d", g, i), fmt.Sprintf("sv%d-%06d", g, i)); err != nil {
					return
				}
				stableAcked[g] = i
				// Short-TTL record: dead well before the post-crash check.
				if err := c.PSetEx(fmt.Sprintf("vol%d-%06d", g, i), int64(1+i%20), "tmp"); err != nil {
					return
				}
				volAcked[g] = i
				// Churn: reads, TTL rewrites and deletes racing the cycle.
				c.Get(fmt.Sprintf("vol%d-%06d", g, i/2))
				if i%3 == 0 {
					c.PExpire(fmt.Sprintf("vol%d-%06d", g, i/2), int64(1+i%5))
				}
				if i%5 == 0 {
					c.Do("DEL", fmt.Sprintf("vol%d-%06d", (g+1)%writers, i/3))
				}
			}
		}(g)
	}

	// Mid-run checkpoint through the quiesce barrier, with the expiry cycle
	// live on the other side of it.
	time.Sleep(150 * time.Millisecond)
	if err := srv.Save(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	srv.Abort()
	wg.Wait()
	for g := range stableAcked {
		if stableAcked[g] < 10 {
			t.Fatalf("writer %d acked only %d sets; traffic too thin", g, stableAcked[g])
		}
	}
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}

	// Restart: recover, AttachBounded, serve again with the cycle running.
	h2, dirty, err := ralloc.Attach(h.Region(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("crashed heap attached clean")
	}
	a2 := h2.AsAllocator()
	h2.GetRoot(0, kvstore.Filter(a2, root))
	if _, err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	st2 := kvstore.AttachBounded(a2, root, bound)
	if !st2.Bounded() {
		t.Fatal("restart lost the bound")
	}
	srv2 := New(a2, st2, Config{
		ActiveExpiryInterval: time.Millisecond,
		ActiveExpirySample:   64,
	})
	sock2 := filepath.Join(t.TempDir(), "ttlrace2.sock")
	l2, err := net.Listen("unix", sock2)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l2)
	defer srv2.Shutdown(time.Second)

	c, err := Dial("unix", sock2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Every acknowledged immortal SET survived.
	for g := 0; g < writers; g++ {
		for i := 0; i <= stableAcked[g]; i++ {
			v, ok, err := c.Get(fmt.Sprintf("st%d-%06d", g, i))
			if err != nil {
				t.Fatal(err)
			}
			if !ok || v != fmt.Sprintf("sv%d-%06d", g, i) {
				t.Fatalf("acked immortal SET st%d-%06d lost: (%q,%v)", g, i, v, ok)
			}
		}
	}
	// Every short-TTL record is long past its ≤20ms deadline (wall time):
	// none may be resurrected, whether or not its corpse was reclaimed.
	for g := 0; g < writers; g++ {
		for i := 0; i <= volAcked[g]; i++ {
			key := fmt.Sprintf("vol%d-%06d", g, i)
			if v, ok, _ := c.Get(key); ok {
				t.Fatalf("expired key %s resurrected as %q after restart", key, v)
			}
			if n, err := c.PTTL(key); err != nil || n != -2 {
				t.Fatalf("PTTL %s = %d, %v", key, n, err)
			}
		}
	}
	if err := c.Set("post", "alive"); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
