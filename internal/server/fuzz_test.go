package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// Native Go fuzzing over both sides of the RESP codec. The decoder faces
// the network, so the property under test is total robustness: for ANY byte
// stream — pipelined, truncated, oversized, malformed, hostile — the parser
// must return commands/replies or a clean error, never panic, never run the
// stack out (readReply recurses per array nesting level; maxReplyDepth is
// the fix this fuzzer motivated), and never allocate unboundedly from a
// tiny header (capacity caps in ReadCommand/readReply).

// fuzzSeedCommands is the seed corpus for the server-side command reader.
var fuzzSeedCommands = []string{
	// Well-formed single and pipelined commands.
	"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n",
	"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n",
	"*1\r\n$4\r\nPING\r\n*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n*2\r\n$3\r\nGET\r\n$1\r\nk\r\n",
	"*3\r\n$6\r\nEXPIRE\r\n$1\r\nk\r\n$2\r\n10\r\n",
	"*4\r\n$6\r\nPSETEX\r\n$1\r\nk\r\n$3\r\n100\r\n$1\r\nv\r\n",
	// Inline commands and blank lines.
	"PING\r\n",
	"GET some-key\r\n",
	"   \r\n\r\nPING\r\n",
	// Transactions: queue-time validation paths (MULTI/EXEC/DISCARD,
	// unknown and wrong-arity commands inside a queue, EXECABORT, nesting).
	"*1\r\n$5\r\nMULTI\r\n*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n*1\r\n$4\r\nEXEC\r\n",
	"*1\r\n$5\r\nMULTI\r\n*2\r\n$6\r\nNOSUCH\r\n$1\r\nx\r\n*1\r\n$4\r\nEXEC\r\n",
	"*1\r\n$5\r\nMULTI\r\n*1\r\n$3\r\nGET\r\n*1\r\n$4\r\nEXEC\r\n",
	"*1\r\n$5\r\nMULTI\r\n*1\r\n$5\r\nMULTI\r\n*1\r\n$7\r\nDISCARD\r\n",
	"*1\r\n$5\r\nMULTI\r\n*1\r\n$4\r\nSAVE\r\n*1\r\n$4\r\nEXEC\r\n",
	"*1\r\n$4\r\nEXEC\r\n*1\r\n$7\r\nDISCARD\r\n",
	"MULTI\r\nSET k v\r\nINCR k\r\nEXEC\r\n",
	// Typed objects: create/read/mutate hashes and lists, WRONGTYPE
	// collisions (object command on a string key and vice versa), and
	// object commands inside transactions.
	"*4\r\n$4\r\nHSET\r\n$2\r\nhk\r\n$1\r\nf\r\n$1\r\nv\r\n*3\r\n$4\r\nHGET\r\n$2\r\nhk\r\n$1\r\nf\r\n",
	"*6\r\n$4\r\nHSET\r\n$2\r\nhk\r\n$1\r\na\r\n$1\r\n1\r\n$1\r\nb\r\n$1\r\n2\r\n*2\r\n$7\r\nHGETALL\r\n$2\r\nhk\r\n",
	"*3\r\n$4\r\nHDEL\r\n$2\r\nhk\r\n$1\r\nf\r\n*2\r\n$4\r\nHLEN\r\n$2\r\nhk\r\n",
	"*3\r\n$5\r\nLPUSH\r\n$2\r\nlk\r\n$1\r\na\r\n*3\r\n$5\r\nRPUSH\r\n$2\r\nlk\r\n$1\r\nb\r\n*4\r\n$6\r\nLRANGE\r\n$2\r\nlk\r\n$1\r\n0\r\n$2\r\n-1\r\n",
	"*2\r\n$4\r\nLPOP\r\n$2\r\nlk\r\n*2\r\n$4\r\nRPOP\r\n$2\r\nlk\r\n*2\r\n$4\r\nLLEN\r\n$2\r\nlk\r\n",
	"*3\r\n$3\r\nSET\r\n$2\r\nsk\r\n$1\r\nv\r\n*4\r\n$4\r\nHSET\r\n$2\r\nsk\r\n$1\r\nf\r\n$1\r\nv\r\n*2\r\n$3\r\nGET\r\n$2\r\nhk\r\n",
	"*4\r\n$6\r\nLRANGE\r\n$2\r\nlk\r\n$3\r\nxyz\r\n$2\r\n-1\r\n",
	"*1\r\n$5\r\nMULTI\r\n*4\r\n$4\r\nHSET\r\n$2\r\nth\r\n$1\r\nf\r\n$1\r\nv\r\n*3\r\n$5\r\nLPUSH\r\n$2\r\ntl\r\n$1\r\nx\r\n*1\r\n$4\r\nEXEC\r\n",
	"*5\r\n$4\r\nHSET\r\n$2\r\nhk\r\n$1\r\nf\r\n$1\r\nv\r\n$4\r\nodd!\r\n",
	// Introspection and the registry's trivial commands.
	"*1\r\n$7\r\nCOMMAND\r\n",
	"*2\r\n$7\r\nCOMMAND\r\n$5\r\nCOUNT\r\n",
	"*3\r\n$7\r\nCOMMAND\r\n$4\r\nINFO\r\n$3\r\nget\r\n",
	"*2\r\n$7\r\nCOMMAND\r\n$5\r\nNOSUB\r\n",
	"*2\r\n$4\r\nECHO\r\n$5\r\nhello\r\n",
	"*2\r\n$4\r\nTYPE\r\n$1\r\nk\r\n*2\r\n$6\r\nGETDEL\r\n$1\r\nk\r\n",
	"*2\r\n$4\r\nINFO\r\n$12\r\ncommandstats\r\n",
	// Empty command name (a $0 bulk must not panic the dispatcher).
	"*1\r\n$0\r\n\r\n",
	// Command and subcommand names carrying CRLF: the unknown-command /
	// unknown-subcommand error must not echo them raw, or the reply line
	// splits and the stream desynchronizes (errorBody pins the fix).
	"*1\r\n$7\r\nBAD\r\nXY\r\n",
	"*2\r\n$7\r\nCOMMAND\r\n$6\r\nNO\r\nPE\r\n",
	// Empty multibulks (skipped iteratively, must terminate).
	"*0\r\n*0\r\n*-1\r\n*0\r\nPING\r\n",
	// Truncated at every interesting boundary.
	"*2\r\n$3\r\nGE",
	"*2\r\n$3\r\n",
	"*2\r\n",
	"*",
	"$",
	// Oversized and hostile headers.
	"*1048577\r\n",
	"*1048576\r\n",
	"*99999999999999999999\r\n",
	"*2\r\n$67108865\r\n",
	"*2\r\n$99999999999\r\n",
	"*-2\r\n",
	"*2\r\n$-1\r\n",
	// Malformed framing.
	"*abc\r\n",
	"*2\r\n:5\r\n",
	"*1\r\n$3\r\nabcde\r\n",
	"*1\r\n$5\r\nab\r\n",
	"PING\n",
	"*1\n$4\nPING\n",
	"\r\n",
	"\x00\xff\xfe*1\r\n",
	strings.Repeat("a", 70000) + "\r\n", // line longer than the 64K buffer
}

func FuzzReadCommand(f *testing.F) {
	for _, s := range fuzzSeedCommands {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newRespReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			args, err := r.ReadCommand()
			if err != nil {
				// Errors must be clean: EOFs or protocol errors only.
				var pe protoError
				if !errors.As(err, &pe) && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("unexpected error type %T: %v", err, err)
				}
				return
			}
			// The contract execute() relies on: at least one argument,
			// every argument within the advertised bounds.
			if len(args) == 0 {
				t.Fatal("ReadCommand returned an empty command")
			}
			if len(args) > maxArgs {
				t.Fatalf("ReadCommand returned %d args (max %d)", len(args), maxArgs)
			}
			for _, a := range args {
				if int64(len(a)) > maxBulkLen {
					t.Fatalf("ReadCommand returned a %d-byte bulk (max %d)", len(a), maxBulkLen)
				}
			}
		}
	})
}

// fuzzSeedReplies is the seed corpus for the client-side reply reader.
var fuzzSeedReplies = []string{
	"+OK\r\n",
	"-ERR unknown command\r\n",
	":1234\r\n",
	":-2\r\n",
	"$5\r\nhello\r\n",
	"$0\r\n\r\n",
	"$-1\r\n",
	"*2\r\n$1\r\na\r\n:2\r\n",
	"*0\r\n",
	"*-1\r\n",
	// Pipelined replies.
	"+OK\r\n:1\r\n$2\r\nhi\r\n",
	// Nested and deeply-nested arrays (the stack-exhaustion case).
	"*1\r\n*1\r\n*1\r\n:1\r\n",
	strings.Repeat("*1\r\n", 64) + ":1\r\n",
	// Truncated and malformed.
	"$5\r\nab",
	"*3\r\n+OK\r\n",
	":abc\r\n",
	"$abc\r\n",
	"*abc\r\n",
	"?\r\n",
	"+\r\n",
	"*99999999999999999999\r\n",
	"$99999999999\r\n",
	"+OK\n",
	"",
	"\x00\x01\x02",
}

func FuzzParseReply(f *testing.F) {
	for _, s := range fuzzSeedReplies {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			rp, err := readReply(br)
			if err != nil {
				var pe protoError
				if !errors.As(err, &pe) && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("unexpected error type %T: %v", err, err)
				}
				return
			}
			switch rp.Kind {
			case '+', '-', ':', '$', '*':
			default:
				t.Fatalf("reply with invalid kind %q", rp.Kind)
			}
		}
	})
}

// fuzzServer is the process-wide server FuzzDispatch drives: one volatile
// heap shared by every fuzz iteration (building a heap per input would
// dominate the fuzzing budget). The dispatch pipeline is concurrency-safe,
// but handles are not, so iterations serialize on mu.
var fuzzServer struct {
	once sync.Once
	mu   sync.Mutex
	srv  *Server
	hd   alloc.Handle
}

// FuzzDispatch feeds arbitrary byte streams through the real parser AND the
// real dispatch pipeline (registry lookup, arity validation, KeySpec
// locking, MULTI/EXEC queueing) against a live store, asserting the server
// side of the protocol contract: every dispatched command produces exactly
// one well-formed RESP reply — decodable by the client-side reader, no
// panic, no torn output — no matter how hostile the input.
func FuzzDispatch(f *testing.F) {
	for _, s := range fuzzSeedCommands {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input: multi-megabyte bulks only exercise the allocator, slowly")
		}
		fuzzServer.once.Do(func() {
			h, _, err := ralloc.Open("", ralloc.Config{
				SBRegion: 64 << 20,
				Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
			})
			if err != nil {
				t.Fatal(err)
			}
			a := h.AsAllocator()
			st, root := kvstore.Open(a, a.NewHandle(), 1024)
			h.SetRoot(0, root)
			fuzzServer.srv = New(a, st, Config{})
			fuzzServer.hd = a.NewHandle()
		})
		fuzzServer.mu.Lock()
		defer fuzzServer.mu.Unlock()

		var out bytes.Buffer
		w := newRespWriter(&out)
		ctx := &Ctx{s: fuzzServer.srv, hd: fuzzServer.hd, w: w, cs: &connState{}}
		r := newRespReader(bytes.NewReader(data))
		replies := 0
		for i := 0; i < 64; i++ {
			args, err := r.ReadCommand()
			if err != nil {
				break
			}
			quit := fuzzServer.srv.dispatch(ctx, args)
			replies++
			if quit {
				break
			}
		}
		if err := w.flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		br := bufio.NewReader(bytes.NewReader(out.Bytes()))
		for i := 0; i < replies; i++ {
			if _, err := readReply(br); err != nil {
				t.Fatalf("reply %d/%d is not well-formed RESP: %v\noutput: %q", i, replies, err, out.Bytes())
			}
		}
		if rest, _ := io.ReadAll(br); len(rest) != 0 {
			t.Fatalf("%d bytes of trailing garbage after %d replies: %q", len(rest), replies, rest)
		}
	})
}

// TestCommandSizeCap: a command whose bulks cumulatively exceed
// maxCommandBytes fails with a protocol error when the offending bulk's
// header is parsed, before its buffer is allocated. The cap is lowered for
// the test so it doesn't have to stream real gigabytes.
func TestCommandSizeCap(t *testing.T) {
	old := maxCommandBytes
	maxCommandBytes = 1 << 10
	defer func() { maxCommandBytes = old }()

	var b bytes.Buffer
	b.WriteString("*5\r\n")
	chunk := strings.Repeat("x", 300)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(chunk), chunk)
	}
	_, err := newRespReader(bytes.NewReader(b.Bytes())).ReadCommand()
	var pe protoError
	if !errors.As(err, &pe) || !strings.Contains(string(pe), "too large") {
		t.Fatalf("oversized command returned %v, want 'command too large' protocol error", err)
	}

	// A normal command under the real cap is untouched.
	maxCommandBytes = old
	args, err := newRespReader(strings.NewReader("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n")).ReadCommand()
	if err != nil || len(args) != 3 {
		t.Fatalf("normal command = %v, %v", args, err)
	}
}

// TestReplyDepthLimit pins the fix FuzzParseReply motivated: a hostile
// stream of nested array headers must fail with a protocol error instead of
// recursing the decoder toward stack exhaustion (a fatal, unrecoverable
// error in Go).
func TestReplyDepthLimit(t *testing.T) {
	hostile := strings.Repeat("*1\r\n", 100000) + ":1\r\n"
	_, err := readReply(bufio.NewReader(strings.NewReader(hostile)))
	var pe protoError
	if !errors.As(err, &pe) {
		t.Fatalf("deeply nested reply returned %v, want protoError", err)
	}
	// Modest nesting still decodes.
	ok := strings.Repeat("*1\r\n", 8) + ":7\r\n"
	rp, err := readReply(bufio.NewReader(strings.NewReader(ok)))
	if err != nil {
		t.Fatalf("8-deep reply failed: %v", err)
	}
	for i := 0; i < 8; i++ {
		if rp.Kind != '*' || len(rp.Elems) != 1 {
			t.Fatalf("level %d: kind %q, %d elems", i, rp.Kind, len(rp.Elems))
		}
		rp = rp.Elems[0]
	}
	if rp.Kind != ':' || rp.Int != 7 {
		t.Fatalf("innermost reply = %+v", rp)
	}
}
