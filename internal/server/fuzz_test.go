package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// Native Go fuzzing over both sides of the RESP codec. The decoder faces
// the network, so the property under test is total robustness: for ANY byte
// stream — pipelined, truncated, oversized, malformed, hostile — the parser
// must return commands/replies or a clean error, never panic, never run the
// stack out (readReply recurses per array nesting level; maxReplyDepth is
// the fix this fuzzer motivated), and never allocate unboundedly from a
// tiny header (capacity caps in ReadCommand/readReply).

// fuzzSeedCommands is the seed corpus for the server-side command reader.
var fuzzSeedCommands = []string{
	// Well-formed single and pipelined commands.
	"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n",
	"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n",
	"*1\r\n$4\r\nPING\r\n*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n*2\r\n$3\r\nGET\r\n$1\r\nk\r\n",
	"*3\r\n$6\r\nEXPIRE\r\n$1\r\nk\r\n$2\r\n10\r\n",
	"*4\r\n$6\r\nPSETEX\r\n$1\r\nk\r\n$3\r\n100\r\n$1\r\nv\r\n",
	// Inline commands and blank lines.
	"PING\r\n",
	"GET some-key\r\n",
	"   \r\n\r\nPING\r\n",
	// Empty multibulks (skipped iteratively, must terminate).
	"*0\r\n*0\r\n*-1\r\n*0\r\nPING\r\n",
	// Truncated at every interesting boundary.
	"*2\r\n$3\r\nGE",
	"*2\r\n$3\r\n",
	"*2\r\n",
	"*",
	"$",
	// Oversized and hostile headers.
	"*1048577\r\n",
	"*1048576\r\n",
	"*99999999999999999999\r\n",
	"*2\r\n$67108865\r\n",
	"*2\r\n$99999999999\r\n",
	"*-2\r\n",
	"*2\r\n$-1\r\n",
	// Malformed framing.
	"*abc\r\n",
	"*2\r\n:5\r\n",
	"*1\r\n$3\r\nabcde\r\n",
	"*1\r\n$5\r\nab\r\n",
	"PING\n",
	"*1\n$4\nPING\n",
	"\r\n",
	"\x00\xff\xfe*1\r\n",
	strings.Repeat("a", 70000) + "\r\n", // line longer than the 64K buffer
}

func FuzzReadCommand(f *testing.F) {
	for _, s := range fuzzSeedCommands {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newRespReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			args, err := r.ReadCommand()
			if err != nil {
				// Errors must be clean: EOFs or protocol errors only.
				var pe protoError
				if !errors.As(err, &pe) && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("unexpected error type %T: %v", err, err)
				}
				return
			}
			// The contract execute() relies on: at least one argument,
			// every argument within the advertised bounds.
			if len(args) == 0 {
				t.Fatal("ReadCommand returned an empty command")
			}
			if len(args) > maxArgs {
				t.Fatalf("ReadCommand returned %d args (max %d)", len(args), maxArgs)
			}
			for _, a := range args {
				if int64(len(a)) > maxBulkLen {
					t.Fatalf("ReadCommand returned a %d-byte bulk (max %d)", len(a), maxBulkLen)
				}
			}
		}
	})
}

// fuzzSeedReplies is the seed corpus for the client-side reply reader.
var fuzzSeedReplies = []string{
	"+OK\r\n",
	"-ERR unknown command\r\n",
	":1234\r\n",
	":-2\r\n",
	"$5\r\nhello\r\n",
	"$0\r\n\r\n",
	"$-1\r\n",
	"*2\r\n$1\r\na\r\n:2\r\n",
	"*0\r\n",
	"*-1\r\n",
	// Pipelined replies.
	"+OK\r\n:1\r\n$2\r\nhi\r\n",
	// Nested and deeply-nested arrays (the stack-exhaustion case).
	"*1\r\n*1\r\n*1\r\n:1\r\n",
	strings.Repeat("*1\r\n", 64) + ":1\r\n",
	// Truncated and malformed.
	"$5\r\nab",
	"*3\r\n+OK\r\n",
	":abc\r\n",
	"$abc\r\n",
	"*abc\r\n",
	"?\r\n",
	"+\r\n",
	"*99999999999999999999\r\n",
	"$99999999999\r\n",
	"+OK\n",
	"",
	"\x00\x01\x02",
}

func FuzzParseReply(f *testing.F) {
	for _, s := range fuzzSeedReplies {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			rp, err := readReply(br)
			if err != nil {
				var pe protoError
				if !errors.As(err, &pe) && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("unexpected error type %T: %v", err, err)
				}
				return
			}
			switch rp.Kind {
			case '+', '-', ':', '$', '*':
			default:
				t.Fatalf("reply with invalid kind %q", rp.Kind)
			}
		}
	})
}

// TestReplyDepthLimit pins the fix FuzzParseReply motivated: a hostile
// stream of nested array headers must fail with a protocol error instead of
// recursing the decoder toward stack exhaustion (a fatal, unrecoverable
// error in Go).
func TestReplyDepthLimit(t *testing.T) {
	hostile := strings.Repeat("*1\r\n", 100000) + ":1\r\n"
	_, err := readReply(bufio.NewReader(strings.NewReader(hostile)))
	var pe protoError
	if !errors.As(err, &pe) {
		t.Fatalf("deeply nested reply returned %v, want protoError", err)
	}
	// Modest nesting still decodes.
	ok := strings.Repeat("*1\r\n", 8) + ":7\r\n"
	rp, err := readReply(bufio.NewReader(strings.NewReader(ok)))
	if err != nil {
		t.Fatalf("8-deep reply failed: %v", err)
	}
	for i := 0; i < 8; i++ {
		if rp.Kind != '*' || len(rp.Elems) != 1 {
			t.Fatalf("level %d: kind %q, %d elems", i, rp.Kind, len(rp.Elems))
		}
		rp = rp.Elems[0]
	}
	if rp.Kind != ':' || rp.Int != 7 {
		t.Fatalf("innermost reply = %+v", rp)
	}
}
