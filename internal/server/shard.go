package server

// The cluster layer inside the server: one keyspace served from N
// independent shards, each a full allocator + kvstore + checkpoint cadence +
// expiry cycle behind its own lock block. Keys route by Redis-cluster hash
// slot (CRC16 → 16384 slots → contiguous shard ranges, internal/cluster/slot)
// in the dispatch pipeline via each command's KeySpec; multi-key commands
// and MULTI/EXEC stay atomic within one shard and reply -CROSSSLOT across
// shards; FLUSHALL/DBSIZE/SCAN/INFO fan out and merge. With one shard
// (Server.New) everything below reduces to the pre-cluster behavior:
// routing is a single branch, SAVE is the single-region checkpoint, and the
// image format is unchanged.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/cluster/shardlock"
	"repro/internal/cluster/slot"
	"repro/internal/kvstore"
)

// ShardBackend is one shard's storage surface: the open store plus the
// checkpoint entry points for that shard's region. New wraps the Config's
// single-heap checkpoint fields into one backend; NewSharded takes one
// backend per shard.
type ShardBackend struct {
	// Alloc is the allocator the Store was opened on; the server draws this
	// shard's per-connection handles from it.
	Alloc alloc.Allocator
	// Store is the shard's keyspace partition.
	Store *kvstore.Store
	// Checkpoint implements SAVE for this shard the quiesced way (the shard
	// is stalled for the full image write). See Config.Checkpoint.
	Checkpoint func() error
	// CheckpointOnline implements SAVE as an online snapshot of this shard,
	// taking precedence over Checkpoint. See Config.CheckpointOnline.
	CheckpointOnline func(fence func(cut func() error) error) (CheckpointStats, error)
	// CheckpointSteps exposes the online snapshot's phase boundaries —
	// begin (runs inside this call, concurrent with commands), then the
	// returned cut/publish/abort steps — so a multi-shard SAVE with
	// replication enabled can cut every shard under ONE fence and stamp a
	// single (id, offset) into all images. abort must be idempotent. Wired
	// to pmem.Region.BeginOnlineSave by ralloc-serve; optional otherwise.
	CheckpointSteps func() (cut func() error, publish func() (CheckpointStats, error), abort func(), err error)
	// OpenCheckpoint opens this shard's current checkpoint image for
	// streaming to a full-resyncing replica. See Config.OpenCheckpoint.
	OpenCheckpoint func() (*CheckpointImage, error)
	// CheckpointOffset stamps the replication position into this shard's
	// region before an image cut. See Config.CheckpointOffset.
	CheckpointOffset func(id, off uint64)
}

// shard is one shard's runtime state: its backend, its lock block (the
// checkpoint barrier + stripe locks — the per-shard generalization of the
// old server-wide execMu/rmwMu pair), and per-shard telemetry.
type shard struct {
	idx   int
	a     alloc.Allocator
	st    *kvstore.Store
	be    ShardBackend
	locks shardlock.Locks

	// Per-shard checkpoint and feed telemetry, surfaced by the INFO cluster
	// section and the ralloc_shard_* metric families.
	saves        atomic.Uint64
	lastSaveUnix atomic.Int64
	fenceNs      atomic.Int64
	// replWrites counts feed entries attributed to this shard. The feed's
	// wire format is unchanged (byte-compatible with single-shard peers);
	// the shard id of an entry is *derived* — both ends route the entry's
	// key through the same slot mapping — so tagging costs no bytes and
	// cannot disagree between primary and replica.
	replWrites atomic.Uint64
}

// noteSave records one completed checkpoint of this shard.
func (sh *shard) noteSave(t0 time.Time, st CheckpointStats) {
	sh.saves.Add(1)
	sh.lastSaveUnix.Store(t0.Unix())
}

// merge accumulates another shard's checkpoint stats (multi-shard SAVE
// totals for the server-level counters).
func (c *CheckpointStats) merge(o CheckpointStats) {
	c.Lines += o.Lines
	c.Recopied += o.Recopied
	c.FenceRecopied += o.FenceRecopied
	if o.Rounds > c.Rounds {
		c.Rounds = o.Rounds
	}
}

// NewSharded creates a server over N shard backends forming one keyspace.
// len(backends) must be in [1, slot.MaxShards]; with one backend the server
// behaves exactly like New. The Config's single-heap checkpoint fields
// (Checkpoint, CheckpointOnline, OpenCheckpoint, CheckpointOffset) are
// ignored — each backend carries its own.
func NewSharded(backends []ShardBackend, cfg Config) *Server {
	if len(backends) == 0 || len(backends) > slot.MaxShards {
		panic(fmt.Sprintf("server: shard count %d outside [1, %d]", len(backends), slot.MaxShards))
	}
	s := newServer(cfg)
	for i, be := range backends {
		sh := &shard{idx: i, a: be.Alloc, st: be.Store, be: be}
		s.shards = append(s.shards, sh)
		s.locksAll = append(s.locksAll, &sh.locks)
	}
	s.finishInit()
	return s
}

// shardOf maps a key to its shard. The single-shard fast path is one branch
// — no CRC — which is what keeps the dispatch overhead gate honest at N=1.
func (s *Server) shardOf(key []byte) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[slot.ShardOf(key, len(s.shards))]
}

// setShard parks the routed shard (and its per-connection allocation
// handle) in the Ctx for the handler. Test harnesses that drive dispatch
// with a hand-built Ctx carry a single handle and no vector; they only ever
// run one shard, so ctx.hd is already right.
func (ctx *Ctx) setShard(sh *shard) {
	ctx.sh = sh
	if ctx.hds != nil {
		ctx.hd = ctx.hds[sh.idx]
	}
}

// handleFor returns the connection's allocation handle for shard i (fan-out
// commands like FLUSHALL allocate on every shard).
func (ctx *Ctx) handleFor(i int) alloc.Handle {
	if ctx.hds != nil {
		return ctx.hds[i]
	}
	return ctx.hd
}

// routeKeys maps a command's declared keys to their shard. With one shard
// the answer is constant. Otherwise every key must land on the same shard —
// the Redis cluster contract — or the command is refused with -CROSSSLOT
// (hash tags, "user:{42}:a"/"user:{42}:b", are the client's tool for
// co-locating related keys). On refusal the error is already written.
func (s *Server) routeKeys(ctx *Ctx, c *Command, args [][]byte) (*shard, bool) {
	if len(s.shards) == 1 {
		return s.shards[0], true
	}
	if c.Keys.First == 1 && c.Keys.Last == 1 {
		return s.shardOf(args[1]), true
	}
	ctx.keybuf = c.Keys.keys(ctx.keybuf[:0], args)
	if len(ctx.keybuf) == 0 {
		return s.shards[0], true
	}
	sh := s.shardOf(ctx.keybuf[0])
	for _, k := range ctx.keybuf[1:] {
		if s.shardOf(k) != sh {
			ctx.w.errorKind("CROSSSLOT", "Keys in request don't hash to the same slot")
			return nil, false
		}
	}
	return sh, true
}

// hasCheckpoint reports whether any shard can serve SAVE.
func (s *Server) hasCheckpoint() bool {
	for _, sh := range s.shards {
		if sh.be.Checkpoint != nil || sh.be.CheckpointOnline != nil || sh.be.CheckpointSteps != nil {
			return true
		}
	}
	return false
}

// Save runs the configured checkpoint(s) and produces consistent persistent
// images in which every acknowledged write is present. One shard: exactly
// the old single-heap behavior (online cut under the shard's fence, or the
// quiesced stop-the-world path). Several shards without replication: each
// shard checkpoints independently, so a fence only ever stalls 1/N of the
// keyspace. Several shards with replication: all shards cut under one
// cluster-wide fence so a single (id, offset) stamps every image — without
// it the per-shard offsets would diverge and a replica restart could only
// ever full-resync. Telemetry is stamped only on success — a failed SAVE
// must not advance last_checkpoint_unix or the completion counter, or an
// operator watching "time since last checkpoint" would read a broken disk
// as a fresh checkpoint. Failures count in checkpoint_errors alone.
func (s *Server) Save() error {
	if !s.hasCheckpoint() {
		return errors.New("server: no checkpoint configured")
	}
	t0 := time.Now()
	var agg CheckpointStats
	var err error
	if len(s.shards) > 1 && s.repl != nil {
		agg, err = s.saveGlobalCut(t0)
	} else {
		agg, err = s.saveIndependent(t0)
	}
	if err != nil {
		s.saveErrs.Add(1)
		return err
	}
	total := time.Since(t0)
	s.saveTotalNs.Store(int64(total))
	s.lastSaveUnix.Store(t0.Unix())
	s.saves.Add(1)
	s.saveLines.Add(agg.Lines)
	s.saveRecopied.Add(agg.Recopied)
	s.saveFenceRecopied.Store(agg.FenceRecopied)
	s.saveRounds.Store(int64(agg.Rounds))
	s.events.Record("checkpoint", t0, total)
	return nil
}

// saveIndependent checkpoints each shard on its own fence, sequentially.
// The independence is the point: every other shard keeps serving writes at
// full speed while one shard's fence runs, so the cluster-wide stall budget
// of a SAVE is one shard's fence at a time — 1/N of the old single-heap
// stop surface.
func (s *Server) saveIndependent(t0 time.Time) (CheckpointStats, error) {
	var agg CheckpointStats
	for _, sh := range s.shards {
		st, err := s.saveShard(sh, t0)
		if err != nil {
			return agg, fmt.Errorf("shard %d: %w", sh.idx, err)
		}
		sh.noteSave(t0, st)
		agg.merge(st)
	}
	return agg, nil
}

// saveShard checkpoints one shard: online when the backend supports it,
// quiesced otherwise.
func (s *Server) saveShard(sh *shard, t0 time.Time) (CheckpointStats, error) {
	if sh.be.CheckpointOnline != nil {
		return sh.be.CheckpointOnline(func(cut func() error) error {
			return s.shardFence(sh, t0, cut)
		})
	}
	if sh.be.Checkpoint == nil {
		return CheckpointStats{}, errors.New("no checkpoint configured")
	}
	sh.locks.Exec.Lock()
	defer sh.locks.Exec.Unlock()
	quiesce := time.Since(t0)
	s.saveQuiesceNs.Store(int64(quiesce))
	s.events.Record("checkpoint-quiesce", t0, quiesce)
	s.stampShardOffset(sh)
	return CheckpointStats{}, sh.be.Checkpoint()
}

// shardFence is one shard's online cut-over: the write side of that shard's
// command barrier, the replication-offset stamp, the final delta (cut), and
// release. Commands on this shard are excluded only for this window; other
// shards never notice. The fence duration is recorded as the
// "checkpoint-fence" LATENCY event and in the shard's own gauge.
func (s *Server) shardFence(sh *shard, t0 time.Time, cut func() error) error {
	sh.locks.Exec.Lock()
	defer sh.locks.Exec.Unlock()
	s.saveQuiesceNs.Store(int64(time.Since(t0)))
	// The replication offset is stamped inside the fence: no write can land
	// on this shard between the stamp and the cut, so the image's data
	// corresponds exactly to the stamped feed position.
	s.stampShardOffset(sh)
	tf := time.Now()
	err := cut()
	fence := time.Since(tf)
	s.saveFenceNs.Store(int64(fence))
	sh.fenceNs.Store(int64(fence))
	s.events.Record("checkpoint-fence", tf, fence)
	return err
}

// stampShardOffset pins the feed position into the shard's region before an
// image cut. Runs under the barrier's write side (shardFence, saveShard's
// quiesced path, or the global fence), so the stamped offset is exactly the
// feed position the image's data corresponds to.
func (s *Server) stampShardOffset(sh *shard) {
	if s.repl != nil && sh.be.CheckpointOffset != nil {
		sh.be.CheckpointOffset(s.repl.feed.ID(), s.repl.feed.Offset())
	}
}

// onlineSaveSteps holds one shard's armed snapshot between the global
// begin and its cut/publish.
type onlineSaveSteps struct {
	cut     func() error
	publish func() (CheckpointStats, error)
	abort   func()
}

// saveGlobalCut is the multi-shard SAVE with replication enabled: begin
// every shard's online snapshot (full-image copy + delta rounds, all
// concurrent with traffic), then take every shard's barrier write side in
// ascending order — the only cluster-wide fence in the system — stamp ONE
// (id, offset) pair into every region while the feed is frozen, cut every
// shard, release, and publish. The N images therefore represent a single
// point in the global command order, which is what lets a restarted replica
// partial-resync from any of them with one offset.
func (s *Server) saveGlobalCut(t0 time.Time) (CheckpointStats, error) {
	var agg CheckpointStats
	all := make([]onlineSaveSteps, 0, len(s.shards))
	abortFrom := func(i int) {
		for _, st := range all[i:] {
			st.abort()
		}
	}
	for _, sh := range s.shards {
		if sh.be.CheckpointSteps == nil {
			abortFrom(0)
			return agg, fmt.Errorf("shard %d: online checkpoint steps not configured", sh.idx)
		}
		cut, publish, abort, err := sh.be.CheckpointSteps()
		if err != nil {
			abortFrom(0)
			return agg, fmt.Errorf("shard %d: %w", sh.idx, err)
		}
		all = append(all, onlineSaveSteps{cut: cut, publish: publish, abort: abort})
	}

	shardlock.ExecLockAll(s.locksAll)
	s.saveQuiesceNs.Store(int64(time.Since(t0)))
	for _, sh := range s.shards {
		s.stampShardOffset(sh)
	}
	tf := time.Now()
	var cutErr error
	for _, st := range all {
		if cutErr = st.cut(); cutErr != nil {
			break
		}
	}
	fence := time.Since(tf)
	shardlock.ExecUnlockAll(s.locksAll)
	s.saveFenceNs.Store(int64(fence))
	for _, sh := range s.shards {
		sh.fenceNs.Store(int64(fence))
	}
	s.events.Record("checkpoint-fence", tf, fence)
	if cutErr != nil {
		abortFrom(0) // abort is idempotent; already-cut shards just discard their temp image
		return agg, cutErr
	}

	for i, st := range all {
		cst, err := st.publish()
		if err != nil {
			abortFrom(i + 1)
			return agg, fmt.Errorf("shard %d: %w", i, err)
		}
		s.shards[i].noteSave(t0, cst)
		agg.merge(cst)
	}
	return agg, nil
}
