package server

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestE2ETTLSIGKILLRestart is the acceptance e2e for the expiration
// subsystem, across a real process kill: build cmd/ralloc-serve, drive 10k
// pipelined ops with mixed TTLs (immortal, 1h, 2h, and 400ms records), SAVE,
// let the short TTLs lapse, SIGKILL, restart — then every expired key must
// report absent (never resurrected, whether or not its corpse was
// reclaimed), every unexpired key must retain its exact value, and the
// long-TTL keys must report a *remaining* TTL: positive, under the original,
// still counting down across the crash because the persisted deadline is
// absolute wall-clock time.
func TestE2ETTLSIGKILLRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping subprocess e2e in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ralloc-serve")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/ralloc-serve")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ralloc-serve: %v\n%s", err, out)
	}

	heapPath := filepath.Join(dir, "kv.heap")
	sock := filepath.Join(dir, "kv.sock")
	args := []string{"-heap", heapPath, "-unix", sock, "-heapmb", "64", "-buckets", "8192",
		"-expire-cycle", "20ms", "-expire-sample", "200"}

	serve := func() *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting ralloc-serve: %v", err)
		}
		return cmd
	}
	dialRetry := func() *Client {
		deadline := time.Now().Add(10 * time.Second)
		for {
			c, err := DialTimeout("unix", sock, time.Second)
			if err == nil {
				return c
			}
			if time.Now().After(deadline) {
				t.Fatalf("server did not come up: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	cmd := serve()
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}()
	c := dialRetry()

	// 10k pipelined ops, four interleaved classes of key lifetime.
	const total, batch = 10000, 250
	val := func(i int) string { return fmt.Sprintf("val-%05d", i) }
	send := func(i int) error {
		switch i % 4 {
		case 0: // immortal
			return c.Send("SET", fmt.Sprintf("live-%05d", i), val(i))
		case 1: // long TTL (1h, milliseconds)
			return c.Send("PSETEX", fmt.Sprintf("keep-%05d", i), "3600000", val(i))
		case 2: // short TTL: lapses before the restart check
			return c.Send("PSETEX", fmt.Sprintf("gone-%05d", i), "400", val(i))
		default: // long TTL (2h, seconds resolution)
			return c.Send("SETEX", fmt.Sprintf("keepsec-%05d", i), "7200", val(i))
		}
	}
	for base := 0; base < total; base += batch {
		for i := base; i < base+batch; i++ {
			if err := send(i); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < batch; i++ {
			rp, err := c.Recv()
			if err != nil || rp.Str != "OK" {
				t.Fatalf("pipelined reply = %+v, %v", rp, err)
			}
		}
	}
	if rp, err := c.Do("SAVE"); err != nil || rp.Str != "OK" {
		t.Fatalf("SAVE = %+v, %v", rp, err)
	}

	// Let every short TTL lapse (the active cycle reclaims some corpses,
	// lazy expiry covers the rest), then yank the process.
	time.Sleep(600 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	c.Close()

	// Restart from the checkpoint: dirty open, GC recovery, keep serving.
	cmd2 := serve()
	defer func() { cmd2.Process.Kill() }()
	c2 := dialRetry()
	defer c2.Close()

	for i := 0; i < total; i++ {
		key := ""
		switch i % 4 {
		case 0:
			key = fmt.Sprintf("live-%05d", i)
		case 1:
			key = fmt.Sprintf("keep-%05d", i)
		case 2:
			key = fmt.Sprintf("gone-%05d", i)
		default:
			key = fmt.Sprintf("keepsec-%05d", i)
		}
		if i%4 == 2 {
			// Expired while down (the checkpoint predates the deadline,
			// the restart postdates it): absent, no TTL, never a value.
			if v, ok, err := c2.Get(key); err != nil {
				t.Fatal(err)
			} else if ok {
				t.Fatalf("expired key %s resurrected as %q after SIGKILL restart", key, v)
			}
			if n, err := c2.PTTL(key); err != nil || n != -2 {
				t.Fatalf("PTTL %s = %d, %v (want -2)", key, n, err)
			}
			continue
		}
		v, ok, err := c2.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != val(i) {
			t.Fatalf("unexpired key %s = (%q,%v) after restart, want %q", key, v, ok, val(i))
		}
		switch i % 4 {
		case 0:
			if n, err := c2.TTL(key); err != nil || n != -1 {
				t.Fatalf("TTL %s = %d, %v (want -1)", key, n, err)
			}
		case 1:
			// Remaining TTL: positive, strictly below the original 1h
			// (at least the 600ms pre-kill sleep elapsed on the wall
			// clock the stamp is measured against).
			if n, err := c2.PTTL(key); err != nil || n <= 0 || n > 3_600_000-500 {
				t.Fatalf("PTTL %s = %d, %v (want 0 < ttl <= %d)", key, n, err, 3_600_000-500)
			}
		default:
			if n, err := c2.TTL(key); err != nil || n <= 0 || n > 7200 {
				t.Fatalf("TTL %s = %d, %v (want 0 < ttl <= 7200)", key, n, err)
			}
		}
	}

	// The active cycle keeps reclaiming the 2500 expired corpses after the
	// restart: DBSIZE must drain to exactly the 7500 live records.
	deadline := time.Now().Add(15 * time.Second)
	for {
		n, err := c2.DBSize()
		if err != nil {
			t.Fatal(err)
		}
		if n == total-total/4 {
			break
		}
		if n < int64(total-total/4) {
			t.Fatalf("DBSIZE = %d: active expiry reclaimed a live key", n)
		}
		if time.Now().After(deadline) {
			t.Fatalf("DBSIZE stuck at %d, want %d", n, total-total/4)
		}
		time.Sleep(50 * time.Millisecond)
	}

	if rp, err := c2.Do("SHUTDOWN"); err != nil || rp.Str != "OK" {
		t.Fatalf("SHUTDOWN = %+v, %v", rp, err)
	}
	waitExit(t, cmd2, 15*time.Second)
}
