// Package server puts back the network layer the paper's application study
// removed (§6.3 runs memcached "as a library ... instead of sending requests
// over a socket"): a concurrent TCP/unix-socket server that speaks a RESP2
// (Redis serialization protocol) subset over the persistent kvstore, with
// per-connection goroutines and request pipelining. The entire dataset lives
// in the recoverable ralloc heap, so a crashed server restarts through
// Open → Recover → AttachBounded and keeps serving — see crash_test.go and
// cmd/ralloc-serve.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Protocol limits: a garbage or hostile header must not make the server
// allocate unboundedly.
const (
	maxArgs    = 1 << 20 // arguments per command
	maxBulkLen = 64 << 20 // bytes per bulk string
	maxLineLen = 64 << 10 // bytes per protocol line
	// maxReplyDepth bounds nested array replies. readReply recurses per
	// nesting level, and Go stack exhaustion is a fatal error, not a
	// recoverable panic — FuzzParseReply found that a stream of "*1\r\n"
	// headers (4 bytes per level) could otherwise run the decoder out of
	// stack. Real replies in this protocol subset nest at most 1 deep.
	maxReplyDepth = 32
)

// maxCommandBytes caps one command's cumulative declared bulk payload:
// maxArgs×maxBulkLen individually-legal bulks would otherwise let a single
// command demand terabytes of transient allocation before dispatch (or the
// transaction byte meter) ever sees it. The declared length is checked
// before each bulk's buffer is allocated. A var, not a const, so the
// oversized-command test doesn't need to stream real gigabytes.
var maxCommandBytes = int64(512 << 20)

// protoError is a client-visible protocol violation: the server reports it
// with an -ERR reply and closes the connection (the stream may be
// desynchronized).
type protoError string

func (e protoError) Error() string { return string(e) }

// respReader decodes RESP2 commands from a connection.
type respReader struct {
	br *bufio.Reader
}

func newRespReader(r io.Reader) *respReader {
	// The buffer bounds inline-command lines: readLine treats a line that
	// overflows it as a protocol error, so it must match maxLineLen.
	return &respReader{br: bufio.NewReaderSize(r, maxLineLen)}
}

// readLine reads one CRLF-terminated line, excluding the terminator.
func (r *respReader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, protoError("protocol line too long")
		}
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, protoError("line not CRLF-terminated")
	}
	return line[:len(line)-2], nil
}

// ReadCommand reads one client command: either a RESP array of bulk strings
// (what real clients send) or an inline command (a plain text line, for
// telnet/netcat debugging). The returned slices are freshly allocated.
// Empty commands (*0, *-1, blank inline lines) are skipped iteratively —
// never recursively, so a stream of them cannot grow the stack.
func (r *respReader) ReadCommand() ([][]byte, error) {
	for {
		first, err := r.br.Peek(1)
		if err != nil {
			return nil, err
		}
		if first[0] != '*' {
			args, err := r.readInline()
			if err != nil {
				return nil, err
			}
			if args == nil {
				continue // blank line
			}
			return args, nil
		}
		header, err := r.readLine()
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(string(header[1:]), 10, 64)
		if err != nil {
			return nil, protoError("invalid multibulk length")
		}
		if n <= 0 {
			continue // Redis treats *0 and *-1 as an empty command
		}
		if n > maxArgs {
			return nil, protoError("invalid multibulk length")
		}
		// Capacity is capped: a hostile "*1048576" header is 12 bytes on the
		// wire and must not reserve megabytes up front. append grows the
		// slice only as real argument data actually arrives.
		args := make([][]byte, 0, min(n, 64))
		var total int64
		for i := int64(0); i < n; i++ {
			line, err := r.readLine()
			if err != nil {
				return nil, err
			}
			if len(line) == 0 || line[0] != '$' {
				return nil, protoError("expected bulk string")
			}
			blen, err := strconv.ParseInt(string(line[1:]), 10, 64)
			if err != nil || blen < 0 || blen > maxBulkLen {
				return nil, protoError("invalid bulk length")
			}
			if total += blen; total > maxCommandBytes {
				return nil, protoError("command too large")
			}
			buf := make([]byte, blen+2)
			if _, err := io.ReadFull(r.br, buf); err != nil {
				return nil, err
			}
			if buf[blen] != '\r' || buf[blen+1] != '\n' {
				return nil, protoError("bulk not CRLF-terminated")
			}
			args = append(args, buf[:blen])
		}
		return args, nil
	}
}

// readInline parses a whitespace-separated plain-text command line; a blank
// line returns (nil, nil) for the caller to skip.
func (r *respReader) readInline() ([][]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(line)
	if len(fields) == 0 {
		return nil, nil
	}
	args := make([][]byte, len(fields))
	for i, f := range fields {
		args[i] = append([]byte(nil), f...)
	}
	return args, nil
}

// buffered reports whether more request bytes are already available without
// blocking — the pipelining signal: replies are batched until the input
// drains.
func (r *respReader) buffered() bool { return r.br.Buffered() > 0 }

// respWriter encodes RESP2 replies. errs counts error replies written — the
// stats middleware diffs it around a handler call to attribute errors to
// commands without the handler reporting them separately.
type respWriter struct {
	bw   *bufio.Writer
	errs uint64
}

func newRespWriter(w io.Writer) *respWriter {
	return &respWriter{bw: bufio.NewWriterSize(w, 16<<10)}
}

func (w *respWriter) simple(s string) { w.bw.WriteByte('+'); w.bw.WriteString(s); w.crlf() }

// maxErrorBodyLen caps how many message bytes an error reply echoes: error
// text may quote client bytes (an unknown command name can be a bulk up to
// maxBulkLen), and the reply must stay one short line.
const maxErrorBodyLen = 256

func (w *respWriter) errorf(format string, args ...any) {
	w.errs++
	w.bw.WriteString("-ERR ")
	w.errorBody(fmt.Sprintf(format, args...))
	w.crlf()
}

// errorKind writes an error reply with a non-ERR prefix (Redis uses the
// first word as a machine-readable error class, e.g. EXECABORT).
func (w *respWriter) errorKind(kind, msg string) {
	w.errs++
	w.bw.WriteByte('-')
	w.bw.WriteString(kind)
	w.bw.WriteByte(' ')
	w.errorBody(msg)
	w.crlf()
}

// errorEcho prepares client bytes for quoting inside an error message:
// truncated to the reply cap *before* the lowercase copy, so echoing a
// hostile maxBulkLen name costs a short copy, not megabytes of transient
// garbage. errorBody sanitizes and re-caps the final rendering.
func errorEcho(b []byte) string {
	if len(b) > maxErrorBodyLen {
		b = b[:maxErrorBodyLen]
	}
	return strings.ToLower(string(b))
}

// errorBody writes an error message body made wire-safe. Error text is the
// one reply channel that echoes raw client bytes (unknown command and
// subcommand names), and an error reply is a bare CRLF-terminated line — a
// CR or LF inside the message would terminate the reply early and
// desynchronize every reply after it (FuzzDispatch's well-formed-reply
// invariant). Control bytes are replaced with spaces and the body is capped
// at maxErrorBodyLen, the same containment Redis applies when echoing
// unknown-command arguments.
func (w *respWriter) errorBody(msg string) {
	truncated := false
	if len(msg) > maxErrorBodyLen {
		msg, truncated = msg[:maxErrorBodyLen], true
	}
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c < 0x20 || c == 0x7f {
			c = ' '
		}
		w.bw.WriteByte(c)
	}
	if truncated {
		w.bw.WriteString("...")
	}
}
func (w *respWriter) integer(n int64) {
	w.bw.WriteByte(':')
	w.bw.WriteString(strconv.FormatInt(n, 10))
	w.crlf()
}
func (w *respWriter) bulk(b []byte) {
	w.bw.WriteByte('$')
	w.bw.WriteString(strconv.Itoa(len(b)))
	w.crlf()
	w.bw.Write(b)
	w.crlf()
}
func (w *respWriter) nilBulk()  { w.bw.WriteString("$-1"); w.crlf() }
func (w *respWriter) nilArray() { w.bw.WriteString("*-1"); w.crlf() }
func (w *respWriter) arrayHeader(n int) {
	w.bw.WriteByte('*')
	w.bw.WriteString(strconv.Itoa(n))
	w.crlf()
}
func (w *respWriter) crlf()        { w.bw.WriteString("\r\n") }
func (w *respWriter) flush() error { return w.bw.Flush() }

// ----------------------------------------------------------------------
// Reply decoding (client side).

// Reply is one decoded RESP value.
type Reply struct {
	Kind  byte // '+', '-', ':', '$', '*'
	Str   string
	Int   int64
	Bulk  []byte // nil bulk replies leave this nil with Nil set
	Nil   bool
	Elems []Reply
}

// Err returns the reply's error, if it is an error reply.
func (rp Reply) Err() error {
	if rp.Kind == '-' {
		return errors.New(rp.Str)
	}
	return nil
}

// Text renders the reply's payload as a string (simple string, error text,
// integer, or bulk body).
func (rp Reply) Text() string {
	switch rp.Kind {
	case '+', '-':
		return rp.Str
	case ':':
		return strconv.FormatInt(rp.Int, 10)
	case '$':
		return string(rp.Bulk)
	}
	return ""
}

// readReply decodes one RESP reply from br.
func readReply(br *bufio.Reader) (Reply, error) { return readReplyDepth(br, 0) }

func readReplyDepth(br *bufio.Reader, depth int) (Reply, error) {
	if depth > maxReplyDepth {
		return Reply{}, protoError("reply nested too deeply")
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return Reply{}, err
	}
	if len(line) < 3 || line[len(line)-2] != '\r' {
		return Reply{}, protoError("malformed reply line")
	}
	body := line[1 : len(line)-2]
	switch line[0] {
	case '+':
		return Reply{Kind: '+', Str: body}, nil
	case '-':
		return Reply{Kind: '-', Str: body}, nil
	case ':':
		n, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return Reply{}, protoError("malformed integer reply")
		}
		return Reply{Kind: ':', Int: n}, nil
	case '$':
		n, err := strconv.ParseInt(body, 10, 64)
		if err != nil || n > maxBulkLen {
			return Reply{}, protoError("malformed bulk length")
		}
		if n < 0 {
			return Reply{Kind: '$', Nil: true}, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(br, buf); err != nil {
			return Reply{}, err
		}
		return Reply{Kind: '$', Bulk: buf[:n]}, nil
	case '*':
		n, err := strconv.ParseInt(body, 10, 64)
		if err != nil || n > maxArgs {
			return Reply{}, protoError("malformed array length")
		}
		if n < 0 {
			return Reply{Kind: '*', Nil: true}, nil
		}
		elems := make([]Reply, 0, min(n, 64))
		for i := int64(0); i < n; i++ {
			e, err := readReplyDepth(br, depth+1)
			if err != nil {
				return Reply{}, err
			}
			elems = append(elems, e)
		}
		return Reply{Kind: '*', Elems: elems}, nil
	}
	return Reply{}, protoError("unknown reply type")
}
