package server

import (
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/kvstore"
)

// Config tunes a Server.
type Config struct {
	// MaxConns caps simultaneously served connections; further accepted
	// connections wait for a slot. 0 means unlimited.
	MaxConns int
	// Checkpoint, if non-nil, implements the SAVE command. The server
	// quiesces all command execution before invoking it, so it observes
	// (and may persist) a consistent heap image.
	Checkpoint func() error
	// OnShutdown, if non-nil, is invoked (once) when a client issues
	// SHUTDOWN, after the +OK reply is flushed. The owner is expected to
	// call Shutdown and close the heap.
	OnShutdown func()
	// Info, if non-nil, contributes extra sections to the INFO reply
	// (heap statistics, say).
	Info func() string
	// ActiveExpiryInterval, if positive, starts the active expiry cycle: a
	// goroutine that every interval samples TTL'd keys and reclaims the
	// expired ones. It runs under the same barrier as commands (execMu
	// read side), so a SAVE checkpoint never captures a half-done
	// reclamation. Zero disables the cycle; reads still apply lazy expiry,
	// so correctness is unaffected — only space reclamation is.
	ActiveExpiryInterval time.Duration
	// ActiveExpirySample caps how many expired keys one cycle reclaims
	// (default 20, Redis-like), bounding the barrier hold time.
	ActiveExpirySample int
	// Middleware wraps every command handler at construction time, outside
	// the built-in stats middleware, in slice order (first entry outermost).
	// Use it for cross-cutting concerns — auditing, slowlog-style tracing —
	// without touching the command table.
	Middleware []Middleware
}

// ErrServerClosed is returned by Serve after Shutdown or Abort.
var ErrServerClosed = errors.New("server: closed")

// Server serves the RESP2 subset over a kvstore. One goroutine per
// connection; pipelined commands are answered in order with batched writes.
type Server struct {
	a   alloc.Allocator
	st  *kvstore.Store
	cfg Config

	// execMu is the checkpoint barrier: every command batch runs under
	// RLock, SAVE under Lock, so a checkpoint never captures a half-done
	// store operation.
	execMu sync.RWMutex

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	handles   []alloc.Handle // pool: bounds handle count by peak concurrency
	closed    bool

	wg   sync.WaitGroup
	sem  chan struct{} // MaxConns slots (nil = unlimited)
	once sync.Once     // OnShutdown

	stopExpiry chan struct{}  // closed on Shutdown/Abort (nil: cycle off)
	expiryWG   sync.WaitGroup // joins the expiry goroutine

	start        time.Time
	accepted     atomic.Uint64
	commands     atomic.Uint64
	expiryCycles atomic.Uint64

	// cmds is the registry bound to this server: each table entry wrapped
	// in the stats middleware (plus Config.Middleware) with its own
	// counters. Built once in New; read-only afterwards.
	cmds map[string]*boundCmd

	// rmwMu are the striped key locks the dispatch pipeline acquires for
	// FlagWrite commands according to their declared KeySpec (all stripes
	// for FlagLockAll), always in ascending stripe order so multi-key
	// commands and EXEC's union locking are deadlock-free.
	rmwMu [64]sync.Mutex
}

// New creates a server over an open store. The allocator must be the one the
// store was opened on; the server draws per-connection handles from it.
func New(a alloc.Allocator, st *kvstore.Store, cfg Config) *Server {
	s := &Server{
		a:         a,
		st:        st,
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		start:     time.Now(),
	}
	s.bindCommands()
	if cfg.MaxConns > 0 {
		s.sem = make(chan struct{}, cfg.MaxConns)
	}
	if cfg.ActiveExpiryInterval > 0 {
		s.stopExpiry = make(chan struct{})
		s.expiryWG.Add(1)
		go s.expiryLoop()
	}
	return s
}

// expiryLoop is the active expiry cycle: every interval it reclaims up to
// ActiveExpirySample expired records. Each round runs under the execMu read
// side — concurrent with ordinary commands, quiesced by SAVE — so checkpoint
// images never contain a torn reclamation, and the cycle's frees stop before
// Shutdown/Abort return (no goroutine touches the heap afterwards).
func (s *Server) expiryLoop() {
	defer s.expiryWG.Done()
	sample := s.cfg.ActiveExpirySample
	if sample <= 0 {
		sample = 20
	}
	hd := s.a.NewHandle()
	t := time.NewTicker(s.cfg.ActiveExpiryInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopExpiry:
			return
		case <-t.C:
			s.reclaimUnderBarrier(hd, sample)
			s.expiryCycles.Add(1)
		}
	}
}

// reclaimUnderBarrier runs one reclamation round under the checkpoint
// barrier's read side, releasing it via defer so a panicking reclaim (a
// corrupt free chain, say) cannot wedge SAVE behind a dead expiry goroutine.
func (s *Server) reclaimUnderBarrier(hd alloc.Handle, sample int) {
	s.execMu.RLock()
	defer s.execMu.RUnlock()
	s.st.ReclaimExpired(hd, sample)
}

// Serve accepts connections on l until the server shuts down. It always
// closes l; after Shutdown or Abort it returns ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	if !s.addListener(l) {
		l.Close()
		return ErrServerClosed
	}
	defer func() {
		s.removeListener(l)
		l.Close()
	}()

	var backoff time.Duration
	for {
		c, err := l.Accept()
		if err != nil {
			if s.isClosed() {
				return ErrServerClosed
			}
			// Transient accept failures (EMFILE under a connection
			// burst, say) back off and retry rather than killing the
			// listener, like net/http.
			if isTemporary(err) {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// addListener registers l for Shutdown/Abort to close; it reports false
// (without registering) when the server is already closed.
func (s *Server) addListener(l net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners[l] = struct{}{}
	return true
}

func (s *Server) removeListener(l net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, l)
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// isTemporary reports whether an accept error is worth retrying. The
// net.Error.Temporary contract is deprecated for general errors but remains
// exactly right for accept(2) resource-exhaustion failures.
func isTemporary(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		//lint:ignore SA1019 accept-loop retry is Temporary's surviving use
		return ne.Temporary()
	}
	return false
}

// getHandle takes an allocation handle from the pool, minting one if empty.
// Minting happens outside the server mutex: NewHandle may take allocator
// locks of its own, and the pool pop is the only part that needs s.mu.
func (s *Server) getHandle() alloc.Handle {
	if hd, ok := s.pooledHandle(); ok {
		return hd
	}
	return s.a.NewHandle()
}

func (s *Server) pooledHandle() (alloc.Handle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.handles); n > 0 {
		hd := s.handles[n-1]
		s.handles = s.handles[:n-1]
		return hd, true
	}
	var none alloc.Handle
	return none, false
}

func (s *Server) putHandle(hd alloc.Handle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.handles = append(s.handles, hd)
	}
}

// handleConn runs one connection's read-execute-reply loop.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	if s.sem != nil {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}
	if !s.trackConn(c) {
		c.Close()
		return
	}
	defer func() {
		s.untrackConn(c)
		c.Close()
	}()

	hd := s.getHandle()
	defer s.putHandle(hd)

	// Handler panics are deliberately NOT recovered here: a panic that
	// escapes dispatch may originate below the server — an allocator
	// double-free or corrupt free chain fires inside dstruct/kvstore
	// critical sections whose internal mutexes are not defer-released, and
	// this connection's pooled alloc.Handle may hold a torn thread-local
	// cache — so "contain and keep serving" would trade a clean fail-stop
	// for a wedged or silently corrupting process. The heap is
	// crash-consistent at every instant, so process death is the designed
	// containment: restart runs Open→Recover and resumes. Dispatch still
	// releases the server's own stripe locks and the execMu read side via
	// defer during unwinding, so a panic recovered *above* dispatch (an
	// embedder wrapping Serve, a test or fuzz harness driving dispatch
	// directly) observes no leaked server locks.
	r := newRespReader(c)
	w := newRespWriter(c)
	// One Ctx and one transaction state per connection, reused across
	// dispatches so the steady-state pipeline allocates nothing.
	ctx := &Ctx{s: s, hd: hd, w: w, cs: &connState{}}
	for {
		args, err := r.ReadCommand()
		if err != nil {
			var pe protoError
			if errors.As(err, &pe) {
				w.errorf("%s", string(pe))
				w.flush()
			}
			return
		}
		s.commands.Add(1)
		quit := s.dispatchBarrier(ctx, args)
		// Pipelining: only flush when the input is drained, so a burst of
		// commands gets one batched reply write.
		if quit || !r.buffered() {
			if err := w.flush(); err != nil {
				return
			}
		}
		if quit {
			s.once.Do(func() {
				if s.cfg.OnShutdown != nil {
					// The owner's shutdown path takes execMu (via Save) and
					// waits for connections; run it outside both.
					go s.cfg.OnShutdown()
				}
			})
			return
		}
	}
}

// trackConn registers a live connection for Shutdown to drain; it reports
// false (without registering) when the server is already closed.
func (s *Server) trackConn(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

func (s *Server) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// dispatchBarrier runs one dispatch under the checkpoint barrier's read
// side, releasing it via defer: a panicking handler must not leave the read
// lock held, which would wedge every future SAVE (and Close) behind a dead
// connection. cmdSave's RUnlock/RLock pair around the write-side acquisition
// still balances against this defer.
func (s *Server) dispatchBarrier(ctx *Ctx, args [][]byte) bool {
	s.execMu.RLock()
	defer s.execMu.RUnlock()
	return s.dispatch(ctx, args)
}

// deadlineFrom converts a relative TTL (in seconds when seconds is true,
// milliseconds otherwise) into an absolute unix-millisecond deadline,
// saturating instead of overflowing on hostile magnitudes. The result is
// never 0 — that is the "immortal" sentinel — so a non-positive TTL maps to
// a deadline firmly in the past (immediately expired, Redis-observable as
// the key being gone).
func deadlineFrom(now, d int64, seconds bool) int64 {
	if seconds {
		const maxSec = math.MaxInt64 / 1000
		if d > maxSec {
			d = maxSec
		} else if d < -maxSec {
			d = -maxSec
		}
		d *= 1000
	}
	at := now + d
	if d > 0 && at < now {
		at = math.MaxInt64
	}
	if at <= 0 {
		at = 1
	}
	return at
}

// info renders the INFO reply. census includes the per-type keyspace
// counts, which cost a full map walk under the stripe locks — a monitoring
// loop polling "INFO server" once a second must not pay O(keyspace) per
// poll, so cmdInfo requests the census only when the keyspace section (or
// the whole block) is actually being returned.
func (s *Server) info(census bool) string {
	st := s.st.Stats()
	nconns := s.connCount()
	var b strings.Builder
	fmt.Fprintf(&b, "# Server\r\n")
	fmt.Fprintf(&b, "allocator:%s\r\n", s.a.Name())
	fmt.Fprintf(&b, "uptime_in_seconds:%d\r\n", int(time.Since(s.start).Seconds()))
	fmt.Fprintf(&b, "connected_clients:%d\r\n", nconns)
	fmt.Fprintf(&b, "total_connections_received:%d\r\n", s.accepted.Load())
	fmt.Fprintf(&b, "total_commands_processed:%d\r\n", s.commands.Load())
	fmt.Fprintf(&b, "# Keyspace\r\n")
	fmt.Fprintf(&b, "records:%d\r\n", s.st.Len())
	if census {
		// Per-type census of the live keyspace (the walk skips stamp-
		// expired corpses, so these can sum below records until the cycle
		// reclaims them).
		tc := s.st.CountTypes()
		fmt.Fprintf(&b, "keys_string:%d\r\nkeys_hash:%d\r\nkeys_list:%d\r\n", tc.Strings, tc.Hashes, tc.Lists)
	}
	fmt.Fprintf(&b, "bounded:%v\r\n", s.st.Bounded())
	fmt.Fprintf(&b, "bytes:%d\r\n", st.Bytes)
	fmt.Fprintf(&b, "hits:%d\r\nmisses:%d\r\nsets:%d\r\ndeletes:%d\r\nevictions:%d\r\n",
		st.Hits, st.Misses, st.Sets, st.Deletes, st.Evictions)
	fmt.Fprintf(&b, "# Expires\r\n")
	fmt.Fprintf(&b, "keys_with_ttl:%d\r\nexpired_lazy:%d\r\nexpired_reclaimed:%d\r\nexpiry_cycles:%d\r\n",
		st.TTLd, st.Expired, st.Reclaimed, s.expiryCycles.Load())
	if s.cfg.Info != nil {
		b.WriteString(s.cfg.Info())
	}
	return b.String()
}

// commandStats renders the INFO commandstats section from the per-command
// counters the stats layer maintains: calls, errors, and a latency estimate
// from the 1-in-64 sample (usec_per_call is the sampled mean; usec scales
// it by the call count). Only commands that have been called appear, in
// registry (name) order.
func (s *Server) commandStats() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Commandstats\r\n")
	for _, c := range commandList {
		bc := s.cmds[c.Name]
		calls := bc.stats.calls.Load()
		if calls == 0 {
			continue
		}
		var perCall float64
		if n := bc.stats.sampled.Load(); n > 0 {
			perCall = float64(bc.stats.sampledNs.Load()) / float64(n) / 1e3
		}
		fmt.Fprintf(&b, "cmdstat_%s:calls=%d,usec=%.0f,usec_per_call=%.2f,errors=%d\r\n",
			strings.ToLower(c.Name), calls, perCall*float64(calls), perCall, bc.stats.errs.Load())
	}
	return b.String()
}

// Save quiesces command execution and runs the configured checkpoint: the
// persistent image written is a consistent snapshot in which every
// acknowledged write is present.
func (s *Server) Save() error {
	if s.cfg.Checkpoint == nil {
		return errors.New("server: no checkpoint configured")
	}
	s.execMu.Lock()
	defer s.execMu.Unlock()
	return s.cfg.Checkpoint()
}

// Shutdown gracefully drains the server: listeners close immediately, each
// connection's in-flight commands are answered, and connections finish when
// their read side goes idle past the deadline. Connections still open after
// 2×timeout are force-closed. Safe to call more than once.
func (s *Server) Shutdown(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	s.beginClose(deadline, true)
	s.expiryWG.Wait()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(2 * timeout):
		s.closeConns()
		<-done
		return errors.New("server: connections force-closed after drain timeout")
	}
}

// Abort hard-stops the server with no drain — the in-process stand-in for
// kill -9 in crash tests. In-flight commands may go unanswered (and their
// effects may or may not have reached the store, exactly like a real crash);
// no goroutine touches the heap after Abort returns.
func (s *Server) Abort() {
	s.beginClose(time.Time{}, false)
	s.expiryWG.Wait()
	s.closeConns()
	s.wg.Wait()
}

// beginClose marks the server closed under the mutex: the expiry cycle is
// stopped, listeners close, and — when armConns is set (graceful Shutdown) —
// each open connection's read deadline is moved up so blocked readers wake.
// A connection mid-command still gets its replies written first.
func (s *Server) beginClose(deadline time.Time, armConns bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed && s.stopExpiry != nil {
		close(s.stopExpiry)
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	if armConns {
		for c := range s.conns {
			c.SetReadDeadline(deadline)
		}
	}
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}
