package server

import (
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/cluster/shardlock"
	"repro/internal/kvstore"
	"repro/internal/obs"
)

// InfoSection is one embedder-contributed INFO section: Render returns the
// section's "key:value\r\n" lines (no "# Header" line — the server writes
// it from Name, or splices the lines into the matching builtin section).
type InfoSection struct {
	Name   string // lowercase section name, e.g. "heap", "persistence"
	Render func() string
}

// thresholdNs folds a config threshold into the one-comparison form invoke
// uses: zero (unset) disables via the MaxInt64 sentinel, negative admits
// everything, positive is the nanosecond threshold itself.
func thresholdNs(d time.Duration) int64 {
	switch {
	case d == 0:
		return math.MaxInt64
	case d < 0:
		return 0
	default:
		return int64(d)
	}
}

// Config tunes a Server.
type Config struct {
	// MaxConns caps simultaneously served connections; further accepted
	// connections wait for a slot. 0 means unlimited.
	MaxConns int
	// Checkpoint, if non-nil, implements the SAVE command the quiesced
	// way: the server stops all command execution before invoking it, so
	// it observes (and may persist) a consistent heap image.
	Checkpoint func() error
	// CheckpointOnline, if non-nil, implements SAVE as an online snapshot
	// and takes precedence over Checkpoint. The function runs its copy
	// phases concurrently with command execution and must call fence(cut)
	// exactly once at cut-over; the server implements fence by holding the
	// checkpoint barrier's write side only for the final delta (cut), so
	// commands stall for the delta — not the whole image write. Wired to
	// pmem.Region.SaveFileOnline by ralloc-serve.
	CheckpointOnline func(fence func(cut func() error) error) (CheckpointStats, error)
	// OnShutdown, if non-nil, is invoked (once) when a client issues
	// SHUTDOWN, after the +OK reply is flushed. The owner is expected to
	// call Shutdown and close the heap.
	OnShutdown func()
	// InfoSections contributes extra named sections to the INFO reply
	// (heap statistics, allocator shard counters, ...). A section whose
	// Name matches a builtin section (notably "persistence") is appended
	// inside that builtin block instead of rendered standalone, so an
	// embedder can extend INFO persistence with recovery statistics. Every
	// name here is advertised by Sections and must round-trip through
	// INFO <name> (a registry-generated test enforces this).
	InfoSections []InfoSection
	// SlowlogSlowerThan is the slow-log admission threshold, Redis's
	// slowlog-log-slower-than: executions taking at least this long are
	// recorded. Zero (the zero value) disables the slow log; negative
	// logs every command.
	SlowlogSlowerThan time.Duration
	// SlowlogMaxLen bounds the slow-log ring (default 128).
	SlowlogMaxLen int
	// LatencyThreshold is the LATENCY event-timeline admission threshold
	// for the "command" event, Redis's latency-monitor-threshold.
	// Zero disables command latency events; checkpoint, expiry-cycle and
	// embedder-recorded events are always kept.
	LatencyThreshold time.Duration
	// ActiveExpiryInterval, if positive, starts the active expiry cycle: a
	// goroutine that every interval samples TTL'd keys and reclaims the
	// expired ones. It runs under the same barrier as commands (execMu
	// read side), so a SAVE checkpoint never captures a half-done
	// reclamation. Zero disables the cycle; reads still apply lazy expiry,
	// so correctness is unaffected — only space reclamation is.
	ActiveExpiryInterval time.Duration
	// ActiveExpirySample caps how many expired keys one cycle reclaims
	// (default 20, Redis-like), bounding the barrier hold time.
	ActiveExpirySample int
	// Middleware wraps every command handler at construction time, outside
	// the built-in stats middleware, in slice order (first entry outermost).
	// Use it for cross-cutting concerns — auditing, slowlog-style tracing —
	// without touching the command table.
	Middleware []Middleware

	// ReplBacklogBytes enables replication with a backlog ring of that
	// capacity. Replication is on when this is positive, ReplicaOf is set,
	// or OpenCheckpoint is non-nil (backlog then defaults to 1 MiB).
	ReplBacklogBytes int
	// ReplicaOf, if non-empty, starts the server as a replica of the given
	// primary address ("host:port", or a unix socket path containing "/").
	// The heap must already hold the primary's bootstrapped image (see
	// repl.BootstrapImage); the server resumes the feed at ReplOffset.
	ReplicaOf string
	// ReplID and ReplOffset seed the replication stream position, normally
	// from the heap image's header (pmem.Region.ReplMeta). A zero ReplID on
	// a primary mints a fresh random stream ID.
	ReplID     uint64
	ReplOffset uint64
	// OpenCheckpoint opens the current checkpoint image for streaming to a
	// full-resyncing replica, after the server has run Save. Required for
	// serving full resyncs; partial resyncs work without it.
	OpenCheckpoint func() (*CheckpointImage, error)
	// CheckpointOffset, if non-nil, is called under the checkpoint barrier's
	// write side immediately before every image cut, with the replication
	// stream ID and offset the image corresponds to. Wired by ralloc-serve
	// to pmem.Region.SetReplMeta, which stamps the image header.
	CheckpointOffset func(id, off uint64)
	// OnFullResyncNeeded, if non-nil, is called when the replication link
	// needs a full resync (the primary's backlog no longer covers our
	// offset, or streams diverged). The link is stopped when it fires; the
	// embedder is expected to shut down and re-bootstrap from the primary.
	OnFullResyncNeeded func()
}

// CheckpointStats reports what an online checkpoint copied. Mirrors
// pmem.SnapshotStats without importing pmem (the server is storage-agnostic;
// the embedder converts).
type CheckpointStats struct {
	// Lines is the total cache lines streamed in the full copy pass.
	Lines uint64
	// Recopied is lines copied again because the write barrier reported
	// them dirtied during the copy (delta rounds plus the fence delta).
	Recopied uint64
	// FenceRecopied is the subset of Recopied written inside the cut-over
	// fence — the lines commands actually stalled for.
	FenceRecopied uint64
	// Rounds is how many concurrent delta rounds ran before the fence.
	Rounds int
}

// ErrServerClosed is returned by Serve after Shutdown or Abort.
var ErrServerClosed = errors.New("server: closed")

// Server serves the RESP2 subset over a kvstore. One goroutine per
// connection; pipelined commands are answered in order with batched writes.
// The keyspace lives on one or more shards (see shard.go); every stored
// field that used to be singular — allocator, store, checkpoint barrier,
// stripe locks — is per shard.
type Server struct {
	cfg Config

	// shards are the keyspace partitions, routed by hash slot; locksAll
	// aliases their lock blocks in shard order for the cross-shard
	// acquisition helpers (FLUSHALL, the cluster-wide checkpoint fence).
	shards   []*shard
	locksAll []*shardlock.Locks

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	handles   [][]alloc.Handle // pool of per-shard handle vectors: bounds handle count by peak concurrency
	closed    bool

	wg   sync.WaitGroup
	sem  chan struct{} // MaxConns slots (nil = unlimited)
	once sync.Once     // OnShutdown

	stopExpiry chan struct{}  // closed on Shutdown/Abort (nil: cycle off)
	expiryWG   sync.WaitGroup // joins the expiry goroutine

	start        time.Time
	accepted     atomic.Uint64
	commands     atomic.Uint64
	expiryCycles atomic.Uint64

	// Observability state (internal/obs): the slow-command ring, the named
	// latency-event timeline, and the thresholds invoke compares against.
	// slowNs/latNs are precomputed to int64 nanoseconds with MaxInt64 as
	// the "disabled" sentinel so the hot path pays one comparison each.
	slow   *obs.SlowLog
	events *obs.Events
	slowNs int64
	latNs  int64

	// Checkpoint and expiry phase telemetry: monotonically counted and
	// last-duration words, surfaced by INFO persistence and /metrics.
	saves         atomic.Uint64
	saveErrs      atomic.Uint64
	lastSaveUnix  atomic.Int64
	saveQuiesceNs atomic.Int64 // last checkpoint's barrier-acquire wait
	saveTotalNs   atomic.Int64 // last checkpoint end to end
	saveFenceNs   atomic.Int64 // last online checkpoint's cut-over fence
	expiryLastNs  atomic.Int64 // last expiry cycle duration

	// Online-checkpoint copy telemetry: cumulative line counts across all
	// online SAVEs (copied = streamed clean, recopied = barrier-reported
	// dirty and copied again) plus the last run's fence-delta size and
	// round count. The copied:recopied ratio is the online snapshot's
	// efficiency measure — how much the write barrier cost beyond one
	// sequential pass.
	saveLines         atomic.Uint64
	saveRecopied      atomic.Uint64
	saveFenceRecopied atomic.Uint64
	saveRounds        atomic.Int64

	// cmds is the registry bound to this server: each table entry wrapped
	// in the stats middleware (plus Config.Middleware) with its own
	// counters. Built once in New; read-only afterwards.
	cmds map[string]*boundCmd

	// repl is the replication state (feed, senders, link); nil when
	// replication is disabled. See repl.go.
	repl *replState
}

// New creates a server over an open store. The allocator must be the one the
// store was opened on; the server draws per-connection handles from it. For
// a multi-shard keyspace use NewSharded (shard.go).
func New(a alloc.Allocator, st *kvstore.Store, cfg Config) *Server {
	return NewSharded([]ShardBackend{{
		Alloc:            a,
		Store:            st,
		Checkpoint:       cfg.Checkpoint,
		CheckpointOnline: cfg.CheckpointOnline,
		OpenCheckpoint:   cfg.OpenCheckpoint,
		CheckpointOffset: cfg.CheckpointOffset,
	}}, cfg)
}

// newServer builds the shard-independent parts; NewSharded attaches the
// shards and then calls finishInit.
func newServer(cfg Config) *Server {
	return &Server{
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		start:     time.Now(),
		slow:      obs.NewSlowLog(cfg.SlowlogMaxLen),
		events:    obs.NewEvents(),
		slowNs:    thresholdNs(cfg.SlowlogSlowerThan),
		latNs:     thresholdNs(cfg.LatencyThreshold),
	}
}

// finishInit wires replication, binds the command registry, and starts the
// background cycles, after the shards are in place.
func (s *Server) finishInit() {
	cfg := s.cfg
	replWanted := cfg.ReplBacklogBytes > 0 || cfg.ReplicaOf != ""
	for _, sh := range s.shards {
		if sh.be.OpenCheckpoint != nil {
			replWanted = true
		}
	}
	if replWanted {
		s.repl = newReplState(s)
		// The tap goes last in Middleware so it wraps innermost — directly
		// around the handler, inside the embedder's layers — and therefore
		// observes exactly the handler's success or error.
		s.cfg.Middleware = append(append([]Middleware{}, cfg.Middleware...), s.repl.tap)
	}
	s.bindCommands()
	if cfg.MaxConns > 0 {
		s.sem = make(chan struct{}, cfg.MaxConns)
	}
	if cfg.ActiveExpiryInterval > 0 {
		s.stopExpiry = make(chan struct{})
		s.expiryWG.Add(1)
		go s.expiryLoop()
	}
	if s.repl != nil && cfg.ReplicaOf != "" {
		s.repl.startLink(cfg.ReplicaOf)
	}
}

// expiryLoop is the active expiry cycle: every interval it reclaims up to
// ActiveExpirySample expired records per shard. Each shard's round runs
// under that shard's checkpoint barrier read side — concurrent with ordinary
// commands, quiesced by that shard's SAVE fence only — so checkpoint images
// never contain a torn reclamation, other shards' fences never stall the
// cycle, and the cycle's frees stop before Shutdown/Abort return (no
// goroutine touches any heap afterwards).
func (s *Server) expiryLoop() {
	defer s.expiryWG.Done()
	sample := s.cfg.ActiveExpirySample
	if sample <= 0 {
		sample = 20
	}
	hds := make([]alloc.Handle, len(s.shards))
	for i, sh := range s.shards {
		hds[i] = sh.a.NewHandle()
	}
	t := time.NewTicker(s.cfg.ActiveExpiryInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopExpiry:
			return
		case <-t.C:
			// A replica never reclaims on its own: the primary runs the only
			// expiry authority and propagates each reclamation as a DEL, so
			// replicas cannot diverge by sampling different keys. Lazy reads
			// on a replica see through expired deadlines without mutating.
			if s.repl != nil && s.repl.replica.Load() {
				continue
			}
			t0 := time.Now()
			for i, sh := range s.shards {
				s.reclaimUnderBarrier(sh, hds[i], sample)
			}
			d := time.Since(t0)
			s.expiryCycles.Add(1)
			s.expiryLastNs.Store(int64(d))
			s.events.Record("expiry-cycle", t0, d)
		}
	}
}

// reclaimUnderBarrier runs one shard's reclamation round under that shard's
// checkpoint barrier read side, releasing it via defer so a panicking
// reclaim (a corrupt free chain, say) cannot wedge SAVE behind a dead
// expiry goroutine.
func (s *Server) reclaimUnderBarrier(sh *shard, hd alloc.Handle, sample int) {
	sh.locks.Exec.RLock()
	defer sh.locks.Exec.RUnlock()
	if s.repl == nil {
		sh.st.ReclaimExpired(hd, sample)
		return
	}
	// With replication on, each reclamation must reach the feed as a DEL in
	// the same order it hit the store, which means holding the key's stripe
	// lock across reclaim+append exactly like a client DEL would.
	for _, cand := range sh.st.ExpiredCandidates(sample) {
		s.reclaimPropagate(sh, hd, cand)
	}
}

// reclaimPropagate reclaims one expired candidate under its stripe lock and,
// if the key actually died (the deadline may have moved since sampling),
// appends the equivalent DEL to the replication feed.
func (s *Server) reclaimPropagate(sh *shard, hd alloc.Handle, cand kvstore.ExpiredCandidate) {
	mu := &sh.locks.Stripes[s.stripeOf([]byte(cand.Key))]
	mu.Lock()
	defer mu.Unlock()
	if sh.st.ReclaimIfExpired(hd, cand.Key, cand.At) {
		s.repl.feed.Append([][]byte{[]byte("DEL"), []byte(cand.Key)})
		sh.replWrites.Add(1)
	}
}

// Serve accepts connections on l until the server shuts down. It always
// closes l; after Shutdown or Abort it returns ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	if !s.addListener(l) {
		l.Close()
		return ErrServerClosed
	}
	defer func() {
		s.removeListener(l)
		l.Close()
	}()

	var backoff time.Duration
	for {
		c, err := l.Accept()
		if err != nil {
			if s.isClosed() {
				return ErrServerClosed
			}
			// Transient accept failures (EMFILE under a connection
			// burst, say) back off and retry rather than killing the
			// listener, like net/http.
			if isTemporary(err) {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// addListener registers l for Shutdown/Abort to close; it reports false
// (without registering) when the server is already closed.
func (s *Server) addListener(l net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners[l] = struct{}{}
	return true
}

func (s *Server) removeListener(l net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, l)
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// isTemporary reports whether an accept error is worth retrying. The
// net.Error.Temporary contract is deprecated for general errors but remains
// exactly right for accept(2) resource-exhaustion failures.
func isTemporary(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		//lint:ignore SA1019 accept-loop retry is Temporary's surviving use
		return ne.Temporary()
	}
	return false
}

// getHandles takes a per-shard allocation handle vector from the pool,
// minting one if empty. Minting happens outside the server mutex: NewHandle
// may take allocator locks of its own, and the pool pop is the only part
// that needs s.mu.
func (s *Server) getHandles() []alloc.Handle {
	if hds, ok := s.pooledHandles(); ok {
		return hds
	}
	hds := make([]alloc.Handle, len(s.shards))
	for i, sh := range s.shards {
		hds[i] = sh.a.NewHandle()
	}
	return hds
}

func (s *Server) pooledHandles() ([]alloc.Handle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.handles); n > 0 {
		hds := s.handles[n-1]
		s.handles = s.handles[:n-1]
		return hds, true
	}
	return nil, false
}

func (s *Server) putHandles(hds []alloc.Handle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.handles = append(s.handles, hds)
	}
}

// handleConn runs one connection's read-execute-reply loop.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	if s.sem != nil {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}
	if !s.trackConn(c) {
		c.Close()
		return
	}
	defer func() {
		s.untrackConn(c)
		c.Close()
	}()

	hds := s.getHandles()
	defer s.putHandles(hds)

	// Handler panics are deliberately NOT recovered here: a panic that
	// escapes dispatch may originate below the server — an allocator
	// double-free or corrupt free chain fires inside dstruct/kvstore
	// critical sections whose internal mutexes are not defer-released, and
	// this connection's pooled alloc.Handle may hold a torn thread-local
	// cache — so "contain and keep serving" would trade a clean fail-stop
	// for a wedged or silently corrupting process. The heap is
	// crash-consistent at every instant, so process death is the designed
	// containment: restart runs Open→Recover and resumes. Dispatch still
	// releases the routed shard's stripe locks and barrier read side via
	// defer during unwinding, so a panic recovered *above* dispatch (an
	// embedder wrapping Serve, a test or fuzz harness driving dispatch
	// directly) observes no leaked server locks.
	r := newRespReader(c)
	w := newRespWriter(c)
	// One Ctx and one transaction state per connection, reused across
	// dispatches so the steady-state pipeline allocates nothing.
	ctx := &Ctx{s: s, hds: hds, hd: hds[0], w: w, cs: &connState{}}
	for {
		args, err := r.ReadCommand()
		if err != nil {
			var pe protoError
			if errors.As(err, &pe) {
				w.errorf("%s", string(pe))
				w.flush()
			}
			return
		}
		s.commands.Add(1)
		quit := s.dispatch(ctx, args)
		if ctx.hijack != nil {
			// PSYNC: hand the raw connection to the replication sender. The
			// conn stays tracked (Shutdown's force-close still reaches it)
			// and the deferred untrack/Close run when the stream ends.
			h := ctx.hijack
			ctx.hijack = nil
			if err := w.flush(); err != nil {
				return
			}
			h(c)
			return
		}
		// Pipelining: only flush when the input is drained, so a burst of
		// commands gets one batched reply write.
		if quit || !r.buffered() {
			if err := w.flush(); err != nil {
				return
			}
		}
		if quit {
			s.once.Do(func() {
				if s.cfg.OnShutdown != nil {
					// The owner's shutdown path takes execMu (via Save) and
					// waits for connections; run it outside both.
					go s.cfg.OnShutdown()
				}
			})
			return
		}
	}
}

// trackConn registers a live connection for Shutdown to drain; it reports
// false (without registering) when the server is already closed.
func (s *Server) trackConn(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

func (s *Server) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// deadlineFrom converts a relative TTL (in seconds when seconds is true,
// milliseconds otherwise) into an absolute unix-millisecond deadline,
// saturating instead of overflowing on hostile magnitudes. The result is
// never 0 — that is the "immortal" sentinel — so a non-positive TTL maps to
// a deadline firmly in the past (immediately expired, Redis-observable as
// the key being gone).
func deadlineFrom(now, d int64, seconds bool) int64 {
	if seconds {
		const maxSec = math.MaxInt64 / 1000
		if d > maxSec {
			d = maxSec
		} else if d < -maxSec {
			d = -maxSec
		}
		d *= 1000
	}
	at := now + d
	if d > 0 && at < now {
		at = math.MaxInt64
	}
	if at <= 0 {
		at = 1
	}
	return at
}

// info renders the INFO reply. census includes the per-type keyspace
// counts, which cost a full map walk under the stripe locks — a monitoring
// loop polling "INFO server" once a second must not pay O(keyspace) per
// poll, so cmdInfo requests the census only when the keyspace section (or
// the whole block) is actually being returned.
func (s *Server) info(census bool) string {
	st := s.statsAll()
	nconns := s.connCount()
	var b strings.Builder
	fmt.Fprintf(&b, "# Server\r\n")
	fmt.Fprintf(&b, "allocator:%s\r\n", s.shards[0].a.Name())
	fmt.Fprintf(&b, "uptime_in_seconds:%d\r\n", int(time.Since(s.start).Seconds()))
	fmt.Fprintf(&b, "connected_clients:%d\r\n", nconns)
	fmt.Fprintf(&b, "total_connections_received:%d\r\n", s.accepted.Load())
	fmt.Fprintf(&b, "total_commands_processed:%d\r\n", s.commands.Load())
	fmt.Fprintf(&b, "# Keyspace\r\n")
	fmt.Fprintf(&b, "records:%d\r\n", s.keyspaceLen())
	if census {
		// Per-type census of the live keyspace (the walk skips stamp-
		// expired corpses, so these can sum below records until the cycle
		// reclaims them).
		var tc kvstore.TypeCounts
		for _, sh := range s.shards {
			c := sh.st.CountTypes()
			tc.Strings += c.Strings
			tc.Hashes += c.Hashes
			tc.Lists += c.Lists
		}
		fmt.Fprintf(&b, "keys_string:%d\r\nkeys_hash:%d\r\nkeys_list:%d\r\n", tc.Strings, tc.Hashes, tc.Lists)
	}
	fmt.Fprintf(&b, "bounded:%v\r\n", s.shards[0].st.Bounded())
	fmt.Fprintf(&b, "bytes:%d\r\n", st.Bytes)
	fmt.Fprintf(&b, "hits:%d\r\nmisses:%d\r\nsets:%d\r\ndeletes:%d\r\nevictions:%d\r\n",
		st.Hits, st.Misses, st.Sets, st.Deletes, st.Evictions)
	fmt.Fprintf(&b, "# Expires\r\n")
	fmt.Fprintf(&b, "keys_with_ttl:%d\r\nexpired_lazy:%d\r\nexpired_reclaimed:%d\r\nexpiry_cycles:%d\r\nexpiry_last_cycle_us:%d\r\n",
		st.TTLd, st.Expired, st.Reclaimed, s.expiryCycles.Load(), s.expiryLastNs.Load()/1e3)
	b.WriteString(s.persistenceInfo())
	b.WriteString(s.replicationInfo())
	b.WriteString(s.clusterInfo())
	for _, sec := range s.cfg.InfoSections {
		if strings.EqualFold(sec.Name, "persistence") {
			continue // spliced into the builtin block above
		}
		fmt.Fprintf(&b, "# %s\r\n", infoTitle(sec.Name))
		b.WriteString(sec.Render())
	}
	return b.String()
}

// keyspaceLen is the live record count summed over every shard.
func (s *Server) keyspaceLen() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.st.Len()
	}
	return n
}

// statsAll sums every shard's store counters into one keyspace-wide view.
func (s *Server) statsAll() kvstore.Stats {
	var t kvstore.Stats
	for _, sh := range s.shards {
		st := sh.st.Stats()
		t.Hits += st.Hits
		t.Misses += st.Misses
		t.Sets += st.Sets
		t.Deletes += st.Deletes
		t.Evictions += st.Evictions
		t.Expired += st.Expired
		t.Reclaimed += st.Reclaimed
		t.TTLd += st.TTLd
		t.Bytes += st.Bytes
	}
	return t
}

// clusterInfo renders the builtin "# Cluster" section: the shard count and
// one line per shard with its live record count, byte footprint, checkpoint
// count, last fence duration, and replication-feed attribution — the
// per-shard balance view DBSIZE and INFO keyspace aggregate away.
func (s *Server) clusterInfo() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Cluster\r\n")
	fmt.Fprintf(&b, "cluster_shards:%d\r\n", len(s.shards))
	for _, sh := range s.shards {
		st := sh.st.Stats()
		fmt.Fprintf(&b, "shard%d:records=%d,bytes=%d,checkpoints=%d,last_fence_us=%d,repl_writes=%d\r\n",
			sh.idx, sh.st.Len(), st.Bytes, sh.saves.Load(), sh.fenceNs.Load()/1e3, sh.replWrites.Load())
	}
	return b.String()
}

// persistenceInfo renders the builtin "# Persistence" section — checkpoint
// counts and last-checkpoint phase timings — with any embedder InfoSection
// named "persistence" (recovery statistics, save-file size, ...) spliced
// into the same block, the way Redis keeps all durability facts under one
// header.
func (s *Server) persistenceInfo() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Persistence\r\n")
	fmt.Fprintf(&b, "checkpoints:%d\r\ncheckpoint_errors:%d\r\nlast_checkpoint_unix:%d\r\n",
		s.saves.Load(), s.saveErrs.Load(), s.lastSaveUnix.Load())
	fmt.Fprintf(&b, "last_checkpoint_quiesce_us:%d\r\nlast_checkpoint_total_us:%d\r\n",
		s.saveQuiesceNs.Load()/1e3, s.saveTotalNs.Load()/1e3)
	fmt.Fprintf(&b, "last_checkpoint_fence_us:%d\r\nlast_checkpoint_fence_lines:%d\r\nlast_checkpoint_rounds:%d\r\n",
		s.saveFenceNs.Load()/1e3, s.saveFenceRecopied.Load(), s.saveRounds.Load())
	fmt.Fprintf(&b, "checkpoint_lines_copied:%d\r\ncheckpoint_lines_recopied:%d\r\n",
		s.saveLines.Load(), s.saveRecopied.Load())
	for _, sec := range s.cfg.InfoSections {
		if strings.EqualFold(sec.Name, "persistence") {
			b.WriteString(sec.Render())
		}
	}
	return b.String()
}

// infoTitle renders a section name as its INFO header ("heap" → "Heap").
func infoTitle(name string) string {
	if name == "" {
		return name
	}
	return strings.ToUpper(name[:1]) + name[1:]
}

// Sections lists every section name INFO <section> serves directly:
// builtins first, then the embedder's. The registry-generated round-trip
// test drives INFO with each of these and requires the reply to be exactly
// that section.
func (s *Server) Sections() []string {
	names := []string{"server", "keyspace", "expires", "persistence", "replication", "cluster", "commandstats", "latencystats"}
	for _, sec := range s.cfg.InfoSections {
		if !strings.EqualFold(sec.Name, "persistence") {
			names = append(names, strings.ToLower(sec.Name))
		}
	}
	return names
}

// commandStats renders the INFO commandstats section from the per-command
// histograms: calls, total and mean latency, and error-reply counts. The
// line format is unchanged from the sampling era (byte-compatible with
// existing parsers), but the numbers now come from every invocation rather
// than a 1-in-64 estimate. Only commands that have been called appear, in
// registry (name) order.
func (s *Server) commandStats() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Commandstats\r\n")
	for _, c := range commandList {
		bc := s.cmds[c.Name]
		snap := bc.stats.hist.Snapshot()
		if snap.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "cmdstat_%s:calls=%d,usec=%.0f,usec_per_call=%.2f,errors=%d\r\n",
			strings.ToLower(c.Name), snap.Count, float64(snap.Sum)/1e3, snap.Mean()/1e3, bc.stats.errs.Load())
	}
	return b.String()
}

// latencyStats renders the INFO latencystats section, Redis 7 shaped: one
// latency_percentiles_usec line per called command with p50/p99/p99.9
// interpolated from its histogram.
func (s *Server) latencyStats() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Latencystats\r\n")
	for _, c := range commandList {
		bc := s.cmds[c.Name]
		snap := bc.stats.hist.Snapshot()
		if snap.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "latency_percentiles_usec_%s:p50=%.3f,p99=%.3f,p99.9=%.3f\r\n",
			strings.ToLower(c.Name), snap.Quantile(0.50)/1e3, snap.Quantile(0.99)/1e3, snap.Quantile(0.999)/1e3)
	}
	return b.String()
}

// recordSlow is invoke's over-threshold slow path: append to the slow log
// ring and/or the "command" latency-event timeline. ctx.args is copied (and
// truncated) by SlowLog.Add before dispatch's scratch reuse can touch it.
func (s *Server) recordSlow(bc *boundCmd, args [][]byte, t0 time.Time, d time.Duration) {
	if int64(d) >= s.slowNs {
		s.slow.Add(t0.Unix(), d, args)
	}
	if int64(d) >= s.latNs {
		s.events.Record("command", t0, d)
	}
}

// Events exposes the server's latency-event timeline so embedders can
// record their own named events (recovery phases, attach time) into the
// same LATENCY LATEST/HISTORY surface the builtin events use.
func (s *Server) Events() *obs.Events { return s.events }

// LatencySnapshot merges every command's histogram into one distribution —
// the server-wide command latency profile benchmarks report p50/p99 from.
func (s *Server) LatencySnapshot() obs.HistSnapshot {
	var total obs.HistSnapshot
	for _, bc := range s.cmds {
		snap := bc.stats.hist.Snapshot()
		total.Merge(&snap)
	}
	return total
}

// Collect implements obs.Collector: the server's /metrics families —
// connection and command totals, per-command latency histograms and error
// counts, checkpoint and expiry telemetry, keyspace gauges.
func (s *Server) Collect(e *obs.Emitter) {
	e.Family("ralloc_connections_accepted_total", "counter", "Connections accepted since start.")
	e.Value("ralloc_connections_accepted_total", float64(s.accepted.Load()))
	e.Family("ralloc_connected_clients", "gauge", "Currently served connections.")
	e.Value("ralloc_connected_clients", float64(s.connCount()))
	e.Family("ralloc_commands_processed_total", "counter", "Commands dispatched since start.")
	e.Value("ralloc_commands_processed_total", float64(s.commands.Load()))

	e.Family("ralloc_command_calls_total", "counter", "Calls per command.")
	e.Family("ralloc_command_errors_total", "counter", "Error replies per command.")
	e.Family("ralloc_command_latency_seconds", "histogram", "Command execution latency.")
	for _, c := range commandList {
		bc := s.cmds[c.Name]
		snap := bc.stats.hist.Snapshot()
		if snap.Count == 0 {
			continue
		}
		name := strings.ToLower(c.Name)
		e.Value("ralloc_command_calls_total", float64(snap.Count), "cmd", name)
		e.Value("ralloc_command_errors_total", float64(bc.stats.errs.Load()), "cmd", name)
		e.Histogram("ralloc_command_latency_seconds", &snap, "cmd", name)
	}

	e.Family("ralloc_checkpoints_total", "counter", "Checkpoints (SAVE) completed successfully.")
	e.Value("ralloc_checkpoints_total", float64(s.saves.Load()))
	e.Family("ralloc_checkpoint_errors_total", "counter", "Checkpoints that returned an error.")
	e.Value("ralloc_checkpoint_errors_total", float64(s.saveErrs.Load()))
	e.Family("ralloc_checkpoint_last_duration_seconds", "gauge", "Last checkpoint duration end to end.")
	e.Value("ralloc_checkpoint_last_duration_seconds", float64(s.saveTotalNs.Load())/1e9)
	e.Family("ralloc_checkpoint_last_quiesce_seconds", "gauge", "Last checkpoint barrier-acquire wait.")
	e.Value("ralloc_checkpoint_last_quiesce_seconds", float64(s.saveQuiesceNs.Load())/1e9)
	e.Family("ralloc_checkpoint_last_fence_seconds", "gauge", "Last online checkpoint cut-over fence duration.")
	e.Value("ralloc_checkpoint_last_fence_seconds", float64(s.saveFenceNs.Load())/1e9)
	e.Family("ralloc_checkpoint_lines_copied_total", "counter", "Cache lines streamed by online checkpoints.")
	e.Value("ralloc_checkpoint_lines_copied_total", float64(s.saveLines.Load()))
	e.Family("ralloc_checkpoint_lines_recopied_total", "counter", "Cache lines re-copied after the write barrier marked them dirty.")
	e.Value("ralloc_checkpoint_lines_recopied_total", float64(s.saveRecopied.Load()))

	e.Family("ralloc_expiry_cycles_total", "counter", "Active-expiry cycles completed.")
	e.Value("ralloc_expiry_cycles_total", float64(s.expiryCycles.Load()))
	e.Family("ralloc_expiry_last_cycle_seconds", "gauge", "Last expiry cycle duration.")
	e.Value("ralloc_expiry_last_cycle_seconds", float64(s.expiryLastNs.Load())/1e9)

	e.Family("ralloc_keyspace_records", "gauge", "Live records in the keyspace.")
	e.Value("ralloc_keyspace_records", float64(s.keyspaceLen()))
	e.Family("ralloc_slowlog_length", "gauge", "Entries currently retained in the slow log.")
	e.Value("ralloc_slowlog_length", float64(s.slow.Len()))

	e.Family("ralloc_shard_count", "gauge", "Shards serving the keyspace.")
	e.Value("ralloc_shard_count", float64(len(s.shards)))
	e.Family("ralloc_shard_records", "gauge", "Live records per shard.")
	e.Family("ralloc_shard_bytes", "gauge", "Record byte footprint per shard.")
	e.Family("ralloc_shard_checkpoints_total", "counter", "Checkpoints completed per shard.")
	e.Family("ralloc_shard_last_fence_seconds", "gauge", "Last checkpoint fence duration per shard.")
	e.Family("ralloc_shard_repl_writes_total", "counter", "Replication feed entries attributed per shard.")
	for _, sh := range s.shards {
		idx := fmt.Sprintf("%d", sh.idx)
		st := sh.st.Stats()
		e.Value("ralloc_shard_records", float64(sh.st.Len()), "shard", idx)
		e.Value("ralloc_shard_bytes", float64(st.Bytes), "shard", idx)
		e.Value("ralloc_shard_checkpoints_total", float64(sh.saves.Load()), "shard", idx)
		e.Value("ralloc_shard_last_fence_seconds", float64(sh.fenceNs.Load())/1e9, "shard", idx)
		e.Value("ralloc_shard_repl_writes_total", float64(sh.replWrites.Load()), "shard", idx)
	}
	s.collectRepl(e)
}

// Shutdown gracefully drains the server: listeners close immediately, each
// connection's in-flight commands are answered, and connections finish when
// their read side goes idle past the deadline. Connections still open after
// 2×timeout are force-closed. Safe to call more than once.
func (s *Server) Shutdown(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	s.beginClose(deadline, true)
	// Replication teardown runs outside beginClose (which holds s.mu): the
	// feed closes, in-flight PSYNC streams abort at an entry boundary with a
	// clean error line, and the replica link stops applying.
	if s.repl != nil {
		s.repl.close()
	}
	s.expiryWG.Wait()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(2 * timeout):
		s.closeConns()
		<-done
		return errors.New("server: connections force-closed after drain timeout")
	}
}

// Abort hard-stops the server with no drain — the in-process stand-in for
// kill -9 in crash tests. In-flight commands may go unanswered (and their
// effects may or may not have reached the store, exactly like a real crash);
// no goroutine touches the heap after Abort returns.
func (s *Server) Abort() {
	s.beginClose(time.Time{}, false)
	if s.repl != nil {
		s.repl.close()
	}
	s.expiryWG.Wait()
	s.closeConns()
	s.wg.Wait()
}

// beginClose marks the server closed under the mutex: the expiry cycle is
// stopped, listeners close, and — when armConns is set (graceful Shutdown) —
// each open connection's read deadline is moved up so blocked readers wake.
// A connection mid-command still gets its replies written first.
func (s *Server) beginClose(deadline time.Time, armConns bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed && s.stopExpiry != nil {
		close(s.stopExpiry)
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	if armConns {
		for c := range s.conns {
			c.SetReadDeadline(deadline)
		}
	}
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}
