package server

import (
	"bytes"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// Dispatch-overhead benchmark and regression gate: the registry pipeline
// (lookup → arity → KeySpec key extraction → ordered stripe locks →
// middleware → handler) versus a faithful copy of the pre-registry switch
// for the pipelined GET/SET hot path. The switch baseline reproduces the old
// code exactly — including its per-write fnv.New64a() hasher allocation in
// keyLock — so the gate measures what the redesign actually changed.
//
// Both paths carry the identical per-command observability layer (the clock
// pair, the histogram record, the error check, and the slowlog threshold
// compare that boundCmd.invoke performs): a hand-rolled switch server would
// pay exactly the same to produce per-command latency histograms, so folding
// it into the baseline keeps the gate measuring dispatch overhead rather
// than the platform's clock-read cost. (On cloud VMs a single time.Now() is
// 50–70ns — an order of magnitude over the whole 5% budget — so an
// uninstrumented baseline would turn this gate into a clocksource test.)
// The observability layer's own cost is pinned separately:
// TestHistogramRecordNoAlloc keeps the record path allocation-free.

type benchEnv struct {
	heap *ralloc.Heap
	srv  *Server
	hd   alloc.Handle

	// Per-command telemetry blocks for the switch baseline, mirroring the
	// registry's boundCmd.stats.
	baseGet, baseSet cmdStats
}

func newBenchEnv(tb testing.TB, cfg Config) *benchEnv {
	tb.Helper()
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion: 256 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		tb.Fatal(err)
	}
	a := h.AsAllocator()
	st, root := kvstore.Open(a, a.NewHandle(), 8192)
	h.SetRoot(0, root)
	return &benchEnv{heap: h, srv: New(a, st, cfg), hd: a.NewHandle()}
}

// benchArgs is one pipelined GET/SET burst: the same 64 keys set then read,
// command vectors prebuilt so only dispatch + execution are measured.
func benchArgs() [][][]byte {
	var cmds [][][]byte
	for i := 0; i < 64; i++ {
		k := []byte("bench-key-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)))
		cmds = append(cmds, [][]byte{[]byte("SET"), k, []byte("bench-value-payload-00")})
		cmds = append(cmds, [][]byte{[]byte("GET"), k})
	}
	return cmds
}

// baselineExecute is the old Server.execute switch, GET/SET cases verbatim
// (per-case arity check, per-case keyLock with a heap-allocated fnv hasher,
// the per-command read-side checkpoint-barrier hold that handleConn's
// dispatchBarrier used to take), wrapped in the same per-command stats layer
// boundCmd.invoke applies.
func (e *benchEnv) baselineExecute(w *respWriter, args [][]byte) {
	s := e.srv
	sh := s.shards[0]
	e0 := w.errs
	t0 := time.Now()
	var st *cmdStats
	name := strings.ToUpper(string(args[0]))
	sh.locks.Exec.RLock()
	switch name {
	case "GET":
		st = &e.baseGet
		if len(args) != 2 {
			w.errorf("wrong number of arguments for 'get' command")
			break
		}
		if v, ok, _ := sh.st.GetBytes(args[1]); ok {
			w.bulk(v)
		} else {
			w.nilBulk()
		}
	case "SET":
		st = &e.baseSet
		if len(args) != 3 {
			w.errorf("wrong number of arguments for 'set' command")
			break
		}
		mu := e.oldKeyLock(args[1])
		mu.Lock()
		ok := sh.st.SetBytes(e.hd, args[1], args[2])
		mu.Unlock()
		if !ok {
			w.errorf("out of memory")
			break
		}
		w.simple("OK")
	default:
		w.errorf("unknown command '%s'", strings.ToLower(name))
	}
	sh.locks.Exec.RUnlock()
	d := time.Since(t0)
	if st != nil {
		st.hist.Record(d)
		if w.errs != e0 {
			st.errs.Add(1)
		}
		if int64(d) >= s.slowNs || int64(d) >= s.latNs {
			s.slow.Add(t0.Unix(), d, args)
		}
	}
}

// oldKeyLock is the pre-registry striped-lock helper, hasher allocation and
// all.
func (e *benchEnv) oldKeyLock(key []byte) *sync.Mutex {
	h := fnv.New64a()
	h.Write(key)
	stripes := &e.srv.shards[0].locks.Stripes
	return &stripes[h.Sum64()%uint64(len(stripes))]
}

func (e *benchEnv) runRegistry(b *testing.B) {
	cmds := benchArgs()
	w := newRespWriter(io.Discard)
	ctx := &Ctx{s: e.srv, hd: e.hd, w: w, cs: &connState{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.srv.dispatch(ctx, cmds[i%len(cmds)])
	}
	b.StopTimer()
	w.flush()
}

func (e *benchEnv) runSwitch(b *testing.B) {
	cmds := benchArgs()
	w := newRespWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.baselineExecute(w, cmds[i%len(cmds)])
	}
	b.StopTimer()
	w.flush()
}

// BenchmarkDispatch compares the two dispatch paths on the pipelined
// GET/SET workload.
func BenchmarkDispatch(b *testing.B) {
	e := newBenchEnv(b, Config{})
	b.Run("registry", e.runRegistry)
	b.Run("switch", e.runSwitch)
}

// TestDispatchOverheadGate is the CI regression gate: the registry pipeline
// must not be more than 5% slower than the old switch on pipelined GET/SET.
// The two paths are measured in interleaved rounds (so clock-speed drift and
// background noise hit both equally) and compared on their per-round best.
// The race detector skews the two paths differently, so the gate only runs
// in a non-race build (CI gives it a dedicated step).
func TestDispatchOverheadGate(t *testing.T) {
	if raceEnabled {
		t.Skip("skipping benchmark gate under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping benchmark gate in -short mode")
	}
	e := newBenchEnv(t, Config{})
	w := newRespWriter(io.Discard)
	ctx := &Ctx{s: e.srv, hd: e.hd, w: w, cs: &connState{}}

	// One pipelined burst on the wire, exactly as a client would send it:
	// the measured loop parses and executes it end to end, so both paths
	// pay identical RESP-decode costs and the comparison isolates dispatch.
	var burst bytes.Buffer
	for _, args := range benchArgs() {
		burst.WriteString("*" + strconv.Itoa(len(args)) + "\r\n")
		for _, a := range args {
			burst.WriteString("$" + strconv.Itoa(len(a)) + "\r\n")
			burst.Write(a)
			burst.WriteString("\r\n")
		}
	}
	wire := burst.Bytes()
	perBurst := len(benchArgs())

	registry := func(bursts int) {
		for b := 0; b < bursts; b++ {
			r := newRespReader(bytes.NewReader(wire))
			for {
				args, err := r.ReadCommand()
				if err != nil {
					break
				}
				e.srv.dispatch(ctx, args)
			}
		}
	}
	oldSwitch := func(bursts int) {
		for b := 0; b < bursts; b++ {
			r := newRespReader(bytes.NewReader(wire))
			for {
				args, err := r.ReadCommand()
				if err != nil {
					break
				}
				e.baselineExecute(w, args)
			}
		}
	}
	measure := func(f func(int), bursts int) float64 {
		runtime.GC()
		t0 := time.Now()
		f(bursts)
		return float64(time.Since(t0)) / float64(bursts*perBurst)
	}

	const rounds, bursts = 10, 3000
	registry(bursts / 4) // warm up both paths and the store
	oldSwitch(bursts / 4)
	// Two attempts: a genuine dispatch regression fails both; a noise
	// spike from concurrently running package tests (tier-1 runs all
	// packages in parallel) does not flake the build.
	for attempt := 1; ; attempt++ {
		reg, sw := math.MaxFloat64, math.MaxFloat64
		for r := 0; r < rounds; r++ {
			// Alternate measurement order so slow phases (GC debt, CPU
			// frequency shifts) cannot systematically land on one path.
			if r%2 == 0 {
				reg = math.Min(reg, measure(registry, bursts))
				sw = math.Min(sw, measure(oldSwitch, bursts))
			} else {
				sw = math.Min(sw, measure(oldSwitch, bursts))
				reg = math.Min(reg, measure(registry, bursts))
			}
		}
		t.Logf("pipelined GET/SET ns/op (attempt %d): registry=%.1f switch=%.1f (%+.1f%%)",
			attempt, reg, sw, (reg/sw-1)*100)
		if reg <= sw*1.05 {
			return
		}
		if attempt == 2 {
			t.Fatalf("registry dispatch %.1f ns/op is >5%% slower than the switch baseline %.1f ns/op", reg, sw)
		}
	}
}
