package server

// Replication: the server side of internal/repl. A primary taps every
// successful write-flagged command into a repl.Feed (the tap middleware runs
// while the command's stripe locks are still held, so feed order equals
// execution order for conflicting keys), serves PSYNC by streaming a
// checkpoint image followed by the live feed, and answers WAIT from the
// senders' acknowledged offsets. A replica runs a link goroutine that
// applies the feed through the normal dispatch pipeline (never touching
// storage directly — the ralloc-vet replpurity rule holds internal/repl to
// the same boundary) and refuses client writes with -READONLY until
// REPLICAOF NO ONE promotes it.
//
// Determinism argument (why byte-equal feeds imply equal stores): every
// propagated entry is either the executed command verbatim or its
// clock-free rewrite (EXPIRE/PEXPIRE → PEXPIREAT, SETEX/PSETEX → PSETEXAT),
// so replaying the entries in feed order against the same starting image is
// a pure function of the bytes — no replica-side clock reads, no randomness.
// Non-error "failures" (SETNX on an existing key, EXPIRE on a missing key)
// propagate too and re-fail identically by induction on the shared prefix.

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/obs"
	"repro/internal/repl"
)

// CheckpointImage is an open checkpoint stream handed to a full resync: the
// image bytes plus the replication position stamped in the image header.
// The server streams R to the replica and starts its feed cursor at
// ReplOffset; Close is called when the stream finishes either way.
type CheckpointImage struct {
	R          io.ReadCloser
	ReplID     uint64
	ReplOffset uint64
}

// replState is the server's replication half: the feed, the connected
// sender set, and the role bit.
type replState struct {
	s    *Server
	feed *repl.Feed

	mu       sync.Mutex
	senders  map[*replSender]struct{}
	link     *replicaLink // non-nil while this server follows a primary
	upstream string       // the primary's address while a replica; "" after promotion
	closed   bool

	// fullMu serializes full resyncs: each produces a fresh checkpoint, and
	// concurrent SaveFileOnline runs on one Region cannot overlap.
	fullMu sync.Mutex

	replica atomic.Bool

	fullSyncs    atomic.Uint64
	partialSyncs atomic.Uint64
	applied      atomic.Uint64
	applyErrs    atomic.Uint64
}

func newReplState(s *Server) *replState {
	capacity := s.cfg.ReplBacklogBytes
	if capacity <= 0 {
		capacity = 1 << 20
	}
	id := s.cfg.ReplID
	if id == 0 {
		id = randomReplID()
	}
	rs := &replState{
		s:       s,
		feed:    repl.NewFeed(capacity, id, s.cfg.ReplOffset),
		senders: make(map[*replSender]struct{}),
	}
	if s.cfg.ReplicaOf != "" {
		rs.replica.Store(true)
		rs.upstream = s.cfg.ReplicaOf
	}
	return rs
}

// randomReplID mints a fresh nonzero stream ID (fresh primaries and
// promotions; zero is the "unset" image-header value).
func randomReplID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano()) | 1
	}
	id := binary.LittleEndian.Uint64(b[:])
	if id == 0 {
		id = 1
	}
	return id
}

// tap is the propagation middleware, appended innermost (directly around the
// handler) for write-flagged commands only. It runs with the command's
// stripe locks held. Error replies propagate nothing; successful executions
// append the executed args — or the handler's clock-free rewrite (ctx.prop)
// — as one feed entry. Entries applied from the replication link are
// re-appended verbatim by the link itself (offset parity), so the tap backs
// off when ctx.fromLink.
func (rs *replState) tap(c *Command, next Handler) Handler {
	if c.Flags&FlagWrite == 0 {
		return next
	}
	return func(ctx *Ctx) {
		ctx.prop = nil
		e0 := ctx.w.errs
		next(ctx)
		if ctx.fromLink || ctx.w.errs != e0 {
			return
		}
		args := ctx.args
		if ctx.prop != nil {
			args = ctx.prop
			ctx.prop = nil
		}
		rs.feed.Append(args)
		// Per-shard feed attribution. The entry carries no shard id on the
		// wire — the id is derivable on both ends from the key — this
		// counter just surfaces the write balance in INFO cluster/metrics.
		if ctx.sh != nil {
			ctx.sh.replWrites.Add(1)
		}
	}
}

// isClosed reports whether replication teardown has begun.
func (rs *replState) isClosed() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.closed
}

// close tears replication down: the feed closes (draining senders see
// ErrClosed), every in-flight sender is aborted at its next entry or image
// chunk boundary with a clean "-ERR" line, and the replica link stops.
// Called from Shutdown and Abort after beginClose, outside s.mu.
func (rs *replState) close() {
	link, senders, already := rs.detach()
	if already {
		return
	}
	rs.feed.Close()
	for _, sd := range senders {
		sd.abort("server is shutting down")
	}
	if link != nil {
		link.stopAndWait()
	}
}

// detach marks the state closed under the lock and hands back everything
// whose teardown blocks (sender aborts, the link join) so close can run it
// lock-free.
func (rs *replState) detach() (link *replicaLink, senders []*replSender, already bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		return nil, nil, true
	}
	rs.closed = true
	link, rs.link = rs.link, nil
	for sd := range rs.senders {
		senders = append(senders, sd)
	}
	return link, senders, false
}

// promote turns a replica into a writable primary: the link is stopped
// synchronously (no entry can apply after promotion), the role bit flips,
// and the feed gets a fresh stream ID so replicas of the old stream cannot
// silently partial-resync across the divergence point.
func (rs *replState) promote() {
	if link := rs.takeLink(); link != nil {
		link.stopAndWait()
	}
	if rs.replica.CompareAndSwap(true, false) {
		rs.feed.SetID(randomReplID())
	}
}

// takeLink detaches the upstream link under the lock; the caller joins it
// outside (the join blocks on the apply loop).
func (rs *replState) takeLink() *replicaLink {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	link := rs.link
	rs.link = nil
	rs.upstream = ""
	return link
}

func (rs *replState) addSender(sd *replSender) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		return false
	}
	rs.senders[sd] = struct{}{}
	return true
}

func (rs *replState) removeSender(sd *replSender) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	delete(rs.senders, sd)
}

// ackedAtLeast counts connected senders whose replica has acknowledged
// offset target or beyond — WAIT's condition.
func (rs *replState) ackedAtLeast(target uint64) int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := 0
	for sd := range rs.senders {
		if sd.acked.Load() >= target {
			n++
		}
	}
	return n
}

// replSender is one PSYNC stream being served: the hijacked connection, the
// feed cursor, and the replica's acknowledged offset (updated by the ACK
// reader goroutine, read by WAIT).
type replSender struct {
	conn     net.Conn
	cur      atomic.Pointer[repl.Cursor]
	acked    atomic.Uint64
	sent     atomic.Uint64
	abortMsg atomic.Pointer[string]
}

// abort requests a clean stream abort: the image copier checks the reason
// between chunks, and a cursor blocked on the feed wakes with ErrAborted.
func (sd *replSender) abort(msg string) {
	sd.abortMsg.CompareAndSwap(nil, &msg)
	if c := sd.cur.Load(); c != nil {
		c.Abort()
	}
}

func (sd *replSender) abortReason() string {
	if p := sd.abortMsg.Load(); p != nil {
		return *p
	}
	return ""
}

// servePSync runs one replication stream on a hijacked connection: the
// handshake (CONTINUE from the backlog when the requested position is
// covered under the same stream ID, FULLRESYNC with a fresh checkpoint image
// otherwise), then the live feed in whole-entry batches. It returns when the
// replica disconnects, falls behind the backlog, or the server shuts down —
// always leaving the wire at an entry boundary, with a parseable "-ERR" line
// when the cut was server-initiated.
func (rs *replState) servePSync(conn net.Conn, id, off uint64, wantFull bool) {
	sd := &replSender{conn: conn}
	if !rs.addSender(sd) {
		repl.WriteAbort(conn, "server is shutting down")
		return
	}
	defer rs.removeSender(sd)
	bw := bufio.NewWriterSize(conn, 64<<10)

	var cur *repl.Cursor
	if !wantFull && id == rs.feed.ID() {
		if c, ok := rs.feed.CursorAt(off); ok {
			if err := repl.WriteContinue(bw, off); err != nil {
				return
			}
			rs.partialSyncs.Add(1)
			cur = c
		}
	}
	if cur == nil {
		c, err := rs.fullSync(bw, sd)
		if err != nil {
			if !errors.Is(err, repl.ErrStreamAbort) { // abort line already on the wire
				repl.WriteAbort(bw, "full resync failed: "+err.Error())
			}
			bw.Flush()
			return
		}
		cur = c
	}
	sd.cur.Store(cur)
	// An abort that raced the handshake saw a nil cursor; honor it now.
	if msg := sd.abortReason(); msg != "" {
		repl.WriteAbort(bw, msg)
		bw.Flush()
		return
	}
	go rs.readAcks(sd)

	// The handshake (CONTINUE, or FULLRESYNC's image tail) must reach the
	// wire before blocking on feed growth: a replica that is already caught
	// up would otherwise wait on a buffered handshake while we wait on it.
	if err := bw.Flush(); err != nil {
		return
	}

	for {
		p, err := cur.NextEntries(256 << 10)
		if err != nil {
			switch {
			case errors.Is(err, repl.ErrClosed):
				repl.WriteAbort(bw, "server is shutting down")
			case errors.Is(err, repl.ErrFellBehind):
				repl.WriteAbort(bw, "replica fell behind the backlog; reconnect for a full resync")
			case errors.Is(err, repl.ErrAborted):
				msg := sd.abortReason()
				if msg == "" {
					msg = "stream aborted"
				}
				repl.WriteAbort(bw, msg)
			}
			bw.Flush()
			return
		}
		if _, err := bw.Write(p); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		sd.sent.Store(cur.Offset())
	}
}

// fullSync produces and streams a bootstrap image per shard: pin the backlog
// (so the bytes after the images' cut-over offset are still retained when
// they finish streaming), checkpoint — Save's global cut stamps ONE
// (id, offset) into every shard's image when there is more than one shard —
// then stream the N images sequentially with abort checks at chunk
// boundaries, and return a cursor at the common stamped offset. The
// handshake advertises the shard count, so a replica with a different
// -cluster-shards fails the bootstrap loudly instead of mis-routing keys.
func (rs *replState) fullSync(bw *bufio.Writer, sd *replSender) (*repl.Cursor, error) {
	for _, sh := range rs.s.shards {
		if sh.be.OpenCheckpoint == nil {
			return nil, errors.New("no checkpoint source configured (volatile heap)")
		}
	}
	rs.fullMu.Lock()
	defer rs.fullMu.Unlock()
	rs.feed.Pin()
	defer rs.feed.Unpin()
	if err := rs.s.Save(); err != nil {
		return nil, err
	}
	imgs := make([]*CheckpointImage, 0, len(rs.s.shards))
	defer func() {
		for _, img := range imgs {
			img.R.Close()
		}
	}()
	for _, sh := range rs.s.shards {
		img, err := sh.be.OpenCheckpoint()
		if err != nil {
			return nil, err
		}
		imgs = append(imgs, img)
	}
	off := imgs[0].ReplOffset
	for i, img := range imgs[1:] {
		if img.ReplOffset != off {
			// Cannot happen after a global-cut Save; a mismatch means the
			// embedder wired independent per-shard checkpoint funcs.
			return nil, fmt.Errorf("shard %d image offset %d diverges from shard 0's %d", i+1, img.ReplOffset, off)
		}
	}
	cur, ok := rs.feed.CursorAt(off)
	if !ok {
		return nil, errors.New("checkpoint image offset outside the backlog")
	}
	if err := repl.WriteFullResync(bw, rs.feed.ID(), off, len(imgs)); err != nil {
		return nil, err
	}
	t0 := time.Now()
	for _, img := range imgs {
		if _, err := repl.CopyImageChunksAbort(bw, img.R, sd.abortReason); err != nil {
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	rs.s.events.Record("repl-full-sync", t0, time.Since(t0))
	rs.fullSyncs.Add(1)
	return cur, nil
}

// readAcks consumes the replica→primary side of a PSYNC connection:
// REPLCONF ACK <offset> entries. A read error (replica died) aborts the
// sender so a stream blocked waiting for feed growth notices promptly
// instead of holding a cursor forever.
func (rs *replState) readAcks(sd *replSender) {
	br := bufio.NewReaderSize(sd.conn, 4<<10)
	for {
		args, _, err := repl.ReadEntry(br)
		if err != nil {
			sd.abort("replica connection lost")
			return
		}
		if len(args) == 3 && strings.EqualFold(string(args[0]), "REPLCONF") && strings.EqualFold(string(args[1]), "ACK") {
			if n, err := strconv.ParseUint(string(args[2]), 10, 64); err == nil {
				sd.acked.Store(n)
			}
		}
	}
}

// errFullResyncNeeded: the primary answered our partial-resync request with
// FULLRESYNC. A live heap cannot absorb an image, so the link reports up
// (OnFullResyncNeeded) and stops; the embedder re-bootstraps.
var errFullResyncNeeded = errors.New("server: primary demands a full resync")

// replicaLink is the replica's connection to its primary: dial, request a
// partial resync from the feed's applied offset, apply entries through
// dispatch, acknowledge. Reconnects with backoff on transient failures.
type replicaLink struct {
	rs   *replState
	addr string
	hds  []alloc.Handle // one per shard: applied entries route like client writes

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu   sync.Mutex // guards conn (for close/ack writes) and up
	conn net.Conn
	up   bool
}

func (rs *replState) startLink(addr string) {
	l := &replicaLink{rs: rs, addr: addr, stop: make(chan struct{})}
	for _, sh := range rs.s.shards {
		l.hds = append(l.hds, sh.a.NewHandle())
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.link = l
	l.wg.Add(1)
	go l.run()
}

func (l *replicaLink) stopped() bool {
	select {
	case <-l.stop:
		return true
	default:
		return false
	}
}

// stopAndWait stops the link synchronously: after it returns, no further
// entry will be applied (promotion and shutdown both depend on that).
func (l *replicaLink) stopAndWait() {
	l.stopOnce.Do(func() { close(l.stop) })
	l.closeConn()
	l.wg.Wait()
}

func (l *replicaLink) closeConn() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		l.conn.Close()
	}
}

// setConn installs (or clears) the live connection under the lock; it
// refuses — closing the conn — when the link is already stopped, so a dial
// racing stopAndWait cannot leak a connection that outlives the link.
func (l *replicaLink) setConn(conn net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if conn != nil && l.stopped() {
		return false
	}
	l.conn = conn
	l.up = conn != nil
	return true
}

func (l *replicaLink) isUp() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.up
}

func (l *replicaLink) run() {
	defer l.wg.Done()
	// The link's Ctx applies entries through the normal dispatch pipeline
	// with replies discarded: the primary already answered the client.
	ctx := &Ctx{s: l.rs.s, hds: l.hds, hd: l.hds[0], w: newRespWriter(io.Discard), fromLink: true}
	backoff := 50 * time.Millisecond
	for !l.stopped() {
		err := l.connectAndApply(ctx, &backoff)
		l.setConn(nil)
		if errors.Is(err, errFullResyncNeeded) {
			if fn := l.rs.s.cfg.OnFullResyncNeeded; fn != nil {
				// Not a goroutine of its own: run() is done either way, and
				// the callback must not apply-race a link that's still live.
				fn()
			}
			return
		}
		select {
		case <-l.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// connectAndApply runs one link session: dial, PSYNC from the applied
// offset, then the apply loop until the stream breaks.
func (l *replicaLink) connectAndApply(ctx *Ctx, backoff *time.Duration) error {
	conn, err := repl.Dial(l.addr)
	if err != nil {
		return err
	}
	if !l.setConn(conn) {
		conn.Close()
		return errors.New("link stopped")
	}
	feed := l.rs.feed
	req := [][]byte{
		[]byte("PSYNC"),
		[]byte(fmt.Sprintf("%016x", feed.ID())),
		[]byte(strconv.FormatUint(feed.Offset(), 10)),
	}
	if _, err := conn.Write(repl.AppendEntry(nil, req)); err != nil {
		return err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	h, err := repl.ReadHandshake(br)
	if err != nil {
		return err
	}
	if h.Full {
		return errFullResyncNeeded
	}
	if h.Offset != feed.Offset() {
		return fmt.Errorf("server: CONTINUE at %d, applied offset is %d", h.Offset, feed.Offset())
	}
	*backoff = 50 * time.Millisecond // handshake succeeded: reset the retry clock

	// Periodic acks bound the primary's WAIT staleness even when the feed
	// idles; the post-drain ack below keeps the common case prompt.
	ackDone := make(chan struct{})
	defer close(ackDone)
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		t := time.NewTicker(200 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-ackDone:
				return
			case <-l.stop:
				return
			case <-t.C:
				l.sendAck(conn)
			}
		}
	}()

	for {
		args, raw, err := repl.ReadEntry(br)
		if err != nil {
			return err
		}
		l.apply(ctx, args, raw)
		if br.Buffered() == 0 {
			l.sendAck(conn)
		}
	}
}

// apply executes one feed entry through dispatch and force-advances the
// replica's feed with the exact wire bytes — even when the entry failed to
// apply (counted in apply_errors), because the offset accounting must stay
// byte-identical to the primary's or every future partial resync is off by
// the failed entry's length. Only write-flagged commands are accepted; a
// corrupt or hostile stream cannot make the replica execute SHUTDOWN or
// FLUSH admin paths it never propagates.
func (l *replicaLink) apply(ctx *Ctx, args [][]byte, raw []byte) {
	rs := l.rs
	ok := false
	if bc, found := rs.s.cmds[strings.ToUpper(string(args[0]))]; found && bc.cmd.Flags&FlagWrite != 0 {
		e0 := ctx.w.errs
		rs.s.dispatch(ctx, args)
		ok = ctx.w.errs == e0
	}
	if !ok {
		rs.applyErrs.Add(1)
	}
	rs.feed.AppendRaw(raw)
	rs.applied.Add(1)
}

// sendAck reports the applied offset upstream. Best-effort: a write error
// here also breaks the read loop, which owns reconnection.
func (l *replicaLink) sendAck(conn net.Conn) {
	off := l.rs.feed.Offset()
	entry := repl.AppendEntry(nil, [][]byte{
		[]byte("REPLCONF"), []byte("ACK"), []byte(strconv.FormatUint(off, 10)),
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	conn.Write(entry)
}

// ---- command handlers ----

// cmdReplicaOf serves REPLICAOF. Only promotion (NO ONE) works on a live
// server: pointing a running heap at a (new) primary would require
// discarding it for the primary's image, which is a restart-time operation.
func cmdReplicaOf(ctx *Ctx) {
	rs := ctx.s.repl
	if rs == nil {
		ctx.w.errorf("replication not enabled")
		return
	}
	if strings.EqualFold(string(ctx.args[1]), "no") && strings.EqualFold(string(ctx.args[2]), "one") {
		// REPLICAOF is keyless, so dispatch gave it no barrier: joining the
		// link goroutine (whose apply loop takes shard barriers of its own)
		// cannot deadlock against a pending SAVE fence.
		rs.promote()
		ctx.w.simple("OK")
		return
	}
	ctx.w.errorf("only REPLICAOF NO ONE is supported at runtime; following a primary requires a restart with -replicaof (the heap must be re-bootstrapped from its checkpoint)")
}

// cmdReplConf accepts REPLCONF capability chatter with +OK. ACKs on a live
// replication stream never come through dispatch — they are parsed by the
// sender's ACK reader after PSYNC hijacks the connection.
func cmdReplConf(ctx *Ctx) {
	ctx.w.simple("OK")
}

// cmdPSync validates the handshake and hijacks the connection: the actual
// stream is served by servePSync after the dispatch barrier is released
// (a full resync runs Save, which needs the barrier's write side).
func cmdPSync(ctx *Ctx) {
	rs := ctx.s.repl
	if rs == nil {
		ctx.w.errorf("replication not enabled")
		return
	}
	if rs.replica.Load() {
		ctx.w.errorf("replica cannot serve PSYNC (chained replication is unsupported)")
		return
	}
	full := string(ctx.args[1]) == "?"
	var id uint64
	var err error
	if !full {
		if id, err = strconv.ParseUint(string(ctx.args[1]), 16, 64); err != nil {
			ctx.w.errorf("invalid replication ID")
			return
		}
	}
	off, err := strconv.ParseUint(string(ctx.args[2]), 10, 64)
	if err != nil {
		ctx.w.errorf("invalid replication offset")
		return
	}
	ctx.hijack = func(conn net.Conn) { rs.servePSync(conn, id, off, full) }
}

// cmdWait blocks until numreplicas connected replicas have acknowledged
// everything the feed holds right now, or the timeout (milliseconds; 0
// waits indefinitely) passes — replying with the count that acknowledged.
// WAIT is keyless and holds no barrier while blocking: a checkpoint fence
// never waits out a WAIT.
func cmdWait(ctx *Ctx) {
	num, err1 := strconv.Atoi(string(ctx.args[1]))
	tmo, err2 := strconv.ParseInt(string(ctx.args[2]), 10, 64)
	if err1 != nil || err2 != nil || num < 0 || tmo < 0 {
		ctx.w.errorf("value is not an integer or out of range")
		return
	}
	rs := ctx.s.repl
	if rs == nil {
		ctx.w.integer(0)
		return
	}
	target := rs.feed.Offset()
	var deadline time.Time
	if tmo > 0 {
		deadline = time.Now().Add(time.Duration(tmo) * time.Millisecond)
	}
	for {
		n := rs.ackedAtLeast(target)
		if n >= num || rs.isClosed() || (!deadline.IsZero() && time.Now().After(deadline)) {
			ctx.w.integer(int64(n))
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// cmdPExpireAt sets an absolute unix-millisecond deadline — the clock-free
// form EXPIRE/PEXPIRE rewrite to for propagation, and a client-usable
// command in its own right. A deadline at or before zero is clamped to the
// "expired since forever" stamp (0 is the immortal sentinel).
func cmdPExpireAt(ctx *Ctx) {
	at, err := strconv.ParseInt(string(ctx.args[2]), 10, 64)
	if err != nil {
		ctx.w.errorf("value is not an integer or out of range")
		return
	}
	if at <= 0 {
		at = 1
	}
	if ctx.sh.st.Expire(string(ctx.args[1]), at) {
		ctx.w.integer(1)
	} else {
		ctx.w.integer(0)
	}
}

// cmdPSetExAt is SETEX with an absolute unix-millisecond deadline — the
// clock-free propagation form of SETEX/PSETEX.
func cmdPSetExAt(ctx *Ctx) {
	at, err := strconv.ParseInt(string(ctx.args[2]), 10, 64)
	if err != nil {
		ctx.w.errorf("value is not an integer or out of range")
		return
	}
	if at <= 0 {
		at = 1
	}
	if !ctx.sh.st.SetBytesExpire(ctx.hd, ctx.args[1], ctx.args[3], at) {
		ctx.w.errorf("out of memory")
		return
	}
	ctx.w.simple("OK")
}

// ---- server integration ----

// ReplMeta returns the replication stream ID and the feed's current offset —
// what an embedder stamps into the heap image before a clean-shutdown save,
// so a restart resumes the stream where it stopped. (0, 0) when replication
// is disabled.
func (s *Server) ReplMeta() (id, off uint64) {
	if s.repl == nil {
		return 0, 0
	}
	return s.repl.feed.ID(), s.repl.feed.Offset()
}

// replicationInfo renders the INFO replication section.
func (s *Server) replicationInfo() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Replication\r\n")
	rs := s.repl
	if rs == nil {
		fmt.Fprintf(&b, "repl_enabled:0\r\nrole:primary\r\n")
		return b.String()
	}
	role := "primary"
	if rs.replica.Load() {
		role = "replica"
	}
	fmt.Fprintf(&b, "repl_enabled:1\r\nrole:%s\r\n", role)
	fmt.Fprintf(&b, "repl_id:%016x\r\nrepl_offset:%d\r\n", rs.feed.ID(), rs.feed.Offset())
	fmt.Fprintf(&b, "repl_backlog_start:%d\r\nrepl_backlog_bytes:%d\r\nrepl_entries:%d\r\n",
		rs.feed.StartOffset(), rs.feed.BacklogLen(), rs.feed.Entries())
	fmt.Fprintf(&b, "full_syncs:%d\r\npartial_syncs:%d\r\n", rs.fullSyncs.Load(), rs.partialSyncs.Load())

	upstream, link, senders := rs.snapshot()

	if role == "replica" {
		up := 0
		if link != nil && link.isUp() {
			up = 1
		}
		fmt.Fprintf(&b, "upstream:%s\r\nlink_up:%d\r\napplied_entries:%d\r\napply_errors:%d\r\n",
			upstream, up, rs.applied.Load(), rs.applyErrs.Load())
	}
	fmt.Fprintf(&b, "connected_replicas:%d\r\n", len(senders))
	off := rs.feed.Offset()
	for i, sd := range senders {
		acked := sd.acked.Load()
		lag := uint64(0)
		if off > acked {
			lag = off - acked
		}
		fmt.Fprintf(&b, "replica%d:sent_offset=%d,ack_offset=%d,lag_bytes=%d\r\n", i, sd.sent.Load(), acked, lag)
	}
	return b.String()
}

// snapshot copies the mutable sender/link view out from under the lock for
// the observability readers.
func (rs *replState) snapshot() (upstream string, link *replicaLink, senders []*replSender) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for sd := range rs.senders {
		senders = append(senders, sd)
	}
	return rs.upstream, rs.link, senders
}

// collectRepl contributes the replication /metrics families.
func (s *Server) collectRepl(e *obs.Emitter) {
	rs := s.repl
	if rs == nil {
		return
	}
	e.Single("ralloc_repl_offset_bytes", "gauge", "Replication feed end offset (applied offset on a replica).", float64(rs.feed.Offset()))
	e.Single("ralloc_repl_backlog_bytes", "gauge", "Bytes retained in the replication backlog.", float64(rs.feed.BacklogLen()))
	e.Single("ralloc_repl_entries_total", "counter", "Feed entries appended (propagated or applied).", float64(rs.feed.Entries()))
	e.Single("ralloc_repl_full_syncs_total", "counter", "Full resyncs served.", float64(rs.fullSyncs.Load()))
	e.Single("ralloc_repl_partial_syncs_total", "counter", "Partial resyncs served from the backlog.", float64(rs.partialSyncs.Load()))
	e.Single("ralloc_repl_apply_errors_total", "counter", "Feed entries that failed to apply on this replica.", float64(rs.applyErrs.Load()))

	_, _, senders := rs.snapshot()
	e.Single("ralloc_repl_connected_replicas", "gauge", "Replication streams currently being served.", float64(len(senders)))
	off := rs.feed.Offset()
	maxLag := uint64(0)
	for _, sd := range senders {
		if acked := sd.acked.Load(); off > acked && off-acked > maxLag {
			maxLag = off - acked
		}
	}
	e.Single("ralloc_repl_max_ack_lag_bytes", "gauge", "Largest unacknowledged byte span across connected replicas.", float64(maxLag))
}
