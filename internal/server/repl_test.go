package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
	"repro/internal/repl"
)

// replNode is one file-backed, replication-enabled server in-process — the
// test-harness equivalent of a ralloc-serve process, including the replica
// bootstrap (image download / probe) that normally runs before the heap
// opens.
type replNode struct {
	dir      string
	heapPath string
	sock     string
	heap     *ralloc.Heap
	st       *kvstore.Store
	srv      *Server
	resync   chan struct{}
	stopped  bool
}

// openReplNode starts a node in dir (primary when replicaOf is empty). A
// replica bootstraps first: no local image downloads one; an existing image
// probes the primary and re-downloads only when its stamped offset is no
// longer covered. Reopening a dir whose heap was abandoned (killNode)
// replays the crash-recovery path, exactly like a SIGKILL'd ralloc-serve.
func openReplNode(t *testing.T, dir, replicaOf string, tweak func(*Config)) *replNode {
	t.Helper()
	heapPath := filepath.Join(dir, "kv.heap")
	sock := filepath.Join(dir, "kv.sock")
	if replicaOf != "" {
		if _, err := os.Stat(heapPath); err != nil {
			if _, _, err := repl.BootstrapImage(replicaOf, heapPath); err != nil {
				t.Fatalf("bootstrap image: %v", err)
			}
		} else {
			id, off, err := pmem.ReadImageMeta(heapPath)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := repl.ProbeSync(replicaOf, heapPath, id, off); err != nil {
				t.Fatalf("probe sync: %v", err)
			}
		}
	}
	heap, dirty, err := ralloc.Open(heapPath, ralloc.Config{
		SBRegion: 64 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := heap.AsAllocator()
	var st *kvstore.Store
	root := heap.GetRoot(0, nil)
	switch {
	case root == 0:
		st, root = kvstore.Open(a, a.NewHandle(), 1024)
		heap.SetRoot(0, root)
	case dirty:
		heap.GetRoot(0, kvstore.Filter(a, root))
		if _, err := heap.Recover(); err != nil {
			t.Fatalf("recover: %v", err)
		}
		st = kvstore.Attach(a, root)
	default:
		st = kvstore.Attach(a, root)
	}
	n := &replNode{dir: dir, heapPath: heapPath, sock: sock, heap: heap, st: st,
		resync: make(chan struct{}, 1)}
	cfg := Config{
		ReplBacklogBytes: 1 << 20,
		ReplicaOf:        replicaOf,
		Checkpoint: func() error {
			heap.Region().Persist()
			return heap.Region().SaveFile(heapPath)
		},
		OpenCheckpoint:   func() (*CheckpointImage, error) { return testOpenCheckpoint(heapPath) },
		CheckpointOffset: func(id, off uint64) { heap.Region().SetReplMeta(id, off) },
		OnFullResyncNeeded: func() {
			select {
			case n.resync <- struct{}{}:
			default:
			}
		},
	}
	cfg.ReplID, cfg.ReplOffset = heap.Region().ReplMeta()
	if tweak != nil {
		tweak(&cfg)
	}
	n.srv = New(a, st, cfg)
	os.Remove(sock)
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go n.srv.Serve(l)
	t.Cleanup(func() {
		if !n.stopped {
			n.srv.Shutdown(2 * time.Second)
		}
	})
	return n
}

func testOpenCheckpoint(path string) (*CheckpointImage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	id, off, err := pmem.ReadImageMeta(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &CheckpointImage{R: f, ReplID: id, ReplOffset: off}, nil
}

// killNode is SIGKILL in-process: hard-stop the server and abandon the heap
// without closing it, so the on-disk image stays whatever the last
// checkpoint wrote. The dir can then be reopened through the recovery path.
func killNode(n *replNode) {
	n.stopped = true
	n.srv.Abort()
}

// stopNode is a clean shutdown: drain, stamp the final feed position, save
// the image.
func stopNode(t *testing.T, n *replNode) {
	t.Helper()
	n.stopped = true
	n.srv.Shutdown(2 * time.Second)
	if id, off := n.srv.ReplMeta(); id != 0 {
		n.heap.Region().SetReplMeta(id, off)
	}
	if err := n.heap.Close(); err != nil {
		t.Fatal(err)
	}
}

func dialNode(t *testing.T, n *replNode) *Client {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := DialTimeout("unix", n.sock, time.Second)
		if err == nil {
			t.Cleanup(func() { c.Close() })
			return c
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicationBasic: a replica bootstrapped from a primary's checkpoint
// follows the live feed, refuses client writes with -READONLY, and WAIT on
// the primary observes the replica's acknowledgments.
func TestReplicationBasic(t *testing.T) {
	primary := openReplNode(t, t.TempDir(), "", nil)
	c := dialNode(t, primary)
	for i := 0; i < 50; i++ {
		if err := c.Set(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i)); err != nil {
			t.Fatal(err)
		}
	}

	replica := openReplNode(t, t.TempDir(), primary.sock, nil)
	rc := dialNode(t, replica)

	// More writes after the replica attached, then WAIT: once one replica
	// has acknowledged the barrier offset, every prior write is applied.
	for i := 50; i < 100; i++ {
		if err := c.Set(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := c.Wait(1, 5*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT 1 = %d, %v", n, err)
	}
	for _, i := range []int{0, 49, 50, 99} {
		v, ok, err := rc.Get(fmt.Sprintf("k%02d", i))
		if err != nil || !ok || v != fmt.Sprintf("v%02d", i) {
			t.Fatalf("replica GET k%02d = (%q,%v,%v)", i, v, ok, err)
		}
	}

	// Replica refuses writes.
	if rp, err := rc.Do("SET", "nope", "x"); err != nil || !strings.Contains(rp.Str, "READONLY") {
		t.Fatalf("replica SET = %+v, %v (want READONLY)", rp, err)
	}
	// And refuses them at MULTI queue time too.
	if err := rc.Multi(); err != nil {
		t.Fatal(err)
	}
	if rp, err := rc.Do("SET", "nope", "x"); err != nil || !strings.Contains(rp.Str, "READONLY") {
		t.Fatalf("replica queued SET = %+v, %v (want READONLY)", rp, err)
	}
	if _, err := rc.Exec(); err == nil || !strings.Contains(err.Error(), "EXECABORT") {
		t.Fatalf("EXEC after READONLY queue error = %v (want EXECABORT)", err)
	}

	// Roles in INFO.
	for _, tc := range []struct {
		c    *Client
		want string
	}{{c, "role:primary"}, {rc, "role:replica"}} {
		rp, err := tc.c.Do("INFO", "replication")
		if err != nil || !strings.Contains(string(rp.Bulk), tc.want) {
			t.Fatalf("INFO replication = %v, %v (want %s)", rp.Text(), err, tc.want)
		}
	}

	// WAIT for more replicas than exist times out with the real count.
	if n, err := c.Wait(2, 100*time.Millisecond); err != nil || n != 1 {
		t.Fatalf("WAIT 2 = %d, %v (want 1)", n, err)
	}
}

// TestEveryWriteCommandPropagates is generated from the registry: every
// FlagWrite command's successful invocation must append exactly one feed
// entry, carrying the executed args — or the clock-free rewrite for the
// EXPIRE/SETEX families, whose relative durations must not reach a replica.
// The sample table is completeness-checked in both directions, like
// TestEveryWriteCommandPersists.
func TestEveryWriteCommandPropagates(t *testing.T) {
	type sample struct {
		setup [][]string
		cmd   []string
		// rewrite, when non-empty, is the command name the feed entry must
		// carry instead of the one sent.
		rewrite string
	}
	samples := map[string]sample{
		"SET":       {cmd: []string{"SET", "rp:set", "v"}},
		"SETNX":     {cmd: []string{"SETNX", "rp:setnx", "v"}},
		"SETEX":     {cmd: []string{"SETEX", "rp:setex", "100", "v"}, rewrite: "PSETEXAT"},
		"PSETEX":    {cmd: []string{"PSETEX", "rp:psetex", "100000", "v"}, rewrite: "PSETEXAT"},
		"APPEND":    {setup: [][]string{{"SET", "rp:append", "v"}}, cmd: []string{"APPEND", "rp:append", "w"}},
		"GETSET":    {setup: [][]string{{"SET", "rp:getset", "v"}}, cmd: []string{"GETSET", "rp:getset", "w"}},
		"GETDEL":    {setup: [][]string{{"SET", "rp:getdel", "v"}}, cmd: []string{"GETDEL", "rp:getdel"}},
		"INCR":      {setup: [][]string{{"SET", "rp:incr", "41"}}, cmd: []string{"INCR", "rp:incr"}},
		"MSET":      {cmd: []string{"MSET", "rp:mset1", "v", "rp:mset2", "v"}},
		"DEL":       {setup: [][]string{{"SET", "rp:del", "v"}}, cmd: []string{"DEL", "rp:del"}},
		"FLUSHALL":  {setup: [][]string{{"SET", "rp:flushall", "v"}}, cmd: []string{"FLUSHALL"}},
		"EXPIRE":    {setup: [][]string{{"SET", "rp:expire", "v"}}, cmd: []string{"EXPIRE", "rp:expire", "100"}, rewrite: "PEXPIREAT"},
		"PEXPIRE":   {setup: [][]string{{"SET", "rp:pexpire", "v"}}, cmd: []string{"PEXPIRE", "rp:pexpire", "100000"}, rewrite: "PEXPIREAT"},
		"PERSIST":   {setup: [][]string{{"SET", "rp:persist", "v"}, {"EXPIRE", "rp:persist", "100"}}, cmd: []string{"PERSIST", "rp:persist"}},
		"PEXPIREAT": {setup: [][]string{{"SET", "rp:pexpireat", "v"}}, cmd: []string{"PEXPIREAT", "rp:pexpireat", "99999999999999"}},
		"PSETEXAT":  {cmd: []string{"PSETEXAT", "rp:psetexat", "99999999999999", "v"}},
		"HSET":      {cmd: []string{"HSET", "rp:hset", "f", "v"}},
		"HDEL":      {setup: [][]string{{"HSET", "rp:hdel", "f", "v"}}, cmd: []string{"HDEL", "rp:hdel", "f"}},
		"LPUSH":     {cmd: []string{"LPUSH", "rp:lpush", "v"}},
		"RPUSH":     {cmd: []string{"RPUSH", "rp:rpush", "v"}},
		"LPOP":      {setup: [][]string{{"RPUSH", "rp:lpop", "a", "b"}}, cmd: []string{"LPOP", "rp:lpop"}},
		"RPOP":      {setup: [][]string{{"RPUSH", "rp:rpop", "a", "b"}}, cmd: []string{"RPOP", "rp:rpop"}},
	}

	writeCmds := map[string]bool{}
	for _, cmd := range Commands() {
		if cmd.Flags&FlagWrite != 0 {
			writeCmds[cmd.Name] = true
			if _, ok := samples[cmd.Name]; !ok {
				t.Errorf("write command %s has no propagation sample: add one to this test", cmd.Name)
			}
		}
	}
	for name := range samples {
		if !writeCmds[name] {
			t.Errorf("sample %s is not a FlagWrite command in the registry: drop or fix it", name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	ts := startServer(t, Config{ReplBacklogBytes: 1 << 20}, 0)
	c := dial(t, ts)
	feed := ts.srv.repl.feed

	readEntries := func(off uint64) [][][]byte {
		cur, ok := feed.CursorAt(off)
		if !ok {
			t.Fatalf("backlog no longer covers offset %d", off)
		}
		p, err := cur.NextEntries(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		var out [][][]byte
		br := bufio.NewReader(bytes.NewReader(p))
		for total := 0; total < len(p); {
			args, raw, err := repl.ReadEntry(br)
			if err != nil {
				t.Fatalf("decoding feed entry: %v", err)
			}
			out = append(out, args)
			total += len(raw)
		}
		return out
	}

	for _, cmd := range Commands() {
		if cmd.Flags&FlagWrite == 0 {
			continue
		}
		s := samples[cmd.Name]
		for _, pre := range s.setup {
			if rp, err := c.Do(pre...); err != nil || rp.Kind == '-' {
				t.Fatalf("%s setup %v: err=%v reply=%+v", cmd.Name, pre, err, rp)
			}
		}
		// Consume setup entries so the measured window is this command only.
		off0 := feed.Offset()
		before := time.Now().UnixMilli()
		rp, err := c.Do(s.cmd...)
		if err != nil {
			t.Fatalf("%s: %v", cmd.Name, err)
		}
		if rp.Kind == '-' {
			t.Fatalf("%s replied error %q: sample must succeed", cmd.Name, rp.Str)
		}
		if feed.Offset() == off0 {
			t.Errorf("%s (%s): successful write propagated no feed entry", cmd.Name, strings.Join(s.cmd, " "))
			continue
		}
		entries := readEntries(off0)
		if len(entries) != 1 {
			t.Errorf("%s: %d feed entries for one invocation (want exactly 1)", cmd.Name, len(entries))
			continue
		}
		got := entries[0]
		wantName := cmd.Name
		if s.rewrite != "" {
			wantName = s.rewrite
		}
		if string(got[0]) != wantName {
			t.Errorf("%s: propagated as %q (want %q)", cmd.Name, got[0], wantName)
			continue
		}
		if s.rewrite == "" {
			if len(got) != len(s.cmd) {
				t.Errorf("%s: propagated %d args, sent %d", cmd.Name, len(got), len(s.cmd))
				continue
			}
			for i, a := range s.cmd {
				if string(got[i]) != a {
					t.Errorf("%s: propagated arg %d = %q, sent %q", cmd.Name, i, got[i], a)
				}
			}
			continue
		}
		// Rewritten forms carry the key and an absolute unix-ms deadline in
		// the future (resolved against the primary's clock at execute time).
		if string(got[1]) != s.cmd[1] {
			t.Errorf("%s: rewrite key = %q (want %q)", cmd.Name, got[1], s.cmd[1])
		}
		at, err := strconv.ParseInt(string(got[2]), 10, 64)
		if err != nil || at < before {
			t.Errorf("%s: rewrite deadline %q not an absolute future unix-ms stamp (err=%v)", cmd.Name, got[2], err)
		}
		if wantName == "PSETEXAT" && string(got[3]) != s.cmd[3] {
			t.Errorf("%s: rewrite value = %q (want %q)", cmd.Name, got[3], s.cmd[3])
		}
	}

	// Error replies propagate nothing.
	off0 := feed.Offset()
	if rp, _ := c.Do("INCR", "rp:set"); rp.Kind != '-' {
		t.Fatalf("INCR on a non-integer = %+v (want error)", rp)
	}
	if rp, _ := c.Do("SETEX", "rp:bad", "-1", "v"); rp.Kind != '-' {
		t.Fatalf("SETEX with negative ttl = %+v (want error)", rp)
	}
	if feed.Offset() != off0 {
		t.Fatal("failed writes appended feed entries")
	}

	// Writes inside EXEC propagate individually.
	if _, err := c.Txn([]string{"SET", "rp:txn1", "a"}, []string{"SET", "rp:txn2", "b"}); err != nil {
		t.Fatal(err)
	}
	if entries := readEntries(off0); len(entries) != 2 {
		t.Fatalf("EXEC of 2 writes propagated %d entries", len(entries))
	}
}

// TestReplicaExpirySemantics: a replica never reclaims expired keys on its
// own — the primary's active cycle is the only expiry authority, and each
// reclamation reaches the replica as an ordered DEL through the feed.
func TestReplicaExpirySemantics(t *testing.T) {
	expiry := func(cfg *Config) {
		cfg.ActiveExpiryInterval = 5 * time.Millisecond
		cfg.ActiveExpirySample = 100
	}
	primary := openReplNode(t, t.TempDir(), "", expiry)
	c := dialNode(t, primary)
	// The replica runs the same active-expiry configuration: the test
	// proves the cycle is inert in the replica role, not merely unstarted.
	replica := openReplNode(t, t.TempDir(), primary.sock, expiry)
	rc := dialNode(t, replica)

	if err := c.Set("stable", "v"); err != nil {
		t.Fatal(err)
	}
	if err := c.PSetEx("doomed", 80, "v"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Wait(1, 5*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT = %d, %v", n, err)
	}
	if _, ok, _ := rc.Get("doomed"); !ok {
		t.Fatal("replica missing doomed before its deadline")
	}

	// The primary's cycle reclaims; the DEL must reach the replica and
	// physically remove the record there.
	waitFor(t, 5*time.Second, "propagated DEL to apply", func() bool {
		return replica.st.Stats().Deletes >= 1
	})
	if _, ok, _ := rc.Get("doomed"); ok {
		t.Fatal("doomed still readable on replica after propagated DEL")
	}
	if v, ok, _ := rc.Get("stable"); !ok || v != "v" {
		t.Fatal("stable key lost on replica")
	}
	// The replica never ran a reclamation of its own.
	if got := replica.st.Stats().Reclaimed; got != 0 {
		t.Fatalf("replica reclaimed %d keys itself (must be 0: primary is the expiry authority)", got)
	}
	if got := primary.st.Stats().Reclaimed; got == 0 {
		t.Fatal("primary never reclaimed — test exercised nothing")
	}

	// No resurrection: re-creating the key on the primary after the DEL
	// converges the replica to the new value.
	if err := c.Set("doomed", "reborn"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Wait(1, 5*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT = %d, %v", n, err)
	}
	if v, ok, _ := rc.Get("doomed"); !ok || v != "reborn" {
		t.Fatalf("replica doomed = (%q,%v) after re-create", v, ok)
	}
}

// TestShutdownAbortsPSync: a primary shutting down mid-stream ends an
// in-flight PSYNC with a clean "-ERR" line at an entry boundary — the
// replica-side reader surfaces ErrStreamAbort, not a hang or a torn entry —
// and Shutdown itself is not blocked by the open stream.
func TestShutdownAbortsPSync(t *testing.T) {
	primary := openReplNode(t, t.TempDir(), "", nil)
	c := dialNode(t, primary)
	for i := 0; i < 20; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}

	conn, err := net.Dial("unix", primary.sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(repl.AppendEntry(nil, [][]byte{[]byte("PSYNC"), []byte("?"), []byte("0")})); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	h, err := repl.ReadHandshake(br)
	if err != nil || !h.Full {
		t.Fatalf("handshake = %+v, %v", h, err)
	}
	if _, err := repl.ReadImage(br, discardWriter{}); err != nil {
		t.Fatal(err)
	}
	// The stream is now idle past the image. Close the ordinary client so
	// the only thing keeping Shutdown from draining is the PSYNC stream
	// itself — the hang this test guards against.
	c.Close()
	done := make(chan error, 1)
	go func() { done <- primary.srv.Shutdown(5 * time.Second) }()
	primary.stopped = true

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, _, err = repl.ReadEntry(br)
	if err == nil || !strings.Contains(err.Error(), "shutting down") {
		t.Fatalf("mid-PSYNC shutdown surfaced %v (want a clean abort naming shutdown)", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung behind an open PSYNC stream")
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestFailoverPromote: the in-process failover drill — write through the
// primary, WAIT for the replica to acknowledge, hard-kill the primary, and
// promote the replica, which must then serve every acknowledged write and
// accept new ones under a fresh stream ID.
func TestFailoverPromote(t *testing.T) {
	primary := openReplNode(t, t.TempDir(), "", nil)
	c := dialNode(t, primary)
	replica := openReplNode(t, t.TempDir(), primary.sock, nil)
	rc := dialNode(t, replica)

	const total = 200
	for i := 0; i < total; i++ {
		if err := c.Set(fmt.Sprintf("fo-%03d", i), fmt.Sprintf("v-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := c.Wait(1, 5*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT = %d, %v", n, err)
	}
	oldID := replica.srv.repl.feed.ID()

	killNode(primary)
	if err := rc.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if id := replica.srv.repl.feed.ID(); id == oldID {
		t.Fatal("promotion kept the old stream ID — stale replicas could silently partial-resync across the divergence")
	}
	for _, i := range []int{0, 77, total - 1} {
		v, ok, err := rc.Get(fmt.Sprintf("fo-%03d", i))
		if err != nil || !ok || v != fmt.Sprintf("v-%03d", i) {
			t.Fatalf("promoted replica lost fo-%03d: (%q,%v,%v)", i, v, ok, err)
		}
	}
	if err := rc.Set("post-promote", "ok"); err != nil {
		t.Fatalf("promoted replica refused a write: %v", err)
	}
	rp, err := rc.Do("INFO", "replication")
	if err != nil || !strings.Contains(string(rp.Bulk), "role:primary") {
		t.Fatalf("INFO after promote = %v, %v (want role:primary)", rp.Text(), err)
	}
	// Promotion is idempotent.
	if err := rc.Promote(); err != nil {
		t.Fatalf("second promote: %v", err)
	}
}

// TestReplicaKillPartialResync: SIGKILL-equivalent on the replica, with the
// backlog still covering its checkpoint offset — the restarted replica
// resumes with a partial resync (no image download) and converges on
// everything written while it was down.
func TestReplicaKillPartialResync(t *testing.T) {
	primary := openReplNode(t, t.TempDir(), "", nil)
	c := dialNode(t, primary)
	rdir := t.TempDir()
	replica := openReplNode(t, rdir, primary.sock, nil)

	for i := 0; i < 50; i++ {
		if err := c.Set(fmt.Sprintf("pr-%03d", i), "v1"); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := c.Wait(1, 5*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT = %d, %v", n, err)
	}
	killNode(replica)

	// Writes the dead replica misses — well inside the 1 MiB backlog.
	for i := 0; i < 50; i++ {
		if err := c.Set(fmt.Sprintf("pr-%03d", i), "v2"); err != nil {
			t.Fatal(err)
		}
	}

	fulls0 := primary.srv.repl.fullSyncs.Load()
	replica2 := openReplNode(t, rdir, primary.sock, nil)
	rc := dialNode(t, replica2)
	if n, err := c.Wait(1, 10*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT after restart = %d, %v", n, err)
	}
	for _, i := range []int{0, 25, 49} {
		v, ok, err := rc.Get(fmt.Sprintf("pr-%03d", i))
		if err != nil || !ok || v != "v2" {
			t.Fatalf("restarted replica pr-%03d = (%q,%v,%v), want v2", i, v, ok, err)
		}
	}
	if fulls := primary.srv.repl.fullSyncs.Load(); fulls != fulls0 {
		t.Fatalf("restart took a full resync (%d -> %d): partial coverage was lost", fulls0, fulls)
	}
	if primary.srv.repl.partialSyncs.Load() < 2 {
		t.Fatal("expected at least two partial resyncs (initial attach + restart)")
	}
}

// TestReplicaKillFullRebootstrap: same kill, but the primary's backlog is
// too small to retain the gap — the restarted replica's probe is answered
// with FULLRESYNC, it downloads a fresh image on the same connection, and
// converges through the full re-bootstrap path.
func TestReplicaKillFullRebootstrap(t *testing.T) {
	small := func(cfg *Config) { cfg.ReplBacklogBytes = 2048 }
	primary := openReplNode(t, t.TempDir(), "", small)
	c := dialNode(t, primary)
	rdir := t.TempDir()
	replica := openReplNode(t, rdir, primary.sock, nil)

	if err := c.Set("anchor", "v"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Wait(1, 5*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT = %d, %v", n, err)
	}
	killNode(replica)

	// Push far more than 2048 bytes through the feed: the dead replica's
	// offset scrolls out of the backlog.
	val := strings.Repeat("x", 64)
	for i := 0; i < 200; i++ {
		if err := c.Set(fmt.Sprintf("fb-%03d", i), val); err != nil {
			t.Fatal(err)
		}
	}

	fulls0 := primary.srv.repl.fullSyncs.Load()
	replica2 := openReplNode(t, rdir, primary.sock, nil)
	rc := dialNode(t, replica2)
	if n, err := c.Wait(1, 10*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT after re-bootstrap = %d, %v", n, err)
	}
	for _, i := range []int{0, 100, 199} {
		v, ok, err := rc.Get(fmt.Sprintf("fb-%03d", i))
		if err != nil || !ok || v != val {
			t.Fatalf("re-bootstrapped replica fb-%03d = (%v,%v)", i, ok, err)
		}
	}
	if v, ok, _ := rc.Get("anchor"); !ok || v != "v" {
		t.Fatal("anchor key lost across re-bootstrap")
	}
	if fulls := primary.srv.repl.fullSyncs.Load(); fulls == fulls0 {
		t.Fatal("restart did not take a full resync despite backlog loss")
	}
	// And the re-bootstrapped replica keeps following live writes.
	if err := c.Set("after", "live"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Wait(1, 5*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT = %d, %v", n, err)
	}
	if v, ok, _ := rc.Get("after"); !ok || v != "live" {
		t.Fatal("live write did not reach re-bootstrapped replica")
	}
}

// TestLinkDropPartialResync: a transient connection loss (not a process
// kill) — the link reconnects by itself and resumes with a partial resync.
func TestLinkDropPartialResync(t *testing.T) {
	primary := openReplNode(t, t.TempDir(), "", nil)
	c := dialNode(t, primary)
	replica := openReplNode(t, t.TempDir(), primary.sock, nil)
	rc := dialNode(t, replica)

	if err := c.Set("before-drop", "v"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Wait(1, 5*time.Second); err != nil || n < 1 {
		t.Fatalf("WAIT = %d, %v", n, err)
	}
	partials0 := primary.srv.repl.partialSyncs.Load()

	// Sever the live link from the replica side.
	replica.srv.repl.mu.Lock()
	link := replica.srv.repl.link
	replica.srv.repl.mu.Unlock()
	link.mu.Lock()
	if link.conn != nil {
		link.conn.Close()
	}
	link.mu.Unlock()

	if err := c.Set("after-drop", "v"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "link to reconnect and converge", func() bool {
		v, ok, _ := rc.Get("after-drop")
		return ok && v == "v"
	})
	if primary.srv.repl.partialSyncs.Load() <= partials0 {
		t.Fatal("reconnect did not take the partial-resync path")
	}
}
