package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// testServer bundles an in-process server on a unix socket.
type testServer struct {
	heap *ralloc.Heap
	st   *kvstore.Store
	srv  *Server
	sock string
	root uint64
}

func startServer(t *testing.T, cfg Config, bound uint64) *testServer {
	t.Helper()
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion: 64 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	var st *kvstore.Store
	var root uint64
	if bound > 0 {
		st, root = kvstore.OpenBounded(a, a.NewHandle(), 1024, bound)
	} else {
		st, root = kvstore.Open(a, a.NewHandle(), 1024)
	}
	h.SetRoot(0, root)
	srv := New(a, st, cfg)
	sock := filepath.Join(t.TempDir(), "s.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Shutdown(time.Second) })
	return &testServer{heap: h, st: st, srv: srv, sock: sock, root: root}
}

func dial(t *testing.T, ts *testServer) *Client {
	t.Helper()
	c, err := Dial("unix", ts.sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCommands(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)

	if rp, err := c.Do("PING"); err != nil || rp.Str != "PONG" {
		t.Fatalf("PING = %+v, %v", rp, err)
	}
	if rp, err := c.Do("PING", "hello"); err != nil || string(rp.Bulk) != "hello" {
		t.Fatalf("PING hello = %+v, %v", rp, err)
	}
	if err := c.Set("k1", "v1"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("k1"); err != nil || !ok || v != "v1" {
		t.Fatalf("GET k1 = (%q,%v,%v)", v, ok, err)
	}
	if _, ok, err := c.Get("missing"); err != nil || ok {
		t.Fatalf("GET missing = (%v,%v)", ok, err)
	}
	if rp, err := c.Do("EXISTS", "k1", "missing", "k1"); err != nil || rp.Int != 2 {
		t.Fatalf("EXISTS = %+v, %v", rp, err)
	}
	if rp, err := c.Do("DEL", "k1", "missing"); err != nil || rp.Int != 1 {
		t.Fatalf("DEL = %+v, %v", rp, err)
	}
	if _, ok, _ := c.Get("k1"); ok {
		t.Fatal("k1 survived DEL")
	}

	if rp, err := c.Do("MSET", "a", "1", "b", "2", "c", "3"); err != nil || rp.Str != "OK" {
		t.Fatalf("MSET = %+v, %v", rp, err)
	}
	rp, err := c.Do("MGET", "a", "missing", "c")
	if err != nil || len(rp.Elems) != 3 {
		t.Fatalf("MGET = %+v, %v", rp, err)
	}
	if string(rp.Elems[0].Bulk) != "1" || !rp.Elems[1].Nil || string(rp.Elems[2].Bulk) != "3" {
		t.Fatalf("MGET elems = %+v", rp.Elems)
	}

	if rp, err := c.Do("INCR", "counter"); err != nil || rp.Int != 1 {
		t.Fatalf("INCR = %+v, %v", rp, err)
	}
	if rp, err := c.Do("INCR", "counter"); err != nil || rp.Int != 2 {
		t.Fatalf("INCR = %+v, %v", rp, err)
	}
	if rp, err := c.Do("INCR", "fresh"); err != nil || rp.Int != 1 {
		t.Fatalf("INCR fresh key = %+v, %v", rp, err) // absent counts from 0
	}
	c.Set("text", "not-a-number")
	if rp, err := c.Do("INCR", "text"); err != nil || rp.Kind != '-' ||
		!strings.Contains(rp.Str, "not an integer") {
		t.Fatalf("INCR text = %+v, %v", rp, err)
	}

	if n, err := c.DBSize(); err != nil || n != 6 { // a b c counter fresh text
		t.Fatalf("DBSIZE = %d, %v", n, err)
	}
	rp, err = c.Do("INFO")
	if err != nil || rp.Kind != '$' {
		t.Fatalf("INFO = %+v, %v", rp, err)
	}
	for _, want := range []string{"allocator:ralloc", "records:6", "total_commands_processed:"} {
		if !strings.Contains(string(rp.Bulk), want) {
			t.Fatalf("INFO missing %q:\n%s", want, rp.Bulk)
		}
	}

	if rp, err := c.Do("FLUSHALL"); err != nil || rp.Str != "OK" {
		t.Fatalf("FLUSHALL = %+v, %v", rp, err)
	}
	if n, _ := c.DBSize(); n != 0 {
		t.Fatalf("DBSIZE after FLUSHALL = %d", n)
	}

	if rp, err := c.Do("NOSUCH", "x"); err != nil || rp.Kind != '-' ||
		!strings.Contains(rp.Str, "unknown command") {
		t.Fatalf("unknown command = %+v, %v", rp, err)
	}
	if rp, err := c.Do("GET"); err != nil || rp.Kind != '-' {
		t.Fatalf("GET arity = %+v, %v", rp, err)
	}
	if rp, err := c.Do("SAVE"); err != nil || rp.Kind != '-' {
		t.Fatalf("SAVE on volatile heap = %+v, %v", rp, err)
	}
}

func TestInlineCommands(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	conn, err := net.Dial("unix", ts.sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("SET telnet works\r\nGET telnet\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	deadline := time.Now().Add(2 * time.Second)
	conn.SetReadDeadline(deadline)
	var got string
	for !strings.Contains(got, "works") {
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, got)
		}
		got += string(buf[:n])
	}
	if !strings.HasPrefix(got, "+OK\r\n$5\r\nworks\r\n") {
		t.Fatalf("inline replies = %q", got)
	}
}

func TestPipelining(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := c.Send("SET", fmt.Sprintf("p-%04d", i), fmt.Sprintf("v-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := c.Send("GET", fmt.Sprintf("p-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rp, err := c.Recv()
		if err != nil || rp.Str != "OK" {
			t.Fatalf("SET %d reply = %+v, %v", i, rp, err)
		}
	}
	for i := 0; i < n; i++ {
		rp, err := c.Recv()
		if err != nil || string(rp.Bulk) != fmt.Sprintf("v-%04d", i) {
			t.Fatalf("GET %d reply = %+v, %v", i, rp, err)
		}
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d", c.Pending())
	}
}

func TestConcurrentClientsAndINCRAtomicity(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	const clients, incrs = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial("unix", ts.sock)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < incrs; i++ {
				if rp, err := c.Do("INCR", "shared"); err != nil || rp.Kind == '-' {
					t.Errorf("INCR: %+v, %v", rp, err)
					return
				}
				if err := c.Set(fmt.Sprintf("g%d-%d", g, i), "x"); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	c := dial(t, ts)
	v, ok, err := c.Get("shared")
	if err != nil || !ok {
		t.Fatalf("shared missing: %v", err)
	}
	if v != fmt.Sprint(clients*incrs) {
		t.Fatalf("INCR lost updates: %s, want %d", v, clients*incrs)
	}
	if _, err := ts.heap.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionOverNetwork(t *testing.T) {
	// A bounded store behind the server evicts under SET load; the client
	// keeps getting +OK and DBSIZE stays under the cap.
	ts := startServer(t, Config{}, 40<<10)
	c := dial(t, ts)
	for i := 0; i < 2000; i++ {
		if err := c.Set(fmt.Sprintf("e-%05d", i), strings.Repeat("x", 100)); err != nil {
			t.Fatal(err)
		}
	}
	st := ts.st.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under 5x budget")
	}
	if _, ok, _ := c.Get("e-01999"); !ok {
		t.Fatal("newest key evicted")
	}
}

func TestMaxConnsBlocksExcessConnections(t *testing.T) {
	ts := startServer(t, Config{MaxConns: 1}, 0)
	c1 := dial(t, ts)
	if _, err := c1.Do("PING"); err != nil {
		t.Fatal(err)
	}
	// Second connection is accepted but not served while c1 holds the slot.
	c2, err := Dial("unix", ts.sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.Send("PING")
	c2.Flush()
	c2.c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := c2.Recv(); err == nil {
		t.Fatal("second connection served despite MaxConns=1")
	}
	c1.Close()
	c2.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if rp, err := c2.Recv(); err != nil || rp.Str != "PONG" {
		t.Fatalf("second connection not served after slot freed: %+v, %v", rp, err)
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	ts := startServer(t, Config{}, 0)
	c := dial(t, ts)
	// Round-trip once so the connection is accepted and served: a conn
	// still in the listener backlog at Shutdown is reset, like net/http.
	if _, err := c.Do("PING"); err != nil {
		t.Fatal(err)
	}
	// Queue a pipeline, then shut down while replies are in flight.
	const n = 500
	for i := 0; i < n; i++ {
		c.Send("SET", fmt.Sprintf("d-%04d", i), "v")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- ts.srv.Shutdown(2 * time.Second) }()
	got := 0
	for i := 0; i < n; i++ {
		rp, err := c.Recv()
		if err != nil {
			break
		}
		if rp.Str != "OK" {
			t.Fatalf("reply %d = %+v", i, rp)
		}
		got++
	}
	if got != n {
		t.Fatalf("drained %d/%d pipelined commands", got, n)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// New connections are refused after shutdown.
	if c2, err := Dial("unix", ts.sock); err == nil {
		c2.Send("PING")
		c2.Flush()
		c2.c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		if _, err := c2.Recv(); err == nil {
			t.Fatal("served after Shutdown")
		}
		c2.Close()
	}
}

func TestShutdownCommandNotifiesOwner(t *testing.T) {
	ch := make(chan struct{}, 1)
	ts := startServer(t, Config{OnShutdown: func() { ch <- struct{}{} }}, 0)
	c := dial(t, ts)
	rp, err := c.Do("SHUTDOWN")
	if err != nil || rp.Str != "OK" {
		t.Fatalf("SHUTDOWN = %+v, %v", rp, err)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("OnShutdown not invoked")
	}
}

func TestSaveCheckpointAndReopenAfterKill(t *testing.T) {
	// File-backed server: SAVE checkpoints the shadow image; a subsequent
	// hard stop (no Close) must restart dirty and recover to the
	// checkpointed state.
	dir := t.TempDir()
	heapPath := filepath.Join(dir, "kv.heap")
	cfg := ralloc.Config{SBRegion: 32 << 20, Pmem: pmem.Config{Mode: pmem.ModeCrashSim}}
	h, dirty, err := ralloc.Open(heapPath, cfg)
	if err != nil || dirty {
		t.Fatalf("open: %v dirty=%v", err, dirty)
	}
	a := h.AsAllocator()
	st, root := kvstore.Open(a, a.NewHandle(), 1024)
	h.SetRoot(0, root)
	srv := New(a, st, Config{Checkpoint: func() error {
		h.Region().Persist()
		return h.Region().SaveFile(heapPath)
	}})
	sock := filepath.Join(dir, "s.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	c, err := Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := c.Set(fmt.Sprintf("ck-%04d", i), fmt.Sprintf("v-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if rp, err := c.Do("SAVE"); err != nil || rp.Str != "OK" {
		t.Fatalf("SAVE = %+v, %v", rp, err)
	}
	// Post-checkpoint writes are lost by the kill — that is the model.
	if err := c.Set("after-save", "lost"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Abort() // no heap.Close(): the on-disk image keeps dirty=1

	h2, dirty, err := ralloc.Open(heapPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("killed server's image reported clean")
	}
	a2 := h2.AsAllocator()
	h2.GetRoot(0, kvstore.Filter(a2, root))
	if _, err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	st2 := kvstore.Attach(a2, root)
	if st2.Len() != 500 {
		t.Fatalf("recovered %d records, want 500", st2.Len())
	}
	for i := 0; i < 500; i++ {
		v, ok := st2.Get(fmt.Sprintf("ck-%04d", i))
		if !ok || v != fmt.Sprintf("v-%04d", i) {
			t.Fatalf("ck-%04d = (%q,%v)", i, v, ok)
		}
	}
	if _, ok := st2.Get("after-save"); ok {
		t.Fatal("post-checkpoint write survived the kill (checkpoint not the boundary?)")
	}
}

// onlineCheckpoint wires a heap's online snapshot to the server config, the
// way ralloc-serve does with -save-online.
func onlineCheckpoint(h *ralloc.Heap, path string) func(func(func() error) error) (CheckpointStats, error) {
	return func(fence func(cut func() error) error) (CheckpointStats, error) {
		st, err := h.Region().SaveFileOnline(path, fence)
		return CheckpointStats{
			Lines:         st.Lines,
			Recopied:      st.Recopied,
			FenceRecopied: st.FenceRecopied,
			Rounds:        st.Rounds,
		}, err
	}
}

// hasLatencyEvent reports whether a LATENCY LATEST reply names the event.
func hasLatencyEvent(rp Reply, event string) bool {
	for _, row := range rp.Elems {
		if len(row.Elems) > 0 && string(row.Elems[0].Bulk) == event {
			return true
		}
	}
	return false
}

func TestOnlineSaveUnderTrafficAndReopenAfterKill(t *testing.T) {
	// The online checkpoint's contract under real traffic: SAVE runs while
	// writers keep writing, and the published image is a consistent state
	// no older than the moment SAVE was issued. So every write acked
	// before SAVE must recover; writes racing the copy may or may not,
	// but nothing may be torn.
	dir := t.TempDir()
	heapPath := filepath.Join(dir, "kv.heap")
	cfg := ralloc.Config{SBRegion: 32 << 20, Pmem: pmem.Config{Mode: pmem.ModeCrashSim}}
	h, dirty, err := ralloc.Open(heapPath, cfg)
	if err != nil || dirty {
		t.Fatalf("open: %v dirty=%v", err, dirty)
	}
	a := h.AsAllocator()
	st, root := kvstore.Open(a, a.NewHandle(), 1024)
	h.SetRoot(0, root)
	srv := New(a, st, Config{CheckpointOnline: onlineCheckpoint(h, heapPath)})
	sock := filepath.Join(dir, "s.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	const writers = 4
	var acked [writers]atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial("unix", sock)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.Set(fmt.Sprintf("w%d-%06d", g, i), fmt.Sprintf("v%d-%06d", g, i)); err != nil {
					select {
					case <-stop: // server shut down under us: fine
					default:
						t.Errorf("writer %d: %v", g, err)
					}
					return
				}
				acked[g].Add(1)
			}
		}(g)
	}
	// Let the writers build up state so the copy phases race real stores.
	for {
		var total uint64
		for g := range acked {
			total += acked[g].Load()
		}
		if total >= 2000 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// The floor: everything acked before SAVE is issued must survive.
	var floor [writers]uint64
	for g := range acked {
		floor[g] = acked[g].Load()
	}
	cs, err := Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	if rp, err := cs.Do("SAVE"); err != nil || rp.Str != "OK" {
		t.Fatalf("SAVE = %+v, %v", rp, err)
	}
	// The fence and copy telemetry must show an online run.
	rp, err := cs.Do("INFO", "persistence")
	if err != nil {
		t.Fatal(err)
	}
	info := string(rp.Bulk)
	for _, want := range []string{"checkpoints:1", "checkpoint_errors:0",
		"last_checkpoint_fence_us:", "checkpoint_lines_copied:", "checkpoint_lines_recopied:"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO persistence missing %q:\n%s", want, info)
		}
	}
	if rp, err := cs.Do("LATENCY", "LATEST"); err != nil || !hasLatencyEvent(rp, "checkpoint-fence") {
		t.Fatalf("LATENCY LATEST lacks checkpoint-fence event: %+v, %v", rp, err)
	}
	cs.Close()

	close(stop)
	wg.Wait()
	srv.Abort() // kill: no clean Close, the image on disk is the checkpoint

	h2, dirty, err := ralloc.Open(heapPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("killed server's image reported clean")
	}
	a2 := h2.AsAllocator()
	h2.GetRoot(0, kvstore.Filter(a2, root))
	if _, err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	st2 := kvstore.Attach(a2, root)
	for g := 0; g < writers; g++ {
		for i := uint64(0); i < floor[g]; i++ {
			k := fmt.Sprintf("w%d-%06d", g, i)
			v, ok := st2.Get(k)
			if !ok {
				t.Fatalf("pre-SAVE acked key %s missing after recovery", k)
			}
			if want := fmt.Sprintf("v%d-%06d", g, i); v != want {
				t.Fatalf("%s = %q, want %q (torn image?)", k, v, want)
			}
		}
	}
}

func TestSaveFailureDoesNotStampSuccess(t *testing.T) {
	// A failed checkpoint must not advance the success telemetry: an
	// operator alerting on "time since last checkpoint" would otherwise
	// read a broken disk as a fresh save.
	boom := errors.New("disk on fire")
	for name, cfg := range map[string]Config{
		"quiesced": {Checkpoint: func() error { return boom }},
		"online": {CheckpointOnline: func(fence func(cut func() error) error) (CheckpointStats, error) {
			return CheckpointStats{}, boom
		}},
	} {
		t.Run(name, func(t *testing.T) {
			ts := startServer(t, cfg, 0)
			c := dial(t, ts)
			if rp, err := c.Do("SAVE"); err != nil || rp.Kind != '-' {
				t.Fatalf("SAVE = %+v, %v (want error reply)", rp, err)
			}
			rp, err := c.Do("INFO", "persistence")
			if err != nil {
				t.Fatal(err)
			}
			info := string(rp.Bulk)
			for _, want := range []string{"checkpoints:0", "checkpoint_errors:1", "last_checkpoint_unix:0"} {
				if !strings.Contains(info, want) {
					t.Fatalf("INFO persistence after failed SAVE missing %q:\n%s", want, info)
				}
			}
		})
	}
}

func TestTornCheckpointRejectedPreviousImageRecovers(t *testing.T) {
	// End to end: a checkpoint file torn on disk (bit rot, partial copy)
	// must refuse to load as ErrBadImage — and the previous intact image
	// must still bring the server back.
	dir := t.TempDir()
	heapPath := filepath.Join(dir, "kv.heap")
	cfg := ralloc.Config{SBRegion: 32 << 20, Pmem: pmem.Config{Mode: pmem.ModeCrashSim}}
	h, _, err := ralloc.Open(heapPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	st, root := kvstore.Open(a, a.NewHandle(), 1024)
	h.SetRoot(0, root)
	srv := New(a, st, Config{CheckpointOnline: onlineCheckpoint(h, heapPath)})
	sock := filepath.Join(dir, "s.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	c, err := Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Set(fmt.Sprintf("k-%03d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if rp, err := c.Do("SAVE"); err != nil || rp.Str != "OK" {
		t.Fatalf("SAVE = %+v, %v", rp, err)
	}
	c.Close()
	srv.Abort()

	good, err := os.ReadFile(heapPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the published file the way a crashed copy would.
	if err := os.WriteFile(heapPath, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ralloc.Open(heapPath, cfg); !errors.Is(err, pmem.ErrBadImage) {
		t.Fatalf("torn image: err = %v, want ErrBadImage", err)
	}
	// Restore the intact previous image (the operator's backup / the
	// not-yet-renamed old file): the server comes back with its data.
	if err := os.WriteFile(heapPath, good, 0o644); err != nil {
		t.Fatal(err)
	}
	h2, dirty, err := ralloc.Open(heapPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("expected dirty image after kill")
	}
	a2 := h2.AsAllocator()
	h2.GetRoot(0, kvstore.Filter(a2, root))
	if _, err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	st2 := kvstore.Attach(a2, root)
	if st2.Len() != 100 {
		t.Fatalf("recovered %d records, want 100", st2.Len())
	}
}
