// Package ycsb generates Yahoo! Cloud Serving Benchmark workloads for the
// memcached experiment (§6.3, Fig. 5f): zipfian-distributed keys over a
// fixed record set with a configurable read/update mix.
//
//   - Workload A: 50% reads / 50% updates (write-dominant; Fig. 5f)
//   - Workload B: 95% reads / 5% updates (read-dominant; discussed in-text)
//   - Workload C: 100% reads (read-only; isolates lookup/protocol cost)
package ycsb

import (
	"fmt"
	"math/rand"
)

// OpKind is a workload operation type.
type OpKind int

const (
	// Read fetches a record.
	Read OpKind = iota
	// Update rewrites a record's value.
	Update
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  string
	// Field, when nonempty, targets one field of the hash object at Key
	// (workload H): reads become HGET, updates HSET.
	Field string
	// TTLMillis, when positive, asks the driver to attach an expiration
	// this many milliseconds ahead to the written record (updates only).
	TTLMillis int64
}

// Workload describes an YCSB core workload.
type Workload struct {
	Name      string
	Records   int     // number of records pre-loaded
	ReadFrac  float64 // fraction of reads
	ValueSize int     // value bytes per record
	// TTLFrac is the fraction of updates that write an expiring record;
	// TTLMillis is the upper bound of the (uniform) TTL attached to them.
	// A zero TTLFrac reproduces the immortal-keyspace workloads exactly.
	TTLFrac   float64
	TTLMillis int64
	// Fields, when positive, turns each record into a hash object with
	// this many fields: operations target a uniformly chosen field (HGET /
	// HSET) instead of the whole value. Zero reproduces the flat-string
	// workloads exactly.
	Fields int
}

// WorkloadA is the write-dominant core workload (50/50).
func WorkloadA(records int) Workload {
	return Workload{Name: "a", Records: records, ReadFrac: 0.5, ValueSize: 100}
}

// WorkloadB is the read-dominant core workload (95/5).
func WorkloadB(records int) Workload {
	return Workload{Name: "b", Records: records, ReadFrac: 0.95, ValueSize: 100}
}

// WorkloadC is the read-only core workload (100% reads): no allocator
// churn at all, so it isolates lookup and — in network mode — protocol
// costs from allocation costs.
func WorkloadC(records int) Workload {
	return Workload{Name: "c", Records: records, ReadFrac: 1.0, ValueSize: 100}
}

// WorkloadT is the cache-expiration workload (not a YCSB core letter): the
// workload-A read/update mix, but half of the updates write records that
// expire within TTLMillis. Reads of expired records miss (lazy expiry) and
// the active expiry cycle frees them concurrently, so the allocator sees the
// full cache lifecycle — allocate, link, expire, reclaim — instead of the
// steady-state replace churn of workload A.
func WorkloadT(records int) Workload {
	return Workload{Name: "t", Records: records, ReadFrac: 0.5, ValueSize: 100,
		TTLFrac: 0.5, TTLMillis: 250}
}

// WorkloadH is the hash-field workload (not a YCSB core letter): the
// workload-A read/update mix, but every record is a hash object of Fields
// fields and each operation reads or rewrites one uniformly chosen field
// (HGET/HSET). Updates rewrite a field node inside the per-key secondary
// structure instead of replacing the whole record, so the allocator churns
// on small linked nodes — exactly the pointer-based persistent workload the
// paper built Ralloc for.
func WorkloadH(records int) Workload {
	return Workload{Name: "h", Records: records, ReadFrac: 0.5, ValueSize: 100, Fields: 16}
}

// FieldAt formats field i's name ("field" + 3 digits).
func FieldAt(i int) string { return fmt.Sprintf("field%03d", i) }

// Generator produces operations for one client goroutine. Not safe for
// concurrent use; give each goroutine its own (with distinct seeds).
type Generator struct {
	w    Workload
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewGenerator creates a deterministic generator.
func NewGenerator(w Workload, seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	// YCSB uses a zipfian request distribution with θ≈0.99; rand.Zipf's
	// s plays the same skew role (s>1 required), so s=1.08 approximates
	// the standard hot-key skew over the record space.
	z := rand.NewZipf(rng, 1.08, 1, uint64(w.Records-1))
	return &Generator{w: w, rng: rng, zipf: z}
}

// scramble spreads the zipfian head across the key space, as YCSB's
// scrambled-zipfian does, so hot keys are not all in one hash bucket.
func scramble(i, n uint64) uint64 {
	x := i * 0x9E3779B97F4A7C15 >> 17
	return x % n
}

// KeyAt formats record i's key ("user" + 10 digits, YCSB style).
func KeyAt(i int) string { return fmt.Sprintf("user%010d", i) }

// Next returns the next operation.
func (g *Generator) Next() Op {
	rec := scramble(g.zipf.Uint64(), uint64(g.w.Records))
	op := Op{Key: KeyAt(int(rec))}
	if g.w.Fields > 0 {
		op.Field = FieldAt(g.rng.Intn(g.w.Fields))
	}
	if g.rng.Float64() >= g.w.ReadFrac {
		op.Kind = Update
		if g.w.TTLFrac > 0 && g.rng.Float64() < g.w.TTLFrac {
			// Uniform in (TTLMillis/2, TTLMillis]: short enough to expire
			// within a run, long enough that some reads still hit.
			op.TTLMillis = g.w.TTLMillis/2 + 1 + g.rng.Int63n(max(g.w.TTLMillis-g.w.TTLMillis/2, 1))
		}
	}
	return op
}

// Value produces a deterministic value body of the workload's size for an
// update.
func (g *Generator) Value(buf []byte) []byte {
	if cap(buf) < g.w.ValueSize {
		buf = make([]byte, g.w.ValueSize)
	}
	buf = buf[:g.w.ValueSize]
	for i := range buf {
		buf[i] = byte('a' + g.rng.Intn(26))
	}
	return buf
}
