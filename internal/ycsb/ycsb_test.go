package ycsb

import (
	"strings"
	"testing"
)

func TestWorkloadMixes(t *testing.T) {
	a := WorkloadA(1000)
	if a.ReadFrac != 0.5 {
		t.Fatalf("workload A read fraction = %v", a.ReadFrac)
	}
	b := WorkloadB(1000)
	if b.ReadFrac != 0.95 {
		t.Fatalf("workload B read fraction = %v", b.ReadFrac)
	}
	c := WorkloadC(1000)
	if c.ReadFrac != 1.0 {
		t.Fatalf("workload C read fraction = %v", c.ReadFrac)
	}
}

func TestWorkloadCIsReadOnly(t *testing.T) {
	g := NewGenerator(WorkloadC(1000), 4)
	for i := 0; i < 50000; i++ {
		if op := g.Next(); op.Kind != Read {
			t.Fatalf("workload C generated a %v at op %d", op.Kind, i)
		}
	}
}

func TestWorkloadTAttachesTTLs(t *testing.T) {
	w := WorkloadT(1000)
	g := NewGenerator(w, 11)
	reads, updates, ttld := 0, 0, 0
	for i := 0; i < 50000; i++ {
		op := g.Next()
		switch op.Kind {
		case Read:
			reads++
			if op.TTLMillis != 0 {
				t.Fatalf("read op carries a TTL at op %d", i)
			}
		case Update:
			updates++
			if op.TTLMillis != 0 {
				ttld++
				if op.TTLMillis <= w.TTLMillis/2 || op.TTLMillis > w.TTLMillis {
					t.Fatalf("TTL %d outside (%d,%d] at op %d", op.TTLMillis, w.TTLMillis/2, w.TTLMillis, i)
				}
			}
		}
	}
	if reads == 0 || updates == 0 {
		t.Fatalf("degenerate mix: %d reads, %d updates", reads, updates)
	}
	// TTLFrac=0.5: between a third and two-thirds of updates should carry
	// TTLs over 25k updates.
	if ttld < updates/3 || ttld > 2*updates/3 {
		t.Fatalf("%d of %d updates TTL'd, want about half", ttld, updates)
	}
}

func TestZeroTTLFracMatchesCoreWorkloads(t *testing.T) {
	g := NewGenerator(WorkloadA(1000), 3)
	for i := 0; i < 20000; i++ {
		if op := g.Next(); op.TTLMillis != 0 {
			t.Fatalf("workload A generated a TTL at op %d", i)
		}
	}
}

func TestConfigurableValueSize(t *testing.T) {
	w := WorkloadA(100)
	w.ValueSize = 1024
	g := NewGenerator(w, 6)
	if v := g.Value(nil); len(v) != 1024 {
		t.Fatalf("value size = %d, want 1024", len(v))
	}
}

func TestGeneratorMixApproximatesFractions(t *testing.T) {
	g := NewGenerator(WorkloadA(10000), 1)
	reads := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Next().Kind == Read {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("workload A read fraction measured %.3f, want ≈0.5", frac)
	}
}

func TestGeneratorKeysInRange(t *testing.T) {
	const records = 500
	g := NewGenerator(WorkloadA(records), 2)
	valid := map[string]bool{}
	for i := 0; i < records; i++ {
		valid[KeyAt(i)] = true
	}
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if !valid[op.Key] {
			t.Fatalf("generated key %q outside the record set", op.Key)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// The hottest key must receive far more than uniform share.
	const records = 10000
	g := NewGenerator(WorkloadA(records), 3)
	counts := map[string]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(n) / records
	if float64(max) < 20*uniform {
		t.Fatalf("hottest key got %d requests (uniform %d): not zipfian", max, int(uniform))
	}
	// But the hot keys must be scrambled across the key space, not all at
	// the front.
	if counts[KeyAt(0)] == max && counts[KeyAt(1)] > int(10*uniform) {
		t.Fatal("hot keys not scrambled")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(WorkloadA(1000), 42)
	g2 := NewGenerator(WorkloadA(1000), 42)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("op %d differs for equal seeds: %+v vs %+v", i, a, b)
		}
	}
}

func TestValueSizeAndCharset(t *testing.T) {
	g := NewGenerator(WorkloadA(100), 5)
	v := g.Value(nil)
	if len(v) != 100 {
		t.Fatalf("value size = %d, want 100", len(v))
	}
	if strings.TrimFunc(string(v), func(r rune) bool { return r >= 'a' && r <= 'z' }) != "" {
		t.Fatal("value has unexpected characters")
	}
	// Reuses the buffer.
	v2 := g.Value(v)
	if &v2[0] != &v[0] {
		t.Fatal("Value did not reuse the buffer")
	}
}

func TestKeyAtFormat(t *testing.T) {
	if KeyAt(7) != "user0000000007" {
		t.Fatalf("KeyAt(7) = %q", KeyAt(7))
	}
}

func TestWorkloadHTargetsFields(t *testing.T) {
	w := WorkloadH(500)
	if w.Fields != 16 {
		t.Fatalf("WorkloadH fields = %d, want 16", w.Fields)
	}
	g := NewGenerator(w, 11)
	reads, updates := 0, 0
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Field == "" {
			t.Fatal("workload-h op without a field")
		}
		seen[op.Field] = true
		if op.TTLMillis != 0 {
			t.Fatal("workload-h op with TTL")
		}
		if op.Kind == Read {
			reads++
		} else {
			updates++
		}
	}
	if len(seen) != w.Fields {
		t.Fatalf("operations touched %d distinct fields, want %d", len(seen), w.Fields)
	}
	if reads < 2000 || updates < 2000 {
		t.Fatalf("read/update mix off: %d/%d", reads, updates)
	}
	if FieldAt(3) != "field003" {
		t.Fatalf("FieldAt(3) = %q", FieldAt(3))
	}
	// Flat workloads stay field-free.
	if op := NewGenerator(WorkloadA(100), 1).Next(); op.Field != "" {
		t.Fatalf("workload-a op has field %q", op.Field)
	}
}
