package kvstore

import (
	"fmt"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// Crash injection around every hash/list persist point, extending the TTL
// sweep's pattern: the pmem StoreHook panics after the k-th store inside a
// phase of object traffic (HSET create/replace, HDEL, LPUSH, RPUSH, LPOP,
// RPOP, SET-over-object, DEL-of-object), so the crash lands between the
// individual flushes of each operation — mid node init, between a link
// swing and its bookkeeping, between a field unlink and the record unlink.
// After recovery (GC + RecoverObjects) the invariant is the tentpole's
// headline guarantee: every object equals a state the operation sequence
// could legally have produced — each acknowledged mutation wholly present,
// the one in-flight mutation wholly present or wholly absent, never a
// half-linked node — and the deque's repairable words (tail, prev, length)
// agree with the authoritative forward chain.

type objCrash struct{ k int }

// objWorld is the model of acknowledged object state.
type objWorld struct {
	hashes  map[string]map[string]string
	lists   map[string][]string
	strings map[string]string
}

func newObjWorld() *objWorld {
	return &objWorld{
		hashes:  map[string]map[string]string{},
		lists:   map[string][]string{},
		strings: map[string]string{},
	}
}

func (w *objWorld) clone() *objWorld {
	c := newObjWorld()
	for k, h := range w.hashes {
		m := map[string]string{}
		for f, v := range h {
			m[f] = v
		}
		c.hashes[k] = m
	}
	for k, l := range w.lists {
		c.lists[k] = append([]string(nil), l...)
	}
	for k, v := range w.strings {
		c.strings[k] = v
	}
	return c
}

// objCrashAt builds a store, runs object traffic that crashes at the k-th
// persistent store, and returns the heap plus the last acknowledged world
// and the world as it would look had the in-flight op completed. done
// reports that the whole armed phase finished without the hook firing (k
// beyond the phase's store count).
func objCrashAt(t *testing.T, k int) (h *ralloc.Heap, acked, pending *objWorld, done bool) {
	t.Helper()
	var countdown int
	armed := false
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion:    16 << 20,
		GrowthChunk: 1 << 20,
		Pmem: pmem.Config{
			Mode: pmem.ModeCrashSim,
			StoreHook: func() {
				if !armed {
					return
				}
				countdown--
				if countdown == 0 {
					panic(objCrash{k})
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, root := Open(a, hd, 256)
	h.SetRoot(0, root)

	// Quiet phase: an acknowledged base population.
	acked = newObjWorld()
	for i := 0; i < 6; i++ {
		hk := fmt.Sprintf("h-%02d", i)
		acked.hashes[hk] = map[string]string{}
		for f := 0; f < 4; f++ {
			fk, fv := fmt.Sprintf("f%02d", f), fmt.Sprintf("hv-%02d-%02d", i, f)
			if _, err := s.HSet(hd, []byte(hk), []byte(fk), []byte(fv)); err != nil {
				t.Fatal(err)
			}
			acked.hashes[hk][fk] = fv
		}
		lk := fmt.Sprintf("l-%02d", i)
		for e := 0; e < 4; e++ {
			ev := fmt.Sprintf("lv-%02d-%02d", i, e)
			if _, err := s.RPush(hd, []byte(lk), []byte(ev)); err != nil {
				t.Fatal(err)
			}
			acked.lists[lk] = append(acked.lists[lk], ev)
		}
		sk := fmt.Sprintf("s-%02d", i)
		if !s.Set(hd, sk, "sv-"+sk) {
			t.Fatal("OOM")
		}
		acked.strings[sk] = "sv-" + sk
	}

	// Armed phase: a deterministic mix hitting every persist point. Each
	// step computes the post-state first, then executes; if the hook fires
	// mid-step, `pending` holds the step's would-be outcome.
	done = func() (finished bool) {
		defer func() {
			armed = false
			if r := recover(); r != nil {
				if _, ok := r.(objCrash); !ok {
					panic(r)
				}
			}
		}()
		countdown = k
		armed = true
		step := func(mutate func(w *objWorld), op func() error) bool {
			next := acked.clone()
			mutate(next)
			pending = next
			if err := op(); err != nil {
				t.Errorf("k=%d: op failed: %v", k, err)
				return false
			}
			acked, pending = next, nil
			return true
		}
		for i := 0; i < 10; i++ {
			hk := fmt.Sprintf("h-%02d", i%6)
			lk := fmt.Sprintf("l-%02d", i%6)
			nf, nv := fmt.Sprintf("nf%02d", i), fmt.Sprintf("nv%02d", i)
			// HSET: new field on an existing hash.
			if !step(func(w *objWorld) { w.hashes[hk][nf] = nv },
				func() error { _, err := s.HSet(hd, []byte(hk), []byte(nf), []byte(nv)); return err }) {
				return false
			}
			// HSET: replace an existing field.
			rv := fmt.Sprintf("rv%02d", i)
			if !step(func(w *objWorld) { w.hashes[hk]["f00"] = rv },
				func() error { _, err := s.HSet(hd, []byte(hk), []byte("f00"), []byte(rv)); return err }) {
				return false
			}
			// HDEL one field.
			if !step(func(w *objWorld) { delete(w.hashes[hk], "f01") },
				func() error { _, err := s.HDel(hd, []byte(hk), []byte("f01")); return err }) {
				return false
			}
			// LPUSH and RPUSH.
			lv := fmt.Sprintf("plv%02d", i)
			if !step(func(w *objWorld) { w.lists[lk] = append([]string{lv}, w.lists[lk]...) },
				func() error { _, err := s.LPush(hd, []byte(lk), []byte(lv)); return err }) {
				return false
			}
			rvl := fmt.Sprintf("prv%02d", i)
			if !step(func(w *objWorld) { w.lists[lk] = append(w.lists[lk], rvl) },
				func() error { _, err := s.RPush(hd, []byte(lk), []byte(rvl)); return err }) {
				return false
			}
			// LPOP and RPOP.
			if !step(func(w *objWorld) { w.lists[lk] = w.lists[lk][1:] },
				func() error { _, _, err := s.LPop(hd, []byte(lk)); return err }) {
				return false
			}
			if !step(func(w *objWorld) { w.lists[lk] = w.lists[lk][:len(w.lists[lk])-1] },
				func() error { _, _, err := s.RPop(hd, []byte(lk)); return err }) {
				return false
			}
			// A fresh hash created in one HSET (multi-pair, atomic install).
			ck := fmt.Sprintf("hc-%02d", i)
			if !step(func(w *objWorld) { w.hashes[ck] = map[string]string{"a": "1", "b": "2"} },
				func() error {
					_, err := s.HSet(hd, []byte(ck), []byte("a"), []byte("1"), []byte("b"), []byte("2"))
					return err
				}) {
				return false
			}
			// SET over an object (type overwrite frees the graph) — use the
			// hash created two rounds ago so later rounds still have one.
			if i >= 2 {
				ok := fmt.Sprintf("hc-%02d", i-2)
				if !step(func(w *objWorld) { delete(w.hashes, ok); w.strings[ok] = "overwritten" },
					func() error {
						if !s.Set(hd, ok, "overwritten") {
							return ErrNoMemory
						}
						return nil
					}) {
					return false
				}
			}
			// DEL of a whole list object every few rounds (recreated next
			// round by the pushes above when i%6 cycles back).
			if i == 5 {
				dk := "l-05"
				if !step(func(w *objWorld) { delete(w.lists, dk) },
					func() error { s.Delete(hd, dk); return nil }) {
					return false
				}
			}
		}
		return true
	}()
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	return h, acked, pending, done
}

// worldDiff checks the recovered store against a model world, returning a
// description of the first divergence ("" = exact match).
func worldDiff(t *testing.T, s *Store, w *objWorld) string {
	t.Helper()
	for hk, fields := range w.hashes {
		n, err := s.HLen([]byte(hk))
		if err != nil {
			return fmt.Sprintf("HLen(%s): %v", hk, err)
		}
		if n != len(fields) {
			return fmt.Sprintf("HLen(%s) = %d, want %d", hk, n, len(fields))
		}
		fs, vs, err := s.HGetAll([]byte(hk))
		if err != nil {
			return fmt.Sprintf("HGetAll(%s): %v", hk, err)
		}
		got := map[string]string{}
		for i := range fs {
			got[string(fs[i])] = string(vs[i])
		}
		for f, v := range fields {
			if got[f] != v {
				return fmt.Sprintf("hash %s field %s = %q, want %q", hk, f, got[f], v)
			}
		}
		if len(got) != len(fields) {
			return fmt.Sprintf("hash %s has %d fields, want %d", hk, len(got), len(fields))
		}
	}
	for lk, want := range w.lists {
		n, err := s.LLen([]byte(lk))
		if err != nil {
			return fmt.Sprintf("LLen(%s): %v", lk, err)
		}
		if n != len(want) {
			return fmt.Sprintf("LLen(%s) = %d, want %d", lk, n, len(want))
		}
		vals, err := s.LRange([]byte(lk), 0, -1)
		if err != nil {
			return fmt.Sprintf("LRange(%s): %v", lk, err)
		}
		if len(vals) != len(want) {
			return fmt.Sprintf("list %s forward walk %d elems, LLen %d", lk, len(vals), n)
		}
		for i := range want {
			if string(vals[i]) != want[i] {
				return fmt.Sprintf("list %s[%d] = %q, want %q", lk, i, vals[i], want[i])
			}
		}
	}
	for sk, want := range w.strings {
		v, ok := s.Get(sk)
		if !ok || v != want {
			return fmt.Sprintf("string %s = (%q,%v), want %q", sk, v, ok, want)
		}
	}
	// No extra keys beyond the model.
	if got, want := s.Len(), len(w.hashes)+len(w.lists)+len(w.strings); got != want {
		return fmt.Sprintf("Len = %d, model has %d keys", got, want)
	}
	return ""
}

func TestObjectCrashInjectionSweep(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 16, 19, 23, 28, 34, 41, 50, 60, 73, 88, 107, 130, 157, 190, 230, 278, 336, 407, 492, 595, 720, 871, 1054, 1275, 1543, 1867, 2259} {
		h, acked, pending, done := objCrashAt(t, k)
		a := h.AsAllocator()
		root := h.GetRoot(0, nil)
		h.GetRoot(0, Filter(a, root))
		if _, err := h.Recover(); err != nil {
			t.Fatalf("k=%d: recovery: %v", k, err)
		}
		s := Attach(a, root)

		// The recovered keyspace must equal the acknowledged world, or —
		// when a mutation was in flight — the world with exactly that
		// mutation applied. Anything else (a half-linked node, a torn
		// field, a dropped acked write) fails.
		diff := worldDiff(t, s, acked)
		if diff != "" && pending != nil {
			if diff2 := worldDiff(t, s, pending); diff2 != "" {
				t.Fatalf("k=%d: recovered state matches neither old (%s) nor new (%s)", k, diff, diff2)
			}
		} else if diff != "" {
			t.Fatalf("k=%d: acked state diverged: %s", k, diff)
		}

		// The recovered objects stay fully mutable: both deque ends and
		// the hash chains work after repair.
		hd := a.NewHandle()
		for i := 0; i < 6; i++ {
			lk := []byte(fmt.Sprintf("l-%02d", i))
			if n, _ := s.LLen(lk); n > 0 {
				if _, ok, err := s.RPop(hd, lk); !ok || err != nil {
					t.Fatalf("k=%d: post-recovery RPop(%s) = (%v,%v)", k, lk, ok, err)
				}
				if _, err := s.LPush(hd, lk, []byte("post")); err != nil {
					t.Fatalf("k=%d: post-recovery LPush(%s): %v", k, lk, err)
				}
			}
			hk := []byte(fmt.Sprintf("h-%02d", i))
			if _, err := s.HSet(hd, hk, []byte("post"), []byte("1")); err != nil {
				t.Fatalf("k=%d: post-recovery HSet(%s): %v", k, hk, err)
			}
		}
		if _, err := h.CheckInvariants(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if done {
			// The armed phase ran to completion without the hook firing:
			// larger k values add no new crash points.
			break
		}
	}
}
