// Package kvstore is the memcached-as-a-library key-value store of the
// paper's application study (§6.3): "we modified it to function as a
// library rather than a stand-alone server: instead of sending requests
// over a socket, the client application makes direct function calls into
// the key-value code". The store keeps all data in a persistent hash map
// over a pluggable allocator, so the YCSB experiment isolates allocator
// behavior exactly as the paper's does.
package kvstore

import (
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/dstruct"
	"repro/internal/ralloc"
)

// Store is a library-mode key-value store.
type Store struct {
	a   alloc.Allocator
	m   *dstruct.HashMap
	lru *lruIndex // nil when the store is unbounded

	hits, misses, sets, deletes atomic.Uint64
}

// Stats is a snapshot of operation counters.
type Stats struct {
	Hits, Misses, Sets, Deletes, Evictions uint64
	Bytes                                  uint64
}

// Open creates an unbounded store, returning it and the root offset of its
// hash map header for persistent-root registration.
func Open(a alloc.Allocator, h alloc.Handle, buckets int) (*Store, uint64) {
	m, root := dstruct.NewHashMap(a, h, buckets)
	return &Store{a: a, m: m}, root
}

// OpenBounded creates a store with a memory budget: once the (approximate)
// footprint of the records exceeds maxBytes, Set evicts least-recently-used
// records, memcached-style. Eviction frees the victims' blocks through the
// allocator — the churn path of a full cache.
func OpenBounded(a alloc.Allocator, h alloc.Handle, buckets int, maxBytes uint64) (*Store, uint64) {
	s, root := Open(a, h, buckets)
	s.lru = newLRUIndex(maxBytes)
	return s, root
}

// Attach re-opens a store whose hash-map header is at root (after restart
// or recovery). The store re-attaches unbounded; like memcached's, the LRU
// recency state is transient and does not survive restarts. A store that was
// bounded before the restart should use AttachBounded instead, or the memory
// budget is silently dropped.
func Attach(a alloc.Allocator, root uint64) *Store {
	return &Store{a: a, m: dstruct.AttachHashMap(a, root)}
}

// AttachBounded re-opens a bounded store at root, rebuilding the transient
// LRU index by walking the persistent map. Recency order across the restart
// is arbitrary (walk order), like memcached's cold LRU after a reboot, but
// the byte accounting is exact, so the budget is enforced from the first Set
// onward. If the persisted image already exceeds maxBytes — the budget may
// have been lowered across the restart — the overage is evicted immediately.
func AttachBounded(a alloc.Allocator, root uint64, maxBytes uint64) *Store {
	s := Attach(a, root)
	s.lru = newLRUIndex(maxBytes)
	s.m.Range(func(key, value []byte) bool {
		s.lru.prime(string(key), footprint(len(key), len(value)))
		return true
	})
	if victims := s.lru.evictOver(); len(victims) > 0 {
		h := a.NewHandle()
		for _, victim := range victims {
			if s.m.Delete(h, []byte(victim)) {
				s.deletes.Add(1)
			}
		}
	}
	return s
}

// Get fetches a value.
func (s *Store) Get(key string) (string, bool) {
	v, ok := s.GetBytes([]byte(key))
	if !ok {
		return "", false
	}
	return string(v), true
}

// Set inserts or replaces a value; false reports heap exhaustion.
func (s *Store) Set(h alloc.Handle, key, value string) bool {
	return s.SetBytes(h, []byte(key), []byte(value))
}

// SetBytes avoids string conversion on hot update paths.
func (s *Store) SetBytes(h alloc.Handle, key, value []byte) bool {
	if !s.m.Set(h, key, value) {
		return false
	}
	s.sets.Add(1)
	if s.lru != nil {
		for _, victim := range s.lru.update(string(key), footprint(len(key), len(value))) {
			if s.m.Delete(h, []byte(victim)) {
				s.deletes.Add(1)
			}
		}
	}
	return true
}

// GetBytes avoids string conversion on hot read paths.
func (s *Store) GetBytes(key []byte) ([]byte, bool) {
	v, ok := s.m.Get(key)
	if ok {
		s.hits.Add(1)
		if s.lru != nil {
			s.lru.touch(string(key))
		}
	} else {
		s.misses.Add(1)
	}
	return v, ok
}

// Delete removes a key.
func (s *Store) Delete(h alloc.Handle, key string) bool {
	if !s.m.Delete(h, []byte(key)) {
		return false
	}
	s.deletes.Add(1)
	if s.lru != nil {
		s.lru.remove(key)
	}
	return true
}

// Len returns the number of records.
func (s *Store) Len() int { return s.m.Len() }

// Range calls fn for every record until fn returns false. fn runs under the
// map's stripe locks and must not call back into the store; to mutate,
// collect keys first and then Set/Delete them.
func (s *Store) Range(fn func(key, value []byte) bool) { s.m.Range(fn) }

// Bounded reports whether the store enforces a memory budget.
func (s *Store) Bounded() bool { return s.lru != nil }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Sets:    s.sets.Load(),
		Deletes: s.deletes.Load(),
	}
	if s.lru != nil {
		st.Evictions = s.lru.Evicted()
		st.Bytes = s.lru.Bytes()
	}
	return st
}

// Filter returns the recovery filter for the store's hash map.
func (s *Store) Filter() ralloc.Filter { return s.m.Filter() }
