// Package kvstore is the memcached-as-a-library key-value store of the
// paper's application study (§6.3): "we modified it to function as a
// library rather than a stand-alone server: instead of sending requests
// over a socket, the client application makes direct function calls into
// the key-value code". The store keeps all data in a persistent hash map
// over a pluggable allocator, so the YCSB experiment isolates allocator
// behavior exactly as the paper's does.
//
// Records may carry an expiration deadline (a TTL, cache-style). The
// deadline is an absolute unix-millisecond stamp persisted inside the same
// allocation as the record (dstruct hash-map node word 2), so recovery
// needs no separate TTL log: one GC + Range pass rebuilds the LRU byte
// accounting and the volatile expiry index together, and because the stamp
// is wall-clock absolute, a key that expired before a crash is still
// expired after recovery — expiration survives kill -9 for free. Reads
// apply *lazy* expiry (a dead record is reported missing without being
// touched); space is reclaimed by ReclaimExpired, which the serving layer
// drives from its active expiry cycle.
package kvstore

import (
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/dstruct"
	"repro/internal/ralloc"
)

// PTTL sentinels, Redis-style (milliseconds otherwise).
const (
	// TTLMissing reports a key that does not exist (or has expired).
	TTLMissing = -2
	// TTLNone reports a key that exists but carries no deadline.
	TTLNone = -1
)

// Type is the kind of value a key holds. Every record carries a type tag in
// its persistent header (dstruct node lens word), so the type survives
// crashes with the data and costs the string fast path nothing: the tag
// shares the word every read already decodes.
type Type uint8

const (
	// TypeNone reports a missing (or expired) key.
	TypeNone Type = iota
	// TypeString is a plain byte-string value.
	TypeString
	// TypeHash is a field/value hash (HSET family).
	TypeHash
	// TypeList is a doubly-linked deque (LPUSH family).
	TypeList
)

// String renders the type the way Redis's TYPE command does.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeHash:
		return "hash"
	case TypeList:
		return "list"
	}
	return "none"
}

func typeFromTag(tag uint8) Type {
	switch tag {
	case dstruct.TagHash:
		return TypeHash
	case dstruct.TagList:
		return TypeList
	}
	return TypeString
}

// ErrWrongType reports an operation applied to a key holding another kind
// of value (the serving layer maps it to Redis's WRONGTYPE error).
var ErrWrongType = dstruct.ErrWrongType

// ErrNoMemory reports heap exhaustion inside an object operation.
var ErrNoMemory = dstruct.ErrNoMemory

// Store is a library-mode key-value store.
type Store struct {
	a   alloc.Allocator
	m   *dstruct.HashMap
	lru *lruIndex    // nil when the store is unbounded
	exp *expiryIndex // volatile deadline index (always present)
	now func() int64 // unix ms clock; swappable for deterministic tests

	hits, misses, sets, deletes atomic.Uint64
	expired, reclaimed          atomic.Uint64
}

// Stats is a snapshot of operation counters.
type Stats struct {
	Hits, Misses, Sets, Deletes, Evictions uint64
	// Expired counts reads answered "missing" by lazy expiry; Reclaimed
	// counts records actively deleted by ReclaimExpired; TTLd is the
	// number of keys currently carrying a deadline.
	Expired, Reclaimed, TTLd uint64
	Bytes                    uint64
}

func wallClock() int64 { return time.Now().UnixMilli() }

// Open creates an unbounded store, returning it and the root offset of its
// hash map header for persistent-root registration.
func Open(a alloc.Allocator, h alloc.Handle, buckets int) (*Store, uint64) {
	m, root := dstruct.NewHashMap(a, h, buckets)
	return &Store{a: a, m: m, exp: newExpiryIndex(), now: wallClock}, root
}

// OpenBounded creates a store with a memory budget: once the (approximate)
// footprint of the records exceeds maxBytes, Set evicts least-recently-used
// records, memcached-style. Eviction frees the victims' blocks through the
// allocator — the churn path of a full cache.
func OpenBounded(a alloc.Allocator, h alloc.Handle, buckets int, maxBytes uint64) (*Store, uint64) {
	s, root := Open(a, h, buckets)
	s.lru = newLRUIndex(maxBytes)
	return s, root
}

// Filter returns the recovery GC filter for a store rooted at root without
// attaching the store. Restart sequences need the filter *before*
// heap.Recover (to register the root), but Attach now repairs object
// structures and rebuilds indexes — work that must not run, and must not
// run twice, against a still-unrecovered heap. Register Filter first,
// Recover, then Attach.
func Filter(a alloc.Allocator, root uint64) ralloc.Filter {
	return dstruct.HashMapFilter(a.Region())
}

// Attach re-opens a store whose hash-map header is at root (after restart
// or recovery), rebuilding the volatile expiry index by walking the
// persistent map. The heap must already be recovered (register Filter with
// GetRoot, then Recover, then Attach): attach repairs the repairable words
// of object secondary structures, which mutates and frees blocks. The
// store re-attaches unbounded; like memcached's, the LRU recency state is
// transient and does not survive restarts. A store that was bounded before
// the restart should use AttachBounded instead, or the memory budget is
// silently dropped.
func Attach(a alloc.Allocator, root uint64) *Store {
	s := &Store{a: a, m: dstruct.AttachHashMap(a, root), exp: newExpiryIndex(), now: wallClock}
	// Repair the repairable words of object secondary structures (list
	// tail/prev hints, length and bytes counters) before any index is
	// rebuilt from them; on a cleanly closed heap this verifies and
	// changes nothing.
	s.m.RecoverObjects(a.NewHandle())
	s.m.RangeMeta(func(key []byte, _ uint8, at uint64, _ uint64) bool {
		if at != 0 {
			s.exp.set(string(key), int64(at))
		}
		return true
	})
	return s
}

// AttachBounded re-opens a bounded store at root, rebuilding the transient
// LRU index and the expiry index in one walk of the persistent map. Recency
// order across the restart is arbitrary (walk order), like memcached's cold
// LRU after a reboot, but the byte accounting is exact — each record is
// charged its full persistent footprint, object secondary structures (hash
// fields, list nodes) included — so the budget is enforced from the first
// Set onward. Records whose persisted deadline has already passed are
// hinted to the expiry index (so the cycle reclaims them) but *not* charged
// to the budget: they are dead to every reader, and charging them could
// evict live keys to make room for corpses. If the persisted image already
// exceeds maxBytes — the budget may have been lowered across the restart —
// the overage is evicted immediately.
func AttachBounded(a alloc.Allocator, root uint64, maxBytes uint64) *Store {
	s := &Store{a: a, m: dstruct.AttachHashMap(a, root), exp: newExpiryIndex(), now: wallClock}
	s.lru = newLRUIndex(maxBytes)
	s.m.RecoverObjects(a.NewHandle())
	now := s.now()
	s.m.RangeMeta(func(key []byte, _ uint8, at uint64, bytes uint64) bool {
		if at != 0 {
			s.exp.set(string(key), int64(at))
			if int64(at) <= now {
				return true // dead record: hinted for reclaim, not charged
			}
		}
		s.lru.prime(string(key), bytes)
		return true
	})
	if victims := s.lru.evictOver(); len(victims) > 0 {
		h := a.NewHandle()
		for _, victim := range victims {
			if s.m.Delete(h, []byte(victim)) {
				s.deletes.Add(1)
				s.exp.remove(victim)
			}
		}
	}
	return s
}

// SetClock replaces the store's wall clock (unix milliseconds). Tests use it
// to step time deterministically; production code never calls it.
func (s *Store) SetClock(now func() int64) { s.now = now }

// Now returns the store's current clock reading in unix milliseconds.
func (s *Store) Now() int64 { return s.now() }

// Get fetches a string value. Missing, expired, and non-string keys all
// report ok=false; use GetBytes to distinguish a WRONGTYPE record.
func (s *Store) Get(key string) (string, bool) {
	v, ok, _ := s.GetBytes([]byte(key))
	if !ok {
		return "", false
	}
	return string(v), true
}

// Set inserts or replaces a value; false reports heap exhaustion.
func (s *Store) Set(h alloc.Handle, key, value string) bool {
	return s.SetBytes(h, []byte(key), []byte(value))
}

// SetBytes avoids string conversion on hot update paths. Like Redis SET, it
// clears any previous deadline on the key.
func (s *Store) SetBytes(h alloc.Handle, key, value []byte) bool {
	return s.SetBytesExpire(h, key, value, 0)
}

// SetBytesExpire inserts or replaces a value with an absolute deadline
// (unix milliseconds; 0 = immortal). The deadline is persisted in the
// record's own allocation before the record becomes reachable, so an
// acknowledged TTL'd SET can never recover as an immortal key.
func (s *Store) SetBytesExpire(h alloc.Handle, key, value []byte, deadline int64) bool {
	if !s.m.SetExpire(h, key, value, uint64(deadline)) {
		return false
	}
	s.sets.Add(1)
	if deadline != 0 {
		s.exp.set(string(key), deadline)
	} else if s.exp.tracked() != 0 {
		// Clearing a possible stale hint only matters when hints exist at
		// all: immortal hot-path Sets in TTL-free workloads skip the index
		// (and the key's string conversion) entirely.
		s.exp.remove(string(key))
	}
	if s.lru != nil {
		for _, victim := range s.lru.update(string(key), footprint(len(key), len(value))) {
			if s.m.Delete(h, []byte(victim)) {
				s.deletes.Add(1)
				s.exp.remove(victim)
			}
		}
	}
	return true
}

// GetBytes avoids string conversion on hot read paths. Expiry is lazy: a
// record past its persisted deadline is reported missing — without deleting
// it (no allocation, no frees on the read path); the active expiry cycle
// reclaims the space later. A key holding a hash or list reports
// ErrWrongType (ok=false): string reads never expose object payloads.
func (s *Store) GetBytes(key []byte) ([]byte, bool, error) {
	v, _, ok, err := s.GetBytesExpire(key)
	return v, ok, err
}

// GetBytesExpire is GetBytes returning the record's deadline too (0 =
// immortal) — the read-modify-write paths (APPEND) use it to preserve a
// key's TTL across the rewrite.
func (s *Store) GetBytesExpire(key []byte) (value []byte, deadline int64, ok bool, err error) {
	v, at, tag, ok := s.m.GetTyped(key)
	if ok && at != 0 && int64(at) <= s.now() {
		s.expired.Add(1)
		s.misses.Add(1)
		return nil, 0, false, nil
	}
	if !ok {
		s.misses.Add(1)
		return nil, 0, false, nil
	}
	if tag != dstruct.TagString {
		return nil, 0, false, ErrWrongType
	}
	s.hits.Add(1)
	if s.lru != nil {
		s.lru.touch(string(key))
	}
	return v, int64(at), true, nil
}

// TypeOf reports the kind of value key holds (TypeNone for a missing or
// lazily-expired key). It reads only the record's header words.
func (s *Store) TypeOf(key []byte) Type {
	tag, at, ok := s.m.TypeTag(key)
	if !ok {
		return TypeNone
	}
	if at != 0 && int64(at) <= s.now() {
		s.expired.Add(1)
		return TypeNone
	}
	return typeFromTag(tag)
}

// Expire sets key's absolute deadline (unix milliseconds), reporting whether
// the key existed (live). A deadline at or before now makes the key expire
// immediately. The stamp is updated in place — one word, flushed and fenced
// before Expire returns — so an acknowledged EXPIRE is durable and a crash
// can only leave the old or the new deadline, never a torn state.
func (s *Store) Expire(key string, deadline int64) bool {
	_, ok := s.m.UpdateExpire([]byte(key), uint64(deadline), uint64(s.now()))
	if ok {
		s.exp.set(key, deadline)
	}
	return ok
}

// Persist clears key's deadline, reporting whether a live key actually had
// one (Redis PERSIST semantics).
func (s *Store) Persist(key string) bool {
	prev, ok := s.m.UpdateExpire([]byte(key), 0, uint64(s.now()))
	if ok {
		s.exp.remove(key)
	}
	return ok && prev != 0
}

// PTTL returns key's remaining lifetime in milliseconds, TTLNone (-1) for a
// live key with no deadline, or TTLMissing (-2) for a missing or expired
// key.
func (s *Store) PTTL(key string) int64 {
	_, at, ok := s.m.GetExpire([]byte(key))
	if !ok {
		return TTLMissing
	}
	if at == 0 {
		return TTLNone
	}
	rem := int64(at) - s.now()
	if rem <= 0 {
		return TTLMissing
	}
	return rem
}

// ReclaimExpired deletes up to max records whose deadline has passed,
// returning how many it freed — the active half of expiration. Candidates
// come from the volatile index, but each deletion re-checks the *persisted*
// stamp under the record's stripe lock (DeleteExpired), so a key
// concurrently re-SET or PERSISTed is never swept. The serving layer calls
// this from its expiry cycle under the checkpoint barrier.
func (s *Store) ReclaimExpired(h alloc.Handle, max int) int {
	n := 0
	for _, cand := range s.ExpiredCandidates(max) {
		if s.ReclaimIfExpired(h, cand.Key, cand.At) {
			n++
		}
	}
	return n
}

// ExpiredCandidate is one sampled (key, hint-deadline) pair from the
// volatile index. A caller that must interleave its own work with each
// deletion — a replicating primary propagates every reclaim as a DEL under
// the key's lock — samples with ExpiredCandidates and confirms each key with
// ReclaimIfExpired instead of using ReclaimExpired's batch loop.
type ExpiredCandidate struct {
	Key string
	At  int64 // sampled hint deadline, passed back to ReclaimIfExpired
}

// ExpiredCandidates samples up to max keys whose volatile hint has passed.
// Candidates are hints, possibly stale: only ReclaimIfExpired, which
// re-checks the persisted stamp, may act on one.
func (s *Store) ExpiredCandidates(max int) []ExpiredCandidate {
	sampled := s.exp.sample(max, s.now())
	if len(sampled) == 0 {
		return nil
	}
	out := make([]ExpiredCandidate, len(sampled))
	for i, c := range sampled {
		out[i] = ExpiredCandidate{Key: c.key, At: c.at}
	}
	return out
}

// ReclaimIfExpired is the single-key body of ReclaimExpired: it deletes key
// iff its *persisted* stamp has passed (checked under the stripe lock),
// repairs the volatile hint otherwise, and reports whether it freed the
// record. hintAt must be the At the key was sampled with, so a hint
// refreshed by a concurrent re-SETEX survives the cleanup.
func (s *Store) ReclaimIfExpired(h alloc.Handle, key string, hintAt int64) bool {
	if s.m.DeleteExpired(h, []byte(key), uint64(s.now())) {
		s.deletes.Add(1)
		s.reclaimed.Add(1)
		// Conditional removal: a concurrent SETEX may have re-created
		// the key and refreshed its hint between our delete and here;
		// that fresh hint must survive for the record to be reclaimed
		// when it expires.
		s.exp.removeIf(key, hintAt)
		if s.lru != nil {
			s.lru.remove(key)
		}
		return true
	}
	// The persisted stamp disagrees with the sampled hint (the key was
	// deleted, re-SET, or PERSISTed since, possibly by writers racing each
	// other): repair the hint from the current stamp so phantom entries
	// don't get re-sampled every cycle.
	_, at, ok := s.m.GetExpire([]byte(key))
	persisted := int64(0)
	if ok {
		persisted = int64(at)
	}
	s.exp.fix(key, hintAt, persisted)
	return false
}

// Delete removes a key. The return reports whether an *observably live* key
// was deleted (Redis DEL semantics): deleting an expired-but-unreclaimed
// record frees its space but returns false, since reads already reported
// the key gone. Callers wanting same-key atomicity with read-modify-write
// sequences must serialize externally (the server's keyLock).
func (s *Store) Delete(h alloc.Handle, key string) bool {
	_, at, ok := s.m.GetExpire([]byte(key))
	live := ok && (at == 0 || int64(at) > s.now())
	if !s.m.Delete(h, []byte(key)) {
		return false
	}
	s.deletes.Add(1)
	s.exp.remove(key)
	if s.lru != nil {
		s.lru.remove(key)
	}
	return live
}

// Len returns the number of records, including expired records not yet
// reclaimed (they still occupy heap, exactly like Redis's DBSIZE).
func (s *Store) Len() int { return s.m.Len() }

// Range calls fn for every *live string* record until fn returns false:
// stamp-expired records are skipped (a reader must never observe a value
// the read path already reports gone), and typed objects are skipped
// because their payload is not a client value — use Scan for a type-aware
// walk. fn runs under the map's stripe locks and must not call back into
// the store; to mutate, collect keys first and then Set/Delete them.
func (s *Store) Range(fn func(key, value []byte) bool) {
	now := s.now()
	s.m.RangeTyped(func(key, value []byte, tag uint8, at uint64) bool {
		if at != 0 && int64(at) <= now {
			return true
		}
		if tag != dstruct.TagString {
			return true
		}
		return fn(key, value)
	})
}

// Scan calls fn with the key and type of every live record (expired records
// skipped), in map walk order. Same locking contract as Range.
func (s *Store) Scan(fn func(key []byte, typ Type) bool) {
	now := s.now()
	s.m.RangeMeta(func(key []byte, tag uint8, at uint64, _ uint64) bool {
		if at != 0 && int64(at) <= now {
			return true
		}
		return fn(key, typeFromTag(tag))
	})
}

// ScanCursor walks the live keyspace from bucket `cursor`, emitting whole
// buckets until at least `count` keys have been emitted (count is a soft
// target, exactly like Redis's SCAN COUNT: a bucket is never split across
// calls, so a resumed walk never skips or repeats a stable key). It returns
// the bucket to resume from and whether the walk completed. Guarantees
// match Redis: every key present for the whole iteration is returned at
// least once; keys created or deleted mid-iteration may or may not appear.
func (s *Store) ScanCursor(cursor uint64, count int, fn func(key []byte, typ Type)) (next uint64, done bool) {
	now := s.now()
	nb := s.m.Buckets()
	if count < 1 {
		count = 1
	}
	emitted := 0
	for b := cursor; b < nb; b++ {
		s.m.RangeBucketMeta(b, func(key []byte, tag uint8, at uint64) {
			if at != 0 && int64(at) <= now {
				return
			}
			emitted++
			fn(key, typeFromTag(tag))
		})
		if emitted >= count {
			if b+1 >= nb {
				return 0, true
			}
			return b + 1, false
		}
	}
	return 0, true
}

// TypeCounts is a per-type census of the live keyspace.
type TypeCounts struct {
	Strings, Hashes, Lists int
}

// CountTypes walks the live keyspace and tallies it per type (INFO's
// keyspace-by-type section; expired records are not counted).
func (s *Store) CountTypes() TypeCounts {
	var tc TypeCounts
	s.Scan(func(_ []byte, typ Type) bool {
		switch typ {
		case TypeHash:
			tc.Hashes++
		case TypeList:
			tc.Lists++
		default:
			tc.Strings++
		}
		return true
	})
	return tc
}

// DeleteAll removes every record — stamp-expired corpses included, which a
// Range-based sweep would now skip — freeing whole object graphs. It
// returns how many observably-live keys were removed (FLUSHALL's walk).
func (s *Store) DeleteAll(h alloc.Handle) int {
	var keys []string
	s.m.RangeTyped(func(key, _ []byte, _ uint8, _ uint64) bool {
		keys = append(keys, string(key))
		return true
	})
	n := 0
	for _, k := range keys {
		if s.Delete(h, k) {
			n++
		}
	}
	return n
}

// Bounded reports whether the store enforces a memory budget.
func (s *Store) Bounded() bool { return s.lru != nil }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Sets:      s.sets.Load(),
		Deletes:   s.deletes.Load(),
		Expired:   s.expired.Load(),
		Reclaimed: s.reclaimed.Load(),
		TTLd:      uint64(s.exp.tracked()),
	}
	if s.lru != nil {
		st.Evictions = s.lru.Evicted()
		st.Bytes = s.lru.Bytes()
	}
	return st
}

// Filter returns the recovery filter for the store's hash map.
func (s *Store) Filter() ralloc.Filter { return s.m.Filter() }
