package kvstore

// The typed object API: hash (HSET family) and list (LPUSH family) values
// over the tagged persistent records of dstruct. Every method applies the
// same lazy-expiry policy as the string path (a record past its persisted
// deadline is invisible; object *writes* additionally reap the corpse in
// place so dead fields or elements can never resurrect into the new
// object), and bounded stores charge each key its full graph footprint —
// the object header's persistently maintained bytes word — so evicting a
// hash frees its fields, not just its top record.

import (
	"errors"

	"repro/internal/alloc"
)

// errBadPairs reports an HSet call without matched field/value pairs (the
// serving layer validates arity before it gets here; this guards library
// callers).
var errBadPairs = errors.New("kvstore: HSet requires field/value pairs")

// objFootprint is the LRU charge of an object record: the top node (key
// plus the 8-byte payload) and the secondary structure's graph bytes.
func objFootprint(klen int, graph uint64) uint64 { return footprint(klen, 8) + graph }

// chargeObject records an object's new absolute footprint with the LRU,
// deleting any victims the budget pushes out (whole graphs).
func (s *Store) chargeObject(h alloc.Handle, key []byte, objBytes uint64) {
	if s.lru == nil {
		return
	}
	for _, victim := range s.lru.update(string(key), objFootprint(len(key), objBytes)) {
		if s.m.Delete(h, []byte(victim)) {
			s.deletes.Add(1)
			s.exp.remove(victim)
		}
	}
}

// dropObject forgets a key whose record an object mutation just deleted
// (last field or element removed).
func (s *Store) dropObject(key []byte) {
	s.deletes.Add(1)
	s.exp.remove(string(key))
	if s.lru != nil {
		s.lru.remove(string(key))
	}
}

// readCounters applies the shared read bookkeeping: lazy-expiry tally, LRU
// touch, hit/miss counters.
func (s *Store) readCounters(key []byte, ok, expired bool) {
	if expired {
		s.expired.Add(1)
	}
	if ok {
		s.hits.Add(1)
		if s.lru != nil {
			s.lru.touch(string(key))
		}
	} else {
		s.misses.Add(1)
	}
}

// HSet inserts or replaces field/value pairs in the hash at key, creating
// it if absent (or expired). It returns how many fields were newly created.
// A fresh key's HSET is crash-atomic as a whole (the object is populated
// before one durable link makes it reachable); on an existing hash each
// pair commits individually, so a crash mid-HSET leaves every field wholly
// old or wholly new. HSET never touches the key's TTL, like Redis.
func (s *Store) HSet(h alloc.Handle, key []byte, fieldvals ...[]byte) (created int, err error) {
	if len(fieldvals) == 0 || len(fieldvals)%2 != 0 {
		return 0, errBadPairs
	}
	created, objBytes, err := s.m.HSet(h, key, fieldvals, uint64(s.now()))
	if err != nil {
		return 0, err
	}
	s.sets.Add(1)
	s.chargeObject(h, key, objBytes)
	return created, nil
}

// HGet fetches one field of the hash at key.
func (s *Store) HGet(key, field []byte) (val []byte, ok bool, err error) {
	v, ok, expired, err := s.m.HGet(key, field, uint64(s.now()))
	if err != nil {
		return nil, false, err
	}
	s.readCounters(key, ok, expired)
	return v, ok, nil
}

// HExists reports whether the hash at key has the field.
func (s *Store) HExists(key, field []byte) (bool, error) {
	_, ok, err := s.HGet(key, field)
	return ok, err
}

// HDel removes fields from the hash at key, returning how many existed.
// Removing the last field deletes the key itself (Redis drops empty
// hashes).
func (s *Store) HDel(h alloc.Handle, key []byte, fields ...[]byte) (int, error) {
	removed, objBytes, gone, err := s.m.HDel(h, key, fields, uint64(s.now()))
	if err != nil {
		return 0, err
	}
	if gone {
		s.dropObject(key)
	} else if removed > 0 {
		s.chargeObject(h, key, objBytes)
	}
	return removed, nil
}

// HLen returns the number of fields in the hash at key (0 if missing).
func (s *Store) HLen(key []byte) (int, error) {
	n, expired, err := s.m.HLen(key, uint64(s.now()))
	if err != nil {
		return 0, err
	}
	if expired {
		s.expired.Add(1)
	}
	return n, nil
}

// HGetAll returns every field and value of the hash at key as parallel
// slices (empty for a missing key).
func (s *Store) HGetAll(key []byte) (fields, values [][]byte, err error) {
	fields, values, expired, err := s.m.HGetAll(key, uint64(s.now()))
	if err != nil {
		return nil, nil, err
	}
	s.readCounters(key, len(fields) > 0, expired)
	return fields, values, nil
}

// LPush prepends values to the list at key, creating it if absent (or
// expired), and returns the new length.
func (s *Store) LPush(h alloc.Handle, key []byte, vals ...[]byte) (int, error) {
	return s.push(h, key, vals, true)
}

// RPush appends values to the list at key and returns the new length.
func (s *Store) RPush(h alloc.Handle, key []byte, vals ...[]byte) (int, error) {
	return s.push(h, key, vals, false)
}

func (s *Store) push(h alloc.Handle, key []byte, vals [][]byte, left bool) (int, error) {
	if len(vals) == 0 {
		n, err := s.LLen(key)
		return n, err
	}
	n, objBytes, err := s.m.Push(h, key, vals, left, uint64(s.now()))
	if err != nil {
		return 0, err
	}
	s.sets.Add(1)
	s.chargeObject(h, key, objBytes)
	return n, nil
}

// LPop removes and returns the head of the list at key; popping the last
// element deletes the key (Redis drops empty lists).
func (s *Store) LPop(h alloc.Handle, key []byte) ([]byte, bool, error) {
	return s.pop(h, key, true)
}

// RPop is LPop at the tail.
func (s *Store) RPop(h alloc.Handle, key []byte) ([]byte, bool, error) {
	return s.pop(h, key, false)
}

func (s *Store) pop(h alloc.Handle, key []byte, left bool) ([]byte, bool, error) {
	val, ok, objBytes, gone, expired, err := s.m.Pop(h, key, left, uint64(s.now()))
	if err != nil {
		return nil, false, err
	}
	s.readCounters(key, ok, expired)
	if !ok {
		return nil, false, nil
	}
	if gone {
		s.dropObject(key)
	} else {
		s.chargeObject(h, key, objBytes)
	}
	return val, true, nil
}

// LLen returns the length of the list at key (0 if missing).
func (s *Store) LLen(key []byte) (int, error) {
	n, expired, err := s.m.LLen(key, uint64(s.now()))
	if err != nil {
		return 0, err
	}
	if expired {
		s.expired.Add(1)
	}
	return n, nil
}

// LRange returns the elements of the list at key between start and stop
// inclusive, with Redis index semantics (negative indexes count from the
// tail; out-of-range clamps to an empty result).
func (s *Store) LRange(key []byte, start, stop int64) ([][]byte, error) {
	vals, expired, err := s.m.LRange(key, start, stop, uint64(s.now()))
	if err != nil {
		return nil, err
	}
	s.readCounters(key, len(vals) > 0, expired)
	return vals, nil
}
