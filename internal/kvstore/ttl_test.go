package kvstore

import (
	"fmt"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// fakeClock is a manually-stepped unix-ms clock for deterministic expiry
// tests.
type fakeClock struct{ ms int64 }

func (c *fakeClock) now() int64      { return c.ms }
func (c *fakeClock) advance(d int64) { c.ms += d }

func newTTLStore(t *testing.T) (*ralloc.Heap, *Store, uint64, *fakeClock) {
	t.Helper()
	h, s, root := newStore(t)
	clk := &fakeClock{ms: 1_000_000}
	s.SetClock(clk.now)
	return h, s, root, clk
}

func TestLazyExpiry(t *testing.T) {
	h, s, _, clk := newTTLStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	if !s.SetBytesExpire(hd, []byte("k"), []byte("v"), clk.now()+100) {
		t.Fatal("SetBytesExpire failed")
	}
	if v, ok := s.Get("k"); !ok || v != "v" {
		t.Fatalf("live TTL'd key = (%q,%v)", v, ok)
	}
	if got := s.PTTL("k"); got != 100 {
		t.Fatalf("PTTL = %d, want 100", got)
	}
	clk.advance(99)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("key expired 1ms early")
	}
	clk.advance(1) // deadline reached: at <= now expires
	if v, ok := s.Get("k"); ok {
		t.Fatalf("expired key still served: %q", v)
	}
	if got := s.PTTL("k"); got != TTLMissing {
		t.Fatalf("PTTL of expired key = %d, want %d", got, TTLMissing)
	}
	// Lazy: the record still occupies the map until reclaimed.
	if s.Len() != 1 {
		t.Fatalf("Len = %d before reclaim", s.Len())
	}
	st := s.Stats()
	if st.Expired == 0 {
		t.Fatal("lazy expiry not counted")
	}
	if n := s.ReclaimExpired(hd, 10); n != 1 {
		t.Fatalf("ReclaimExpired = %d, want 1", n)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after reclaim", s.Len())
	}
	if s.Stats().TTLd != 0 {
		t.Fatal("expiry index leaked after reclaim")
	}
}

func TestExpirePersistSemantics(t *testing.T) {
	h, s, _, clk := newTTLStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	s.Set(hd, "k", "v")
	if got := s.PTTL("k"); got != TTLNone {
		t.Fatalf("PTTL of immortal key = %d, want %d", got, TTLNone)
	}
	if s.Expire("missing", clk.now()+50) {
		t.Fatal("Expire on missing key succeeded")
	}
	if !s.Expire("k", clk.now()+50) {
		t.Fatal("Expire on live key failed")
	}
	if got := s.PTTL("k"); got != 50 {
		t.Fatalf("PTTL = %d, want 50", got)
	}
	// PERSIST removes the deadline and reports it did.
	if !s.Persist("k") {
		t.Fatal("Persist with a TTL returned false")
	}
	if s.Persist("k") {
		t.Fatal("Persist without a TTL returned true")
	}
	clk.advance(1000)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("persisted key expired anyway")
	}

	// Redis SET clears TTLs.
	s.Expire("k", clk.now()+50)
	s.Set(hd, "k", "v2")
	if got := s.PTTL("k"); got != TTLNone {
		t.Fatalf("PTTL after plain SET = %d, want %d", got, TTLNone)
	}
	if s.Stats().TTLd != 0 {
		t.Fatal("expiry index entry survived a TTL-clearing SET")
	}
}

func TestNoResurrection(t *testing.T) {
	// Once a key is observably expired, nothing short of a fresh SET may
	// bring it back: EXPIRE and PERSIST on it must fail as "missing".
	h, s, _, clk := newTTLStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	s.SetBytesExpire(hd, []byte("k"), []byte("v"), clk.now()+10)
	clk.advance(10)
	if s.Expire("k", clk.now()+1000) {
		t.Fatal("EXPIRE resurrected an expired key")
	}
	if s.Persist("k") {
		t.Fatal("PERSIST resurrected an expired key")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired key visible")
	}
	// A fresh SET legitimately revives the name with a new record.
	s.Set(hd, "k", "new")
	if v, ok := s.Get("k"); !ok || v != "new" {
		t.Fatalf("re-SET key = (%q,%v)", v, ok)
	}
	// And reclaim must not sweep the fresh record using the stale deadline.
	if n := s.ReclaimExpired(hd, 10); n != 0 {
		t.Fatalf("ReclaimExpired swept %d fresh records", n)
	}
	if _, ok := s.Get("k"); !ok {
		t.Fatal("fresh record swept by stale reclaim")
	}
}

func TestTTLSurvivesCrashRecovery(t *testing.T) {
	// The deadline lives in the record's own allocation: after crash + GC
	// recovery + attach, live keys keep their remaining TTL and keys whose
	// deadline passed during the outage are expired — never resurrected.
	h, s, root, clk := newTTLStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	for i := 0; i < 200; i++ {
		key, val := fmt.Sprintf("k%03d", i), fmt.Sprintf("v%03d", i)
		switch i % 3 {
		case 0: // immortal
			s.Set(hd, key, val)
		case 1: // long TTL: must survive the outage
			s.SetBytesExpire(hd, []byte(key), []byte(val), clk.now()+1_000_000)
		case 2: // short TTL: passes while "down"
			s.SetBytesExpire(hd, []byte(key), []byte(val), clk.now()+500)
		}
	}
	h.SetRoot(0, root)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, Filter(a, root))
	if _, err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	s2 := Attach(a, root)
	clk.advance(1000) // outage outlives the short TTLs
	s2.SetClock(clk.now)
	// 67 long-TTL + 66 short-TTL records carry deadlines (i%3==1 hits 67
	// values in 0..199, i%3==2 hits 66).
	if got := int(s2.Stats().TTLd); got != 133 {
		t.Fatalf("rebuilt expiry index tracks %d keys, want 133", got)
	}
	for i := 0; i < 200; i++ {
		key, val := fmt.Sprintf("k%03d", i), fmt.Sprintf("v%03d", i)
		v, ok := s2.Get(key)
		switch i % 3 {
		case 0:
			if !ok || v != val {
				t.Fatalf("immortal %s = (%q,%v)", key, v, ok)
			}
			if got := s2.PTTL(key); got != TTLNone {
				t.Fatalf("immortal %s PTTL = %d", key, got)
			}
		case 1:
			if !ok || v != val {
				t.Fatalf("long-TTL %s = (%q,%v)", key, v, ok)
			}
			if got := s2.PTTL(key); got <= 0 || got > 1_000_000 {
				t.Fatalf("long-TTL %s PTTL = %d", key, got)
			}
		case 2:
			if ok {
				t.Fatalf("short-TTL %s resurrected after recovery", key)
			}
		}
	}
	// The active side reclaims exactly the 66 short-TTL corpses.
	hd2 := a.NewHandle()
	total := 0
	for {
		n := s2.ReclaimExpired(hd2, 16)
		if n == 0 {
			break
		}
		total += n
	}
	if total != 66 {
		t.Fatalf("reclaimed %d records, want 66", total)
	}
	if s2.Len() != 134 {
		t.Fatalf("Len after reclaim = %d, want 134", s2.Len())
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachBoundedSkipsExpiredRecords(t *testing.T) {
	// Stamp-expired records are dead to every reader: AttachBounded hints
	// them to the expiry index (so the cycle still reclaims their heap) but
	// must not charge them to the budget — charging corpses could evict
	// live keys to make room for data no read will ever return. Reclaiming
	// them afterwards must leave the accounting consistent (no underflow
	// from removing keys that were never charged).
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion: 32 << 20, GrowthChunk: 1 << 20,
		Pmem: pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()
	clk := &fakeClock{ms: 1_000_000}
	budget := 100 * footprint(4, 3)
	s, root := OpenBounded(a, hd, 256, budget)
	s.SetClock(clk.now)
	for i := 0; i < 50; i++ {
		s.SetBytesExpire(hd, []byte(fmt.Sprintf("k%03d", i)), []byte("val"), clk.now()+10)
	}
	for i := 0; i < 20; i++ {
		s.Set(hd, fmt.Sprintf("live%03d", i), "val")
	}
	liveBytes := 20 * footprint(7, 3)
	h.SetRoot(0, root)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, Filter(a, root))
	if _, err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	clk.advance(100)
	s2 := AttachBounded(a, root, budget)
	s2.SetClock(clk.now)
	if got := s2.Stats().Bytes; got != liveBytes {
		t.Fatalf("primed %d bytes, want %d (dead records must not be charged)", got, liveBytes)
	}
	if got := s2.Stats().TTLd; got != 50 {
		t.Fatalf("expiry index tracks %d keys, want 50 (dead records still need reclaiming)", got)
	}
	hd2 := a.NewHandle()
	for s2.ReclaimExpired(hd2, 16) > 0 {
	}
	if s2.Len() != 20 {
		t.Fatalf("Len after reclaim = %d, want 20", s2.Len())
	}
	if got := s2.Stats().Bytes; got != liveBytes {
		t.Fatalf("accounting drifted to %d bytes after reclaiming uncharged records, want %d", got, liveBytes)
	}
}

// TestLazyExpiryNoExtraAlloc is the satellite claim behind
// BenchmarkGetNoTTL/BenchmarkGetWithTTL: the deadline check on the read hot
// path must not add a single allocation over the immortal-key path.
func TestLazyExpiryNoExtraAlloc(t *testing.T) {
	h, s, _, clk := newTTLStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	s.Set(hd, "plain", "value")
	s.SetBytesExpire(hd, []byte("ttld"), []byte("value"), clk.now()+1_000_000)
	plainKey, ttldKey := []byte("plain"), []byte("ttld")
	base := testing.AllocsPerRun(200, func() { s.GetBytes(plainKey) })
	ttld := testing.AllocsPerRun(200, func() { s.GetBytes(ttldKey) })
	if ttld > base {
		t.Fatalf("TTL check added allocations to the read path: %.1f vs %.1f allocs/op", ttld, base)
	}
}
