package kvstore

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// offVersion mirrors ralloc's metadata layout (word 1 of the region): the
// test rewrites it to fabricate older heap images.
const offVersion = 8

// TestV3HeapAttachesAsAllStrings pins the v3→v4 migration contract: a heap
// written before typed objects existed (heapVersion 3 — identical record
// layout, tag bits always zero) must attach under v4 code with every key
// readable as a string, and the image must be stamped forward to v4 so
// pre-object code can no longer misread tagged records it might now gain.
func TestV3HeapAttachesAsAllStrings(t *testing.T) {
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion: 16 << 20, GrowthChunk: 1 << 20,
		Pmem: pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, root := Open(a, hd, 256)
	for i := 0; i < 200; i++ {
		if !s.Set(hd, fmt.Sprintf("k%04d", i), fmt.Sprintf("v%04d", i)) {
			t.Fatal("OOM")
		}
	}
	s.SetBytesExpire(hd, []byte("ttld"), []byte("tv"), s.Now()+1_000_000_000)
	h.SetRoot(0, root)

	// Fabricate the v3 image: same bits (v3 and v4 record layouts are
	// identical for all-string keyspaces), older version stamp.
	r := h.Region()
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	r.Store(offVersion, 3)
	r.Flush(offVersion)
	r.Fence()

	h2, dirty, err := ralloc.Attach(r, ralloc.Config{})
	if err != nil {
		t.Fatalf("v3 image rejected under v4 code: %v", err)
	}
	if !dirty {
		t.Fatal("crashed image attached clean")
	}
	if got := r.Load(offVersion); got != 4 {
		t.Fatalf("attach left version %d, want forward stamp 4", got)
	}
	a2 := h2.AsAllocator()
	h2.GetRoot(0, Filter(a2, root))
	if _, err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	s2 := Attach(a2, root)
	if s2.Len() != 201 {
		t.Fatalf("Len = %d, want 201", s2.Len())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%04d", i)
		if typ := s2.TypeOf([]byte(key)); typ != TypeString {
			t.Fatalf("v3 record %s attached as %v, want string", key, typ)
		}
		if v, ok := s2.Get(key); !ok || v != fmt.Sprintf("v%04d", i) {
			t.Fatalf("v3 record %s = (%q,%v)", key, v, ok)
		}
	}
	if got := s2.PTTL("ttld"); got <= 0 {
		t.Fatalf("v3 TTL'd record lost its deadline: PTTL = %d", got)
	}
	// The attached heap is fully v4: typed objects work on top of the old
	// keyspace.
	hd2 := a2.NewHandle()
	if _, err := s2.HSet(hd2, []byte("new-hash"), []byte("f"), []byte("v")); err != nil {
		t.Fatalf("HSet on upgraded heap: %v", err)
	}
	if _, err := h2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestV2HeapStillRejected: compat reaches exactly one version back — a v2
// image (different record layout) must keep failing loudly.
func TestV2HeapStillRejected(t *testing.T) {
	h, _, err := ralloc.Open("", ralloc.Config{SBRegion: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	r := h.Region()
	r.Store(offVersion, 2)
	r.Flush(offVersion)
	r.Fence()
	if _, _, err := ralloc.Attach(r, ralloc.Config{}); err == nil {
		t.Fatal("v2 image attached under v4 code")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}
