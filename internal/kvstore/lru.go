package kvstore

import (
	"container/list"
	"sync"
)

// Memcached evicts least-recently-used records when it reaches its memory
// budget; the eviction path is pure allocator churn (free the old record's
// node). Like memcached's own LRU, the recency metadata is *transient* —
// it lives in DRAM and is rebuilt (empty) after a restart; only the records
// themselves are persistent.

// lruEntry is one tracked record.
type lruEntry struct {
	key  string
	size uint64
}

// lruIndex tracks recency and memory use for a bounded Store.
type lruIndex struct {
	mu       sync.Mutex
	order    *list.List // front = most recent; values are *lruEntry
	byKey    map[string]*list.Element
	bytes    uint64
	maxBytes uint64
	evicted  uint64
}

func newLRUIndex(maxBytes uint64) *lruIndex {
	return &lruIndex{
		order:    list.New(),
		byKey:    make(map[string]*list.Element),
		maxBytes: maxBytes,
	}
}

// footprint approximates a record's heap cost: the hash-map node header
// (next, lengths, expiry stamp) plus padded payloads.
func footprint(key, value int) uint64 {
	return uint64(24 + (key+7)&^7 + (value+7)&^7)
}

// touch marks key as most recently used.
func (ix *lruIndex) touch(key string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if e, ok := ix.byKey[key]; ok {
		ix.order.MoveToFront(e)
	}
}

// update records an insert or replace and returns the keys to evict to get
// back under budget (the caller deletes them from the persistent map).
func (ix *lruIndex) update(key string, size uint64) []string {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if e, ok := ix.byKey[key]; ok {
		ent := e.Value.(*lruEntry)
		ix.bytes += size
		ix.bytes -= ent.size
		ent.size = size
		ix.order.MoveToFront(e)
	} else {
		ix.byKey[key] = ix.order.PushFront(&lruEntry{key: key, size: size})
		ix.bytes += size
	}
	var victims []string
	for ix.bytes > ix.maxBytes && ix.order.Len() > 1 {
		back := ix.order.Back()
		ent := back.Value.(*lruEntry)
		if ent.key == key {
			break
		}
		ix.order.Remove(back)
		delete(ix.byKey, ent.key)
		ix.bytes -= ent.size
		ix.evicted++
		victims = append(victims, ent.key)
	}
	return victims
}

// prime seeds the index with an already-stored record without triggering
// eviction; AttachBounded uses it while rebuilding recency state from the
// persistent map. Records primed later rank as more recently used.
func (ix *lruIndex) prime(key string, size uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if e, ok := ix.byKey[key]; ok {
		ent := e.Value.(*lruEntry)
		ix.bytes += size - ent.size
		ent.size = size
		ix.order.MoveToFront(e)
	} else {
		ix.byKey[key] = ix.order.PushFront(&lruEntry{key: key, size: size})
		ix.bytes += size
	}
}

// evictOver returns the keys to evict to bring the index back under budget
// (oldest first), used after priming from an over-budget persistent image.
func (ix *lruIndex) evictOver() []string {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var victims []string
	for ix.bytes > ix.maxBytes && ix.order.Len() > 0 {
		back := ix.order.Back()
		ent := back.Value.(*lruEntry)
		ix.order.Remove(back)
		delete(ix.byKey, ent.key)
		ix.bytes -= ent.size
		ix.evicted++
		victims = append(victims, ent.key)
	}
	return victims
}

// remove forgets a deleted key.
func (ix *lruIndex) remove(key string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if e, ok := ix.byKey[key]; ok {
		ix.order.Remove(e)
		delete(ix.byKey, key)
		ix.bytes -= e.Value.(*lruEntry).size
	}
}

// Bytes returns the tracked footprint.
func (ix *lruIndex) Bytes() uint64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.bytes
}

// Evicted returns how many records the budget has pushed out.
func (ix *lruIndex) Evicted() uint64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.evicted
}
