package kvstore

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ralloc"
)

func TestHashBasics(t *testing.T) {
	h, s, _ := newStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()

	created, err := s.HSet(hd, []byte("h"), []byte("f1"), []byte("v1"), []byte("f2"), []byte("v2"))
	if err != nil || created != 2 {
		t.Fatalf("HSet = (%d,%v), want (2,nil)", created, err)
	}
	if typ := s.TypeOf([]byte("h")); typ != TypeHash {
		t.Fatalf("TypeOf = %v", typ)
	}
	if v, ok, err := s.HGet([]byte("h"), []byte("f1")); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("HGet f1 = (%q,%v,%v)", v, ok, err)
	}
	if _, ok, _ := s.HGet([]byte("h"), []byte("nope")); ok {
		t.Fatal("missing field found")
	}
	// Replace keeps the count, changes the value.
	if created, _ := s.HSet(hd, []byte("h"), []byte("f1"), []byte("v1b")); created != 0 {
		t.Fatalf("replace created %d fields", created)
	}
	if v, _, _ := s.HGet([]byte("h"), []byte("f1")); string(v) != "v1b" {
		t.Fatalf("replaced value = %q", v)
	}
	if n, _ := s.HLen([]byte("h")); n != 2 {
		t.Fatalf("HLen = %d", n)
	}
	fields, values, err := s.HGetAll([]byte("h"))
	if err != nil || len(fields) != 2 || len(values) != 2 {
		t.Fatalf("HGetAll = %d/%d fields, %v", len(fields), len(values), err)
	}
	got := map[string]string{}
	for i := range fields {
		got[string(fields[i])] = string(values[i])
	}
	if got["f1"] != "v1b" || got["f2"] != "v2" {
		t.Fatalf("HGetAll content = %v", got)
	}

	// Deleting all fields deletes the key.
	if n, _ := s.HDel(hd, []byte("h"), []byte("f1"), []byte("nope")); n != 1 {
		t.Fatalf("HDel = %d", n)
	}
	if n, _ := s.HDel(hd, []byte("h"), []byte("f2")); n != 1 {
		t.Fatalf("HDel last = %d", n)
	}
	if typ := s.TypeOf([]byte("h")); typ != TypeNone {
		t.Fatalf("empty hash survived as %v", typ)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after emptying the hash", s.Len())
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestListBasics(t *testing.T) {
	h, s, _ := newStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()

	if n, err := s.RPush(hd, []byte("l"), []byte("b"), []byte("c")); err != nil || n != 2 {
		t.Fatalf("RPush = (%d,%v)", n, err)
	}
	if n, err := s.LPush(hd, []byte("l"), []byte("a")); err != nil || n != 3 {
		t.Fatalf("LPush = (%d,%v)", n, err)
	}
	if typ := s.TypeOf([]byte("l")); typ != TypeList {
		t.Fatalf("TypeOf = %v", typ)
	}
	if n, _ := s.LLen([]byte("l")); n != 3 {
		t.Fatalf("LLen = %d", n)
	}
	vals, err := s.LRange([]byte("l"), 0, -1)
	if err != nil || len(vals) != 3 {
		t.Fatalf("LRange = %d vals, %v", len(vals), err)
	}
	for i, want := range []string{"a", "b", "c"} {
		if string(vals[i]) != want {
			t.Fatalf("LRange[%d] = %q, want %q", i, vals[i], want)
		}
	}
	// Negative and clamped indexes, Redis-style.
	if vals, _ := s.LRange([]byte("l"), -2, -1); len(vals) != 2 || string(vals[0]) != "b" {
		t.Fatalf("LRange -2..-1 = %v", vals)
	}
	if vals, _ := s.LRange([]byte("l"), 5, 9); len(vals) != 0 {
		t.Fatalf("out-of-range LRange = %v", vals)
	}

	if v, ok, _ := s.LPop(hd, []byte("l")); !ok || string(v) != "a" {
		t.Fatalf("LPop = (%q,%v)", v, ok)
	}
	if v, ok, _ := s.RPop(hd, []byte("l")); !ok || string(v) != "c" {
		t.Fatalf("RPop = (%q,%v)", v, ok)
	}
	// Popping the last element deletes the key.
	if v, ok, _ := s.LPop(hd, []byte("l")); !ok || string(v) != "b" {
		t.Fatalf("last LPop = (%q,%v)", v, ok)
	}
	if typ := s.TypeOf([]byte("l")); typ != TypeNone {
		t.Fatalf("empty list survived as %v", typ)
	}
	if _, ok, _ := s.LPop(hd, []byte("l")); ok {
		t.Fatal("LPop on missing key succeeded")
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWrongTypeErrors(t *testing.T) {
	h, s, _ := newStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	s.Set(hd, "str", "v")
	s.HSet(hd, []byte("hash"), []byte("f"), []byte("v"))
	s.RPush(hd, []byte("list"), []byte("e"))

	// Object ops on a string, string ops on objects, and cross-object ops
	// all surface ErrWrongType.
	if _, err := s.HSet(hd, []byte("str"), []byte("f"), []byte("v")); !errors.Is(err, ErrWrongType) {
		t.Fatalf("HSet on string: %v", err)
	}
	if _, _, err := s.HGet([]byte("list"), []byte("f")); !errors.Is(err, ErrWrongType) {
		t.Fatalf("HGet on list: %v", err)
	}
	if _, err := s.RPush(hd, []byte("hash"), []byte("v")); !errors.Is(err, ErrWrongType) {
		t.Fatalf("RPush on hash: %v", err)
	}
	if _, _, err := s.LPop(hd, []byte("str")); !errors.Is(err, ErrWrongType) {
		t.Fatalf("LPop on string: %v", err)
	}
	if _, ok, err := s.GetBytes([]byte("hash")); ok || !errors.Is(err, ErrWrongType) {
		t.Fatalf("GetBytes on hash = (%v,%v)", ok, err)
	}
	if _, err := s.LRange([]byte("hash"), 0, -1); !errors.Is(err, ErrWrongType) {
		t.Fatalf("LRange on hash: %v", err)
	}

	// SET overwrites any type, Redis-style, freeing the old graph.
	if !s.Set(hd, "hash", "now-a-string") {
		t.Fatal("SET over hash failed")
	}
	if typ := s.TypeOf([]byte("hash")); typ != TypeString {
		t.Fatalf("TypeOf after overwrite = %v", typ)
	}
	// DEL works on any type and frees the graph.
	if !s.Delete(hd, "list") {
		t.Fatal("DEL list failed")
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectTTLAndReap(t *testing.T) {
	h, s, _, clk := newTTLStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()

	s.HSet(hd, []byte("h"), []byte("secret"), []byte("old"))
	if !s.Expire("h", clk.now()+100) {
		t.Fatal("Expire on hash failed")
	}
	if got := s.PTTL("h"); got <= 0 || got > 100 {
		t.Fatalf("PTTL = %d", got)
	}
	clk.advance(200)

	// Lazy expiry hides the object from every read.
	if typ := s.TypeOf([]byte("h")); typ != TypeNone {
		t.Fatalf("expired hash TypeOf = %v", typ)
	}
	if _, ok, err := s.HGet([]byte("h"), []byte("secret")); ok || err != nil {
		t.Fatalf("expired HGet = (%v,%v)", ok, err)
	}
	if n, _ := s.HLen([]byte("h")); n != 0 {
		t.Fatalf("expired HLen = %d", n)
	}

	// A write to the expired key reaps the corpse: the old field must not
	// resurrect into the fresh object, and the fresh object is immortal.
	if created, err := s.HSet(hd, []byte("h"), []byte("new"), []byte("v")); err != nil || created != 1 {
		t.Fatalf("HSet on expired = (%d,%v)", created, err)
	}
	if _, ok, _ := s.HGet([]byte("h"), []byte("secret")); ok {
		t.Fatal("dead field resurrected")
	}
	if got := s.PTTL("h"); got != TTLNone {
		t.Fatalf("recreated hash PTTL = %d, want TTLNone", got)
	}

	// Same for lists, and ReclaimExpired frees whole graphs.
	s.RPush(hd, []byte("l"), []byte("a"), []byte("b"))
	s.Expire("l", clk.now()+50)
	clk.advance(100)
	if n := s.ReclaimExpired(hd, 16); n != 1 {
		t.Fatalf("ReclaimExpired = %d, want 1 (the list)", n)
	}
	if typ := s.TypeOf([]byte("l")); typ != TypeNone {
		t.Fatalf("reclaimed list TypeOf = %v", typ)
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRangeSkipsExpiredAndObjects is the satellite regression: an expired
// key must never appear in a Range walk (its value is dead to every other
// read path), and object payloads must not leak as pseudo-values.
func TestRangeSkipsExpiredAndObjects(t *testing.T) {
	h, s, _, clk := newTTLStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	s.Set(hd, "live", "v")
	s.SetBytesExpire(hd, []byte("dead"), []byte("corpse"), clk.now()+10)
	s.HSet(hd, []byte("h"), []byte("f"), []byte("v"))
	s.RPush(hd, []byte("l"), []byte("e"))
	clk.advance(100)

	seen := map[string]string{}
	s.Range(func(k, v []byte) bool {
		seen[string(k)] = string(v)
		return true
	})
	if len(seen) != 1 || seen["live"] != "v" {
		t.Fatalf("Range walked %v, want only live", seen)
	}
	if _, dead := seen["dead"]; dead {
		t.Fatal("expired key surfaced in Range")
	}

	// Scan sees the live typed keyspace, still skipping the corpse.
	types := map[string]Type{}
	s.Scan(func(k []byte, typ Type) bool {
		types[string(k)] = typ
		return true
	})
	if len(types) != 3 || types["h"] != TypeHash || types["l"] != TypeList || types["live"] != TypeString {
		t.Fatalf("Scan = %v", types)
	}
	tc := s.CountTypes()
	if tc.Strings != 1 || tc.Hashes != 1 || tc.Lists != 1 {
		t.Fatalf("CountTypes = %+v", tc)
	}

	// DeleteAll purges corpses too (Len counts them; Range does not).
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4 incl. the corpse", s.Len())
	}
	s.DeleteAll(hd)
	if s.Len() != 0 {
		t.Fatalf("Len after DeleteAll = %d", s.Len())
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectCrashRecovery(t *testing.T) {
	h, s, root := newStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("hash-%03d", i))
		for f := 0; f < 8; f++ {
			if _, err := s.HSet(hd, key, []byte(fmt.Sprintf("f%02d", f)), []byte(fmt.Sprintf("v%03d-%02d", i, f))); err != nil {
				t.Fatal(err)
			}
		}
		lkey := []byte(fmt.Sprintf("list-%03d", i))
		for e := 0; e < 8; e++ {
			if _, err := s.RPush(hd, lkey, []byte(fmt.Sprintf("e%03d-%02d", i, e))); err != nil {
				t.Fatal(err)
			}
		}
		s.Set(hd, fmt.Sprintf("str-%03d", i), fmt.Sprintf("s%03d", i))
	}
	h.SetRoot(0, root)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, Filter(a, root))
	if _, err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	s2 := Attach(a, root)
	if s2.Len() != 150 {
		t.Fatalf("Len after recovery = %d, want 150", s2.Len())
	}
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("hash-%03d", i))
		if n, err := s2.HLen(key); err != nil || n != 8 {
			t.Fatalf("recovered HLen(%s) = (%d,%v)", key, n, err)
		}
		if v, ok, err := s2.HGet(key, []byte("f03")); err != nil || !ok || string(v) != fmt.Sprintf("v%03d-03", i) {
			t.Fatalf("recovered HGet(%s,f03) = (%q,%v,%v)", key, v, ok, err)
		}
		lkey := []byte(fmt.Sprintf("list-%03d", i))
		vals, err := s2.LRange(lkey, 0, -1)
		if err != nil || len(vals) != 8 {
			t.Fatalf("recovered LRange(%s) = %d vals, %v", lkey, len(vals), err)
		}
		for e, v := range vals {
			if string(v) != fmt.Sprintf("e%03d-%02d", i, e) {
				t.Fatalf("recovered %s[%d] = %q", lkey, e, v)
			}
		}
		// The deque survives end-to-end: pops from both ends agree with
		// the forward walk (tail/prev links repaired or intact).
		hd2 := a.NewHandle()
		if v, ok, _ := s2.RPop(hd2, lkey); !ok || string(v) != fmt.Sprintf("e%03d-07", i) {
			t.Fatalf("recovered RPop(%s) = %q,%v", lkey, v, ok)
		}
		if v, ok, _ := s2.LPop(hd2, lkey); !ok || string(v) != fmt.Sprintf("e%03d-00", i) {
			t.Fatalf("recovered LPop(%s) = %q,%v", lkey, v, ok)
		}
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedStoreChargesObjectGraphs: a bounded store must charge a hash
// or list its whole graph footprint and release it on eviction — endless
// object churn cannot grow the heap without bound.
func TestBoundedStoreChargesObjectGraphs(t *testing.T) {
	h, _, err := ralloc.Open("", ralloc.Config{SBRegion: 64 << 20, GrowthChunk: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()
	budget := uint64(256 << 10)
	s, _ := OpenBounded(a, hd, 256, budget)
	val := make([]byte, 64)
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("obj-%05d", i))
		if i%2 == 0 {
			for f := 0; f < 16; f++ {
				if _, err := s.HSet(hd, key, []byte(fmt.Sprintf("f%03d", f)), val); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for e := 0; e < 16; e++ {
				if _, err := s.RPush(hd, key, val); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite object churn far past the budget")
	}
	if st.Bytes > budget {
		t.Fatalf("accounted %d bytes above budget %d", st.Bytes, budget)
	}
	used := h.SBUsed()
	for i := 200; i < 600; i++ {
		key := []byte(fmt.Sprintf("obj-%05d", i))
		for f := 0; f < 16; f++ {
			if _, err := s.HSet(hd, key, []byte(fmt.Sprintf("f%03d", f)), val); err != nil {
				t.Fatal(err)
			}
		}
	}
	if h.SBUsed() > used+used/5 {
		t.Fatalf("bounded object churn grew the heap: %d -> %d", used, h.SBUsed())
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAttachBoundedChargesObjectGraphs: the rebuilt budget must equal the
// pre-crash accounting even when the keyspace is mostly object graphs.
func TestAttachBoundedChargesObjectGraphs(t *testing.T) {
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion: 64 << 20, GrowthChunk: 1 << 20,
		Pmem: pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()
	budget := uint64(1 << 20)
	s, root := OpenBounded(a, hd, 256, budget)
	h.SetRoot(0, root)
	val := make([]byte, 64)
	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("obj-%03d", i))
		for f := 0; f < 8; f++ {
			s.HSet(hd, key, []byte(fmt.Sprintf("f%d", f)), val)
		}
		s.RPush(hd, []byte(fmt.Sprintf("lst-%03d", i)), val, val, val)
	}
	want := s.Stats().Bytes
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, Filter(a, root))
	if _, err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	s2 := AttachBounded(a, root, budget)
	if got := s2.Stats().Bytes; got != want {
		t.Fatalf("rebuilt accounting = %d bytes, want %d", got, want)
	}
}
