package kvstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ralloc"
	"repro/internal/ycsb"
)

func newStore(t *testing.T) (*ralloc.Heap, *Store, uint64) {
	t.Helper()
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion:    64 << 20,
		GrowthChunk: 4 << 20,
		Pmem:        pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	s, root := Open(a, a.NewHandle(), 4096)
	return h, s, root
}

func TestSetGetDelete(t *testing.T) {
	h, s, _ := newStore(t)
	_ = h
	a := h.AsAllocator()
	hd := a.NewHandle()
	if !s.Set(hd, "hello", "world") {
		t.Fatal("Set failed")
	}
	v, ok := s.Get("hello")
	if !ok || v != "world" {
		t.Fatalf("Get = (%q,%v)", v, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("missing key found")
	}
	if !s.Delete(hd, "hello") {
		t.Fatal("Delete failed")
	}
	if _, ok := s.Get("hello"); ok {
		t.Fatal("deleted key still present")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Sets != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestYCSBWorkloadDrives(t *testing.T) {
	h, s, _ := newStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	w := ycsb.WorkloadA(1000)
	gen := ycsb.NewGenerator(w, 9)
	var buf []byte
	for i := 0; i < w.Records; i++ {
		buf = gen.Value(buf)
		if !s.SetBytes(hd, []byte(ycsb.KeyAt(i)), buf) {
			t.Fatal("load OOM")
		}
	}
	if s.Len() != w.Records {
		t.Fatalf("Len = %d, want %d", s.Len(), w.Records)
	}
	for i := 0; i < 20000; i++ {
		op := gen.Next()
		switch op.Kind {
		case ycsb.Read:
			if _, ok, _ := s.GetBytes([]byte(op.Key)); !ok {
				t.Fatalf("loaded key %q missing", op.Key)
			}
		case ycsb.Update:
			buf = gen.Value(buf)
			if !s.SetBytes(hd, []byte(op.Key), buf) {
				t.Fatal("update OOM")
			}
		}
	}
	if s.Len() != w.Records {
		t.Fatalf("record count drifted: %d", s.Len())
	}
}

func TestConcurrentClients(t *testing.T) {
	h, s, _ := newStore(t)
	a := h.AsAllocator()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hd := a.NewHandle()
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("w%d-%d", w, i%100)
				if !s.Set(hd, key, fmt.Sprintf("v%d", i)) {
					t.Error("OOM")
					return
				}
				if _, ok := s.Get(key); !ok {
					t.Errorf("own write to %q not visible", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedStoreEvictsLRU(t *testing.T) {
	h, _, err := ralloc.Open("", ralloc.Config{SBRegion: 32 << 20, GrowthChunk: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()
	// Budget for roughly 100 records of this shape.
	budget := 100 * footprint(10, 100)
	s, _ := OpenBounded(a, hd, 256, budget)
	val := make([]byte, 100)
	for i := 0; i < 300; i++ {
		if !s.Set(hd, fmt.Sprintf("key-%05d", i), string(val)) {
			t.Fatal("OOM")
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 3x budget")
	}
	if st.Bytes > budget {
		t.Fatalf("footprint %d above budget %d", st.Bytes, budget)
	}
	// The most recent keys survive, the oldest are gone.
	if _, ok := s.Get("key-00299"); !ok {
		t.Fatal("newest key evicted")
	}
	if _, ok := s.Get("key-00000"); ok {
		t.Fatal("oldest key survived a full eviction cycle")
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedStoreTouchProtectsHotKeys(t *testing.T) {
	h, _, err := ralloc.Open("", ralloc.Config{SBRegion: 32 << 20, GrowthChunk: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()
	budget := 50 * footprint(10, 100)
	s, _ := OpenBounded(a, hd, 256, budget)
	val := make([]byte, 100)
	if !s.Set(hd, "hot-key", string(val)) {
		t.Fatal("OOM")
	}
	for i := 0; i < 500; i++ {
		if !s.Set(hd, fmt.Sprintf("cold-%05d", i), string(val)) {
			t.Fatal("OOM")
		}
		s.Get("hot-key") // keep it recent
	}
	if _, ok := s.Get("hot-key"); !ok {
		t.Fatal("hot key evicted despite constant touching")
	}
}

func TestBoundedStoreEvictionFreesMemory(t *testing.T) {
	// The whole point of the LRU for an allocator study: a bounded store
	// under endless churn must not grow the heap without bound.
	h, _, err := ralloc.Open("", ralloc.Config{SBRegion: 32 << 20, GrowthChunk: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, _ := OpenBounded(a, hd, 256, 100*footprint(10, 100))
	val := make([]byte, 100)
	for i := 0; i < 500; i++ {
		s.Set(hd, fmt.Sprintf("w-%06d", i), string(val))
	}
	used := h.SBUsed()
	for i := 500; i < 5000; i++ {
		if !s.Set(hd, fmt.Sprintf("w-%06d", i), string(val)) {
			t.Fatal("OOM")
		}
	}
	if h.SBUsed() > used+h.SBUsed()/10 {
		t.Fatalf("bounded store grew the heap: %d -> %d", used, h.SBUsed())
	}
}

func TestLRUConcurrentSetGet(t *testing.T) {
	// Eviction under concurrent Set/Get: the LRU index and the persistent
	// map must stay consistent with each other while victims are chosen
	// under one lock and deleted under another. Run with -race.
	h, _, err := ralloc.Open("", ralloc.Config{SBRegion: 32 << 20, GrowthChunk: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	budget := 200 * footprint(10, 100)
	s, _ := OpenBounded(a, a.NewHandle(), 256, budget)
	val := make([]byte, 100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hd := a.NewHandle()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("w%d-%05d", w, i)
				if !s.Set(hd, key, string(val)) {
					t.Error("OOM")
					return
				}
				// Touch a mix of own-recent and foreign keys so reads
				// race with evictions of the same entries.
				s.Get(key)
				s.Get(fmt.Sprintf("w%d-%05d", (w+1)%8, i/2))
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 80x budget of churn")
	}
	if st.Bytes > budget {
		t.Fatalf("footprint %d above budget %d after quiescence", st.Bytes, budget)
	}
	// The LRU's view and the map must agree: every tracked byte belongs to
	// a live record, and the record count matches a full walk.
	walked := 0
	var walkedBytes uint64
	s.Range(func(k, v []byte) bool {
		walked++
		walkedBytes += footprint(len(k), len(v))
		return true
	})
	if walked != s.Len() {
		t.Fatalf("walked %d records, Len() = %d", walked, s.Len())
	}
	if walkedBytes != st.Bytes {
		t.Fatalf("walked footprint %d, LRU accounting %d", walkedBytes, st.Bytes)
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachBoundedRebuildsBudget(t *testing.T) {
	// Attach silently drops the bound (see Attach's doc); AttachBounded
	// must rebuild the accounting by walking the map so eviction works
	// from the first post-restart Set.
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion: 32 << 20, GrowthChunk: 1 << 20,
		Pmem: pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()
	budget := 100 * footprint(10, 100)
	s, root := OpenBounded(a, hd, 256, budget)
	h.SetRoot(0, root)
	val := make([]byte, 100)
	for i := 0; i < 90; i++ {
		if !s.Set(hd, fmt.Sprintf("key-%05d", i), string(val)) {
			t.Fatal("OOM")
		}
	}
	wantBytes := s.Stats().Bytes

	// Crash and recover, as a restarting server would.
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, Filter(a, root))
	if _, err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	s2 := AttachBounded(a, root, budget)
	if !s2.Bounded() {
		t.Fatal("AttachBounded store not bounded")
	}
	if got := s2.Stats().Bytes; got != wantBytes {
		t.Fatalf("rebuilt accounting = %d bytes, want %d", got, wantBytes)
	}
	// The budget is live again: flooding far past it evicts.
	hd2 := a.NewHandle()
	for i := 0; i < 400; i++ {
		if !s2.Set(hd2, fmt.Sprintf("new-%05d", i), string(val)) {
			t.Fatal("OOM")
		}
	}
	st := s2.Stats()
	if st.Evictions == 0 {
		t.Fatal("rebuilt bound not enforced: no evictions")
	}
	if st.Bytes > budget {
		t.Fatalf("footprint %d above budget %d", st.Bytes, budget)
	}

	// A lowered budget evicts the overage at attach time.
	s3 := AttachBounded(a, root, budget/4)
	if got := s3.Stats().Bytes; got > budget/4 {
		t.Fatalf("lowered budget not enforced at attach: %d > %d", got, budget/4)
	}
	if s3.Stats().Evictions == 0 {
		t.Fatal("no eviction despite attaching with a quarter of the budget")
	}
}

func TestStoreCrashRecovery(t *testing.T) {
	h, s, root := newStore(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	for i := 0; i < 1000; i++ {
		if !s.Set(hd, fmt.Sprintf("key%04d", i), fmt.Sprintf("value%04d", i)) {
			t.Fatal("OOM")
		}
	}
	h.SetRoot(0, root)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, Filter(a, root))
	if _, err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	s2 := Attach(a, root)
	if s2.Len() != 1000 {
		t.Fatalf("Len after recovery = %d, want 1000", s2.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := s2.Get(fmt.Sprintf("key%04d", i))
		if !ok || v != fmt.Sprintf("value%04d", i) {
			t.Fatalf("key%04d = (%q,%v) after recovery", i, v, ok)
		}
	}
}
