package kvstore

import (
	"sync"
	"sync/atomic"
)

// The persistent truth about expiration is the per-record stamp stored in
// the hash-map node (see dstruct: node word 2). This index is the *volatile*
// side: a DRAM map from key to deadline that exists only so the active
// expiry cycle can find reclaim candidates without walking the whole
// persistent map. Like the LRU index, it is rebuilt from a Range walk on
// Attach/AttachBounded; losing it in a crash loses nothing, because every
// read path re-checks the persisted stamp (lazy expiry) and the stamps are
// absolute wall-clock times, so "expired" stays expired across a restart.
//
// Index updates are NOT atomic with the map mutation they mirror (they
// happen outside the map's stripe locks), so under racing writers to the
// same key the index can briefly disagree with the persisted stamps. That
// is safe by construction: the index is only ever a *hint*. Reclaim
// re-checks the persisted stamp under the stripe lock before deleting
// (DeleteExpired), removes sampled entries only if the deadline is still
// the one it sampled (removeIf), and repairs hints that turn out stale
// (fix). The worst a lost hint costs is delayed reclamation of one record
// until the next Attach rebuilds the index; reads stay correct throughout
// via lazy expiry.

// expiryIndex tracks the deadlines of TTL'd keys for active reclamation.
type expiryIndex struct {
	mu sync.RWMutex
	at map[string]int64 // key -> unix ms deadline
	n  atomic.Int64     // len(at), readable without the lock
}

func newExpiryIndex() *expiryIndex {
	return &expiryIndex{at: make(map[string]int64)}
}

// set records or clears (deadline 0) a key's volatile deadline.
func (ix *expiryIndex) set(key string, deadline int64) {
	if deadline == 0 {
		ix.remove(key)
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.at[key]; !ok {
		ix.n.Add(1)
	}
	ix.at[key] = deadline
}

// has reports whether key carries a hint, under the read side only.
func (ix *expiryIndex) has(key string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, present := ix.at[key]
	return present
}

// remove forgets a key. The empty- and absent-key fast paths take no lock
// or only the read side, keeping immortal hot-path Sets off the write lock
// entirely when no TTL'd keys exist (workloads A/B/C).
func (ix *expiryIndex) remove(key string) {
	if ix.n.Load() == 0 {
		return
	}
	if !ix.has(key) {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.at[key]; ok {
		delete(ix.at, key)
		ix.n.Add(-1)
	}
}

// removeIf forgets a key only while its deadline is still at — the caller
// sampled (key, at) earlier, and a concurrent writer may have re-created
// the key with a fresh deadline since; that fresh hint must survive.
func (ix *expiryIndex) removeIf(key string, at int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if cur, ok := ix.at[key]; ok && cur == at {
		delete(ix.at, key)
		ix.n.Add(-1)
	}
}

// fix repairs a hint that disagreed with the persisted stamp: if the entry
// still holds the sampled deadline, it is replaced by the persisted one
// (or dropped when the record is gone or immortal, persisted == 0).
func (ix *expiryIndex) fix(key string, sampled, persisted int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if cur, ok := ix.at[key]; ok && cur == sampled {
		if persisted == 0 {
			delete(ix.at, key)
			ix.n.Add(-1)
		} else {
			ix.at[key] = persisted
		}
	}
}

// expiryCandidate is one sampled (key, deadline) hint.
type expiryCandidate struct {
	key string
	at  int64
}

// sample returns up to max keys whose deadline had passed at now. Go's map
// iteration order is randomized, so repeated samples spread over the whole
// TTL'd population — the same effect as Redis's random-key expiry sampling
// without tracking a cursor. The scan is bounded (8×max entries per call)
// so one cycle never stalls writers for O(tracked) with few keys due.
// Candidates are hints: the caller must confirm against the persistent
// stamp (DeleteExpired) before reclaiming.
func (ix *expiryIndex) sample(max int, now int64) []expiryCandidate {
	if ix.n.Load() == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var due []expiryCandidate
	scanned := 0
	for k, at := range ix.at {
		if at <= now {
			due = append(due, expiryCandidate{key: k, at: at})
			if len(due) >= max {
				break
			}
		}
		if scanned++; scanned >= max*8 {
			break
		}
	}
	return due
}

// tracked returns how many keys currently carry a deadline.
func (ix *expiryIndex) tracked() int { return int(ix.n.Load()) }
