package kvstore

import (
	"fmt"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// Crash injection around expiry-metadata persist points, extending the
// ralloc/dstruct crashinject pattern: the pmem StoreHook panics after the
// k-th store inside a phase of EXPIRE / expired-SET / active-reclaim
// traffic, so the crash lands between the individual flushes of
// UpdateExpire (the in-place stamp write), SetExpire (node init → link
// swing) and DeleteExpired (unlink → free). After recovery the invariant
// under test is the PR's headline guarantee: no key acknowledged as expired
// is ever resurrected, and no live key is dropped.

type ttlCrash struct{ k int }

// ttlCrashAt builds a store, acknowledges a known population, then runs
// expiry-heavy traffic that crashes at the k-th persistent store. It returns
// the heap, the clock, and which keys were acknowledged expired / written
// before the crash hit.
func ttlCrashAt(t *testing.T, k int) (h *ralloc.Heap, clk *fakeClock, expireAcked map[string]bool, newAcked map[string]bool) {
	t.Helper()
	var countdown int
	armed := false
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion:    16 << 20,
		GrowthChunk: 1 << 20,
		Pmem: pmem.Config{
			Mode: pmem.ModeCrashSim,
			StoreHook: func() {
				if !armed {
					return
				}
				countdown--
				if countdown == 0 {
					panic(ttlCrash{k})
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()
	clk = &fakeClock{ms: 1_000_000}
	s, root := Open(a, hd, 512)
	s.SetClock(clk.now)
	h.SetRoot(0, root)

	// Quiet phase: a fully-acknowledged population. live-* are immortal,
	// keep-* carry a far-future deadline, dead-* a near one.
	for i := 0; i < 30; i++ {
		if !s.Set(hd, fmt.Sprintf("live-%02d", i), fmt.Sprintf("lv-%02d", i)) {
			t.Fatal("OOM")
		}
		if !s.SetBytesExpire(hd, []byte(fmt.Sprintf("keep-%02d", i)),
			[]byte(fmt.Sprintf("kv-%02d", i)), clk.now()+1_000_000_000) {
			t.Fatal("OOM")
		}
		if !s.SetBytesExpire(hd, []byte(fmt.Sprintf("dead-%02d", i)),
			[]byte(fmt.Sprintf("dv-%02d", i)), clk.now()+1000) {
			t.Fatal("OOM")
		}
	}
	// The dead-* deadlines pass; observing the miss is the lazy-expiry
	// acknowledgment (reads store nothing, so the hook stays quiet).
	clk.advance(2000)
	expireAcked = map[string]bool{}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("dead-%02d", i)
		if _, ok := s.Get(key); ok {
			t.Fatalf("%s not expired before the armed phase", key)
		}
		expireAcked[key] = true
	}

	// Armed phase: EXPIRE half the keep-* keys into the past, write new-*
	// records with future TTLs, and run the active reclaim — the crash
	// lands somewhere inside one of these multi-store operations.
	newAcked = map[string]bool{}
	func() {
		defer func() {
			armed = false
			r := recover()
			if r == nil {
				return
			}
			if _, ok := r.(ttlCrash); !ok {
				panic(r)
			}
		}()
		countdown = k
		armed = true
		for i := 0; i < 15; i++ {
			key := fmt.Sprintf("keep-%02d", i)
			if !s.Expire(key, clk.now()-1) {
				t.Errorf("Expire(%s) on live key failed", key)
				return
			}
			expireAcked[key] = true // fenced before Expire returned: durable
			nkey := fmt.Sprintf("new-%02d", i)
			if !s.SetBytesExpire(hd, []byte(nkey), []byte(fmt.Sprintf("nv-%02d", i)), clk.now()+1_000_000) {
				t.Errorf("SetBytesExpire(%s) failed", nkey)
				return
			}
			newAcked[nkey] = true
			s.ReclaimExpired(hd, 3)
		}
	}()
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	return h, clk, expireAcked, newAcked
}

func TestTTLCrashInjectionSweep(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 6, 7, 9, 11, 14, 18, 23, 30, 39, 51, 66, 86, 112, 146, 190, 247} {
		h, clk, expireAcked, newAcked := ttlCrashAt(t, k)
		a := h.AsAllocator()
		root := h.GetRoot(0, nil)
		h.GetRoot(0, Filter(a, root))
		if _, err := h.Recover(); err != nil {
			t.Fatalf("k=%d: recovery: %v", k, err)
		}
		s := Attach(a, root)
		s.SetClock(clk.now)

		// No acked-expired key may be resurrected: whether its record was
		// reclaimed, is still present with the past stamp, or an in-flight
		// unlink half-landed, the read path must report it gone.
		for key := range expireAcked {
			if v, ok := s.Get(key); ok {
				t.Fatalf("k=%d: acked-expired key %s resurrected as %q", k, key, v)
			}
			if got := s.PTTL(key); got != TTLMissing {
				t.Fatalf("k=%d: acked-expired key %s PTTL = %d", k, key, got)
			}
		}
		// No live key may be dropped: immortals, the far-future keep-* keys
		// that were never EXPIREd, and every acknowledged new-* record.
		for i := 0; i < 30; i++ {
			key := fmt.Sprintf("live-%02d", i)
			if v, ok := s.Get(key); !ok || v != fmt.Sprintf("lv-%02d", i) {
				t.Fatalf("k=%d: live key %s = (%q,%v)", k, key, v, ok)
			}
		}
		for i := 15; i < 30; i++ {
			key := fmt.Sprintf("keep-%02d", i)
			if v, ok := s.Get(key); !ok || v != fmt.Sprintf("kv-%02d", i) {
				t.Fatalf("k=%d: untouched TTL'd key %s = (%q,%v)", k, key, v, ok)
			}
			if got := s.PTTL(key); got <= 0 {
				t.Fatalf("k=%d: untouched TTL'd key %s lost its deadline (PTTL %d)", k, key, got)
			}
		}
		for key := range newAcked {
			want := "nv-" + key[len(key)-2:]
			if v, ok := s.Get(key); !ok || v != want {
				t.Fatalf("k=%d: acked new record %s = (%q,%v), want %q", k, key, v, ok, want)
			}
		}

		// Draining the reclaim must stay consistent, and expired keys stay
		// dead afterwards too.
		hd := a.NewHandle()
		for s.ReclaimExpired(hd, 16) > 0 {
		}
		for key := range expireAcked {
			if _, ok := s.Get(key); ok {
				t.Fatalf("k=%d: %s resurrected after reclaim drain", k, key)
			}
		}
		if _, err := h.CheckInvariants(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}
