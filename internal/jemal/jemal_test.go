package jemal

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloctest"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(size uint64) (alloc.Allocator, error) {
		return New(Config{HeapSize: size})
	})
}

func TestTransientNeverFlushes(t *testing.T) {
	h, err := New(Config{HeapSize: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	hd := h.NewHandle()
	for i := 0; i < 10000; i++ {
		hd.Free(hd.Malloc(64))
	}
	if s := h.Region().Stats(); s.Flushes != 0 || s.Fences != 0 {
		t.Fatalf("transient allocator flushed %d / fenced %d", s.Flushes, s.Fences)
	}
}

func TestArenaSpread(t *testing.T) {
	h, err := New(Config{HeapSize: 16 << 20, NArenas: 4})
	if err != nil {
		t.Fatal(err)
	}
	arenas := map[*arena]bool{}
	for i := 0; i < 8; i++ {
		hd := h.NewHandle().(*Handle)
		arenas[hd.arena] = true
	}
	if len(arenas) != 4 {
		t.Fatalf("8 handles landed on %d arenas, want 4", len(arenas))
	}
}

func TestName(t *testing.T) {
	h, _ := New(Config{HeapSize: 4 << 20})
	if h.Name() != "jemalloc" {
		t.Fatalf("Name = %q", h.Name())
	}
}
