// Package jemal models JEMalloc, the high-performance transient allocator
// the paper uses as its performance ceiling (§6.1). The model follows
// jemalloc's architecture at the granularity that matters for the
// comparison: multiple arenas to spread contention, per-arena per-bin
// mutexes, per-thread caches with batched fill/flush, and — being transient
// — not a single flush or fence.
//
// Its allocator metadata lives in ordinary Go memory; only the blocks
// themselves come from the shared region, so workloads and data structures
// can use any allocator interchangeably.
package jemal

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/sizeclass"
)

const (
	// SlabBytes is the per-bin carve unit (a jemalloc "run").
	SlabBytes = 1 << 16
	headerSz  = 8 // per-block header: class index (or size for large)

	tcacheCap  = 64
	tcacheFill = 32
)

// Config controls the model.
type Config struct {
	HeapSize uint64 // default 64 MB
	NArenas  int    // default GOMAXPROCS
	Pmem     pmem.Config
}

type bin struct {
	mu   sync.Mutex
	free []uint64
}

type arena struct {
	bins [sizeclass.NumClasses + 1]bin
}

// Heap is a jemalloc-model allocator.
type Heap struct {
	region *pmem.Region
	bump   atomic.Uint64
	end    uint64
	arenas []*arena
	next   atomic.Uint32 // round-robin arena assignment

	largeMu   sync.Mutex
	largeFree map[uint64][]uint64 // rounded size → blocks

	closed atomic.Bool
}

// New creates a fresh heap.
func New(cfg Config) (*Heap, error) {
	if cfg.HeapSize == 0 {
		cfg.HeapSize = 64 << 20
	}
	if cfg.HeapSize < SlabBytes*2 {
		return nil, errors.New("jemal: heap too small")
	}
	if cfg.NArenas == 0 {
		cfg.NArenas = runtime.GOMAXPROCS(0)
	}
	h := &Heap{
		region:    pmem.NewRegion(cfg.HeapSize, cfg.Pmem),
		end:       cfg.HeapSize,
		largeFree: make(map[uint64][]uint64),
	}
	h.bump.Store(64) // offset 0 stays the null block
	for i := 0; i < cfg.NArenas; i++ {
		h.arenas = append(h.arenas, &arena{})
	}
	return h, nil
}

// Name implements alloc.Allocator.
func (h *Heap) Name() string { return "jemalloc" }

// Region implements alloc.Allocator.
func (h *Heap) Region() *pmem.Region { return h.region }

// Close implements alloc.Allocator (transient: nothing to persist).
func (h *Heap) Close() error {
	if h.closed.Swap(true) {
		return errors.New("jemal: already closed")
	}
	return nil
}

// carve bump-allocates n bytes, returning 0 on exhaustion.
func (h *Heap) carve(n uint64) uint64 {
	for {
		b := h.bump.Load()
		if b+n > h.end {
			return 0
		}
		if h.bump.CompareAndSwap(b, b+n) {
			return b
		}
	}
}

// Handle is a per-goroutine thread cache bound to one arena.
type Handle struct {
	heap    *Heap
	arena   *arena
	invalid bool
	cache   [sizeclass.NumClasses + 1][]uint64
}

// NewHandle implements alloc.Allocator.
func (h *Heap) NewHandle() alloc.Handle {
	i := h.next.Add(1)
	return &Handle{heap: h, arena: h.arenas[int(i)%len(h.arenas)]}
}

// Malloc allocates size bytes.
func (hd *Handle) Malloc(size uint64) uint64 {
	if hd.invalid {
		panic("jemal: stale handle")
	}
	c := sizeclass.SizeToClass(size)
	if c == 0 {
		return hd.heap.mallocLarge(size)
	}
	tc := &hd.cache[c]
	if len(*tc) == 0 && !hd.fill(c) {
		return 0
	}
	n := len(*tc) - 1
	off := (*tc)[n]
	*tc = (*tc)[:n]
	return off
}

// fill grabs a batch from the arena bin, carving a new slab when empty.
func (hd *Handle) fill(c int) bool {
	b := &hd.arena.bins[c]
	blockSize := sizeclass.ClassToSize(c)
	b.mu.Lock()
	if len(b.free) == 0 {
		slab := hd.heap.carve(SlabBytes)
		if slab == 0 {
			b.mu.Unlock()
			return false
		}
		r := hd.heap.region
		stride := headerSz + blockSize
		for off := slab; off+stride <= slab+SlabBytes; off += stride {
			r.Store(off, uint64(c))
			b.free = append(b.free, off+headerSz)
		}
	}
	n := tcacheFill
	if n > len(b.free) {
		n = len(b.free)
	}
	hd.cache[c] = append(hd.cache[c], b.free[len(b.free)-n:]...)
	b.free = b.free[:len(b.free)-n]
	b.mu.Unlock()
	return n > 0
}

// Free deallocates a block.
func (hd *Handle) Free(off uint64) {
	if off == 0 {
		return
	}
	if hd.invalid {
		panic("jemal: stale handle")
	}
	h := hd.heap
	hdr := h.region.Load(off - headerSz)
	if hdr == 0 || off >= h.end {
		panic("jemal: Free of unallocated block")
	}
	if hdr > sizeclass.NumClasses {
		h.freeLarge(off, hdr)
		return
	}
	c := int(hdr)
	tc := &hd.cache[c]
	*tc = append(*tc, off)
	if len(*tc) > tcacheCap {
		b := &hd.arena.bins[c]
		n := len(*tc) / 2
		b.mu.Lock()
		b.free = append(b.free, (*tc)[:n]...)
		b.mu.Unlock()
		*tc = append((*tc)[:0], (*tc)[n:]...)
	}
}

// Flush returns every cached block to the arena bins (clean thread exit).
// The handle remains usable.
func (hd *Handle) Flush() {
	for c := 1; c <= sizeclass.NumClasses; c++ {
		if len(hd.cache[c]) == 0 {
			continue
		}
		b := &hd.arena.bins[c]
		b.mu.Lock()
		b.free = append(b.free, hd.cache[c]...)
		b.mu.Unlock()
		hd.cache[c] = hd.cache[c][:0]
	}
}

func (h *Heap) mallocLarge(size uint64) uint64 {
	size = (size + 7) &^ 7
	h.largeMu.Lock()
	if lst := h.largeFree[size]; len(lst) > 0 {
		off := lst[len(lst)-1]
		h.largeFree[size] = lst[:len(lst)-1]
		h.largeMu.Unlock()
		return off
	}
	h.largeMu.Unlock()
	off := h.carve(headerSz + size)
	if off == 0 {
		return 0
	}
	h.region.Store(off, size)
	return off + headerSz
}

func (h *Heap) freeLarge(off, size uint64) {
	h.largeMu.Lock()
	h.largeFree[size] = append(h.largeFree[size], off)
	h.largeMu.Unlock()
}

var _ alloc.Allocator = (*Heap)(nil)
