// Package vacation ports the STAMP Vacation application (§6.3, Fig. 5e): a
// simulated online travel-reservation system whose "database" is a set of
// red-black trees (cars, flights, rooms, customers). Transactions query
// relations and create reservations, allocating tree nodes and reservation
// records as they go — making the workload allocator-bound once the tree
// operations are cheap.
//
// The paper runs Vacation under Mnemosyne's failure-atomic transactions; we
// use per-table locks as the failure-atomic sections (the locking camp of
// §2.2), which preserves the allocation pattern the experiment measures.
package vacation

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/dstruct"
)

// Table indices.
const (
	TableCars = iota
	TableFlights
	TableRooms
	TableCustomers
	numTables
)

// Config mirrors the paper's parameters: 16384 relations, 5 queries per
// transaction, 90% of relations targeted, all queries creating reservations.
type Config struct {
	Relations    int     // default 16384
	QueriesPerTx int     // default 5
	QueryRange   float64 // default 0.90
}

func (c Config) withDefaults() Config {
	if c.Relations == 0 {
		c.Relations = 16384
	}
	if c.QueriesPerTx == 0 {
		c.QueriesPerTx = 5
	}
	if c.QueryRange == 0 {
		c.QueryRange = 0.90
	}
	return c
}

// Manager is the reservation system.
type Manager struct {
	cfg    Config
	a      alloc.Allocator
	tables [numTables]*dstruct.RBTree
	locks  [numTables]sync.Mutex

	txns     atomic.Uint64
	reserved atomic.Uint64
}

// resource values pack price<<32 | available.
func packRes(price, avail uint64) uint64       { return price<<32 | avail }
func unpackRes(v uint64) (price, avail uint64) { return v >> 32, v & 0xFFFFFFFF }

// New builds and populates the database: each resource table gets one entry
// per relation with a random price and initial availability.
func New(a alloc.Allocator, h alloc.Handle, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{cfg: cfg, a: a}
	rng := rand.New(rand.NewSource(100))
	for t := 0; t < numTables; t++ {
		m.tables[t], _ = dstruct.NewRBTree(a, h)
	}
	for t := TableCars; t <= TableRooms; t++ {
		for id := 1; id <= cfg.Relations; id++ {
			price := uint64(50 + rng.Intn(450))
			if !m.tables[t].Put(h, uint64(id), packRes(price, 100)) {
				panic("vacation: out of memory populating tables")
			}
		}
	}
	return m
}

// Client is a per-goroutine session.
type Client struct {
	m   *Manager
	h   alloc.Handle
	rng *rand.Rand
	// outstanding reservation records, cancellable later.
	reservations []uint64
}

// NewClient creates a session with its own allocator handle and seed.
func (m *Manager) NewClient(h alloc.Handle, seed int64) *Client {
	return &Client{m: m, h: h, rng: rand.New(rand.NewSource(seed))}
}

// reservationRecSize is the size of one reservation record (customer id,
// table, resource id, price + padding), a typical small allocation.
const reservationRecSize = 64

// MakeReservation runs one transaction: QueriesPerTx queries over random
// resource tables within the covered range, choosing the cheapest available
// resource, then reserves it — updating the resource row, upserting the
// customer row, and allocating a reservation record. Returns false on heap
// exhaustion.
func (c *Client) MakeReservation(customerID uint64) bool {
	m := c.m
	span := int(float64(m.cfg.Relations) * m.cfg.QueryRange)
	if span < 1 {
		span = 1
	}
	bestTable, bestID, bestPrice := -1, uint64(0), uint64(1<<32)
	for q := 0; q < m.cfg.QueriesPerTx; q++ {
		t := c.rng.Intn(3) // cars, flights, rooms
		id := uint64(c.rng.Intn(span)) + 1
		m.locks[t].Lock()
		v, ok := m.tables[t].Get(id)
		m.locks[t].Unlock()
		if !ok {
			continue
		}
		price, avail := unpackRes(v)
		if avail > 0 && price < bestPrice {
			bestTable, bestID, bestPrice = t, id, price
		}
	}
	if bestTable < 0 {
		m.txns.Add(1)
		return true // nothing available: transaction still completes
	}

	// Failure-atomic section: update the resource row.
	m.locks[bestTable].Lock()
	v, _ := m.tables[bestTable].Get(bestID)
	price, avail := unpackRes(v)
	if avail > 0 {
		if !m.tables[bestTable].Put(c.h, bestID, packRes(price, avail-1)) {
			m.locks[bestTable].Unlock()
			return false
		}
	}
	m.locks[bestTable].Unlock()

	// Upsert the customer row.
	m.locks[TableCustomers].Lock()
	old, _ := m.tables[TableCustomers].Get(customerID)
	if !m.tables[TableCustomers].Put(c.h, customerID, old+1) {
		m.locks[TableCustomers].Unlock()
		return false
	}
	m.locks[TableCustomers].Unlock()

	// Allocate the reservation record.
	rec := c.h.Malloc(reservationRecSize)
	if rec == 0 {
		return false
	}
	r := m.a.Region()
	r.Store(rec, customerID)
	r.Store(rec+8, uint64(bestTable))
	r.Store(rec+16, bestID)
	r.Store(rec+24, price)
	r.FlushRange(rec, 32)
	r.Fence()
	c.reservations = append(c.reservations, rec)

	m.txns.Add(1)
	m.reserved.Add(1)
	return true
}

// DeleteCustomer removes a customer row and frees all of the client's
// reservation records belonging to that customer — STAMP Vacation's second
// transaction type, and the bulk-deallocation path of the workload.
func (c *Client) DeleteCustomer(customerID uint64) bool {
	m := c.m
	m.locks[TableCustomers].Lock()
	existed := m.tables[TableCustomers].Delete(c.h, customerID)
	m.locks[TableCustomers].Unlock()
	if !existed {
		m.txns.Add(1)
		return false
	}
	r := m.a.Region()
	kept := c.reservations[:0]
	for _, rec := range c.reservations {
		if r.Load(rec) != customerID {
			kept = append(kept, rec)
			continue
		}
		t := int(r.Load(rec + 8))
		id := r.Load(rec + 16)
		m.locks[t].Lock()
		if v, ok := m.tables[t].Get(id); ok {
			price, avail := unpackRes(v)
			m.tables[t].Put(c.h, id, packRes(price, avail+1))
		}
		m.locks[t].Unlock()
		c.h.Free(rec)
	}
	c.reservations = kept
	m.txns.Add(1)
	return true
}

// UpdateTables changes prices (and occasionally adds or retires relations)
// on a random resource table — STAMP Vacation's third transaction type,
// exercising tree insertion and deletion under churn.
func (c *Client) UpdateTables(nUpdates int) bool {
	m := c.m
	span := m.cfg.Relations
	for u := 0; u < nUpdates; u++ {
		t := c.rng.Intn(3)
		id := uint64(c.rng.Intn(span)) + 1
		newPrice := uint64(50 + c.rng.Intn(450))
		m.locks[t].Lock()
		if v, ok := m.tables[t].Get(id); ok {
			_, avail := unpackRes(v)
			if !m.tables[t].Put(c.h, id, packRes(newPrice, avail)) {
				m.locks[t].Unlock()
				return false
			}
		} else if !m.tables[t].Put(c.h, id, packRes(newPrice, 100)) {
			m.locks[t].Unlock()
			return false
		}
		m.locks[t].Unlock()
	}
	m.txns.Add(1)
	return true
}

// CancelOldest frees the client's oldest reservation record, restoring the
// resource availability — the deallocation half of the churn.
func (c *Client) CancelOldest() bool {
	if len(c.reservations) == 0 {
		return false
	}
	m := c.m
	rec := c.reservations[0]
	c.reservations = c.reservations[1:]
	r := m.a.Region()
	t := int(r.Load(rec + 8))
	id := r.Load(rec + 16)
	m.locks[t].Lock()
	if v, ok := m.tables[t].Get(id); ok {
		price, avail := unpackRes(v)
		m.tables[t].Put(c.h, id, packRes(price, avail+1))
	}
	m.locks[t].Unlock()
	c.h.Free(rec)
	m.txns.Add(1)
	return true
}

// Transactions returns the number of completed transactions.
func (m *Manager) Transactions() uint64 { return m.txns.Load() }

// Reserved returns the number of successful reservations.
func (m *Manager) Reserved() uint64 { return m.reserved.Load() }

// CheckTables verifies the red-black invariants of every table (tests).
func (m *Manager) CheckTables() error {
	for t := 0; t < numTables; t++ {
		m.locks[t].Lock()
		err := m.tables[t].CheckInvariants()
		m.locks[t].Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// TableLen reports the entry count of a table (tests).
func (m *Manager) TableLen(t int) int { return m.tables[t].Len() }
