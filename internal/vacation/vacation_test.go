package vacation

import (
	"sync"
	"testing"

	"repro/internal/ralloc"
)

func newManager(t *testing.T, cfg Config) (*ralloc.Heap, *Manager) {
	t.Helper()
	h, _, err := ralloc.Open("", ralloc.Config{SBRegion: 64 << 20, GrowthChunk: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	return h, New(a, a.NewHandle(), cfg)
}

func TestPopulation(t *testing.T) {
	_, m := newManager(t, Config{Relations: 500})
	for tb := TableCars; tb <= TableRooms; tb++ {
		if n := m.TableLen(tb); n != 500 {
			t.Fatalf("table %d has %d relations, want 500", tb, n)
		}
	}
	if m.TableLen(TableCustomers) != 0 {
		t.Fatal("customers table not empty at start")
	}
	if err := m.CheckTables(); err != nil {
		t.Fatal(err)
	}
}

func TestMakeReservation(t *testing.T) {
	h, m := newManager(t, Config{Relations: 200})
	a := h.AsAllocator()
	c := m.NewClient(a.NewHandle(), 1)
	for i := 0; i < 100; i++ {
		if !c.MakeReservation(uint64(i) + 1) {
			t.Fatal("reservation failed")
		}
	}
	if m.Transactions() != 100 {
		t.Fatalf("transactions = %d, want 100", m.Transactions())
	}
	if m.Reserved() == 0 {
		t.Fatal("no reservations made")
	}
	if m.TableLen(TableCustomers) == 0 {
		t.Fatal("no customers recorded")
	}
	if err := m.CheckTables(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRestoresAvailability(t *testing.T) {
	h, m := newManager(t, Config{Relations: 10, QueriesPerTx: 5})
	a := h.AsAllocator()
	c := m.NewClient(a.NewHandle(), 2)
	for i := 0; i < 50; i++ {
		c.MakeReservation(1)
	}
	made := m.Reserved()
	if made == 0 {
		t.Fatal("no reservations")
	}
	cancelled := 0
	for c.CancelOldest() {
		cancelled++
	}
	if cancelled == 0 {
		t.Fatal("nothing cancelled")
	}
	if err := m.CheckTables(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteCustomerFreesReservations(t *testing.T) {
	h, m := newManager(t, Config{Relations: 100})
	a := h.AsAllocator()
	c := m.NewClient(a.NewHandle(), 3)
	for i := 0; i < 40; i++ {
		if !c.MakeReservation(7) {
			t.Fatal("reservation failed")
		}
	}
	if m.TableLen(TableCustomers) != 1 {
		t.Fatalf("customers = %d, want 1", m.TableLen(TableCustomers))
	}
	if !c.DeleteCustomer(7) {
		t.Fatal("DeleteCustomer failed")
	}
	if c.DeleteCustomer(7) {
		t.Fatal("double DeleteCustomer succeeded")
	}
	if m.TableLen(TableCustomers) != 0 {
		t.Fatal("customer row not removed")
	}
	if len(c.reservations) != 0 {
		t.Fatalf("%d reservation records leaked", len(c.reservations))
	}
	if err := m.CheckTables(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateTables(t *testing.T) {
	h, m := newManager(t, Config{Relations: 200})
	a := h.AsAllocator()
	c := m.NewClient(a.NewHandle(), 4)
	for i := 0; i < 200; i++ {
		if !c.UpdateTables(5) {
			t.Fatal("UpdateTables failed")
		}
	}
	if err := m.CheckTables(); err != nil {
		t.Fatal(err)
	}
	// Tables may have grown (new relations added) but never below start.
	for tb := TableCars; tb <= TableRooms; tb++ {
		if m.TableLen(tb) < 200 {
			t.Fatalf("table %d shrank to %d", tb, m.TableLen(tb))
		}
	}
}

func TestFullActionMixConcurrent(t *testing.T) {
	// All three STAMP transaction types at once, like the real benchmark.
	h, m := newManager(t, Config{Relations: 500})
	a := h.AsAllocator()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := m.NewClient(a.NewHandle(), int64(w)+50)
			for i := 0; i < 1500; i++ {
				cust := uint64(w*100000+i%50) + 1
				switch i % 10 {
				case 8:
					c.DeleteCustomer(cust)
				case 9:
					if !c.UpdateTables(3) {
						t.Error("OOM")
						return
					}
				default:
					if !c.MakeReservation(cust) {
						t.Error("OOM")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := m.CheckTables(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	h, m := newManager(t, Config{Relations: 1000})
	a := h.AsAllocator()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := m.NewClient(a.NewHandle(), int64(w))
			for i := 0; i < 2000; i++ {
				if !c.MakeReservation(uint64(w*10000+i) + 1) {
					t.Error("OOM")
					return
				}
				if i%4 == 3 {
					c.CancelOldest()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := m.CheckTables(); err != nil {
		t.Fatal(err)
	}
	if m.Transactions() == 0 {
		t.Fatal("no transactions recorded")
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
