// Package pptr implements the position-independent pointer representations
// of the paper (§4.6).
//
// The primary representation is the off-holder: a 64-bit word, stored at
// some location L inside a persistent region, whose value encodes the byte
// offset of its target T relative to L itself (T − L). Because L is always
// at hand when the pointer is loaded or stored, no base register is needed,
// the region can be mapped anywhere, and the pointer still fits in one word
// (unlike PMDK's 128-bit based pointers).
//
// Following the paper, the unused high bits of an off-holder hold an
// "arbitrary uncommon pattern" that is masked away on use; its job is to let
// conservative garbage collection reject the vast majority of integer values
// that are not pointers. With a 1 TB limit on region size, deltas fit in 41
// bits plus sign; we reserve 44 bits for the two's-complement delta and 20
// bits for the magic pattern.
//
// The package also provides the ABA-counted list heads used by Ralloc's
// Treiber stacks (§4.2: "The head of both partial lists and the superblock
// free list have 34 bits devoted to a counter"), and counter-tagged absolute
// offsets used by the lock-free application data structures.
package pptr

// Layout of an off-holder word:
//
//	bits 63..44  magic pattern (Magic)
//	bits 43..0   two's-complement delta (target − holder location)
//
// The all-zero word is reserved for nil, which costs us nothing because a
// delta of zero would mean "points at itself", never a valid block pointer.
const (
	deltaBits = 44
	deltaMask = (uint64(1) << deltaBits) - 1
	signBit   = uint64(1) << (deltaBits - 1)

	// Magic is the uncommon high-bit pattern identifying off-holders.
	Magic = uint64(0xCA11A) // 20 bits

	magicShift = deltaBits
	magicMask  = ^deltaMask
)

// MaxDelta is the largest absolute displacement an off-holder can express.
const MaxDelta = int64(1) << (deltaBits - 1)

// Nil is the canonical null off-holder value.
const Nil = uint64(0)

// Pack encodes an off-holder stored at byte offset holder pointing at byte
// offset target. Pack(h, h) is invalid (it would collide with Nil in spirit)
// and panics, as do deltas outside ±MaxDelta.
func Pack(holder, target uint64) uint64 {
	delta := int64(target) - int64(holder)
	if delta == 0 {
		panic("pptr: self-referential off-holder")
	}
	if delta >= MaxDelta || delta < -MaxDelta {
		panic("pptr: delta out of range")
	}
	return Magic<<magicShift | uint64(delta)&deltaMask
}

// Unpack decodes the off-holder value v stored at byte offset holder. It
// reports ok=false for Nil and for any word that does not carry the magic
// pattern — which is exactly the conservative-GC rejection test.
func Unpack(holder, v uint64) (target uint64, ok bool) {
	if v == Nil {
		return 0, false
	}
	if v&magicMask != Magic<<magicShift {
		return 0, false
	}
	delta := v & deltaMask
	var d int64
	if delta&signBit != 0 {
		d = int64(delta | ^deltaMask) // sign-extend
	} else {
		d = int64(delta)
	}
	t := int64(holder) + d
	if t < 0 {
		return 0, false
	}
	return uint64(t), true
}

// IsOffHolder reports whether v carries the off-holder magic pattern.
// Conservative GC uses this as its first filter.
func IsOffHolder(v uint64) bool {
	return v != Nil && v&magicMask == Magic<<magicShift
}

// ----------------------------------------------------------------------
// ABA-counted descriptor-index heads (Ralloc metadata lists).
//
// Ralloc's superblock free list and per-class partial lists are Treiber
// stacks whose nodes are descriptors. A head word packs a monotonically
// increasing counter with the descriptor index; the counter defeats the ABA
// problem on the head CAS. With 64 KB superblocks and a 1 TB region there
// are at most 2^24 descriptors, so we give the index 25 bits (shifted by
// one so 0 can mean "empty") and the counter the remaining 39.

const (
	headIdxBits = 25
	headIdxMask = (uint64(1) << headIdxBits) - 1
)

// HeadNil is the empty ABA-counted head.
const HeadNil = uint64(0)

// PackEmptyHead builds an empty head that still carries an ABA counter.
// Using HeadNil (counter 0) when a list drains would reset the counter and
// reopen the ABA window; pop must preserve it.
func PackEmptyHead(counter uint64) uint64 {
	return counter << headIdxBits
}

// PackHead builds a head word from an ABA counter and a descriptor index.
func PackHead(counter uint64, idx uint32) uint64 {
	if uint64(idx)+1 > headIdxMask {
		panic("pptr: descriptor index out of range")
	}
	return counter<<headIdxBits | (uint64(idx) + 1)
}

// UnpackHead splits a head word; ok=false means the list is empty.
func UnpackHead(h uint64) (counter uint64, idx uint32, ok bool) {
	i := h & headIdxMask
	if i == 0 {
		return h >> headIdxBits, 0, false
	}
	return h >> headIdxBits, uint32(i - 1), true
}

// ----------------------------------------------------------------------
// Region-ID-in-Value (RIV) pointers (§4.6 near-term plans).
//
// Off-holders cannot cross heaps: the delta from holder to target is only
// meaningful inside one contiguous mapping. The paper's planned remedy is
// the RIV variant of Chen et al.: keep the 64-bit width and the smart-
// pointer interface, but encode a region identifier in the value. Layout:
//
//	bits 63..52  RIVMagic (12 bits, distinct from the off-holder magic)
//	bits 51..40  region id (12 bits → 4096 registered regions)
//	bits 39..0   absolute byte offset inside the target region (1 TB)
//
// Dereferencing goes through a registry (package riv) that maps region ids
// to live mappings. RIV pointers are deliberately *not* recognized by
// conservative GC: cross-heap tracing is out of scope for recovery (each
// heap recovers from its own roots), matching the paper's design.

const (
	rivOffBits = 40
	rivOffMask = (uint64(1) << rivOffBits) - 1
	rivIDBits  = 12
	rivIDMask  = (uint64(1) << rivIDBits) - 1

	// RIVMagic tags cross-heap pointers.
	RIVMagic = uint64(0xB5E) // 12 bits

	rivMagicShift = rivOffBits + rivIDBits
)

// MaxRIVRegions is the number of distinct region ids.
const MaxRIVRegions = 1 << rivIDBits

// PackRIV encodes a cross-heap pointer to byte offset off inside the region
// registered under id.
func PackRIV(id uint16, off uint64) uint64 {
	if uint64(id) > rivIDMask {
		panic("pptr: RIV region id out of range")
	}
	if off > rivOffMask {
		panic("pptr: RIV offset out of range")
	}
	return RIVMagic<<rivMagicShift | uint64(id)<<rivOffBits | off
}

// UnpackRIV decodes a RIV pointer; ok=false for anything not carrying the
// RIV magic (including Nil and off-holders).
func UnpackRIV(v uint64) (id uint16, off uint64, ok bool) {
	if v>>rivMagicShift != RIVMagic {
		return 0, 0, false
	}
	return uint16(v >> rivOffBits & rivIDMask), v & rivOffMask, true
}

// IsRIV reports whether v carries the RIV magic.
func IsRIV(v uint64) bool { return v>>rivMagicShift == RIVMagic }

// ----------------------------------------------------------------------
// Counter-tagged absolute offsets (application data structures).
//
// The lock-free stack and queue in internal/dstruct need ABA protection on
// words holding block offsets. Block offsets are 8-aligned and < 1 TB, so
// the offset fits in 37 bits once shifted; the remaining 27 bits hold a
// counter. Unlike off-holders these are *not* recognized by conservative
// GC — structures using them must register filter functions, exactly the
// scenario filter functions exist for (§4.5.1).

const (
	tagOffBits = 37 // offset>>3 fits in 37 bits for regions up to 1 TB
	tagOffMask = (uint64(1) << tagOffBits) - 1
)

// TagNil is a tagged word carrying a nil offset and counter zero.
const TagNil = uint64(0)

// PackTag builds a counter-tagged offset word. off must be 8-aligned.
func PackTag(counter, off uint64) uint64 {
	if off%8 != 0 {
		panic("pptr: tagged offset must be word-aligned")
	}
	s := off >> 3
	if s > tagOffMask {
		panic("pptr: tagged offset out of range")
	}
	return counter<<tagOffBits | s
}

// UnpackTag splits a counter-tagged offset word. A zero offset is the nil
// pointer (offset 0 is never a valid block).
func UnpackTag(v uint64) (counter, off uint64) {
	return v >> tagOffBits, (v & tagOffMask) << 3
}
