package pptr

import (
	"testing"
	"testing/quick"
)

func TestPackUnpackBasic(t *testing.T) {
	holder, target := uint64(0x1000), uint64(0x8000)
	v := Pack(holder, target)
	got, ok := Unpack(holder, v)
	if !ok || got != target {
		t.Fatalf("Unpack = (%#x,%v), want (%#x,true)", got, ok, target)
	}
}

func TestPackBackwardDelta(t *testing.T) {
	holder, target := uint64(0x8000), uint64(0x10)
	v := Pack(holder, target)
	got, ok := Unpack(holder, v)
	if !ok || got != target {
		t.Fatalf("backward Unpack = (%#x,%v), want (%#x,true)", got, ok, target)
	}
}

func TestNilUnpacksToNotOK(t *testing.T) {
	if _, ok := Unpack(123, Nil); ok {
		t.Fatal("Nil must not unpack")
	}
}

func TestSelfReferencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pack(64, 64)
}

func TestDeltaOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pack(0, uint64(MaxDelta))
}

func TestCommonIntegersAreNotOffHolders(t *testing.T) {
	// The magic pattern is the paper's defense against conservative GC
	// mistaking frequent integer constants for pointers.
	for _, v := range []uint64{0, 1, 2, 7, 42, 64, 1 << 20, 1 << 32, ^uint64(0), 0x3FF, 12345678901} {
		if IsOffHolder(v) {
			t.Fatalf("value %#x misidentified as off-holder", v)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	const tb = uint64(1) << 40
	f := func(h, tRaw uint64) bool {
		holder := h % tb
		target := tRaw % tb
		if holder == target {
			target = (target + 8) % tb
			if holder == target {
				return true
			}
		}
		v := Pack(holder, target)
		got, ok := Unpack(holder, v)
		return ok && got == target && IsOffHolder(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomWordsRejected(t *testing.T) {
	// A uniformly random 64-bit word matches the 20-bit magic with
	// probability 2^-20; quick should essentially never find one.
	f := func(v uint64) bool {
		if v>>44 == Magic {
			return true // deliberately an off-holder pattern; skip
		}
		return !IsOffHolder(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestHeadPackUnpack(t *testing.T) {
	h := PackHead(99, 1234)
	c, idx, ok := UnpackHead(h)
	if !ok || c != 99 || idx != 1234 {
		t.Fatalf("UnpackHead = (%d,%d,%v)", c, idx, ok)
	}
}

func TestHeadNilEmpty(t *testing.T) {
	if _, _, ok := UnpackHead(HeadNil); ok {
		t.Fatal("HeadNil must be empty")
	}
}

func TestHeadIndexZeroIsValid(t *testing.T) {
	h := PackHead(0, 0)
	if h == HeadNil {
		t.Fatal("index 0 must be distinguishable from empty")
	}
	_, idx, ok := UnpackHead(h)
	if !ok || idx != 0 {
		t.Fatalf("idx = %d ok=%v, want 0 true", idx, ok)
	}
}

func TestHeadCounterWraps(t *testing.T) {
	// Counters occupy the top 39 bits; packing a huge counter must not
	// clobber the index.
	h := PackHead(1<<39-1, 77)
	_, idx, ok := UnpackHead(h)
	if !ok || idx != 77 {
		t.Fatalf("idx = %d ok=%v, want 77 true", idx, ok)
	}
}

func TestQuickHeadRoundTrip(t *testing.T) {
	f := func(c uint64, idx uint32) bool {
		c %= 1 << 39
		idx %= 1 << 24
		gc, gi, ok := UnpackHead(PackHead(c, idx))
		return ok && gc == c && gi == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestTagPackUnpack(t *testing.T) {
	v := PackTag(5, 0x12340)
	c, off := UnpackTag(v)
	if c != 5 || off != 0x12340 {
		t.Fatalf("UnpackTag = (%d,%#x)", c, off)
	}
}

func TestTagNil(t *testing.T) {
	if _, off := UnpackTag(TagNil); off != 0 {
		t.Fatal("TagNil must carry offset 0")
	}
}

func TestTagMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PackTag(0, 13)
}

func TestQuickTagRoundTrip(t *testing.T) {
	f := func(c, off uint64) bool {
		c %= 1 << 27
		off = (off % (1 << 40)) &^ 7
		gc, goff := UnpackTag(PackTag(c, off))
		return gc == c && goff == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
