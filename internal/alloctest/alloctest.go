// Package alloctest provides a conformance suite that every allocator in
// this repository — Ralloc and the four baselines — must pass. Workloads
// and applications treat allocators interchangeably, so the suite pins down
// the contract: distinct non-overlapping blocks, cross-handle free,
// usability of the full extent, large allocations, OOM behavior, and
// concurrent correctness.
package alloctest

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/sizeclass"
)

// Factory builds a fresh allocator with roughly the given heap size.
type Factory func(heapSize uint64) (alloc.Allocator, error)

// Run executes the full conformance suite against the factory.
func Run(t *testing.T, f Factory) {
	t.Run("Basic", func(t *testing.T) { testBasic(t, f) })
	t.Run("DistinctNonOverlapping", func(t *testing.T) { testDistinct(t, f) })
	t.Run("WriteWholeBlock", func(t *testing.T) { testWholeBlock(t, f) })
	t.Run("CrossHandleFree", func(t *testing.T) { testCrossHandle(t, f) })
	t.Run("Large", func(t *testing.T) { testLarge(t, f) })
	t.Run("OOMThenRecoverByFree", func(t *testing.T) { testOOM(t, f) })
	t.Run("Concurrent", func(t *testing.T) { testConcurrent(t, f) })
	t.Run("FreeNil", func(t *testing.T) { testFreeNil(t, f) })
}

func mk(t *testing.T, f Factory, size uint64) alloc.Allocator {
	t.Helper()
	a, err := f(size)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testBasic(t *testing.T, f Factory) {
	a := mk(t, f, 16<<20)
	defer a.Close()
	hd := a.NewHandle()
	off := hd.Malloc(64)
	if off == 0 || off%8 != 0 {
		t.Fatalf("%s: Malloc = %#x", a.Name(), off)
	}
	a.Region().Store(off, 42)
	if a.Region().Load(off) != 42 {
		t.Fatalf("%s: block not writable", a.Name())
	}
	hd.Free(off)
}

func testDistinct(t *testing.T, f Factory) {
	a := mk(t, f, 32<<20)
	defer a.Close()
	hd := a.NewHandle()
	rng := rand.New(rand.NewSource(7))
	type iv struct{ lo, hi uint64 }
	var ivs []iv
	for i := 0; i < 3000; i++ {
		size := uint64(1 + rng.Intn(400))
		off := hd.Malloc(size)
		if off == 0 {
			t.Fatalf("%s: OOM at %d", a.Name(), i)
		}
		ivs = append(ivs, iv{off, off + size})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	for i := 1; i < len(ivs); i++ {
		if ivs[i].lo < ivs[i-1].hi {
			t.Fatalf("%s: overlapping blocks [%#x,%#x) [%#x,%#x)", a.Name(),
				ivs[i-1].lo, ivs[i-1].hi, ivs[i].lo, ivs[i].hi)
		}
	}
}

func testWholeBlock(t *testing.T, f Factory) {
	a := mk(t, f, 16<<20)
	defer a.Close()
	hd := a.NewHandle()
	r := a.Region()
	for _, size := range []uint64{8, 64, 400, 4096, 14336} {
		off := hd.Malloc(size)
		if off == 0 {
			t.Fatalf("%s: OOM for size %d", a.Name(), size)
		}
		for o := off; o+8 <= off+size; o += 8 {
			r.Store(o, o)
		}
		for o := off; o+8 <= off+size; o += 8 {
			if r.Load(o) != o {
				t.Fatalf("%s: size %d: word %#x corrupted", a.Name(), size, o)
			}
		}
	}
}

func testCrossHandle(t *testing.T, f Factory) {
	a := mk(t, f, 16<<20)
	defer a.Close()
	p, q := a.NewHandle(), a.NewHandle()
	var offs []uint64
	for i := 0; i < 2000; i++ {
		off := p.Malloc(128)
		if off == 0 {
			t.Fatalf("%s: OOM", a.Name())
		}
		offs = append(offs, off)
	}
	for _, off := range offs {
		q.Free(off)
	}
	for i := 0; i < 2000; i++ {
		if q.Malloc(128) == 0 {
			t.Fatalf("%s: OOM after cross-handle frees", a.Name())
		}
	}
}

func testLarge(t *testing.T, f Factory) {
	a := mk(t, f, 32<<20)
	defer a.Close()
	hd := a.NewHandle()
	r := a.Region()
	off := hd.Malloc(1 << 20)
	if off == 0 {
		t.Fatalf("%s: 1 MB Malloc failed", a.Name())
	}
	r.Store(off, 1)
	r.Store(off+1<<20-8, 2)
	if r.Load(off) != 1 || r.Load(off+1<<20-8) != 2 {
		t.Fatalf("%s: large block extent unusable", a.Name())
	}
	hd.Free(off)
	if hd.Malloc(1<<20) == 0 {
		t.Fatalf("%s: large block not reusable", a.Name())
	}
}

func testOOM(t *testing.T, f Factory) {
	a := mk(t, f, 4<<20)
	defer a.Close()
	hd := a.NewHandle()
	var got []uint64
	for {
		off := hd.Malloc(14336)
		if off == 0 {
			break
		}
		got = append(got, off)
		if len(got) > 1<<20 {
			t.Fatalf("%s: never reported OOM", a.Name())
		}
	}
	if len(got) == 0 {
		t.Fatalf("%s: nothing allocated before OOM", a.Name())
	}
	for _, off := range got {
		hd.Free(off)
	}
	if hd.Malloc(14336) == 0 {
		t.Fatalf("%s: allocation failing after frees", a.Name())
	}
}

func testConcurrent(t *testing.T, f Factory) {
	a := mk(t, f, 64<<20)
	defer a.Close()
	const goroutines = 8
	const ops = 8000
	results := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hd := a.NewHandle()
			rng := rand.New(rand.NewSource(int64(g)))
			var live []uint64
			for i := 0; i < ops; i++ {
				if len(live) > 0 && rng.Intn(2) == 0 {
					k := rng.Intn(len(live))
					hd.Free(live[k])
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				} else {
					off := hd.Malloc(uint64(8 + rng.Intn(393)))
					if off == 0 {
						t.Errorf("%s: OOM under concurrency", a.Name())
						return
					}
					live = append(live, off)
				}
			}
			results[g] = live
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for g, live := range results {
		for _, off := range live {
			if prev, dup := seen[off]; dup {
				t.Fatalf("%s: block %#x live in goroutines %d and %d", a.Name(), off, prev, g)
			}
			seen[off] = g
		}
	}
}

func testFreeNil(t *testing.T, f Factory) {
	a := mk(t, f, 4<<20)
	defer a.Close()
	a.NewHandle().Free(0)
}

// Churn is a helper for allocator smoke benchmarks in other packages: one
// handle performing n alloc/free pairs of the given size.
func Churn(hd alloc.Handle, n int, size uint64) {
	for i := 0; i < n; i++ {
		hd.Free(hd.Malloc(size))
	}
}

// RoundFor mirrors what a workload can assume about block capacity.
func RoundFor(size uint64) uint64 { return sizeclass.Round(size) }
