package sizeclass

import (
	"testing"
	"testing/quick"
)

func TestNumClasses(t *testing.T) {
	// The paper specifies 39 standard classes from 8 B to 14 KB (§4.2).
	if NumClasses != 39 {
		t.Fatalf("NumClasses = %d, want 39", NumClasses)
	}
	if Sizes[1] != 8 || Sizes[NumClasses] != 14336 {
		t.Fatalf("class range = [%d,%d], want [8,14336]", Sizes[1], Sizes[NumClasses])
	}
}

func TestSizesStrictlyIncreasing(t *testing.T) {
	for c := 2; c <= NumClasses; c++ {
		if Sizes[c] <= Sizes[c-1] {
			t.Fatalf("Sizes[%d]=%d not greater than Sizes[%d]=%d", c, Sizes[c], c-1, Sizes[c-1])
		}
	}
}

func TestSizesWordAligned(t *testing.T) {
	for c := 1; c <= NumClasses; c++ {
		if Sizes[c]%8 != 0 {
			t.Fatalf("class %d size %d is not 8-aligned", c, Sizes[c])
		}
	}
}

func TestSizeToClassExact(t *testing.T) {
	for c := 1; c <= NumClasses; c++ {
		if got := SizeToClass(uint64(Sizes[c])); got != c {
			t.Fatalf("SizeToClass(%d) = %d, want %d", Sizes[c], got, c)
		}
	}
}

func TestSizeToClassBoundaries(t *testing.T) {
	cases := []struct {
		size uint64
		want int
	}{
		{0, 1}, {1, 1}, {8, 1}, {9, 2}, {16, 2}, {17, 3},
		{64, 8}, {65, 9}, {400, 19}, {14336, 39},
		{14337, 0}, {1 << 20, 0},
	}
	for _, c := range cases {
		if got := SizeToClass(c.size); got != c.want {
			t.Errorf("SizeToClass(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestRound(t *testing.T) {
	if Round(100) != 112 {
		t.Fatalf("Round(100) = %d, want 112", Round(100))
	}
	if Round(20000) != 20000 {
		t.Fatalf("Round(20000) = %d, want 20000 (large passes through)", Round(20000))
	}
}

func TestQuickClassFits(t *testing.T) {
	f := func(sz uint32) bool {
		size := uint64(sz % (MaxSmall + 100))
		c := SizeToClass(size)
		if size > MaxSmall {
			return c == 0
		}
		if c < 1 || c > NumClasses {
			return false
		}
		// Block must fit the request...
		if ClassToSize(c) < size {
			return false
		}
		// ...and be the tightest class.
		return c == 1 || uint64(Sizes[c-1]) < size || size == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksPerSuperblock(t *testing.T) {
	const sb = 65536
	if got := BlocksPerSuperblock(1, sb); got != 8192 {
		t.Fatalf("class 1: %d blocks, want 8192", got)
	}
	if got := BlocksPerSuperblock(NumClasses, sb); got != 4 {
		t.Fatalf("class 39 (14336 B): %d blocks, want 4", got)
	}
	if got := BlocksPerSuperblock(0, sb); got != 1 {
		t.Fatalf("large class: %d, want 1", got)
	}
	for c := 1; c <= NumClasses; c++ {
		if BlocksPerSuperblock(c, sb) < 1 {
			t.Fatalf("class %d does not fit one block in a superblock", c)
		}
	}
}

func TestInternalFragmentationBounded(t *testing.T) {
	// LRMalloc-style classes keep relative internal fragmentation low
	// for sizes ≥ 64 (four classes per power-of-two group); below that,
	// absolute waste is bounded by the 8-byte spacing.
	for size := uint64(8); size <= MaxSmall; size++ {
		c := SizeToClass(size)
		waste := ClassToSize(c) - size
		if size >= 64 {
			if rel := float64(waste) / float64(size); rel > 0.34 {
				t.Fatalf("size %d: fragmentation %.2f too high (class size %d)", size, rel, ClassToSize(c))
			}
		} else if waste >= 16 {
			t.Fatalf("size %d: absolute waste %d too high (class size %d)", size, waste, ClassToSize(c))
		}
	}
}
