// Package sizeclass defines Ralloc's allocation size classes.
//
// Following the paper (§4.2) there are 39 standard classes covering block
// sizes from 8 bytes to 14 KB, inherited from LRMalloc, plus class 0 for
// blocks larger than any standard class ("large" allocations, which Ralloc
// satisfies with whole superblocks). Every superblock holds blocks of
// exactly one class.
package sizeclass

// NumClasses is the number of standard size classes (indices 1..NumClasses).
// Index 0 is reserved for large allocations.
const NumClasses = 39

// MaxSmall is the largest size served by a standard class; anything bigger
// is a large allocation.
const MaxSmall = 14336

// Sizes lists the block size of each class; Sizes[0] = 0 stands for "large".
// The progression is the LRMalloc/jemalloc-style layout: fine 8-byte spacing
// for tiny sizes, then four classes per power-of-two group.
var Sizes = [NumClasses + 1]uint32{
	0, // class 0: large
	8, 16, 24, 32, 40, 48, 56, 64,
	80, 96, 112, 128,
	160, 192, 224, 256,
	320, 384, 448, 512,
	640, 768, 896, 1024,
	1280, 1536, 1792, 2048,
	2560, 3072, 3584, 4096,
	5120, 6144, 7168, 8192,
	10240, 12288, 14336,
}

// lut maps ceil(size/8) to a class index for size ≤ MaxSmall.
var lut [MaxSmall/8 + 1]uint8

func init() {
	c := 1
	for u := 1; u <= MaxSmall/8; u++ {
		size := uint32(u * 8)
		for Sizes[c] < size {
			c++
		}
		lut[u] = uint8(c)
	}
}

// SizeToClass returns the smallest class whose block size can hold size
// bytes, or 0 if size exceeds MaxSmall (a large allocation). A size of 0 is
// served by class 1 (8-byte blocks), matching malloc(0) returning a unique
// pointer.
func SizeToClass(size uint64) int {
	if size > MaxSmall {
		return 0
	}
	if size == 0 {
		return 1
	}
	return int(lut[(size+7)/8])
}

// ClassToSize returns the block size of class c.
func ClassToSize(c int) uint64 { return uint64(Sizes[c]) }

// Round returns the block size that an allocation of size bytes actually
// occupies in a standard class; for large sizes it returns size unchanged
// (the allocator rounds those to superblocks itself).
func Round(size uint64) uint64 {
	c := SizeToClass(size)
	if c == 0 {
		return size
	}
	return ClassToSize(c)
}

// BlocksPerSuperblock returns how many blocks of class c tile one superblock
// of the given size in bytes.
func BlocksPerSuperblock(c int, superblockBytes uint64) int {
	if c == 0 {
		return 1
	}
	return int(superblockBytes / uint64(Sizes[c]))
}
