package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ralloc"
)

func testConfig(n int) Config {
	return Config{
		Shards: n,
		Ralloc: ralloc.Config{
			SBRegion: 16 << 20,
			Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
		},
		Buckets: 256,
	}
}

// fill writes per-shard records directly into each store.
func fill(t *testing.T, c *Cluster, perShard int) {
	t.Helper()
	for i, sh := range c.Shards {
		hd := sh.Alloc.NewHandle()
		for j := 0; j < perShard; j++ {
			k := []byte(fmt.Sprintf("s%d-key-%04d", i, j))
			if !sh.Store.SetBytes(hd, k, []byte("v")) {
				t.Fatalf("shard %d: SetBytes failed at %d", i, j)
			}
		}
	}
}

// TestClusterOpenCloseRoundTrip: a 4-shard cluster created fresh persists
// its records across a clean close/reopen, with the sidecar recording the
// layout and shard paths laid out as documented.
func TestClusterOpenCloseRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "kv.heap")
	c, err := Open(base, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Shards) != 4 || !c.Shards[0].Created {
		t.Fatalf("fresh open: %d shards, created=%v", len(c.Shards), c.Shards[0].Created)
	}
	if got := ShardPath(base, 0); got != base {
		t.Fatalf("shard 0 path = %q, want base", got)
	}
	if got := ShardPath(base, 3); got != base+".shard3" {
		t.Fatalf("shard 3 path = %q", got)
	}
	fill(t, c, 100)
	if c.Records() != 400 {
		t.Fatalf("records = %d", c.Records())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(MetaPath(base)); err != nil {
		t.Fatalf("sidecar missing after create: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(ShardPath(base, i)); err != nil {
			t.Fatalf("shard %d image missing: %v", i, err)
		}
	}

	c2, err := Open(base, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Recovered {
		t.Fatal("clean reopen ran recovery")
	}
	if c2.Records() != 400 {
		t.Fatalf("records after clean reopen = %d", c2.Records())
	}
}

// TestClusterLayoutGuards: every way the on-disk layout can disagree with
// -cluster-shards is refused before any heap opens.
func TestClusterLayoutGuards(t *testing.T) {
	dir := t.TempDir()

	// Created at 4, reopened at 2 and at 1: both refused.
	base := filepath.Join(dir, "four.heap")
	c, err := Open(base, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(base, testConfig(2)); err == nil || !strings.Contains(err.Error(), "records 4 shards") {
		t.Fatalf("reopen 4-shard dataset at 2 = %v", err)
	}
	if _, err := Open(base, testConfig(1)); err == nil {
		t.Fatal("reopen 4-shard dataset at 1 accepted")
	}

	// A pre-cluster (single-shard, no sidecar) image reopened sharded: refused.
	solo := filepath.Join(dir, "solo.heap")
	cs, err := Open(solo, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(solo, testConfig(4)); err == nil || !strings.Contains(err.Error(), "no cluster sidecar") {
		t.Fatalf("sharded reopen of pre-cluster image = %v", err)
	}
	// ...but reopening it single-shard stays fine.
	cs2, err := Open(solo, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cs2.Close()

	// A corrupt sidecar is an error, not a silent default.
	if err := os.WriteFile(MetaPath(base), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(base, testConfig(4)); err == nil {
		t.Fatal("corrupt sidecar accepted")
	}

	// EnsureMeta writes a missing sidecar and verifies an existing one.
	rep := filepath.Join(dir, "replica.heap")
	if err := EnsureMeta(rep, 4); err != nil {
		t.Fatal(err)
	}
	if err := EnsureMeta(rep, 4); err != nil {
		t.Fatal(err)
	}
	if err := EnsureMeta(rep, 2); err == nil {
		t.Fatal("EnsureMeta mismatch accepted")
	}
}

// TestClusterParallelCrashRecovery: kill -9 semantics across the whole
// cluster — each shard's image is written dirty (as a checkpoint does), the
// process "dies" without Close, and the next Open must recover every shard
// (in parallel) with all records intact.
func TestClusterParallelCrashRecovery(t *testing.T) {
	base := filepath.Join(t.TempDir(), "crash.heap")
	c, err := Open(base, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, 200)
	// Checkpoint each shard with the dirty flag still set (what SAVE does),
	// then abandon the in-memory state: the images now replay a SIGKILL'd
	// process's disk.
	for _, sh := range c.Shards {
		sh.Heap.Region().Persist()
		if err := sh.Heap.Region().SaveFile(sh.Path); err != nil {
			t.Fatal(err)
		}
	}

	c2, err := Open(base, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Recovered {
		t.Fatal("crashed cluster reopened without recovery")
	}
	recovered := 0
	for i, sh := range c2.Shards {
		if !sh.Recovered {
			t.Fatalf("shard %d did not recover", i)
		}
		recovered++
	}
	if c2.Records() != 800 {
		t.Fatalf("records after crash recovery = %d, want 800", c2.Records())
	}
	if c2.RecStats.ReachableBlocks == 0 || c2.RecoveryWall <= 0 {
		t.Fatalf("merged recovery stats empty: %+v wall=%v", c2.RecStats, c2.RecoveryWall)
	}
	// Per-shard keys still readable through each shard's own store.
	for i, sh := range c2.Shards {
		k := []byte(fmt.Sprintf("s%d-key-%04d", i, 199))
		if _, ok, _ := sh.Store.GetBytes(k); !ok {
			t.Fatalf("shard %d lost %s", i, k)
		}
	}
	t.Logf("recovered %d shards in %v wall (%v summed recovery work)",
		recovered, c2.RecoveryWall, c2.RecStats.Duration)
}
