// Package shardlock defines the per-shard lock block — the checkpoint
// barrier plus the striped read-modify-write mutexes — and the only
// functions allowed to acquire locks across more than one shard at once.
//
// Lock discipline. A shard's locks order internally as Exec (read side for
// commands, write side for the checkpoint fence) before Stripes (ascending
// by index). Across shards the order is ascending by position in the
// cluster's shard slice, stripes ascending within each shard. Code outside
// internal/cluster must never hold two shards' stripe locks simultaneously
// — cross-shard atomicity is exactly the deadlock shape hash-slot
// partitioning exists to forbid (CROSSSLOT), and the ralloc-vet
// `shardconfine` rule enforces it statically. The cross-shard entry points
// below (LockAllStripes, RLockAll, ExecLockAll) encode the global order
// once so FLUSHALL and the cluster-wide checkpoint fence can't each invent
// their own.
package shardlock

import "sync"

// NumStripes is the number of read-modify-write stripes per shard. 64
// stripes keep the probability of false contention low at typical client
// counts while the whole array stays two cache lines of mutex state.
const NumStripes = 64

// Locks is one shard's lock block.
type Locks struct {
	// Exec is the shard's checkpoint barrier: every command batch holds
	// the read side for its shard, the checkpoint fence takes the write
	// side — so a checkpoint cut never lands mid-command.
	Exec sync.RWMutex
	// Stripes serialize read-modify-write command execution per key hash.
	Stripes [NumStripes]sync.Mutex
}

// LockStripes acquires this shard's stripes for the given indices, which
// must be sorted ascending and deduplicated.
func (l *Locks) LockStripes(idx []int) {
	for _, i := range idx {
		l.Stripes[i].Lock()
	}
}

// UnlockStripes releases in reverse acquisition order.
func (l *Locks) UnlockStripes(idx []int) {
	for i := len(idx) - 1; i >= 0; i-- {
		l.Stripes[idx[i]].Unlock()
	}
}

// LockAllStripes acquires every stripe of every shard in global order —
// ascending shard, ascending stripe. FLUSHALL uses it to make whole-keyspace
// deletion atomic with respect to every striped writer on every shard.
func LockAllStripes(shards []*Locks) {
	for _, l := range shards {
		for i := range l.Stripes {
			l.Stripes[i].Lock()
		}
	}
}

// UnlockAllStripes releases in reverse global order.
func UnlockAllStripes(shards []*Locks) {
	for s := len(shards) - 1; s >= 0; s-- {
		l := shards[s]
		for i := len(l.Stripes) - 1; i >= 0; i-- {
			l.Stripes[i].Unlock()
		}
	}
}

// RLockAll acquires every shard's barrier read side in ascending order, for
// commands that touch the whole keyspace (FLUSHALL) and must not straddle
// any shard's checkpoint cut.
func RLockAll(shards []*Locks) {
	for _, l := range shards {
		l.Exec.RLock()
	}
}

// RUnlockAll releases in reverse order.
func RUnlockAll(shards []*Locks) {
	for s := len(shards) - 1; s >= 0; s-- {
		shards[s].Exec.RUnlock()
	}
}

// ExecLockAll acquires every shard's barrier write side in ascending order.
// This is the cluster-wide fence: with all write sides held no command is in
// flight anywhere, so the replication stream offset is frozen and one
// (id, offset) pair can stamp every shard's checkpoint as a single
// consistent cut.
func ExecLockAll(shards []*Locks) {
	for _, l := range shards {
		l.Exec.Lock()
	}
}

// ExecUnlockAll releases in reverse order.
func ExecUnlockAll(shards []*Locks) {
	for s := len(shards) - 1; s >= 0; s-- {
		shards[s].Exec.Unlock()
	}
}
