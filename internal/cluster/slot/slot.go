// Package slot implements the Redis-cluster hash-slot keyspace partition:
// CRC16-XMODEM of the key (or of its {hash-tag}) modulo 16384 slots, and a
// contiguous slot→shard range mapping. It also defines the composite SCAN
// cursor that makes keyspace iteration resumable across shards without ever
// revisiting one.
//
// The package is a pure leaf — no dependencies beyond the stdlib — so both
// the serving layer and the cluster lifecycle layer can import it without
// entangling their dependency graphs.
package slot

// Slots is the fixed size of the keyspace partition, matching Redis
// cluster's 16384 hash slots. The slot of a key is stable across shard
// counts; only the slot→shard range mapping changes with N.
const Slots = 16384

// MaxShards bounds the shard count so a shard index always fits in the low
// byte of a SCAN cursor (see EncodeCursor).
const MaxShards = 256

// crc16tab is the CRC16-XMODEM (CCITT, poly 0x1021, init 0) table, the
// exact polynomial Redis cluster uses, built once at package init.
var crc16tab [256]uint16

func init() {
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		crc16tab[i] = crc
	}
}

// CRC16 returns the CRC16-XMODEM checksum of b.
func CRC16(b []byte) uint16 {
	var crc uint16
	for _, c := range b {
		crc = crc<<8 ^ crc16tab[byte(crc>>8)^c]
	}
	return crc
}

// SlotOf maps a key to its hash slot. Redis hash-tag semantics apply: if the
// key contains a '{' with a matching '}' after it and at least one byte
// between them, only the bytes between the first such pair are hashed, so
// callers can force related keys ("user:{42}:name", "user:{42}:age") into
// one slot — and therefore one shard — making multi-key commands on them
// legal at any shard count.
func SlotOf(key []byte) uint16 {
	if tag := hashTag(key); tag != nil {
		key = tag
	}
	return CRC16(key) & (Slots - 1)
}

// hashTag returns the bytes between the first '{' and the next '}' after
// it, or nil when the key has no non-empty tag.
func hashTag(key []byte) []byte {
	for i := 0; i < len(key); i++ {
		if key[i] != '{' {
			continue
		}
		for j := i + 1; j < len(key); j++ {
			if key[j] == '}' {
				if j == i+1 {
					return nil // "{}" — empty tag, hash the whole key
				}
				return key[i+1 : j]
			}
		}
		return nil // '{' with no closing '}'
	}
	return nil
}

// ShardOf maps a key to its shard index for an n-shard cluster. Shards own
// contiguous slot ranges — shard s covers [s*Slots/n, (s+1)*Slots/n) — so
// the mapping is order-preserving in slot space and every shard owns either
// ⌊Slots/n⌋ or ⌈Slots/n⌉ slots. n must be in [1, MaxShards].
func ShardOf(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	return ShardOfSlot(SlotOf(key), n)
}

// ShardOfSlot maps a hash slot to its shard index for an n-shard cluster.
func ShardOfSlot(s uint16, n int) int {
	return int(uint32(s) * uint32(n) / Slots)
}

// SCAN cursors compose a shard index and that shard's private cursor into
// one opaque integer: cursor = inner<<8 | shard. Cursor 0 is the canonical
// start (shard 0, inner 0) and also the canonical end, exactly like Redis.
// A scan walks shard k to exhaustion (inner advancing, shard byte fixed),
// then steps to shard k+1 at inner 0 — it never revisits an exhausted
// shard, so the iteration is resumable and terminates after one pass even
// while writers mutate the keyspace.

// EncodeCursor packs a shard index and a per-shard inner cursor.
func EncodeCursor(shard int, inner uint64) uint64 {
	return inner<<8 | uint64(shard)
}

// DecodeCursor splits a composite cursor. ok is false when the shard index
// is out of range for an n-shard cluster or the inner bits would have been
// truncated by EncodeCursor.
func DecodeCursor(cursor uint64, n int) (shard int, inner uint64, ok bool) {
	shard = int(cursor & 0xff)
	inner = cursor >> 8
	if shard >= n || inner > (^uint64(0))>>8 {
		return 0, 0, false
	}
	return shard, inner, true
}
