package slot

import "testing"

func TestCRC16Vector(t *testing.T) {
	// The reference vector from the Redis cluster spec.
	if got := CRC16([]byte("123456789")); got != 0x31C3 {
		t.Fatalf("CRC16(123456789) = %#x, want 0x31c3", got)
	}
	if got := CRC16(nil); got != 0 {
		t.Fatalf("CRC16(nil) = %#x, want 0", got)
	}
}

func TestSlotOfHashTag(t *testing.T) {
	cases := []struct{ key, same string }{
		{"user:{42}:name", "user:{42}:age"}, // tag forces co-location
		{"{tag}a", "tag"},                   // tag hashes like the bare string
		{"foo{", "foo{"},                    // unclosed brace: whole key
		{"foo{}bar", "foo{}bar"},            // empty tag: whole key
		{"{a}{b}", "a"},                     // first tag wins
	}
	for _, c := range cases {
		if SlotOf([]byte(c.key)) != SlotOf([]byte(c.same)) {
			t.Errorf("SlotOf(%q) != SlotOf(%q)", c.key, c.same)
		}
	}
	if SlotOf([]byte("foo{}bar")) == SlotOf([]byte("")) {
		t.Errorf("empty tag must not hash the empty string")
	}
}

func TestShardOfRanges(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16, MaxShards} {
		counts := make([]int, n)
		prev := 0
		for s := 0; s < Slots; s++ {
			sh := ShardOfSlot(uint16(s), n)
			if sh < 0 || sh >= n {
				t.Fatalf("n=%d slot=%d: shard %d out of range", n, s, sh)
			}
			if sh < prev {
				t.Fatalf("n=%d slot=%d: shard %d not monotone (prev %d)", n, s, sh, prev)
			}
			prev = sh
			counts[sh]++
		}
		lo, hi := Slots/n, (Slots+n-1)/n
		for sh, c := range counts {
			if c < lo || c > hi {
				t.Fatalf("n=%d shard=%d owns %d slots, want %d..%d", n, sh, c, lo, hi)
			}
		}
	}
}

func TestShardOfSingleShard(t *testing.T) {
	for _, k := range []string{"", "a", "user:{42}:name", "xyzzy"} {
		if got := ShardOf([]byte(k), 1); got != 0 {
			t.Fatalf("ShardOf(%q, 1) = %d, want 0", k, got)
		}
	}
}

func TestCursorRoundTrip(t *testing.T) {
	for _, n := range []int{1, 4} {
		for shard := 0; shard < n; shard++ {
			for _, inner := range []uint64{0, 1, 7, 65535, 1 << 40} {
				c := EncodeCursor(shard, inner)
				gs, gi, ok := DecodeCursor(c, n)
				if !ok || gs != shard || gi != inner {
					t.Fatalf("n=%d round trip (%d,%d) -> %d -> (%d,%d,%v)",
						n, shard, inner, c, gs, gi, ok)
				}
			}
		}
	}
	if _, _, ok := DecodeCursor(EncodeCursor(3, 9), 1); ok {
		t.Fatalf("shard 3 must not decode under n=1")
	}
	// Cursor 0 decodes as (0, 0) — the canonical start — at any n.
	if s, i, ok := DecodeCursor(0, 4); !ok || s != 0 || i != 0 {
		t.Fatalf("DecodeCursor(0) = (%d,%d,%v)", s, i, ok)
	}
}
