// Package cluster owns the lifecycle of a horizontally sharded keyspace: N
// independent persistent heaps (each a full ralloc.Heap + kvstore.Store with
// its own image file, recovery, and checkpoint cadence) that together form
// one logical database. The routing side — CRC16 hash slots, per-command key
// confinement — lives in internal/cluster/slot and internal/server; this
// package covers what happens before and after serving: opening every shard,
// recovering them in parallel after a crash, and closing them.
//
// Why shards recover in parallel: Ralloc's recovery is a heap traversal
// (trace reachable blocks, sweep the rest), and its cost grows with one
// heap's footprint. Splitting the keyspace across N heaps divides the
// traversal N ways with no coordination — the shards share nothing — so
// post-crash restart time scales down with shard count, which is the
// recovery half of the PR's scaling story (the throughput half is the
// per-shard lock blocks in internal/server).
//
// On-disk layout: shard 0 lives at the base path (so -cluster-shards 1 is
// byte-compatible with every image a single-heap build ever wrote), shard
// i>0 at "<base>.shard<i>", and a sidecar "<base>.cluster" records the shard
// count. The sidecar is what makes layout mistakes loud: reopening a
// 4-shard dataset with -cluster-shards 2 would route keys differently and
// silently lose 3/4 of the keyspace, so Open refuses any mismatch between
// the sidecar and the requested count before touching a heap.
package cluster

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/kvstore"
	"repro/internal/ralloc"
)

// rootKV is the persistent-root slot holding each shard's store.
const rootKV = 0

// Config describes how to open every shard. The sizes are per shard: a
// 4-shard cluster with SBRegionMB=64 owns 256 MB of heap total, matching a
// 1-shard cluster with SBRegionMB=256 — which is how the benchmarks hold
// total footprint constant while varying shard count.
type Config struct {
	// Shards is the keyspace shard count, in [1, slot.MaxShards].
	Shards int
	// Ralloc configures each shard's allocator (SBRegion is per shard).
	Ralloc ralloc.Config
	// Buckets is the hash-bucket count for a freshly created store.
	Buckets int
	// Bound is the per-shard LRU budget in bytes; 0 = unbounded.
	Bound uint64
}

// Shard is one opened shard: its heap, store, and what opening it cost.
type Shard struct {
	// Path is the shard's image path ("" for a volatile cluster).
	Path string
	// Heap is the shard's recovered allocator heap.
	Heap *ralloc.Heap
	// Alloc is Heap.AsAllocator(), the store's allocator.
	Alloc alloc.Allocator
	// Store is the shard's keyspace partition, attached and ready.
	Store *kvstore.Store
	// Dirty reports whether the image was marked in-use at open (the last
	// session did not close cleanly).
	Dirty bool
	// Created reports whether this open created a fresh store (no root).
	Created bool
	// Recovered reports whether GC recovery ran (Dirty with an existing root).
	Recovered bool
	// RecStats holds this shard's recovery statistics when Recovered.
	RecStats ralloc.RecoveryStats
	// AttachDur is the time from ralloc.Open to the store being attached.
	AttachDur time.Duration
}

// Cluster is the set of opened shards plus merged recovery accounting.
type Cluster struct {
	Base   string
	Shards []*Shard

	// Recovered reports whether any shard ran GC recovery.
	Recovered bool
	// RecStats sums the per-shard recovery statistics (work and reachable
	// counts add; the durations add too, so they report total CPU work —
	// RecoveryWall is the elapsed-time number).
	RecStats ralloc.RecoveryStats
	// RecoveryWall is the wall-clock duration of the parallel open+recover
	// of all shards: what a client actually waits after kill -9.
	RecoveryWall time.Duration
}

// ShardPath returns shard i's image path: the base path itself for shard 0
// (single-shard images stay byte-compatible with pre-cluster builds),
// "<base>.shard<i>" above. A volatile cluster (base "") has no paths.
func ShardPath(base string, i int) string {
	if base == "" || i == 0 {
		return base
	}
	return fmt.Sprintf("%s.shard%d", base, i)
}

// MetaPath returns the sidecar path recording the cluster's shard count.
func MetaPath(base string) string {
	return base + ".cluster"
}

// checkLayout enforces the sidecar contract before any heap opens:
//
//   - n == 1 and a sidecar exists: the dataset was created sharded; opening
//     only shard 0 would serve a fraction of the keyspace. Refused.
//   - n > 1 and the sidecar records a different count: keys would route
//     differently than they were written. Refused.
//   - n > 1, no sidecar, but a base image exists: a pre-cluster dataset is
//     being reopened sharded; its keys were never slot-routed. Refused.
//   - n > 1, no sidecar, no base image: fresh cluster — write the sidecar.
func checkLayout(base string, n int) error {
	if base == "" {
		return nil // volatile: nothing on disk to mismatch
	}
	meta := MetaPath(base)
	b, err := os.ReadFile(meta)
	switch {
	case err == nil:
		recorded, perr := parseMeta(string(b))
		if perr != nil {
			return fmt.Errorf("cluster sidecar %s: %w", meta, perr)
		}
		if recorded != n {
			return fmt.Errorf("cluster sidecar %s records %d shards, -cluster-shards is %d: reopen with the count the dataset was created with", meta, recorded, n)
		}
		return nil
	case errors.Is(err, os.ErrNotExist):
		if n == 1 {
			return nil
		}
		if _, serr := os.Stat(base); serr == nil {
			return fmt.Errorf("heap image %s exists but has no cluster sidecar: it was created single-shard and its keys are not slot-partitioned; refusing to open it with -cluster-shards %d", base, n)
		}
		return writeMeta(meta, n)
	default:
		return fmt.Errorf("cluster sidecar %s: %w", meta, err)
	}
}

// EnsureMeta records the cluster layout for images that arrived sharded
// from elsewhere (a replica bootstrap downloads the primary's N slot-
// partitioned images before any heap opens, so checkLayout's "existing image
// without a sidecar" refusal must not fire on them). An existing sidecar
// must match; a missing one is written.
func EnsureMeta(base string, n int) error {
	if base == "" || n <= 1 {
		return nil
	}
	meta := MetaPath(base)
	b, err := os.ReadFile(meta)
	switch {
	case err == nil:
		recorded, perr := parseMeta(string(b))
		if perr != nil {
			return fmt.Errorf("cluster sidecar %s: %w", meta, perr)
		}
		if recorded != n {
			return fmt.Errorf("cluster sidecar %s records %d shards, want %d", meta, recorded, n)
		}
		return nil
	case errors.Is(err, os.ErrNotExist):
		return writeMeta(meta, n)
	default:
		return fmt.Errorf("cluster sidecar %s: %w", meta, err)
	}
}

func parseMeta(s string) (int, error) {
	s = strings.TrimSpace(s)
	const prefix = "shards "
	if !strings.HasPrefix(s, prefix) {
		return 0, fmt.Errorf("malformed contents %q", s)
	}
	n, err := strconv.Atoi(strings.TrimSpace(s[len(prefix):]))
	if err != nil || n < 2 {
		return 0, fmt.Errorf("malformed shard count in %q", s)
	}
	return n, nil
}

// writeMeta publishes the sidecar atomically (temp + rename) so a crash
// during creation leaves either no sidecar or a complete one — never a
// truncated file that would block every future open.
func writeMeta(path string, n int) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("shards %d\n", n)), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Open opens (and, after a crash, recovers) every shard of the cluster at
// base, one goroutine per shard. Each shard runs the full single-heap
// startup sequence — ralloc.Open, root lookup, GC recovery when the image
// is dirty, store attach — independently: the heaps share no state, so the
// only serialization is the machine's parallelism. On any shard failing,
// every already-opened shard is closed without saving and the first error
// is returned.
func Open(base string, cfg Config) (*Cluster, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	if err := checkLayout(base, n); err != nil {
		return nil, err
	}

	t0 := time.Now()
	shards := make([]*Shard, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shards[i], errs[i] = openShard(ShardPath(base, i), cfg)
		}(i)
	}
	wg.Wait()

	c := &Cluster{Base: base, Shards: shards, RecoveryWall: time.Since(t0)}
	for i, err := range errs {
		if err != nil {
			c.abandon()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	for _, sh := range shards {
		if sh.Recovered {
			c.Recovered = true
			c.RecStats.ReachableBlocks += sh.RecStats.ReachableBlocks
			c.RecStats.ReachableBytes += sh.RecStats.ReachableBytes
			c.RecStats.TraceWork += sh.RecStats.TraceWork
			c.RecStats.SweepUnits += sh.RecStats.SweepUnits
			c.RecStats.TraceTime += sh.RecStats.TraceTime
			c.RecStats.SweepTime += sh.RecStats.SweepTime
			c.RecStats.Duration += sh.RecStats.Duration
		}
	}
	return c, nil
}

// openShard is the single-heap startup sequence for one shard.
func openShard(path string, cfg Config) (*Shard, error) {
	t0 := time.Now()
	heap, dirty, err := ralloc.Open(path, cfg.Ralloc)
	if err != nil {
		return nil, err
	}
	a := heap.AsAllocator()
	sh := &Shard{Path: path, Heap: heap, Alloc: a, Dirty: dirty}

	root := heap.GetRoot(rootKV, nil)
	switch {
	case root == 0:
		hd := heap.NewHandle()
		var store *kvstore.Store
		if cfg.Bound > 0 {
			store, root = kvstore.OpenBounded(a, hd, cfg.Buckets, cfg.Bound)
		} else {
			store, root = kvstore.Open(a, hd, cfg.Buckets)
		}
		heap.SetRoot(rootKV, root)
		sh.Store, sh.Created = store, true
	case dirty:
		heap.GetRoot(rootKV, kvstore.Filter(a, root))
		stats, err := heap.Recover()
		if err != nil {
			return nil, fmt.Errorf("recovery: %w", err)
		}
		sh.RecStats, sh.Recovered = stats, true
		sh.Store = reattach(a, root, cfg.Bound)
	default:
		sh.Store = reattach(a, root, cfg.Bound)
	}
	sh.AttachDur = time.Since(t0)
	return sh, nil
}

func reattach(a alloc.Allocator, root, bound uint64) *kvstore.Store {
	if bound > 0 {
		return kvstore.AttachBounded(a, root, bound)
	}
	return kvstore.Attach(a, root)
}

// Records sums the shard record counts (the cluster's DBSIZE at open).
func (c *Cluster) Records() int {
	total := 0
	for _, sh := range c.Shards {
		total += sh.Store.Len()
	}
	return total
}

// Close closes every shard cleanly (writing each image back with the dirty
// flag cleared), returning the first error but attempting all shards — a
// broken disk under shard 2 must not leave shards 3..N-1 marked dirty for
// no reason.
func (c *Cluster) Close() error {
	var first error
	for i, sh := range c.Shards {
		if sh == nil || sh.Heap == nil {
			continue
		}
		if err := sh.Heap.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}

// abandon drops partially-opened shards after a failed Open without saving.
// The simulated regions live entirely in memory, so dropping the references
// is the whole cleanup: the images on disk keep their pre-open state
// (including the dirty flag), and the next Open re-runs recovery.
func (c *Cluster) abandon() {
	for i := range c.Shards {
		c.Shards[i] = nil
	}
}
