// Package pmem simulates byte-addressable persistent memory (NVM) with
// x86-style cache-line write-back semantics.
//
// A Region models a DAX-mapped persistent segment. It keeps two images:
//
//   - the volatile image ("CPU caches + mapped view"): every Load/Store/CAS
//     operates on it;
//   - the shadow image ("NVM media"): only data explicitly written back with
//     Flush (clwb) — or evicted by the simulated cache — reaches it.
//
// A full-system crash (Crash) discards the volatile image and resurrects the
// region from the shadow, so any store that was not flushed (or luckily
// evicted) is lost, at 64-byte cache-line granularity. Lines are never torn.
//
// This is the substitution for the Optane DIMMs + EXT4-DAX setup used in the
// paper: what the experiments measure is how often each allocator flushes,
// fences and synchronizes, and whether recovery reconstructs exactly the
// reachable blocks — properties of the algorithms, not of the DIMM. See
// DESIGN.md ("Substitutions").
//
// Two modes are provided. ModeFast keeps only the volatile image and counts
// flushes/fences (optionally charging a configurable latency for each), for
// performance experiments. ModeCrashSim additionally maintains the shadow
// image and dirty-line tracking, for crash-injection and recovery testing.
package pmem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// LineBytes is the simulated cache-line size: write-back granularity.
	LineBytes = 64
	// WordBytes is the machine word size; all Load/Store/CAS offsets must
	// be WordBytes-aligned.
	WordBytes = 8
	// LineWords is the number of words per cache line.
	LineWords = LineBytes / WordBytes
)

// Mode selects how much machinery a Region carries.
type Mode int

const (
	// ModeFast tracks statistics only; crashes are not supported.
	ModeFast Mode = iota
	// ModeCrashSim maintains a shadow (persistent) image and per-line
	// dirty flags so that Crash and write-back semantics can be simulated.
	ModeCrashSim
)

func (m Mode) String() string {
	switch m {
	case ModeFast:
		return "fast"
	case ModeCrashSim:
		return "crashsim"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config controls a Region's simulation fidelity and cost model.
type Config struct {
	// Mode selects fast (stats-only) or crash-simulation operation.
	Mode Mode
	// FlushLatency, if non-zero, is busy-waited on every Flush of a dirty
	// line, modeling the cost of clwb to Optane media.
	FlushLatency time.Duration
	// FenceLatency, if non-zero, is busy-waited on every Fence (sfence).
	FenceLatency time.Duration
	// EvictProb is used by Crash: each dirty line survives the crash with
	// this probability, modeling spontaneous cache eviction having written
	// it back before the power failed. 0 = strict (only flushed data
	// survives); 1 = everything survives (as if write-through).
	EvictProb float64
	// Seed seeds the eviction lottery; 0 means a fixed default so crash
	// tests are reproducible.
	Seed int64
	// StoreHook, if non-nil, is invoked after every Store/CAS. Tests use
	// it to inject crashes at precise points inside multi-step operations
	// (typically by panicking with a sentinel that the test recovers).
	StoreHook func()
	// SnapshotHook, if non-nil, is invoked at each phase boundary of an
	// online snapshot (SaveFileOnline). Crash-injection tests use it the
	// way StoreHook is used for stores: panic with a sentinel to simulate
	// the process dying mid-copy, mid-delta, mid-fence, or mid-rename, and
	// then assert that the previous image is still the one that loads.
	SnapshotHook func(phase SnapshotPhase)
}

// Stats counts the persistence-relevant events on a Region. All counters are
// cumulative since the Region was created.
type Stats struct {
	Loads     uint64 // atomic word loads
	Stores    uint64 // atomic word stores
	CASes     uint64 // compare-and-swap attempts
	Flushes   uint64 // line flushes requested
	Fences    uint64 // store fences
	LinesBack uint64 // dirty lines actually written back (crash-sim mode)
}

// Region is a simulated persistent memory segment. The zero value is not
// usable; create Regions with NewRegion.
//
// Word accessors (Load, Store, CAS) are safe for concurrent use. Byte
// accessors (ReadBytes, WriteBytes, Zero) are not atomic with respect to
// concurrent word operations on the same words; callers must not mix them on
// contended locations.
type Region struct {
	words  []uint64 // volatile image
	shadow []uint64 // persistent image (ModeCrashSim only)
	dirty  []uint32 // per-line dirty flags (ModeCrashSim only)
	size   uint64   // bytes
	cfg    Config

	stats struct {
		loads, stores, cases, flushes, fences, linesBack atomic.Uint64
	}

	crashMu sync.Mutex // serializes Crash/Persist against each other
	rng     *rand.Rand

	// snap is the online-snapshot write barrier: non-nil only while a
	// SaveFileOnline pass is running. Mutators mark the lines they touch
	// *after* the word store (see snapshot.go for the ordering argument);
	// the snapshot pass re-copies marked lines until the cut-over fence.
	snap   atomic.Pointer[snapTracker]
	snapMu sync.Mutex // one online snapshot at a time

	// replID/replOff are the replication metadata pair stamped into the
	// image header by Save/SaveFileOnline and restored by LoadRegion. They
	// are volatile bookkeeping, not region data: the replication layer sets
	// them as the write feed advances, and a checkpoint image records the
	// feed position its contents correspond to.
	replID  atomic.Uint64
	replOff atomic.Uint64
}

// SetReplMeta records the replication stream ID and byte offset that the
// region's current contents correspond to. The next checkpoint image stamps
// the pair into its header (for SaveFileOnline, re-stamped under the
// cut-over fence, when the value is final for the captured state).
func (r *Region) SetReplMeta(id, off uint64) {
	r.replID.Store(id)
	r.replOff.Store(off)
}

// ReplMeta returns the replication metadata pair last set by SetReplMeta
// (or restored from the loaded image's header).
func (r *Region) ReplMeta() (id, off uint64) {
	return r.replID.Load(), r.replOff.Load()
}

// NewRegion creates a Region of the given size in bytes (rounded up to a
// whole number of cache lines). The region starts zeroed, and — in crash-sim
// mode — fully persistent (the shadow is also zero).
func NewRegion(size uint64, cfg Config) *Region {
	if size == 0 {
		panic("pmem: zero-sized region")
	}
	lines := (size + LineBytes - 1) / LineBytes
	size = lines * LineBytes
	r := &Region{
		words: make([]uint64, size/WordBytes),
		size:  size,
		cfg:   cfg,
	}
	if cfg.Mode == ModeCrashSim {
		r.shadow = make([]uint64, size/WordBytes)
		r.dirty = make([]uint32, lines)
		seed := cfg.Seed
		if seed == 0 {
			seed = 0x5851F42D4C957F2D
		}
		r.rng = rand.New(rand.NewSource(seed))
	}
	return r
}

// Size returns the region size in bytes.
func (r *Region) Size() uint64 { return r.size }

// Mode returns the region's simulation mode.
func (r *Region) Mode() Mode { return r.cfg.Mode }

// Config returns the configuration the region was created with.
func (r *Region) Config() Config { return r.cfg }

func (r *Region) checkWord(off uint64) uint64 {
	if off%WordBytes != 0 {
		panic(fmt.Sprintf("pmem: misaligned word access at offset %#x", off))
	}
	if off >= r.size {
		panic(fmt.Sprintf("pmem: out-of-range access at offset %#x (size %#x)", off, r.size))
	}
	return off / WordBytes
}

// Load atomically reads the word at byte offset off.
func (r *Region) Load(off uint64) uint64 {
	i := r.checkWord(off)
	r.stats.loads.Add(1)
	return atomic.LoadUint64(&r.words[i])
}

// Store atomically writes v to the word at byte offset off and marks the
// containing cache line dirty.
func (r *Region) Store(off, v uint64) {
	i := r.checkWord(off)
	r.stats.stores.Add(1)
	if r.dirty != nil {
		atomic.StoreUint32(&r.dirty[off/LineBytes], 1)
	}
	atomic.StoreUint64(&r.words[i], v)
	r.snapMark(off)
	if r.cfg.StoreHook != nil {
		r.cfg.StoreHook()
	}
}

// CAS atomically compares-and-swaps the word at byte offset off. The line is
// marked dirty whether or not the swap succeeds (matching real hardware,
// where the line enters the cache in modified state only on success; marking
// unconditionally is conservative for crash simulation).
func (r *Region) CAS(off, old, new uint64) bool {
	i := r.checkWord(off)
	r.stats.cases.Add(1)
	if r.dirty != nil {
		atomic.StoreUint32(&r.dirty[off/LineBytes], 1)
	}
	ok := atomic.CompareAndSwapUint64(&r.words[i], old, new)
	r.snapMark(off)
	if r.cfg.StoreHook != nil {
		r.cfg.StoreHook()
	}
	return ok
}

// Add atomically adds delta to the word at byte offset off and returns the
// new value.
func (r *Region) Add(off, delta uint64) uint64 {
	i := r.checkWord(off)
	r.stats.cases.Add(1)
	if r.dirty != nil {
		atomic.StoreUint32(&r.dirty[off/LineBytes], 1)
	}
	v := atomic.AddUint64(&r.words[i], delta)
	r.snapMark(off)
	if r.cfg.StoreHook != nil {
		r.cfg.StoreHook()
	}
	return v
}

func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

// Flush writes back the cache line containing byte offset off (clwb). In
// fast mode this only counts (and charges FlushLatency); in crash-sim mode
// the line's words are copied to the shadow image.
func (r *Region) Flush(off uint64) {
	if off >= r.size {
		panic(fmt.Sprintf("pmem: flush out of range at %#x", off))
	}
	r.stats.flushes.Add(1)
	if r.shadow != nil {
		r.writeBackLine(off / LineBytes)
	}
	spin(r.cfg.FlushLatency)
}

// FlushRange flushes every cache line overlapping [off, off+n).
func (r *Region) FlushRange(off, n uint64) {
	if n == 0 {
		return
	}
	if off+n > r.size {
		panic(fmt.Sprintf("pmem: flush range out of bounds [%#x,%#x)", off, off+n))
	}
	first := off / LineBytes
	last := (off + n - 1) / LineBytes
	for l := first; l <= last; l++ {
		r.stats.flushes.Add(1)
		if r.shadow != nil {
			r.writeBackLine(l)
		}
		spin(r.cfg.FlushLatency)
	}
}

// writeBackLine copies line l from the volatile image to the shadow and
// clears its dirty flag.
func (r *Region) writeBackLine(l uint64) {
	if atomic.LoadUint32(&r.dirty[l]) == 0 {
		return
	}
	atomic.StoreUint32(&r.dirty[l], 0)
	w := l * LineWords
	for i := uint64(0); i < LineWords; i++ {
		atomic.StoreUint64(&r.shadow[w+i], atomic.LoadUint64(&r.words[w+i]))
	}
	r.stats.linesBack.Add(1)
}

// Fence issues a store fence (sfence). Because simulated flushes complete
// synchronously, Fence only counts (and charges FenceLatency); it is still
// essential that callers place fences correctly, since crash-injection tests
// verify recoverability under the strictest interpretation (nothing persists
// without an explicit Flush).
func (r *Region) Fence() {
	r.stats.fences.Add(1)
	spin(r.cfg.FenceLatency)
}

// Persist flushes every dirty line, modeling the write-back that happens on
// a clean shutdown. In fast mode it is a no-op apart from statistics.
func (r *Region) Persist() {
	r.crashMu.Lock()
	defer r.crashMu.Unlock()
	if r.shadow == nil {
		return
	}
	for l := range r.dirty {
		r.writeBackLine(uint64(l))
	}
}

// ErrFastMode is returned by Crash on a ModeFast region.
var ErrFastMode = errors.New("pmem: crash simulation requires ModeCrashSim")

// Crash simulates a full-system, fail-stop crash. Each dirty line survives
// with probability EvictProb (it happened to be evicted and written back
// before the failure); all other unflushed lines are lost. The volatile
// image is then reloaded from the shadow, as if the segment had been
// re-mapped after reboot. Concurrent accessors must have stopped: a real
// crash has no surviving threads either.
func (r *Region) Crash() error {
	if r.cfg.Mode != ModeCrashSim {
		return ErrFastMode
	}
	r.crashMu.Lock()
	defer r.crashMu.Unlock()
	for l := range r.dirty {
		if atomic.LoadUint32(&r.dirty[uint64(l)]) != 0 &&
			r.cfg.EvictProb > 0 && r.rng.Float64() < r.cfg.EvictProb {
			r.writeBackLine(uint64(l))
		}
	}
	for i := range r.words {
		r.words[i] = r.shadow[i]
		r.dirty[uint64(i)/LineWords] = 0
	}
	return nil
}

// DirtyLines reports how many cache lines are currently dirty (crash-sim
// mode only; 0 otherwise). Useful in tests asserting that a clean shutdown
// flushed everything.
func (r *Region) DirtyLines() int {
	n := 0
	for l := range r.dirty {
		if atomic.LoadUint32(&r.dirty[l]) != 0 {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the region's event counters.
func (r *Region) Stats() Stats {
	return Stats{
		Loads:     r.stats.loads.Load(),
		Stores:    r.stats.stores.Load(),
		CASes:     r.stats.cases.Load(),
		Flushes:   r.stats.flushes.Load(),
		Fences:    r.stats.fences.Load(),
		LinesBack: r.stats.linesBack.Load(),
	}
}

// ReadBytes copies n = len(b) bytes starting at byte offset off into b.
// It is not atomic with respect to concurrent word writes.
func (r *Region) ReadBytes(off uint64, b []byte) {
	if off+uint64(len(b)) > r.size {
		panic(fmt.Sprintf("pmem: ReadBytes out of bounds [%#x,%#x)", off, off+uint64(len(b))))
	}
	for i := range b {
		o := off + uint64(i)
		w := r.words[o/WordBytes]
		b[i] = byte(w >> ((o % WordBytes) * 8))
	}
}

// WriteBytes copies b into the region starting at byte offset off, marking
// the touched lines dirty. It is not atomic with respect to concurrent word
// writes; callers use it only on uncontended payload memory.
func (r *Region) WriteBytes(off uint64, b []byte) {
	if off+uint64(len(b)) > r.size {
		panic(fmt.Sprintf("pmem: WriteBytes out of bounds [%#x,%#x)", off, off+uint64(len(b))))
	}
	for i := 0; i < len(b); {
		o := off + uint64(i)
		wi := o / WordBytes
		shift := (o % WordBytes) * 8
		// Fast path: aligned full word.
		if shift == 0 && len(b)-i >= WordBytes {
			v := uint64(b[i]) | uint64(b[i+1])<<8 | uint64(b[i+2])<<16 | uint64(b[i+3])<<24 |
				uint64(b[i+4])<<32 | uint64(b[i+5])<<40 | uint64(b[i+6])<<48 | uint64(b[i+7])<<56
			if r.dirty != nil {
				atomic.StoreUint32(&r.dirty[o/LineBytes], 1)
			}
			atomic.StoreUint64(&r.words[wi], v)
			i += WordBytes
			continue
		}
		w := atomic.LoadUint64(&r.words[wi])
		w = (w &^ (0xFF << shift)) | uint64(b[i])<<shift
		if r.dirty != nil {
			atomic.StoreUint32(&r.dirty[o/LineBytes], 1)
		}
		atomic.StoreUint64(&r.words[wi], w)
		i++
	}
	r.snapMarkRange(off, uint64(len(b)))
}

// Zero clears n bytes starting at off (both must be word-aligned), marking
// the touched lines dirty.
func (r *Region) Zero(off, n uint64) {
	if off%WordBytes != 0 || n%WordBytes != 0 {
		panic("pmem: Zero requires word alignment")
	}
	if off+n > r.size {
		panic(fmt.Sprintf("pmem: Zero out of bounds [%#x,%#x)", off, off+n))
	}
	for o := off; o < off+n; o += WordBytes {
		if r.dirty != nil {
			atomic.StoreUint32(&r.dirty[o/LineBytes], 1)
		}
		atomic.StoreUint64(&r.words[o/WordBytes], 0)
	}
	r.snapMarkRange(off, n)
}
