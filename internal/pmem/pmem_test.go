package pmem

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestRoundsSizeToLine(t *testing.T) {
	r := NewRegion(100, Config{})
	if r.Size() != 128 {
		t.Fatalf("size = %d, want 128", r.Size())
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-sized region")
		}
	}()
	NewRegion(0, Config{})
}

func TestLoadStoreRoundTrip(t *testing.T) {
	r := NewRegion(1024, Config{})
	r.Store(8, 0xDEADBEEF)
	if got := r.Load(8); got != 0xDEADBEEF {
		t.Fatalf("Load = %#x, want 0xDEADBEEF", got)
	}
	if got := r.Load(16); got != 0 {
		t.Fatalf("untouched word = %#x, want 0", got)
	}
}

func TestMisalignedAccessPanics(t *testing.T) {
	r := NewRegion(1024, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for misaligned access")
		}
	}()
	r.Load(3)
}

func TestOutOfRangePanics(t *testing.T) {
	r := NewRegion(1024, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range access")
		}
	}()
	r.Store(1024, 1)
}

func TestCAS(t *testing.T) {
	r := NewRegion(1024, Config{})
	r.Store(0, 5)
	if r.CAS(0, 4, 9) {
		t.Fatal("CAS with wrong old value succeeded")
	}
	if !r.CAS(0, 5, 9) {
		t.Fatal("CAS with right old value failed")
	}
	if got := r.Load(0); got != 9 {
		t.Fatalf("after CAS value = %d, want 9", got)
	}
}

func TestAdd(t *testing.T) {
	r := NewRegion(1024, Config{})
	r.Store(0, 10)
	if got := r.Add(0, 5); got != 15 {
		t.Fatalf("Add returned %d, want 15", got)
	}
}

func TestCrashLosesUnflushedStores(t *testing.T) {
	r := NewRegion(4096, Config{Mode: ModeCrashSim})
	r.Store(0, 1)   // line 0: will be flushed
	r.Store(64, 2)  // line 1: will not
	r.Store(128, 3) // line 2: flushed via FlushRange
	r.Store(192, 4) // line 3: flushed via FlushRange
	r.Flush(0)
	r.FlushRange(128, 128)
	r.Fence()
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := r.Load(0); got != 1 {
		t.Fatalf("flushed word lost: got %d", got)
	}
	if got := r.Load(64); got != 0 {
		t.Fatalf("unflushed word survived: got %d", got)
	}
	if got := r.Load(128); got != 3 {
		t.Fatalf("range-flushed word lost: got %d", got)
	}
	if got := r.Load(192); got != 4 {
		t.Fatalf("range-flushed word lost: got %d", got)
	}
}

func TestCrashLineGranularity(t *testing.T) {
	// Two words on the same line: flushing one persists both (lines are
	// never torn).
	r := NewRegion(4096, Config{Mode: ModeCrashSim})
	r.Store(0, 1)
	r.Store(8, 2)
	r.Flush(0)
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	if r.Load(0) != 1 || r.Load(8) != 2 {
		t.Fatal("words sharing a flushed line must both persist")
	}
}

func TestCrashOnFastModeErrors(t *testing.T) {
	r := NewRegion(1024, Config{})
	if err := r.Crash(); err != ErrFastMode {
		t.Fatalf("Crash on fast region: err = %v, want ErrFastMode", err)
	}
}

func TestPersistFlushesEverything(t *testing.T) {
	r := NewRegion(1<<16, Config{Mode: ModeCrashSim})
	for off := uint64(0); off < 1<<16; off += 8 {
		r.Store(off, off)
	}
	r.Persist()
	if n := r.DirtyLines(); n != 0 {
		t.Fatalf("dirty lines after Persist = %d, want 0", n)
	}
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 1<<16; off += 8 {
		if got := r.Load(off); got != off {
			t.Fatalf("word %#x = %#x after Persist+Crash", off, got)
		}
	}
}

func TestEvictProbOneSurvivesAll(t *testing.T) {
	r := NewRegion(4096, Config{Mode: ModeCrashSim, EvictProb: 1})
	r.Store(64, 42) // never flushed
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := r.Load(64); got != 42 {
		t.Fatalf("EvictProb=1 should write back everything; got %d", got)
	}
}

func TestEvictProbHalfIsSeeded(t *testing.T) {
	run := func() []uint64 {
		r := NewRegion(1<<14, Config{Mode: ModeCrashSim, EvictProb: 0.5, Seed: 7})
		for off := uint64(0); off < 1<<14; off += 64 {
			r.Store(off, off+1)
		}
		if err := r.Crash(); err != nil {
			t.Fatal(err)
		}
		var got []uint64
		for off := uint64(0); off < 1<<14; off += 64 {
			got = append(got, r.Load(off))
		}
		return got
	}
	a, b := run(), run()
	survived := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give the same eviction outcome")
		}
		if a[i] != 0 {
			survived++
		}
	}
	if survived == 0 || survived == len(a) {
		t.Fatalf("EvictProb=0.5 survived %d/%d lines; expected a strict subset", survived, len(a))
	}
}

func TestStatsCount(t *testing.T) {
	r := NewRegion(1024, Config{Mode: ModeCrashSim})
	r.Store(0, 1)
	r.Load(0)
	r.CAS(0, 1, 2)
	r.Flush(0)
	r.Fence()
	s := r.Stats()
	if s.Stores != 1 || s.Loads != 1 || s.CASes != 1 || s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.LinesBack != 1 {
		t.Fatalf("LinesBack = %d, want 1", s.LinesBack)
	}
}

func TestFlushCleanLineNoWriteBack(t *testing.T) {
	r := NewRegion(1024, Config{Mode: ModeCrashSim})
	r.Flush(0) // nothing dirty
	if s := r.Stats(); s.LinesBack != 0 {
		t.Fatalf("LinesBack = %d for clean flush, want 0", s.LinesBack)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := NewRegion(4096, Config{})
	msg := []byte("persistent memory allocation")
	r.WriteBytes(13, msg) // deliberately unaligned
	got := make([]byte, len(msg))
	r.ReadBytes(13, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("ReadBytes = %q, want %q", got, msg)
	}
}

func TestBytesQuick(t *testing.T) {
	r := NewRegion(1<<16, Config{})
	f := func(off uint16, data []byte) bool {
		if len(data) > 1024 {
			data = data[:1024]
		}
		o := uint64(off)
		if o+uint64(len(data)) > r.Size() {
			o = 0
		}
		r.WriteBytes(o, data)
		got := make([]byte, len(data))
		r.ReadBytes(o, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBytesMarksDirty(t *testing.T) {
	r := NewRegion(4096, Config{Mode: ModeCrashSim})
	r.WriteBytes(100, []byte{1, 2, 3, 4})
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	r.ReadBytes(100, got)
	if !bytes.Equal(got, make([]byte, 4)) {
		t.Fatal("unflushed WriteBytes survived crash")
	}
	r.WriteBytes(100, []byte{1, 2, 3, 4})
	r.FlushRange(100, 4)
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	r.ReadBytes(100, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatal("flushed WriteBytes lost in crash")
	}
}

func TestZero(t *testing.T) {
	r := NewRegion(4096, Config{})
	for off := uint64(0); off < 256; off += 8 {
		r.Store(off, ^uint64(0))
	}
	r.Zero(64, 128)
	for off := uint64(0); off < 256; off += 8 {
		want := ^uint64(0)
		if off >= 64 && off < 192 {
			want = 0
		}
		if got := r.Load(off); got != want {
			t.Fatalf("word %d = %#x, want %#x", off, got, want)
		}
	}
}

func TestConcurrentCASCounter(t *testing.T) {
	r := NewRegion(1024, Config{Mode: ModeCrashSim})
	const goroutines, incs = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				for {
					v := r.Load(0)
					if r.CAS(0, v, v+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Load(0); got != goroutines*incs {
		t.Fatalf("counter = %d, want %d", got, goroutines*incs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := NewRegion(1<<14, Config{Mode: ModeCrashSim})
	rng := rand.New(rand.NewSource(1))
	for off := uint64(0); off < r.Size(); off += 8 {
		r.Store(off, rng.Uint64())
	}
	r.Persist()
	path := filepath.Join(t.TempDir(), "heap.img")
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2, err := LoadFile(path, Config{Mode: ModeCrashSim})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Size() != r.Size() {
		t.Fatalf("size = %d, want %d", r2.Size(), r.Size())
	}
	for off := uint64(0); off < r.Size(); off += 8 {
		if r2.Load(off) != r.Load(off) {
			t.Fatalf("word %#x differs after save/load", off)
		}
	}
	// The loaded image must already be persistent: crash right away.
	if err := r2.Crash(); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < r.Size(); off += 8 {
		if r2.Load(off) != r.Load(off) {
			t.Fatalf("word %#x lost after load+crash", off)
		}
	}
}

func TestSaveExcludesUnflushed(t *testing.T) {
	// Saving persists the shadow image: unflushed stores must not leak
	// into the file.
	r := NewRegion(4096, Config{Mode: ModeCrashSim})
	r.Store(0, 7)
	r.Flush(0)
	r.Store(64, 9) // not flushed
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := LoadRegion(&buf, Config{Mode: ModeCrashSim})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Load(0) != 7 {
		t.Fatal("flushed word missing from image")
	}
	if r2.Load(64) != 0 {
		t.Fatal("unflushed word leaked into image")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadRegion(bytes.NewReader([]byte("not an image")), Config{}); err == nil {
		t.Fatal("expected error for garbage image")
	}
}

func TestStoreHookFires(t *testing.T) {
	n := 0
	r := NewRegion(1024, Config{StoreHook: func() { n++ }})
	r.Store(0, 1)
	r.CAS(0, 1, 2)
	r.Add(0, 1)
	if n != 3 {
		t.Fatalf("hook fired %d times, want 3", n)
	}
}
