package pmem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadRegionRejectsModeMismatch: an image carries the Mode it was saved
// under; attaching it under the other mode would silently change its
// durability semantics (a crash-sim image would lose its shadow, a fast
// image would gain one it never earned). Both directions are ErrBadImage.
func TestLoadRegionRejectsModeMismatch(t *testing.T) {
	for _, tc := range []struct{ save, load Mode }{
		{ModeCrashSim, ModeFast},
		{ModeFast, ModeCrashSim},
	} {
		r := NewRegion(4096, Config{Mode: tc.save})
		r.Store(0, 42)
		r.Persist()
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			t.Fatal(err)
		}
		_, err := LoadRegion(&buf, Config{Mode: tc.load})
		if !errors.Is(err, ErrBadImage) {
			t.Fatalf("load %v image as %v: err = %v, want ErrBadImage", tc.save, tc.load, err)
		}
	}
}

// TestLoadRegionRejectsGarbageModeWord: a corrupt mode word (neither fast
// nor crashsim) is a bad image, not a zero-value fallback.
func TestLoadRegionRejectsGarbageModeWord(t *testing.T) {
	var buf bytes.Buffer
	if err := writeImageHeader(&buf, LineBytes, Mode(7), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	buf.Write(make([]byte, LineBytes))
	if _, err := LoadRegion(&buf, Config{}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("err = %v, want ErrBadImage", err)
	}
}

// TestLoadRegionAcceptsV1Image: the pre-snapshot format (RPMEM001, no flags
// word) must keep loading — existing heap files predate the version bump.
func TestLoadRegionAcceptsV1Image(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(fileMagicV1[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], LineBytes)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(ModeCrashSim))
	buf.Write(hdr[:])
	line := make([]byte, LineBytes)
	binary.LittleEndian.PutUint64(line, 0xFEED)
	buf.Write(line)
	r, err := LoadRegion(&buf, Config{Mode: ModeCrashSim})
	if err != nil {
		t.Fatal(err)
	}
	if r.Load(0) != 0xFEED {
		t.Fatalf("v1 word = %#x, want 0xFEED", r.Load(0))
	}
}

// TestLoadFileTruncatedIsBadImage: every truncation of a checkpoint file —
// the torn output a crash mid-SaveFile leaves in the temp file — must fail
// with ErrBadImage, never half-load.
func TestLoadFileTruncatedIsBadImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.img")
	r := NewRegion(4096, Config{Mode: ModeCrashSim})
	for off := uint64(0); off < r.Size(); off += 8 {
		r.Store(off, off+3)
	}
	r.Persist()
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, 8, 15, imageHeaderLen - 1, imageHeaderLen,
		imageHeaderLen + 7, len(full) / 2, len(full) - 1} {
		p := filepath.Join(dir, "trunc.img")
		if err := os.WriteFile(p, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(p, Config{Mode: ModeCrashSim}); !errors.Is(err, ErrBadImage) {
			t.Fatalf("truncation at %d bytes: err = %v, want ErrBadImage", n, err)
		}
	}
	// The untruncated file still round-trips.
	r2, err := LoadFile(path, Config{Mode: ModeCrashSim})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Load(8) != 11 {
		t.Fatalf("round trip word = %d, want 11", r2.Load(8))
	}
}

// TestSaveFileErrorPaths: a failed publish must not leave the temp file
// behind, and must surface the error (the caller's dirty-flag protocol
// depends on seeing it).
func TestSaveFileErrorPaths(t *testing.T) {
	r := NewRegion(4096, Config{})
	// Create failure: parent directory missing.
	if err := r.SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.img")); err == nil {
		t.Fatal("SaveFile into missing directory succeeded")
	}
	// Rename failure: the target path is an (empty) directory.
	dir := t.TempDir()
	target := filepath.Join(dir, "occupied")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveFile(target); err == nil {
		t.Fatal("SaveFile over a directory succeeded")
	}
	if _, err := os.Stat(target + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after failed rename: %v", err)
	}
	// Online path, same discipline.
	var q quiesceFence
	if _, err := r.SaveFileOnline(target, q.fence); err == nil {
		t.Fatal("SaveFileOnline over a directory succeeded")
	}
	if _, err := os.Stat(target + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after failed online rename: %v", err)
	}
}

// TestReplMetaRoundTrip: the replication metadata pair survives both save
// paths and the load, and reads back via ReadImageMeta without attaching;
// v2/v1 images report (0, 0).
func TestReplMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "repl.img")
	r := NewRegion(4096, Config{Mode: ModeCrashSim})
	r.Store(0, 42)
	r.Flush(0)
	r.Fence()
	r.SetReplMeta(0xabcdef01, 77123)
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	id, off, err := ReadImageMeta(path)
	if err != nil || id != 0xabcdef01 || off != 77123 {
		t.Fatalf("ReadImageMeta = (%#x, %d, %v), want (0xabcdef01, 77123, nil)", id, off, err)
	}
	r2, err := LoadFile(path, Config{Mode: ModeCrashSim})
	if err != nil {
		t.Fatal(err)
	}
	if id, off := r2.ReplMeta(); id != 0xabcdef01 || off != 77123 {
		t.Fatalf("loaded ReplMeta = (%#x, %d)", id, off)
	}

	// Online path: the meta visible at the cut-over fence wins, even if the
	// header was first streamed with a stale value.
	r.SetReplMeta(0xabcdef01, 1)
	_, err = r.SaveFileOnline(path, func(cut func() error) error {
		r.SetReplMeta(0xabcdef01, 99000)
		return cut()
	})
	if err != nil {
		t.Fatal(err)
	}
	if id, off, _ := ReadImageMeta(path); id != 0xabcdef01 || off != 99000 {
		t.Fatalf("online ReadImageMeta = (%#x, %d), want fence-time value 99000", id, off)
	}

	// Pre-v3 images carry no replication words.
	var buf bytes.Buffer
	buf.Write(fileMagicV1[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], LineBytes)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(ModeFast))
	buf.Write(hdr[:])
	buf.Write(make([]byte, LineBytes))
	if id, off, err := ParseImageMeta(buf.Bytes()); err != nil || id != 0 || off != 0 {
		t.Fatalf("v1 ParseImageMeta = (%d, %d, %v), want zeros", id, off, err)
	}
}
