package pmem

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// quiesceFence is the test stand-in for the server's execMu: mutators hold
// the read side per operation, the snapshot's cut runs under the write side.
type quiesceFence struct{ mu sync.RWMutex }

func (q *quiesceFence) fence(cut func() error) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return cut()
}

// TestOnlineSnapshotExactAtCutover runs writers while SaveFileOnline
// streams, and asserts the saved file equals the volatile image exactly as
// it stood inside the cut-over fence — the online snapshot's whole claim.
func TestOnlineSnapshotExactAtCutover(t *testing.T) {
	const size = 1 << 20 // 16384 lines
	r := NewRegion(size, Config{Mode: ModeCrashSim})
	var q quiesceFence
	var ops atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q.mu.RLock()
				off := (rng.Uint64() % (size / 8)) * 8
				switch rng.Intn(4) {
				case 0:
					r.Store(off, rng.Uint64())
				case 1:
					r.Add(off, 1)
				case 2:
					r.CAS(off, r.Load(off), rng.Uint64())
				default:
					var b [24]byte
					rng.Read(b[:])
					if off+24 <= size {
						r.WriteBytes(off, b[:])
					}
				}
				q.mu.RUnlock()
				ops.Add(1)
			}
		}(g)
	}
	// Save only once the writers are demonstrably running, so the copy
	// phases genuinely race stores (otherwise Recopied can be 0 by luck).
	for ops.Load() < 10_000 {
	}

	path := filepath.Join(t.TempDir(), "online.img")
	var want []uint64
	st, err := r.SaveFileOnline(path, func(cut func() error) error {
		q.mu.Lock()
		defer q.mu.Unlock()
		if err := cut(); err != nil {
			return err
		}
		// Inside the fence, after the final delta: the file must equal
		// this exact volatile state.
		want = make([]uint64, len(r.words))
		for i := range r.words {
			want[i] = atomic.LoadUint64(&r.words[i])
		}
		return nil
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.Lines != size/LineBytes {
		t.Fatalf("Lines = %d, want %d", st.Lines, size/LineBytes)
	}
	if st.Recopied == 0 {
		t.Fatal("no lines re-copied despite concurrent writers — barrier not firing")
	}
	got, err := LoadFile(path, Config{Mode: ModeCrashSim})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.words[i] != want[i] {
			t.Fatalf("word %d: image %#x, want %#x (cut-over state)", i, got.words[i], want[i])
		}
	}
	// The barrier must be fully disarmed: later stores cost no marking.
	if r.snap.Load() != nil {
		t.Fatal("write barrier still armed after snapshot")
	}
}

// TestWriteBarrierOrdering pins the mark-after-store contract directly: a
// store racing the delta scan is either captured by the re-read or re-marked
// for the next round, never lost.
func TestWriteBarrierMarksAllEntryPoints(t *testing.T) {
	r := NewRegion(1024, Config{})
	tr := &snapTracker{dirty: make([]uint32, 1024/LineBytes)}
	r.snap.Store(tr)
	defer r.snap.Store(nil)

	r.Store(0, 1)
	r.CAS(64, 0, 2)
	r.Add(128, 3)
	r.WriteBytes(192, []byte("abcdefgh"))
	r.Zero(256, 64)
	for i, l := range []uint64{0, 1, 2, 3, 4} {
		if atomic.LoadUint32(&tr.dirty[l]) == 0 {
			t.Fatalf("entry point %d did not mark line %d", i, l)
		}
	}
	if atomic.LoadUint32(&tr.dirty[5]) != 0 {
		t.Fatal("untouched line marked")
	}
}

// crashSentinel simulates the process dying inside a snapshot phase.
type crashSentinel struct{ phase SnapshotPhase }

// TestOnlineSnapshotPhaseCrashSweep kills (panics out of) an online snapshot
// at every phase — mid-copy, mid-delta, mid-fence, mid-rename — and asserts
// the recovery contract: the image at path is always a consistent complete
// snapshot, old or new, never torn; and a truncated temp file can never be
// mistaken for an image.
func TestOnlineSnapshotPhaseCrashSweep(t *testing.T) {
	for _, phase := range []SnapshotPhase{SnapCopy, SnapDelta, SnapFence, SnapRename} {
		t.Run(phase.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "kv.img")

			hook := func(p SnapshotPhase) {
				if p == phase {
					panic(crashSentinel{p})
				}
			}
			r := NewRegion(1<<18, Config{Mode: ModeCrashSim, SnapshotHook: hook})
			// State A: the previous checkpoint, written quiesced.
			for off := uint64(0); off < r.Size(); off += 8 {
				r.Store(off, off|1)
			}
			r.Persist()
			r.cfg.SnapshotHook = nil
			if err := r.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			r.cfg.SnapshotHook = hook

			// Move on to state B, then die mid-checkpoint at the target phase.
			for off := uint64(0); off < r.Size(); off += 8 {
				r.Store(off, off|0x8000000000000001)
			}
			var q quiesceFence
			func() {
				defer func() {
					v := recover()
					if v == nil {
						t.Fatalf("snapshot survived injected %v crash", phase)
					}
					if cs, ok := v.(crashSentinel); !ok || cs.phase != phase {
						panic(v)
					}
				}()
				r.SaveFileOnline(path, q.fence)
			}()

			// The published image must still be exactly state A.
			old, err := LoadFile(path, Config{Mode: ModeCrashSim})
			if err != nil {
				t.Fatalf("previous image unloadable after %v crash: %v", phase, err)
			}
			for off := uint64(0); off < old.Size(); off += 8 {
				if old.Load(off) != off|1 {
					t.Fatalf("word %#x torn after %v crash: %#x", off, phase, old.Load(off))
				}
			}
			// A partial temp file must be rejected, not half-loaded.
			if fi, err := os.Stat(path + ".tmp"); err == nil {
				if fi.Size() < int64(imageHeaderLen)+int64(r.Size()) {
					if _, err := LoadFile(path+".tmp", Config{Mode: ModeCrashSim}); !errors.Is(err, ErrBadImage) {
						t.Fatalf("partial temp image loaded: %v", err)
					}
				}
			}

			// The region survives its checkpointer dying: barrier disarmed,
			// and the next (uninjected) snapshot publishes state B.
			if r.snap.Load() != nil {
				t.Fatal("write barrier left armed by crashed snapshot")
			}
			r.cfg.SnapshotHook = nil
			if _, err := r.SaveFileOnline(path, q.fence); err != nil {
				t.Fatal(err)
			}
			neu, err := LoadFile(path, Config{Mode: ModeCrashSim})
			if err != nil {
				t.Fatal(err)
			}
			for off := uint64(0); off < neu.Size(); off += 8 {
				if neu.Load(off) != off|0x8000000000000001 {
					t.Fatalf("word %#x wrong after retry: %#x", off, neu.Load(off))
				}
			}
		})
	}
}

// TestOnlineSnapshotSerializes: two concurrent online saves must not
// interleave their barriers; both images must be complete and loadable.
func TestOnlineSnapshotSerializes(t *testing.T) {
	r := NewRegion(1<<16, Config{})
	dir := t.TempDir()
	var q quiesceFence
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := filepath.Join(dir, "snap"+string(rune('a'+i))+".img")
			if _, err := r.SaveFileOnline(p, q.fence); err != nil {
				t.Errorf("save %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		p := filepath.Join(dir, "snap"+string(rune('a'+i))+".img")
		if _, err := LoadFile(p, Config{}); err != nil {
			t.Fatalf("image %d: %v", i, err)
		}
	}
}
