package pmem

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// File persistence models the DAX file that names a persistent segment in
// the paper's system model (§2.1): a heap can be written to a file on clean
// shutdown and re-mapped — possibly by a different process, at a different
// address — on the next start. Only the *persistent* image is saved: in
// crash-sim mode that is the shadow, so saving right after a simulated crash
// round-trips exactly the survivable state.
//
// Image format (version 3, magic RPMEM003): an 8-byte magic, then five
// little-endian 64-bit header words — region size in bytes, the Mode the
// region ran in, a flags word (bit 0: written by an online snapshot), and
// the replication metadata pair (stream ID and byte offset, see SetReplMeta)
// — followed by the raw words of the image. Version 2 (RPMEM002) lacked the
// replication words and version 1 (RPMEM001) additionally lacked flags;
// LoadRegion still accepts both, with zero replication metadata. The
// header's mode word is validated against the loading Config: silently
// attaching a fast-mode image as crash-sim (or the reverse) would change
// the image's durability semantics underneath its data, so a mismatch is
// ErrBadImage.

var (
	fileMagic   = [8]byte{'R', 'P', 'M', 'E', 'M', '0', '0', '3'}
	fileMagicV2 = [8]byte{'R', 'P', 'M', 'E', 'M', '0', '0', '2'}
	fileMagicV1 = [8]byte{'R', 'P', 'M', 'E', 'M', '0', '0', '1'}
)

const (
	// imageHeaderLen is the byte offset of the first data word in a
	// version-3 image: magic + size + mode + flags + replID + replOffset.
	imageHeaderLen = 8 + 5*8
	// imageFlagOnline marks an image written by SaveFileOnline rather than
	// a quiesced Save. Informational: both are consistent cut-over images.
	imageFlagOnline = uint64(1)
	// replMetaHeaderOff is the byte offset of the replication metadata pair
	// inside the header (SaveFileOnline re-stamps it under the cut-over
	// fence, after the metadata has reached its final value).
	replMetaHeaderOff = 8 + 3*8
)

// writeImageHeader writes the version-3 image header.
func writeImageHeader(w io.Writer, size uint64, mode Mode, flags, replID, replOff uint64) error {
	var hdr [imageHeaderLen]byte
	copy(hdr[:8], fileMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], size)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(mode))
	binary.LittleEndian.PutUint64(hdr[24:], flags)
	binary.LittleEndian.PutUint64(hdr[32:], replID)
	binary.LittleEndian.PutUint64(hdr[40:], replOff)
	_, err := w.Write(hdr[:])
	return err
}

// Save writes the region's persistent image to w. Words are read atomically,
// so Save may run while the region is still mapped (a live checkpoint);
// callers that need a *consistent* image must quiesce writers first — or use
// SaveFileOnline, which trades the quiesce for a write barrier and a short
// cut-over fence.
func (r *Region) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	id, off := r.ReplMeta()
	if err := writeImageHeader(bw, r.size, r.cfg.Mode, 0, id, off); err != nil {
		return err
	}
	img := r.words
	if r.shadow != nil {
		img = r.shadow
	}
	var buf [WordBytes]byte
	for i := range img {
		binary.LittleEndian.PutUint64(buf[:], atomic.LoadUint64(&img[i]))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrBadImage is returned when a file is not a valid region image — wrong
// magic, torn/truncated content, or a mode that contradicts the loading
// configuration.
var ErrBadImage = errors.New("pmem: bad region image")

// LoadRegion reads a persistent image from rd and returns a Region built
// from it with the given configuration. The image populates both the
// volatile and (in crash-sim mode) shadow images, modeling a fresh DAX map
// of previously persisted state. Every way an image can be short or
// inconsistent — including a partially-written checkpoint a crash left
// behind — reports ErrBadImage, so callers can distinguish "no usable
// image" from I/O failure.
func LoadRegion(rd io.Reader, cfg Config) (*Region, error) {
	br := bufio.NewReaderSize(rd, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated magic: %v", ErrBadImage, err)
	}
	hdrWords := 5
	switch magic {
	case fileMagic:
	case fileMagicV2:
		hdrWords = 3 // v2: size + mode + flags, no replication metadata
	case fileMagicV1:
		hdrWords = 2 // v1: size + mode, no flags
	default:
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadImage, magic[:])
	}
	hdr := make([]byte, hdrWords*8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadImage, err)
	}
	size := binary.LittleEndian.Uint64(hdr[0:])
	if size == 0 || size%LineBytes != 0 {
		return nil, fmt.Errorf("%w: bad size %d", ErrBadImage, size)
	}
	mode := Mode(binary.LittleEndian.Uint64(hdr[8:]))
	if mode != ModeFast && mode != ModeCrashSim {
		return nil, fmt.Errorf("%w: bad mode word %d", ErrBadImage, int(mode))
	}
	if mode != cfg.Mode {
		return nil, fmt.Errorf("%w: image was saved in %v mode, loading config wants %v",
			ErrBadImage, mode, cfg.Mode)
	}
	r := NewRegion(size, cfg)
	if hdrWords >= 5 {
		r.SetReplMeta(binary.LittleEndian.Uint64(hdr[24:]), binary.LittleEndian.Uint64(hdr[32:]))
	}
	var buf [WordBytes]byte
	for i := range r.words {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated image: %v", ErrBadImage, err)
		}
		v := binary.LittleEndian.Uint64(buf[:])
		r.words[i] = v
		if r.shadow != nil {
			r.shadow[i] = v
		}
	}
	return r, nil
}

// SaveFile writes the region's persistent image to path atomically (write to
// a temp file, fsync, rename, fsync the parent directory), like a careful
// DAX-file checkpoint. The directory sync matters: rename alone orders the
// new name only in the page cache, and a power loss after SaveFile returned
// could otherwise still resurrect the old image — losing a checkpoint the
// caller already treated as durable.
func (r *Region) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(path)
}

// syncDir fsyncs path's parent directory, making a just-renamed file's
// directory entry durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadFile reads a region image from path.
func LoadFile(path string, cfg Config) (*Region, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadRegion(f, cfg)
}

// ParseImageMeta extracts the replication metadata pair from an image
// header prefix (the first imageHeaderLen bytes of an image stream) without
// loading the region. Pre-v3 images report (0, 0) — they carry no
// replication words. The replication layer uses this to learn a streamed
// bootstrap image's offset before the image is ever attached.
func ParseImageMeta(hdr []byte) (replID, replOff uint64, err error) {
	if len(hdr) < 8 {
		return 0, 0, fmt.Errorf("%w: truncated magic", ErrBadImage)
	}
	var magic [8]byte
	copy(magic[:], hdr)
	switch magic {
	case fileMagic:
		if len(hdr) < imageHeaderLen {
			return 0, 0, fmt.Errorf("%w: truncated header", ErrBadImage)
		}
		return binary.LittleEndian.Uint64(hdr[replMetaHeaderOff:]),
			binary.LittleEndian.Uint64(hdr[replMetaHeaderOff+8:]), nil
	case fileMagicV2, fileMagicV1:
		return 0, 0, nil
	default:
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrBadImage, magic[:])
	}
}

// ImageMetaLen is how many leading image bytes ParseImageMeta needs.
const ImageMetaLen = imageHeaderLen

// ReadImageMeta reads the replication metadata pair from the image at path.
func ReadImageMeta(path string) (replID, replOff uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	hdr := make([]byte, imageHeaderLen)
	n, err := io.ReadFull(f, hdr)
	if err != nil && err != io.ErrUnexpectedEOF {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	return ParseImageMeta(hdr[:n])
}
