package pmem

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// File persistence models the DAX file that names a persistent segment in
// the paper's system model (§2.1): a heap can be written to a file on clean
// shutdown and re-mapped — possibly by a different process, at a different
// address — on the next start. Only the *persistent* image is saved: in
// crash-sim mode that is the shadow, so saving right after a simulated crash
// round-trips exactly the survivable state.

var fileMagic = [8]byte{'R', 'P', 'M', 'E', 'M', '0', '0', '1'}

// Save writes the region's persistent image to w. Words are read atomically,
// so Save may run while the region is still mapped (a live checkpoint);
// callers that need a *consistent* image must quiesce writers first — the
// server's SAVE path does exactly that before checkpointing.
func (r *Region) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], r.size)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(r.cfg.Mode))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	img := r.words
	if r.shadow != nil {
		img = r.shadow
	}
	var buf [WordBytes]byte
	for i := range img {
		binary.LittleEndian.PutUint64(buf[:], atomic.LoadUint64(&img[i]))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrBadImage is returned when a file is not a valid region image.
var ErrBadImage = errors.New("pmem: bad region image")

// LoadRegion reads a persistent image from rd and returns a Region built
// from it with the given configuration. The image populates both the
// volatile and (in crash-sim mode) shadow images, modeling a fresh DAX map
// of previously persisted state.
func LoadRegion(rd io.Reader, cfg Config) (*Region, error) {
	br := bufio.NewReaderSize(rd, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadImage, magic[:])
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.LittleEndian.Uint64(hdr[0:])
	if size == 0 || size%LineBytes != 0 {
		return nil, fmt.Errorf("%w: bad size %d", ErrBadImage, size)
	}
	r := NewRegion(size, cfg)
	var buf [WordBytes]byte
	for i := range r.words {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated image: %v", ErrBadImage, err)
		}
		v := binary.LittleEndian.Uint64(buf[:])
		r.words[i] = v
		if r.shadow != nil {
			r.shadow[i] = v
		}
	}
	return r, nil
}

// SaveFile writes the region's persistent image to path atomically (write to
// a temp file, then rename), like a careful DAX-file checkpoint.
func (r *Region) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a region image from path.
func LoadFile(path string, cfg Config) (*Region, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadRegion(f, cfg)
}
