package pmem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
)

// Online snapshots: checkpoint the region to a file while mutators keep
// running, in the style of a concurrent mark phase. The quiesced path
// (Persist + SaveFile) stops every writer for the full image write; here the
// writers only stop for the final delta.
//
// Mechanism. SaveFileOnline arms a write barrier — a per-cache-line dirty
// bitmap separate from the crash-sim write-back flags — and then
//
//  1. copy: streams every line of the volatile image to the temp file,
//     sequentially, while commands execute;
//  2. delta: re-copies the lines the barrier reported dirty since they were
//     last copied, in bounded rounds, still concurrent;
//  3. fence: inside the caller-supplied fence (the server takes its execMu
//     write side: in-flight command batches drain, new ones wait), re-copies
//     the final dirty set and disarms the barrier;
//  4. publish: fsync, rename over the previous image, fsync the directory.
//
// Ordering argument. A mutator marks a line *after* storing to it; the
// copier clears a line's mark *before* reading it. For a store S with mark M
// (S before M) and a copy with clear C before read R (C before R), losing S
// would need R before S (stale copy) and M before C (mark erased) — i.e.
// M < C < R < S, contradicting S < M. So every store is either in the copy
// or re-marked for the next round; the fence round runs with mutators
// drained, after which the file equals the volatile image at the cut-over
// point exactly.
//
// Consistency. At the fence every command batch has completed, so the
// captured state is the same fully-applied image the quiesced path's
// Persist-then-SaveFile would have written (a completed command has flushed
// and fenced everything it acknowledged; transient scribble that a real
// crash would lose rides along in both paths). The image is written with the
// dirty flag as-is — still set during serving — so a later kill -9 recovers
// from this checkpoint through the normal dirty → Recover path.

// snapTracker is the write barrier's state, armed for the duration of one
// online snapshot.
type snapTracker struct {
	dirty []uint32 // per-line: set by mutators after the store, cleared by the copier before the re-read
}

// snapMark records a write-barrier hit for the line containing off. It must
// be called after the word store it covers (see the ordering argument
// above); when no snapshot is armed it costs one atomic pointer load.
func (r *Region) snapMark(off uint64) {
	if t := r.snap.Load(); t != nil {
		atomic.StoreUint32(&t.dirty[off/LineBytes], 1)
	}
}

// snapMarkRange marks every line overlapping [off, off+n), after the stores.
func (r *Region) snapMarkRange(off, n uint64) {
	if n == 0 {
		return
	}
	t := r.snap.Load()
	if t == nil {
		return
	}
	for l := off / LineBytes; l <= (off+n-1)/LineBytes; l++ {
		atomic.StoreUint32(&t.dirty[l], 1)
	}
}

// SnapshotPhase names the phase boundaries of an online snapshot, for
// Config.SnapshotHook crash injection.
type SnapshotPhase int

const (
	// SnapCopy fires midway through the streaming full-image pass (the
	// temp file is genuinely partial at this point).
	SnapCopy SnapshotPhase = iota
	// SnapDelta fires after each concurrent re-copy round.
	SnapDelta
	// SnapFence fires inside the cut-over fence, before the final delta —
	// mutators are drained, the caller's exclusive lock is held.
	SnapFence
	// SnapRename fires after the temp file is synced and closed, before it
	// is renamed over the previous image.
	SnapRename
)

func (p SnapshotPhase) String() string {
	switch p {
	case SnapCopy:
		return "copy"
	case SnapDelta:
		return "delta"
	case SnapFence:
		return "fence"
	case SnapRename:
		return "rename"
	default:
		return fmt.Sprintf("SnapshotPhase(%d)", int(p))
	}
}

// SnapshotStats reports what one online snapshot copied.
type SnapshotStats struct {
	Lines         uint64 // lines streamed by the full copy pass (the whole region)
	Recopied      uint64 // lines re-copied after the barrier marked them, all rounds
	FenceRecopied uint64 // of those, lines re-copied under the cut-over fence
	Rounds        int    // concurrent delta rounds before the fence
}

const (
	// snapMaxDeltaRounds bounds the chase: past this many concurrent
	// rounds the write rate has plateaued and the fence takes the rest.
	snapMaxDeltaRounds = 8
	// snapDeltaCutoff ends the concurrent rounds early: once a round
	// re-copies this few lines, another round cannot shrink the fence's
	// work enough to matter.
	snapDeltaCutoff = 64
	// snapMaxRunLines caps one WriteAt batch of contiguous dirty lines.
	snapMaxRunLines = 1024
)

// OnlineSave is an online snapshot split into its phase boundaries, so a
// caller coordinating several regions (the cluster layer) can run every
// region's concurrent copy phase first, then cut them all under one shared
// fence — producing N images that represent a single point in the global
// command order — and only then publish. The lifecycle is
// BeginOnlineSave → Cut (with mutators stopped) → Publish, with Abort valid
// instead of either of the last two. SaveFileOnline composes the three for
// the single-region case.
type OnlineSave struct {
	r         *Region
	f         *os.File
	t         *snapTracker
	tmp, path string
	st        SnapshotStats
	cut       bool
	released  bool // snapshot slot given back (Publish ran or Abort ran)
}

// BeginOnlineSave starts an online snapshot of the region: arms the write
// barrier, streams the full image to a temp file and chases the dirty set
// in bounded concurrent rounds — everything that runs while mutators keep
// executing. The caller must finish with Cut+Publish or Abort; the region's
// snapshot slot stays held (concurrent snapshots serialize) until then.
func (r *Region) BeginOnlineSave(path string) (save *OnlineSave, err error) {
	r.snapMu.Lock()
	o := &OnlineSave{r: r, path: path, tmp: path + ".tmp"}
	lines := r.size / LineBytes
	o.t = &snapTracker{dirty: make([]uint32, lines)}
	// Arm before the first line is read so no concurrent store can slip
	// between read and barrier. The deferred Abort covers every failure —
	// including a SnapshotHook panic (crash injection) — and is a no-op
	// once the OnlineSave has been handed to the caller.
	r.snap.Store(o.t)
	defer func() {
		if save == nil {
			o.Abort()
		}
	}()

	f, err := os.Create(o.tmp)
	if err != nil {
		return nil, err
	}
	o.f = f

	bw := bufio.NewWriterSize(f, 1<<20)
	id, off := r.ReplMeta()
	if err := writeImageHeader(bw, r.size, r.cfg.Mode, imageFlagOnline, id, off); err != nil {
		return nil, err
	}
	// Phase 1 — streaming copy of every line, concurrent with mutators.
	var buf [LineBytes]byte
	for l := uint64(0); l < lines; l++ {
		if r.cfg.SnapshotHook != nil && l == lines/2 {
			bw.Flush() // the injected kill sees a genuinely partial file
			r.cfg.SnapshotHook(SnapCopy)
		}
		r.snapReadLine(l, buf[:])
		if _, err := bw.Write(buf[:]); err != nil {
			return nil, err
		}
	}
	o.st.Lines = lines
	if err := bw.Flush(); err != nil {
		return nil, err
	}

	// Phase 2 — concurrent delta rounds: chase the write barrier until the
	// dirty set is small or stops shrinking.
	for round := 0; round < snapMaxDeltaRounds; round++ {
		n, err := r.snapCopyDelta(o.t, f)
		if err != nil {
			return nil, err
		}
		o.st.Rounds++
		o.st.Recopied += n
		if r.cfg.SnapshotHook != nil {
			r.cfg.SnapshotHook(SnapDelta)
		}
		if n <= snapDeltaCutoff {
			break
		}
	}
	return o, nil
}

// Cut finishes the snapshot's capture: the final delta copy, the
// replication-metadata re-stamp (final now that mutators are drained — the
// header written during Begin carried a pre-copy value) and the barrier
// disarm. The caller must have stopped every region mutator before calling
// and may release them as soon as Cut returns; after it the temp file is a
// point-in-time image, pending Publish.
func (o *OnlineSave) Cut() error {
	r := o.r
	if r.cfg.SnapshotHook != nil {
		r.cfg.SnapshotHook(SnapFence)
	}
	n, err := r.snapCopyDelta(o.t, o.f)
	o.st.Recopied += n
	o.st.FenceRecopied = n
	if err == nil {
		var meta [16]byte
		id, off := r.ReplMeta()
		binary.LittleEndian.PutUint64(meta[:8], id)
		binary.LittleEndian.PutUint64(meta[8:], off)
		_, err = o.f.WriteAt(meta[:], replMetaHeaderOff)
	}
	r.snap.Store(nil)
	o.cut = true
	return err
}

// Publish makes the cut image durable and atomic: fsync, rename over the
// previous image, directory sync — a crash at any point leaves either the
// previous image or the new one, never a tear. It releases the region's
// snapshot slot.
func (o *OnlineSave) Publish() (SnapshotStats, error) {
	r := o.r
	f := o.f
	o.f = nil
	o.released = true
	defer r.snapMu.Unlock()
	if !o.cut {
		f.Close()
		os.Remove(o.tmp)
		return o.st, fmt.Errorf("pmem: Publish before Cut")
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(o.tmp)
		return o.st, err
	}
	if err := f.Close(); err != nil {
		os.Remove(o.tmp)
		return o.st, err
	}
	if r.cfg.SnapshotHook != nil {
		r.cfg.SnapshotHook(SnapRename)
	}
	if err := os.Rename(o.tmp, o.path); err != nil {
		os.Remove(o.tmp)
		return o.st, err
	}
	return o.st, syncDir(o.path)
}

// Abort abandons the snapshot: disarms the barrier, removes the temp file
// and releases the region's snapshot slot. Safe after any failed phase,
// including a failed Cut.
// Abort is idempotent and a no-op after Publish, so callers may defer it
// as a catch-all next to explicit success paths.
func (o *OnlineSave) Abort() {
	if o.released {
		return
	}
	o.released = true
	o.r.snap.Store(nil)
	if o.f != nil {
		o.f.Close()
		o.f = nil
	}
	os.Remove(o.tmp)
	o.r.snapMu.Unlock()
}

// SaveFileOnline checkpoints the region to path while mutators keep running,
// calling fence(cut) exactly once at cut-over. fence must stop every region
// mutator (the server acquires its checkpoint barrier's write side), invoke
// cut() — the final delta copy — and release; its exclusive section is the
// only part of the checkpoint that stalls writers. Like SaveFile, the
// publish is atomic: temp file, fsync, rename, directory sync — a crash at
// any point leaves either the previous image or the new one, never a tear.
//
// Concurrent callers serialize; Crash must not run while a snapshot is in
// flight (a crash discards the volatile image mid-copy — the real-world
// analog is the checkpointing process dying with the machine, and the
// previous on-disk image is what recovers).
func (r *Region) SaveFileOnline(path string, fence func(cut func() error) error) (SnapshotStats, error) {
	o, err := r.BeginOnlineSave(path)
	if err != nil {
		return SnapshotStats{}, err
	}
	// Deferred so a panic out of the fence (crash injection via
	// SnapshotHook) still disarms the barrier and releases the slot.
	defer o.Abort()
	if err := fence(o.Cut); err != nil {
		return o.st, err
	}
	return o.Publish()
}

// snapReadLine copies line l of the volatile image into b, word-atomically.
func (r *Region) snapReadLine(l uint64, b []byte) {
	w := l * LineWords
	for i := uint64(0); i < LineWords; i++ {
		binary.LittleEndian.PutUint64(b[i*WordBytes:], atomic.LoadUint64(&r.words[w+i]))
	}
}

// snapCopyDelta re-copies every line the barrier has marked since its last
// copy, clearing each mark before the re-read (the order the correctness
// argument needs). Contiguous dirty runs are batched into one WriteAt.
func (r *Region) snapCopyDelta(t *snapTracker, f *os.File) (uint64, error) {
	var n uint64
	var buf []byte
	for l := 0; l < len(t.dirty); {
		if atomic.LoadUint32(&t.dirty[l]) == 0 {
			l++
			continue
		}
		start := l
		for l < len(t.dirty) && l-start < snapMaxRunLines && atomic.LoadUint32(&t.dirty[l]) != 0 {
			atomic.StoreUint32(&t.dirty[l], 0)
			l++
		}
		run := l - start
		need := run * LineBytes
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		b := buf[:need]
		for i := 0; i < run; i++ {
			r.snapReadLine(uint64(start+i), b[i*LineBytes:])
		}
		if _, err := f.WriteAt(b, int64(imageHeaderLen+uint64(start)*LineBytes)); err != nil {
			return n, err
		}
		n += uint64(run)
	}
	return n, nil
}
