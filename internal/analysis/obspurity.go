package analysis

import (
	"go/ast"
	"regexp"
	"strconv"
)

// ObsPurity keeps the observability core a stdlib-only leaf. internal/obs is
// recorded into from allocator refill paths, command dispatch, and checkpoint
// phases, and rendered by an HTTP handler — so it must never reach back into
// the layers it observes: importing the persistent-heap or serving packages
// would invert the dependency (ralloc imports obs so the Heap can implement
// obs.Collector), and touching a pmem.Region from a metrics render would put
// an observability read on the crash-consistency audit surface. Both are
// reported: imports of the guarded layer packages, and any call to a
// pmem.Region method (mutating or not).
var ObsPurity = &Analyzer{
	Name: "obspurity",
	Doc:  "internal/obs must stay a stdlib-only leaf: no heap/server imports, no Region calls",
	Run:  runObsPurity,
}

// obsPackages names the package path suffixes obspurity guards. A variable so
// fixture tests can reuse the directory name.
var obsPackages = regexp.MustCompile(`(^|/)obs$`)

// obsForbiddenImports matches the layers obs must not depend on: the
// persistence stack (pmem, ralloc, alloc) and the storage/serving layers that
// themselves import obs (kvstore, dstruct, server).
var obsForbiddenImports = regexp.MustCompile(`(^|/)(pmem|ralloc|alloc|kvstore|dstruct|server)$`)

func runObsPurity(pass *Pass) {
	if !obsPackages.MatchString(pass.Pkg.Types.Path()) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if obsForbiddenImports.MatchString(path) {
				pass.Reportf(imp.Pos(),
					"obs imports %s: the observability core must stay a stdlib-only leaf (the observed layers import obs, never the reverse)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m, ok := regionMethod(info, call); ok {
				pass.Reportf(call.Pos(),
					"obs calls pmem.Region.%s: observability code must not touch the persistent heap", m)
			}
			return true
		})
	}
}
