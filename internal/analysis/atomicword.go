package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AtomicWord enforces the Region access-discipline split (the PR 2
// cross-stripe lost-update class): a word offset that the package accesses
// through the atomic accessors (Load/Store/CAS/Add) must not also be
// accessed through the non-atomic byte accessors (ReadBytes/WriteBytes) —
// word operations and byte operations on the same word are not atomic with
// respect to each other (pmem.Region's documented contract), so mixing
// them on a contended location silently loses updates.
//
// It additionally flags the lost-update shape itself: Store(X, f(Load(X)))
// — a non-atomic read-modify-write of a word that has an atomic Add/CAS
// available (the exact PR 2 count-word bug).
//
// Offsets are compared as normalized source expressions within one
// package: `off+16` and `off + 16` collide, `n+8` and `n+16` do not.
// Aliased offsets through different variables are out of scope — the cheap
// 80% is same-spelling mixes, which is how the real bug was written.
var AtomicWord = &Analyzer{
	Name: "atomicword",
	Doc:  "a Region word must not mix atomic accessors with raw byte access",
	Run:  runAtomicWord,
}

func runAtomicWord(pass *Pass) {
	// The pmem package itself implements both views over the same words;
	// the discipline applies to its clients.
	if pass.Pkg.Types.Name() == "pmem" {
		return
	}
	info := pass.Pkg.Info
	fset := pass.Pkg.Fset

	type use struct {
		pos    token.Pos
		method string
	}
	// Keys are "receiver|offset": the same offset on two different Regions
	// (resize's old-to-new copy loop) is not a mix.
	atomicUses := map[string]use{} // region+offset text -> first atomic access
	rawUses := map[string]use{}    // region+offset text -> first byte access

	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := regionMethod(info, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			recv := exprText(fset, call.Fun.(*ast.SelectorExpr).X)
			offText := exprText(fset, call.Args[0])
			key := recv + "|" + offText
			switch method {
			case "Load", "Store", "CAS", "Add":
				if _, seen := atomicUses[key]; !seen {
					atomicUses[key] = use{call.Pos(), method}
				}
			case "ReadBytes", "WriteBytes":
				if _, seen := rawUses[key]; !seen {
					rawUses[key] = use{call.Pos(), method}
				}
			}
			// The RMW shape: Store(X, ...Load(X)...) on the same Region.
			if method == "Store" && len(call.Args) == 2 {
				ast.Inspect(call.Args[1], func(m ast.Node) bool {
					inner, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					im, ok := regionMethod(info, inner)
					if ok && im == "Load" && len(inner.Args) > 0 &&
						exprText(fset, inner.Fun.(*ast.SelectorExpr).X) == recv &&
						exprText(fset, inner.Args[0]) == offText {
						pass.Reportf(call.Pos(),
							"non-atomic read-modify-write of word %s (Store of a value derived from Load of the same offset): concurrent writers lose updates (PR 2 class); use Add or CAS", offText)
					}
					return true
				})
			}
			return true
		})
	}

	for key, raw := range rawUses {
		if at, ok := atomicUses[key]; ok {
			atPos := pass.Pkg.Fset.Position(at.pos)
			offText := key[strings.IndexByte(key, '|')+1:]
			pass.Reportf(raw.pos,
				"word %s is accessed non-atomically via %s here but atomically via %s at line %d: byte and word accessors are not atomic with respect to each other on the same word",
				offText, raw.method, at.method, atPos.Line)
		}
	}
}
