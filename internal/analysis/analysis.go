// Package analysis is ralloc-vet: a suite of static checks that enforce,
// at compile time, the crash-consistency and lock-discipline conventions
// the codebase otherwise only states in comments and probes with
// crash-injection tests.
//
// The framework is a deliberately small, stdlib-only stand-in for
// golang.org/x/tools/go/analysis (which the build environment cannot
// fetch): an Analyzer inspects one type-checked package (internal/analysis/load)
// and reports Diagnostics. Two comment annotations steer the suite:
//
//	//pmem:publish
//	    placed on (or immediately above) a Region.Store/CAS call, marks
//	    it as a publish point: the durable link/anchor store that makes
//	    previously written payload reachable. persistorder enforces that
//	    every payload write preceding the publish has been flushed and
//	    fenced.
//
//	//pmemvet:ignore <reason>
//	    placed on (or immediately above) an offending line, suppresses
//	    diagnostics on it. The reason is mandatory: a bare ignore is
//	    itself reported, so every suppression is forced to explain itself.
//
// Analyzers: persistorder, deferunlock, atomicword, hookpurity, obspurity,
// replpurity, shardconfine — see each file's doc comment, and DESIGN.md
// "Static analysis" for the rules prose.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *load.Package
	// Notes indexes the //pmem: and //pmemvet: annotations of the package.
	Notes *Notes

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its source position resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Annotation comment markers.
const (
	publishMarker = "//pmem:publish"
	ignoreMarker  = "//pmemvet:ignore"
)

// lineKey identifies a source line.
type lineKey struct {
	file string
	line int
}

// Notes is the per-package annotation index: which lines carry a
// //pmem:publish marker and which carry a //pmemvet:ignore (with reason).
type Notes struct {
	fset    *token.FileSet
	publish map[lineKey]token.Pos
	ignore  map[lineKey]ignoreNote
}

type ignoreNote struct {
	pos    token.Pos
	reason string
}

func buildNotes(pkg *load.Package) *Notes {
	n := &Notes{
		fset:    pkg.Fset,
		publish: make(map[lineKey]token.Pos),
		ignore:  make(map[lineKey]ignoreNote),
	}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				p := pkg.Fset.Position(c.Pos())
				key := lineKey{p.Filename, p.Line}
				switch {
				case text == publishMarker:
					n.publish[key] = c.Pos()
				case text == ignoreMarker || strings.HasPrefix(text, ignoreMarker+" "):
					n.ignore[key] = ignoreNote{
						pos:    c.Pos(),
						reason: strings.TrimSpace(strings.TrimPrefix(text, ignoreMarker)),
					}
				}
			}
		}
	}
	return n
}

// PublishAt reports whether pos's line — or the line immediately above it —
// carries a //pmem:publish marker, consuming it so unused markers can be
// reported.
func (n *Notes) PublishAt(pos token.Pos) bool {
	p := n.fset.Position(pos)
	for _, l := range []int{p.Line, p.Line - 1} {
		if _, ok := n.publish[lineKey{p.Filename, l}]; ok {
			delete(n.publish, lineKey{p.Filename, l})
			return true
		}
	}
	return false
}

// ignoredAt reports whether a diagnostic at position p is suppressed by a
// reasoned //pmemvet:ignore on its line or the line above.
func (n *Notes) ignoredAt(p token.Position) bool {
	for _, l := range []int{p.Line, p.Line - 1} {
		if ig, ok := n.ignore[lineKey{p.Filename, l}]; ok && ig.reason != "" {
			return true
		}
	}
	return false
}

// Run executes the analyzers over every package and returns the surviving
// diagnostics in source order. Suppression and annotation hygiene are
// framework-level: reasoned //pmemvet:ignore comments filter findings on
// their line, bare ignores are themselves diagnostics ("ignorehygiene"),
// and //pmem:publish markers that no analyzer consumed are reported as
// dangling (they mark nothing, which usually means the marker drifted off
// its store during an edit).
func Run(pkgs []*load.Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		notes := buildNotes(pkg)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Notes: notes, diags: &pkgDiags}
			a.Run(pass)
		}
		kept := pkgDiags[:0]
		for _, d := range pkgDiags {
			if !notes.ignoredAt(d.Pos) {
				kept = append(kept, d)
			}
		}
		diags = append(diags, kept...)
		for _, ig := range notes.ignore {
			if ig.reason == "" {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(ig.pos),
					Analyzer: "ignorehygiene",
					Message:  "bare //pmemvet:ignore: a reason is required (//pmemvet:ignore <why this is safe>)",
				})
			}
		}
		for _, pos := range notes.publish {
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(pos),
				Analyzer: "persistorder",
				Message:  "dangling //pmem:publish: no Region.Store/CAS on this line or the next",
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// Analyzers returns the full ralloc-vet suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{PersistOrder, DeferUnlock, AtomicWord, HookPurity, ObsPurity, ReplPurity, ShardConfine}
}

// ---- shared type-resolution helpers ----

// regionMethod reports whether call invokes a method of a type named Region
// declared in a package named pmem, returning the method name. Matching by
// (package name, type name) rather than full import path keeps the
// analyzers honest on analysistest fixtures, which stub the pmem package
// under a different module path.
func regionMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Region" || obj.Pkg() == nil || obj.Pkg().Name() != "pmem" {
		return "", false
	}
	return fn.Name(), true
}

// mutexKind classifies the receiver of a Lock/RLock/Unlock/RUnlock call.
func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// exprText renders an expression as normalized source text (whitespace
// stripped), the structural-equality key the analyzers compare lock
// receivers and word offsets with.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	writeExpr(&sb, fset, e)
	return sb.String()
}

func writeExpr(sb *strings.Builder, fset *token.FileSet, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		sb.WriteString(e.Name)
	case *ast.SelectorExpr:
		writeExpr(sb, fset, e.X)
		sb.WriteByte('.')
		sb.WriteString(e.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(sb, fset, e.X)
		sb.WriteByte('[')
		writeExpr(sb, fset, e.Index)
		sb.WriteByte(']')
	case *ast.BinaryExpr:
		writeExpr(sb, fset, e.X)
		sb.WriteString(e.Op.String())
		writeExpr(sb, fset, e.Y)
	case *ast.UnaryExpr:
		sb.WriteString(e.Op.String())
		writeExpr(sb, fset, e.X)
	case *ast.ParenExpr:
		writeExpr(sb, fset, e.X)
	case *ast.StarExpr:
		sb.WriteByte('*')
		writeExpr(sb, fset, e.X)
	case *ast.BasicLit:
		sb.WriteString(e.Value)
	case *ast.CallExpr:
		writeExpr(sb, fset, e.Fun)
		sb.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeExpr(sb, fset, a)
		}
		sb.WriteByte(')')
	default:
		// Anything fancier is position-keyed: it will never compare equal
		// to another expression, which is the conservative direction.
		fmt.Fprintf(sb, "@%d", e.Pos())
	}
}

// funcScopes yields every function body in the file as an independent
// analysis scope: each FuncDecl and each FuncLit (closures run in a
// different dynamic context, so linear reasoning must not leak across the
// boundary). fn receives the scope's name (for messages) and body.
func funcScopes(f *ast.File, fn func(name string, body *ast.BlockStmt)) {
	var scopes []struct {
		name string
		body *ast.BlockStmt
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				scopes = append(scopes, struct {
					name string
					body *ast.BlockStmt
				}{n.Name.Name, n.Body})
			}
		case *ast.FuncLit:
			scopes = append(scopes, struct {
				name string
				body *ast.BlockStmt
			}{"func literal", n.Body})
		}
		return true
	})
	for _, s := range scopes {
		fn(s.name, s.body)
	}
}

// inspectShallow walks body in source order but does not descend into
// nested function literals (they are scopes of their own).
func inspectShallow(body *ast.BlockStmt, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n == nil {
			return false
		}
		return fn(n)
	})
}
