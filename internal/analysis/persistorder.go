package analysis

import (
	"go/ast"
	"go/token"
)

// PersistOrder enforces the flush-before-publish discipline: inside any
// function, a Region.Store/CAS marked //pmem:publish (the durable link or
// anchor store that makes payload reachable) must be preceded — in source
// order — by a Flush/FlushRange covering every earlier payload
// Store/WriteBytes, and by a Fence after the last flush. A publish with
// unflushed payload writes, or with flushed-but-unfenced ones, is the bug
// class the crash-injection sweeps exist to catch dynamically: a crash
// between the publish and the (missing) write-back recovers a reachable
// record with torn payload.
//
// Checkpoint calls are covered too: SaveFile (quiesced, shadow-based) with
// unflushed writes in scope is reported — the file would silently lack them —
// while SaveFileOnline is recognized as its own publish point (write barrier
// + cut-over fence + atomic rename) needing no prior flush.
//
// The analysis is linear per function scope: statements are considered in
// source order, any Flush is credited against all earlier writes (the real
// code flushes whole node ranges), and branches are not path-sensitive.
// That is the cheap 80%: every real persist sequence in dstruct/ralloc is
// straight-line between payload preparation and publish, so drifts show up
// as exact diagnostics rather than model-checking counterexamples.
var PersistOrder = &Analyzer{
	Name: "persistorder",
	Doc:  "payload must be flushed and fenced before a //pmem:publish store",
	Run:  runPersistOrder,
}

func runPersistOrder(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		funcScopes(f, func(name string, body *ast.BlockStmt) {
			var (
				unflushed []token.Pos // payload writes not yet covered by a flush
				needFence bool        // a flush has happened with no fence after it
			)
			inspectShallow(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				method, ok := regionMethod(info, call)
				if !ok {
					return true
				}
				switch method {
				case "Store", "CAS":
					if pass.Notes.PublishAt(call.Pos()) {
						if len(unflushed) > 0 {
							first := pass.Pkg.Fset.Position(unflushed[0])
							pass.Reportf(call.Pos(),
								"publish %s with %d unflushed payload write(s) before it (first at line %d): flush and fence the payload before swinging the link",
								method, len(unflushed), first.Line)
						} else if needFence {
							pass.Reportf(call.Pos(),
								"publish %s after a flush with no Fence between them: the write-back is not ordered before the link swing", method)
						}
						unflushed = unflushed[:0]
						needFence = false
					} else {
						unflushed = append(unflushed, call.Pos())
					}
				case "WriteBytes", "Zero", "Add":
					unflushed = append(unflushed, call.Pos())
				case "Flush", "FlushRange":
					unflushed = unflushed[:0]
					needFence = true
				case "Fence":
					needFence = false
				case "Persist":
					// Persist flushes every dirty line and (simulated
					// write-back being synchronous) needs no separate fence.
					unflushed = unflushed[:0]
					needFence = false
				case "SaveFile":
					// The quiesced checkpoint writes the *shadow* image: a
					// write not yet flushed is silently absent from the
					// file, so a checkpoint taken here would lose data the
					// caller already acknowledged. Either Persist first or
					// take the online path.
					if len(unflushed) > 0 {
						first := pass.Pkg.Fset.Position(unflushed[0])
						pass.Reportf(call.Pos(),
							"SaveFile checkpoints the shadow image with %d unflushed write(s) before it (first at line %d): call Persist first, or use SaveFileOnline whose write barrier captures live stores",
							len(unflushed), first.Line)
					}
				case "SaveFileOnline":
					// The online checkpoint is its own publish point: the
					// write barrier plus cut-over fence capture the
					// volatile image regardless of flush state, and the
					// fsync + rename + directory-sync sequence publishes
					// it durably. No prior flush or fence is required —
					// and the region's lines stay dirty afterwards, so the
					// tracked flush state is deliberately left untouched.
				}
				return true
			})
			_ = name
		})
	}
}
