// Package load turns Go package patterns into parsed, type-checked
// syntax trees using only the standard library and the go tool.
//
// It is the offline substitute for golang.org/x/tools/go/packages that
// cmd/ralloc-vet is built on: `go list -export -deps` compiles every
// dependency (standard library included) into export data via the build
// cache, and each target package's own files are parsed and type-checked
// from source against that export data with the stock gc importer. No
// network, no third-party modules, and positions for every target package
// share one token.FileSet.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Syntax holds the parsed files: GoFiles, then — when Config.Tests is
	// set — the in-package TestGoFiles. External (_test package) files are
	// a separate compilation unit and are not included.
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Config controls a Load.
type Config struct {
	// Dir is the directory the go tool runs in (module root, or any
	// directory inside the module). Empty means the current directory.
	Dir string
	// Tests includes each package's in-package _test.go files in its
	// compilation unit, the way `go vet` does.
	Tests bool
}

// listed is the subset of `go list -json` output the loader consumes.
type listed struct {
	ImportPath  string
	Dir         string
	Standard    bool
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Error       *struct{ Err string }
}

func goList(dir string, args ...string) ([]listed, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []listed
	dec := json.NewDecoder(&out)
	for {
		var p listed
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists, parses, and type-checks the packages matching patterns.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	// Pass 1: enumerate the target packages and their files.
	targets, err := goList(cfg.Dir, append([]string{"-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	// Pass 2: compile everything the targets (and their tests) need into
	// export data. -test compiles the test variants too, which is what
	// forces test-only dependencies (testing, net, ...) through the build
	// cache. -e keeps going past packages with no test files.
	deps, err := goList(cfg.Dir, append([]string{"-e", "-export", "-deps", "-test", "-json=ImportPath,Export,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, d := range deps {
		// Test variants list as `path [other.test]`; the plain compilation
		// is the one import statements resolve to.
		if d.Export != "" && !strings.ContainsAny(d.ImportPath, " [") {
			exports[d.ImportPath] = d.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		files := append([]string(nil), t.GoFiles...)
		if cfg.Tests {
			files = append(files, t.TestGoFiles...)
		}
		if len(files) == 0 {
			continue
		}
		var syntax []*ast.File
		for _, name := range files {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			syntax = append(syntax, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(t.ImportPath, fset, syntax, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, typeErrs[0])
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Syntax:     syntax,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}
