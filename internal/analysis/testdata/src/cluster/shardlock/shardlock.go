// Stub of the real internal/cluster/shardlock package: shardconfine matches
// the Locks type by (package name, type name), so the fixture module can
// declare it here. The directory sits under cluster/, which also makes this
// package itself exempt from the rule.
package shardlock

import "sync"

const NumStripes = 4

type Locks struct {
	Exec    sync.RWMutex
	Stripes [NumStripes]sync.Mutex
}

func (l *Locks) LockStripes(idx []int) {
	for _, i := range idx {
		l.Stripes[i].Lock()
	}
}

func (l *Locks) UnlockStripes(idx []int) {
	for i := len(idx) - 1; i >= 0; i-- {
		l.Stripes[idx[i]].Unlock()
	}
}

// LockAllStripes is the sanctioned cross-shard entry point: it may iterate
// every shard precisely because this package owns the global order.
func LockAllStripes(shards []*Locks) {
	for _, l := range shards {
		for i := range l.Stripes {
			l.Stripes[i].Lock()
		}
	}
}

func UnlockAllStripes(shards []*Locks) {
	for s := len(shards) - 1; s >= 0; s-- {
		l := shards[s]
		for i := len(l.Stripes) - 1; i >= 0; i-- {
			l.Stripes[i].Unlock()
		}
	}
}
