// Fixtures for the shardconfine analyzer: this package is not under
// cluster/, so it must confine stripe acquisitions to one shard per scope.
package shardconfine

import "fixture/cluster/shardlock"

type server struct {
	shards []*shardlock.Locks
}

// badTwoShards holds two shards' stripes at once: the AB/BA deadlock shape
// hash-slot routing exists to forbid.
func (s *server) badTwoShards(idx []int) {
	a, b := s.shards[0], s.shards[1]
	a.LockStripes(idx)
	b.LockStripes(idx) // want "stripe locks of a second shard \(b after a\)"
	b.UnlockStripes(idx)
	a.UnlockStripes(idx)
}

// badLoop acquires each shard's stripes from a loop over the shard slice —
// the cumulative-hold form of the same deadlock.
func (s *server) badLoop(idx []int) {
	for _, l := range s.shards {
		l.LockStripes(idx) // want "stripe locks of loop-varying shard l"
	}
}

// badDirect is the two-shard shape through direct stripe indexing.
func (s *server) badDirect() {
	s.shards[0].Stripes[0].Lock()
	s.shards[1].Stripes[1].Lock() // want "second shard .s.shards.1. after s.shards.0.."
	s.shards[1].Stripes[1].Unlock()
	s.shards[0].Stripes[0].Unlock()
}

// badAlias captures a loop-varying stripe through a local alias; the Lock
// call is where the hold happens, so that is where it reports.
func (s *server) badAlias() {
	for _, l := range s.shards {
		mu := &l.Stripes[0]
		mu.Lock() // want "stripe locks of loop-varying shard l"
		mu.Unlock()
	}
}

// goodSingleShard: everything on one shard's lock block is fine, including
// mixing LockStripes with direct and aliased stripe locks.
func (s *server) goodSingleShard(idx []int) {
	l := s.shards[0]
	l.LockStripes(idx)
	l.UnlockStripes(idx)
	l.Stripes[1].Lock()
	l.Stripes[1].Unlock()
	mu := &l.Stripes[2]
	mu.Lock()
	mu.Unlock()
}

// goodIntraShardLoop: a loop over stripe indices of ONE shard is the normal
// sorted-acquisition discipline, not a cross-shard hold.
func (s *server) goodIntraShardLoop() {
	l := s.shards[0]
	for i := 0; i < shardlock.NumStripes; i++ {
		l.Stripes[i].Lock()
	}
	for i := shardlock.NumStripes - 1; i >= 0; i-- {
		l.Stripes[i].Unlock()
	}
}

// goodHelper: cross-shard work goes through shardlock's ordered entry
// points, which encode the global order once.
func (s *server) goodHelper() {
	shardlock.LockAllStripes(s.shards)
	shardlock.UnlockAllStripes(s.shards)
}

// goodIgnored: the escape hatch still works, with a reason.
func (s *server) goodIgnored(idx []int) {
	a, b := s.shards[0], s.shards[1]
	a.LockStripes(idx)
	//pmemvet:ignore fixture exercising the suppression path
	b.LockStripes(idx)
	b.UnlockStripes(idx)
	a.UnlockStripes(idx)
}
