package server

import "testing"

// Test files are exempt from deferunlock: harnesses poke locks in ways
// production code must not, and a panicking test fails its own process.
func TestRawLockIsExempt(t *testing.T) {
	var s S
	s.mu.Lock()
	s.mu.Unlock()
}
