// Fixtures for the deferunlock analyzer. The directory name ends in
// /server, which puts the package inside the guarded set.
package server

import "sync"

type S struct {
	mu  sync.Mutex
	rmu sync.RWMutex
}

// bad releases on the straight line only: a panic between Lock and Unlock
// leaks the mutex.
func (s *S) bad() {
	s.mu.Lock() // want "Lock of s.mu in bad is not released via defer"
	s.mu.Unlock()
}

// badRead is the read-side variant.
func (s *S) badRead() {
	s.rmu.RLock() // want "RLock of s.rmu in badRead"
	s.rmu.RUnlock()
}

// badClosure: function literals are scopes of their own; the defer in the
// enclosing function does not cover the literal's extra acquisition.
func (s *S) badClosure() func() {
	return func() {
		s.mu.Lock() // want "Lock of s.mu in func literal"
		s.mu.Unlock()
	}
}

// badMismatch defers the wrong side: an RLock needs RUnlock.
func (s *S) badMismatch() {
	s.rmu.RLock() // want "RLock of s.rmu in badMismatch"
	defer s.rmu.Unlock()
}

// good is the plain compliant form.
func (s *S) good() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// invokeUnlocking mirrors the real registry helper: it owns the release.
func invokeUnlocking(mu *sync.Mutex, fn func()) {
	defer mu.Unlock()
	fn()
}

// goodHandoff acquires and hands the mutex to a helper that defer-releases
// the corresponding parameter.
func (s *S) goodHandoff() {
	mu := &s.mu
	mu.Lock()
	invokeUnlocking(mu, func() {})
}

// lockBoth is an acquisition helper: "lock"-named and takes mutex locks.
// Its internal Lock calls are exempt; its call sites must pair the first
// argument with a deferred unlock.
func lockBoth(a, b *sync.Mutex) {
	a.Lock()
	b.Lock()
}

func unlockBoth(a, b *sync.Mutex) {
	b.Unlock()
	a.Unlock()
}

// goodHelper pairs the acquisition helper with a deferred unlock-named call.
func goodHelper(a, b *sync.Mutex) {
	lockBoth(a, b)
	defer unlockBoth(a, b)
}

// badHelper takes locks through the helper and never releases them.
func badHelper(a, b *sync.Mutex) {
	lockBoth(a, b) // want "lockBoth of a in badHelper"
}

// invokeFieldUnlocking releases a lock reached through a field path of its
// parameter — the sharded-dispatch helper shape (defer sh.locks.Exec.RUnlock()).
func invokeFieldUnlocking(s *S, fn func()) {
	defer s.mu.Unlock()
	fn()
}

// goodFieldHandoff acquires through the same path the helper defer-releases:
// the call site gets credit for exactly s.mu.
func (s *S) goodFieldHandoff() {
	s.mu.Lock()
	invokeFieldUnlocking(s, func() {})
}

// badFieldHandoff hands the helper the wrong receiver: crediting s2.mu must
// not release s.mu.
func (s *S) badFieldHandoff(s2 *S) {
	s.mu.Lock() // want "Lock of s.mu in badFieldHandoff"
	invokeFieldUnlocking(s2, func() {})
	s.mu.Unlock()
}
