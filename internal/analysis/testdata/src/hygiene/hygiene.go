// Fixtures for the framework-level annotation hygiene: reasoned ignores
// suppress, bare ignores are themselves diagnostics, and publish markers
// that mark nothing are dangling.
package hygiene

import "fixture/pmem"

// reasoned is suppressed: the ignore carries a reason.
func reasoned(r *pmem.Region, off uint64) {
	//pmemvet:ignore fixture: intentionally single-writer
	r.Store(off, r.Load(off)+1)
}

// bare keeps its finding and earns a second one for the naked ignore.
func bare(r *pmem.Region, off uint64) {
	// want-next "bare //pmemvet:ignore: a reason is required"
	//pmemvet:ignore
	r.Store(off+8, r.Load(off+8)+1) // want "non-atomic read-modify-write"
}

// want-next "dangling //pmem:publish"
//pmem:publish
var sentinel = 0
