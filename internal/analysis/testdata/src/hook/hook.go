// Fixtures for the hookpurity analyzer.
package hook

import "fixture/pmem"

var g *pmem.Region

func mutate(off, val uint64) { g.Store(off, val) }

func viaChain(off, val uint64) { mutate(off, val) }

func observe(off, val uint64) {}

// literalHook binds a function literal that mutates directly.
func literalHook(r *pmem.Region) pmem.Config {
	return pmem.Config{
		StoreHook: func(off, val uint64) { // want "StoreHook reaches a Region mutator"
			r.Store(0, 1)
		},
	}
}

// assignedHooks exercises the assignment form and the call-graph walk.
func assignedHooks(cfg *pmem.Config) {
	cfg.StoreHook = observe
	cfg.StoreHook = viaChain // want "StoreHook reaches a Region mutator"
}

// pureHook only observes and panics: the designed use.
func pureHook() pmem.Config {
	return pmem.Config{
		StoreHook: func(off, val uint64) {
			if off == 0 {
				panic("crash point")
			}
		},
	}
}
