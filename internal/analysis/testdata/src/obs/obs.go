// Failing fixtures for the obspurity analyzer: the package path ends in
// /obs, so importing a guarded layer package or touching a pmem.Region is
// reported. The deferunlock analyzer also guards this directory — the
// straight-line unlock below must fire it.
package obs

import (
	"sync"

	"fixture/pmem" // want "obs imports fixture/pmem: the observability core must stay a stdlib-only leaf"
)

// peek reaches into the persistent heap from observability code.
func peek(r *pmem.Region) uint64 {
	return r.Load(8) // want "obs calls pmem.Region.Load: observability code must not touch the persistent heap"
}

// ring mimics an obs-style mutex-guarded structure.
type ring struct {
	mu sync.Mutex
	n  int
}

// badLen releases on the straight line only: a panic between Lock and Unlock
// leaks the mutex. deferunlock guards obs packages too.
func badLen(r *ring) int {
	r.mu.Lock() // want "Lock of r.mu in badLen is not released via defer"
	n := r.n
	r.mu.Unlock()
	return n
}

// goodLen is the compliant shape.
func goodLen(r *ring) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
