// Failing fixtures for the replpurity analyzer: the package path ends in
// /repl, so any pmem.Region mutator call is reported. Reads stay legal —
// bootstrap inspects image headers without creating recovery obligations.
package repl

import (
	"fixture/pmem"
)

// stampOffset is the forbidden shape: the transport writing its own offset
// into persistent memory, bypassing the embedder's checkpoint quiesce.
func stampOffset(r *pmem.Region, off uint64) {
	r.Store(128, off) // want "repl calls pmem.Region.Store: the replication transport is volatile"
}

// publishEntry smuggles feed bytes into the region — same class, byte form.
func publishEntry(r *pmem.Region, entry []byte) {
	r.WriteBytes(4096, entry) // want "repl calls pmem.Region.WriteBytes: the replication transport is volatile"
}

// bumpApplied uses the atomic flavor; still a durability crossing.
func bumpApplied(r *pmem.Region) {
	r.Add(136, 1) // want "repl calls pmem.Region.Add: the replication transport is volatile"
}

// readMeta is the compliant shape: reading an image header during bootstrap
// mutates nothing and is not reported.
func readMeta(r *pmem.Region) uint64 {
	return r.Load(128)
}
