// Fixtures for the atomicword analyzer.
package atomicmix

import "fixture/pmem"

// mix accesses the same word atomically and through raw bytes: the two
// views are not atomic with respect to each other.
func mix(r *pmem.Region, off uint64) {
	r.Store(off+8, 1)
	var b [8]byte
	r.ReadBytes(off+8, b[:]) // want "word off\+8 is accessed non-atomically via ReadBytes"
}

// rmw is the PR 2 lost-update shape: Store of a value derived from Load of
// the same word on the same Region.
func rmw(r *pmem.Region, off uint64) {
	r.Store(off+64, r.Load(off+64)+1) // want "non-atomic read-modify-write of word off\+64"
}

// copyBetween copies one word between two different Regions: same offset
// text, different receivers — not an RMW and not a mix.
func copyBetween(dst, src *pmem.Region, off uint64) {
	dst.Store(off+128, src.Load(off+128))
}

// disjoint uses atomic and raw accessors on different words: fine.
func disjoint(r *pmem.Region, off uint64) {
	r.Store(off+192, 1)
	r.WriteBytes(off+256, []byte("payload"))
}

// counter uses the atomic RMW the analyzer points at: fine.
func counter(r *pmem.Region, off uint64) {
	r.Add(off+320, 1)
}
