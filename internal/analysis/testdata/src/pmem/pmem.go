// Package pmem is the fixture stub of the real persistent-memory region:
// same package name, type name, and method set, so the analyzers (which
// match by package and type name, not import path) treat it as the real
// thing. Every method is a no-op.
package pmem

// Region mimics repro/internal/pmem.Region's accessor surface.
type Region struct{ _ [0]byte }

func (r *Region) Load(off uint64) uint64             { return 0 }
func (r *Region) Store(off, val uint64)              {}
func (r *Region) CAS(off, old, new uint64) bool      { return false }
func (r *Region) Add(off, delta uint64) uint64       { return 0 }
func (r *Region) ReadBytes(off uint64, dst []byte)   {}
func (r *Region) WriteBytes(off uint64, src []byte)  {}
func (r *Region) Zero(off, n uint64)                 {}
func (r *Region) Flush(off uint64)                   {}
func (r *Region) FlushRange(off, n uint64)           {}
func (r *Region) Fence()                             {}
func (r *Region) Persist()                           {}
func (r *Region) SaveFile(path string) error         { return nil }
func (r *Region) SaveFileOnline(path string, fence func(cut func() error) error) (SnapshotStats, error) {
	return SnapshotStats{}, nil
}

// SnapshotStats mimics the online-snapshot copy counters.
type SnapshotStats struct{ Lines, Recopied, FenceRecopied uint64 }

// Config mimics the hook surface hookpurity inspects.
type Config struct {
	StoreHook func(off, val uint64)
}
