// Fixtures for the persistorder analyzer.
package persist

import "fixture/pmem"

// badUnflushed publishes with payload never flushed.
func badUnflushed(r *pmem.Region) {
	r.Store(16, 7)
	r.WriteBytes(24, []byte("x"))
	//pmem:publish
	r.Store(8, 16) // want "publish Store with 2 unflushed payload write"
}

// badUnfenced flushes but never fences before the link swing.
func badUnfenced(r *pmem.Region) {
	r.Store(16, 7)
	r.FlushRange(16, 8)
	//pmem:publish
	r.Store(8, 16) // want "publish Store after a flush with no Fence"
}

// badZero covers the Zero and Add payload-write forms.
func badZero(r *pmem.Region) {
	r.Zero(32, 16)
	r.Add(48, 1)
	//pmem:publish
	r.CAS(8, 0, 32) // want "publish CAS with 2 unflushed payload write"
}

// goodPublish is the canonical sequence: write, flush, fence, swing.
func goodPublish(r *pmem.Region) {
	r.Store(16, 7)
	r.WriteBytes(24, []byte("x"))
	r.FlushRange(16, 16)
	r.Fence()
	//pmem:publish
	r.Store(8, 16)
	r.Flush(8)
	r.Fence()
}

// goodPersist: Persist covers flush and fence at once.
func goodPersist(r *pmem.Region) {
	r.WriteBytes(24, []byte("x"))
	r.Persist()
	//pmem:publish
	r.CAS(8, 0, 24)
}

// goodMarkerSameLine: the marker may share the store's line.
func goodMarkerSameLine(r *pmem.Region) {
	r.Store(16, 7)
	r.Flush(16)
	r.Fence()
	r.Store(8, 16) //pmem:publish
}

// badSaveFile checkpoints the shadow with live unflushed writes: the image
// silently lacks them.
func badSaveFile(r *pmem.Region) {
	r.Store(16, 7)
	r.WriteBytes(24, []byte("x"))
	r.SaveFile("kv.img") // want "SaveFile checkpoints the shadow image with 2 unflushed write"
}

// goodSaveFile persists first, so the shadow is complete at checkpoint time.
func goodSaveFile(r *pmem.Region) {
	r.Store(16, 7)
	r.Persist()
	r.SaveFile("kv.img")
}

// goodSaveFileOnline needs no prior flush: the write barrier and cut-over
// fence capture the volatile image.
func goodSaveFileOnline(r *pmem.Region) {
	r.Store(16, 7)
	r.WriteBytes(24, []byte("x"))
	r.SaveFileOnline("kv.img", func(cut func() error) error { return cut() })
}
