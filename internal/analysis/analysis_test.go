package analysis

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis/load"
)

// The fixture harness is analysistest in miniature: testdata/src is its own
// module (the go tool ignores "testdata" directories) with a stub pmem
// package, and every fixture line that must produce a diagnostic carries a
// trailing `// want "regexp"` comment. `// want-next "regexp"` expects the
// diagnostic on the following line — for findings reported at a comment's
// own position (bare ignores, dangling publish markers), where a trailing
// comment cannot syntactically fit.

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var quotedRe = regexp.MustCompile(`"([^"]*)"`)

// collectWants scans every fixture .go file for want comments, keyed by the
// absolute filename and line the diagnostic must land on.
func collectWants(t *testing.T, root string) map[string]map[int][]*expectation {
	t.Helper()
	wants := map[string]map[int][]*expectation{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want")
			if idx < 0 {
				continue
			}
			rest := line[idx+len("// want"):]
			target := i + 1 // line numbers are 1-based
			if strings.HasPrefix(rest, "-next") {
				rest = rest[len("-next"):]
				target++
			}
			for _, m := range quotedRe.FindAllStringSubmatch(rest, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				if wants[abs] == nil {
					wants[abs] = map[int][]*expectation{}
				}
				wants[abs][target] = append(wants[abs][target], &expectation{re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	pkgs, err := load.Load(load.Config{Dir: root, Tests: true}, "./...")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags := Run(pkgs, Analyzers())
	wants := collectWants(t, root)

	for _, d := range diags {
		var hit *expectation
		for _, e := range wants[d.Pos.Filename][d.Pos.Line] {
			if !e.matched && e.re.MatchString(d.Message) {
				hit = e
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		hit.matched = true
	}
	for file, lines := range wants {
		for line, es := range lines {
			for _, e := range es {
				if !e.matched {
					t.Errorf("%s:%d: expected a diagnostic matching %q, got none", file, line, e.re)
				}
			}
		}
	}
}

// TestEveryAnalyzerFires asserts each analyzer in the suite has at least one
// failing fixture — the acceptance bar for the suite being live, not
// vacuously clean.
func TestEveryAnalyzerFires(t *testing.T) {
	root := filepath.Join("testdata", "src")
	pkgs, err := load.Load(load.Config{Dir: root, Tests: true}, "./...")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags := Run(pkgs, Analyzers())
	fired := map[string]bool{}
	for _, d := range diags {
		fired[d.Analyzer] = true
	}
	for _, a := range Analyzers() {
		if !fired[a.Name] {
			t.Errorf("analyzer %s produced no fixture diagnostics", a.Name)
		}
	}
	if !fired["ignorehygiene"] {
		t.Errorf("bare //pmemvet:ignore produced no fixture diagnostic")
	}
}
