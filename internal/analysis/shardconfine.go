package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// ShardConfine enforces the cluster's cross-shard lock-ordering contract
// statically: outside internal/cluster (which owns the shardlock package and
// its deadlock-ordered cross-shard entry points), no function may hold two
// shards' stripe locks simultaneously. Hash-slot partitioning exists to make
// that shape unnecessary — a command either confines to one shard or answers
// -CROSSSLOT — so a second shard's stripes in one scope is either a latent
// AB/BA deadlock or a cross-shard atomicity claim the system cannot keep.
//
// The rule is syntactic and per function scope. A "stripe acquisition" is:
//
//   - X.LockStripes(...) where X is a shardlock.Locks;
//   - L.Stripes[i].Lock(), directly or through a local alias
//     (mu := &L.Stripes[i]; mu.Lock()).
//
// A scope violates when it acquires stripes of two distinct lock-block
// expressions, or acquires stripes under a base that varies with a loop
// variable (iterating the shard slice and locking each one's stripes —
// holding them cumulatively is the deadlock shape, and looping is how it is
// written). Cross-shard work must instead go through the shardlock package's
// ordered helpers (LockAllStripes, RLockAll, ExecLockAll), whose calls this
// rule deliberately does not count: they encode the global order once.
//
// Test files are exempt, as in deferunlock: harnesses reach into lock
// blocks in ways production code must not.
var ShardConfine = &Analyzer{
	Name: "shardconfine",
	Doc:  "outside internal/cluster, one function must not hold two shards' stripe locks",
	Run:  runShardConfine,
}

// clusterOwnedPackages matches the packages allowed to take cross-shard
// stripe locks by hand: internal/cluster and everything beneath it
// (shardlock itself lives there).
var clusterOwnedPackages = regexp.MustCompile(`(^|/)cluster(/|$)`)

func runShardConfine(pass *Pass) {
	if clusterOwnedPackages.MatchString(pass.Pkg.Types.Path()) {
		return
	}
	info := pass.Pkg.Info
	fset := pass.Pkg.Fset

	for _, f := range pass.Pkg.Syntax {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		funcScopes(f, func(name string, body *ast.BlockStmt) {
			// aliases maps a local identifier object to the lock-block base
			// it indexes (mu := &sh.locks.Stripes[i] -> "sh.locks").
			aliases := map[types.Object]string{}
			// firstBase is the scope's established shard, "" until the first
			// acquisition; loopBases tracks which loop-variable objects are
			// in scope at the acquisition site.
			firstBase := ""
			var loopVars []map[types.Object]bool

			inLoopVars := func(e ast.Expr) bool {
				found := false
				ast.Inspect(e, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					obj := info.Uses[id]
					for _, vars := range loopVars {
						if vars[obj] {
							found = true
						}
					}
					return !found
				})
				return found
			}

			acquire := func(pos ast.Node, base ast.Expr) {
				text := exprText(fset, base)
				if inLoopVars(base) {
					pass.Reportf(pos.Pos(),
						"stripe locks of loop-varying shard %s in %s: holding several shards' stripes is the cross-shard deadlock hash-slot routing forbids; use shardlock's ordered helpers (LockAllStripes) or confine to one shard",
						text, name)
					return
				}
				if firstBase == "" {
					firstBase = text
					return
				}
				if firstBase != text {
					pass.Reportf(pos.Pos(),
						"stripe locks of a second shard (%s after %s) in %s: code outside internal/cluster must not hold two shards' stripe locks simultaneously; route to one shard (CROSSSLOT) or use shardlock's ordered helpers",
						text, firstBase, name)
				}
			}

			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					vars := map[types.Object]bool{}
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := info.Defs[id]; obj != nil {
								vars[obj] = true
							}
						}
					}
					loopVars = append(loopVars, vars)
					if n.Body != nil {
						inspectShallow(n.Body, walk)
					}
					loopVars = loopVars[:len(loopVars)-1]
					return false
				case *ast.ForStmt:
					vars := map[types.Object]bool{}
					if init, ok := n.Init.(*ast.AssignStmt); ok {
						for _, e := range init.Lhs {
							if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
								if obj := info.Defs[id]; obj != nil {
									vars[obj] = true
								}
							}
						}
					}
					loopVars = append(loopVars, vars)
					if n.Body != nil {
						inspectShallow(n.Body, walk)
					}
					loopVars = loopVars[:len(loopVars)-1]
					return false
				case *ast.AssignStmt:
					// mu := &sh.locks.Stripes[i] (with or without &): record
					// the alias so mu.Lock() later charges sh.locks.
					for i, rhs := range n.Rhs {
						if i >= len(n.Lhs) {
							break
						}
						id, ok := n.Lhs[i].(*ast.Ident)
						if !ok {
							continue
						}
						e := rhs
						if u, ok := e.(*ast.UnaryExpr); ok {
							e = u.X
						}
						if base, ok := stripesIndexBase(info, e); ok {
							obj := info.Defs[id]
							if obj == nil {
								obj = info.Uses[id]
							}
							if obj != nil {
								// A base captured from a loop variable keeps
								// the loop-varying taint through the alias;
								// the later Lock() call reports it.
								if inLoopVars(base) {
									aliases[obj] = loopSentinel + exprText(fset, base)
								} else {
									aliases[obj] = exprText(fset, base)
								}
							}
						}
					}
					return true
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					switch sel.Sel.Name {
					case "LockStripes":
						if isShardLocks(info.Types[sel.X].Type) {
							acquire(n, sel.X)
						}
					case "Lock":
						// Direct: L.Stripes[i].Lock()
						if base, ok := stripesIndexBase(info, sel.X); ok {
							acquire(n, base)
							return true
						}
						// Aliased: mu.Lock() where mu := &L.Stripes[i]
						if id, ok := sel.X.(*ast.Ident); ok {
							if text, ok := aliases[info.Uses[id]]; ok {
								if strings.HasPrefix(text, loopSentinel) {
									pass.Reportf(n.Pos(),
										"stripe locks of loop-varying shard %s in %s: holding several shards' stripes is the cross-shard deadlock hash-slot routing forbids; use shardlock's ordered helpers (LockAllStripes) or confine to one shard",
										strings.TrimPrefix(text, loopSentinel), name)
									return true
								}
								if firstBase == "" {
									firstBase = text
								} else if firstBase != text {
									pass.Reportf(n.Pos(),
										"stripe locks of a second shard (%s after %s) in %s: code outside internal/cluster must not hold two shards' stripe locks simultaneously; route to one shard (CROSSSLOT) or use shardlock's ordered helpers",
										text, firstBase, name)
								}
							}
						}
					}
					return true
				}
				return true
			}
			inspectShallow(body, walk)
		})
	}
}

// loopSentinel prefixes an alias base captured from a loop variable.
const loopSentinel = "\x00loop:"

// stripesIndexBase matches the expression form <base>.Stripes[i] where
// <base> is a shardlock.Locks, returning the base expression.
func stripesIndexBase(info *types.Info, e ast.Expr) (ast.Expr, bool) {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return nil, false
	}
	sel, ok := idx.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stripes" {
		return nil, false
	}
	if !isShardLocks(info.Types[sel.X].Type) {
		return nil, false
	}
	return sel.X, true
}

// isShardLocks reports whether t is the Locks type of a package named
// shardlock (by name, like regionMethod, so fixtures can stub the package
// under the fixture module path).
func isShardLocks(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Locks" && obj.Pkg() != nil && obj.Pkg().Name() == "shardlock"
}
