package analysis

import (
	"go/ast"
	"regexp"
)

// ReplPurity keeps the replication transport volatile. internal/repl owns
// the feed ring, the backlog, and the PSYNC wire protocol — all DRAM and
// socket state that is rebuilt from scratch on restart. Durability crossings
// are the embedder's alone: the server stamps the replication offset into
// the checkpoint image header through the CheckpointOffset hook, under the
// same quiesce that makes the image itself consistent. A pmem.Region
// mutation from inside repl would be a second, unaudited durability path —
// an offset or entry write that crash-injection sweeps and the persistorder
// analyzer never see, and whose recovery story nobody wrote. Reads are not
// reported: inspecting a region (image headers during bootstrap) does not
// create recovery obligations.
var ReplPurity = &Analyzer{
	Name: "replpurity",
	Doc:  "internal/repl must not mutate pmem regions: offset durability belongs to the embedder's checkpoint",
	Run:  runReplPurity,
}

// replPackages names the package path suffixes replpurity guards. A variable
// so fixture tests can reuse the directory name.
var replPackages = regexp.MustCompile(`(^|/)repl$`)

func runReplPurity(pass *Pass) {
	if !replPackages.MatchString(pass.Pkg.Types.Path()) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m, ok := regionMethod(info, call); ok && regionMutators[m] {
				pass.Reportf(call.Pos(),
					"repl calls pmem.Region.%s: the replication transport is volatile — durable offset stamping belongs to the embedder's checkpoint hook", m)
			}
			return true
		})
	}
}
