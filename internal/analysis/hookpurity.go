package analysis

import (
	"go/ast"
	"go/types"
)

// HookPurity guards the crash-injection machinery against re-entrancy:
// pmem.Config.StoreHook fires inside Region.Store/CAS/Add, so any code
// reachable from a hook that calls back into a Region mutator recurses
// into the hook again (unbounded, if unconditional) or deadlocks against
// the mutation it interrupted. Hooks exist to observe and panic — never to
// mutate.
//
// The analysis finds every StoreHook binding in the package (composite
// literal field or assignment), then walks the same-package call graph
// from the hook function. A path that reaches a direct Region mutator call
// (Store, CAS, Add, WriteBytes, Zero) is reported at the binding with the
// call chain. Calls into other packages are assumed pure (crash-test hooks
// call test helpers and panic), except Region mutator methods themselves.
var HookPurity = &Analyzer{
	Name: "hookpurity",
	Doc:  "StoreHook callbacks must not call back into Region mutators",
	Run:  runHookPurity,
}

var regionMutators = map[string]bool{
	"Store": true, "CAS": true, "Add": true, "WriteBytes": true, "Zero": true,
}

func runHookPurity(pass *Pass) {
	info := pass.Pkg.Info

	// mutatorIn scans one function body (not descending into nested
	// literals, which are separate values with separate reachability) for a
	// direct Region mutator call and for same-package callees.
	type bodyFacts struct {
		mutator *ast.CallExpr // first direct mutator call, if any
		method  string
		callees []*types.Func
	}
	scan := func(body *ast.BlockStmt) bodyFacts {
		var bf bodyFacts
		inspectShallow(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m, ok := regionMethod(info, call); ok && regionMutators[m] {
				if bf.mutator == nil {
					bf.mutator = call
					bf.method = m
				}
				return true
			}
			var obj types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				obj = info.Uses[fun]
			case *ast.SelectorExpr:
				obj = info.Uses[fun.Sel]
			}
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() == pass.Pkg.Types {
				bf.callees = append(bf.callees, fn)
			}
			return true
		})
		return bf
	}

	// Index every declared function's facts.
	decls := map[*types.Func]bodyFacts{}
	for _, f := range pass.Pkg.Syntax {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = scan(fd.Body)
			}
		}
	}

	// reaches walks the call graph from a set of facts, returning the chain
	// of function names down to a mutator call, or nil.
	var reaches func(bf bodyFacts, seen map[*types.Func]bool) []string
	reaches = func(bf bodyFacts, seen map[*types.Func]bool) []string {
		if bf.mutator != nil {
			return []string{"Region." + bf.method}
		}
		for _, fn := range bf.callees {
			if seen[fn] {
				continue
			}
			seen[fn] = true
			cf, ok := decls[fn]
			if !ok {
				continue
			}
			if chain := reaches(cf, seen); chain != nil {
				return append([]string{fn.Name()}, chain...)
			}
		}
		return nil
	}

	report := func(bindPos ast.Node, hook ast.Expr) {
		var bf bodyFacts
		switch h := hook.(type) {
		case *ast.FuncLit:
			bf = scan(h.Body)
		case *ast.Ident, *ast.SelectorExpr:
			var obj types.Object
			if id, ok := h.(*ast.Ident); ok {
				obj = info.Uses[id]
			} else {
				obj = info.Uses[h.(*ast.SelectorExpr).Sel]
			}
			fn, ok := obj.(*types.Func)
			if !ok {
				return
			}
			df, ok := decls[fn]
			if !ok {
				return
			}
			bf = df
		default:
			return
		}
		if chain := reaches(bf, map[*types.Func]bool{}); chain != nil {
			path := "hook"
			for _, c := range chain {
				path += " -> " + c
			}
			pass.Reportf(bindPos.Pos(),
				"StoreHook reaches a Region mutator (%s): the hook fires inside Store/CAS/Add, so mutating re-enters the hook (recursion) or tears the interrupted mutation", path)
		}
	}

	// isStoreHookField reports whether the selected/keyed field is the
	// StoreHook field of a struct declared in a package named pmem.
	isStoreHookObj := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		return ok && v.Name() == "StoreHook" && v.Pkg() != nil && v.Pkg().Name() == "pmem"
	}

	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || key.Name != "StoreHook" {
						continue
					}
					if obj, ok := info.Uses[key]; ok && isStoreHookObj(obj) {
						report(kv, kv.Value)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "StoreHook" || i >= len(n.Rhs) {
						continue
					}
					if obj, ok := info.Uses[sel.Sel]; ok && isStoreHookObj(obj) {
						report(n, n.Rhs[i])
					}
				}
			}
			return true
		})
	}
}
