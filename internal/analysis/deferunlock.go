package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// DeferUnlock enforces the serving layer's panic-safe lock discipline (the
// PR 4 review class): in the guarded packages (internal/server,
// internal/kvstore, internal/obs), every mutex acquisition — stripe locks,
// execMu, shard and index mutexes, the observability rings' mutexes — must
// be released on panic-unwind paths, not just on the straight line. An acquisition is compliant when, in the same
// function, one of these holds:
//
//   - defer X.Unlock() / defer X.RUnlock() on the same receiver expression;
//   - X is passed to a recognized unlocking helper: a same-package function
//     that defer-releases the corresponding parameter (invokeUnlocking,
//     invokeStripedUnlocking) — either the parameter itself or a field path
//     through it (a helper taking the shard and deferring
//     sh.locks.Exec.RUnlock() releases its caller's sh.locks.Exec);
//   - the acquisition came from an acquisition helper (a function whose
//     name starts with "lock", e.g. lockStripes) and the helper's first
//     argument is later released via a deferred call to an "unlock"-named
//     function, or handed to an unlocking helper.
//
// Test files are exempt: a panicking test fails its own process, and test
// harnesses intentionally poke locks in ways production code must not.
var DeferUnlock = &Analyzer{
	Name: "deferunlock",
	Doc:  "guarded mutexes must be released via defer or a recognized unlocking helper",
	Run:  runDeferUnlock,
}

// guardedLockPackages names the package path suffixes deferunlock guards.
// A variable so fixture tests can reuse directory names.
var guardedLockPackages = regexp.MustCompile(`(^|/)(server|kvstore|obs)$`)

var unlockNamed = regexp.MustCompile(`(?i)unlock`)
var lockHelperNamed = regexp.MustCompile(`^lock|^Lock`)

func runDeferUnlock(pass *Pass) {
	if !guardedLockPackages.MatchString(pass.Pkg.Types.Path()) {
		return
	}
	info := pass.Pkg.Info
	fset := pass.Pkg.Fset

	// Pass 1 over the package: classify each declared function's parameters
	// as "defer-released" — the function contains defer p.Unlock()/RUnlock()
	// or a deferred/direct hand-off of p into an unlock-named call. One
	// fixpoint round is enough for the real helpers (invokeStripedUnlocking
	// defers unlockStripes(stripes)).
	type funcInfo struct {
		decl *ast.FuncDecl
		// released maps a parameter index to the selector suffixes the
		// function defer-releases through it: "" for defer p.Unlock(), and
		// ".locks.Exec" for defer p.locks.Exec.RUnlock() — the sharded
		// dispatch helpers release their shard argument's lock block by
		// field path, and call sites get credit for exactly that path.
		released map[int][]string
		// acqHelper marks an acquisition primitive: a function whose name
		// starts with "lock" and whose body takes mutex locks (lockStripes).
		// Its internal Lock calls are exempt; its call sites must pair the
		// first argument with a deferred unlock instead.
		acqHelper bool
	}
	funcs := make(map[*types.Func]*funcInfo)
	for _, f := range pass.Pkg.Syntax {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			funcs[obj] = &funcInfo{decl: fd, released: map[int][]string{}}
		}
	}
	paramIndex := func(fd *ast.FuncDecl, id *ast.Ident) int {
		obj := info.Uses[id]
		if obj == nil {
			return -1
		}
		i := 0
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if info.Defs[name] == obj {
					return i
				}
				i++
			}
		}
		return -1
	}
	for _, fi := range funcs {
		fd := fi.decl
		inspectShallow(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && lockHelperNamed.MatchString(fd.Name.Name) {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") &&
					isSyncMutex(info.Types[sel.X].Type) {
					fi.acqHelper = true
				}
			}
			def, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			call := def.Call
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") {
				if id, suffix, ok := rootSelector(sel.X); ok {
					if i := paramIndex(fd, id); i >= 0 {
						fi.released[i] = append(fi.released[i], suffix)
					}
				}
				return true
			}
			// defer unlockSomething(..., p, ...)
			if calleeName(call) != "" && unlockNamed.MatchString(calleeName(call)) {
				for _, a := range call.Args {
					if id, ok := a.(*ast.Ident); ok {
						if i := paramIndex(fd, id); i >= 0 {
							fi.released[i] = append(fi.released[i], "")
						}
					}
				}
			}
			return true
		})
	}
	// calleeInfo resolves a call to a same-package declared function.
	calleeInfo := func(call *ast.CallExpr) *funcInfo {
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			obj = info.Uses[fun]
		case *ast.SelectorExpr:
			obj = info.Uses[fun.Sel]
		}
		fn, ok := obj.(*types.Func)
		if !ok {
			return nil
		}
		return funcs[fn]
	}

	// Pass 2: check every acquisition site.
	for _, f := range pass.Pkg.Syntax {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		funcScopes(f, func(name string, body *ast.BlockStmt) {
			isAcqHelper := lockHelperNamed.MatchString(name)

			type acquisition struct {
				call *ast.CallExpr
				expr string // normalized receiver (or helper-arg) text
				need string // Unlock or RUnlock
				kind string // for the message
			}
			var acqs []acquisition
			released := map[string]map[string]bool{} // expr -> releases seen

			addRelease := func(expr, kind string) {
				m := released[expr]
				if m == nil {
					m = map[string]bool{}
					released[expr] = m
				}
				m[kind] = true
			}

			inspectShallow(body, func(n ast.Node) bool {
				if def, ok := n.(*ast.DeferStmt); ok {
					call := def.Call
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
						(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") &&
						isSyncMutex(info.Types[sel.X].Type) {
						addRelease(exprText(fset, sel.X), sel.Sel.Name)
					}
					if name := calleeName(call); name != "" && unlockNamed.MatchString(name) {
						for _, a := range call.Args {
							t := exprText(fset, a)
							addRelease(t, "Unlock")
							addRelease(t, "RUnlock")
						}
					}
					// Deferred acquisitions (cmdSave's re-RLock balancing an
					// upstream defer) are not acquisitions of this scope.
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") &&
					isSyncMutex(info.Types[sel.X].Type) {
					if !isAcqHelper {
						need := "Unlock"
						if sel.Sel.Name == "RLock" {
							need = "RUnlock"
						}
						acqs = append(acqs, acquisition{
							call: call,
							expr: exprText(fset, sel.X),
							need: need,
							kind: sel.Sel.Name,
						})
					}
					return true
				}
				// Hand-off into an unlocking helper, or through an
				// acquisition helper (lockStripes(stripes)).
				if ci := calleeInfo(call); ci != nil {
					for i, a := range call.Args {
						for _, suffix := range ci.released[i] {
							t := exprText(fset, a) + suffix
							addRelease(t, "Unlock")
							addRelease(t, "RUnlock")
						}
					}
					if ci.acqHelper && len(call.Args) > 0 {
						acqs = append(acqs, acquisition{
							call: call,
							expr: exprText(fset, call.Args[0]),
							need: "Unlock",
							kind: lastNamePart(calleeName(call)),
						})
					}
				}
				return true
			})

			for _, a := range acqs {
				if released[a.expr][a.need] {
					continue
				}
				pass.Reportf(a.call.Pos(),
					"%s of %s in %s is not released via defer or a recognized unlocking helper: a panic on this path leaks the lock (PR 4 class); release it with defer or annotate //pmemvet:ignore <reason>",
					a.kind, a.expr, name)
			}
		})
	}
}

// rootSelector resolves a plain selector chain to its base identifier and
// the remaining path ("sh.locks.Exec" -> sh, ".locks.Exec"). Anything other
// than idents and field selections (indexing, calls) fails the match: the
// suffix must be a stable path for call-site credit to be sound.
func rootSelector(e ast.Expr) (*ast.Ident, string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e, "", true
	case *ast.SelectorExpr:
		id, suffix, ok := rootSelector(e.X)
		if !ok {
			return nil, "", false
		}
		return id, suffix + "." + e.Sel.Name, true
	}
	return nil, "", false
}

// calleeName renders the called function's bare name ("invokeUnlocking",
// "s.lockStripes" -> "s.lockStripes").
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return ""
}

func lastNamePart(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}
