package dstruct

import (
	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// Tree is a persistent version of the Natarajan–Mittal lock-free external
// binary search tree (PPoPP 2014), the structure of the paper's second
// recovery experiment (Fig. 6b).
//
// It is an external tree: all data lives in leaves; internal nodes route.
// Synchronization is edge-based: child-pointer words carry a FLAG bit (the
// edge below is being deleted) and a TAG bit (the edge must not grow), and
// all updates are CASes on edge words. Edges store raw block offsets plus
// mark bits — a nonstandard pointer representation that conservative GC
// cannot trace, so the tree requires its filter function for recovery
// (§4.5.1).
//
// Memory reclamation uses the EBR limbo lists. Under chains of concurrent
// conflicting deletes the splice can unlink helper-flagged internal nodes
// that no thread retires; in the persistent setting those are reclaimed by
// the next recovery GC — the paper's safety net for exactly this kind of
// transient leak.
type Tree struct {
	a alloc.Allocator
	r *pmem.Region
	// rootR is the offset of sentinel internal node R (the persistent
	// root); S is R's left child.
	rootR uint64
	rootS uint64

	ebr *EBR
}

// Sentinel keys: all user keys must be below Inf0.
const (
	Inf0 = ^uint64(0) - 2
	Inf1 = ^uint64(0) - 1
	Inf2 = ^uint64(0)
)

// Node layout (32 bytes): key, left edge, right edge, value.
const (
	treeNodeSize = 32
	nOffKey      = 0
	nOffLeft     = 8
	nOffRight    = 16
	nOffValue    = 24
)

// Edge mark bits. Offsets are 8-aligned, so the low bits are free.
const (
	edgeFlag = 1 // the leaf below this edge is being deleted
	edgeTag  = 2 // this edge must not be grown
	edgeBits = edgeFlag | edgeTag
)

func eAddr(v uint64) uint64  { return v &^ edgeBits }
func eFlagged(v uint64) bool { return v&edgeFlag != 0 }
func eTagged(v uint64) bool  { return v&edgeTag != 0 }

type seekRec struct {
	ancestor, successor, parent, leaf uint64
}

// NewTree builds the sentinel skeleton and returns the tree plus the offset
// of R for root registration.
func NewTree(a alloc.Allocator, h alloc.Handle) (*Tree, uint64) {
	r := a.Region()
	newNode := func(key, left, right, value uint64) uint64 {
		off := h.Malloc(treeNodeSize)
		if off == 0 {
			panic("dstruct: out of memory creating tree")
		}
		r.Store(off+nOffKey, key)
		r.Store(off+nOffLeft, left)
		r.Store(off+nOffRight, right)
		r.Store(off+nOffValue, value)
		r.FlushRange(off, treeNodeSize)
		return off
	}
	l0 := newNode(Inf0, 0, 0, 0)
	l1 := newNode(Inf1, 0, 0, 0)
	l2 := newNode(Inf2, 0, 0, 0)
	s := newNode(Inf1, l0, l1, 0)
	rt := newNode(Inf2, s, l2, 0)
	r.Fence()
	return &Tree{a: a, r: r, rootR: rt, rootS: s, ebr: NewEBR()}, rt
}

// AttachTree re-attaches to a tree whose R sentinel is at rootR.
func AttachTree(a alloc.Allocator, rootR uint64) *Tree {
	r := a.Region()
	return &Tree{
		a:     a,
		r:     r,
		rootR: rootR,
		rootS: eAddr(r.Load(rootR + nOffLeft)),
		ebr:   NewEBR(),
	}
}

// Guard creates an EBR guard for a goroutine operating on the tree.
func (t *Tree) Guard(h alloc.Handle) *Guard { return t.ebr.Guard(h) }

func (t *Tree) key(n uint64) uint64 { return t.r.Load(n + nOffKey) }

// edgeFor returns the address of n's child edge on key's search path.
func (t *Tree) edgeFor(n, key uint64) uint64 {
	if key < t.key(n) {
		return n + nOffLeft
	}
	return n + nOffRight
}

// seek descends from the sentinels, maintaining the last untagged edge
// (ancestor→successor) above the access path, per the NM algorithm.
func (t *Tree) seek(key uint64) seekRec {
	r := t.r
	s := seekRec{ancestor: t.rootR, successor: t.rootS, parent: t.rootS}
	parentField := r.Load(t.rootS + nOffLeft)
	s.leaf = eAddr(parentField)
	currentField := r.Load(t.edgeFor(s.leaf, key))
	current := eAddr(currentField)
	for current != 0 {
		if !eTagged(parentField) {
			s.ancestor = s.parent
			s.successor = s.leaf
		}
		s.parent = s.leaf
		s.leaf = current
		parentField = currentField
		currentField = r.Load(t.edgeFor(current, key))
		current = eAddr(currentField)
	}
	return s
}

// Lookup returns the value stored under key.
func (t *Tree) Lookup(key uint64) (uint64, bool) {
	s := t.seek(key)
	if t.key(s.leaf) == key {
		return t.r.Load(s.leaf + nOffValue), true
	}
	return 0, false
}

// Insert adds key→value; it returns false if the key already exists (or
// ok=false if the heap is exhausted).
func (t *Tree) Insert(g *Guard, key, value uint64) (inserted, ok bool) {
	if key >= Inf0 {
		panic("dstruct: key collides with tree sentinels")
	}
	r := t.r
	h := g.h
	g.Enter()
	defer g.Exit()
	for {
		s := t.seek(key)
		leafKey := t.key(s.leaf)
		if leafKey == key {
			return false, true
		}
		newLeaf := h.Malloc(treeNodeSize)
		newInternal := h.Malloc(treeNodeSize)
		if newLeaf == 0 || newInternal == 0 {
			if newLeaf != 0 {
				h.Free(newLeaf)
			}
			return false, false
		}
		r.Store(newLeaf+nOffKey, key)
		r.Store(newLeaf+nOffLeft, 0)
		r.Store(newLeaf+nOffRight, 0)
		r.Store(newLeaf+nOffValue, value)
		ik, left, right := leafKey, s.leaf, newLeaf
		if key < leafKey {
			left, right = newLeaf, s.leaf
		} else {
			ik = key
		}
		r.Store(newInternal+nOffKey, ik)
		r.Store(newInternal+nOffLeft, left)
		r.Store(newInternal+nOffRight, right)
		r.Store(newInternal+nOffValue, 0)
		r.FlushRange(newLeaf, treeNodeSize)
		r.FlushRange(newInternal, treeNodeSize)
		r.Fence()

		edge := t.edgeFor(s.parent, key)
		if r.CAS(edge, s.leaf, newInternal) { // expects a clean edge
			r.Flush(edge)
			r.Fence()
			return true, true
		}
		// Failed: undo the speculative nodes; help if the edge carries
		// marks for our leaf.
		h.Free(newLeaf)
		h.Free(newInternal)
		cur := r.Load(edge)
		if eAddr(cur) == s.leaf && cur&edgeBits != 0 {
			t.cleanup(g, key, s)
		}
	}
}

// Delete removes key, returning whether it was present.
func (t *Tree) Delete(g *Guard, key uint64) bool {
	r := t.r
	g.Enter()
	defer g.Exit()
	injecting := true
	var leaf uint64
	for {
		s := t.seek(key)
		if injecting {
			if t.key(s.leaf) != key {
				return false
			}
			leaf = s.leaf
			edge := t.edgeFor(s.parent, key)
			cur := r.Load(edge)
			if eAddr(cur) != leaf {
				continue
			}
			if cur&edgeBits != 0 {
				t.cleanup(g, key, s)
				continue
			}
			if r.CAS(edge, leaf, leaf|edgeFlag) {
				r.Flush(edge)
				r.Fence()
				injecting = false
				if t.cleanup(g, key, s) {
					return true
				}
			} else {
				cur = r.Load(edge)
				if eAddr(cur) == leaf && cur&edgeBits != 0 {
					t.cleanup(g, key, s)
				}
			}
		} else {
			if s.leaf != leaf {
				return true // another thread completed the removal
			}
			if t.cleanup(g, key, s) {
				return true
			}
		}
	}
}

// cleanup splices a flagged leaf (and its parent) out of the tree: tag the
// sibling edge so it cannot grow, then swing the ancestor's edge from the
// successor to the sibling. Returns true if this call performed the splice.
func (t *Tree) cleanup(g *Guard, key uint64, s seekRec) bool {
	r := t.r
	var childAddr, sibAddr uint64
	if key < t.key(s.parent) {
		childAddr = s.parent + nOffLeft
		sibAddr = s.parent + nOffRight
	} else {
		childAddr = s.parent + nOffRight
		sibAddr = s.parent + nOffLeft
	}
	// If the child edge carries the flag, our leaf is the deletion target
	// and the sibling survives; otherwise we are helping a deletion that
	// flagged the other edge, and the survivor is on the child side.
	flaggedAddr, survivorAddr := childAddr, sibAddr
	if !eFlagged(r.Load(childAddr)) {
		flaggedAddr, survivorAddr = sibAddr, childAddr
	}
	// Tag the survivor edge so it cannot grow (preserving its flag bit).
	for {
		v := r.Load(survivorAddr)
		if eTagged(v) {
			break
		}
		if r.CAS(survivorAddr, v, v|edgeTag) {
			r.Flush(survivorAddr)
			break
		}
	}
	survivor := r.Load(survivorAddr)
	newVal := eAddr(survivor) | (survivor & edgeFlag)
	ancEdge := t.edgeFor(s.ancestor, key)
	if r.CAS(ancEdge, s.successor, newVal) { // expects a clean edge
		r.Flush(ancEdge)
		r.Fence()
		// Retire the spliced-out parent and the flagged leaf.
		g.Retire(eAddr(r.Load(flaggedAddr)))
		g.Retire(s.parent)
		return true
	}
	return false
}

// Count walks the leaves in order (quiescent use only) and reports how many
// user keys are present.
func (t *Tree) Count() int {
	n := 0
	t.Ascend(func(k, v uint64) bool { n++; return true })
	return n
}

// Ascend visits user leaves in key order (quiescent use only); fn returning
// false stops the walk.
func (t *Tree) Ascend(fn func(key, value uint64) bool) {
	var walk func(n uint64) bool
	r := t.r
	walk = func(n uint64) bool {
		if n == 0 {
			return true
		}
		l := eAddr(r.Load(n + nOffLeft))
		rr := eAddr(r.Load(n + nOffRight))
		if l == 0 && rr == 0 { // leaf
			k := t.key(n)
			if k < Inf0 {
				return fn(k, r.Load(n+nOffValue))
			}
			return true
		}
		return walk(l) && walk(rr)
	}
	walk(t.rootR)
}

// Filter returns the GC filter for the tree: it strips the edge mark bits
// and visits both children, making recovery precise despite the nonstandard
// pointer representation.
func (t *Tree) Filter() ralloc.Filter {
	r := t.r
	var f ralloc.Filter
	f = func(g *ralloc.GC, off uint64) {
		if l := eAddr(r.Load(off + nOffLeft)); l != 0 {
			g.Visit(l, f)
		}
		if rr := eAddr(r.Load(off + nOffRight)); rr != 0 {
			g.Visit(rr, f)
		}
	}
	return f
}

// TreeFilter rebuilds a tree filter from a bare region, for callers that
// recovered a root offset but have not attached yet.
func TreeFilter(r *pmem.Region) ralloc.Filter {
	var f ralloc.Filter
	f = func(g *ralloc.GC, off uint64) {
		if l := eAddr(r.Load(off + nOffLeft)); l != 0 {
			g.Visit(l, f)
		}
		if rr := eAddr(r.Load(off + nOffRight)); rr != 0 {
			g.Visit(rr, f)
		}
	}
	return f
}
