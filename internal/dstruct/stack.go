package dstruct

import (
	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/ralloc"
)

// Stack is a persistent lock-free Treiber stack, the structure of the
// paper's first recovery experiment (Fig. 6a). Nodes link with off-holders
// (so conservative GC can trace them), but the head word is an ABA-counted
// tagged offset — invisible to conservative tracing, which is why the stack
// ships a filter function for its header.
//
// Durable linearizability: a node is flushed and fenced before the head CAS
// publishes it, and the head is flushed after every successful CAS.
type Stack struct {
	a alloc.Allocator
	r *pmem.Region
	// hdr is the offset of the 16-byte header block; word 0 holds the
	// counter-tagged top-of-stack offset, word 1 the element count hint.
	hdr uint64
}

// Node layout: word 0 = next (off-holder or Nil), word 1 = value.
const stackNodeSize = 16

// NewStack allocates and persists an empty stack, returning it and the
// header offset to be registered as a persistent root.
func NewStack(a alloc.Allocator, h alloc.Handle) (*Stack, uint64) {
	hdr := h.Malloc(stackNodeSize)
	if hdr == 0 {
		panic("dstruct: out of memory creating stack")
	}
	r := a.Region()
	r.Store(hdr, pptr.TagNil)
	r.Store(hdr+8, 0)
	r.FlushRange(hdr, stackNodeSize)
	r.Fence()
	return &Stack{a: a, r: r, hdr: hdr}, hdr
}

// AttachStack re-attaches to a stack whose header block is at hdr (e.g.
// after recovery, via GetRoot).
func AttachStack(a alloc.Allocator, hdr uint64) *Stack {
	return &Stack{a: a, r: a.Region(), hdr: hdr}
}

// Push adds value to the stack.
func (s *Stack) Push(h alloc.Handle, value uint64) bool {
	n := h.Malloc(stackNodeSize)
	if n == 0 {
		return false
	}
	r := s.r
	r.Store(n+8, value)
	for {
		old := r.Load(s.hdr)
		ctr, top := pptr.UnpackTag(old)
		if top == 0 {
			r.Store(n, pptr.Nil)
		} else {
			r.Store(n, pptr.Pack(n, top))
		}
		r.FlushRange(n, stackNodeSize)
		r.Fence()
		if r.CAS(s.hdr, old, pptr.PackTag(ctr+1, n)) {
			r.Flush(s.hdr)
			r.Fence()
			return true
		}
	}
}

// Pop removes and returns the most recently pushed value. The popped node is
// freed immediately: the ABA counter in the head word makes that safe (a
// racing Pop that read the stale head will fail its CAS), and reading a
// freed node's words is harmless in the offset world.
func (s *Stack) Pop(h alloc.Handle) (uint64, bool) {
	r := s.r
	for {
		old := r.Load(s.hdr)
		ctr, top := pptr.UnpackTag(old)
		if top == 0 {
			return 0, false
		}
		next, _ := pptr.Unpack(top, r.Load(top))
		value := r.Load(top + 8)
		var newHead uint64
		if next == 0 {
			newHead = pptr.PackTag(ctr+1, 0)
		} else {
			newHead = pptr.PackTag(ctr+1, next)
		}
		if r.CAS(s.hdr, old, newHead) {
			r.Flush(s.hdr)
			r.Fence()
			h.Free(top)
			return value, true
		}
	}
}

// Len walks the stack (quiescent use only).
func (s *Stack) Len() int {
	n := 0
	_, off := pptr.UnpackTag(s.r.Load(s.hdr))
	for off != 0 {
		n++
		off, _ = pptr.Unpack(off, s.r.Load(off))
	}
	return n
}

// Filter returns the GC filter for the stack's header block: it decodes the
// tagged head and visits the top node; node links are plain off-holders, so
// the nodes themselves trace conservatively — but we hand GC a precise node
// filter anyway, which skips the value word (faster, and immune to values
// that masquerade as pointers).
func (s *Stack) Filter() ralloc.Filter {
	r := s.r
	var nodeFilter ralloc.Filter
	nodeFilter = func(g *ralloc.GC, off uint64) {
		if next, ok := pptr.Unpack(off, r.Load(off)); ok {
			g.Visit(next, nodeFilter)
		}
	}
	return func(g *ralloc.GC, off uint64) {
		_, top := pptr.UnpackTag(r.Load(off))
		if top != 0 {
			g.Visit(top, nodeFilter)
		}
	}
}
