package dstruct

import (
	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// RBTree is a persistent red-black tree (left-leaning variant), the
// "database" structure of the STAMP Vacation application (§6.3: "whose
// internal database is implemented as a set of red-black trees").
//
// Vacation runs operations inside failure-atomic transactions guarded by a
// per-table lock, so the tree itself is sequential; the persistent-memory
// discipline is: every node modified by an operation is flushed before the
// operation's single fence. Links are raw offsets, so the tree provides a
// filter function for recovery.
type RBTree struct {
	a alloc.Allocator
	r *pmem.Region
	// hdr block: word 0 = root offset, word 1 = count.
	hdr uint64

	dirty []uint64 // node offsets touched by the current operation
}

// Node layout (40 bytes): key, value, left, right, color.
const (
	rbNodeSize = 40
	rbKey      = 0
	rbVal      = 8
	rbLeft     = 16
	rbRight    = 24
	rbColor    = 32

	rbRed   = 1
	rbBlack = 0
)

// NewRBTree allocates an empty tree, returning it and the header offset for
// root registration.
func NewRBTree(a alloc.Allocator, h alloc.Handle) (*RBTree, uint64) {
	hdr := h.Malloc(16)
	if hdr == 0 {
		panic("dstruct: out of memory creating rbtree")
	}
	r := a.Region()
	r.Store(hdr, 0)
	r.Store(hdr+8, 0)
	r.FlushRange(hdr, 16)
	r.Fence()
	return &RBTree{a: a, r: r, hdr: hdr}, hdr
}

// AttachRBTree re-attaches to a tree whose header is at hdr.
func AttachRBTree(a alloc.Allocator, hdr uint64) *RBTree {
	return &RBTree{a: a, r: a.Region(), hdr: hdr}
}

func (t *RBTree) touch(n uint64) {
	t.dirty = append(t.dirty, n)
}

func (t *RBTree) flushDirty() {
	for _, n := range t.dirty {
		t.r.FlushRange(n, rbNodeSize)
	}
	t.r.Flush(t.hdr)
	t.r.Fence()
	t.dirty = t.dirty[:0]
}

func (t *RBTree) isRed(n uint64) bool {
	return n != 0 && t.r.Load(n+rbColor) == rbRed
}

func (t *RBTree) rotateLeft(n uint64) uint64 {
	r := t.r
	x := r.Load(n + rbRight)
	r.Store(n+rbRight, r.Load(x+rbLeft))
	r.Store(x+rbLeft, n)
	r.Store(x+rbColor, r.Load(n+rbColor))
	r.Store(n+rbColor, rbRed)
	t.touch(n)
	t.touch(x)
	return x
}

func (t *RBTree) rotateRight(n uint64) uint64 {
	r := t.r
	x := r.Load(n + rbLeft)
	r.Store(n+rbLeft, r.Load(x+rbRight))
	r.Store(x+rbRight, n)
	r.Store(x+rbColor, r.Load(n+rbColor))
	r.Store(n+rbColor, rbRed)
	t.touch(n)
	t.touch(x)
	return x
}

func (t *RBTree) flipColors(n uint64) {
	r := t.r
	flip := func(off uint64) {
		if r.Load(off+rbColor) == rbRed {
			r.Store(off+rbColor, rbBlack)
		} else {
			r.Store(off+rbColor, rbRed)
		}
		t.touch(off)
	}
	flip(n)
	flip(r.Load(n + rbLeft))
	flip(r.Load(n + rbRight))
}

func (t *RBTree) fixUp(n uint64) uint64 {
	r := t.r
	if t.isRed(r.Load(n+rbRight)) && !t.isRed(r.Load(n+rbLeft)) {
		n = t.rotateLeft(n)
	}
	if t.isRed(r.Load(n+rbLeft)) && t.isRed(r.Load(r.Load(n+rbLeft)+rbLeft)) {
		n = t.rotateRight(n)
	}
	if t.isRed(r.Load(n+rbLeft)) && t.isRed(r.Load(n+rbRight)) {
		t.flipColors(n)
	}
	return n
}

// Get returns the value stored under key.
func (t *RBTree) Get(key uint64) (uint64, bool) {
	r := t.r
	n := r.Load(t.hdr)
	for n != 0 {
		k := r.Load(n + rbKey)
		switch {
		case key < k:
			n = r.Load(n + rbLeft)
		case key > k:
			n = r.Load(n + rbRight)
		default:
			return r.Load(n + rbVal), true
		}
	}
	return 0, false
}

// Put inserts or updates key→value. ok=false reports heap exhaustion.
func (t *RBTree) Put(h alloc.Handle, key, value uint64) (ok bool) {
	r := t.r
	root, inserted, ok := t.put(h, r.Load(t.hdr), key, value)
	if !ok {
		t.dirty = t.dirty[:0]
		return false
	}
	r.Store(root+rbColor, rbBlack)
	t.touch(root)
	r.Store(t.hdr, root)
	if inserted {
		//pmemvet:ignore single-writer: RBTree mutation is serialized by the caller's per-tree lock (see the type comment), so the count RMW cannot race
		r.Store(t.hdr+8, r.Load(t.hdr+8)+1)
	}
	t.flushDirty()
	return true
}

func (t *RBTree) put(h alloc.Handle, n, key, value uint64) (root uint64, inserted, ok bool) {
	r := t.r
	if n == 0 {
		n = h.Malloc(rbNodeSize)
		if n == 0 {
			return 0, false, false
		}
		r.Store(n+rbKey, key)
		r.Store(n+rbVal, value)
		r.Store(n+rbLeft, 0)
		r.Store(n+rbRight, 0)
		r.Store(n+rbColor, rbRed)
		t.touch(n)
		return n, true, true
	}
	k := r.Load(n + rbKey)
	switch {
	case key < k:
		child, ins, cok := t.put(h, r.Load(n+rbLeft), key, value)
		if !cok {
			return 0, false, false
		}
		r.Store(n+rbLeft, child)
		t.touch(n)
		inserted = ins
	case key > k:
		child, ins, cok := t.put(h, r.Load(n+rbRight), key, value)
		if !cok {
			return 0, false, false
		}
		r.Store(n+rbRight, child)
		t.touch(n)
		inserted = ins
	default:
		r.Store(n+rbVal, value)
		t.touch(n)
	}
	return t.fixUp(n), inserted, true
}

func (t *RBTree) moveRedLeft(n uint64) uint64 {
	r := t.r
	t.flipColors(n)
	if t.isRed(r.Load(r.Load(n+rbRight) + rbLeft)) {
		//pmemvet:ignore single-writer: rotations run under the caller's per-tree lock; the Load feeds a structural rewrite, not a contended counter
		r.Store(n+rbRight, t.rotateRight(r.Load(n+rbRight)))
		t.touch(n)
		n = t.rotateLeft(n)
		t.flipColors(n)
	}
	return n
}

func (t *RBTree) moveRedRight(n uint64) uint64 {
	r := t.r
	t.flipColors(n)
	if t.isRed(r.Load(r.Load(n+rbLeft) + rbLeft)) {
		n = t.rotateRight(n)
		t.flipColors(n)
	}
	return n
}

func (t *RBTree) minNode(n uint64) uint64 {
	r := t.r
	for r.Load(n+rbLeft) != 0 {
		n = r.Load(n + rbLeft)
	}
	return n
}

func (t *RBTree) deleteMin(h alloc.Handle, n uint64) uint64 {
	r := t.r
	if r.Load(n+rbLeft) == 0 {
		h.Free(n)
		return 0
	}
	if !t.isRed(r.Load(n+rbLeft)) && !t.isRed(r.Load(r.Load(n+rbLeft)+rbLeft)) {
		n = t.moveRedLeft(n)
	}
	//pmemvet:ignore single-writer: deletion rebuilds the spine under the caller's per-tree lock
	r.Store(n+rbLeft, t.deleteMin(h, r.Load(n+rbLeft)))
	t.touch(n)
	return t.fixUp(n)
}

// Delete removes key, reporting whether it was present.
func (t *RBTree) Delete(h alloc.Handle, key uint64) bool {
	r := t.r
	if _, found := t.Get(key); !found {
		return false
	}
	root := t.del(h, r.Load(t.hdr), key)
	if root != 0 {
		r.Store(root+rbColor, rbBlack)
		t.touch(root)
	}
	r.Store(t.hdr, root)
	//pmemvet:ignore single-writer: RBTree mutation is serialized by the caller's per-tree lock, so the count RMW cannot race
	r.Store(t.hdr+8, r.Load(t.hdr+8)-1)
	t.flushDirty()
	return true
}

func (t *RBTree) del(h alloc.Handle, n, key uint64) uint64 {
	r := t.r
	if key < r.Load(n+rbKey) {
		if !t.isRed(r.Load(n+rbLeft)) && !t.isRed(r.Load(r.Load(n+rbLeft)+rbLeft)) {
			n = t.moveRedLeft(n)
		}
		//pmemvet:ignore single-writer: deletion rebuilds the spine under the caller's per-tree lock
		r.Store(n+rbLeft, t.del(h, r.Load(n+rbLeft), key))
		t.touch(n)
	} else {
		if t.isRed(r.Load(n + rbLeft)) {
			n = t.rotateRight(n)
		}
		if key == r.Load(n+rbKey) && r.Load(n+rbRight) == 0 {
			h.Free(n)
			return 0
		}
		if !t.isRed(r.Load(n+rbRight)) && !t.isRed(r.Load(r.Load(n+rbRight)+rbLeft)) {
			n = t.moveRedRight(n)
		}
		if key == r.Load(n+rbKey) {
			m := t.minNode(r.Load(n + rbRight))
			r.Store(n+rbKey, r.Load(m+rbKey))
			r.Store(n+rbVal, r.Load(m+rbVal))
			//pmemvet:ignore single-writer: deletion rebuilds the spine under the caller's per-tree lock
			r.Store(n+rbRight, t.deleteMin(h, r.Load(n+rbRight)))
			t.touch(n)
		} else {
			//pmemvet:ignore single-writer: deletion rebuilds the spine under the caller's per-tree lock
			r.Store(n+rbRight, t.del(h, r.Load(n+rbRight), key))
			t.touch(n)
		}
	}
	return t.fixUp(n)
}

// Len returns the number of keys.
func (t *RBTree) Len() int { return int(t.r.Load(t.hdr + 8)) }

// Ascend visits keys in order; fn returning false stops the walk.
func (t *RBTree) Ascend(fn func(key, value uint64) bool) {
	var walk func(n uint64) bool
	r := t.r
	walk = func(n uint64) bool {
		if n == 0 {
			return true
		}
		if !walk(r.Load(n + rbLeft)) {
			return false
		}
		if !fn(r.Load(n+rbKey), r.Load(n+rbVal)) {
			return false
		}
		return walk(r.Load(n + rbRight))
	}
	walk(r.Load(t.hdr))
}

// CheckInvariants verifies red-black properties (no red right links, no two
// consecutive reds, uniform black height, BST order). For tests.
func (t *RBTree) CheckInvariants() error {
	r := t.r
	var check func(n uint64, lo, hi uint64) (int, error)
	check = func(n uint64, lo, hi uint64) (int, error) {
		if n == 0 {
			return 1, nil
		}
		k := r.Load(n + rbKey)
		if k <= lo && lo != 0 || k >= hi {
			return 0, errRB("BST order violated")
		}
		if t.isRed(r.Load(n + rbRight)) {
			return 0, errRB("red right link")
		}
		if t.isRed(n) && t.isRed(r.Load(n+rbLeft)) {
			return 0, errRB("two consecutive red links")
		}
		lh, err := check(r.Load(n+rbLeft), lo, k)
		if err != nil {
			return 0, err
		}
		rh, err := check(r.Load(n+rbRight), k, hi)
		if err != nil {
			return 0, err
		}
		if lh != rh {
			return 0, errRB("black height mismatch")
		}
		if !t.isRed(n) {
			lh++
		}
		return lh, nil
	}
	_, err := check(r.Load(t.hdr), 0, ^uint64(0))
	return err
}

type errRB string

func (e errRB) Error() string { return "rbtree: " + string(e) }

// Filter returns the GC filter for the tree header; nodes chain through raw
// offsets, so precise tracing needs it.
func (t *RBTree) Filter() ralloc.Filter { return RBTreeFilter(t.r) }

// RBTreeFilter builds the filter from a bare region.
func RBTreeFilter(r *pmem.Region) ralloc.Filter {
	var node ralloc.Filter
	node = func(g *ralloc.GC, off uint64) {
		if l := r.Load(off + rbLeft); l != 0 {
			g.Visit(l, node)
		}
		if rr := r.Load(off + rbRight); rr != 0 {
			g.Visit(rr, node)
		}
	}
	return func(g *ralloc.GC, off uint64) {
		if root := r.Load(off); root != 0 {
			g.Visit(root, node)
		}
	}
}
