package dstruct

import (
	"sync"

	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/ralloc"
)

// HashMap is a persistent chained hash table with byte-string keys and
// values — the storage engine of the memcached-as-a-library application
// (§6.3). Bucket heads and node links are off-holders, so the map is fully
// traceable by conservative GC; a precise filter is provided anyway.
//
// Concurrency uses striped locks (transient, like memcached's): writers to
// the same bucket stripe serialize; updates are durably linearized by
// flushing the new node before the bucket link swing and flushing the link
// after.
type HashMap struct {
	a alloc.Allocator
	r *pmem.Region
	// hdr block: word 0 = bucket-array block offset, word 1 = nBuckets,
	// word 2 = count.
	hdr     uint64
	buckets uint64
	nB      uint64

	stripes [64]sync.Mutex
}

// Node layout: word 0 = next (off-holder), word 1 = tag<<61 | klen<<32 |
// vlen, word 2 = expireAt (unix milliseconds; 0 = immortal), then key bytes,
// then value bytes (each padded to 8). The expiry stamp lives in the same
// allocation as the record, so one GC pass over the chains recovers both the
// data and the expiration metadata — there is no separate TTL log to replay.
//
// The type tag occupies the top three bits of the lengths word, which were
// always zero before typed objects existed: a heap written by the all-string
// code (heapVersion 3) therefore reads back as TagString records verbatim,
// which is what lets v3 images attach under v4 without a migration pass. For
// TagHash and TagList records the "value" is a fixed 8-byte payload holding
// one off-holder to the secondary structure's header (object.go); vlen is 8.
const hmNodeHdr = 24

// Value type tags (node lens word, bits 63..61).
const (
	// TagString marks a plain byte-string record — the zero value, so every
	// pre-object record is a string by construction.
	TagString = uint8(0)
	// TagHash marks a record whose payload points at a persistent field
	// hash (hashObj in object.go).
	TagHash = uint8(1)
	// TagList marks a record whose payload points at a persistent
	// doubly-linked deque (listObj in object.go).
	TagList = uint8(2)

	tagShift = 61
	// klenMask bounds key length to 29 bits (512 MB) now that the tag
	// borrows the top of the old 32-bit key-length field.
	klenMask = (uint64(1) << 29) - 1
)

// MaxKeyLen is the longest key a record can carry (the tag stole the top
// bits of the key-length field).
const MaxKeyLen = int(klenMask)

func pad8(n uint64) uint64 { return (n + 7) &^ 7 }

func packLens(tag uint8, klen, vlen uint64) uint64 {
	return uint64(tag)<<tagShift | klen<<32 | vlen
}

func unpackLens(lens uint64) (tag uint8, klen, vlen uint64) {
	return uint8(lens >> tagShift), lens >> 32 & klenMask, lens & 0xFFFFFFFF
}

// NewHashMap allocates a map with nBuckets (rounded up to a power of two),
// returning it and the header offset for root registration.
func NewHashMap(a alloc.Allocator, h alloc.Handle, nBuckets int) (*HashMap, uint64) {
	n := uint64(1)
	for n < uint64(nBuckets) {
		n <<= 1
	}
	hdr := h.Malloc(24)
	arr := h.Malloc(n * 8)
	if hdr == 0 || arr == 0 {
		panic("dstruct: out of memory creating hashmap")
	}
	r := a.Region()
	r.Zero(arr, n*8)
	r.FlushRange(arr, n*8)
	r.Store(hdr, pptr.Pack(hdr, arr))
	r.Store(hdr+8, n)
	r.Store(hdr+16, 0)
	r.FlushRange(hdr, 24)
	r.Fence()
	return &HashMap{a: a, r: r, hdr: hdr, buckets: arr, nB: n}, hdr
}

// AttachHashMap re-attaches to a map whose header is at hdr.
func AttachHashMap(a alloc.Allocator, hdr uint64) *HashMap {
	r := a.Region()
	arr, ok := pptr.Unpack(hdr, r.Load(hdr))
	if !ok {
		panic("dstruct: hashmap header corrupt")
	}
	return &HashMap{a: a, r: r, hdr: hdr, buckets: arr, nB: r.Load(hdr + 8)}
}

// fnv1a hashes key bytes.
func fnv1a(key []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range key {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h
}

func (m *HashMap) slot(key []byte) (bucketOff uint64, stripe *sync.Mutex) {
	h := fnv1a(key)
	i := h & (m.nB - 1)
	// The stripe is derived from the bucket index, not the full hash: with
	// fewer than 64 buckets, two keys in the same bucket could otherwise
	// hash to different stripes and mutate the same chain concurrently.
	return m.buckets + i*8, &m.stripes[i%uint64(len(m.stripes))]
}

// stripeFor returns the lock guarding bucket i's chain.
func (m *HashMap) stripeFor(i uint64) *sync.Mutex {
	return &m.stripes[i%uint64(len(m.stripes))]
}

// nodeKey reads the key bytes of the node at off.
func (m *HashMap) nodeKey(off uint64) []byte {
	_, klen, _ := unpackLens(m.r.Load(off + 8))
	key := make([]byte, klen)
	m.r.ReadBytes(off+hmNodeHdr, key)
	return key
}

func (m *HashMap) nodeValue(off uint64) []byte {
	_, klen, vlen := unpackLens(m.r.Load(off + 8))
	val := make([]byte, vlen)
	m.r.ReadBytes(off+hmNodeHdr+pad8(klen), val)
	return val
}

// nodeTag reads the node's type tag.
func (m *HashMap) nodeTag(off uint64) uint8 { return uint8(m.r.Load(off+8) >> tagShift) }

// nodePayloadOff is the byte offset of the node's value area (for object
// records: the off-holder to the secondary structure header).
func (m *HashMap) nodePayloadOff(off uint64) uint64 {
	_, klen, _ := unpackLens(m.r.Load(off + 8))
	return off + hmNodeHdr + pad8(klen)
}

// nodeObjHdr resolves an object node's secondary-structure header offset.
func (m *HashMap) nodeObjHdr(off uint64) (uint64, bool) {
	p := m.nodePayloadOff(off)
	return pptr.Unpack(p, m.r.Load(p))
}

// nodeExpire reads the node's expiry stamp (0 = immortal).
func (m *HashMap) nodeExpire(off uint64) uint64 { return m.r.Load(off + 16) }

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Get returns the value stored under key.
func (m *HashMap) Get(key []byte) ([]byte, bool) {
	v, _, ok := m.GetExpire(key)
	return v, ok
}

// GetExpire returns the value stored under key together with its expiry
// stamp (unix milliseconds; 0 = immortal). The map itself never interprets
// the stamp — lazy-expiry policy lives in the caller (kvstore) — so a record
// past its deadline is still returned here. For object records the returned
// value is the raw 8-byte payload; callers that must distinguish use
// GetTyped.
func (m *HashMap) GetExpire(key []byte) (value []byte, expireAt uint64, ok bool) {
	v, at, _, ok := m.GetTyped(key)
	return v, at, ok
}

// GetTyped is GetExpire returning the record's type tag too — the kvstore
// read path branches on it (string fast path versus WRONGTYPE) with no
// extra loads: the tag shares the lengths word every read decodes anyway.
func (m *HashMap) GetTyped(key []byte) (value []byte, expireAt uint64, tag uint8, ok bool) {
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	off, _ := pptr.Unpack(bucket, m.r.Load(bucket))
	for off != 0 {
		if bytesEqual(m.nodeKey(off), key) {
			return m.nodeValue(off), m.nodeExpire(off), m.nodeTag(off), true
		}
		off, _ = pptr.Unpack(off, m.r.Load(off))
	}
	return nil, 0, TagString, false
}

// Set inserts or replaces key→value with no expiry (replacing also clears
// any previous expiry, Redis SET-style). See SetExpire.
func (m *HashMap) Set(h alloc.Handle, key, value []byte) bool {
	return m.SetExpire(h, key, value, 0)
}

// SetExpire inserts or replaces key→value with an expiry stamp (unix
// milliseconds; 0 = immortal). A replace allocates the new node, swings the
// links durably, and frees the old node — the alloc/free churn that makes
// YCSB workload A allocator-bound. The stamp is flushed with the rest of the
// node before the link swing, so a record is never durably linked without
// its expiration metadata. ok=false reports exhaustion.
func (m *HashMap) SetExpire(h alloc.Handle, key, value []byte, expireAt uint64) bool {
	if len(key) > MaxKeyLen {
		return false
	}
	r := m.r
	size := hmNodeHdr + pad8(uint64(len(key))) + pad8(uint64(len(value)))
	n := h.Malloc(size)
	if n == 0 {
		return false
	}
	r.Store(n+8, packLens(TagString, uint64(len(key)), uint64(len(value))))
	r.Store(n+16, expireAt)
	r.WriteBytes(n+hmNodeHdr, key)
	r.WriteBytes(n+hmNodeHdr+pad8(uint64(len(key))), value)

	bucket, mu := m.slot(key)
	mu.Lock()
	// Find predecessor of any existing node for key.
	prev := bucket
	off, _ := pptr.Unpack(bucket, r.Load(bucket))
	var old uint64
	for off != 0 {
		if bytesEqual(m.nodeKey(off), key) {
			old = off
			break
		}
		prev = off
		off, _ = pptr.Unpack(off, r.Load(off))
	}
	// New node takes over the successor of the node it replaces (or the
	// whole chain on fresh insert).
	var next uint64
	if old != 0 {
		next, _ = pptr.Unpack(old, r.Load(old))
	} else {
		next, _ = pptr.Unpack(bucket, r.Load(bucket))
		prev = bucket
	}
	if next == 0 {
		r.Store(n, pptr.Nil)
	} else {
		r.Store(n, pptr.Pack(n, next))
	}
	r.FlushRange(n, size)
	r.Fence()
	//pmem:publish
	r.Store(prev, pptr.Pack(prev, n))
	r.Flush(prev)
	r.Fence()
	if old != 0 {
		// A SET over an object record (Redis semantics: SET overwrites any
		// type) must release the whole secondary structure, not just the
		// top node — the old graph became unreachable at the link swing, so
		// freeing it afterwards is crash-safe (a crash mid-free leaves
		// unreachable blocks for recovery GC).
		m.freeObjectGraph(h, old)
		h.Free(old)
	} else {
		// Add, not load+store: the count word is shared across stripes.
		r.Add(m.hdr+16, 1)
		r.Flush(m.hdr + 16)
	}
	mu.Unlock()
	return true
}

// UpdateExpire atomically rewrites key's expiry stamp in place (0 clears
// it), returning the previous stamp and whether the record was found *live*:
// a record already past its deadline relative to now is treated as missing,
// so an EXPIRE/PERSIST racing lazy expiry can never resurrect a dead key.
// The stamp is a single word, so a crash leaves either the old or the new
// deadline — never a torn one — and the word is fenced before return, making
// an acknowledged expiry durable.
func (m *HashMap) UpdateExpire(key []byte, expireAt, now uint64) (prev uint64, ok bool) {
	r := m.r
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	off, _ := pptr.Unpack(bucket, r.Load(bucket))
	for off != 0 {
		if bytesEqual(m.nodeKey(off), key) {
			prev = m.nodeExpire(off)
			if prev != 0 && prev <= now {
				return prev, false // already expired: dead, not updatable
			}
			r.Store(off+16, expireAt)
			r.Flush(off + 16)
			r.Fence()
			return prev, true
		}
		off, _ = pptr.Unpack(off, r.Load(off))
	}
	return 0, false
}

// DeleteExpired removes key only if its record carries an expiry stamp that
// has passed relative to now. The check and the unlink happen under the
// stripe lock, so a concurrent PERSIST or re-SET (which installs a fresh
// node) can never have its key swept out from under it.
func (m *HashMap) DeleteExpired(h alloc.Handle, key []byte, now uint64) bool {
	r := m.r
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	prev := bucket
	off, _ := pptr.Unpack(bucket, r.Load(bucket))
	for off != 0 {
		next, _ := pptr.Unpack(off, r.Load(off))
		if bytesEqual(m.nodeKey(off), key) {
			at := m.nodeExpire(off)
			if at == 0 || at > now {
				return false // immortal or still live
			}
			if next == 0 {
				r.Store(prev, pptr.Nil)
			} else {
				r.Store(prev, pptr.Pack(prev, next))
			}
			r.Flush(prev)
			r.Fence()
			m.freeObjectGraph(h, off)
			h.Free(off)
			r.Add(m.hdr+16, ^uint64(0))
			r.Flush(m.hdr + 16)
			return true
		}
		prev = off
		off = next
	}
	return false
}

// Delete removes key, reporting whether it was present.
func (m *HashMap) Delete(h alloc.Handle, key []byte) bool {
	r := m.r
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	prev := bucket
	off, _ := pptr.Unpack(bucket, r.Load(bucket))
	for off != 0 {
		next, _ := pptr.Unpack(off, r.Load(off))
		if bytesEqual(m.nodeKey(off), key) {
			if next == 0 {
				r.Store(prev, pptr.Nil)
			} else {
				r.Store(prev, pptr.Pack(prev, next))
			}
			r.Flush(prev)
			r.Fence()
			m.freeObjectGraph(h, off)
			h.Free(off)
			r.Add(m.hdr+16, ^uint64(0))
			r.Flush(m.hdr + 16)
			return true
		}
		prev = off
		off = next
	}
	return false
}

// Len returns the number of keys.
func (m *HashMap) Len() int { return int(m.r.Load(m.hdr + 16)) }

// Range calls fn for every key/value pair until fn returns false. Each
// bucket's chain is walked under its stripe lock, so fn observes consistent
// records but must not call back into the map (use two passes to mutate:
// collect keys, then Set/Delete them). Concurrent writers may insert or
// remove records in buckets the walk has already passed.
func (m *HashMap) Range(fn func(key, value []byte) bool) {
	m.RangeExpire(func(key, value []byte, _ uint64) bool { return fn(key, value) })
}

// RangeExpire is Range with each record's expiry stamp (unix milliseconds;
// 0 = immortal) included — the walk AttachBounded uses to rebuild both the
// LRU byte accounting and the volatile expiry index in one pass.
func (m *HashMap) RangeExpire(fn func(key, value []byte, expireAt uint64) bool) {
	for i := uint64(0); i < m.nB; i++ {
		mu := m.stripeFor(i)
		mu.Lock()
		slot := m.buckets + i*8
		off, _ := pptr.Unpack(slot, m.r.Load(slot))
		for off != 0 {
			if !fn(m.nodeKey(off), m.nodeValue(off), m.nodeExpire(off)) {
				mu.Unlock()
				return
			}
			off, _ = pptr.Unpack(off, m.r.Load(off))
		}
		mu.Unlock()
	}
}

// RangeMeta calls fn for every record — including expired ones — with its
// type tag, expiry stamp, and the record's total persistent footprint (top
// node plus, for object records, the whole secondary-structure graph as
// maintained in the object header's bytes word). This is the one-pass walk
// Attach/AttachBounded use to rebuild the LRU byte accounting and the
// volatile expiry index per-type after a restart.
func (m *HashMap) RangeMeta(fn func(key []byte, tag uint8, expireAt uint64, bytes uint64) bool) {
	for i := uint64(0); i < m.nB; i++ {
		mu := m.stripeFor(i)
		mu.Lock()
		slot := m.buckets + i*8
		off, _ := pptr.Unpack(slot, m.r.Load(slot))
		for off != 0 {
			tag, klen, vlen := unpackLens(m.r.Load(off + 8))
			total := hmNodeHdr + pad8(klen) + pad8(vlen)
			if tag != TagString {
				if hdr, ok := m.nodeObjHdr(off); ok {
					total += m.r.Load(hdr + objOffBytes)
				}
			}
			if !fn(m.nodeKey(off), tag, m.nodeExpire(off), total) {
				mu.Unlock()
				return
			}
			off, _ = pptr.Unpack(off, m.r.Load(off))
		}
		mu.Unlock()
	}
}

// Buckets returns the bucket count, the coordinate space for cursor walks.
func (m *HashMap) Buckets() uint64 { return m.nB }

// RangeBucketMeta walks one bucket's chain under its stripe lock, calling
// fn for every record — expired ones included — with its type tag and
// expiry stamp. Cursor-based SCAN is built on this: a caller that walks
// buckets [cursor, n) in order visits every key that existed for the whole
// iteration exactly once, because a record never migrates between buckets
// (the bucket count is fixed at construction).
func (m *HashMap) RangeBucketMeta(b uint64, fn func(key []byte, tag uint8, expireAt uint64)) {
	if b >= m.nB {
		return
	}
	mu := m.stripeFor(b)
	mu.Lock()
	slot := m.buckets + b*8
	off, _ := pptr.Unpack(slot, m.r.Load(slot))
	for off != 0 {
		fn(m.nodeKey(off), m.nodeTag(off), m.nodeExpire(off))
		off, _ = pptr.Unpack(off, m.r.Load(off))
	}
	mu.Unlock()
}

// Filter returns the GC filter for the map header (bucket array → chains).
func (m *HashMap) Filter() ralloc.Filter { return HashMapFilter(m.r) }

// HashMapFilter builds the filter from a bare region. Precision matters for
// object records: a list node's prev word may be stale after a crash (the
// forward chain is the authoritative structure — see object.go), so the
// filter traces only next links and the object payload; conservative
// scanning could resurrect an unlinked node through a stale prev pointer.
func HashMapFilter(r *pmem.Region) ralloc.Filter {
	// Field nodes and list nodes both chain through word 0 and carry no
	// further pointers the GC should honor.
	var chainNode ralloc.Filter
	chainNode = func(g *ralloc.GC, off uint64) {
		if next, ok := pptr.Unpack(off, r.Load(off)); ok {
			g.Visit(next, chainNode)
		}
	}
	hashObj := func(g *ralloc.GC, hdr uint64) {
		arr, ok := pptr.Unpack(hdr, r.Load(hdr))
		if !ok {
			return
		}
		nB := r.Load(hdr + 8)
		g.Visit(arr, func(g *ralloc.GC, arrOff uint64) {
			for i := uint64(0); i < nB; i++ {
				slot := arrOff + i*8
				if head, ok := pptr.Unpack(slot, r.Load(slot)); ok {
					g.Visit(head, chainNode)
				}
			}
		})
	}
	listObj := func(g *ralloc.GC, hdr uint64) {
		// Forward chain only: tail and prev words are repairable hints.
		if head, ok := pptr.Unpack(hdr, r.Load(hdr)); ok {
			g.Visit(head, chainNode)
		}
	}
	var node ralloc.Filter
	node = func(g *ralloc.GC, off uint64) {
		if next, ok := pptr.Unpack(off, r.Load(off)); ok {
			g.Visit(next, node)
		}
		tag, klen, _ := unpackLens(r.Load(off + 8))
		if tag == TagString {
			return
		}
		p := off + hmNodeHdr + pad8(klen)
		hdr, ok := pptr.Unpack(p, r.Load(p))
		if !ok {
			return
		}
		switch tag {
		case TagHash:
			g.Visit(hdr, hashObj)
		case TagList:
			g.Visit(hdr, listObj)
		}
	}
	return func(g *ralloc.GC, hdr uint64) {
		arr, ok := pptr.Unpack(hdr, r.Load(hdr))
		if !ok {
			return
		}
		nB := r.Load(hdr + 8)
		g.Visit(arr, func(g *ralloc.GC, arrOff uint64) {
			for i := uint64(0); i < nB; i++ {
				slot := arrOff + i*8
				if head, ok := pptr.Unpack(slot, r.Load(slot)); ok {
					g.Visit(head, node)
				}
			}
		})
	}
}
