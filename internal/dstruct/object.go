package dstruct

// Typed persistent objects: the secondary structures behind TagHash and
// TagList records. The top-level map stays the single source of truth for
// key lookup, expiry, and type; a non-string record's 8-byte payload holds
// one off-holder to an object header allocated from the same ralloc heap,
// so recovery GC traces the whole graph through the map filter and the
// allocator's recoverability criterion (§4.5) extends to every field node
// and list element.
//
// Both object kinds follow the same crash discipline as the map itself —
// flush the new block before the single-word link swing that makes it
// reachable, flush the swing, fence — with one refinement for the deque:
// only the *forward* chain (header head word, node next words) is
// authoritative. The tail word, the nodes' prev words, and the length and
// bytes counters are maintained eagerly but are repairable: a crash between
// a commit swing and the trailing bookkeeping stores leaves them stale, and
// RecoverObjects rewalks every object after a dirty restart to fix them.
// This keeps every mutation's commit point a single 8-byte store, exactly
// the paper's "flush data, then swing one durable link" pattern, without
// needing a transaction log for the two-directional links.
//
// Object header layout (objHdrBytes = 32):
//
//	hash:  word 0 = bucket-array off-holder, word 1 = nBuckets,
//	       word 2 = field count, word 3 = graph bytes
//	list:  word 0 = head off-holder, word 1 = tail off-holder,
//	       word 2 = length, word 3 = graph bytes
//
// The graph-bytes word is the total persistent footprint of the secondary
// structure (header + bucket array + nodes); Attach reads it in O(1) per
// key to rebuild the LRU byte accounting (RangeMeta), and it is repaired
// together with the counters.
//
// Field node: word 0 = next off-holder, word 1 = flen<<32|vlen, then field
// bytes and value bytes (each padded to 8).
// List node: word 0 = next off-holder, word 1 = prev off-holder,
// word 2 = vlen, then value bytes (padded to 8).

import (
	"errors"

	"repro/internal/alloc"
	"repro/internal/pptr"
)

const (
	objHdrBytes = 32
	objOffBytes = 24 // graph-bytes word within an object header
	// hobjBuckets is the per-object bucket count: field sets are small
	// (YCSB-H uses tens of fields), so a fixed power of two keeps the
	// header compact; chains degrade gracefully for outliers.
	hobjBuckets = 8
	fldNodeHdr  = 16
	lstNodeHdr  = 24
)

// ErrWrongType reports an object operation applied to a record of another
// type (the server maps it to Redis's WRONGTYPE reply).
var ErrWrongType = errors.New("operation against a key holding the wrong kind of value")

// ErrNoMemory reports heap exhaustion inside an object operation.
var ErrNoMemory = errors.New("out of memory")

func fldNodeSize(flen, vlen uint64) uint64 { return fldNodeHdr + pad8(flen) + pad8(vlen) }
func lstNodeSize(vlen uint64) uint64       { return lstNodeHdr + pad8(vlen) }

// findNode locates key's record in the bucket chain, returning the holder
// of the link pointing at it and the record offset (0 if absent). The
// caller holds the bucket's stripe lock.
func (m *HashMap) findNode(bucket uint64, key []byte) (prev, off uint64) {
	prev = bucket
	off, _ = pptr.Unpack(bucket, m.r.Load(bucket))
	for off != 0 {
		if bytesEqual(m.nodeKey(off), key) {
			return prev, off
		}
		prev = off
		off, _ = pptr.Unpack(off, m.r.Load(off))
	}
	return prev, 0
}

// unlinkFree durably unlinks the record at off (prev holds the link to it)
// and releases its whole graph. The unlink is the single-word commit; the
// frees afterwards are crash-safe because an unreachable graph is exactly
// what recovery GC reclaims. Caller holds the stripe lock.
func (m *HashMap) unlinkFree(h alloc.Handle, prev, off uint64) {
	r := m.r
	next, _ := pptr.Unpack(off, r.Load(off))
	if next == 0 {
		r.Store(prev, pptr.Nil)
	} else {
		r.Store(prev, pptr.Pack(prev, next))
	}
	r.Flush(prev)
	r.Fence()
	m.freeObjectGraph(h, off)
	h.Free(off)
	r.Add(m.hdr+16, ^uint64(0))
	r.Flush(m.hdr + 16)
}

// freeObjectGraph releases a record's secondary structure (no-op for
// strings). The record must already be unreachable.
func (m *HashMap) freeObjectGraph(h alloc.Handle, off uint64) {
	tag := m.nodeTag(off)
	if tag == TagString {
		return
	}
	hdr, ok := m.nodeObjHdr(off)
	if !ok {
		return
	}
	switch tag {
	case TagHash:
		m.freeHashObj(h, hdr)
	case TagList:
		m.freeListObj(h, hdr)
	}
}

func (m *HashMap) freeHashObj(h alloc.Handle, hdr uint64) {
	r := m.r
	if arr, ok := pptr.Unpack(hdr, r.Load(hdr)); ok {
		nB := r.Load(hdr + 8)
		for i := uint64(0); i < nB; i++ {
			slot := arr + i*8
			n, _ := pptr.Unpack(slot, r.Load(slot))
			for n != 0 {
				next, _ := pptr.Unpack(n, r.Load(n))
				h.Free(n)
				n = next
			}
		}
		h.Free(arr)
	}
	h.Free(hdr)
}

func (m *HashMap) freeListObj(h alloc.Handle, hdr uint64) {
	r := m.r
	n, _ := pptr.Unpack(hdr, r.Load(hdr))
	for n != 0 {
		next, _ := pptr.Unpack(n, r.Load(n))
		h.Free(n)
		n = next
	}
	h.Free(hdr)
}

// newHashObj allocates and initializes an empty field hash (not yet
// reachable — the caller installs it behind a top-level record).
func (m *HashMap) newHashObj(h alloc.Handle) (uint64, bool) {
	hdr := h.Malloc(objHdrBytes)
	arr := h.Malloc(hobjBuckets * 8)
	if hdr == 0 || arr == 0 {
		if hdr != 0 {
			h.Free(hdr)
		}
		if arr != 0 {
			h.Free(arr)
		}
		return 0, false
	}
	r := m.r
	r.Zero(arr, hobjBuckets*8)
	r.FlushRange(arr, hobjBuckets*8)
	r.Store(hdr, pptr.Pack(hdr, arr))
	r.Store(hdr+8, hobjBuckets)
	r.Store(hdr+16, 0)
	r.Store(hdr+objOffBytes, objHdrBytes+hobjBuckets*8)
	r.FlushRange(hdr, objHdrBytes)
	return hdr, true
}

// newListObj allocates and initializes an empty deque.
func (m *HashMap) newListObj(h alloc.Handle) (uint64, bool) {
	hdr := h.Malloc(objHdrBytes)
	if hdr == 0 {
		return 0, false
	}
	r := m.r
	r.Store(hdr, pptr.Nil)
	r.Store(hdr+8, pptr.Nil)
	r.Store(hdr+16, 0)
	r.Store(hdr+objOffBytes, objHdrBytes)
	r.FlushRange(hdr, objHdrBytes)
	return hdr, true
}

// installObject creates and durably links a top-level record of the given
// tag whose payload points at objHdr. The object graph must be fully
// flushed already: the bucket link swing is the commit point that makes the
// whole object reachable at once. Caller holds the stripe lock and
// guarantees key is absent.
func (m *HashMap) installObject(h alloc.Handle, bucket uint64, key []byte, tag uint8, objHdr, expireAt uint64) bool {
	r := m.r
	size := hmNodeHdr + pad8(uint64(len(key))) + 8
	n := h.Malloc(size)
	if n == 0 {
		return false
	}
	r.Store(n+8, packLens(tag, uint64(len(key)), 8))
	r.Store(n+16, expireAt)
	r.WriteBytes(n+hmNodeHdr, key)
	p := n + hmNodeHdr + pad8(uint64(len(key)))
	r.Store(p, pptr.Pack(p, objHdr))
	if head, ok := pptr.Unpack(bucket, r.Load(bucket)); ok {
		r.Store(n, pptr.Pack(n, head))
	} else {
		r.Store(n, pptr.Nil)
	}
	r.FlushRange(n, size)
	r.Fence()
	//pmem:publish
	r.Store(bucket, pptr.Pack(bucket, n))
	r.Flush(bucket)
	r.Fence()
	r.Add(m.hdr+16, 1)
	r.Flush(m.hdr + 16)
	return true
}

// resolveLive locates key's live record of the wanted tag, returning its
// prev holder too (for callers that may unlink it). expired reports a
// record hidden by lazy expiry — never touched here; write paths that must
// reap it go through resolveWrite. Caller holds the stripe lock.
func (m *HashMap) resolveLive(bucket uint64, key []byte, want uint8, now uint64) (prev, off, hdr uint64, ok, expired bool, err error) {
	prev, off = m.findNode(bucket, key)
	if off == 0 {
		return prev, 0, 0, false, false, nil
	}
	if at := m.nodeExpire(off); at != 0 && at <= now {
		return prev, off, 0, false, true, nil
	}
	if m.nodeTag(off) != want {
		return prev, off, 0, false, false, ErrWrongType
	}
	hdr, _ = m.nodeObjHdr(off)
	return prev, off, hdr, true, false, nil
}

// resolveRead is resolveLive for pure readers (no unlink capability).
func (m *HashMap) resolveRead(bucket uint64, key []byte, want uint8, now uint64) (hdr uint64, ok, expired bool, err error) {
	_, _, hdr, ok, expired, err = m.resolveLive(bucket, key, want, now)
	return hdr, ok, expired, err
}

// resolveWrite locates key's record for an object mutation, reaping an
// expired record (of any type) in place — dead fields/elements must never
// resurrect into the new object. Returns the record's prev holder and
// offset (off 0 when the caller must create the object). Caller holds the
// stripe lock.
func (m *HashMap) resolveWrite(h alloc.Handle, bucket uint64, key []byte, want uint8, now uint64) (prev, off, hdr uint64, err error) {
	prev, off, hdr, live, expired, err := m.resolveLive(bucket, key, want, now)
	if expired {
		m.unlinkFree(h, prev, off)
		// prev still holds the link to the (possibly shortened) chain.
		return prev, 0, 0, nil
	}
	if err != nil {
		return prev, off, 0, err
	}
	if !live {
		return prev, 0, 0, nil
	}
	return prev, off, hdr, nil
}

// ----------------------------------------------------------------------
// Hash objects.

func (m *HashMap) hSlot(hdr uint64, field []byte) uint64 {
	arr, _ := pptr.Unpack(hdr, m.r.Load(hdr))
	nB := m.r.Load(hdr + 8)
	return arr + (fnv1a(field)&(nB-1))*8
}

func (m *HashMap) fldKey(off uint64) []byte {
	lens := m.r.Load(off + 8)
	f := make([]byte, lens>>32)
	m.r.ReadBytes(off+fldNodeHdr, f)
	return f
}

func (m *HashMap) fldValue(off uint64) []byte {
	lens := m.r.Load(off + 8)
	flen, vlen := lens>>32, lens&0xFFFFFFFF
	v := make([]byte, vlen)
	m.r.ReadBytes(off+fldNodeHdr+pad8(flen), v)
	return v
}

func (m *HashMap) fldSize(off uint64) uint64 {
	lens := m.r.Load(off + 8)
	return fldNodeSize(lens>>32, lens&0xFFFFFFFF)
}

// hFind returns field's node offset in the object at hdr (0 if absent).
func (m *HashMap) hFind(hdr uint64, field []byte) uint64 {
	slot := m.hSlot(hdr, field)
	off, _ := pptr.Unpack(slot, m.r.Load(slot))
	for off != 0 {
		if bytesEqual(m.fldKey(off), field) {
			return off
		}
		off, _ = pptr.Unpack(off, m.r.Load(off))
	}
	return 0
}

// hsetOne inserts or replaces one field — the same alloc-flush-swing-free
// dance as the top-level SetExpire, inside the object's bucket chain.
func (m *HashMap) hsetOne(h alloc.Handle, hdr uint64, field, value []byte) (created bool, err error) {
	r := m.r
	flen, vlen := uint64(len(field)), uint64(len(value))
	size := fldNodeSize(flen, vlen)
	n := h.Malloc(size)
	if n == 0 {
		return false, ErrNoMemory
	}
	r.Store(n+8, flen<<32|vlen)
	r.WriteBytes(n+fldNodeHdr, field)
	r.WriteBytes(n+fldNodeHdr+pad8(flen), value)

	slot := m.hSlot(hdr, field)
	prev := slot
	off, _ := pptr.Unpack(slot, r.Load(slot))
	var old uint64
	for off != 0 {
		if bytesEqual(m.fldKey(off), field) {
			old = off
			break
		}
		prev = off
		off, _ = pptr.Unpack(off, r.Load(off))
	}
	var next uint64
	if old != 0 {
		next, _ = pptr.Unpack(old, r.Load(old))
	} else {
		next, _ = pptr.Unpack(slot, r.Load(slot))
		prev = slot
	}
	if next == 0 {
		r.Store(n, pptr.Nil)
	} else {
		r.Store(n, pptr.Pack(n, next))
	}
	r.FlushRange(n, size)
	r.Fence()
	//pmem:publish
	r.Store(prev, pptr.Pack(prev, n))
	r.Flush(prev)
	r.Fence()
	if old != 0 {
		oldSize := m.fldSize(old)
		h.Free(old)
		r.Add(hdr+objOffBytes, size-oldSize)
	} else {
		r.Add(hdr+16, 1)
		r.Flush(hdr + 16)
		r.Add(hdr+objOffBytes, size)
	}
	r.Flush(hdr + objOffBytes)
	return old == 0, nil
}

// hdelOne unlinks and frees one field, reporting whether it existed.
func (m *HashMap) hdelOne(h alloc.Handle, hdr uint64, field []byte) bool {
	r := m.r
	slot := m.hSlot(hdr, field)
	prev := slot
	off, _ := pptr.Unpack(slot, r.Load(slot))
	for off != 0 {
		next, _ := pptr.Unpack(off, r.Load(off))
		if bytesEqual(m.fldKey(off), field) {
			if next == 0 {
				r.Store(prev, pptr.Nil)
			} else {
				r.Store(prev, pptr.Pack(prev, next))
			}
			r.Flush(prev)
			r.Fence()
			size := m.fldSize(off)
			h.Free(off)
			r.Add(hdr+16, ^uint64(0))
			r.Flush(hdr + 16)
			r.Add(hdr+objOffBytes, ^(size - 1))
			r.Flush(hdr + objOffBytes)
			return true
		}
		prev = off
		off = next
	}
	return false
}

// HSet inserts or replaces the given field/value pairs under key, creating
// the hash if needed (reaping an expired record first). It returns how many
// fields were newly created and the object's total graph bytes afterwards
// (for LRU charging). Each pair commits individually with a single-word
// link swing, so a crash mid-HSET leaves every field wholly old or wholly
// new — never torn.
func (m *HashMap) HSet(h alloc.Handle, key []byte, pairs [][]byte, now uint64) (created int, objBytes uint64, err error) {
	if len(key) > MaxKeyLen {
		return 0, 0, ErrNoMemory
	}
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	_, off, hdr, err := m.resolveWrite(h, bucket, key, TagHash, now)
	if err != nil {
		return 0, 0, err
	}
	if off == 0 {
		newHdr, ok := m.newHashObj(h)
		if !ok {
			return 0, 0, ErrNoMemory
		}
		// Populate the still-unreachable object, then install it behind
		// one durable bucket-link swing: the whole HSET of a fresh key is
		// crash-atomic.
		for i := 0; i+1 < len(pairs); i += 2 {
			c, err := m.hsetOne(h, newHdr, pairs[i], pairs[i+1])
			if err != nil {
				m.freeHashObj(h, newHdr)
				return 0, 0, err
			}
			if c {
				created++
			}
		}
		if !m.installObject(h, bucket, key, TagHash, newHdr, 0) {
			m.freeHashObj(h, newHdr)
			return 0, 0, ErrNoMemory
		}
		return created, m.r.Load(newHdr + objOffBytes), nil
	}
	for i := 0; i+1 < len(pairs); i += 2 {
		c, err := m.hsetOne(h, hdr, pairs[i], pairs[i+1])
		if err != nil {
			return created, m.r.Load(hdr + objOffBytes), err
		}
		if c {
			created++
		}
	}
	return created, m.r.Load(hdr + objOffBytes), nil
}

// HGet returns field's value inside the hash at key. expired reports a
// record hidden by lazy expiry.
func (m *HashMap) HGet(key, field []byte, now uint64) (val []byte, ok, expired bool, err error) {
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	hdr, live, expired, err := m.resolveRead(bucket, key, TagHash, now)
	if !live {
		return nil, false, expired, err
	}
	n := m.hFind(hdr, field)
	if n == 0 {
		return nil, false, false, nil
	}
	return m.fldValue(n), true, false, nil
}

// HDel removes the given fields, deleting the whole record when the last
// field goes (Redis drops empty hashes). gone reports that deletion;
// objBytes is the remaining graph footprint otherwise.
func (m *HashMap) HDel(h alloc.Handle, key []byte, fields [][]byte, now uint64) (removed int, objBytes uint64, gone bool, err error) {
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	// An expired record reads as missing (removed 0); its space is left to
	// the expiry cycle rather than reclaimed on this path.
	prev, off, hdr, live, _, err := m.resolveLive(bucket, key, TagHash, now)
	if !live {
		return 0, 0, false, err
	}
	for _, f := range fields {
		if m.hdelOne(h, hdr, f) {
			removed++
		}
	}
	if m.r.Load(hdr+16) == 0 {
		m.unlinkFree(h, prev, off)
		return removed, 0, true, nil
	}
	return removed, m.r.Load(hdr + objOffBytes), false, nil
}

// HLen returns the field count (0 for a missing key).
func (m *HashMap) HLen(key []byte, now uint64) (n int, expired bool, err error) {
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	hdr, live, expired, err := m.resolveRead(bucket, key, TagHash, now)
	if !live {
		return 0, expired, err
	}
	return int(m.r.Load(hdr + 16)), false, nil
}

// HGetAll returns every field and value (parallel slices, chain order).
func (m *HashMap) HGetAll(key []byte, now uint64) (fields, values [][]byte, expired bool, err error) {
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	hdr, live, expired, err := m.resolveRead(bucket, key, TagHash, now)
	if !live {
		return nil, nil, expired, err
	}
	arr, _ := pptr.Unpack(hdr, m.r.Load(hdr))
	nB := m.r.Load(hdr + 8)
	for i := uint64(0); i < nB; i++ {
		slot := arr + i*8
		off, _ := pptr.Unpack(slot, m.r.Load(slot))
		for off != 0 {
			fields = append(fields, m.fldKey(off))
			values = append(values, m.fldValue(off))
			off, _ = pptr.Unpack(off, m.r.Load(off))
		}
	}
	return fields, values, false, nil
}

// ----------------------------------------------------------------------
// List objects.

func (m *HashMap) lstValue(off uint64) []byte {
	vlen := m.r.Load(off + 16)
	v := make([]byte, vlen)
	m.r.ReadBytes(off+lstNodeHdr, v)
	return v
}

// pushOne appends one element at the chosen end. The commit point is a
// single word: the header's head word (left push, or first element) or the
// old tail's next word (right push). Everything after the commit — the
// neighbor's prev word, the tail word, length and bytes — is repairable
// bookkeeping.
func (m *HashMap) pushOne(h alloc.Handle, hdr uint64, val []byte, left bool) error {
	r := m.r
	vlen := uint64(len(val))
	size := lstNodeSize(vlen)
	n := h.Malloc(size)
	if n == 0 {
		return ErrNoMemory
	}
	r.Store(n+16, vlen)
	r.WriteBytes(n+lstNodeHdr, val)
	head, _ := pptr.Unpack(hdr, r.Load(hdr))
	tail, _ := pptr.Unpack(hdr+8, r.Load(hdr+8))
	if left {
		if head == 0 {
			r.Store(n, pptr.Nil)
		} else {
			r.Store(n, pptr.Pack(n, head))
		}
		r.Store(n+8, pptr.Nil)
		r.FlushRange(n, size)
		r.Fence()
		//pmem:publish
		r.Store(hdr, pptr.Pack(hdr, n)) // commit
		r.Flush(hdr)
		r.Fence()
		if head != 0 {
			r.Store(head+8, pptr.Pack(head+8, n))
			r.Flush(head + 8)
		}
		if tail == 0 {
			r.Store(hdr+8, pptr.Pack(hdr+8, n))
			r.Flush(hdr + 8)
		}
	} else {
		r.Store(n, pptr.Nil)
		if tail == 0 {
			r.Store(n+8, pptr.Nil)
		} else {
			r.Store(n+8, pptr.Pack(n+8, tail))
		}
		r.FlushRange(n, size)
		r.Fence()
		// The commit word: the old tail's next word, or the head word when
		// this is the first element.
		commit := hdr
		if tail != 0 {
			commit = tail
		}
		//pmem:publish
		r.Store(commit, pptr.Pack(commit, n))
		r.Flush(commit)
		r.Fence()
		r.Store(hdr+8, pptr.Pack(hdr+8, n))
		r.Flush(hdr + 8)
	}
	r.Add(hdr+16, 1)
	r.Flush(hdr + 16)
	r.Add(hdr+objOffBytes, size)
	r.Flush(hdr + objOffBytes)
	r.Fence()
	return nil
}

// Push appends vals at the left or right end of the list at key, creating
// it if needed (reaping an expired record first). Returns the new length
// and the graph bytes for LRU charging.
func (m *HashMap) Push(h alloc.Handle, key []byte, vals [][]byte, left bool, now uint64) (length int, objBytes uint64, err error) {
	if len(key) > MaxKeyLen {
		return 0, 0, ErrNoMemory
	}
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	_, off, hdr, err := m.resolveWrite(h, bucket, key, TagList, now)
	if err != nil {
		return 0, 0, err
	}
	if off == 0 {
		newHdr, ok := m.newListObj(h)
		if !ok {
			return 0, 0, ErrNoMemory
		}
		for _, v := range vals {
			if err := m.pushOne(h, newHdr, v, left); err != nil {
				m.freeListObj(h, newHdr)
				return 0, 0, err
			}
		}
		if !m.installObject(h, bucket, key, TagList, newHdr, 0) {
			m.freeListObj(h, newHdr)
			return 0, 0, ErrNoMemory
		}
		hdr = newHdr
	} else {
		for _, v := range vals {
			if err := m.pushOne(h, hdr, v, left); err != nil {
				return int(m.r.Load(hdr + 16)), m.r.Load(hdr + objOffBytes), err
			}
		}
	}
	return int(m.r.Load(hdr + 16)), m.r.Load(hdr + objOffBytes), nil
}

// Pop removes and returns the element at the chosen end. Popping the last
// element deletes the whole record (Redis drops empty lists); gone reports
// that. The commit point is again one word: the head word (left pop), the
// new tail's next word (right pop), or the record unlink (last element).
func (m *HashMap) Pop(h alloc.Handle, key []byte, left bool, now uint64) (val []byte, ok bool, objBytes uint64, gone, expired bool, err error) {
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	prev, off, hdr, live, expired, err := m.resolveLive(bucket, key, TagList, now)
	if !live {
		return nil, false, 0, false, expired, err
	}
	r := m.r
	head, _ := pptr.Unpack(hdr, r.Load(hdr))
	if head == 0 {
		// Normal operation never leaves an empty list behind; treat
		// defensively as missing.
		return nil, false, 0, false, false, nil
	}
	if r.Load(hdr+16) <= 1 {
		// Last element: the record unlink is the commit, and the whole
		// graph is freed behind it.
		val = m.lstValue(head)
		m.unlinkFree(h, prev, off)
		return val, true, 0, true, false, nil
	}
	if left {
		victim := head
		next, _ := pptr.Unpack(victim, r.Load(victim))
		val = m.lstValue(victim)
		//pmem:publish
		r.Store(hdr, pptr.Pack(hdr, next)) // commit
		r.Flush(hdr)
		r.Fence()
		r.Store(next+8, pptr.Nil)
		r.Flush(next + 8)
		size := lstNodeSize(r.Load(victim + 16))
		h.Free(victim)
		r.Add(hdr+16, ^uint64(0))
		r.Flush(hdr + 16)
		r.Add(hdr+objOffBytes, ^(size - 1))
		r.Flush(hdr + objOffBytes)
		r.Fence()
	} else {
		tail, _ := pptr.Unpack(hdr+8, r.Load(hdr+8))
		victim := tail
		newTail, _ := pptr.Unpack(victim+8, r.Load(victim+8))
		val = m.lstValue(victim)
		//pmem:publish
		r.Store(newTail, pptr.Nil) // commit: forward chain now ends here
		r.Flush(newTail)
		r.Fence()
		r.Store(hdr+8, pptr.Pack(hdr+8, newTail))
		r.Flush(hdr + 8)
		size := lstNodeSize(r.Load(victim + 16))
		h.Free(victim)
		r.Add(hdr+16, ^uint64(0))
		r.Flush(hdr + 16)
		r.Add(hdr+objOffBytes, ^(size - 1))
		r.Flush(hdr + objOffBytes)
		r.Fence()
	}
	return val, true, r.Load(hdr + objOffBytes), false, false, nil
}

// LLen returns the list length (0 for a missing key).
func (m *HashMap) LLen(key []byte, now uint64) (n int, expired bool, err error) {
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	hdr, live, expired, err := m.resolveRead(bucket, key, TagList, now)
	if !live {
		return 0, expired, err
	}
	return int(m.r.Load(hdr + 16)), false, nil
}

// LRange returns the elements between start and stop inclusive, with Redis
// index semantics (negative counts from the tail; out-of-range clamps).
func (m *HashMap) LRange(key []byte, start, stop int64, now uint64) (vals [][]byte, expired bool, err error) {
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	hdr, live, expired, err := m.resolveRead(bucket, key, TagList, now)
	if !live {
		return nil, expired, err
	}
	n := int64(m.r.Load(hdr + 16))
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop || n == 0 {
		return nil, false, nil
	}
	off, _ := pptr.Unpack(hdr, m.r.Load(hdr))
	for i := int64(0); off != 0 && i <= stop; i++ {
		if i >= start {
			vals = append(vals, m.lstValue(off))
		}
		off, _ = pptr.Unpack(off, m.r.Load(off))
	}
	return vals, false, nil
}

// ----------------------------------------------------------------------
// Post-crash repair.

// RecoverObjects rewalks every object record and repairs the words the
// crash discipline deliberately leaves repairable: list tail words, list
// prev links, and both object kinds' length/count and graph-bytes words.
// An object left empty by a crash between its last element's unlink and
// the record unlink is deleted outright (normal operation never leaves an
// empty object behind). Attach runs this before rebuilding any volatile
// index; on a cleanly closed heap the walk verifies and changes nothing.
func (m *HashMap) RecoverObjects(h alloc.Handle) {
	r := m.r
	for i := uint64(0); i < m.nB; i++ {
		mu := m.stripeFor(i)
		mu.Lock()
		slot := m.buckets + i*8
		prev := slot
		off, _ := pptr.Unpack(slot, r.Load(slot))
		for off != 0 {
			next, _ := pptr.Unpack(off, r.Load(off))
			empty := false
			if tag := m.nodeTag(off); tag != TagString {
				if hdr, ok := m.nodeObjHdr(off); ok {
					switch tag {
					case TagHash:
						empty = m.repairHash(hdr)
					case TagList:
						empty = m.repairList(hdr)
					}
				}
			}
			if empty {
				m.unlinkFree(h, prev, off)
			} else {
				prev = off
			}
			off = next
		}
		mu.Unlock()
	}
	r.Fence()
}

// repairHash recomputes the field count and graph bytes from the chains,
// fixing the header words on mismatch. Reports whether the hash is empty.
func (m *HashMap) repairHash(hdr uint64) (empty bool) {
	r := m.r
	arr, ok := pptr.Unpack(hdr, r.Load(hdr))
	if !ok {
		return true
	}
	nB := r.Load(hdr + 8)
	count, bytes := uint64(0), objHdrBytes+nB*8
	for i := uint64(0); i < nB; i++ {
		slot := arr + i*8
		off, _ := pptr.Unpack(slot, r.Load(slot))
		for off != 0 {
			count++
			bytes += m.fldSize(off)
			off, _ = pptr.Unpack(off, r.Load(off))
		}
	}
	if r.Load(hdr+16) != count {
		r.Store(hdr+16, count)
		r.Flush(hdr + 16)
	}
	if r.Load(hdr+objOffBytes) != bytes {
		r.Store(hdr+objOffBytes, bytes)
		r.Flush(hdr + objOffBytes)
	}
	return count == 0
}

// repairList rewalks the authoritative forward chain, fixing every node's
// prev word, the tail word, and the length/bytes words. Reports whether
// the list is empty.
func (m *HashMap) repairList(hdr uint64) (empty bool) {
	r := m.r
	count, bytes := uint64(0), uint64(objHdrBytes)
	var last uint64
	off, _ := pptr.Unpack(hdr, r.Load(hdr))
	for off != 0 {
		wantPrev := uint64(pptr.Nil)
		if last != 0 {
			wantPrev = pptr.Pack(off+8, last)
		}
		if r.Load(off+8) != wantPrev {
			r.Store(off+8, wantPrev)
			r.Flush(off + 8)
		}
		count++
		bytes += lstNodeSize(r.Load(off + 16))
		last = off
		off, _ = pptr.Unpack(off, r.Load(off))
	}
	wantTail := uint64(pptr.Nil)
	if last != 0 {
		wantTail = pptr.Pack(hdr+8, last)
	}
	if r.Load(hdr+8) != wantTail {
		r.Store(hdr+8, wantTail)
		r.Flush(hdr + 8)
	}
	if r.Load(hdr+16) != count {
		r.Store(hdr+16, count)
		r.Flush(hdr + 16)
	}
	if r.Load(hdr+objOffBytes) != bytes {
		r.Store(hdr+objOffBytes, bytes)
		r.Flush(hdr + objOffBytes)
	}
	return count == 0
}

// TypeTag returns the record's type tag and expiry stamp without touching
// the value (the kvstore TypeOf / per-type scan primitive).
func (m *HashMap) TypeTag(key []byte) (tag uint8, expireAt uint64, ok bool) {
	bucket, mu := m.slot(key)
	mu.Lock()
	defer mu.Unlock()
	_, off := m.findNode(bucket, key)
	if off == 0 {
		return TagString, 0, false
	}
	return m.nodeTag(off), m.nodeExpire(off), true
}

// RangeTyped calls fn for every record — including expired ones — with its
// type tag and expiry stamp; value is the raw payload for object records.
// Same locking contract as Range.
func (m *HashMap) RangeTyped(fn func(key, value []byte, tag uint8, expireAt uint64) bool) {
	for i := uint64(0); i < m.nB; i++ {
		mu := m.stripeFor(i)
		mu.Lock()
		slot := m.buckets + i*8
		off, _ := pptr.Unpack(slot, m.r.Load(slot))
		for off != 0 {
			if !fn(m.nodeKey(off), m.nodeValue(off), m.nodeTag(off), m.nodeExpire(off)) {
				mu.Unlock()
				return
			}
			off, _ = pptr.Unpack(off, m.r.Load(off))
		}
		mu.Unlock()
	}
}
