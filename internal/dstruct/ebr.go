// Package dstruct provides the persistent, position-independent data
// structures used by the paper's benchmarks and recovery experiments: a
// Treiber stack and the Natarajan–Mittal lock-free BST (Fig. 6), the
// Michael–Scott queue (Prod-con, Fig. 5d), a red-black tree (Vacation,
// Fig. 5e), and a chained hash map (Memcached, Fig. 5f).
//
// All structures store offsets, never Go pointers, so a heap image can be
// saved, crashed, re-mapped and re-traversed. Each structure provides a
// filter function (§4.5.1) enumerating its pointers for precise recovery
// GC; structures whose links carry mark/tag bits (queue, BST) *require*
// filters — exactly the nonstandard-pointer-representation scenario filter
// functions were introduced for.
package dstruct

import (
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
)

// EBR implements epoch-based safe memory reclamation — the "limbo lists"
// the paper mentions as the application-level reclamation layered on top of
// free (§3, §5). Deleted nodes are retired, not freed; a retired node is
// passed to free only after every thread that might hold a reference has
// moved past the epoch in which it was retired.
//
// Three epochs suffice: a node retired in epoch e can be reclaimed once the
// global epoch reaches e+2, because any reader still using it would pin
// epoch e or e+1.
type EBR struct {
	epoch atomic.Uint64

	mu     sync.Mutex
	guards []*Guard
}

// NewEBR creates a reclamation domain.
func NewEBR() *EBR {
	e := &EBR{}
	e.epoch.Store(2) // start >0 so "unpinned" can be 0
	return e
}

const ebrCollectEvery = 64

// Guard is a per-goroutine participant in an EBR domain. A Guard owns an
// allocator handle through which retired nodes are eventually freed.
type Guard struct {
	dom     *EBR
	h       alloc.Handle
	pinned  atomic.Uint64 // 0 = quiescent, otherwise the pinned epoch
	retired [3][]uint64
	nops    int
}

// Guard registers a new participant.
func (e *EBR) Guard(h alloc.Handle) *Guard {
	g := &Guard{dom: e, h: h}
	e.mu.Lock()
	e.guards = append(e.guards, g)
	e.mu.Unlock()
	return g
}

// Enter pins the current epoch; the caller may then traverse nodes that
// concurrent deleters have retired. Must be paired with Exit.
func (g *Guard) Enter() {
	g.pinned.Store(g.dom.epoch.Load())
}

// Exit unpins the guard and occasionally attempts to advance the epoch and
// reclaim quarantined nodes.
func (g *Guard) Exit() {
	g.pinned.Store(0)
	g.nops++
	if g.nops%ebrCollectEvery == 0 {
		g.collect()
	}
}

// Retire quarantines a node that has been unlinked from the structure. The
// caller must be inside Enter/Exit.
func (g *Guard) Retire(off uint64) {
	e := g.dom.epoch.Load()
	g.retired[e%3] = append(g.retired[e%3], off)
}

// collect tries to advance the global epoch; on success, nodes retired two
// epochs ago become unreachable by any pinned reader and are freed.
func (g *Guard) collect() {
	d := g.dom
	e := d.epoch.Load()
	d.mu.Lock()
	for _, other := range d.guards {
		p := other.pinned.Load()
		if p != 0 && p < e {
			d.mu.Unlock()
			return // a straggler still pins an older epoch
		}
	}
	advanced := d.epoch.CompareAndSwap(e, e+1)
	d.mu.Unlock()
	if !advanced {
		return
	}
	// Bucket (e+1)%3 holds nodes retired in epoch e-2: safe now.
	bucket := &g.retired[(e+1)%3]
	for _, off := range *bucket {
		g.h.Free(off)
	}
	*bucket = (*bucket)[:0]
}

// Drain frees everything this guard has quarantined. Only safe when the
// structure is quiescent (no concurrent readers), e.g. at shutdown or in
// tests.
func (g *Guard) Drain() {
	for i := range g.retired {
		for _, off := range g.retired[i] {
			g.h.Free(off)
		}
		g.retired[i] = g.retired[i][:0]
	}
}

// RetiredCount reports how many nodes are quarantined (for tests).
func (g *Guard) RetiredCount() int {
	return len(g.retired[0]) + len(g.retired[1]) + len(g.retired[2])
}
