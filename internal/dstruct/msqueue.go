package dstruct

import (
	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/ralloc"
)

// Queue is a persistent Michael–Scott lock-free FIFO queue, used by the
// paper's Prod-con benchmark (§6.2): one thread of each pair allocates
// objects and enqueues pointers to them, the other dequeues and frees.
//
// Every link word (head, tail, node.next) is a counter-tagged offset: next
// pointers are CAS targets and need ABA protection once nodes are recycled.
// Tagged words are invisible to conservative GC, so the queue provides a
// filter function for precise recovery.
type Queue struct {
	a alloc.Allocator
	r *pmem.Region
	// hdr: word 0 = head (tagged), word 1 = tail (tagged).
	hdr uint64

	ebr *EBR
}

// Node layout: word 0 = next (tagged), word 1 = value.
const queueNodeSize = 16

// NewQueue allocates an empty queue (with its dummy node), returning it and
// the header offset for root registration.
func NewQueue(a alloc.Allocator, h alloc.Handle) (*Queue, uint64) {
	hdr := h.Malloc(16)
	dummy := h.Malloc(queueNodeSize)
	if hdr == 0 || dummy == 0 {
		panic("dstruct: out of memory creating queue")
	}
	r := a.Region()
	r.Store(dummy, pptr.TagNil)
	r.Store(dummy+8, 0)
	r.FlushRange(dummy, queueNodeSize)
	r.Store(hdr, pptr.PackTag(0, dummy))
	r.Store(hdr+8, pptr.PackTag(0, dummy))
	r.FlushRange(hdr, 16)
	r.Fence()
	return &Queue{a: a, r: r, hdr: hdr, ebr: NewEBR()}, hdr
}

// AttachQueue re-attaches to a queue at hdr.
func AttachQueue(a alloc.Allocator, hdr uint64) *Queue {
	return &Queue{a: a, r: a.Region(), hdr: hdr, ebr: NewEBR()}
}

// Guard creates a reclamation guard for a consumer goroutine; pass it to
// Dequeue so dequeued dummy nodes are retired through the limbo list
// rather than freed while other threads may still traverse them.
func (q *Queue) Guard(h alloc.Handle) *Guard { return q.ebr.Guard(h) }

func (q *Queue) headOff() uint64 { return q.hdr }
func (q *Queue) tailOff() uint64 { return q.hdr + 8 }

// Enqueue appends value.
func (q *Queue) Enqueue(h alloc.Handle, value uint64) bool {
	n := h.Malloc(queueNodeSize)
	if n == 0 {
		return false
	}
	r := q.r
	r.Store(n, pptr.TagNil)
	r.Store(n+8, value)
	r.FlushRange(n, queueNodeSize)
	r.Fence()
	for {
		tail := r.Load(q.tailOff())
		tctr, tOff := pptr.UnpackTag(tail)
		next := r.Load(tOff)
		nctr, nOff := pptr.UnpackTag(next)
		if tail != r.Load(q.tailOff()) {
			continue
		}
		if nOff == 0 {
			if r.CAS(tOff, next, pptr.PackTag(nctr+1, n)) {
				r.Flush(tOff)
				r.Fence()
				r.CAS(q.tailOff(), tail, pptr.PackTag(tctr+1, n))
				r.Flush(q.tailOff())
				return true
			}
		} else {
			// Help swing the lagging tail.
			r.CAS(q.tailOff(), tail, pptr.PackTag(tctr+1, nOff))
		}
	}
}

// Dequeue removes the oldest value. The displaced dummy node is retired via
// the guard's limbo list.
func (q *Queue) Dequeue(g *Guard) (uint64, bool) {
	r := q.r
	g.Enter()
	defer g.Exit()
	for {
		head := r.Load(q.headOff())
		hctr, hOff := pptr.UnpackTag(head)
		tail := r.Load(q.tailOff())
		tctr, tOff := pptr.UnpackTag(tail)
		next := r.Load(hOff)
		_, nOff := pptr.UnpackTag(next)
		if head != r.Load(q.headOff()) {
			continue
		}
		if hOff == tOff {
			if nOff == 0 {
				return 0, false
			}
			r.CAS(q.tailOff(), tail, pptr.PackTag(tctr+1, nOff))
			continue
		}
		value := r.Load(nOff + 8)
		if r.CAS(q.headOff(), head, pptr.PackTag(hctr+1, nOff)) {
			r.Flush(q.headOff())
			r.Fence()
			g.Retire(hOff)
			return value, true
		}
	}
}

// Len walks the queue (quiescent use only).
func (q *Queue) Len() int {
	r := q.r
	_, off := pptr.UnpackTag(r.Load(q.headOff()))
	n := 0
	for {
		_, next := pptr.UnpackTag(r.Load(off))
		if next == 0 {
			return n
		}
		n++
		off = next
	}
}

// Filter returns the GC filter for the queue header. Queue values are block
// offsets in Prod-con (pointers to allocated objects), so the node filter
// also visits the value word conservatively via g.Visit — if the value is
// not a block, Visit rejects it.
func (q *Queue) Filter(valuesArePointers bool) ralloc.Filter {
	r := q.r
	var nodeFilter ralloc.Filter
	nodeFilter = func(g *ralloc.GC, off uint64) {
		if _, next := pptr.UnpackTag(r.Load(off)); next != 0 {
			g.Visit(next, nodeFilter)
		}
		if valuesArePointers {
			g.Visit(r.Load(off+8), nil)
		}
	}
	return func(g *ralloc.GC, off uint64) {
		if _, head := pptr.UnpackTag(r.Load(off)); head != 0 {
			g.Visit(head, nodeFilter)
		}
		if _, tail := pptr.UnpackTag(r.Load(off + 8)); tail != 0 {
			g.Visit(tail, nodeFilter)
		}
	}
}
