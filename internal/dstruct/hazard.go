package dstruct

import (
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/pptr"
)

// Hazard pointers (Michael, 2004) are the second safe-memory-reclamation
// scheme the paper cites alongside limbo lists (§3, §5: "safe memory
// reclamation [32,51] ... is layered on top of free"). Where EBR retires
// nodes until all threads pass an epoch, hazard pointers protect individual
// blocks: a reader publishes the offset it is about to dereference, and a
// reclaimer only frees retired blocks no one has published.
//
// Offsets make the protocol simpler than in C: a stale read cannot fault,
// so publication needs no validation loop beyond the usual re-check that
// the structure still points at the protected node.
type HazardDomain struct {
	mu      sync.Mutex
	records []*HazardRecord
}

// hazardSlots is the number of simultaneous protections per thread (two
// suffice for stacks and queues; trees may need more, which callers can get
// by acquiring several records).
const hazardSlots = 4

// scanThreshold is the retired-list length that triggers a scan.
const scanThreshold = 64

// HazardRecord is one thread's set of hazard slots plus its retired list.
type HazardRecord struct {
	dom     *HazardDomain
	h       alloc.Handle
	slots   [hazardSlots]atomic.Uint64
	retired []uint64
}

// NewHazardDomain creates a reclamation domain.
func NewHazardDomain() *HazardDomain { return &HazardDomain{} }

// Record registers a participant owning an allocator handle.
func (d *HazardDomain) Record(h alloc.Handle) *HazardRecord {
	r := &HazardRecord{dom: d, h: h}
	d.mu.Lock()
	d.records = append(d.records, r)
	d.mu.Unlock()
	return r
}

// Protect publishes off in slot i and returns off for chaining. The caller
// must re-validate afterwards that the structure still references off.
func (r *HazardRecord) Protect(i int, off uint64) uint64 {
	r.slots[i].Store(off)
	return off
}

// Clear releases slot i.
func (r *HazardRecord) Clear(i int) { r.slots[i].Store(0) }

// ClearAll releases every slot (end of an operation).
func (r *HazardRecord) ClearAll() {
	for i := range r.slots {
		r.slots[i].Store(0)
	}
}

// Retire quarantines an unlinked block and scans when the quarantine grows.
func (r *HazardRecord) Retire(off uint64) {
	r.retired = append(r.retired, off)
	if len(r.retired) >= scanThreshold {
		r.scan()
	}
}

// scan frees every retired block not currently protected by any record.
func (r *HazardRecord) scan() {
	hazards := make(map[uint64]bool)
	r.dom.mu.Lock()
	records := r.dom.records
	r.dom.mu.Unlock()
	for _, rec := range records {
		for i := range rec.slots {
			if v := rec.slots[i].Load(); v != 0 {
				hazards[v] = true
			}
		}
	}
	kept := r.retired[:0]
	for _, off := range r.retired {
		if hazards[off] {
			kept = append(kept, off)
		} else {
			r.h.Free(off)
		}
	}
	r.retired = kept
}

// Drain frees all retired blocks regardless of hazards. Only safe when the
// structure is quiescent (shutdown, tests).
func (r *HazardRecord) Drain() {
	for _, off := range r.retired {
		r.h.Free(off)
	}
	r.retired = r.retired[:0]
}

// RetiredCount reports the quarantine size (tests).
func (r *HazardRecord) RetiredCount() int { return len(r.retired) }

// ----------------------------------------------------------------------
// HStack: the Treiber stack re-done with hazard-pointer reclamation instead
// of immediate free, demonstrating the alternative SMR layered on the same
// allocator API. Push is identical to Stack; Pop protects the top node
// before reading it and retires it instead of freeing.

// HStack is a hazard-pointer-protected Treiber stack.
type HStack struct {
	*Stack
	dom *HazardDomain
}

// NewHStack builds an empty stack plus its hazard domain.
func NewHStack(a alloc.Allocator, h alloc.Handle) (*HStack, uint64) {
	s, root := NewStack(a, h)
	return &HStack{Stack: s, dom: NewHazardDomain()}, root
}

// Record creates a participant record for one goroutine.
func (s *HStack) Record(h alloc.Handle) *HazardRecord { return s.dom.Record(h) }

// Pop removes the top value, retiring the node through hazard pointers.
func (s *HStack) Pop(rec *HazardRecord) (uint64, bool) {
	r := s.r
	defer rec.ClearAll()
	for {
		old := r.Load(s.hdr)
		_, top := pptr.UnpackTag(old)
		if top == 0 {
			return 0, false
		}
		rec.Protect(0, top)
		// Re-validate: if the head moved, top may already be retired
		// (or even reused); retry with a fresh protection.
		if r.Load(s.hdr) != old {
			continue
		}
		next, _ := pptr.Unpack(top, r.Load(top))
		value := r.Load(top + 8)
		ctr, _ := pptr.UnpackTag(old)
		var newHead uint64
		if next == 0 {
			newHead = pptr.PackTag(ctr+1, 0)
		} else {
			newHead = pptr.PackTag(ctr+1, next)
		}
		if r.CAS(s.hdr, old, newHead) {
			r.Flush(s.hdr)
			r.Fence()
			rec.Retire(top)
			return value, true
		}
	}
}
