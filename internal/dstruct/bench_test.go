package dstruct

import (
	"math/rand"
	"testing"

	"repro/internal/ralloc"
)

// Structure micro-benchmarks: the per-operation cost of the persistent data
// structures over Ralloc, including their durability flushes. These are the
// building blocks whose costs compose into Figures 5d–5f.

func benchHeap(b *testing.B) *ralloc.Heap {
	b.Helper()
	h, _, err := ralloc.Open("", ralloc.Config{SBRegion: 512 << 20, GrowthChunk: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func BenchmarkStackPushPop(b *testing.B) {
	h := benchHeap(b)
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, _ := NewStack(a, hd)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(hd, uint64(i))
		s.Pop(hd)
	}
}

func BenchmarkQueueEnqDeq(b *testing.B) {
	h := benchHeap(b)
	a := h.AsAllocator()
	hd := a.NewHandle()
	q, _ := NewQueue(a, hd)
	g := q.Guard(hd)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(hd, uint64(i))
		q.Dequeue(g)
	}
}

func BenchmarkTreeInsert(b *testing.B) {
	h := benchHeap(b)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, _ := NewTree(a, hd)
	g := tr.Guard(hd)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(g, rng.Uint64()%(Inf0-1)+1, uint64(i))
	}
}

func BenchmarkTreeLookup(b *testing.B) {
	h := benchHeap(b)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, _ := NewTree(a, hd)
	g := tr.Guard(hd)
	keys := make([]uint64, 100000)
	rng := rand.New(rand.NewSource(2))
	for i := range keys {
		keys[i] = rng.Uint64()%(Inf0-1) + 1
		tr.Insert(g, keys[i], uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(keys[i%len(keys)])
	}
}

func BenchmarkRBTreePut(b *testing.B) {
	h := benchHeap(b)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, _ := NewRBTree(a, hd)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(hd, rng.Uint64()%1e9+1, uint64(i))
	}
}

func BenchmarkRBTreeGet(b *testing.B) {
	h := benchHeap(b)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, _ := NewRBTree(a, hd)
	for k := uint64(1); k <= 100000; k++ {
		tr.Put(hd, k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i%100000) + 1)
	}
}

func BenchmarkHashMapSet(b *testing.B) {
	h := benchHeap(b)
	a := h.AsAllocator()
	hd := a.NewHandle()
	m, _ := NewHashMap(a, hd, 1<<16)
	key := make([]byte, 16)
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0], key[1], key[2] = byte(i), byte(i>>8), byte(i>>16)
		m.Set(hd, key, val)
	}
}

func BenchmarkHashMapGet(b *testing.B) {
	h := benchHeap(b)
	a := h.AsAllocator()
	hd := a.NewHandle()
	m, _ := NewHashMap(a, hd, 1<<14)
	key := make([]byte, 16)
	val := make([]byte, 100)
	for i := 0; i < 10000; i++ {
		key[0], key[1] = byte(i), byte(i>>8)
		m.Set(hd, key, val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0], key[1] = byte(i%10000), byte((i%10000)>>8)
		m.Get(key)
	}
}
