package dstruct

import (
	"sync"
	"testing"
)

func TestQueueFIFO(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	q, _ := NewQueue(a, hd)
	g := q.Guard(hd)
	for i := uint64(1); i <= 100; i++ {
		if !q.Enqueue(hd, i) {
			t.Fatal("enqueue failed")
		}
	}
	for i := uint64(1); i <= 100; i++ {
		v, ok := q.Dequeue(g)
		if !ok || v != i {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(g); ok {
		t.Fatal("Dequeue on empty succeeded")
	}
}

func TestQueueLen(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	q, _ := NewQueue(a, hd)
	g := q.Guard(hd)
	for i := uint64(0); i < 10; i++ {
		q.Enqueue(hd, i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	q.Dequeue(g)
	if q.Len() != 9 {
		t.Fatalf("Len = %d, want 9", q.Len())
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	// The Prod-con pattern (§6.2): producers allocate objects and enqueue
	// their offsets; consumers dequeue and free. Every produced object is
	// consumed exactly once.
	h := rheap(t)
	a := h.AsAllocator()
	init := a.NewHandle()
	q, _ := NewQueue(a, init)
	const pairs = 4
	const perProducer = 10000

	var wg sync.WaitGroup
	consumed := make([][]uint64, pairs)
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			hd := a.NewHandle()
			for i := 0; i < perProducer; i++ {
				obj := hd.Malloc(64)
				if obj == 0 {
					t.Error("OOM")
					return
				}
				a.Region().Store(obj, obj) // self-signature
				for !q.Enqueue(hd, obj) {
				}
			}
		}()
		go func(p int) {
			defer wg.Done()
			hd := a.NewHandle()
			g := q.Guard(hd)
			var got []uint64
			for len(got) < perProducer {
				v, ok := q.Dequeue(g)
				if !ok {
					continue
				}
				if a.Region().Load(v) != v {
					t.Errorf("consumed object %#x has bad signature", v)
					return
				}
				got = append(got, v)
				hd.Free(v)
			}
			consumed[p] = got
			g.Drain()
		}(p)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	total := 0
	for _, got := range consumed {
		for _, v := range got {
			total++
			_ = seen[v] // objects may be reused after Free; only count
		}
	}
	if total != pairs*perProducer {
		t.Fatalf("consumed %d objects, want %d", total, pairs*perProducer)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty at end: %d", q.Len())
	}
}

func TestQueueCrashRecoveryWithValues(t *testing.T) {
	// Queue whose values are pointers to payload blocks: the filter
	// traces nodes *and* payloads; recovery must preserve both.
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	r := a.Region()
	q, hdrOff := NewQueue(a, hd)
	const n = 500
	for i := uint64(0); i < n; i++ {
		obj := hd.Malloc(64)
		r.Store(obj, 7700+i)
		r.FlushRange(obj, 8)
		r.Fence()
		if !q.Enqueue(hd, obj) {
			t.Fatal("enqueue failed")
		}
	}
	h.SetRoot(0, hdrOff)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, AttachQueue(a, hdrOff).Filter(true))
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// header + dummy + n nodes + n payloads.
	want := uint64(2 + 2*n)
	if stats.ReachableBlocks != want {
		t.Fatalf("reachable = %d, want %d", stats.ReachableBlocks, want)
	}
	q2 := AttachQueue(a, hdrOff)
	hd2 := a.NewHandle()
	g2 := q2.Guard(hd2)
	for i := uint64(0); i < n; i++ {
		v, ok := q2.Dequeue(g2)
		if !ok {
			t.Fatalf("queue lost element %d", i)
		}
		if got := r.Load(v); got != 7700+i {
			t.Fatalf("payload %d = %d, want %d", i, got, 7700+i)
		}
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEBRReclaimsAfterQuiescence(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	e := NewEBR()
	g := e.Guard(hd)
	// Retire a batch of blocks and cycle enough epochs for reclamation.
	for i := 0; i < 300; i++ {
		off := hd.Malloc(64)
		g.Enter()
		g.Retire(off)
		g.Exit()
	}
	for i := 0; i < ebrCollectEvery*6; i++ {
		g.Enter()
		g.Exit()
	}
	if n := g.RetiredCount(); n >= 300 {
		t.Fatalf("EBR reclaimed nothing: %d still retired", n)
	}
}

func TestEBRBlocksWhilePinned(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	e := NewEBR()
	g1 := e.Guard(a.NewHandle())
	g2 := e.Guard(a.NewHandle())
	g2.Enter() // pin an epoch and never exit
	off := a.NewHandle().Malloc(64)
	g1.Enter()
	g1.Retire(off)
	g1.Exit()
	before := e.epoch.Load()
	for i := 0; i < ebrCollectEvery*4; i++ {
		g1.Enter()
		g1.Exit()
	}
	// The epoch may advance at most once past the pinned reader.
	if e.epoch.Load() > before+1 {
		t.Fatalf("epoch advanced from %d to %d past a pinned guard", before, e.epoch.Load())
	}
	if g1.RetiredCount() == 0 && e.epoch.Load() <= before+1 {
		// Retired in epoch e; must not be freed while g2 pins e.
		t.Fatal("node reclaimed while a guard was pinned")
	}
	g2.Exit()
}
