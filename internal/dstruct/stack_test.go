package dstruct

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// rheap builds a crash-capable Ralloc heap for structure tests.
func rheap(t *testing.T) *ralloc.Heap {
	t.Helper()
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion:    32 << 20,
		GrowthChunk: 1 << 20,
		Pmem:        pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestStackLIFO(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, _ := NewStack(a, hd)
	for i := uint64(1); i <= 100; i++ {
		if !s.Push(hd, i) {
			t.Fatal("push failed")
		}
	}
	for i := uint64(100); i >= 1; i-- {
		v, ok := s.Pop(hd)
		if !ok || v != i {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := s.Pop(hd); ok {
		t.Fatal("Pop on empty stack succeeded")
	}
}

func TestStackModel(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, _ := NewStack(a, hd)
	var model []uint64
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		if rng.Intn(2) == 0 {
			v := rng.Uint64() % 1000
			s.Push(hd, v)
			model = append(model, v)
		} else {
			v, ok := s.Pop(hd)
			if len(model) == 0 {
				if ok {
					t.Fatal("Pop on empty succeeded")
				}
				continue
			}
			want := model[len(model)-1]
			model = model[:len(model)-1]
			if !ok || v != want {
				t.Fatalf("op %d: Pop = (%d,%v), want (%d,true)", i, v, ok, want)
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(model))
	}
}

func TestStackConcurrentConservation(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	init := a.NewHandle()
	s, _ := NewStack(a, init)
	const goroutines = 8
	const perG = 5000
	var pushed, popped [goroutines]uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hd := a.NewHandle()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				if rng.Intn(2) == 0 {
					v := uint64(rng.Intn(1000)) + 1
					if s.Push(hd, v) {
						pushed[g] += v
					}
				} else if v, ok := s.Pop(hd); ok {
					popped[g] += v
				}
			}
		}(g)
	}
	wg.Wait()
	var totalPushed, totalPopped uint64
	for g := 0; g < goroutines; g++ {
		totalPushed += pushed[g]
		totalPopped += popped[g]
	}
	// Drain the remainder.
	hd := a.NewHandle()
	for {
		v, ok := s.Pop(hd)
		if !ok {
			break
		}
		totalPopped += v
	}
	if totalPushed != totalPopped {
		t.Fatalf("value conservation violated: pushed %d, popped %d", totalPushed, totalPopped)
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStackCrashRecovery(t *testing.T) {
	// The Fig. 6a scenario: fill a Treiber stack, crash without close,
	// recover, and verify contents plus allocator consistency.
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, hdrOff := NewStack(a, hd)
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if !s.Push(hd, i) {
			t.Fatal("push failed")
		}
	}
	h.SetRoot(0, hdrOff)

	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	root := h.GetRoot(0, AttachStack(a, hdrOff).Filter())
	if root != hdrOff {
		t.Fatalf("root = %#x, want %#x", root, hdrOff)
	}
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// header + n nodes reachable.
	if stats.ReachableBlocks != n+1 {
		t.Fatalf("reachable = %d, want %d", stats.ReachableBlocks, n+1)
	}
	s2 := AttachStack(a, root)
	hd2 := a.NewHandle()
	for i := uint64(n); i > 0; i-- {
		v, ok := s2.Pop(hd2)
		if !ok || v != i-1 {
			t.Fatalf("after recovery Pop = (%d,%v), want (%d,true)", v, ok, i-1)
		}
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStackHeaderNeedsFilter(t *testing.T) {
	// The head word is counter-tagged: without the stack's filter,
	// conservative GC sees only the header block and loses the nodes —
	// demonstrating why the filter exists.
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, hdrOff := NewStack(a, hd)
	for i := uint64(0); i < 50; i++ {
		s.Push(hd, i)
	}
	h.SetRoot(0, hdrOff)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil) // conservative only
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 1 {
		t.Fatalf("conservative reachable = %d, want 1 (header only)", stats.ReachableBlocks)
	}
}
