package dstruct

import (
	"math/rand"
	"sync"
	"testing"
)

func TestTreeBasic(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, _ := NewTree(a, hd)
	g := tr.Guard(hd)

	if _, found := tr.Lookup(5); found {
		t.Fatal("empty tree found a key")
	}
	ins, ok := tr.Insert(g, 5, 50)
	if !ins || !ok {
		t.Fatal("insert failed")
	}
	if ins, _ := tr.Insert(g, 5, 51); ins {
		t.Fatal("duplicate insert succeeded")
	}
	v, found := tr.Lookup(5)
	if !found || v != 50 {
		t.Fatalf("Lookup = (%d,%v)", v, found)
	}
	if !tr.Delete(g, 5) {
		t.Fatal("delete failed")
	}
	if tr.Delete(g, 5) {
		t.Fatal("double delete succeeded")
	}
	if _, found := tr.Lookup(5); found {
		t.Fatal("deleted key still present")
	}
}

func TestTreeSequentialModel(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, _ := NewTree(a, hd)
	g := tr.Guard(hd)
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20000; i++ {
		key := uint64(rng.Intn(500)) + 1
		switch rng.Intn(3) {
		case 0:
			val := rng.Uint64() % 10000
			ins, ok := tr.Insert(g, key, val)
			if !ok {
				t.Fatal("OOM")
			}
			_, existed := model[key]
			if ins == existed {
				t.Fatalf("op %d: Insert(%d) = %v but existed=%v", i, key, ins, existed)
			}
			if !existed {
				model[key] = val
			}
		case 1:
			del := tr.Delete(g, key)
			_, existed := model[key]
			if del != existed {
				t.Fatalf("op %d: Delete(%d) = %v but existed=%v", i, key, del, existed)
			}
			delete(model, key)
		default:
			v, found := tr.Lookup(key)
			mv, existed := model[key]
			if found != existed || (found && v != mv) {
				t.Fatalf("op %d: Lookup(%d) = (%d,%v), want (%d,%v)", i, key, v, found, mv, existed)
			}
		}
	}
	if tr.Count() != len(model) {
		t.Fatalf("Count = %d, want %d", tr.Count(), len(model))
	}
	// In-order leaves must match the model exactly.
	got := map[uint64]uint64{}
	prev := uint64(0)
	tr.Ascend(func(k, v uint64) bool {
		if k <= prev && prev != 0 {
			t.Fatalf("leaves out of order: %d after %d", k, prev)
		}
		prev = k
		got[k] = v
		return true
	})
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("key %d: tree %d, model %d", k, got[k], v)
		}
	}
}

func TestTreeConcurrentDisjointRanges(t *testing.T) {
	// Each goroutine owns a key range, so per-range results are exact.
	h := rheap(t)
	a := h.AsAllocator()
	tr, _ := NewTree(a, a.NewHandle())
	const goroutines = 8
	const span = 1000
	finals := make([]map[uint64]uint64, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hd := a.NewHandle()
			g := tr.Guard(hd)
			rng := rand.New(rand.NewSource(int64(w)))
			model := map[uint64]uint64{}
			base := uint64(w*span) + 1
			for i := 0; i < 8000; i++ {
				key := base + uint64(rng.Intn(span/2))
				if rng.Intn(2) == 0 {
					val := rng.Uint64() % 1e6
					ins, ok := tr.Insert(g, key, val)
					if !ok {
						t.Error("OOM")
						return
					}
					if ins {
						model[key] = val
					}
				} else {
					if tr.Delete(g, key) {
						delete(model, key)
					}
				}
			}
			finals[w] = model
		}(w)
	}
	wg.Wait()
	for w, model := range finals {
		for k, v := range model {
			got, found := tr.Lookup(k)
			if !found || got != v {
				t.Fatalf("goroutine %d: key %d = (%d,%v), want (%d,true)", w, k, got, found, v)
			}
		}
	}
	total := 0
	for _, m := range finals {
		total += len(m)
	}
	if tr.Count() != total {
		t.Fatalf("Count = %d, want %d", tr.Count(), total)
	}
}

func TestTreeConcurrentSameRange(t *testing.T) {
	// All goroutines fight over the same keys; afterwards the tree must
	// be a well-formed BST whose keys are a subset of those inserted.
	h := rheap(t)
	a := h.AsAllocator()
	tr, _ := NewTree(a, a.NewHandle())
	const keys = 200
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hd := a.NewHandle()
			g := tr.Guard(hd)
			rng := rand.New(rand.NewSource(int64(w) * 77))
			for i := 0; i < 6000; i++ {
				key := uint64(rng.Intn(keys)) + 1
				if rng.Intn(2) == 0 {
					if _, ok := tr.Insert(g, key, key*10); !ok {
						t.Error("OOM")
						return
					}
				} else {
					tr.Delete(g, key)
				}
			}
		}(w)
	}
	wg.Wait()
	prev := uint64(0)
	n := 0
	tr.Ascend(func(k, v uint64) bool {
		if prev != 0 && k <= prev {
			t.Fatalf("leaves out of order: %d after %d", k, prev)
		}
		if k < 1 || k > keys {
			t.Fatalf("foreign key %d in tree", k)
		}
		if v != k*10 {
			t.Fatalf("key %d has value %d, want %d", k, v, k*10)
		}
		prev = k
		n++
		return true
	})
	// Every key Lookup agrees with Ascend membership.
	for k := uint64(1); k <= keys; k++ {
		_, found := tr.Lookup(k)
		inAscend := false
		tr.Ascend(func(kk, _ uint64) bool {
			if kk == k {
				inAscend = true
				return false
			}
			return true
		})
		if found != inAscend {
			t.Fatalf("key %d: Lookup=%v but Ascend=%v", k, found, inAscend)
		}
	}
}

func TestTreeCrashRecovery(t *testing.T) {
	// The Fig. 6b scenario: insert key-value pairs into the N&M tree,
	// crash, recover with the tree's filter, verify all pairs and
	// continue operating without error.
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, rootOff := NewTree(a, hd)
	g := tr.Guard(hd)
	rng := rand.New(rand.NewSource(9))
	model := map[uint64]uint64{}
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(100000)) + 1
		v := rng.Uint64() % 1e9
		if ins, ok := tr.Insert(g, k, v); ok && ins {
			model[k] = v
		}
	}
	h.SetRoot(0, rootOff)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}

	h.GetRoot(0, TreeFilter(h.Region()))
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Sentinels: R,S + 3 sentinel leaves; per key: leaf + internal.
	want := uint64(5 + 2*len(model))
	if stats.ReachableBlocks != want {
		t.Fatalf("reachable = %d, want %d", stats.ReachableBlocks, want)
	}

	tr2 := AttachTree(a, rootOff)
	for k, v := range model {
		got, found := tr2.Lookup(k)
		if !found || got != v {
			t.Fatalf("after recovery key %d = (%d,%v), want (%d,true)", k, got, found, v)
		}
	}
	// The structure remains fully operational.
	hd2 := a.NewHandle()
	g2 := tr2.Guard(hd2)
	if ins, ok := tr2.Insert(g2, Inf0-1, 42); !ins || !ok {
		t.Fatal("insert after recovery failed")
	}
	for k := range model {
		if !tr2.Delete(g2, k) {
			t.Fatalf("delete of %d after recovery failed", k)
		}
		break
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSentinelKeyPanics(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, _ := NewTree(a, hd)
	g := tr.Guard(hd)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Insert(g, Inf0, 1)
}
