package dstruct

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// Crash injection inside data-structure operations: the StoreHook blows up
// mid-Push/Set, so the crash lands between the structure's own flushes —
// e.g. after a node is written but before the head CAS persists. Recovery
// must leave the structure in a consistent pre- or post-operation state and
// the allocator consistent either way.

type dsCrash struct{ k int }

func stackWithCrashAt(t *testing.T, k int) (*ralloc.Heap, int) {
	t.Helper()
	var countdown int
	armed := false
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion:    8 << 20,
		GrowthChunk: 1 << 20,
		Pmem: pmem.Config{
			Mode: pmem.ModeCrashSim,
			StoreHook: func() {
				if !armed {
					return
				}
				countdown--
				if countdown == 0 {
					panic(dsCrash{k})
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, root := NewStack(a, hd)
	for i := uint64(0); i < 100; i++ {
		s.Push(hd, i)
	}
	h.SetRoot(0, root)

	completed := 0
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, ok := r.(dsCrash); !ok {
				panic(r)
			}
		}()
		countdown = k
		armed = true
		for i := 0; i < 50; i++ {
			if !s.Push(hd, uint64(1000+i)) {
				t.Error("push OOM")
				return
			}
			completed = i + 1
		}
	}()
	armed = false
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	return h, completed
}

func TestStackCrashMidPushSweep(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 7, 9, 13, 21, 34, 55, 89, 144, 233} {
		h, completed := stackWithCrashAt(t, k)
		a := h.AsAllocator()
		root := h.GetRoot(0, AttachStack(a, h.GetRoot(0, nil)).Filter())
		stats, err := h.Recover()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		s := AttachStack(a, root)
		n := s.Len()
		// Durable linearizability of Push: each completed push flushed
		// head and node, so at least the base 100 plus every *completed*
		// push except possibly the in-flight one must be present — and
		// never more than base + attempted.
		if n < 100+completed-1 || n > 100+completed+1 {
			t.Fatalf("k=%d: stack has %d nodes; %d pushes completed", k, n, completed)
		}
		// Popping everything yields a coherent LIFO sequence.
		hd := a.NewHandle()
		prev := uint64(1 << 62)
		base := 0
		for {
			v, ok := s.Pop(hd)
			if !ok {
				break
			}
			if v >= 1000 {
				if v >= prev {
					t.Fatalf("k=%d: pushes out of order: %d then %d", k, prev, v)
				}
				prev = v
			} else {
				base++
			}
		}
		if base != 100 {
			t.Fatalf("k=%d: base nodes = %d, want 100", k, base)
		}
		_ = stats
		if _, err := h.CheckInvariants(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}
