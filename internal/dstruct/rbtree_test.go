package dstruct

import (
	"math/rand"
	"testing"
)

func TestRBTreeBasic(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, _ := NewRBTree(a, hd)
	if !tr.Put(hd, 10, 100) {
		t.Fatal("Put failed")
	}
	v, ok := tr.Get(10)
	if !ok || v != 100 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	tr.Put(hd, 10, 200) // update
	if v, _ := tr.Get(10); v != 200 {
		t.Fatalf("updated value = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if !tr.Delete(hd, 10) {
		t.Fatal("Delete failed")
	}
	if tr.Delete(hd, 10) {
		t.Fatal("double Delete succeeded")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestRBTreeModelWithInvariants(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, _ := NewRBTree(a, hd)
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20000; i++ {
		key := uint64(rng.Intn(800)) + 1
		switch rng.Intn(3) {
		case 0:
			val := rng.Uint64() % 1e6
			if !tr.Put(hd, key, val) {
				t.Fatal("OOM")
			}
			model[key] = val
		case 1:
			del := tr.Delete(hd, key)
			_, existed := model[key]
			if del != existed {
				t.Fatalf("op %d: Delete(%d)=%v, existed=%v", i, key, del, existed)
			}
			delete(model, key)
		default:
			v, ok := tr.Get(key)
			mv, existed := model[key]
			if ok != existed || (ok && v != mv) {
				t.Fatalf("op %d: Get(%d)=(%d,%v), want (%d,%v)", i, key, v, ok, mv, existed)
			}
		}
		if i%2000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(model))
	}
	prev := uint64(0)
	n := 0
	tr.Ascend(func(k, v uint64) bool {
		if prev != 0 && k <= prev {
			t.Fatalf("Ascend out of order: %d after %d", k, prev)
		}
		if model[k] != v {
			t.Fatalf("key %d: tree %d, model %d", k, v, model[k])
		}
		prev = k
		n++
		return true
	})
	if n != len(model) {
		t.Fatalf("Ascend visited %d, want %d", n, len(model))
	}
}

func TestRBTreeDeleteReleasesMemory(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, _ := NewRBTree(a, hd)
	for k := uint64(1); k <= 5000; k++ {
		tr.Put(hd, k, k)
	}
	used := h.SBUsed()
	for k := uint64(1); k <= 5000; k++ {
		tr.Delete(hd, k)
	}
	for k := uint64(1); k <= 5000; k++ {
		tr.Put(hd, k, k)
	}
	if h.SBUsed() > used {
		t.Fatal("delete did not release node memory for reuse")
	}
}

func TestRBTreeCrashRecovery(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, hdrOff := NewRBTree(a, hd)
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(10000)) + 1
		v := rng.Uint64() % 1e9
		tr.Put(hd, k, v)
		model[k] = v
	}
	h.SetRoot(0, hdrOff)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, RBTreeFilter(h.Region()))
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != uint64(1+len(model)) {
		t.Fatalf("reachable = %d, want %d", stats.ReachableBlocks, 1+len(model))
	}
	tr2 := AttachRBTree(a, hdrOff)
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatalf("tree invariants broken after recovery: %v", err)
	}
	for k, v := range model {
		got, ok := tr2.Get(k)
		if !ok || got != v {
			t.Fatalf("key %d = (%d,%v) after recovery, want (%d,true)", k, got, ok, v)
		}
	}
}
