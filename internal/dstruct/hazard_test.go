package dstruct

import (
	"math/rand"
	"sync"
	"testing"
)

func TestHStackLIFO(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, _ := NewHStack(a, hd)
	rec := s.Record(hd)
	for i := uint64(1); i <= 50; i++ {
		if !s.Push(hd, i) {
			t.Fatal("push failed")
		}
	}
	for i := uint64(50); i >= 1; i-- {
		v, ok := s.Pop(rec)
		if !ok || v != i {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := s.Pop(rec); ok {
		t.Fatal("Pop on empty succeeded")
	}
}

func TestHazardProtectionBlocksReclaim(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	dom := NewHazardDomain()
	reader := dom.Record(a.NewHandle())
	writer := dom.Record(hd)

	// Reader protects a block; writer retires it plus enough others to
	// force scans. The protected block must stay quarantined.
	victim := hd.Malloc(64)
	reader.Protect(0, victim)
	writer.Retire(victim)
	for i := 0; i < scanThreshold*3; i++ {
		writer.Retire(hd.Malloc(64))
	}
	if writer.RetiredCount() == 0 {
		t.Fatal("scan freed everything including the protected block")
	}
	found := false
	for _, off := range writer.retired {
		if off == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("protected block was freed during scan")
	}
	// Clearing the hazard lets the next scan free it.
	reader.ClearAll()
	for i := 0; i < scanThreshold; i++ {
		writer.Retire(hd.Malloc(64))
	}
	for _, off := range writer.retired {
		if off == victim {
			t.Fatal("block still quarantined after hazard cleared")
		}
	}
}

func TestHStackConcurrentConservation(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	s, _ := NewHStack(a, a.NewHandle())
	const goroutines = 8
	var pushed, popped [goroutines]uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hd := a.NewHandle()
			rec := s.Record(hd)
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4000; i++ {
				if rng.Intn(2) == 0 {
					v := uint64(rng.Intn(1000)) + 1
					if s.Push(hd, v) {
						pushed[g] += v
					}
				} else if v, ok := s.Pop(rec); ok {
					popped[g] += v
				}
			}
			rec.ClearAll()
		}(g)
	}
	wg.Wait()
	var totalPushed, totalPopped uint64
	for g := range pushed {
		totalPushed += pushed[g]
		totalPopped += popped[g]
	}
	hd := a.NewHandle()
	rec := s.Record(hd)
	for {
		v, ok := s.Pop(rec)
		if !ok {
			break
		}
		totalPopped += v
	}
	if totalPushed != totalPopped {
		t.Fatalf("conservation violated: pushed %d popped %d", totalPushed, totalPopped)
	}
	rec.Drain()
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
