package dstruct

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestHashMapBasic(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	m, _ := NewHashMap(a, hd, 64)
	if _, ok := m.Get([]byte("missing")); ok {
		t.Fatal("empty map found a key")
	}
	if !m.Set(hd, []byte("k1"), []byte("v1")) {
		t.Fatal("Set failed")
	}
	v, ok := m.Get([]byte("k1"))
	if !ok || string(v) != "v1" {
		t.Fatalf("Get = (%q,%v)", v, ok)
	}
	m.Set(hd, []byte("k1"), []byte("v2-longer-value"))
	if v, _ := m.Get([]byte("k1")); string(v) != "v2-longer-value" {
		t.Fatalf("updated value = %q", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if !m.Delete(hd, []byte("k1")) {
		t.Fatal("Delete failed")
	}
	if m.Delete(hd, []byte("k1")) {
		t.Fatal("double Delete succeeded")
	}
}

func TestHashMapExpireStamp(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	m, _ := NewHashMap(a, hd, 64)
	if !m.SetExpire(hd, []byte("k"), []byte("v"), 500) {
		t.Fatal("SetExpire failed")
	}
	v, at, ok := m.GetExpire([]byte("k"))
	if !ok || string(v) != "v" || at != 500 {
		t.Fatalf("GetExpire = (%q,%d,%v)", v, at, ok)
	}
	// The map returns expired records verbatim — policy is the caller's.
	if _, ok := m.Get([]byte("k")); !ok {
		t.Fatal("map-level Get filtered an expired record")
	}
	// UpdateExpire refuses dead records (no resurrection) but rewrites
	// live ones in place; Set replaces and clears the stamp.
	if _, ok := m.UpdateExpire([]byte("k"), 9000, 600); ok {
		t.Fatal("UpdateExpire modified a record already past its stamp")
	}
	if prev, ok := m.UpdateExpire([]byte("k"), 9000, 400); !ok || prev != 500 {
		t.Fatalf("UpdateExpire live = (%d,%v)", prev, ok)
	}
	if _, at, _ := m.GetExpire([]byte("k")); at != 9000 {
		t.Fatalf("stamp after update = %d", at)
	}
	m.Set(hd, []byte("k"), []byte("v2"))
	if _, at, _ := m.GetExpire([]byte("k")); at != 0 {
		t.Fatalf("Set kept the old stamp: %d", at)
	}
	// DeleteExpired only fires when the stamp has actually passed.
	m.SetExpire(hd, []byte("k"), []byte("v3"), 1000)
	if m.DeleteExpired(hd, []byte("k"), 999) {
		t.Fatal("DeleteExpired removed a live record")
	}
	if m.DeleteExpired(hd, []byte("missing"), 5000) {
		t.Fatal("DeleteExpired removed a missing key")
	}
	if !m.DeleteExpired(hd, []byte("k"), 1000) {
		t.Fatal("DeleteExpired refused a dead record")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after DeleteExpired", m.Len())
	}
	// Immortal records are never sweepable.
	m.Set(hd, []byte("imm"), []byte("v"))
	if m.DeleteExpired(hd, []byte("imm"), 1<<62) {
		t.Fatal("DeleteExpired removed an immortal record")
	}
}

func TestHashMapRangeExpire(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	m, _ := NewHashMap(a, hd, 32)
	for i := 0; i < 50; i++ {
		at := uint64(0)
		if i%2 == 1 {
			at = uint64(1000 + i)
		}
		if !m.SetExpire(hd, []byte(fmt.Sprintf("k%02d", i)), []byte("v"), at) {
			t.Fatal("OOM")
		}
	}
	stamped := 0
	m.RangeExpire(func(key, _ []byte, at uint64) bool {
		if at != 0 {
			stamped++
			idx := int(key[1]-'0')*10 + int(key[2]-'0')
			if want := uint64(1000 + idx); at != want {
				t.Fatalf("key %s stamp = %d, want %d", key, at, want)
			}
		}
		return true
	})
	if stamped != 25 {
		t.Fatalf("walked %d stamped records, want 25", stamped)
	}
}

func TestHashMapModel(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	m, _ := NewHashMap(a, hd, 128)
	model := map[string]string{}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key-%d", rng.Intn(300))
		switch rng.Intn(3) {
		case 0:
			val := fmt.Sprintf("val-%d", rng.Intn(100000))
			if !m.Set(hd, []byte(key), []byte(val)) {
				t.Fatal("OOM")
			}
			model[key] = val
		case 1:
			del := m.Delete(hd, []byte(key))
			_, existed := model[key]
			if del != existed {
				t.Fatalf("op %d: Delete(%s)=%v, existed=%v", i, key, del, existed)
			}
			delete(model, key)
		default:
			v, ok := m.Get([]byte(key))
			mv, existed := model[key]
			if ok != existed || (ok && string(v) != mv) {
				t.Fatalf("op %d: Get(%s)=(%q,%v), want (%q,%v)", i, key, v, ok, mv, existed)
			}
		}
	}
	if m.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(model))
	}
}

func TestHashMapQuickRoundTrip(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	m, _ := NewHashMap(a, hd, 256)
	f := func(key, val []byte) bool {
		if len(key) == 0 || len(key) > 512 || len(val) > 512 {
			return true
		}
		if !m.Set(hd, key, val) {
			return false
		}
		got, ok := m.Get(key)
		return ok && string(got) == string(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapConcurrent(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	m, _ := NewHashMap(a, a.NewHandle(), 512)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hd := a.NewHandle()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 4000; i++ {
				key := []byte(fmt.Sprintf("w%d-k%d", w, rng.Intn(200)))
				switch rng.Intn(3) {
				case 0:
					if !m.Set(hd, key, []byte(fmt.Sprintf("v%d", i))) {
						t.Error("OOM")
						return
					}
				case 1:
					m.Delete(hd, key)
				default:
					m.Get(key)
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapCrashRecoveryConservative(t *testing.T) {
	// The hash map links with off-holders, so it survives recovery even
	// under purely conservative tracing — no filter registered at all.
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	m, hdrOff := NewHashMap(a, hd, 64)
	want := map[string]string{}
	for i := 0; i < 500; i++ {
		k, v := fmt.Sprintf("key-%04d", i), fmt.Sprintf("value-%04d", i)
		if !m.Set(hd, []byte(k), []byte(v)) {
			t.Fatal("OOM")
		}
		want[k] = v
	}
	h.SetRoot(0, hdrOff)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil) // conservative
	if _, err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	m2 := AttachHashMap(a, hdrOff)
	for k, v := range want {
		got, ok := m2.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("key %s = (%q,%v) after recovery, want %q", k, got, ok, v)
		}
	}
	if m2.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", m2.Len(), len(want))
	}
}

func TestHashMapCrashRecoveryWithFilter(t *testing.T) {
	h := rheap(t)
	a := h.AsAllocator()
	hd := a.NewHandle()
	m, hdrOff := NewHashMap(a, hd, 64)
	for i := 0; i < 300; i++ {
		m.Set(hd, []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	// Plus leaked blocks that must be reclaimed.
	for i := 0; i < 1000; i++ {
		hd.Malloc(64)
	}
	h.SetRoot(0, hdrOff)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, HashMapFilter(h.Region()))
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// header + bucket array + 300 nodes.
	if stats.ReachableBlocks != 302 {
		t.Fatalf("reachable = %d, want 302", stats.ReachableBlocks)
	}
	m2 := AttachHashMap(a, hdrOff)
	hd2 := a.NewHandle()
	for i := 0; i < 300; i++ {
		if v, ok := m2.Get([]byte(fmt.Sprintf("k%d", i))); !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key k%d lost or wrong: (%q,%v)", i, v, ok)
		}
	}
	// Still writable.
	if !m2.Set(hd2, []byte("post"), []byte("crash")) {
		t.Fatal("Set after recovery failed")
	}
}
