package lrmalloc

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloctest"
	"repro/internal/ralloc"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(size uint64) (alloc.Allocator, error) {
		return New(ralloc.Config{SBRegion: size, GrowthChunk: 1 << 20})
	})
}

func TestNameAndNoPersistence(t *testing.T) {
	a, err := New(ralloc.Config{SBRegion: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "lrmalloc" {
		t.Fatalf("Name = %q", a.Name())
	}
	hd := a.NewHandle()
	for i := 0; i < 5000; i++ {
		hd.Free(hd.Malloc(64))
	}
	if s := a.Region().Stats(); s.Flushes != 0 || s.Fences != 0 {
		t.Fatalf("LRMalloc flushed %d / fenced %d; must be zero", s.Flushes, s.Fences)
	}
}
