// Package lrmalloc provides the LRMalloc baseline: the transient, lock-free
// allocator of Leite and Rocha that Ralloc is built on. Following the
// paper's evaluation setup (§6.1), LRMalloc is exactly "Ralloc without flush
// and fence": we reuse the Ralloc implementation with persistence compiled
// out, which both matches the paper and guarantees the two differ only in
// persistence cost.
package lrmalloc

import (
	"repro/internal/alloc"
	"repro/internal/ralloc"
)

// New creates a transient LRMalloc heap over a fresh region.
func New(cfg ralloc.Config) (alloc.Allocator, error) {
	cfg.NoFlush = true
	h, _, err := ralloc.Open("", cfg)
	if err != nil {
		return nil, err
	}
	return h.AsAllocator(), nil
}
