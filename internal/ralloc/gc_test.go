package ralloc

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/pptr"
)

func crashHeap(t *testing.T, evictProb float64) *Heap {
	t.Helper()
	h, dirty, err := Open("", Config{
		SBRegion:    8 << 20,
		GrowthChunk: 1 << 20,
		Pmem:        pmem.Config{Mode: pmem.ModeCrashSim, EvictProb: evictProb, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Fatal("fresh heap dirty")
	}
	return h
}

// buildList allocates a persistent singly linked list of n 64-byte nodes
// (word 0: next off-holder, word 1: value), durably linearizable: each node
// is flushed before being linked, and the root is set last. Returns the head
// offset and the node offsets in list order.
func buildList(t *testing.T, h *Heap, hd *Handle, n int, root int) []uint64 {
	t.Helper()
	r := h.Region()
	var nodes []uint64
	var prev uint64
	for i := 0; i < n; i++ {
		off := hd.Malloc(64)
		if off == 0 {
			t.Fatal("OOM building list")
		}
		if prev == 0 {
			r.Store(off, pptr.Nil)
		} else {
			r.Store(off, pptr.Pack(off, prev))
		}
		r.Store(off+8, uint64(1000+i))
		r.FlushRange(off, 16)
		r.Fence()
		prev = off
		nodes = append(nodes, off)
	}
	h.SetRoot(root, prev) // head = last inserted
	return nodes
}

// walkList follows the off-holder chain from the root and returns the node
// offsets visited.
func walkList(h *Heap, root int) []uint64 {
	r := h.Region()
	var out []uint64
	off := h.GetRoot(root, nil)
	for off != 0 {
		out = append(out, off)
		next, ok := pptr.Unpack(off, r.Load(off))
		if !ok {
			break
		}
		off = next
	}
	return out
}

func TestRecoverEmptyHeap(t *testing.T) {
	h := crashHeap(t, 0)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 0 {
		t.Fatalf("reachable = %d, want 0", stats.ReachableBlocks)
	}
	if h.NewHandle().Malloc(64) == 0 {
		t.Fatal("OOM after recovery")
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverReclaimsLeakedBlocks(t *testing.T) {
	// Blocks that were allocated but never attached to a root are exactly
	// the failure-induced leaks recovery must reclaim (§1, §3).
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	for i := 0; i < 5000; i++ {
		if hd.Malloc(64) == 0 {
			t.Fatal("OOM")
		}
	}
	usedBefore := h.SBUsed()
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 0 {
		t.Fatalf("reachable = %d, want 0 (nothing was attached)", stats.ReachableBlocks)
	}
	// The reclaimed space must be reusable without growing the region.
	hd2 := h.NewHandle()
	for i := 0; i < 5000; i++ {
		if hd2.Malloc(64) == 0 {
			t.Fatal("OOM after recovery")
		}
	}
	if h.SBUsed() > usedBefore {
		t.Fatalf("region grew from %d to %d; leaks were not reclaimed", usedBefore, h.SBUsed())
	}
}

func TestRecoverPreservesReachableList(t *testing.T) {
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	nodes := buildList(t, h, hd, 500, 0)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil) // conservative tracing
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 500 {
		t.Fatalf("reachable = %d, want 500", stats.ReachableBlocks)
	}
	got := walkList(h, 0)
	if len(got) != 500 {
		t.Fatalf("walk found %d nodes, want 500", len(got))
	}
	r := h.Region()
	for i, off := range got {
		if v := r.Load(off + 8); v != uint64(1000+499-i) {
			t.Fatalf("node %d value = %d, want %d", i, v, 1000+499-i)
		}
	}
	// New allocations must never overlap the surviving list.
	live := make(map[uint64]bool, len(nodes))
	for _, off := range got {
		live[off] = true
	}
	hd2 := h.NewHandle()
	for i := 0; i < 20000; i++ {
		off := hd2.Malloc(64)
		if off == 0 {
			t.Fatal("OOM")
		}
		if live[off] {
			t.Fatalf("recovery handed out reachable block %#x", off)
		}
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverMixedLiveAndFreed(t *testing.T) {
	// Interleave surviving list nodes with blocks that get detached and
	// freed: after crash+recovery, exactly the attached ones remain.
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	nodes := buildList(t, h, hd, 300, 0)
	for i := 0; i < 2000; i++ {
		off := hd.Malloc(48)
		if i%2 == 0 {
			hd.Free(off)
		}
	}
	_ = nodes
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 300 {
		t.Fatalf("reachable = %d, want 300", stats.ReachableBlocks)
	}
	if len(walkList(h, 0)) != 300 {
		t.Fatal("list damaged by recovery")
	}
}

func TestRecoverWithEviction(t *testing.T) {
	// Adversarial crash: half of the unflushed lines were spontaneously
	// evicted (and thus persisted). Recovery must still be exact for the
	// durably-written list and structurally consistent overall.
	h := crashHeap(t, 0.5)
	hd := h.NewHandle()
	buildList(t, h, hd, 400, 0)
	for i := 0; i < 3000; i++ {
		off := hd.Malloc(64)
		if i%3 != 0 {
			hd.Free(off)
		}
	}
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	if _, err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := len(walkList(h, 0)); got != 400 {
		t.Fatalf("list has %d nodes after eviction crash, want 400", got)
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverLargeBlocks(t *testing.T) {
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	r := h.Region()

	// Header block holding an off-holder to a large block: attached.
	hdr := hd.Malloc(16)
	big := hd.Malloc(150_000)
	if hdr == 0 || big == 0 {
		t.Fatal("OOM")
	}
	r.Store(big, 0xB16B10C)
	r.FlushRange(big, 8)
	r.Store(hdr, pptr.Pack(hdr, big))
	r.FlushRange(hdr, 8)
	r.Fence()
	h.SetRoot(0, hdr)

	// A second large block, leaked (never attached).
	if hd.Malloc(150_000) == 0 {
		t.Fatal("OOM")
	}

	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 2 {
		t.Fatalf("reachable = %d, want 2 (header + large)", stats.ReachableBlocks)
	}
	if stats.LargeRuns != 1 {
		t.Fatalf("large runs kept = %d, want 1", stats.LargeRuns)
	}
	if v := r.Load(big); v != 0xB16B10C {
		t.Fatalf("large block content = %#x", v)
	}
	// The leaked run's superblocks must be reusable.
	chk, err := h.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if chk.FreeListLen == 0 {
		t.Fatal("leaked large run was not reclaimed")
	}
}

func TestRecoverInteriorPointerRejected(t *testing.T) {
	// Conservative GC must not treat a pointer into the middle of a large
	// run (or mid-block) as reaching anything (§4.5: interior pointers
	// are not supported).
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	r := h.Region()
	big := hd.Malloc(150_000)
	hdr := hd.Malloc(16)
	r.Store(hdr, pptr.Pack(hdr, big+SuperblockBytes)) // into run body
	r.FlushRange(hdr, 8)
	r.Fence()
	h.SetRoot(0, hdr)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 1 { // just the header
		t.Fatalf("reachable = %d, want 1", stats.ReachableBlocks)
	}
}

func TestFilterFunctionTracesTaggedPointers(t *testing.T) {
	// Structure using counter-tagged offsets (not off-holders):
	// conservative GC cannot see the links, a filter function can —
	// the scenario filter functions exist for (§4.5.1).
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	r := h.Region()

	const n = 100
	var prev uint64
	for i := 0; i < n; i++ {
		off := hd.Malloc(64)
		r.Store(off, pptr.PackTag(uint64(i), prev)) // tagged next
		r.Store(off+8, uint64(i))
		r.FlushRange(off, 16)
		r.Fence()
		prev = off
	}
	h.SetRoot(0, prev)

	filter := func(g *GC, off uint64) {
		_, next := pptr.UnpackTag(r.Load(off))
		if next != 0 {
			g.Visit(next, nil) // child uses the same filter via recursion
		}
	}
	// Make the filter self-recursive.
	var nodeFilter Filter
	nodeFilter = func(g *GC, off uint64) {
		_, next := pptr.UnpackTag(r.Load(off))
		if next != 0 {
			g.Visit(next, nodeFilter)
		}
	}
	_ = filter

	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}

	// First, demonstrate the failure mode: conservative tracing sees only
	// the head node.
	h.GetRoot(0, nil)
	g := newGC(h)
	g.collect()
	if g.reachableBlocks != 1 {
		t.Fatalf("conservative trace found %d blocks, want 1 (tagged links invisible)", g.reachableBlocks)
	}

	// With the filter, the whole chain survives recovery.
	h.GetRoot(0, nodeFilter)
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != n {
		t.Fatalf("filtered recovery reachable = %d, want %d", stats.ReachableBlocks, n)
	}
}

func TestConservativeFalsePositiveLeaksSafely(t *testing.T) {
	// A value word that happens to look like an off-holder makes a freed
	// block appear "in use". Per the paper this may leak memory but must
	// never compromise safety: the block is treated as allocated.
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	r := h.Region()

	victim := hd.Malloc(64)
	hd.Free(victim)

	hdr := hd.Malloc(16)
	r.Store(hdr, pptr.Pack(hdr, victim)) // stale-looking "pointer"
	r.FlushRange(hdr, 8)
	r.Fence()
	h.SetRoot(0, hdr)

	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 2 {
		t.Fatalf("reachable = %d, want 2 (header + false positive)", stats.ReachableBlocks)
	}
	// Safety: the falsely-retained block is never handed out again.
	hd2 := h.NewHandle()
	for i := 0; i < 10000; i++ {
		if off := hd2.Malloc(64); off == victim {
			t.Fatal("false-positive block was re-allocated")
		}
	}
}

func TestRecoverIdempotent(t *testing.T) {
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	buildList(t, h, hd, 200, 0)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	s1, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	s2, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if s1.ReachableBlocks != s2.ReachableBlocks {
		t.Fatalf("recovery not idempotent: %d then %d reachable", s1.ReachableBlocks, s2.ReachableBlocks)
	}
	if len(walkList(h, 0)) != 200 {
		t.Fatal("list damaged by double recovery")
	}
}

func TestRecoverCrashDuringRecoveryRetries(t *testing.T) {
	// The heap stays dirty throughout recovery: crashing mid-recovery and
	// recovering again must converge to the same state.
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	buildList(t, h, hd, 150, 0)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	if h.Region().Load(offDirty) == 0 {
		t.Fatal("dirty flag lost in crash")
	}
	h.GetRoot(0, nil)
	if _, err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	// Crash again immediately (recovery's own writes partially persisted
	// via the final flush) and recover once more.
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 150 {
		t.Fatalf("reachable = %d after re-crash, want 150", stats.ReachableBlocks)
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverInvalidatesHandles(t *testing.T) {
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	hd.Malloc(64)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("stale handle must panic after recovery")
		}
	}()
	hd.Malloc(64)
}

func TestRandomizedCrashRecovery(t *testing.T) {
	// Property: build a random pointer graph with durable writes, crash
	// at an arbitrary operation boundary, recover, and check that
	// (i) everything transitively reachable from the root survived,
	// (ii) allocator invariants hold, (iii) fresh allocations never
	// collide with survivors.
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		h := crashHeap(t, float64(trial%3)*0.5) // evict prob 0, 0.5, 1.0
		hd := h.NewHandle()
		r := h.Region()

		// Allocate a pool of nodes, each with up to 3 off-holder slots.
		const pool = 300
		nodes := make([]uint64, pool)
		for i := range nodes {
			off := hd.Malloc(64)
			if off == 0 {
				t.Fatal("OOM")
			}
			nodes[i] = off
			r.Zero(off, 64)
		}
		// Wire random edges.
		for i, off := range nodes {
			for s := uint64(0); s < 3; s++ {
				if rng.Intn(2) == 0 {
					target := nodes[rng.Intn(pool)]
					if target != off+s*8 && target != off {
						r.Store(off+s*8, pptr.Pack(off+s*8, target))
					}
				}
			}
			r.FlushRange(off, 64)
			if i%16 == 0 {
				r.Fence()
			}
		}
		r.Fence()
		rootNode := nodes[rng.Intn(pool)]
		h.SetRoot(0, rootNode)

		if err := r.Crash(); err != nil {
			t.Fatal(err)
		}
		h.GetRoot(0, nil)
		if _, err := h.Recover(); err != nil {
			t.Fatal(err)
		}

		// Compute expected reachability over the surviving memory.
		reach := map[uint64]bool{}
		var stack []uint64
		stack = append(stack, rootNode)
		for len(stack) > 0 {
			off := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[off] {
				continue
			}
			reach[off] = true
			for s := uint64(0); s < 3; s++ {
				if tgt, ok := pptr.Unpack(off+s*8, r.Load(off+s*8)); ok {
					if !reach[tgt] {
						stack = append(stack, tgt)
					}
				}
			}
		}

		// Fresh allocations must avoid every reachable block.
		hd2 := h.NewHandle()
		for i := 0; i < 5000; i++ {
			off := hd2.Malloc(64)
			if off == 0 {
				t.Fatal("OOM after recovery")
			}
			if reach[off] {
				t.Fatalf("trial %d: reachable block %#x re-allocated", trial, off)
			}
		}
		if _, err := h.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRecoveryStatsPopulated(t *testing.T) {
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	buildList(t, h, hd, 100, 0)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	stats, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBytes != 100*64 {
		t.Fatalf("ReachableBytes = %d, want %d", stats.ReachableBytes, 100*64)
	}
	if stats.Duration <= 0 {
		t.Fatal("Duration not measured")
	}
	if stats.PartialSBs == 0 && stats.FullSBs == 0 {
		t.Fatal("sweep found no superblocks holding the list")
	}
}
