package ralloc

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/pptr"
)

func TestResizePreservesDataAndGrowsCapacity(t *testing.T) {
	h, _, err := Open("", Config{
		SBRegion:    2 << 20,
		GrowthChunk: 1 << 20,
		Pmem:        pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		t.Fatal(err)
	}
	hd := h.NewHandle()
	nodes := buildList(t, h, hd, 200, 0)

	// Exhaust the small heap.
	var extra int
	hd2 := h.NewHandle()
	for hd2.Malloc(14336) != 0 {
		extra++
	}
	if extra == 0 {
		t.Fatal("heap never filled")
	}

	nh, err := Resize(h, 16<<20, Config{
		GrowthChunk: 1 << 20,
		Pmem:        pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		t.Fatal(err)
	}

	// All data intact, same offsets — zero rearrangement.
	got := walkList(nh, 0)
	if len(got) != len(nodes) {
		t.Fatalf("list has %d nodes after resize, want %d", len(got), len(nodes))
	}
	for i, off := range got {
		if off != nodes[len(nodes)-1-i] {
			t.Fatalf("node %d moved: %#x vs %#x", i, off, nodes[len(nodes)-1-i])
		}
	}
	// And there is room again.
	nhd := nh.NewHandle()
	ok := 0
	for i := 0; i < 100; i++ {
		if nhd.Malloc(14336) != 0 {
			ok++
		}
	}
	if ok != 100 {
		t.Fatalf("only %d/100 allocations after resize", ok)
	}
	if _, err := nh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResizePreservesTaggedOffsets(t *testing.T) {
	// The reason the superblock base is pinned: absolute offsets inside
	// counter-tagged words must survive a resize verbatim.
	h, _, err := Open("", Config{SBRegion: 2 << 20, GrowthChunk: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	hd := h.NewHandle()
	target := hd.Malloc(64)
	h.Region().Store(target, 777)
	holder := hd.Malloc(16)
	h.Region().Store(holder, pptr.PackTag(5, target))
	h.SetRoot(0, holder)

	nh, err := Resize(h, 8<<20, Config{GrowthChunk: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	root := nh.GetRoot(0, nil)
	if root != holder {
		t.Fatalf("root moved: %#x vs %#x", root, holder)
	}
	_, off := pptr.UnpackTag(nh.Region().Load(root))
	if off != target {
		t.Fatalf("tagged offset moved: %#x vs %#x", off, target)
	}
	if v := nh.Region().Load(off); v != 777 {
		t.Fatalf("target value = %d", v)
	}
}

func TestResizeRecoveryStillWorks(t *testing.T) {
	h, _, err := Open("", Config{
		SBRegion: 2 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		t.Fatal(err)
	}
	hd := h.NewHandle()
	buildList(t, h, hd, 100, 0)
	nh, err := Resize(h, 8<<20, Config{Pmem: pmem.Config{Mode: pmem.ModeCrashSim}})
	if err != nil {
		t.Fatal(err)
	}
	// Leak, crash, recover on the resized heap.
	nhd := nh.NewHandle()
	for i := 0; i < 1000; i++ {
		nhd.Malloc(64)
	}
	if err := nh.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	nh.GetRoot(0, nil)
	stats, err := nh.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 100 {
		t.Fatalf("reachable = %d, want 100", stats.ReachableBlocks)
	}
	if len(walkList(nh, 0)) != 100 {
		t.Fatal("list damaged")
	}
}

func TestResizeRejectsShrink(t *testing.T) {
	h, _, err := Open("", Config{SBRegion: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resize(h, 2<<20, Config{}); err == nil {
		t.Fatal("shrink accepted")
	}
}

func TestResizeInvalidatesOldHeap(t *testing.T) {
	h, _, err := Open("", Config{SBRegion: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	hd := h.NewHandle()
	hd.Malloc(64)
	if _, err := Resize(h, 4<<20, Config{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != ErrClosed {
		t.Fatalf("old heap Close = %v, want ErrClosed", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("old handle must panic after resize")
		}
	}()
	hd.Malloc(64)
}
