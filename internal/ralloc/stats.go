package ralloc

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pptr"
	"repro/internal/sizeclass"
)

// Per-shard allocator telemetry. The Malloc/Free fast paths — thread-cache
// hit, no synchronization — are deliberately uninstrumented: Ralloc's whole
// point is that the common case costs nothing, and a shared counter there
// would reintroduce exactly the cache-line traffic the sharded lists remove.
// Counters live on the slow paths only (cache refill, cache drain, remote-
// free batches, region growth), so alloc/free volume is reported at
// refill/return granularity. Each shard's block is one padded cache line;
// handles homed on different shards never false-share.

// shardCounters is one shard's slow-path counter block (64 bytes).
type shardCounters struct {
	refills      atomic.Uint64 // cache refills served (any source)
	refillBlocks atomic.Uint64 // blocks acquired from global lists/region
	steals       atomic.Uint64 // refills served by another shard's list
	grows        atomic.Uint64 // region expansions
	drains       atomic.Uint64 // cache overflows returned to superblocks
	freeBatches  atomic.Uint64 // anchor-CAS batches (one per SB group)
	freeBlocks   atomic.Uint64 // blocks returned inside those batches
	_            [8]byte
}

// ShardStats is a point-in-time copy of one shard's counters plus a bounded
// estimate of its partial-list population.
type ShardStats struct {
	Refills      uint64
	RefillBlocks uint64
	Steals       uint64
	Grows        uint64
	Drains       uint64
	FreeBatches  uint64
	FreeBlocks   uint64
	// PartialSBs counts descriptors on this shard's partial lists across
	// all size classes, from a bounded lock-free walk: concurrent pushes
	// and pops can skew it, and the walk stops at a safety cap, so it is
	// an observability estimate, never an invariant.
	PartialSBs int
}

// partialWalkCap bounds ShardStats' list walks: the Treiber links are
// mutated concurrently, so an unlucky snapshot could chase a stale chain;
// capping the walk keeps a /metrics scrape O(1) regardless.
const partialWalkCap = 1 << 14

// ShardStats snapshots every shard's counters. Safe during live traffic.
func (h *Heap) ShardStats() []ShardStats {
	out := make([]ShardStats, h.shards)
	for s := range out {
		c := &h.stats[s]
		out[s] = ShardStats{
			Refills:      c.refills.Load(),
			RefillBlocks: c.refillBlocks.Load(),
			Steals:       c.steals.Load(),
			Grows:        c.grows.Load(),
			Drains:       c.drains.Load(),
			FreeBatches:  c.freeBatches.Load(),
			FreeBlocks:   c.freeBlocks.Load(),
			PartialSBs:   h.partialLenBounded(uint32(s)),
		}
	}
	return out
}

// partialLenBounded walks shard s's per-class partial lists under the
// global walk cap.
func (h *Heap) partialLenBounded(s uint32) int {
	n, budget := 0, partialWalkCap
	for c := 1; c <= sizeclass.NumClasses && budget > 0; c++ {
		got := h.listLenBounded(partialHeadOff(c, s), dOffNextPartial, budget)
		n += got
		budget -= got
	}
	return n
}

// listLenBounded is listLen with an iteration cap, safe to call during
// concurrent mutation (the count is approximate; the walk always ends).
func (h *Heap) listLenBounded(headOff, linkOff uint64, max int) int {
	n := 0
	_, idx, ok := pptr.UnpackHead(h.region.Load(headOff))
	for ok && n < max {
		n++
		next := h.region.Load(h.lay.descOff(idx) + linkOff)
		if next == 0 {
			break
		}
		idx = uint32(next - 1)
	}
	return n
}

// Collect implements obs.Collector: the allocator's /metrics families,
// labeled by shard, plus heap-level gauges.
func (h *Heap) Collect(e *obs.Emitter) {
	e.Family("ralloc_allocator_refills_total", "counter", "Thread-cache refills per shard.")
	e.Family("ralloc_allocator_refill_blocks_total", "counter", "Blocks acquired from global lists per shard.")
	e.Family("ralloc_allocator_steals_total", "counter", "Refills served by stealing from another shard.")
	e.Family("ralloc_allocator_grows_total", "counter", "Superblock-region expansions per shard.")
	e.Family("ralloc_allocator_drains_total", "counter", "Thread-cache overflow drains per shard.")
	e.Family("ralloc_allocator_free_batches_total", "counter", "Batched remote frees (one anchor CAS per superblock group).")
	e.Family("ralloc_allocator_free_blocks_total", "counter", "Blocks returned via remote-free batches.")
	e.Family("ralloc_allocator_partial_superblocks", "gauge", "Partial-list descriptors per shard (bounded estimate).")
	for i, s := range h.ShardStats() {
		shard := fmt.Sprintf("%d", i)
		e.Value("ralloc_allocator_refills_total", float64(s.Refills), "shard", shard)
		e.Value("ralloc_allocator_refill_blocks_total", float64(s.RefillBlocks), "shard", shard)
		e.Value("ralloc_allocator_steals_total", float64(s.Steals), "shard", shard)
		e.Value("ralloc_allocator_grows_total", float64(s.Grows), "shard", shard)
		e.Value("ralloc_allocator_drains_total", float64(s.Drains), "shard", shard)
		e.Value("ralloc_allocator_free_batches_total", float64(s.FreeBatches), "shard", shard)
		e.Value("ralloc_allocator_free_blocks_total", float64(s.FreeBlocks), "shard", shard)
		e.Value("ralloc_allocator_partial_superblocks", float64(s.PartialSBs), "shard", shard)
	}
	e.Family("ralloc_allocator_sb_used_bytes", "gauge", "Used portion of the superblock region.")
	e.Value("ralloc_allocator_sb_used_bytes", float64(h.SBUsed()))
}
