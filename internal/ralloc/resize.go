package ralloc

import (
	"fmt"

	"repro/internal/pmem"
)

// Heap resizing (§4.1): "Resizing currently requires an allocator restart
// and an init() call with a larger size. As a practical matter, resizing
// only changes the first word of the superblock region and calls mmap with
// a larger size; no data rearrangement is required."
//
// The layout keeps the superblock region at a fixed base (directly after
// the metadata region) precisely so that resizing is rearrangement-free:
// block offsets, off-holders, counter-tagged offsets and roots are all
// unchanged. Only the descriptor region — whose contents are pure indices —
// relocates to the end of the larger mapping.

// Resize returns a new heap whose superblock region can grow to newSBSize
// bytes, carrying over all data from the (cleanly closed or just-recovered,
// quiescent) source heap. The source heap must not be used afterwards.
//
// Root filter registrations are transient and do not carry over; re-register
// via GetRoot as after any restart.
func Resize(h *Heap, newSBSize uint64, cfg Config) (*Heap, error) {
	cfg = cfg.withDefaults()
	cfg.SBRegion = newSBSize
	newLay, err := computeLayout(newSBSize)
	if err != nil {
		return nil, err
	}
	if newLay.sbSize < h.lay.sbSize {
		return nil, fmt.Errorf("ralloc: cannot shrink heap from %d to %d", h.lay.sbSize, newLay.sbSize)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	h.closed = true // retire the old heap
	handles := h.handles
	h.handles = nil
	h.mu.Unlock()
	for _, hd := range handles {
		hd.returnAll()
		hd.invalid = true
	}

	old := h.region
	region := pmem.NewRegion(newLay.total, cfg.Pmem)
	nh := &Heap{region: region, cfg: cfg, lay: newLay, path: h.path}
	nh.setShards(uint32(cfg.Shards))

	// Metadata region: verbatim copy, then the one geometry word that
	// changes (§4.1: "resizing only changes the first word of the
	// superblock region"). Roots are off-holders from fixed metadata
	// slots to a superblock region whose base is unchanged: copied as-is.
	for off := uint64(0); off < MetaBytes; off += 8 {
		region.Store(off, old.Load(off))
	}
	region.Store(offSBSize, newLay.sbSize)

	// Superblock region: verbatim copy of the used prefix at the same
	// base — no data rearrangement.
	usedBytes := old.Load(offSBUsed)
	for off := uint64(0); off < usedBytes; off += 8 {
		region.Store(newLay.sbStart+off, old.Load(h.lay.sbStart+off))
	}

	// Descriptor region: relocated wholesale; its contents (anchors,
	// class info, index-based list links) are position-independent.
	usedDescs := uint32(usedBytes / SuperblockBytes)
	for i := uint32(0); i < usedDescs; i++ {
		src := h.lay.descOff(i)
		dst := newLay.descOff(i)
		for w := uint64(0); w < DescBytes; w += 8 {
			region.Store(dst+w, old.Load(src+w))
		}
	}

	// The source is quiescent with trustworthy lists, so a shard-count
	// change is reconciled by remapping, exactly as on a clean attach.
	// This must follow the descriptor copy: the list links being walked
	// live in the relocated descriptors.
	if stored := uint32(old.Load(offShards)); stored != nh.shards {
		nh.remapShards(stored)
		region.Store(offShards, uint64(nh.shards))
	}

	region.FlushRange(0, region.Size())
	region.Fence()
	return nh, nil
}
