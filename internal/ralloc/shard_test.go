package ralloc

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/sizeclass"
)

// Tests for the sharded partial lists and the batched remote-free path:
// concurrent churn under -race, recovery rebuilding the sharded lists with
// no descriptor lost or duplicated, shard-count migration across clean
// restarts, and the Close/SaveFile dirty-flag protocol.

// TestShardedChurnRace drives concurrent Malloc/Free churn across handles
// with every free remote: goroutines pass each allocated batch one position
// around a ring, so blocks are always freed by a different handle than the
// one that allocated them, exercising freeBatch splices and partial-list
// pushes/steals across shards. Run under -race this doubles as a data-race
// check on the sharded head words.
func TestShardedChurnRace(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := Config{
			SBRegion:    64 << 20,
			GrowthChunk: 1 << 20,
			Shards:      shards,
			CacheCap:    48, // small cache: frequent drains through the global lists
		}
		h := testHeap(t, cfg)
		const (
			goroutines = 8
			iters      = 300
			batch      = 32
		)
		sizes := []uint64{16, 64, 192, 1024}
		chans := make([]chan []uint64, goroutines)
		for i := range chans {
			chans[i] = make(chan []uint64, 1)
		}
		var wg sync.WaitGroup
		for id := 0; id < goroutines; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				hd := h.NewHandle()
				rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
				for it := 0; it < iters; it++ {
					out := make([]uint64, batch)
					size := sizes[rng.Intn(len(sizes))]
					for i := range out {
						out[i] = hd.Malloc(size)
						if out[i] == 0 {
							panic("churn OOM")
						}
					}
					chans[(id+1)%goroutines] <- out
					for _, b := range <-chans[id] {
						hd.Free(b)
					}
				}
				hd.Flush()
			}(id)
		}
		wg.Wait()

		chk, err := h.CheckInvariants()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if chk.AllocatedBlks != 0 {
			t.Fatalf("shards=%d: %d blocks leaked after full churn", shards, chk.AllocatedBlks)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// descAccounting verifies that after recovery every used descriptor is
// accounted for exactly once: on the superblock free list, on exactly one
// partial-list shard of its class, FULL off-list, or part of a live large
// run. CheckInvariants already rejects duplicates and cross-list membership;
// this adds the "nothing lost" direction.
func descAccounting(t *testing.T, h *Heap) {
	t.Helper()
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	r := h.region
	n := h.usedDescs()

	onFree := make(map[uint32]bool)
	_, idx, ok := pptr.UnpackHead(r.Load(offFreeHead))
	for ok {
		onFree[idx] = true
		next := r.Load(h.lay.descOff(idx) + dOffNextFree)
		if next == 0 {
			break
		}
		idx = uint32(next - 1)
	}
	onPartial := make(map[uint32]bool)
	for c := 1; c <= sizeclass.NumClasses; c++ {
		for s := uint32(0); s < MaxShards; s++ {
			_, idx, ok := pptr.UnpackHead(r.Load(partialHeadOff(c, s)))
			for ok {
				onPartial[idx] = true
				next := r.Load(h.lay.descOff(idx) + dOffNextPartial)
				if next == 0 {
					break
				}
				idx = uint32(next - 1)
			}
		}
	}

	accounted := uint32(0)
	for i := uint32(0); i < n; {
		d := h.lay.descOff(i)
		cls := r.Load(d + dOffClass)
		bs := r.Load(d + dOffBlockSize)
		numSB := r.Load(d + dOffNumSB)
		switch {
		case cls == 0 && bs > 0 && numSB > 0: // live large run
			for j := uint32(0); j < uint32(numSB); j++ {
				if onFree[i+j] || onPartial[i+j] {
					t.Fatalf("desc %d of live large run on a list", i+j)
				}
			}
			accounted += uint32(numSB)
			i += uint32(numSB)
		case cls == contClass:
			t.Fatalf("desc %d: orphaned continuation survived recovery", i)
		case cls >= 1 && cls <= uint64(sizeclass.NumClasses):
			st, _, _ := unpackAnchor(r.Load(d + dOffAnchor))
			switch st {
			case statePartial:
				if !onPartial[i] {
					t.Fatalf("desc %d PARTIAL but lost from every partial shard", i)
				}
			case stateFull:
				if onFree[i] || onPartial[i] {
					t.Fatalf("desc %d FULL but on a list", i)
				}
			default:
				t.Fatalf("desc %d: small class in state %d after recovery", i, st)
			}
			accounted++
			i++
		default: // uninitialized: must be on the free list
			if !onFree[i] {
				t.Fatalf("desc %d free but lost from the superblock free list", i)
			}
			accounted++
			i++
		}
	}
	if accounted != n {
		t.Fatalf("accounted %d of %d used descriptors", accounted, n)
	}
}

// shardedCrashHeap builds a heap holding a durable reachable list plus
// leaked small blocks and a leaked large run, then simulates a crash.
func shardedCrashHeap(t *testing.T, shards int) *Heap {
	t.Helper()
	h, dirty, err := Open("", Config{
		SBRegion:    16 << 20,
		GrowthChunk: 1 << 20,
		Shards:      shards,
		Pmem:        pmem.Config{Mode: pmem.ModeCrashSim, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Fatal("fresh heap dirty")
	}
	hd := h.NewHandle()
	buildList(t, h, hd, 1500, 0)
	for i := 0; i < 4000; i++ { // leaked small blocks across several classes
		if hd.Malloc([]uint64{16, 64, 320}[i%3]) == 0 {
			t.Fatal("OOM")
		}
	}
	if hd.Malloc(3*SuperblockBytes + 100) == 0 { // leaked large run
		t.Fatal("large OOM")
	}
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestShardedRecoveryNoLossNoDup crashes a populated heap and verifies both
// recovery paths rebuild the sharded lists with every descriptor accounted
// for exactly once, under several shard counts.
func TestShardedRecoveryNoLossNoDup(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 4} {
			h := shardedCrashHeap(t, shards)
			h.GetRoot(0, nil)
			stats, err := h.RecoverParallel(workers)
			if err != nil {
				t.Fatal(err)
			}
			if stats.ReachableBlocks != 1500 {
				t.Fatalf("shards=%d workers=%d: reachable = %d, want 1500",
					shards, workers, stats.ReachableBlocks)
			}
			if stats.SweepUnits == 0 || stats.TraceWork == 0 {
				t.Fatalf("work counters not recorded: %+v", stats)
			}
			descAccounting(t, h)
			// The rebuilt heap must still satisfy recoverability: the
			// list is intact and allocation works.
			if got := len(walkList(h, 0)); got != 1500 {
				t.Fatalf("list has %d nodes after recovery", got)
			}
			if h.NewHandle().Malloc(64) == 0 {
				t.Fatal("OOM after recovery")
			}
		}
	}
}

// TestRecoveryAcrossShardCountChange crashes a heap built with one shard
// count and recovers it after attaching with a different one — the dirty
// image's stale lists must be rebuilt wholesale under the new geometry.
func TestRecoveryAcrossShardCountChange(t *testing.T) {
	h := shardedCrashHeap(t, 1)
	h2, dirty, err := Attach(h.Region(), Config{Shards: 8, Pmem: pmem.Config{Mode: pmem.ModeCrashSim, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("crashed heap attached clean")
	}
	h2.GetRoot(0, nil)
	if _, err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	descAccounting(t, h2)
	if got := len(walkList(h2, 0)); got != 1500 {
		t.Fatalf("list has %d nodes after recovery", got)
	}
}

// TestShardRemapOnCleanReattach closes a heap under one shard count and
// reopens the saved image under others; the clean image's partial lists must
// be remapped onto the new geometry with nothing stranded on inactive
// shards (CheckInvariants rejects exactly that).
func TestShardRemapOnCleanReattach(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.img")
	cfg := func(shards int) Config {
		return Config{SBRegion: 16 << 20, GrowthChunk: 1 << 20, Shards: shards}
	}

	h, dirty, err := Open(path, cfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Fatal("fresh heap dirty")
	}
	// Create partial superblocks in a few classes: allocate several
	// superblocks' worth, free every other block, keep the rest live.
	hd := h.NewHandle()
	live := map[uint64]bool{}
	for _, size := range []uint64{64, 192, 1024} {
		var blocks []uint64
		for i := 0; i < 3000; i++ {
			off := hd.Malloc(size)
			if off == 0 {
				t.Fatal("OOM")
			}
			blocks = append(blocks, off)
		}
		for i, off := range blocks {
			if i%2 == 0 {
				hd.Free(off)
			} else {
				live[off] = true
			}
		}
	}
	hd.Flush()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4} {
		h, dirty, err = Open(path, cfg(shards))
		if err != nil {
			t.Fatal(err)
		}
		if dirty {
			t.Fatal("cleanly closed heap reported dirty")
		}
		chk, err := h.CheckInvariants()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		total := 0
		for _, l := range chk.PartialLens {
			total += l
		}
		if total == 0 {
			t.Fatalf("shards=%d: partial lists lost in remap", shards)
		}
		// The remapped lists must actually serve allocations: freshly
		// allocated blocks reuse partial superblocks, not new space.
		used := h.SBUsed()
		hd := h.NewHandle()
		for i := 0; i < 1000; i++ {
			off := hd.Malloc(64)
			if off == 0 {
				t.Fatal("OOM after remap")
			}
			if live[off] {
				t.Fatalf("remapped list handed out live block %#x", off)
			}
		}
		if h.SBUsed() != used {
			t.Fatalf("shards=%d: allocation grew the heap instead of reusing partial superblocks", shards)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCloseSaveFailureRestoresDirty forces the final SaveFile to fail and
// verifies the shutdown is not reported clean: Close errors and the dirty
// indicator is restored, so the next attach triggers recovery.
func TestCloseSaveFailureRestoresDirty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "missing", "heap.img")
	h, _, err := Open(path, Config{SBRegion: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	hd := h.NewHandle()
	if hd.Malloc(64) == 0 {
		t.Fatal("OOM")
	}
	// The temp-file create inside SaveFile fails: parent dir is missing.
	if err := h.Close(); err == nil {
		t.Fatal("Close succeeded despite failing save")
	}
	if v := h.Region().Load(offDirty); v != 1 {
		t.Fatalf("dirty = %d after failed save, want 1", v)
	}
	h2, dirty, err := Attach(h.Region(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("failed-save heap attached clean")
	}
	h2.GetRoot(0, nil)
	if _, err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = os.RemoveAll(dir)
}
