package ralloc

import (
	"math/rand"
	"testing"

	"repro/internal/pptr"
)

// buildWideGraph makes a bushy pointer graph (so parallel tracing has
// fan-out to exploit) plus a deep chain (so work-sharing must split within
// one structure). Returns the root offset and the expected reachable count.
func buildWideGraph(t *testing.T, h *Heap, hd *Handle, fanout, depth int) (uint64, uint64) {
	t.Helper()
	r := h.Region()
	count := uint64(0)
	newNode := func() uint64 {
		off := hd.Malloc(64)
		if off == 0 {
			t.Fatal("OOM")
		}
		r.Zero(off, 64)
		count++
		return off
	}
	// Deep chain.
	var chain uint64
	for i := 0; i < depth; i++ {
		n := newNode()
		if chain != 0 {
			r.Store(n, pptr.Pack(n, chain))
		}
		r.FlushRange(n, 64)
		chain = n
	}
	// Bushy tree: root with fanout children, each with fanout leaves.
	root := newNode()
	r.Store(root, pptr.Pack(root, chain))
	for i := 1; i <= fanout && i < 7; i++ {
		mid := newNode()
		for j := 1; j <= fanout && j < 7; j++ {
			leaf := newNode()
			r.Store(leaf+8, uint64(j))
			r.FlushRange(leaf, 64)
			r.Store(mid+uint64(j)*8, pptr.Pack(mid+uint64(j)*8, leaf))
		}
		r.FlushRange(mid, 64)
		r.Store(root+uint64(i)*8, pptr.Pack(root+uint64(i)*8, mid))
	}
	r.FlushRange(root, 64)
	r.Fence()
	return root, count
}

func TestRecoverParallelMatchesSequential(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		buildAndCheck := func(parallel bool) (RecoveryStats, *Heap) {
			h := crashHeap(t, 0)
			hd := h.NewHandle()
			root, _ := buildWideGraph(t, h, hd, 6, 3000)
			// Plus leaked noise.
			for i := 0; i < 2000; i++ {
				hd.Malloc(48)
			}
			h.SetRoot(0, root)
			if err := h.Region().Crash(); err != nil {
				t.Fatal(err)
			}
			h.GetRoot(0, nil)
			var stats RecoveryStats
			var err error
			if parallel {
				stats, err = h.RecoverParallel(workers)
			} else {
				stats, err = h.Recover()
			}
			if err != nil {
				t.Fatal(err)
			}
			return stats, h
		}
		seqStats, _ := buildAndCheck(false)
		parStats, ph := buildAndCheck(true)
		if seqStats.ReachableBlocks != parStats.ReachableBlocks {
			t.Fatalf("workers=%d: parallel reachable %d != sequential %d",
				workers, parStats.ReachableBlocks, seqStats.ReachableBlocks)
		}
		if seqStats.ReachableBytes != parStats.ReachableBytes {
			t.Fatalf("workers=%d: bytes %d != %d", workers,
				parStats.ReachableBytes, seqStats.ReachableBytes)
		}
		if seqStats.FreeSuperblocks != parStats.FreeSuperblocks ||
			seqStats.PartialSBs != parStats.PartialSBs ||
			seqStats.FullSBs != parStats.FullSBs {
			t.Fatalf("workers=%d: sweep stats differ: seq %+v par %+v",
				workers, seqStats, parStats)
		}
		if _, err := ph.CheckInvariants(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestRecoverParallelPreservesStructure(t *testing.T) {
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	nodes := buildList(t, h, hd, 3000, 0)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	stats, err := h.RecoverParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != uint64(len(nodes)) {
		t.Fatalf("reachable = %d, want %d", stats.ReachableBlocks, len(nodes))
	}
	if got := len(walkList(h, 0)); got != len(nodes) {
		t.Fatalf("list length = %d after parallel recovery", got)
	}
	// Post-recovery allocation avoids survivors.
	live := map[uint64]bool{}
	for _, off := range walkList(h, 0) {
		live[off] = true
	}
	hd2 := h.NewHandle()
	for i := 0; i < 10000; i++ {
		off := hd2.Malloc(64)
		if off == 0 {
			t.Fatal("OOM")
		}
		if live[off] {
			t.Fatalf("reachable block %#x re-allocated", off)
		}
	}
}

func TestRecoverParallelLargeRuns(t *testing.T) {
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	r := h.Region()
	hdr := hd.Malloc(16)
	kept := hd.Malloc(200_000)
	r.Store(kept, 0xAB)
	r.FlushRange(kept, 8)
	r.Store(hdr, pptr.Pack(hdr, kept))
	r.FlushRange(hdr, 8)
	r.Fence()
	h.SetRoot(0, hdr)
	hd.Malloc(300_000) // leaked run
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	stats, err := h.RecoverParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LargeRuns != 1 {
		t.Fatalf("kept runs = %d, want 1", stats.LargeRuns)
	}
	if r.Load(kept) != 0xAB {
		t.Fatal("large block content lost")
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverParallelSingleWorkerFallsBack(t *testing.T) {
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	buildList(t, h, hd, 100, 0)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	stats, err := h.RecoverParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 100 {
		t.Fatalf("reachable = %d", stats.ReachableBlocks)
	}
}

func TestRecoverParallelRandomizedEquivalence(t *testing.T) {
	// Random graphs, random eviction: parallel and sequential recovery
	// must agree block-for-block on the reachable set size.
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 99))
		build := func(h *Heap) {
			hd := h.NewHandle()
			r := h.Region()
			const pool = 400
			nodes := make([]uint64, pool)
			for i := range nodes {
				nodes[i] = hd.Malloc(64)
				r.Zero(nodes[i], 64)
			}
			for _, off := range nodes {
				for s := uint64(0); s < 4; s++ {
					if rng.Intn(2) == 0 {
						tgt := nodes[rng.Intn(pool)]
						if tgt != off {
							r.Store(off+s*8, pptr.Pack(off+s*8, tgt))
						}
					}
				}
				r.FlushRange(off, 64)
			}
			r.Fence()
			h.SetRoot(0, nodes[0])
			h.SetRoot(5, nodes[pool/2])
		}
		seq := crashHeap(t, 0)
		build(seq)
		// Rebuild identically for the parallel heap (same seed stream).
		rng = rand.New(rand.NewSource(int64(trial) + 99))
		par := crashHeap(t, 0)
		build(par)

		if err := seq.Region().Crash(); err != nil {
			t.Fatal(err)
		}
		if err := par.Region().Crash(); err != nil {
			t.Fatal(err)
		}
		seq.GetRoot(0, nil)
		seq.GetRoot(5, nil)
		par.GetRoot(0, nil)
		par.GetRoot(5, nil)
		s1, err := seq.Recover()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := par.RecoverParallel(4)
		if err != nil {
			t.Fatal(err)
		}
		if s1.ReachableBlocks != s2.ReachableBlocks {
			t.Fatalf("trial %d: sequential %d vs parallel %d reachable",
				trial, s1.ReachableBlocks, s2.ReachableBlocks)
		}
		if _, err := par.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
