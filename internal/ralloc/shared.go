package ralloc

import (
	"errors"
	"sync"
	"time"

	"repro/internal/sizeclass"
)

// Sharing across processes (§4.5.2). The paper's model: a heap may be
// mapped by several mutually untrusting processes through a protected
// library; a *manager* process, notified by the OS when a sharer dies,
// initiates a blocking stop-the-world collection in a quiescent interval to
// reclaim whatever the dead process leaked — blocks allocated but not yet
// attached, detached but not yet freed, held in its thread caches, or
// sitting on limbo lists.
//
// This file models that protocol. A Manager tracks Processes; killing a
// process abandons its handles (exactly what a real crash does to
// thread-local state). Collect performs the stop-the-world pass: it pins
// the *live* processes' thread caches (their blocks are allocated even
// though no persistent root reaches them), traces from the persistent
// roots, and rebuilds the allocator metadata — reclaiming everything the
// dead processes leaked while live processes keep working afterwards with
// their caches intact.

// Manager coordinates processes sharing one heap.
type Manager struct {
	h *Heap

	mu           sync.Mutex
	procs        map[int]*Process
	nextID       int
	crashedSince bool // a process died since the last collection
}

// Process models one application process sharing the heap.
type Process struct {
	m       *Manager
	id      int
	mu      sync.Mutex
	handles []*Handle
	dead    bool
}

// NewManager creates the manager for a shared heap.
func (h *Heap) NewManager() *Manager {
	return &Manager{h: h, procs: make(map[int]*Process)}
}

// Spawn starts a new sharer.
func (m *Manager) Spawn() *Process {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	p := &Process{m: m, id: m.nextID}
	m.procs[p.id] = p
	return p
}

// ID returns the process id.
func (p *Process) ID() int { return p.id }

// ErrProcessDead is returned for operations on a dead process.
var ErrProcessDead = errors.New("ralloc: process has crashed")

// NewHandle creates an allocation handle owned by this process.
func (p *Process) NewHandle() *Handle {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		panic(ErrProcessDead)
	}
	hd := p.m.h.NewHandle()
	p.handles = append(p.handles, hd)
	return hd
}

// Kill simulates the crash of a single process (a software bug or signal,
// §4.5.2) while the rest of the system keeps running: its handles become
// unusable and every block they cached — plus anything it allocated but
// never attached — leaks until the next collection. The OS notification to
// the manager is modeled by the crashedSince flag.
func (m *Manager) Kill(p *Process) {
	p.mu.Lock()
	p.dead = true
	for _, hd := range p.handles {
		hd.invalid = true
	}
	p.mu.Unlock()
	m.mu.Lock()
	m.crashedSince = true
	delete(m.procs, p.id)
	m.mu.Unlock()
}

// CrashedSinceCollection reports whether any sharer has died since the last
// stop-the-world collection — the trigger condition the paper pairs with a
// low-memory situation (§3).
func (m *Manager) CrashedSinceCollection() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashedSince
}

// Collect performs a stop-the-world collection. The caller must have
// quiesced every live process (no allocator or data-structure operation in
// flight, all useful blocks attached) — the paper obtains this with a
// quiescence mechanism adapted from asymmetric locking; in this model it is
// the caller's obligation.
//
// Live processes' thread caches are pinned as roots: those blocks are
// legitimately allocated even though no persistent root reaches them. The
// caches remain valid after the collection, so live processes continue
// without interruption.
func (m *Manager) Collect() (RecoveryStats, error) {
	start := time.Now()
	h := m.h

	g := newGC(h)
	// Pin live caches.
	m.mu.Lock()
	procs := make([]*Process, 0, len(m.procs))
	for _, p := range m.procs {
		procs = append(procs, p)
	}
	m.mu.Unlock()
	for _, p := range procs {
		p.mu.Lock()
		for _, hd := range p.handles {
			for c := 1; c <= sizeclass.NumClasses; c++ {
				for _, b := range hd.cache[c] {
					if size, ok := g.blockInfo(b); ok && g.mark(b) {
						g.reachableBlocks++
						g.reachableBytes += size
					}
				}
			}
		}
		p.mu.Unlock()
	}

	// Trace from the persistent roots with the registered filters.
	g.collect()

	stats := h.rebuildFromTrace(g)
	stats.Duration = time.Since(start)

	m.mu.Lock()
	m.crashedSince = false
	m.mu.Unlock()
	return stats, nil
}

// LiveProcesses reports how many sharers are alive.
func (m *Manager) LiveProcesses() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.procs)
}
