package ralloc

import (
	"testing"

	"repro/internal/pmem"
)

func TestAttachCleanRegion(t *testing.T) {
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	buildList(t, h, hd, 50, 0)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-attach to the same region, as a new process mapping the segment.
	h2, dirty, err := Attach(h.Region(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Fatal("cleanly closed region reported dirty")
	}
	if got := len(walkList(h2, 0)); got != 50 {
		t.Fatalf("list = %d nodes after attach, want 50", got)
	}
	// Clean restart: allocation works immediately, and the metadata that
	// was written back at Close is directly usable (fast restart, §4.2).
	if h2.NewHandle().Malloc(64) == 0 {
		t.Fatal("OOM after clean attach")
	}
	if _, err := h2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachDirtyRegionRequiresRecovery(t *testing.T) {
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	buildList(t, h, hd, 50, 0)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h2, dirty, err := Attach(h.Region(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("crashed region reported clean")
	}
	h2.GetRoot(0, nil)
	if _, err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := len(walkList(h2, 0)); got != 50 {
		t.Fatalf("list = %d nodes after recovery, want 50", got)
	}
}

func TestAttachRejectsForeignRegion(t *testing.T) {
	r := pmem.NewRegion(1<<20, pmem.Config{})
	if _, _, err := Attach(r, Config{}); err == nil {
		t.Fatal("attached to a region with no heap in it")
	}
}

func TestTraceIsReadOnly(t *testing.T) {
	h := crashHeap(t, 0)
	hd := h.NewHandle()
	buildList(t, h, hd, 80, 0)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h.GetRoot(0, nil)
	b1, bytes1 := h.Trace()
	b2, bytes2 := h.Trace() // repeatable: nothing was mutated
	if b1 != 80 || b2 != 80 {
		t.Fatalf("Trace = %d then %d, want 80", b1, b2)
	}
	if bytes1 != 80*64 || bytes2 != bytes1 {
		t.Fatalf("Trace bytes = %d then %d", bytes1, bytes2)
	}
	// The real recovery still works afterwards.
	if _, err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	if len(walkList(h, 0)) != 80 {
		t.Fatal("list damaged")
	}
}
