package ralloc

import (
	"repro/internal/alloc"
	"repro/internal/pmem"
)

// AsAllocator adapts the heap to the generic alloc.Allocator interface used
// by benchmarks and data structures. The adapter also satisfies
// alloc.Recoverable.
func (h *Heap) AsAllocator() alloc.Allocator { return allocAdapter{h} }

type allocAdapter struct{ h *Heap }

func (a allocAdapter) Name() string            { return a.h.Name() }
func (a allocAdapter) Region() *pmem.Region    { return a.h.Region() }
func (a allocAdapter) NewHandle() alloc.Handle { return a.h.NewHandle() }
func (a allocAdapter) Close() error            { return a.h.Close() }
func (a allocAdapter) Recover() error          { _, err := a.h.Recover(); return err }

var (
	_ alloc.Allocator   = allocAdapter{}
	_ alloc.Recoverable = allocAdapter{}
	_ alloc.Handle      = (*Handle)(nil)
)
