package ralloc

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pptr"
	"repro/internal/sizeclass"
)

// Parallel recovery implements the paper's stated future work (§6.4):
// "it would be straightforward ... to parallelize Step 5 across persistent
// roots and Steps 6–9 across superblocks; we leave this to future work."
//
// Tracing (step 5) uses a pool of workers, each with its own GC context
// sharing one atomically-marked visited bitmap. Work is balanced through a
// shared pool: a worker whose local stack grows past a threshold donates
// half of it; a worker that runs dry blocks on the pool. Termination is
// detected when every worker is waiting and the pool is empty, so tracing
// parallelizes *within* a single structure, not just across roots — a
// single deep tree still fans out once its branches enter the pool.
//
// Sweeping (steps 6–9) first partitions the descriptor range into work
// units (a large run is one unit) with a cheap sequential scan, then
// processes units concurrently; the list pushes are the same lock-free
// CASes used during normal operation.

type traceItem struct {
	off uint64
	f   Filter
}

// tracePool is the shared work pool for parallel tracing.
type tracePool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []traceItem
	waiting int
	workers int
	done    bool
}

func newTracePool(workers int) *tracePool {
	p := &tracePool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// donate moves items into the pool and wakes idle workers.
func (p *tracePool) donate(items []traceItem) {
	p.mu.Lock()
	p.items = append(p.items, items...)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// take blocks until work is available or all workers are idle (ok=false).
func (p *tracePool) take(max int) ([]traceItem, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if len(p.items) > 0 {
			n := max
			if n > len(p.items) {
				n = len(p.items)
			}
			batch := make([]traceItem, n)
			copy(batch, p.items[len(p.items)-n:])
			p.items = p.items[:len(p.items)-n]
			return batch, true
		}
		if p.done {
			return nil, false
		}
		p.waiting++
		if p.waiting == p.workers {
			// Everyone is idle and the pool is empty: trace done.
			p.done = true
			p.cond.Broadcast()
			p.waiting--
			return nil, false
		}
		p.cond.Wait()
		p.waiting--
	}
}

// donateThreshold is the local-stack size beyond which a worker shares half
// of its pending work.
const donateThreshold = 256

// traceWorker drains work until global termination, returning its local
// reachability tallies.
func traceWorker(g *GC, p *tracePool) {
	for {
		// Drain the local stack, donating surplus.
		for len(g.pendOff) > 0 {
			if len(g.pendOff) > donateThreshold {
				half := len(g.pendOff) / 2
				batch := make([]traceItem, half)
				for i := 0; i < half; i++ {
					batch[i] = traceItem{g.pendOff[i], g.pendF[i]}
				}
				copy(g.pendOff, g.pendOff[half:])
				copy(g.pendF, g.pendF[half:])
				g.pendOff = g.pendOff[:len(g.pendOff)-half]
				g.pendF = g.pendF[:len(g.pendF)-half]
				p.donate(batch)
			}
			n := len(g.pendOff) - 1
			off, f := g.pendOff[n], g.pendF[n]
			g.pendOff, g.pendF = g.pendOff[:n], g.pendF[:n]
			if f == nil {
				g.conservative(off)
			} else {
				f(g, off)
			}
		}
		batch, ok := p.take(donateThreshold / 4)
		if !ok {
			return
		}
		for _, it := range batch {
			g.pendOff = append(g.pendOff, it.off)
			g.pendF = append(g.pendF, it.f)
		}
	}
}

// RecoverParallel performs the same recovery as Recover using the given
// number of worker goroutines for both the trace and the sweep. workers<=1
// falls back to the sequential path.
func (h *Heap) RecoverParallel(workers int) (RecoveryStats, error) {
	if workers <= 1 {
		return h.Recover()
	}
	start := time.Now()
	h.dropHandles()

	r := h.region

	// Step 5, parallel: one GC per worker over a shared bitmap.
	used := h.SBUsed()
	shared := make([]uint64, (used/8+63)/64)
	gcs := make([]*GC, workers)
	for i := range gcs {
		gcs[i] = &GC{h: h, used: used, visited: shared, shared: true}
	}
	// Mark and tally the root targets up front (Step 5's seeds), then hand
	// them to the pool; workers only ever receive already-marked blocks,
	// so every block is scanned exactly once.
	pool := newTracePool(workers)
	seq := &GC{h: h, used: used, visited: shared, shared: true}
	var seeds []traceItem
	for i := 0; i < NumRoots; i++ {
		slot := rootOff(i)
		target, ok := pptr.Unpack(slot, r.Load(slot))
		if !ok {
			continue
		}
		seq.traceWork++
		size, valid := seq.blockInfo(target)
		if !valid || !seq.mark(target) {
			continue
		}
		seq.reachableBlocks++
		seq.reachableBytes += size
		h.mu.Lock()
		f := h.filters[i]
		h.mu.Unlock()
		seeds = append(seeds, traceItem{target, f})
	}
	pool.donate(seeds)
	var wg sync.WaitGroup
	for _, g := range gcs {
		wg.Add(1)
		go func(g *GC) {
			defer wg.Done()
			traceWorker(g, pool)
		}(g)
	}
	wg.Wait()
	traceDone := time.Now()

	// Step 3: fresh global lists. Done on the sweep side of the timestamp,
	// like the sequential path (rebuildFromTrace), so the TraceTime /
	// SweepTime decomposition agrees between the two.
	h.resetLists()

	stats := RecoveryStats{}
	for _, g := range append(gcs, seq) {
		stats.ReachableBlocks += g.reachableBlocks
		stats.ReachableBytes += g.reachableBytes
		stats.TraceWork += g.traceWork
	}

	// Steps 6–9, parallel: partition into units, then fan out.
	master := &GC{h: h, used: used, visited: shared, shared: true}
	type unit struct {
		first uint32
		count uint32 // >1 only for large runs being freed
		kind  int    // 0 small/other, 1 large-keep, 2 large-free
	}
	n := h.usedDescs()
	var units []unit
	for i := uint32(0); i < n; {
		d := h.lay.descOff(i)
		cls := r.Load(d + dOffClass)
		bs := r.Load(d + dOffBlockSize)
		numSB := r.Load(d + dOffNumSB)
		if cls == 0 && bs > 0 && numSB > 0 {
			k := uint32(numSB)
			if k > n-i {
				k = n - i
			}
			if master.marked(h.lay.sbOff(i)) && uint32(numSB) == k {
				units = append(units, unit{i, k, 1})
			} else {
				units = append(units, unit{i, k, 2})
			}
			i += k
			continue
		}
		units = append(units, unit{i, 1, 0})
		i++
	}

	var next atomic.Uint32
	var freeSBs, partials, fulls, runs atomic.Uint64
	var swg sync.WaitGroup
	for w := 0; w < workers; w++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			g := &GC{h: h, used: used, visited: shared, shared: true}
			for {
				u := next.Add(1) - 1
				if int(u) >= len(units) {
					return
				}
				un := units[u]
				switch un.kind {
				case 1:
					r.Store(h.lay.descOff(un.first)+dOffAnchor,
						packAnchor(stateFull, anchorAvailNone, 0))
					runs.Add(1)
				case 2:
					for j := uint32(0); j < un.count; j++ {
						h.clearAndRetire(un.first + j)
						freeSBs.Add(1)
					}
				default:
					i := un.first
					d := h.lay.descOff(i)
					cls := r.Load(d + dOffClass)
					bs := r.Load(d + dOffBlockSize)
					if cls >= 1 && cls <= sizeclass.NumClasses &&
						bs == sizeclass.ClassToSize(int(cls)) {
						var local RecoveryStats
						h.sweepSmall(g, i, int(cls), bs, &local)
						freeSBs.Add(local.FreeSuperblocks)
						partials.Add(local.PartialSBs)
						fulls.Add(local.FullSBs)
					} else {
						h.clearAndRetire(i)
						freeSBs.Add(1)
					}
				}
			}
		}()
	}
	swg.Wait()
	stats.FreeSuperblocks = freeSBs.Load()
	stats.PartialSBs = partials.Load()
	stats.FullSBs = fulls.Load()
	stats.LargeRuns = runs.Load()
	stats.SweepUnits = uint64(len(units))

	h.flushRange(0, h.region.Size())
	h.fence()
	stats.TraceTime = traceDone.Sub(start)
	stats.SweepTime = time.Since(traceDone)
	stats.Duration = time.Since(start)
	return stats, nil
}
