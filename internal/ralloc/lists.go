package ralloc

import (
	"repro/internal/pptr"
	"repro/internal/sizeclass"
)

// Ralloc's global lists — the superblock free list and the per-class partial
// lists — are lock-free Treiber stacks of descriptors (§4.2). The head words
// live in the metadata region and carry ABA counters (pptr.PackHead); the
// links are the descriptors' nextFree / nextPartial fields, stored as
// index+1 with 0 meaning nil. All of this state is transient: it is
// reconstructed wholesale by recovery, so none of it is ever flushed.

// pushDesc pushes descriptor idx onto the list with head word at headOff,
// linking through the descriptor field at offset linkOff.
func (h *Heap) pushDesc(headOff, linkOff uint64, idx uint32) {
	r := h.region
	link := h.lay.descOff(idx) + linkOff
	for {
		old := r.Load(headOff)
		ctr, oldIdx, ok := pptr.UnpackHead(old)
		if ok {
			r.Store(link, uint64(oldIdx)+1)
		} else {
			r.Store(link, 0)
		}
		if r.CAS(headOff, old, pptr.PackHead(ctr+1, idx)) {
			return
		}
	}
}

// popDesc pops a descriptor from the list with head word at headOff.
func (h *Heap) popDesc(headOff, linkOff uint64) (uint32, bool) {
	r := h.region
	for {
		old := r.Load(headOff)
		ctr, idx, ok := pptr.UnpackHead(old)
		if !ok {
			return 0, false
		}
		next := r.Load(h.lay.descOff(idx) + linkOff)
		var newHead uint64
		if next == 0 {
			newHead = pptr.PackEmptyHead(ctr + 1)
		} else {
			newHead = pptr.PackHead(ctr+1, uint32(next-1))
		}
		if r.CAS(headOff, old, newHead) {
			return idx, true
		}
	}
}

// partialHeadOff returns the metadata offset of size class c's partial-list
// head word in shard s (§4.2, sharded: each class's transient partial list
// is split into Config.Shards independent Treiber stacks so that concurrent
// handles contend on distinct head words).
func partialHeadOff(c int, s uint32) uint64 {
	return offShardHeads + uint64(s)*shardSetBytes + uint64(c)*8
}

// partialShardOf maps a descriptor index to its recovery-deterministic
// shard. Normal-operation pushes instead use the freeing handle's home
// shard; both placements are valid because every pop falls back to stealing.
func (h *Heap) partialShardOf(idx uint32) uint32 { return idx & h.shardMask }

// pushPartial pushes descriptor idx onto class c's partial list in shard s.
func (h *Heap) pushPartial(c int, s uint32, idx uint32) {
	h.pushDesc(partialHeadOff(c, s), dOffNextPartial, idx)
}

// popPartial pops a descriptor from class c's partial list, trying the home
// shard first and then stealing round-robin from the remaining shards. A
// success at i > 0 is a steal, counted on the home shard's telemetry block
// (the thief pays, so a hot shard's steal rate shows up on its own row).
func (h *Heap) popPartial(c int, home uint32) (uint32, bool) {
	for i := uint32(0); i < h.shards; i++ {
		s := (home + i) & h.shardMask
		if idx, ok := h.popDesc(partialHeadOff(c, s), dOffNextPartial); ok {
			if i > 0 {
				h.stats[home&h.shardMask].steals.Add(1)
			}
			return idx, true
		}
	}
	return 0, false
}

// retireDesc resets a fully-free superblock's descriptor and returns it to
// the superblock free list, making it available for any size class (§4.4).
// The caller must own the superblock (state EMPTY and off every list).
func (h *Heap) retireDesc(idx uint32) {
	r := h.region
	d := h.lay.descOff(idx)
	r.Store(d+dOffClass, 0)
	r.Store(d+dOffBlockSize, 0)
	r.Store(d+dOffNumSB, 0)
	r.Store(d+dOffAnchor, packAnchor(stateEmpty, anchorAvailNone, 0))
	h.pushDesc(offFreeHead, dOffNextFree, idx)
}

// remapShards redistributes every partial list built under an oldShards
// geometry onto the current h.shards geometry (descriptor index mod shard
// count). The caller must hold the heap quiescent with trustworthy lists
// (clean attach or resize); a dirty heap's lists are rebuilt by recovery
// instead.
func (h *Heap) remapShards(oldShards uint32) {
	for c := 1; c <= sizeclass.NumClasses; c++ {
		var descs []uint32
		for s := uint32(0); s < oldShards; s++ {
			for {
				idx, ok := h.popDesc(partialHeadOff(c, s), dOffNextPartial)
				if !ok {
					break
				}
				descs = append(descs, idx)
			}
		}
		for _, idx := range descs {
			h.pushPartial(c, h.partialShardOf(idx), idx)
		}
	}
}

// listLen walks a descriptor list; used by tests and recovery verification.
// Not safe against concurrent mutation.
func (h *Heap) listLen(headOff, linkOff uint64) int {
	n := 0
	_, idx, ok := pptr.UnpackHead(h.region.Load(headOff))
	for ok {
		n++
		next := h.region.Load(h.lay.descOff(idx) + linkOff)
		if next == 0 {
			break
		}
		idx = uint32(next - 1)
	}
	return n
}
