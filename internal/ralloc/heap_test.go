package ralloc

import (
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sizeclass"
)

func testHeap(t *testing.T, cfg Config) *Heap {
	t.Helper()
	if cfg.SBRegion == 0 {
		cfg.SBRegion = 8 << 20
	}
	if cfg.GrowthChunk == 0 {
		cfg.GrowthChunk = 1 << 20
	}
	h, dirty, err := Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Fatal("fresh heap reported dirty")
	}
	return h
}

func TestMallocBasic(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	off := hd.Malloc(64)
	if off == 0 {
		t.Fatal("Malloc returned nil")
	}
	if off%8 != 0 {
		t.Fatalf("block %#x not word-aligned", off)
	}
	if off < h.SBStart() || off >= h.SBStart()+h.SBUsed() {
		t.Fatalf("block %#x outside used superblock region", off)
	}
	h.Region().Store(off, 0xABCD)
	if h.Region().Load(off) != 0xABCD {
		t.Fatal("block not writable")
	}
}

func TestMallocZeroSize(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	a, b := hd.Malloc(0), hd.Malloc(0)
	if a == 0 || b == 0 || a == b {
		t.Fatalf("Malloc(0) must return distinct non-nil blocks, got %#x %#x", a, b)
	}
}

func TestMallocDistinctNonOverlapping(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	type iv struct{ lo, hi uint64 }
	var ivs []iv
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		size := uint64(1 + rng.Intn(400))
		off := hd.Malloc(size)
		if off == 0 {
			t.Fatal("unexpected OOM")
		}
		ivs = append(ivs, iv{off, off + sizeclass.Round(size)})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	for i := 1; i < len(ivs); i++ {
		if ivs[i].lo < ivs[i-1].hi {
			t.Fatalf("blocks overlap: [%#x,%#x) and [%#x,%#x)",
				ivs[i-1].lo, ivs[i-1].hi, ivs[i].lo, ivs[i].hi)
		}
	}
}

func TestSizeClassSegregation(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	a := hd.Malloc(64)  // class for 64 B
	b := hd.Malloc(400) // class for 448 B
	ia, _ := h.lay.descIndexOf(a)
	ib, _ := h.lay.descIndexOf(b)
	if ia == ib {
		t.Fatal("different size classes share a superblock")
	}
	if bs := h.Region().Load(h.lay.descOff(ia) + dOffBlockSize); bs != 64 {
		t.Fatalf("block size = %d, want 64", bs)
	}
	if bs := h.Region().Load(h.lay.descOff(ib) + dOffBlockSize); bs != 448 {
		t.Fatalf("block size = %d, want 448", bs)
	}
}

func TestFreeReuseSameThread(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	a := hd.Malloc(64)
	hd.Free(a)
	b := hd.Malloc(64)
	if a != b {
		t.Fatalf("thread cache should serve the just-freed block: %#x vs %#x", a, b)
	}
}

func TestMallocFastPathNoFlush(t *testing.T) {
	// The paper's headline: Ralloc pays almost nothing for persistence
	// during normal operation. After warm-up, a malloc/free pair must not
	// flush or fence at all.
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	warm := hd.Malloc(64)
	hd.Free(warm)
	before := h.Region().Stats()
	for i := 0; i < 1000; i++ {
		hd.Free(hd.Malloc(64))
	}
	after := h.Region().Stats()
	if d := after.Flushes - before.Flushes; d != 0 {
		t.Fatalf("fast path issued %d flushes, want 0", d)
	}
	if d := after.Fences - before.Fences; d != 0 {
		t.Fatalf("fast path issued %d fences, want 0", d)
	}
}

func TestColdMallocFlushesLittle(t *testing.T) {
	// Even including slow paths, 10k 64 B allocations touch ~10
	// superblocks: the flush count must stay tiny (one per superblock
	// init plus region growth), not one per operation.
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	base := h.Region().Stats().Flushes
	for i := 0; i < 10000; i++ {
		if hd.Malloc(64) == 0 {
			t.Fatal("OOM")
		}
	}
	if d := h.Region().Stats().Flushes - base; d > 50 {
		t.Fatalf("10k mallocs issued %d flushes; expected O(#superblocks)", d)
	}
}

func TestDrainAndRefillThroughPartialList(t *testing.T) {
	h := testHeap(t, Config{CacheCap: 8})
	hd := h.NewHandle()
	var offs []uint64
	for i := 0; i < 64; i++ {
		offs = append(offs, hd.Malloc(64))
	}
	for _, o := range offs {
		hd.Free(o) // cap 8 forces drains through the partial list
	}
	for i := 0; i < 64; i++ {
		if hd.Malloc(64) == 0 {
			t.Fatal("OOM on refill")
		}
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSuperblockRetirement(t *testing.T) {
	// Freeing everything must eventually retire superblocks to the free
	// list so another class can reuse them.
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	var offs []uint64
	for i := 0; i < 8192; i++ { // exactly one class-8 superblock (64 B)
		offs = append(offs, hd.Malloc(64))
	}
	for _, o := range offs {
		hd.Free(o)
	}
	hd.drain(sizeclass.SizeToClass(64)) // push the cache out
	used := h.SBUsed()
	// A different size class must be able to reuse retired superblocks
	// without growing the region beyond one growth chunk.
	for i := 0; i < 100; i++ {
		if hd.Malloc(1024) == 0 {
			t.Fatal("OOM")
		}
	}
	if h.SBUsed() > used+h.cfg.GrowthChunk {
		t.Fatalf("region grew from %d to %d despite retired superblocks", used, h.SBUsed())
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeAllocation(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	const size = 200_000 // 4 superblocks
	off := hd.Malloc(size)
	if off == 0 {
		t.Fatal("large Malloc failed")
	}
	if (off-h.SBStart())%SuperblockBytes != 0 {
		t.Fatalf("large block %#x not superblock-aligned", off)
	}
	// The whole extent must be usable.
	h.Region().Store(off, 1)
	h.Region().Store(off+size-8-(size%8), 2)
	idx, _ := h.lay.descIndexOf(off)
	if k := h.Region().Load(h.lay.descOff(idx) + dOffNumSB); k != 4 {
		t.Fatalf("numSB = %d, want 4", k)
	}
	hd.Free(off)
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSingleSuperblockReuse(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	a := hd.Malloc(20_000) // one superblock
	hd.Free(a)
	used := h.SBUsed()
	b := hd.Malloc(20_000)
	if b == 0 {
		t.Fatal("OOM")
	}
	if h.SBUsed() != used {
		t.Fatal("single-superblock large allocation did not reuse the free list")
	}
}

func TestLargeFreeSplitsIntoSuperblocks(t *testing.T) {
	h := testHeap(t, Config{GrowthChunk: SuperblockBytes})
	hd := h.NewHandle()
	off := hd.Malloc(3 * SuperblockBytes)
	if off == 0 {
		t.Fatal("OOM")
	}
	hd.Free(off)
	chk, err := h.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if chk.FreeListLen < 3 {
		t.Fatalf("free list has %d superblocks after freeing a 3-superblock run", chk.FreeListLen)
	}
	// The freed superblocks are reusable for small classes.
	for i := 0; i < 3*1024; i++ {
		if hd.Malloc(64) == 0 {
			t.Fatal("OOM reusing split run")
		}
	}
}

func TestOOMReturnsNil(t *testing.T) {
	h := testHeap(t, Config{SBRegion: 4 * SuperblockBytes, GrowthChunk: SuperblockBytes})
	hd := h.NewHandle()
	var got []uint64
	for {
		off := hd.Malloc(14336)
		if off == 0 {
			break
		}
		got = append(got, off)
	}
	if len(got) == 0 {
		t.Fatal("no allocations succeeded")
	}
	// Freeing restores service.
	for _, o := range got {
		hd.Free(o)
	}
	hd.drain(sizeclass.SizeToClass(14336))
	if hd.Malloc(14336) == 0 {
		t.Fatal("allocation still failing after frees")
	}
}

func TestOOMLarge(t *testing.T) {
	h := testHeap(t, Config{SBRegion: 4 * SuperblockBytes, GrowthChunk: SuperblockBytes})
	hd := h.NewHandle()
	if off := hd.Malloc(16 * SuperblockBytes); off != 0 {
		t.Fatalf("oversized large alloc succeeded: %#x", off)
	}
}

func TestCrossHandleFree(t *testing.T) {
	// Larson-style bleeding: blocks allocated by one thread and freed by
	// another.
	h := testHeap(t, Config{})
	a, b := h.NewHandle(), h.NewHandle()
	var offs []uint64
	for i := 0; i < 5000; i++ {
		offs = append(offs, a.Malloc(128))
	}
	for _, o := range offs {
		b.Free(o)
	}
	for i := 0; i < 5000; i++ {
		if b.Malloc(128) == 0 {
			t.Fatal("OOM")
		}
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreeDetectedByInvariants(t *testing.T) {
	h := testHeap(t, Config{CacheCap: 1})
	hd := h.NewHandle()
	a := hd.Malloc(64)
	_ = hd.Malloc(64) // keep the superblock from retiring
	hd.Free(a)
	hd.Free(a)
	hd.drain(sizeclass.SizeToClass(64))
	if _, err := h.CheckInvariants(); err == nil {
		t.Fatal("double free not detected by invariant checker")
	}
}

func TestFreeNilIsNoop(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	hd.Free(0)
}

func TestFreeForeignOffsetPanics(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	hd.Free(8) // metadata region
}

func TestFreeInteriorPanics(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	off := hd.Malloc(64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	hd.Free(off + 8)
}

func TestConcurrentMallocFree(t *testing.T) {
	h := testHeap(t, Config{SBRegion: 32 << 20})
	const goroutines = 8
	const opsPer = 20000
	results := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hd := h.NewHandle()
			rng := rand.New(rand.NewSource(int64(g)))
			var live []uint64
			for i := 0; i < opsPer; i++ {
				if len(live) > 0 && rng.Intn(2) == 0 {
					k := rng.Intn(len(live))
					hd.Free(live[k])
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				} else {
					off := hd.Malloc(uint64(8 + rng.Intn(393)))
					if off == 0 {
						t.Error("OOM under concurrency")
						return
					}
					live = append(live, off)
				}
			}
			results[g] = live
		}(g)
	}
	wg.Wait()
	// All live blocks across goroutines must be distinct.
	seen := make(map[uint64]int)
	for g, live := range results {
		for _, off := range live {
			if prev, dup := seen[off]; dup {
				t.Fatalf("block %#x live in goroutines %d and %d", off, prev, g)
			}
			seen[off] = g
		}
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentProducerConsumer(t *testing.T) {
	h := testHeap(t, Config{SBRegion: 32 << 20})
	const n = 30000
	ch := make(chan uint64, 1024)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hd := h.NewHandle()
			for i := 0; i < n; i++ {
				off := hd.Malloc(64)
				if off == 0 {
					t.Error("OOM")
					return
				}
				ch <- off
			}
		}()
	}
	var cwg sync.WaitGroup
	for c := 0; c < 2; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			hd := h.NewHandle()
			for off := range ch {
				hd.Free(off)
			}
		}()
	}
	wg.Wait()
	close(ch)
	cwg.Wait()
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRootsRoundTrip(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	off := hd.Malloc(64)
	h.SetRoot(7, off)
	if got := h.GetRoot(7, nil); got != off {
		t.Fatalf("GetRoot = %#x, want %#x", got, off)
	}
	h.SetRoot(7, 0)
	if got := h.GetRoot(7, nil); got != 0 {
		t.Fatalf("cleared root = %#x, want 0", got)
	}
}

func TestRootIndexOutOfRangePanics(t *testing.T) {
	h := testHeap(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.SetRoot(NumRoots, 8)
}

func TestCloseReopenFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.ralloc")
	cfg := Config{SBRegion: 8 << 20, GrowthChunk: 1 << 20, Pmem: pmem.Config{Mode: pmem.ModeCrashSim}}
	h, dirty, err := Open(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Fatal("fresh heap dirty")
	}
	hd := h.NewHandle()
	off := hd.Malloc(64)
	h.Region().Store(off, 0x600D)
	h.Region().Flush(off)
	h.SetRoot(0, off)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2, dirty, err := Open(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Fatal("cleanly closed heap reported dirty")
	}
	got := h2.GetRoot(0, nil)
	if got != off {
		t.Fatalf("root = %#x, want %#x", got, off)
	}
	if v := h2.Region().Load(got); v != 0x600D {
		t.Fatalf("data = %#x, want 0x600D", v)
	}
	// Clean restart: allocation works without recovery.
	if h2.NewHandle().Malloc(64) == 0 {
		t.Fatal("OOM after clean reopen")
	}
}

func TestDirtyFlagAfterCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.ralloc")
	cfg := Config{SBRegion: 8 << 20, Pmem: pmem.Config{Mode: pmem.ModeCrashSim}}
	h, _, err := Open(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.NewHandle().Malloc(64)
	// Crash without Close, then save the surviving NVM image as the
	// "DAX file" a new process would map.
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	if err := h.Region().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	_, dirty, err := Open(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("crashed heap must report dirty")
	}
}

func TestHandleInvalidAfterClose(t *testing.T) {
	h := testHeap(t, Config{})
	hd := h.NewHandle()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from stale handle")
		}
	}()
	hd.Malloc(64)
}

func TestCloseTwiceErrors(t *testing.T) {
	h := testHeap(t, Config{})
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != ErrClosed {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

func TestLRMallocModeNeverFlushes(t *testing.T) {
	h := testHeap(t, Config{NoFlush: true})
	if h.Name() != "lrmalloc" {
		t.Fatalf("Name = %q, want lrmalloc", h.Name())
	}
	hd := h.NewHandle()
	for i := 0; i < 10000; i++ {
		hd.Free(hd.Malloc(64))
	}
	if s := h.Region().Stats(); s.Flushes != 0 || s.Fences != 0 {
		t.Fatalf("LRMalloc mode flushed %d / fenced %d; want 0/0", s.Flushes, s.Fences)
	}
}

func TestReturnHalfPolicy(t *testing.T) {
	h := testHeap(t, Config{ReturnHalf: true, CacheCap: 16})
	hd := h.NewHandle()
	var offs []uint64
	for i := 0; i < 17; i++ {
		offs = append(offs, hd.Malloc(64))
	}
	for _, o := range offs {
		hd.Free(o)
	}
	// With half-return, the cache keeps roughly half after a drain.
	if n := len(hd.cache[sizeclass.SizeToClass(64)]); n < 8 {
		t.Fatalf("cache kept %d blocks; half-return should retain about half", n)
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleFlushReturnsCache(t *testing.T) {
	// Flush models a clean thread exit: the cached blocks become
	// available to other threads through the global lists.
	h := testHeap(t, Config{})
	a := h.NewHandle()
	block := a.Malloc(64)
	a.Free(block) // lands in a's cache
	a.Flush()
	b := h.NewHandle()
	found := false
	for i := 0; i < 2000; i++ {
		if b.Malloc(64) == block {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("flushed block never reached another handle")
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAnchorPackUnpack(t *testing.T) {
	for _, c := range []struct {
		state        uint64
		avail, count uint32
	}{
		{stateEmpty, 0, 0},
		{statePartial, 8191, 4096},
		{stateFull, anchorAvailNone, 0},
	} {
		s, a, n := unpackAnchor(packAnchor(c.state, c.avail, c.count))
		if s != c.state || a != c.avail || n != c.count {
			t.Fatalf("anchor round trip (%d,%d,%d) -> (%d,%d,%d)",
				c.state, c.avail, c.count, s, a, n)
		}
	}
}

func TestLayoutGeometry(t *testing.T) {
	l, err := computeLayout(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if l.maxDescs != 16 {
		t.Fatalf("maxDescs = %d, want 16", l.maxDescs)
	}
	// The superblock region sits right after the metadata so its base is
	// invariant under resizing; descriptors go at the end.
	if l.sbStart != MetaBytes {
		t.Fatalf("sbStart = %d, want %d", l.sbStart, MetaBytes)
	}
	if l.descStart != MetaBytes+l.sbSize {
		t.Fatalf("descStart = %d, want %d", l.descStart, MetaBytes+l.sbSize)
	}
	if l.sbStart%SuperblockBytes != 0 {
		t.Fatalf("sbStart %#x not superblock-aligned", l.sbStart)
	}
	if _, err := computeLayout(100); err == nil {
		t.Fatal("tiny layout must be rejected")
	}
	if _, err := computeLayout(2 << 40); err == nil {
		t.Fatal("layout beyond 1 TB must be rejected")
	}
}

func TestDescIndexOf(t *testing.T) {
	l, _ := computeLayout(1 << 20)
	if _, ok := l.descIndexOf(l.sbStart - 8); ok {
		t.Fatal("offset before region accepted")
	}
	idx, ok := l.descIndexOf(l.sbStart + SuperblockBytes + 100)
	if !ok || idx != 1 {
		t.Fatalf("descIndexOf = (%d,%v), want (1,true)", idx, ok)
	}
	if _, ok := l.descIndexOf(l.sbStart + l.sbSize); ok {
		t.Fatal("offset past region accepted")
	}
}
