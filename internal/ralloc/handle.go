package ralloc

import (
	"fmt"

	"repro/internal/sizeclass"
)

// Handle is a per-goroutine allocation context holding the transient
// thread-local caches of free blocks (§4.2). Most allocations and
// deallocations are served from the cache without synchronization; the
// cache is refilled from (and overflows to) the global lists with CAS.
//
// Handles are not safe for concurrent use. After a crash + Recover, old
// handles are invalid (their cached blocks were reclaimed by GC) and any
// use panics.
type Handle struct {
	heap    *Heap
	shard   uint32 // home partial-list shard
	invalid bool
	cache   [sizeclass.NumClasses + 1][]uint64

	// Stats
	mallocs, frees, refills, drains uint64
}

func (hd *Handle) check() {
	if hd.invalid {
		panic("ralloc: use of handle invalidated by Close or Recover")
	}
}

// Malloc allocates size bytes and returns the block's byte offset within
// the heap region, or 0 if the heap is exhausted. The fast path — cache
// non-empty — performs no synchronization, no flush and no fence: Ralloc
// pays almost nothing for persistence during normal operation.
func (hd *Handle) Malloc(size uint64) uint64 {
	hd.check()
	hd.mallocs++
	c := sizeclass.SizeToClass(size)
	if c == 0 {
		return hd.heap.mallocLarge(size)
	}
	tc := &hd.cache[c]
	if len(*tc) == 0 && !hd.refill(c) {
		return 0
	}
	n := len(*tc) - 1
	off := (*tc)[n]
	*tc = (*tc)[:n]
	return off
}

// Free deallocates a block previously returned by Malloc. Small blocks go
// to the thread cache; when the cache overflows, blocks are pushed back to
// their superblocks' free chains in per-superblock batches (drain →
// flushBlocks).
func (hd *Handle) Free(off uint64) {
	if off == 0 {
		return
	}
	hd.check()
	hd.frees++
	h := hd.heap
	idx, ok := h.lay.descIndexOf(off)
	if !ok {
		panic(fmt.Sprintf("ralloc: Free(%#x) outside the superblock region", off))
	}
	d := h.lay.descOff(idx)
	cls := h.region.Load(d + dOffClass)
	switch cls {
	case 0:
		h.freeLarge(idx, off)
		return
	case contClass:
		panic(fmt.Sprintf("ralloc: Free(%#x) points into the middle of a large run", off))
	}
	c := int(cls)
	if bs := h.region.Load(d + dOffBlockSize); bs == 0 || (off-h.lay.sbOff(idx))%bs != 0 {
		panic(fmt.Sprintf("ralloc: Free(%#x) is not a block boundary", off))
	}
	tc := &hd.cache[c]
	*tc = append(*tc, off)
	if len(*tc) > hd.capFor(c) {
		hd.drain(c)
	}
}

// capFor returns the thread-cache capacity for class c.
func (hd *Handle) capFor(c int) int {
	if hd.heap.cfg.CacheCap > 0 {
		return hd.heap.cfg.CacheCap
	}
	return sizeclass.BlocksPerSuperblock(c, SuperblockBytes)
}

// refill recharges the class-c cache: first from a partially used superblock
// on the class's partial list, then from a free superblock, and finally by
// expanding the used space of the superblock region (§4.4).
func (hd *Handle) refill(c int) bool {
	h := hd.heap
	r := h.region
	hd.refills++
	sc := &h.stats[hd.shard&h.shardMask]
	sc.refills.Add(1)

	// 1. Partial superblock: reserve all of its free blocks with one CAS.
	// The pop prefers the handle's home shard and steals round-robin.
partial:
	for {
		idx, ok := h.popPartial(c, hd.shard)
		if !ok {
			break
		}
		d := h.lay.descOff(idx)
		for {
			a := r.Load(d + dOffAnchor)
			st, avail, count := unpackAnchor(a)
			if st == stateEmpty {
				// PARTIAL→EMPTY while on the list: retire it
				// now that we fetched it (§4.4), try the next.
				h.retireDesc(idx)
				continue partial
			}
			if count == 0 {
				// Drained concurrently; nothing to take here.
				continue partial
			}
			if !r.CAS(d+dOffAnchor, a, packAnchor(stateFull, anchorAvailNone, 0)) {
				continue
			}
			// The chain of `count` blocks from `avail` is now
			// privately owned: walk it into the cache.
			blockSize := r.Load(d + dOffBlockSize)
			sb := h.lay.sbOff(idx)
			tc := &hd.cache[c]
			bi := avail
			for n := uint32(0); n < count; n++ {
				boff := sb + uint64(bi)*blockSize
				*tc = append(*tc, boff)
				if n+1 < count {
					next := r.Load(boff)
					if next == 0 {
						panic("ralloc: corrupt block free chain")
					}
					bi = uint32(next - 1)
				}
			}
			sc.refillBlocks.Add(uint64(count))
			return true
		}
	}

	// 2. Free superblock.
	if idx, ok := h.popDesc(offFreeHead, dOffNextFree); ok {
		hd.initSuperblock(idx, c)
		sc.refillBlocks.Add(uint64(sizeclass.BlocksPerSuperblock(c, SuperblockBytes)))
		return true
	}

	// 3. Expand the used space of the superblock region.
	first, count, ok := h.grow(SuperblockBytes)
	if !ok {
		return false
	}
	sc.grows.Add(1)
	for i := first + count; i > first+1; i-- {
		h.pushDesc(offFreeHead, dOffNextFree, i-1)
	}
	hd.initSuperblock(first, c)
	sc.refillBlocks.Add(uint64(sizeclass.BlocksPerSuperblock(c, SuperblockBytes)))
	return true
}

// initSuperblock formats the superblock at idx for size class c and moves
// all of its blocks into the class-c cache. The size class and block size
// are persisted *before* any block is handed out: recovery needs the size
// information of every reachable block (§4.2). Both fields share the
// descriptor's cache line, so this is the single flush on Ralloc's malloc
// slow path.
func (hd *Handle) initSuperblock(idx uint32, c int) {
	h := hd.heap
	r := h.region
	d := h.lay.descOff(idx)
	blockSize := sizeclass.ClassToSize(c)
	r.Store(d+dOffClass, uint64(c))
	r.Store(d+dOffBlockSize, blockSize)
	r.Store(d+dOffNumSB, 1)
	h.flush(d)
	h.fence()
	r.Store(d+dOffAnchor, packAnchor(stateFull, anchorAvailNone, 0))

	sb := h.lay.sbOff(idx)
	total := sizeclass.BlocksPerSuperblock(c, SuperblockBytes)
	tc := &hd.cache[c]
	// Append in reverse so the lowest-address blocks pop first.
	for i := total; i > 0; i-- {
		*tc = append(*tc, sb+uint64(i-1)*blockSize)
	}
}

// drain returns cached class-c blocks to their superblocks: all of them by
// default (Ralloc's published policy), or the oldest half under the
// ReturnHalf ablation (§6.3 discusses Makalu's half-return locality edge).
func (hd *Handle) drain(c int) {
	hd.drains++
	hd.heap.stats[hd.shard&hd.heap.shardMask].drains.Add(1)
	blocks := hd.cache[c]
	n := len(blocks)
	if hd.heap.cfg.ReturnHalf {
		n = len(blocks) / 2
	}
	hd.flushBlocks(c, blocks[:n])
	hd.cache[c] = append(hd.cache[c][:0], blocks[n:]...)
}

// flushBlocks is the handle's remote-free buffer: it groups the outgoing
// class-c blocks by superblock and splices each group into its superblock's
// free chain with a single anchor CAS (mimalloc-style batched remote free).
// Under the UnbatchedFree ablation each block pays its own CAS, the paper's
// published per-block path.
func (hd *Handle) flushBlocks(c int, blocks []uint64) {
	h := hd.heap
	if len(blocks) == 0 {
		return
	}
	if h.cfg.UnbatchedFree {
		for i := range blocks {
			h.freeBatch(c, hd.shard, blocks[i:i+1])
		}
		return
	}
	// Group consecutive runs of same-superblock blocks, allocation-free.
	// Refill fills the cache a superblock at a time and drains preserve
	// order, so the runs are long in practice; an interleaved cache only
	// degrades toward the per-block path, never below it.
	start := 0
	cur, ok := h.lay.descIndexOf(blocks[0])
	if !ok {
		panic(fmt.Sprintf("ralloc: Free(%#x) outside the superblock region", blocks[0]))
	}
	for i := 1; i < len(blocks); i++ {
		idx, ok := h.lay.descIndexOf(blocks[i])
		if !ok {
			panic(fmt.Sprintf("ralloc: Free(%#x) outside the superblock region", blocks[i]))
		}
		if idx != cur {
			h.freeBatch(c, hd.shard, blocks[start:i])
			start, cur = i, idx
		}
	}
	h.freeBatch(c, hd.shard, blocks[start:])
}

// Flush returns every cached block to its superblock — what a thread's
// cache destructor does on clean thread exit. The handle remains usable.
func (hd *Handle) Flush() {
	hd.check()
	hd.returnAll()
}

// returnAll empties every cache (clean shutdown).
func (hd *Handle) returnAll() {
	for c := 1; c <= sizeclass.NumClasses; c++ {
		hd.flushBlocks(c, hd.cache[c])
		hd.cache[c] = nil
	}
}

// freeBatch pushes a group of blocks — all residing in the same superblock —
// back onto that superblock's internal free chain with a single CAS on the
// descriptor's anchor, and performs the resulting state transition:
// FULL→PARTIAL descriptors are pushed to the freeing handle's home shard of
// the class's partial list; a superblock that becomes entirely free is
// retired to the superblock free list if it was FULL (possible for any class
// now that a batch can return a full superblock's worth at once), or lazily
// when later fetched from the partial list (§4.4). The group's internal links are written once, outside the retry
// loop; only the tail link is rewritten per CAS attempt, so a group of n
// blocks costs n+1 stores and one successful CAS instead of n.
func (h *Heap) freeBatch(c int, shard uint32, blocks []uint64) {
	r := h.region
	sc := &h.stats[shard&h.shardMask]
	sc.freeBatches.Add(1)
	sc.freeBlocks.Add(uint64(len(blocks)))
	idx, ok := h.lay.descIndexOf(blocks[0])
	if !ok {
		panic(fmt.Sprintf("ralloc: Free(%#x) outside the superblock region", blocks[0]))
	}
	d := h.lay.descOff(idx)
	sb := h.lay.sbOff(idx)
	blockSize := r.Load(d + dOffBlockSize)
	if blockSize == 0 {
		panic(fmt.Sprintf("ralloc: Free(%#x) is not a block boundary", blocks[0]))
	}
	total := uint32(SuperblockBytes / blockSize)
	for _, b := range blocks {
		if b < sb || b >= sb+SuperblockBytes || (b-sb)%blockSize != 0 {
			panic(fmt.Sprintf("ralloc: Free(%#x) is not a block boundary", b))
		}
	}
	for i := 0; i+1 < len(blocks); i++ {
		r.Store(blocks[i], (blocks[i+1]-sb)/blockSize+1)
	}
	headBI := uint32((blocks[0] - sb) / blockSize)
	tail := blocks[len(blocks)-1]
	n := uint32(len(blocks))
	for {
		a := r.Load(d + dOffAnchor)
		st, avail, count := unpackAnchor(a)
		if count == 0 || avail == anchorAvailNone {
			r.Store(tail, 0)
		} else {
			r.Store(tail, uint64(avail)+1)
		}
		newCount := count + n
		if newCount > total {
			panic("ralloc: double free detected (free count exceeds superblock capacity)")
		}
		newState := uint64(statePartial)
		if newCount == total {
			newState = stateEmpty
		}
		if !r.CAS(d+dOffAnchor, a, packAnchor(newState, headBI, newCount)) {
			continue
		}
		if st == stateFull {
			if newState == stateEmpty {
				h.retireDesc(idx)
			} else {
				h.pushPartial(c, shard, idx)
			}
		}
		return
	}
}

// ----------------------------------------------------------------------
// Large allocations (§4.4): any request above the largest size class is
// rounded up to a whole number of superblocks and satisfied by expanding the
// used space (or, for a single superblock, by reusing a free one). The run
// length and actual size are persisted in the first descriptor.

func (h *Heap) mallocLarge(size uint64) uint64 {
	k := (size + SuperblockBytes - 1) / SuperblockBytes
	if k == 1 {
		if idx, ok := h.popDesc(offFreeHead, dOffNextFree); ok {
			h.initLarge(idx, 1, size)
			return h.lay.sbOff(idx)
		}
	}
	first, count, ok := h.grow(k * SuperblockBytes)
	if !ok {
		return 0
	}
	for i := first + count; i > first+uint32(k); i-- {
		h.pushDesc(offFreeHead, dOffNextFree, i-1)
	}
	h.initLarge(first, uint32(k), size)
	return h.lay.sbOff(first)
}

// initLarge persists the run metadata. Continuation markers are persisted
// (and fenced) before the first descriptor so that, at any crash point,
// either the whole run is recognizable or the first descriptor still looks
// uninitialized and the run is swept as free superblocks.
func (h *Heap) initLarge(first, k uint32, size uint64) {
	r := h.region
	for i := first + 1; i < first+k; i++ {
		d := h.lay.descOff(i)
		r.Store(d+dOffClass, contClass)
		r.Store(d+dOffBlockSize, 0)
		r.Store(d+dOffNumSB, 0)
		r.Store(d+dOffAnchor, packAnchor(stateFull, anchorAvailNone, 0))
		h.flush(d)
	}
	if k > 1 {
		h.fence()
	}
	d := h.lay.descOff(first)
	r.Store(d+dOffClass, 0)
	r.Store(d+dOffBlockSize, size)
	r.Store(d+dOffNumSB, uint64(k))
	r.Store(d+dOffAnchor, packAnchor(stateFull, anchorAvailNone, 0))
	h.flush(d)
	h.fence()
}

// freeLarge splits a large block into its constituent superblocks and pushes
// them onto the superblock free list (§4.4). The run markers are cleared
// persistently first so that a crash cannot misread a half-freed run.
func (h *Heap) freeLarge(idx uint32, off uint64) {
	r := h.region
	d := h.lay.descOff(idx)
	if off != h.lay.sbOff(idx) {
		panic(fmt.Sprintf("ralloc: Free(%#x) is not the start of a large block", off))
	}
	k := r.Load(d + dOffNumSB)
	if k == 0 {
		panic(fmt.Sprintf("ralloc: Free(%#x): block is not allocated", off))
	}
	for i := uint32(0); i < uint32(k); i++ {
		di := h.lay.descOff(idx + i)
		r.Store(di+dOffClass, 0)
		r.Store(di+dOffBlockSize, 0)
		r.Store(di+dOffNumSB, 0)
		h.flush(di)
	}
	h.fence()
	for i := uint32(k); i > 0; i-- {
		di := idx + i - 1
		h.region.Store(h.lay.descOff(di)+dOffAnchor, packAnchor(stateEmpty, anchorAvailNone, 0))
		h.pushDesc(offFreeHead, dOffNextFree, di)
	}
}

// Stats returns the handle's operation counters (mallocs, frees, cache
// refills, cache drains).
func (hd *Handle) Stats() (mallocs, frees, refills, drains uint64) {
	return hd.mallocs, hd.frees, hd.refills, hd.drains
}
