package ralloc

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/pptr"
	"repro/internal/sizeclass"
)

// Recovery (§4.5) employs a tracing garbage collector to identify all blocks
// reachable from the persistent roots, then reconstructs every piece of
// transient metadata: anchors, block free chains, partial lists and the
// superblock free list. Because the size of every block is determined by its
// superblock's persisted size class, a single pointer suffices to tell how
// much memory it keeps alive.

// Filter enumerates the pointers inside a block by calling g.Visit for each
// of them (§4.5.1). A nil Filter selects conservative tracing: every 64-bit
// aligned word carrying the off-holder pattern is treated as a potential
// pointer. User-provided filters make tracing precise, faster, and able to
// handle nonstandard pointer representations (such as the counter-tagged
// offsets used by the lock-free data structures).
type Filter func(g *GC, off uint64)

// GC is the tracing context handed to filter functions. In parallel
// recovery (RecoverParallel) several GCs — one per worker — share one
// visited bitmap, marked with CAS; each keeps its own pending stack and
// tallies.
type GC struct {
	h       *Heap
	used    uint64 // snapshot of the used watermark
	visited []uint64
	shared  bool // visited bitmap is shared between workers
	pendOff []uint64
	pendF   []Filter

	reachableBlocks uint64
	reachableBytes  uint64
	traceWork       uint64 // pointer candidates examined + words scanned
}

func newGC(h *Heap) *GC {
	used := h.SBUsed()
	return &GC{
		h:       h,
		used:    used,
		visited: make([]uint64, (used/8+63)/64),
	}
}

func (g *GC) bit(off uint64) (word, mask uint64) {
	i := (off - g.h.lay.sbStart) / 8
	return i / 64, uint64(1) << (i % 64)
}

func (g *GC) marked(off uint64) bool {
	w, m := g.bit(off)
	if g.shared {
		return atomic.LoadUint64(&g.visited[w])&m != 0
	}
	return g.visited[w]&m != 0
}

// mark sets off's bit and reports whether this call was the one that set it.
func (g *GC) mark(off uint64) bool {
	w, m := g.bit(off)
	if !g.shared {
		if g.visited[w]&m != 0 {
			return false
		}
		g.visited[w] |= m
		return true
	}
	for {
		old := atomic.LoadUint64(&g.visited[w])
		if old&m != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&g.visited[w], old, old|m) {
			return true
		}
	}
}

// blockInfo validates a candidate pointer and returns the block it denotes.
// Interior pointers are not supported (§4.5): off must be a block boundary.
func (g *GC) blockInfo(off uint64) (size uint64, ok bool) {
	h := g.h
	if off < h.lay.sbStart || off >= h.lay.sbStart+g.used {
		return 0, false
	}
	idx, _ := h.lay.descIndexOf(off)
	d := h.lay.descOff(idx)
	r := h.region
	cls := r.Load(d + dOffClass)
	switch {
	case cls == contClass:
		// Middle of a large run: not a valid block pointer.
		return 0, false
	case cls == 0:
		bs := r.Load(d + dOffBlockSize)
		if bs == 0 || r.Load(d+dOffNumSB) == 0 {
			return 0, false // uninitialized superblock
		}
		if off != h.lay.sbOff(idx) {
			return 0, false
		}
		return bs, true
	case cls <= sizeclass.NumClasses:
		bs := r.Load(d + dOffBlockSize)
		if bs != sizeclass.ClassToSize(int(cls)) {
			return 0, false // stale or torn descriptor
		}
		if (off-h.lay.sbOff(idx))%bs != 0 {
			return 0, false
		}
		return bs, true
	default:
		return 0, false
	}
}

// Visit marks the block at off reachable (if it is a valid block) and queues
// it for scanning with filter f (nil = conservative). Filters call Visit for
// every pointer they enumerate; Visit is idempotent per block.
func (g *GC) Visit(off uint64, f Filter) {
	g.traceWork++
	size, ok := g.blockInfo(off)
	if !ok || !g.mark(off) {
		return
	}
	g.reachableBlocks++
	g.reachableBytes += size
	g.pendOff = append(g.pendOff, off)
	g.pendF = append(g.pendF, f)
}

// conservative is the default filter (§4.5.1 Fig. 3): scan every aligned
// word of the block and visit anything that decodes as an off-holder.
func (g *GC) conservative(off uint64) {
	size, ok := g.blockInfo(off)
	if !ok {
		return
	}
	r := g.h.region
	end := off + size&^7
	g.traceWork += (end - off) / 8
	for o := off; o < end; o += 8 {
		if t, tok := pptr.Unpack(o, r.Load(o)); tok {
			g.Visit(t, nil)
		}
	}
}

// collect traces all blocks reachable from the persistent roots.
func (g *GC) collect() {
	h := g.h
	for i := 0; i < NumRoots; i++ {
		slot := rootOff(i)
		target, ok := pptr.Unpack(slot, h.region.Load(slot))
		if !ok {
			continue
		}
		h.mu.Lock()
		f := h.filters[i]
		h.mu.Unlock()
		g.Visit(target, f)
	}
	for len(g.pendOff) > 0 {
		n := len(g.pendOff) - 1
		off, f := g.pendOff[n], g.pendF[n]
		g.pendOff, g.pendF = g.pendOff[:n], g.pendF[:n]
		if f == nil {
			g.conservative(off)
		} else {
			f(g, off)
		}
	}
}

// Trace runs only the tracing phase of recovery — marking all blocks
// reachable from the persistent roots with the currently registered filters
// — without reconstructing any metadata. It is read-only and safe to call
// repeatedly, e.g. to audit what a given filter configuration would keep
// before committing to Recover (whose sweep overwrites the first word of
// every free block).
func (h *Heap) Trace() (blocks, bytes uint64) {
	g := newGC(h)
	g.collect()
	return g.reachableBlocks, g.reachableBytes
}

// RecoveryStats summarizes what Recover found and rebuilt.
//
// TraceWork and SweepUnits are deterministic work counters: for a fixed heap
// image and filter registration they do not depend on scheduling or wall
// time, so linearity properties of recovery cost can be asserted on them
// without flaky clock-ratio comparisons.
type RecoveryStats struct {
	ReachableBlocks uint64
	ReachableBytes  uint64
	FreeSuperblocks uint64 // retired to the superblock free list
	PartialSBs      uint64
	FullSBs         uint64
	LargeRuns       uint64
	TraceWork       uint64 // pointer candidates examined + words scanned (trace)
	SweepUnits      uint64 // superblocks/runs processed by the sweep
	TraceTime       time.Duration
	SweepTime       time.Duration
	Duration        time.Duration
}

// Recover performs offline post-crash recovery (the paper's recover()):
// trace all blocks reachable from the persistent roots, then reconstruct all
// allocator metadata so that all and only the reachable blocks are allocated
// — the recoverability criterion. Filters must have been registered (via
// GetRoot) beforehand. The heap stays dirty until a clean Close, so a crash
// during recovery simply causes recovery to run again.
func (h *Heap) Recover() (RecoveryStats, error) {
	start := time.Now()
	h.dropHandles()

	// Steps 4–5: trace.
	g := newGC(h)
	g.collect()
	traceDone := time.Now()

	stats := h.rebuildFromTrace(g)
	stats.TraceTime = traceDone.Sub(start)
	stats.SweepTime = time.Since(traceDone)
	stats.Duration = time.Since(start)
	return stats, nil
}

// rebuildFromTrace performs steps 3 and 6–10 of recovery: reset the global
// lists, sweep every used superblock keeping exactly the blocks marked in
// g, rebuild all metadata, and write everything back. It is shared by
// full-crash recovery (Recover) and the stop-the-world collection used
// after partial, single-process crashes (Manager.Collect).
func (h *Heap) rebuildFromTrace(g *GC) RecoveryStats {
	r := h.region
	// Step 3: fresh global lists. Every shard slot up to MaxShards is
	// cleared — not just the active h.shards — so that stale heads left by
	// a crashed session that ran with a larger shard count can never leak
	// descriptors into a later remap.
	h.resetLists()

	// Steps 6–9: sweep every used superblock and rebuild its metadata.
	stats := RecoveryStats{
		ReachableBlocks: g.reachableBlocks,
		ReachableBytes:  g.reachableBytes,
		TraceWork:       g.traceWork,
	}
	n := h.usedDescs()
	for i := uint32(0); i < n; {
		stats.SweepUnits++
		d := h.lay.descOff(i)
		cls := r.Load(d + dOffClass)
		bs := r.Load(d + dOffBlockSize)
		numSB := r.Load(d + dOffNumSB)
		switch {
		case cls == 0 && bs > 0 && numSB > 0:
			// Large run.
			k := uint32(numSB)
			if k > n-i {
				k = n - i // torn run metadata: clamp and free
			}
			if g.marked(h.lay.sbOff(i)) && uint32(numSB) == k {
				r.Store(d+dOffAnchor, packAnchor(stateFull, anchorAvailNone, 0))
				stats.LargeRuns++
				i += k
				continue
			}
			for j := uint32(0); j < k; j++ {
				h.clearAndRetire(i + j)
				stats.FreeSuperblocks++
			}
			i += k
		case cls == contClass:
			// Orphaned continuation (crash between persisting the
			// run body and its head, or mid-freeLarge).
			h.clearAndRetire(i)
			stats.FreeSuperblocks++
			i++
		case cls >= 1 && cls <= sizeclass.NumClasses && bs == sizeclass.ClassToSize(int(cls)):
			h.sweepSmall(g, i, int(cls), bs, &stats)
			i++
		default:
			// Never initialized, or stale/torn metadata with no
			// reachable blocks: plain free superblock.
			h.clearAndRetire(i)
			stats.FreeSuperblocks++
			i++
		}
	}

	// Step 10: write everything back.
	h.flushRange(0, h.region.Size())
	h.fence()
	return stats
}

// resetLists clears the superblock free list and every partial-list shard
// slot (all MaxShards of them, active or not).
func (h *Heap) resetLists() {
	r := h.region
	r.Store(offFreeHead, pptr.HeadNil)
	for c := 0; c <= sizeclass.NumClasses; c++ {
		r.Store(classEntryOff(c)+8, pptr.HeadNil) // reserved pre-v2 slot
		for s := uint32(0); s < MaxShards; s++ {
			r.Store(partialHeadOff(c, s), pptr.HeadNil)
		}
	}
}

// clearAndRetire resets descriptor i to the uninitialized state and pushes
// its superblock onto the free list.
func (h *Heap) clearAndRetire(i uint32) {
	r := h.region
	d := h.lay.descOff(i)
	r.Store(d+dOffClass, 0)
	r.Store(d+dOffBlockSize, 0)
	r.Store(d+dOffNumSB, 0)
	r.Store(d+dOffAnchor, packAnchor(stateEmpty, anchorAvailNone, 0))
	h.pushDesc(offFreeHead, dOffNextFree, i)
}

// sweepSmall rebuilds the block free chain and anchor of a small-class
// superblock, keeping exactly the traced blocks allocated (steps 6–8).
func (h *Heap) sweepSmall(g *GC, i uint32, c int, bs uint64, stats *RecoveryStats) {
	r := h.region
	d := h.lay.descOff(i)
	sb := h.lay.sbOff(i)
	total := uint32(SuperblockBytes / bs)

	var chainHead uint64 // next-field encoding: index+1, 0 = nil
	nFree := uint32(0)
	for b := total; b > 0; b-- {
		off := sb + uint64(b-1)*bs
		if g.marked(off) {
			continue
		}
		r.Store(off, chainHead)
		chainHead = uint64(b-1) + 1
		nFree++
	}
	switch {
	case nFree == total:
		h.clearAndRetire(i)
		stats.FreeSuperblocks++
	case nFree == 0:
		r.Store(d+dOffAnchor, packAnchor(stateFull, anchorAvailNone, 0))
		stats.FullSBs++
	default:
		r.Store(d+dOffAnchor, packAnchor(statePartial, uint32(chainHead-1), nFree))
		// Deterministic shard placement (index mod shard count): the
		// per-shard membership is the same whether the sweep runs
		// sequentially or in parallel.
		h.pushPartial(c, h.partialShardOf(i), i)
		stats.PartialSBs++
	}
}

// ----------------------------------------------------------------------
// Introspection used by tests.

// HeapCheck describes an allocator-metadata consistency snapshot. The heap
// must be quiescent (no concurrent operations).
type HeapCheck struct {
	FreeListLen    int
	PartialLens    [sizeclass.NumClasses + 1]int
	FreeBlocks     uint64 // blocks on superblock-internal chains
	AllocatedBlks  uint64 // blocks not on any chain (allocated or cached)
	UsedSuperblcks uint32
}

// CheckInvariants walks all allocator metadata and verifies structural
// invariants: anchors agree with their chains, chain entries are in-bounds
// and distinct, and no superblock appears on two lists. It returns the
// snapshot and the first violation found, if any. Quiescence is required.
func (h *Heap) CheckInvariants() (HeapCheck, error) {
	r := h.region
	var chk HeapCheck
	n := h.usedDescs()
	chk.UsedSuperblcks = n

	onFree := make(map[uint32]bool)
	_, idx, ok := pptr.UnpackHead(r.Load(offFreeHead))
	for ok {
		if onFree[idx] {
			return chk, fmt.Errorf("superblock %d appears twice on the free list", idx)
		}
		if idx >= n {
			return chk, fmt.Errorf("free list contains out-of-range superblock %d", idx)
		}
		onFree[idx] = true
		chk.FreeListLen++
		next := r.Load(h.lay.descOff(idx) + dOffNextFree)
		if next == 0 {
			break
		}
		idx = uint32(next - 1)
	}

	onPartial := make(map[uint32]int)
	for c := 1; c <= sizeclass.NumClasses; c++ {
		// Walk every shard slot, active or not: a descriptor stranded on
		// an inactive shard's list is a leak and must be reported.
		for s := uint32(0); s < MaxShards; s++ {
			_, idx, ok := pptr.UnpackHead(r.Load(partialHeadOff(c, s)))
			if ok && s >= h.shards {
				return chk, fmt.Errorf("superblock %d stranded on inactive shard %d of class %d", idx, s, c)
			}
			for ok {
				if prev, dup := onPartial[idx]; dup {
					return chk, fmt.Errorf("superblock %d on partial lists %d and %d", idx, prev, c)
				}
				if onFree[idx] {
					return chk, fmt.Errorf("superblock %d on both free and partial lists", idx)
				}
				if cls := r.Load(h.lay.descOff(idx) + dOffClass); cls != uint64(c) {
					return chk, fmt.Errorf("superblock %d has class %d but is on partial list %d", idx, cls, c)
				}
				onPartial[idx] = c
				chk.PartialLens[c]++
				next := r.Load(h.lay.descOff(idx) + dOffNextPartial)
				if next == 0 {
					break
				}
				idx = uint32(next - 1)
			}
		}
	}

	for i := uint32(0); i < n; i++ {
		d := h.lay.descOff(i)
		cls := r.Load(d + dOffClass)
		bs := r.Load(d + dOffBlockSize)
		if cls == 0 || cls == contClass {
			if cls == 0 && bs > 0 {
				// Allocated large run head.
				chk.AllocatedBlks++
				i += uint32(r.Load(d+dOffNumSB)) - 1
			}
			continue
		}
		if cls > sizeclass.NumClasses {
			return chk, fmt.Errorf("superblock %d has invalid class %d", i, cls)
		}
		if bs != sizeclass.ClassToSize(int(cls)) {
			return chk, fmt.Errorf("superblock %d class %d has block size %d", i, cls, bs)
		}
		total := uint32(SuperblockBytes / bs)
		state, avail, count := unpackAnchor(r.Load(d + dOffAnchor))
		if count > total {
			return chk, fmt.Errorf("superblock %d count %d exceeds capacity %d", i, count, total)
		}
		switch state {
		case stateFull:
			if count != 0 {
				return chk, fmt.Errorf("superblock %d FULL with count %d", i, count)
			}
		case stateEmpty:
			if count != total {
				return chk, fmt.Errorf("superblock %d EMPTY with count %d/%d", i, count, total)
			}
		}
		// Walk the chain: exactly count distinct in-range entries.
		seen := make(map[uint32]bool, count)
		bi := avail
		for k := uint32(0); k < count; k++ {
			if bi >= total {
				return chk, fmt.Errorf("superblock %d chain leaves bounds at %d", i, bi)
			}
			if seen[bi] {
				return chk, fmt.Errorf("superblock %d chain revisits block %d", i, bi)
			}
			seen[bi] = true
			if k+1 < count {
				next := r.Load(h.lay.sbOff(i) + uint64(bi)*bs)
				if next == 0 {
					return chk, fmt.Errorf("superblock %d chain ends early at %d/%d", i, k+1, count)
				}
				bi = uint32(next - 1)
			}
		}
		chk.FreeBlocks += uint64(count)
		chk.AllocatedBlks += uint64(total - count)
	}
	return chk, nil
}
